//! Property tests for the hardware models: structural invariants that
//! must hold at every design point.

use proptest::prelude::*;
use rpr_hwsim::{
    DesignKind, EncoderPipelineModel, MetadataScratchpad, PowerModel, ResourceEstimator,
    SynthesisOutcome,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel-encoder resources grow monotonically with region count;
    /// hybrid resources never change.
    #[test]
    fn resource_monotonicity(a in 1u32..2000, b in 1u32..2000) {
        let est = ResourceEstimator::zcu102();
        let (lo, hi) = (a.min(b), a.max(b));
        let p_lo = est.estimate(DesignKind::ParallelEncoder { regions: lo });
        let p_hi = est.estimate(DesignKind::ParallelEncoder { regions: hi });
        prop_assert!(p_lo.luts <= p_hi.luts);
        prop_assert!(p_lo.ffs <= p_hi.ffs);
        // Hybrid is flat up to its provisioned capacity (1600 regions);
        // beyond that only the BRAM region list grows, never the logic.
        let h_lo = est.estimate(DesignKind::HybridEncoder { regions: lo });
        let h_hi = est.estimate(DesignKind::HybridEncoder { regions: hi });
        if hi <= est.hybrid_capacity_regions {
            prop_assert_eq!(h_lo, h_hi);
        } else {
            prop_assert_eq!(h_lo.luts, h_hi.luts);
            prop_assert_eq!(h_lo.ffs, h_hi.ffs);
            prop_assert!(h_lo.brams <= h_hi.brams);
        }
    }

    /// Synthesis feasibility is a threshold: once a parallel design
    /// fails, every larger one fails too.
    #[test]
    fn no_synth_is_monotone(n in 1u32..4000) {
        let est = ResourceEstimator::zcu102();
        let here = est.estimate(DesignKind::ParallelEncoder { regions: n }).outcome;
        let bigger = est.estimate(DesignKind::ParallelEncoder { regions: n + 1 }).outcome;
        if here == SynthesisOutcome::NoSynth {
            prop_assert_eq!(bigger, SynthesisOutcome::NoSynth);
        }
    }

    /// Power is monotone in activity and never below leakage.
    #[test]
    fn power_monotone_in_activity(a in 0.0f64..1.0, b in 0.0f64..1.0, n in 1u32..1600) {
        let model = PowerModel::zcu102();
        let est = ResourceEstimator::zcu102();
        let r = est.estimate(DesignKind::HybridEncoder { regions: n });
        let (lo, hi) = (a.min(b), a.max(b));
        let p_lo = model.power_of(&r, lo);
        let p_hi = model.power_of(&r, hi);
        prop_assert!(p_lo.total_mw() <= p_hi.total_mw() + 1e-12);
        prop_assert!(p_lo.total_mw() >= model.static_mw);
    }

    /// The pipeline model's cycle count is at least the ideal
    /// pixels/ppc floor, and the effective throughput never exceeds the
    /// configured rate.
    #[test]
    fn pipeline_bounds(w in 8u32..128, h in 8u32..64) {
        use rpr_core::RegionList;
        use rpr_frame::Plane;
        let model = EncoderPipelineModel::paper_config();
        let frame = Plane::from_fn(w, h, |x, y| (x + y) as u8);
        let report = model.simulate(&frame, 0, &RegionList::full_frame(w, h));
        let floor = u64::from(w).div_ceil(2) * u64::from(h);
        prop_assert!(report.cycles >= floor);
        prop_assert!(report.effective_ppc <= 2.0 + 1e-9);
    }

    /// Scratchpad accounting: hits + misses equals accesses, fetched
    /// bytes equal misses x line size, and a repeat of the same access
    /// stream entirely hits when it fits.
    #[test]
    fn scratchpad_accounting(rows in proptest::collection::vec(0u32..8, 1..32)) {
        let mut sp = MetadataScratchpad::new(8, 128);
        for &r in &rows {
            sp.access(0, r);
        }
        let s = *sp.stats();
        prop_assert_eq!(s.hits + s.misses, rows.len() as u64);
        prop_assert_eq!(s.bytes_fetched, s.misses * 128);
        // All 8 possible lines fit in the 8-line scratchpad: a second
        // pass is all hits.
        for &r in &rows {
            prop_assert!(sp.access(0, r));
        }
    }
}

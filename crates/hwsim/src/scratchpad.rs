//! The decoder's metadata scratchpad (paper Fig. 6): an on-chip buffer
//! holding the per-row offsets and EncMask lines "pertaining to the
//! transaction for the four most recent encoded frames".
//!
//! The model is an LRU cache of `(frame_tag, row)` metadata lines:
//! pixel transactions touching resident lines are scratchpad hits;
//! misses fetch the line from DRAM (costed in bytes and cycles). Row
//! locality of real vision access patterns (raster reads, block reads)
//! makes the hit rate high, which is why the paper's decoder needs only
//! two BRAMs.

use rpr_core::{SubRequest, SubRequestKind};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Hit/miss counters for the scratchpad.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScratchpadStats {
    /// Line accesses that found the line resident.
    pub hits: u64,
    /// Line accesses that had to fetch from DRAM.
    pub misses: u64,
    /// Metadata bytes fetched from DRAM on misses.
    pub bytes_fetched: u64,
}

impl ScratchpadStats {
    /// Hit rate in `[0, 1]` (1.0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LRU cache of metadata lines, keyed by `(frame_tag, row)`.
///
/// # Example
///
/// ```
/// use rpr_hwsim::MetadataScratchpad;
///
/// let mut sp = MetadataScratchpad::new(8, 480); // 8 lines, 480 B each
/// sp.access(0, 10);
/// sp.access(0, 10);
/// sp.access(0, 11);
/// assert_eq!(sp.stats().hits, 1);
/// assert_eq!(sp.stats().misses, 2);
/// ```
#[derive(Debug, Clone)]
pub struct MetadataScratchpad {
    capacity_lines: usize,
    line_bytes: u32,
    resident: VecDeque<(u8, u32)>,
    stats: ScratchpadStats,
}

impl MetadataScratchpad {
    /// Creates a scratchpad holding `capacity_lines` metadata lines of
    /// `line_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics when `capacity_lines == 0`.
    pub fn new(capacity_lines: usize, line_bytes: u32) -> Self {
        assert!(capacity_lines > 0, "scratchpad needs at least one line");
        MetadataScratchpad {
            capacity_lines,
            line_bytes,
            resident: VecDeque::new(),
            stats: ScratchpadStats::default(),
        }
    }

    /// Sizes a scratchpad for a frame width: the EncMask line
    /// (2 bits/px) plus the 4-byte row offset, with capacity for a few
    /// lines of each of the 4 history frames — the configuration behind
    /// the paper's 2-BRAM decoder at 1080p.
    pub fn for_width(width: u32) -> Self {
        Self::new(16, width.div_ceil(4) + 4)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ScratchpadStats {
        &self.stats
    }

    /// Bytes of on-chip storage the configuration requires.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_lines as u64 * u64::from(self.line_bytes)
    }

    /// Touches the metadata line for `row` of history frame
    /// `frame_tag`, returning true on hit.
    pub fn access(&mut self, frame_tag: u8, row: u32) -> bool {
        let key = (frame_tag, row);
        if let Some(pos) = self.resident.iter().position(|&k| k == key) {
            // Move to MRU.
            self.resident.remove(pos);
            self.resident.push_back(key);
            self.stats.hits += 1;
            true
        } else {
            if self.resident.len() == self.capacity_lines {
                self.resident.pop_front();
            }
            self.resident.push_back(key);
            self.stats.misses += 1;
            self.stats.bytes_fetched += u64::from(self.line_bytes);
            false
        }
    }

    /// Replays the metadata accesses of a translated transaction: every
    /// sub-request touches its row's line in the frame that serves it
    /// (history interpolations touch the history frame's line).
    pub fn access_transaction(&mut self, subs: &[SubRequest]) {
        for sub in subs {
            let tag = match sub.kind {
                SubRequestKind::CurrentFrame { .. }
                | SubRequestKind::Interpolate
                | SubRequestKind::Black => 0,
                SubRequestKind::HistoryFrame { frames_back, .. } => frames_back,
                SubRequestKind::HistoryInterpolate { frames_back } => frames_back,
            };
            self.access(tag, sub.y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::{
        PixelMmu, PixelRequest, RegionLabel, RegionList, RhythmicEncoder, SoftwareDecoder,
    };
    use rpr_frame::Plane;

    #[test]
    fn lru_evicts_oldest() {
        let mut sp = MetadataScratchpad::new(2, 100);
        sp.access(0, 1);
        sp.access(0, 2);
        sp.access(0, 3); // evicts row 1
        assert!(!sp.access(0, 1)); // miss again
        assert_eq!(sp.stats().misses, 4);
        assert_eq!(sp.stats().bytes_fetched, 400);
    }

    #[test]
    fn mru_touch_protects_hot_lines() {
        let mut sp = MetadataScratchpad::new(2, 100);
        sp.access(0, 1);
        sp.access(0, 2);
        sp.access(0, 1); // refresh row 1
        sp.access(0, 3); // evicts row 2, not row 1
        assert!(sp.access(0, 1));
    }

    #[test]
    fn tags_distinguish_history_frames() {
        let mut sp = MetadataScratchpad::new(4, 100);
        sp.access(0, 5);
        assert!(!sp.access(1, 5), "same row of another frame is a different line");
        assert!(sp.access(0, 5));
    }

    #[test]
    fn raster_reads_hit_after_the_first_pixel_of_each_row() {
        // A full-row transaction touches one metadata line per frame:
        // width-1 hits after the first miss.
        let frame = Plane::from_fn(32, 16, |x, y| (x + y) as u8);
        let regions = RegionList::new(32, 16, vec![RegionLabel::new(0, 0, 32, 16, 1, 1)]).unwrap();
        let mut enc = RhythmicEncoder::new(32, 16);
        let mut dec = SoftwareDecoder::new(32, 16);
        dec.decode(&enc.encode(&frame, 0, &regions));
        let mut mmu = PixelMmu::new(32, 16);
        let mut sp = MetadataScratchpad::for_width(32);
        for y in 0..16 {
            let subs = mmu.analyze(dec.history(), PixelRequest::row(y, 32)).unwrap();
            sp.access_transaction(&subs);
        }
        assert_eq!(sp.stats().misses, 16);
        assert_eq!(sp.stats().hits, 16 * 31);
        assert!(sp.stats().hit_rate() > 0.95);
    }

    #[test]
    fn capacity_for_1080p_fits_two_brams() {
        let sp = MetadataScratchpad::for_width(1920);
        // 2 x 18 Kb BRAMs = 4.5 KiB... the paper's decoder holds the
        // active lines, not whole masks: 16 lines x 484 B ≈ 7.7 KB is
        // the right order (2 x 36 Kb BRAM halves).
        assert!(sp.capacity_bytes() < 9216, "capacity {} B", sp.capacity_bytes());
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn zero_capacity_panics() {
        let _ = MetadataScratchpad::new(0, 128);
    }
}

use crate::{DesignKind, ResourceEstimate, ResourceEstimator};
use serde::{Deserialize, Serialize};

/// A power estimate for one hardware unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Dynamic power in milliwatts at the modeled activity.
    pub dynamic_mw: f64,
    /// Static (leakage) power in milliwatts.
    pub static_mw: f64,
}

impl PowerEstimate {
    /// Total power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.static_mw
    }
}

/// Activity-scaled resource-proportional power model (substitute for
/// the Vivado power analysis the paper uses, §5.3.1).
///
/// Dynamic power is proportional to toggled logic: LUTs, FFs, and BRAM
/// accesses, scaled by an activity factor. The encoder streams every
/// pixel at 2 px/clock (activity ≈ 1); the decoder only toggles on
/// pixel transactions (activity ≪ 1), which is why the paper measures
/// it under 1 mW.
///
/// # Example
///
/// ```
/// use rpr_hwsim::{DesignKind, PowerModel};
///
/// let model = PowerModel::zcu102();
/// let enc = model.encoder_power(DesignKind::HybridEncoder { regions: 1600 });
/// assert!(enc.total_mw() < 65.0); // the paper reports 45 mW
/// let dec = model.decoder_power(1920, 0.02);
/// assert!(dec.total_mw() < 1.0); // "< 1 mW"
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// mW per actively toggling LUT.
    pub mw_per_lut: f64,
    /// mW per actively toggling FF.
    pub mw_per_ff: f64,
    /// mW per active BRAM.
    pub mw_per_bram: f64,
    /// Leakage floor per block, mW.
    pub static_mw: f64,
    resources: ResourceEstimator,
}

impl PowerModel {
    /// Calibration reproducing the paper's §6.3 numbers (45 mW hybrid
    /// encoder at 1600 regions, < 1 mW decoder).
    pub fn zcu102() -> Self {
        PowerModel {
            mw_per_lut: 0.025,
            mw_per_ff: 0.005,
            mw_per_bram: 1.5,
            static_mw: 0.1,
            resources: ResourceEstimator::zcu102(),
        }
    }

    /// Power of a resource estimate at a given toggle-activity factor.
    pub fn power_of(&self, r: &ResourceEstimate, activity: f64) -> PowerEstimate {
        let dynamic = activity
            * (self.mw_per_lut * f64::from(r.luts)
                + self.mw_per_ff * f64::from(r.ffs)
                + self.mw_per_bram * f64::from(r.brams));
        PowerEstimate { dynamic_mw: dynamic, static_mw: self.static_mw }
    }

    /// Encoder power at full streaming activity.
    pub fn encoder_power(&self, design: DesignKind) -> PowerEstimate {
        self.power_of(&self.resources.estimate(design), 1.0)
    }

    /// Decoder power at the given transaction activity factor
    /// (fraction of cycles carrying a pixel transaction).
    pub fn decoder_power(&self, width: u32, activity: f64) -> PowerEstimate {
        self.power_of(&self.resources.estimate(DesignKind::Decoder { width }), activity)
    }

    /// Share of a typical mobile ISP chip's power (the paper compares
    /// the 45 mW encoder against a 650 mW ISP).
    pub fn fraction_of_isp(&self, power: &PowerEstimate) -> f64 {
        power.total_mw() / 650.0
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::zcu102()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_encoder_is_about_45mw() {
        let p = PowerModel::zcu102().encoder_power(DesignKind::HybridEncoder { regions: 1600 });
        assert!(
            (35.0..55.0).contains(&p.total_mw()),
            "hybrid encoder {} mW",
            p.total_mw()
        );
    }

    #[test]
    fn encoder_is_under_7_percent_of_isp_power() {
        // §6.3: "less than 7 % of standard mobile ISP chip power (650 mW)".
        let m = PowerModel::zcu102();
        let p = m.encoder_power(DesignKind::HybridEncoder { regions: 1600 });
        assert!(m.fraction_of_isp(&p) < 0.07 * 1.25, "fraction {}", m.fraction_of_isp(&p));
    }

    #[test]
    fn decoder_is_under_1mw() {
        let p = PowerModel::zcu102().decoder_power(1920, 0.02);
        assert!(p.total_mw() < 1.0, "decoder {} mW", p.total_mw());
    }

    #[test]
    fn parallel_encoder_power_explodes_with_regions() {
        let m = PowerModel::zcu102();
        let p100 = m.encoder_power(DesignKind::ParallelEncoder { regions: 100 });
        let p400 = m.encoder_power(DesignKind::ParallelEncoder { regions: 400 });
        assert!(p400.total_mw() > 2.5 * p100.total_mw());
        let hybrid = m.encoder_power(DesignKind::HybridEncoder { regions: 400 });
        assert!(p400.total_mw() > 5.0 * hybrid.total_mw());
    }

    #[test]
    fn zero_activity_leaves_only_leakage() {
        let m = PowerModel::zcu102();
        let r = ResourceEstimator::zcu102().estimate(DesignKind::Decoder { width: 1920 });
        let p = m.power_of(&r, 0.0);
        assert_eq!(p.dynamic_mw, 0.0);
        assert_eq!(p.total_mw(), m.static_mw);
    }
}

use rpr_core::{SubRequest, SubRequestKind};
use serde::{Deserialize, Serialize};

/// Latency model of the hardware decoder's request path (paper §6.3:
/// the decoder "will add a few clock cycles of delay when returning the
/// response … on the order of a few 10s of ns", negligible against
/// frame compute times of tens of milliseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecoderLatencyModel {
    /// Programmable-logic clock, Hz.
    pub clock_hz: f64,
    /// Fixed pipeline depth of the PMMU path (out-of-frame check,
    /// scratchpad lookup, transaction analysis, translation), cycles.
    pub pmmu_pipeline_cycles: u32,
    /// Extra cycles when a sub-request targets a history frame (a
    /// different base address / scratchpad bank).
    pub history_penalty_cycles: u32,
    /// Extra cycles for an interpolation resolution in the FIFO
    /// sampling unit.
    pub interpolate_penalty_cycles: u32,
}

impl DecoderLatencyModel {
    /// The paper's configuration at a 300 MHz programmable-logic clock.
    pub fn paper_config() -> Self {
        DecoderLatencyModel {
            clock_hz: 300.0e6,
            pmmu_pipeline_cycles: 5,
            history_penalty_cycles: 2,
            interpolate_penalty_cycles: 1,
        }
    }

    /// Added cycles for one translated sub-request.
    pub fn sub_request_cycles(&self, sub: &SubRequest) -> u32 {
        let penalty = match sub.kind {
            SubRequestKind::CurrentFrame { .. } | SubRequestKind::Black => 0,
            SubRequestKind::Interpolate => self.interpolate_penalty_cycles,
            SubRequestKind::HistoryFrame { .. } => self.history_penalty_cycles,
            SubRequestKind::HistoryInterpolate { .. } => {
                self.history_penalty_cycles + self.interpolate_penalty_cycles
            }
        };
        self.pmmu_pipeline_cycles + penalty
    }

    /// Added latency for one sub-request, in nanoseconds.
    pub fn sub_request_ns(&self, sub: &SubRequest) -> f64 {
        f64::from(self.sub_request_cycles(sub)) / self.clock_hz * 1.0e9
    }

    /// Added latency of a whole pipelined transaction: the pipeline
    /// fills once, then streams one sub-request per cycle.
    pub fn transaction_ns(&self, subs: &[SubRequest]) -> f64 {
        if subs.is_empty() {
            return 0.0;
        }
        let fill = f64::from(self.sub_request_cycles(&subs[0]));
        let stream = (subs.len() - 1) as f64;
        (fill + stream) / self.clock_hz * 1.0e9
    }
}

impl Default for DecoderLatencyModel {
    fn default() -> Self {
        DecoderLatencyModel::paper_config()
    }
}

/// Runtime model of the alternative *software* decoder (paper §5.1,
/// §6.3): decode time is linear in the number of regional pixels, "a
/// few ms of CPU time for a 1080p frame where 30 % of the pixels are
/// regional".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwDecoderModel {
    /// Seconds of CPU time per regional pixel.
    pub s_per_regional_px: f64,
    /// Fixed per-frame overhead in seconds (metadata parse, buffer
    /// setup).
    pub fixed_s: f64,
}

impl SwDecoderModel {
    /// Calibration matching the paper's Cortex-A53-class measurement:
    /// 1080p at 30 % regional ≈ 3 ms.
    pub fn paper_config() -> Self {
        SwDecoderModel { s_per_regional_px: 4.5e-9, fixed_s: 0.2e-3 }
    }

    /// Predicted decode time in milliseconds.
    pub fn decode_time_ms(&self, regional_pixels: u64) -> f64 {
        (self.fixed_s + self.s_per_regional_px * regional_pixels as f64) * 1.0e3
    }

    /// Whether a frame decodes within a 30 fps real-time budget.
    pub fn is_realtime_30fps(&self, regional_pixels: u64) -> bool {
        self.decode_time_ms(regional_pixels) < 1000.0 / 30.0
    }
}

impl Default for SwDecoderModel {
    fn default() -> Self {
        SwDecoderModel::paper_config()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sub(kind: SubRequestKind) -> SubRequest {
        SubRequest { x: 0, y: 0, kind }
    }

    #[test]
    fn single_request_is_tens_of_ns() {
        let m = DecoderLatencyModel::paper_config();
        let ns = m.sub_request_ns(&sub(SubRequestKind::CurrentFrame { offset: 0 }));
        assert!((5.0..100.0).contains(&ns), "latency {ns} ns");
    }

    #[test]
    fn history_requests_cost_more() {
        let m = DecoderLatencyModel::paper_config();
        let current = m.sub_request_cycles(&sub(SubRequestKind::CurrentFrame { offset: 0 }));
        let history = m.sub_request_cycles(&sub(SubRequestKind::HistoryFrame {
            frames_back: 2,
            offset: 0,
        }));
        let hist_interp =
            m.sub_request_cycles(&sub(SubRequestKind::HistoryInterpolate { frames_back: 1 }));
        assert!(history > current);
        assert!(hist_interp > history);
    }

    #[test]
    fn pipelining_amortizes_fill() {
        let m = DecoderLatencyModel::paper_config();
        let subs: Vec<SubRequest> =
            (0..64).map(|_| sub(SubRequestKind::CurrentFrame { offset: 0 })).collect();
        let burst = m.transaction_ns(&subs);
        let serial: f64 = subs.iter().map(|s| m.sub_request_ns(s)).sum();
        assert!(burst < serial / 2.0, "burst {burst} vs serial {serial}");
    }

    #[test]
    fn latency_negligible_vs_frame_compute() {
        // §6.3: 10s of ns against 10s of ms of vision compute.
        let m = DecoderLatencyModel::paper_config();
        let ns = m.sub_request_ns(&sub(SubRequestKind::HistoryInterpolate { frames_back: 3 }));
        let frame_compute_ns = 20.0e6; // 20 ms
        assert!(ns / frame_compute_ns < 1e-4);
    }

    #[test]
    fn empty_transaction_is_free() {
        assert_eq!(DecoderLatencyModel::paper_config().transaction_ns(&[]), 0.0);
    }

    #[test]
    fn sw_decoder_matches_paper_calibration() {
        let m = SwDecoderModel::paper_config();
        // 1080p, 30 % regional.
        let regional = (1920.0_f64 * 1080.0 * 0.3) as u64;
        let ms = m.decode_time_ms(regional);
        assert!((1.0..6.0).contains(&ms), "decode {ms} ms");
        assert!(m.is_realtime_30fps(regional));
    }

    #[test]
    fn sw_decoder_scales_linearly() {
        let m = SwDecoderModel::paper_config();
        let t1 = m.decode_time_ms(100_000) - m.fixed_s * 1e3;
        let t2 = m.decode_time_ms(200_000) - m.fixed_s * 1e3;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn full_4k_software_decode_is_not_realtime() {
        // The software decoder is for moderate regional fractions; a
        // fully regional 4K frame blows the 30 fps budget, motivating
        // the hardware decoder.
        let m = SwDecoderModel::paper_config();
        assert!(!m.is_realtime_30fps(3840 * 2160));
    }
}

use rpr_core::{RegionList, RoiSelector};
use rpr_frame::GrayFrame;
use serde::{Deserialize, Serialize};

/// Result of replaying one frame through the encoder's timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Pixels ingested.
    pub pixels: u64,
    /// Clock cycles consumed (including stalls).
    pub cycles: u64,
    /// Stall cycles added on top of the nominal pixels/ppc budget.
    pub stall_cycles: u64,
    /// Effective throughput in pixels per clock.
    pub effective_ppc: f64,
    /// Whether the frame met the ISP's pixels/clock contract.
    pub meets_target: bool,
}

/// Cycle-level timing model of the streaming encoder (paper §5.1: the
/// encoder must sustain the ISP's 2 pixels/clock; its FIFOs are 16
/// deep).
///
/// The datapath consumes `pixels_per_clock` pixels per cycle. Once per
/// row the RoI selector refreshes the shortlist; the comparison engine
/// evaluates up to `comparator_lanes` shortlisted regions per cycle, so
/// a row whose shortlist exceeds the lane count stalls the input for
/// the extra lookup cycles. A 16-deep input FIFO absorbs stalls shorter
/// than its depth; only un-absorbed cycles surface as real stalls.
///
/// # Example
///
/// ```
/// use rpr_core::RegionList;
/// use rpr_frame::Plane;
/// use rpr_hwsim::EncoderPipelineModel;
///
/// let model = EncoderPipelineModel::paper_config();
/// let frame = Plane::from_fn(64, 64, |x, _| x as u8);
/// let report = model.simulate(&frame, 0, &RegionList::full_frame(64, 64));
/// assert!(report.meets_target);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncoderPipelineModel {
    /// Target ingest rate, pixels per clock.
    pub pixels_per_clock: u32,
    /// Shortlisted regions the comparison engine checks per cycle.
    pub comparator_lanes: u32,
    /// Input FIFO depth in pixels (absorbs transient stalls).
    pub fifo_depth: u32,
    /// Clock frequency in Hz.
    pub clock_hz: f64,
}

impl EncoderPipelineModel {
    /// The paper's configuration: 2 px/clock, FIFO depth 16, a
    /// 300 MHz-class programmable-logic clock, 8 comparator lanes.
    pub fn paper_config() -> Self {
        EncoderPipelineModel {
            pixels_per_clock: 2,
            comparator_lanes: 8,
            fifo_depth: 16,
            clock_hz: 300.0e6,
        }
    }

    /// Replays `frame` under `regions`, returning the timing report.
    pub fn simulate(&self, frame: &GrayFrame, frame_idx: u64, regions: &RegionList) -> PipelineReport {
        let _ = frame_idx; // classification result does not affect timing
        let width = u64::from(frame.width());
        let ppc = u64::from(self.pixels_per_clock.max(1));
        let mut selector = RoiSelector::new();
        let mut cycles: u64 = 0;
        let mut stall_cycles: u64 = 0;
        let mut fifo_credit = u64::from(self.fifo_depth);

        for y in 0..frame.height() {
            let shortlist_len = selector.advance_to_row(regions, y).len() as u64;
            // Row datapath time.
            let row_cycles = width.div_ceil(ppc);
            // Shortlist evaluation beyond one lane-group costs extra
            // cycles at the row boundary.
            let lookup_cycles =
                shortlist_len.div_ceil(u64::from(self.comparator_lanes.max(1))).saturating_sub(1);
            // The FIFO absorbs lookup bubbles up to its depth; the
            // horizontal blanking of the next row refills the credit.
            let absorbed = lookup_cycles.min(fifo_credit);
            let surfaced = lookup_cycles - absorbed;
            fifo_credit = u64::from(self.fifo_depth); // refilled during the row
            cycles += row_cycles + lookup_cycles;
            stall_cycles += surfaced;
        }

        let pixels = width * u64::from(frame.height());
        let effective_ppc = if cycles == 0 { 0.0 } else { pixels as f64 / cycles as f64 };
        PipelineReport {
            pixels,
            cycles,
            stall_cycles,
            effective_ppc,
            meets_target: stall_cycles == 0,
        }
    }

    /// Frame time in seconds for a report from this model.
    pub fn frame_time_s(&self, report: &PipelineReport) -> f64 {
        report.cycles as f64 / self.clock_hz
    }

    /// Sustainable frame rate implied by a report.
    pub fn fps(&self, report: &PipelineReport) -> f64 {
        1.0 / self.frame_time_s(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::RegionLabel;
    use rpr_frame::Plane;

    fn frame(w: u32, h: u32) -> GrayFrame {
        Plane::from_fn(w, h, |x, y| (x + y) as u8)
    }

    fn regions_grid(w: u32, h: u32, n: u32) -> RegionList {
        // n small regions spread over the frame.
        let cols = (n as f64).sqrt().ceil() as u32;
        let labels: Vec<RegionLabel> = (0..n)
            .map(|i| {
                let cx = (i % cols) * (w / cols.max(1)).max(1);
                let cy = (i / cols) * (h / cols.max(1)).max(1);
                RegionLabel::new(cx.min(w - 4), cy.min(h - 4), 4, 4, 1, 1)
            })
            .collect();
        RegionList::new_lossy(w, h, labels)
    }

    #[test]
    fn full_frame_meets_2ppc() {
        let model = EncoderPipelineModel::paper_config();
        let r = model.simulate(&frame(128, 128), 0, &RegionList::full_frame(128, 128));
        assert!(r.meets_target);
        assert!((r.effective_ppc - 2.0).abs() < 0.05, "ppc {}", r.effective_ppc);
    }

    #[test]
    fn moderate_region_counts_meet_target() {
        // Table 4: the paper's workloads average up to ~973 regions per
        // frame spread over a 4K-scale image; the per-row shortlist stays
        // small, so no stalls surface.
        let model = EncoderPipelineModel::paper_config();
        let regions = regions_grid(512, 512, 400);
        let r = model.simulate(&frame(512, 512), 0, &regions);
        assert!(r.meets_target, "stalls {}", r.stall_cycles);
        assert!(r.effective_ppc > 1.9);
    }

    #[test]
    fn pathological_row_concentration_degrades_ppc() {
        // Hundreds of regions stacked on the same rows exceed the lane
        // count and the FIFO: effective ppc must drop below target.
        let labels: Vec<RegionLabel> =
            (0..600).map(|i| RegionLabel::new((i % 60) * 2, 0, 2, 128, 1, 1)).collect();
        let regions = RegionList::new_lossy(128, 128, labels);
        let model = EncoderPipelineModel::paper_config();
        let r = model.simulate(&frame(128, 128), 0, &regions);
        assert!(r.stall_cycles > 0);
        assert!(!r.meets_target);
        assert!(r.effective_ppc < 2.0);
    }

    #[test]
    fn empty_region_list_is_fastest() {
        let model = EncoderPipelineModel::paper_config();
        let empty = model.simulate(&frame(256, 256), 0, &RegionList::empty(256, 256));
        assert!(empty.meets_target);
        assert_eq!(empty.stall_cycles, 0);
        assert_eq!(empty.cycles, 256 * 256 / 2);
    }

    #[test]
    fn frame_time_supports_4k30_at_2ppc() {
        // 4K x 30 fps needs 8.3 Mpx / 33 ms; at 2 px/clock and 300 MHz
        // the encoder has 4x headroom.
        let model = EncoderPipelineModel::paper_config();
        let report = PipelineReport {
            pixels: 3840 * 2160,
            cycles: 3840 * 2160 / 2,
            stall_cycles: 0,
            effective_ppc: 2.0,
            meets_target: true,
        };
        assert!(model.fps(&report) > 30.0);
    }
}

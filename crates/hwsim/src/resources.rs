use serde::{Deserialize, Serialize};
use std::fmt;

/// Which hardware unit (and comparison-engine organization) to estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignKind {
    /// Encoder with one comparator lane per region (strawman).
    ParallelEncoder {
        /// Number of simultaneously supported regions.
        regions: u32,
    },
    /// Encoder with BRAM-resident region list and per-row shortlisting
    /// (the paper's design).
    HybridEncoder {
        /// Number of simultaneously supported regions (capacity).
        regions: u32,
    },
    /// The rhythmic pixel decoder — mask-driven, so region-agnostic.
    Decoder {
        /// Decoded frame width in pixels (sizes the metadata scratchpad).
        width: u32,
    },
}

/// Whether the design fits and routes on the modeled device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SynthesisOutcome {
    /// Synthesizes and meets timing.
    Ok,
    /// Fails synthesis/placement (the paper's "No Synth" entries).
    NoSynth,
}

impl fmt::Display for SynthesisOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisOutcome::Ok => f.write_str("OK"),
            SynthesisOutcome::NoSynth => f.write_str("No Synth"),
        }
    }
}

/// Estimated FPGA resource utilization of one design point — a row of
/// the paper's Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Look-up tables.
    pub luts: u32,
    /// Flip-flops.
    pub ffs: u32,
    /// 18 Kb block RAMs.
    pub brams: u32,
    /// Synthesis verdict.
    pub outcome: SynthesisOutcome,
}

/// Structural resource estimator for the encoder/decoder designs.
///
/// Per-lane costs are calibrated against the paper's Table 5 post-layout
/// numbers; the point is not the absolute LUT counts but the *shape*:
/// parallel grows linearly and stops synthesizing, hybrid and the
/// decoder are flat in the region count.
///
/// # Example
///
/// ```
/// use rpr_hwsim::{DesignKind, ResourceEstimator, SynthesisOutcome};
///
/// let est = ResourceEstimator::zcu102();
/// let p400 = est.estimate(DesignKind::ParallelEncoder { regions: 400 });
/// let h400 = est.estimate(DesignKind::HybridEncoder { regions: 400 });
/// assert!(p400.luts > 10 * h400.luts);
///
/// let p1600 = est.estimate(DesignKind::ParallelEncoder { regions: 1600 });
/// assert_eq!(p1600.outcome, SynthesisOutcome::NoSynth);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceEstimator {
    /// LUTs per parallel comparator lane (x/y range compares, stride
    /// modulus, skip counter, priority-mux slice).
    pub luts_per_lane: f64,
    /// FFs per parallel comparator lane (region registers + pipeline
    /// staging).
    pub ffs_per_lane: f64,
    /// Fixed LUTs shared by any encoder (sequencer, sampler, counters,
    /// AXI plumbing).
    pub encoder_base_luts: u32,
    /// Fixed FFs shared by any encoder.
    pub encoder_base_ffs: u32,
    /// BRAMs for the encoder's line/FIFO buffers.
    pub encoder_buffer_brams: u32,
    /// Hybrid shortlist engine LUTs (constant: the shortlist width is
    /// fixed by the design, not the region count).
    pub hybrid_engine_luts: u32,
    /// Hybrid shortlist engine FFs.
    pub hybrid_engine_ffs: u32,
    /// Region capacity the hybrid's BRAM list is provisioned for.
    pub hybrid_capacity_regions: u32,
    /// Largest parallel priority network that still routes on the
    /// device; beyond this the design fails synthesis.
    pub max_parallel_lanes: u32,
    /// Decoder PMMU + FIFO sampling unit LUTs.
    pub decoder_luts: u32,
    /// Decoder FFs.
    pub decoder_ffs: u32,
}

impl ResourceEstimator {
    /// Calibration matching the paper's ZCU102 Table 5 within a few
    /// percent.
    pub fn zcu102() -> Self {
        ResourceEstimator {
            luts_per_lane: 38.7,
            ffs_per_lane: 49.2,
            encoder_base_luts: 774,
            encoder_base_ffs: 1018,
            encoder_buffer_brams: 6,
            hybrid_engine_luts: 948,
            hybrid_engine_ffs: 1189,
            hybrid_capacity_regions: 1600,
            max_parallel_lanes: 1024,
            decoder_luts: 699,
            decoder_ffs: 1082,
        }
    }

    /// Estimates one design point.
    pub fn estimate(&self, design: DesignKind) -> ResourceEstimate {
        match design {
            DesignKind::ParallelEncoder { regions } => {
                let luts = self.encoder_base_luts
                    + (self.luts_per_lane * f64::from(regions)).round() as u32;
                let ffs = self.encoder_base_ffs
                    + (self.ffs_per_lane * f64::from(regions)).round() as u32;
                let outcome = if regions > self.max_parallel_lanes {
                    SynthesisOutcome::NoSynth
                } else {
                    SynthesisOutcome::Ok
                };
                ResourceEstimate { luts, ffs, brams: self.encoder_buffer_brams, outcome }
            }
            DesignKind::HybridEncoder { regions } => {
                // The region list lives in BRAM sized for the provisioned
                // capacity (6 x u32 per region), so asking for fewer
                // regions changes nothing — the paper's flat rows.
                let capacity = regions.max(self.hybrid_capacity_regions);
                let list_bytes = u64::from(capacity) * 24;
                let list_brams = list_bytes.div_ceil(4608) as u32; // 36 Kb BRAM halves
                ResourceEstimate {
                    luts: self.hybrid_engine_luts,
                    ffs: self.hybrid_engine_ffs,
                    brams: list_brams + 2, // + metadata/line buffers
                    outcome: SynthesisOutcome::Ok,
                }
            }
            DesignKind::Decoder { width } => {
                // Metadata scratchpad: one EncMask row (2 b/px) for each
                // of the 4 history frames, plus offset staging.
                ResourceEstimate {
                    luts: self.decoder_luts,
                    ffs: self.decoder_ffs,
                    brams: 2 * width.div_ceil(1920),
                    outcome: SynthesisOutcome::Ok,
                }
            }
        }
    }

    /// The paper's Table 5 sweep: parallel and hybrid at the given
    /// region counts, as `(design, estimate)` rows.
    pub fn table5_sweep(&self, region_counts: &[u32]) -> Vec<(DesignKind, ResourceEstimate)> {
        let mut rows = Vec::new();
        for &n in region_counts {
            let d = DesignKind::ParallelEncoder { regions: n };
            rows.push((d, self.estimate(d)));
        }
        for &n in region_counts {
            let d = DesignKind::HybridEncoder { regions: n };
            rows.push((d, self.estimate(d)));
        }
        rows
    }
}

impl Default for ResourceEstimator {
    fn default() -> Self {
        ResourceEstimator::zcu102()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> ResourceEstimator {
        ResourceEstimator::zcu102()
    }

    /// Paper Table 5, parallel rows, within 5 %.
    #[test]
    fn parallel_matches_table5() {
        let cases = [(100u32, 4644u32, 5935u32), (200, 8635, 10935), (400, 16251, 20685)];
        for (n, luts, ffs) in cases {
            let r = est().estimate(DesignKind::ParallelEncoder { regions: n });
            let lut_err = (f64::from(r.luts) - f64::from(luts)).abs() / f64::from(luts);
            let ff_err = (f64::from(r.ffs) - f64::from(ffs)).abs() / f64::from(ffs);
            assert!(lut_err < 0.05, "n={n}: luts {} vs {luts}", r.luts);
            assert!(ff_err < 0.05, "n={n}: ffs {} vs {ffs}", r.ffs);
            assert_eq!(r.brams, 6);
            assert_eq!(r.outcome, SynthesisOutcome::Ok);
        }
    }

    /// Paper Table 5: parallel at 1600 regions does not synthesize.
    #[test]
    fn parallel_1600_fails_synthesis() {
        let r = est().estimate(DesignKind::ParallelEncoder { regions: 1600 });
        assert_eq!(r.outcome, SynthesisOutcome::NoSynth);
    }

    /// Paper Table 5, hybrid rows: ~950 LUTs / ~1190 FFs / 11 BRAMs,
    /// flat across 100–1600 regions.
    #[test]
    fn hybrid_is_flat_and_matches_table5() {
        let mut prev: Option<ResourceEstimate> = None;
        for n in [100u32, 200, 400, 1600] {
            let r = est().estimate(DesignKind::HybridEncoder { regions: n });
            assert!((900..1000).contains(&r.luts), "luts {}", r.luts);
            assert!((1150..1250).contains(&r.ffs), "ffs {}", r.ffs);
            assert_eq!(r.brams, 11);
            assert_eq!(r.outcome, SynthesisOutcome::Ok);
            if let Some(p) = prev {
                assert_eq!(p, r, "hybrid must be flat in region count");
            }
            prev = Some(r);
        }
    }

    /// §6.3: decoder needs 699 LUTs, 1082 FFs, 2 BRAMs for 1080p,
    /// regardless of region count.
    #[test]
    fn decoder_matches_section63() {
        let r = est().estimate(DesignKind::Decoder { width: 1920 });
        assert_eq!(r.luts, 699);
        assert_eq!(r.ffs, 1082);
        assert_eq!(r.brams, 2);
    }

    #[test]
    fn decoder_bram_scales_with_width_only() {
        let hd = est().estimate(DesignKind::Decoder { width: 1920 });
        let uhd = est().estimate(DesignKind::Decoder { width: 3840 });
        assert_eq!(uhd.brams, 2 * hd.brams);
        assert_eq!(uhd.luts, hd.luts);
    }

    #[test]
    fn hybrid_beats_parallel_beyond_trivial_sizes() {
        for n in [100u32, 400, 1000] {
            let p = est().estimate(DesignKind::ParallelEncoder { regions: n });
            let h = est().estimate(DesignKind::HybridEncoder { regions: n });
            assert!(p.luts > h.luts, "n={n}");
        }
    }

    #[test]
    fn table5_sweep_has_all_rows() {
        let rows = est().table5_sweep(&[100, 200, 400, 1600]);
        assert_eq!(rows.len(), 8);
        let no_synth = rows
            .iter()
            .filter(|(_, r)| r.outcome == SynthesisOutcome::NoSynth)
            .count();
        assert_eq!(no_synth, 1);
    }

    #[test]
    fn outcome_display_matches_paper_wording() {
        assert_eq!(SynthesisOutcome::NoSynth.to_string(), "No Synth");
        assert_eq!(SynthesisOutcome::Ok.to_string(), "OK");
    }
}

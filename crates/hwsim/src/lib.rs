//! Micro-architectural models of the rhythmic pixel encoder and
//! decoder hardware: FPGA resource estimation, power estimation, and
//! pipeline cycle simulation.
//!
//! The paper reports these numbers from Vivado post-layout runs on a
//! ZCU102 (Table 5, §6.3); with no FPGA toolchain available, this crate
//! derives them *structurally* from the two comparison-engine designs:
//!
//! * the **parallel** design instantiates one comparator lane per
//!   region, so LUT/FF cost grows linearly with region count and the
//!   region-priority network's routing congestion eventually makes the
//!   design unsynthesizable (the paper's "No Synth" at 1600 regions);
//! * the **hybrid** design keeps the region list in BRAM and shortlists
//!   per row, so its logic footprint is constant in the region count.
//!
//! [`EncoderPipelineModel`] replays a frame through the streaming
//! encoder and checks the 2 pixels/clock throughput contract;
//! [`DecoderLatencyModel`] prices the PMMU's added read latency;
//! [`PowerModel`] turns resources and activity into milliwatts.

#![deny(missing_docs)]

mod latency;
mod pipeline;
mod power;
mod resources;
mod scratchpad;

pub use latency::{DecoderLatencyModel, SwDecoderModel};
pub use pipeline::{EncoderPipelineModel, PipelineReport};
pub use power::{PowerEstimate, PowerModel};
pub use resources::{DesignKind, ResourceEstimate, ResourceEstimator, SynthesisOutcome};
pub use scratchpad::{MetadataScratchpad, ScratchpadStats};

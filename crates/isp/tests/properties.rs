//! Property tests for the ISP stages.

use proptest::prelude::*;
use rpr_frame::{Plane, RgbFrame};
use rpr_isp::{
    demosaic_bilinear, estimate_gray_world, pack_uyvy, rgb_to_ycbcr, unpack_uyvy,
    ycbcr_to_rgb, ColorMatrix, GammaLut, IspConfig, IspPipeline, LensShading,
};
use rpr_sensor::{ImageSensor, SensorConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flat colour fields survive the whole sensor+demosaic path in the
    /// interior (Bayer sampling of a constant field is lossless).
    #[test]
    fn flat_fields_roundtrip(r in 0u8..=255, g in 0u8..=255, b in 0u8..=255) {
        let sensor = ImageSensor::new(SensorConfig::noiseless(12, 12));
        let scene = RgbFrame::from_fn(12, 12, |_, _| [r, g, b]);
        let rgb = demosaic_bilinear(&sensor.capture(&scene, 0));
        for y in 2..10 {
            for x in 2..10 {
                prop_assert_eq!(rgb.get(x, y), Some([r, g, b]));
            }
        }
    }

    /// Gamma LUTs are monotone with fixed endpoints for any exponent.
    #[test]
    fn gamma_monotone(gamma in 0.2f64..5.0) {
        let lut = GammaLut::new(gamma);
        prop_assert_eq!(lut.apply(0), 0);
        prop_assert_eq!(lut.apply(255), 255);
        for v in 1..=255u8 {
            prop_assert!(lut.apply(v) >= lut.apply(v - 1));
        }
    }

    /// Colour matrices distribute over scaling: M(k * px) ≈ k * M(px)
    /// while unsaturated.
    #[test]
    fn ccm_is_linear(r in 0u8..60, g in 0u8..60, b in 0u8..60) {
        let m = ColorMatrix::typical_mobile();
        let single = m.apply([r, g, b]);
        let double = m.apply([r * 2, g * 2, b * 2]);
        for c in 0..3 {
            prop_assert!((i32::from(double[c]) - 2 * i32::from(single[c])).abs() <= 2);
        }
    }

    /// YCbCr conversion round-trips within rounding error for any pixel.
    #[test]
    fn ycbcr_roundtrip(r in 0u8..=255, g in 0u8..=255, b in 0u8..=255) {
        let back = ycbcr_to_rgb(rgb_to_ycbcr([r, g, b]));
        prop_assert!((i32::from(back[0]) - i32::from(r)).abs() <= 2);
        prop_assert!((i32::from(back[1]) - i32::from(g)).abs() <= 2);
        prop_assert!((i32::from(back[2]) - i32::from(b)).abs() <= 2);
    }

    /// UYVY packing preserves luma for every pixel of any even-width
    /// frame.
    #[test]
    fn uyvy_luma_exact(w2 in 1u32..12, h in 1u32..12, seed in 0u32..100) {
        let w = w2 * 2;
        let frame = RgbFrame::from_fn(w, h, |x, y| {
            [
                (x.wrapping_mul(37) ^ seed) as u8,
                (y.wrapping_mul(53) ^ seed) as u8,
                (x ^ y) as u8,
            ]
        });
        let (luma, _) = unpack_uyvy(&pack_uyvy(&frame), w, h);
        for y in 0..h {
            for x in 0..w {
                prop_assert_eq!(luma.get(x, y), Some(rgb_to_ycbcr(frame.get(x, y).unwrap())[0]));
            }
        }
    }

    /// AWB gains always normalize a uniformly tinted scene back to
    /// gray (within clamping range).
    #[test]
    fn awb_neutralizes_tints(r in 40u8..=220, g in 40u8..=220, b in 40u8..=220) {
        // Stay inside the gain clamp range [0.25, 4.0].
        prop_assume!(f64::from(g) / f64::from(r.min(b)) < 3.9);
        prop_assume!(f64::from(g) / f64::from(r.max(b)) > 0.26);
        let frame = RgbFrame::from_fn(8, 8, |_, _| [r, g, b]);
        let gains = estimate_gray_world(&frame);
        let out = gains.to_matrix().apply([r, g, b]);
        // All channels land on the green mean.
        prop_assert!((i32::from(out[0]) - i32::from(g)).abs() <= 2, "{out:?}");
        prop_assert!((i32::from(out[2]) - i32::from(g)).abs() <= 2, "{out:?}");
    }

    /// Lens shading: apply-then-correct is near-identity away from the
    /// clamp region, for any legal falloff.
    #[test]
    fn lens_roundtrip(falloff in 0.0f64..0.6) {
        let lens = LensShading::new(falloff);
        let frame = Plane::from_fn(24, 24, |x, y| (40 + x * 4 + y * 2) as u8);
        let round = lens.correct(&lens.apply(&frame));
        for y in 0..24 {
            for x in 0..24 {
                let a = i32::from(frame.get(x, y).unwrap());
                let b = i32::from(round.get(x, y).unwrap());
                prop_assert!((a - b).abs() <= 2, "({x},{y}): {a} vs {b}");
            }
        }
    }

    /// The pipeline's cycle accounting is exact for any geometry and
    /// pixels-per-clock rate.
    #[test]
    fn cycle_accounting(w in 1u32..64, h in 1u32..64, ppc in 1u32..5) {
        let isp = IspPipeline::new(IspConfig { pixels_per_clock: ppc, ..IspConfig::default() });
        let raw: rpr_frame::GrayFrame = Plane::new(w, h);
        isp.process(&raw);
        let expected = (u64::from(w) * u64::from(h)).div_ceil(u64::from(ppc));
        prop_assert_eq!(isp.stats().cycles, expected);
    }
}

//! Golden-vector regression tests for the ISP stages: bilinear
//! demosaic, gamma LUT, colour-correction matrix, YUV conversion, and
//! the assembled demosaic→CCM→gamma→luma pipeline.
//!
//! The expected values are the outputs of the implementation as
//! specified — fixed-point BT.601 luma weights, LUT-quantized gamma,
//! clamped 4.8 fixed-point CCM — captured on a deterministic synthetic
//! Bayer field. Any numeric drift in an ISP stage (changed rounding,
//! reordered clamps, new coefficients) fails here with the exact pixel
//! that moved, which matters because the encoder consumes the luma
//! plane and silent drift would shift every downstream accuracy
//! number.

use rpr_frame::{GrayFrame, Plane};
use rpr_isp::{
    demosaic_bilinear, pack_uyvy, rgb_to_ycbcr, unpack_uyvy, ycbcr_to_rgb, ColorMatrix,
    GammaLut, IspConfig, IspPipeline,
};

/// The deterministic Bayer test field used by every golden vector.
fn bayer(w: u32, h: u32) -> GrayFrame {
    Plane::from_fn(w, h, |x, y| ((x * 31 + y * 57 + 13) % 256) as u8)
}

#[test]
fn demosaic_bilinear_matches_golden() {
    const GOLDEN: [[u8; 3]; 24] = [
        [13, 35, 57], [44, 44, 73], [75, 89, 104], [106, 106, 135], [137, 151, 166],
        [153, 168, 197], [70, 70, 86], [101, 101, 101], [132, 132, 132], [163, 163, 163],
        [194, 194, 194], [146, 153, 225], [127, 135, 143], [158, 158, 158], [189, 189, 125],
        [220, 220, 92], [251, 123, 123], [139, 26, 154], [156, 184, 200], [187, 201, 215],
        [218, 246, 118], [185, 135, 21], [152, 52, 52], [103, 61, 83],
    ];
    let rgb = demosaic_bilinear(&bayer(6, 4));
    for y in 0..4u32 {
        for x in 0..6u32 {
            assert_eq!(
                rgb.get(x, y),
                Some(GOLDEN[(y * 6 + x) as usize]),
                "demosaic drifted at ({x},{y})"
            );
        }
    }
}

#[test]
fn gamma_lut_2_2_matches_golden() {
    const INPUT: [u8; 15] = [0, 1, 2, 5, 10, 25, 50, 64, 100, 128, 180, 200, 225, 254, 255];
    const GOLDEN: [u8; 15] =
        [0, 21, 28, 43, 59, 89, 122, 136, 167, 186, 218, 228, 241, 255, 255];
    let lut = GammaLut::new(2.2);
    for (i, &p) in INPUT.iter().enumerate() {
        assert_eq!(lut.apply(p), GOLDEN[i], "gamma(2.2) drifted at input {p}");
    }
    // The identity curve must stay exactly the identity.
    let id = GammaLut::identity();
    for v in [0u8, 1, 127, 128, 254, 255] {
        assert_eq!(id.apply(v), v);
    }
}

const TRIPLES: [[u8; 3]; 8] = [
    [0, 0, 0], [255, 255, 255], [255, 0, 0], [0, 255, 0], [0, 0, 255],
    [100, 150, 200], [13, 57, 31], [200, 100, 50],
];

#[test]
fn typical_mobile_ccm_matches_golden() {
    const GOLDEN: [[u8; 3]; 8] = [
        [0, 0, 0], [255, 255, 255], [255, 0, 0], [0, 255, 0], [0, 0, 255],
        [80, 148, 218], [2, 69, 25], [235, 95, 30],
    ];
    let ccm = ColorMatrix::typical_mobile();
    for (i, &t) in TRIPLES.iter().enumerate() {
        assert_eq!(ccm.apply(t), GOLDEN[i], "typical_mobile CCM drifted on {t:?}");
    }
}

#[test]
fn white_balance_ccm_matches_golden() {
    const GOLDEN: [[u8; 3]; 8] = [
        [0, 0, 0], [255, 255, 191], [255, 0, 0], [0, 255, 0], [0, 0, 191],
        [150, 150, 150], [20, 57, 23], [255, 100, 38],
    ];
    let wb = ColorMatrix::white_balance(1.5, 1.0, 0.75);
    for (i, &t) in TRIPLES.iter().enumerate() {
        assert_eq!(wb.apply(t), GOLDEN[i], "white_balance(1.5,1.0,0.75) drifted on {t:?}");
    }
    // Identity matrix is exactly the identity on every triple.
    let id = ColorMatrix::identity();
    for &t in &TRIPLES {
        assert_eq!(id.apply(t), t);
    }
}

#[test]
fn bt601_ycbcr_matches_golden() {
    const GOLDEN: [[u8; 3]; 8] = [
        [0, 128, 128], [255, 128, 128], [76, 85, 255], [150, 44, 21], [29, 255, 107],
        [141, 161, 99], [41, 122, 108], [124, 86, 182],
    ];
    for (i, &t) in TRIPLES.iter().enumerate() {
        let ycbcr = rgb_to_ycbcr(t);
        assert_eq!(ycbcr, GOLDEN[i], "rgb_to_ycbcr drifted on {t:?}");
        // Round trip stays within BT.601 quantization error.
        let back = ycbcr_to_rgb(ycbcr);
        for c in 0..3 {
            let err = (i16::from(back[c]) - i16::from(t[c])).abs();
            assert!(err <= 3, "ycbcr round trip error {err} on {t:?} channel {c}");
        }
    }
}

#[test]
fn uyvy_packing_matches_golden() {
    const GOLDEN: [u8; 48] = [
        143, 31, 120, 47, 140, 87, 123, 109, 141, 149, 119, 167, 132, 72, 127, 101,
        128, 132, 128, 163, 146, 194, 123, 159, 130, 134, 125, 158, 80, 182, 135, 205,
        139, 161, 183, 74, 139, 177, 116, 198, 66, 223, 143, 137, 121, 82, 162, 76,
    ];
    let rgb = demosaic_bilinear(&bayer(6, 4));
    let packed = pack_uyvy(&rgb);
    assert_eq!(packed.len(), 48, "UYVY is 2 bytes per pixel");
    assert_eq!(packed[..], GOLDEN[..], "UYVY packing drifted");
    // Unpack returns the packed luma exactly (chroma is subsampled).
    let (luma, _) = unpack_uyvy(&packed, 6, 4);
    for y in 0..4u32 {
        for x in 0..6u32 {
            let [r, g, b] = rgb.get(x, y).unwrap();
            let expect = rgb_to_ycbcr([r, g, b])[0];
            assert_eq!(luma.get(x, y), Some(expect), "luma ({x},{y})");
        }
    }
}

#[test]
fn full_pipeline_luma_matches_golden() {
    const GOLDEN: [u8; 48] = [
        79, 105, 147, 164, 194, 207, 204, 238, 134, 160, 183, 204, 222, 165, 82, 156,
        184, 201, 219, 233, 192, 89, 118, 146, 217, 196, 212, 185, 137, 158, 170, 185,
        191, 86, 148, 141, 167, 189, 208, 220, 122, 134, 156, 172, 200, 213, 232, 168,
    ];
    let pipe = IspPipeline::new(IspConfig {
        gamma: 2.0,
        ccm: ColorMatrix::typical_mobile(),
        ..Default::default()
    });
    let out = pipe.process(&bayer(8, 6));
    assert_eq!(out.luma.as_slice(), &GOLDEN[..], "demosaic→CCM→gamma→luma drifted");
    assert_eq!((out.rgb.width(), out.rgb.height()), (8, 6));
}

//! Lens-shading (vignetting) correction — the radial gain map a mobile
//! ISP applies to undo the lens's brightness falloff toward the frame
//! corners.

use rpr_frame::{GrayFrame, Plane};

/// A radial lens-shading model: the sensor observes
/// `I(r) = I0 * (1 - falloff * (r / r_max)^2)` and the corrector
/// multiplies by the inverse gain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LensShading {
    /// Brightness loss at the frame corner, in `[0, 0.9]`
    /// (0.3 = corners 30 % darker than the centre).
    pub falloff: f64,
}

impl LensShading {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics when `falloff` is outside `[0, 0.9]`.
    pub fn new(falloff: f64) -> Self {
        assert!((0.0..=0.9).contains(&falloff), "falloff must be within [0, 0.9]");
        LensShading { falloff }
    }

    /// The attenuation the lens applies at `(x, y)` of a `w x h` frame,
    /// in `(0, 1]`.
    pub fn attenuation(&self, x: u32, y: u32, w: u32, h: u32) -> f64 {
        let cx = f64::from(w) / 2.0;
        let cy = f64::from(h) / 2.0;
        let dx = f64::from(x) + 0.5 - cx;
        let dy = f64::from(y) + 0.5 - cy;
        let r2_max = cx * cx + cy * cy;
        1.0 - self.falloff * (dx * dx + dy * dy) / r2_max.max(1.0)
    }

    /// Applies the vignetting to a clean frame (sensor simulation side).
    pub fn apply(&self, frame: &GrayFrame) -> GrayFrame {
        Plane::from_fn(frame.width(), frame.height(), |x, y| {
            let v = f64::from(frame.get(x, y).expect("in bounds"));
            (v * self.attenuation(x, y, frame.width(), frame.height()))
                .round()
                .clamp(0.0, 255.0) as u8
        })
    }

    /// Corrects a vignetted frame (ISP side): multiplies by the inverse
    /// attenuation, saturating at 255.
    pub fn correct(&self, frame: &GrayFrame) -> GrayFrame {
        Plane::from_fn(frame.width(), frame.height(), |x, y| {
            let v = f64::from(frame.get(x, y).expect("in bounds"));
            (v / self.attenuation(x, y, frame.width(), frame.height()).max(0.1))
                .round()
                .clamp(0.0, 255.0) as u8
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_is_unattenuated() {
        let lens = LensShading::new(0.4);
        let a = lens.attenuation(32, 24, 64, 48);
        assert!(a > 0.99, "centre attenuation {a}");
    }

    #[test]
    fn corners_lose_the_configured_fraction() {
        let lens = LensShading::new(0.4);
        let a = lens.attenuation(0, 0, 64, 48);
        assert!((a - 0.6).abs() < 0.03, "corner attenuation {a}");
    }

    #[test]
    fn apply_then_correct_roundtrips_within_rounding() {
        let lens = LensShading::new(0.3);
        let frame = Plane::from_fn(32, 32, |x, y| (60 + x * 3 + y) as u8);
        let round = lens.correct(&lens.apply(&frame));
        for y in 0..32 {
            for x in 0..32 {
                let a = i32::from(frame.get(x, y).unwrap());
                let b = i32::from(round.get(x, y).unwrap());
                assert!((a - b).abs() <= 2, "({x},{y}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn zero_falloff_is_identity() {
        let lens = LensShading::new(0.0);
        let frame = Plane::from_fn(16, 16, |x, y| (x * y) as u8);
        assert_eq!(lens.apply(&frame), frame);
        assert_eq!(lens.correct(&frame), frame);
    }

    #[test]
    #[should_panic(expected = "falloff")]
    fn excessive_falloff_panics() {
        let _ = LensShading::new(0.95);
    }
}

//! Image signal processor model (substitute for the Xilinx reVISION ISP
//! blocks the paper builds on, §5.1).
//!
//! The pipeline mirrors the paper's Table 2 ISP: Bayer demosaic, gamma
//! correction, colour correction, and colour-space conversion, all
//! processing at 2 pixels per clock — the throughput constraint the
//! rhythmic encoder has to keep up with. Each stage is usable on its
//! own; [`IspPipeline`] chains them and accounts cycles and line-buffer
//! usage.
//!
//! # Example
//!
//! ```
//! use rpr_frame::RgbFrame;
//! use rpr_isp::{IspConfig, IspPipeline};
//! use rpr_sensor::{ImageSensor, SensorConfig};
//!
//! let sensor = ImageSensor::new(SensorConfig::noiseless(16, 16));
//! let scene = RgbFrame::from_fn(16, 16, |x, _| [x as u8 * 10, 128, 30]);
//! let raw = sensor.capture(&scene, 0);
//!
//! let isp = IspPipeline::new(IspConfig::default());
//! let out = isp.process(&raw);
//! assert_eq!(out.rgb.width(), 16);
//! ```

#![deny(missing_docs)]

mod awb;
mod ccm;
mod demosaic;
mod gamma;
mod lens;
mod pipeline;
mod yuv;

pub use awb::{estimate_gray_world, AwbGains};
pub use ccm::ColorMatrix;
pub use demosaic::demosaic_bilinear;
pub use gamma::GammaLut;
pub use lens::LensShading;
pub use pipeline::{IspConfig, IspOutput, IspPipeline, IspStats};
pub use yuv::{pack_uyvy, rgb_to_ycbcr, unpack_uyvy, ycbcr_to_rgb};

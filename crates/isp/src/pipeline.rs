use crate::{demosaic_bilinear, ColorMatrix, GammaLut};
use rpr_frame::{GrayFrame, RgbFrame};
use serde::{Deserialize, Serialize};

/// Configuration of the modeled ISP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IspConfig {
    /// Gamma exponent of the transfer curve (1.0 = identity).
    pub gamma: f64,
    /// Colour-correction matrix.
    pub ccm: ColorMatrix,
    /// Pixels processed per clock cycle (the paper's blocks run at 2).
    pub pixels_per_clock: u32,
    /// ISP clock in Hz (ZU9EG programmable-logic class).
    pub clock_hz: f64,
}

impl Default for IspConfig {
    fn default() -> Self {
        IspConfig {
            gamma: 2.2,
            ccm: ColorMatrix::identity(),
            pixels_per_clock: 2,
            clock_hz: 300.0e6,
        }
    }
}

/// Per-frame ISP processing record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct IspStats {
    /// Frames processed.
    pub frames: u64,
    /// Pixels processed.
    pub pixels: u64,
    /// Clock cycles consumed at the configured pixels/clock.
    pub cycles: u64,
    /// Line-buffer rows the stage chain requires (demosaic needs a
    /// 3-row window → 2 stored lines).
    pub line_buffer_rows: u32,
}

/// Output of one ISP pass.
#[derive(Debug, Clone, PartialEq)]
pub struct IspOutput {
    /// Colour-corrected, gamma-encoded RGB.
    pub rgb: RgbFrame,
    /// BT.601 luminance of `rgb` — what the (grayscale) vision pipeline
    /// and the rhythmic encoder consume.
    pub luma: GrayFrame,
}

/// The modeled ISP: demosaic → CCM → gamma → luma extraction, with
/// cycle accounting at the configured pixels/clock rate.
///
/// # Example
///
/// ```
/// use rpr_frame::Plane;
/// use rpr_isp::{IspConfig, IspPipeline};
///
/// let isp = IspPipeline::new(IspConfig::default());
/// let raw = Plane::from_fn(8, 8, |_, _| 120u8);
/// let out = isp.process(&raw);
/// assert_eq!(out.luma.width(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct IspPipeline {
    config: IspConfig,
    gamma: GammaLut,
    stats: std::cell::Cell<IspStats>,
}

impl IspPipeline {
    /// Creates the pipeline.
    ///
    /// # Panics
    ///
    /// Panics when `pixels_per_clock` is zero or `gamma` is not
    /// positive.
    pub fn new(config: IspConfig) -> Self {
        assert!(config.pixels_per_clock > 0, "pixels per clock must be >= 1");
        IspPipeline {
            config,
            gamma: GammaLut::new(config.gamma),
            stats: std::cell::Cell::new(IspStats {
                line_buffer_rows: 2,
                ..IspStats::default()
            }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &IspConfig {
        &self.config
    }

    /// Accumulated processing statistics.
    pub fn stats(&self) -> IspStats {
        self.stats.get()
    }

    /// Processes one Bayer raw frame into RGB + luma.
    pub fn process(&self, raw: &GrayFrame) -> IspOutput {
        let rgb = demosaic_bilinear(raw);
        let corrected = self.config.ccm.apply_rgb(&rgb);
        let rgb = self.gamma.apply_rgb(&corrected);
        let luma = rgb.to_gray();

        let pixels = u64::from(raw.width()) * u64::from(raw.height());
        let mut s = self.stats.get();
        s.frames += 1;
        s.pixels += pixels;
        s.cycles += pixels.div_ceil(u64::from(self.config.pixels_per_clock));
        self.stats.set(s);

        IspOutput { rgb, luma }
    }

    /// Seconds of ISP time one `width x height` frame costs at the
    /// configured clock — used to check the pipeline sustains the
    /// sensor's frame rate.
    pub fn frame_time_s(&self, width: u32, height: u32) -> f64 {
        let cycles = (u64::from(width) * u64::from(height))
            .div_ceil(u64::from(self.config.pixels_per_clock));
        cycles as f64 / self.config.clock_hz
    }

    /// Maximum frame rate the ISP sustains for `width x height`.
    pub fn max_fps(&self, width: u32, height: u32) -> f64 {
        1.0 / self.frame_time_s(width, height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_frame::Plane;
    use rpr_sensor::{ImageSensor, SensorConfig};

    #[test]
    fn flat_field_survives_pipeline() {
        let isp = IspPipeline::new(IspConfig { gamma: 1.0, ..IspConfig::default() });
        let raw = Plane::from_fn(16, 16, |_, _| 90u8);
        let out = isp.process(&raw);
        assert_eq!(out.rgb.get(8, 8), Some([90, 90, 90]));
        assert_eq!(out.luma.get(8, 8), Some(90));
    }

    #[test]
    fn gamma_is_applied() {
        let flat = IspPipeline::new(IspConfig { gamma: 1.0, ..IspConfig::default() });
        let curved = IspPipeline::new(IspConfig { gamma: 2.2, ..IspConfig::default() });
        let raw = Plane::from_fn(8, 8, |_, _| 60u8);
        let a = flat.process(&raw).luma.get(4, 4).unwrap();
        let b = curved.process(&raw).luma.get(4, 4).unwrap();
        assert!(b > a, "gamma 2.2 must brighten 60: {a} vs {b}");
    }

    #[test]
    fn cycle_accounting_at_two_ppc() {
        let isp = IspPipeline::new(IspConfig::default());
        let raw: GrayFrame = Plane::new(64, 32);
        isp.process(&raw);
        let s = isp.stats();
        assert_eq!(s.frames, 1);
        assert_eq!(s.pixels, 64 * 32);
        assert_eq!(s.cycles, 64 * 32 / 2);
        assert_eq!(s.line_buffer_rows, 2);
    }

    #[test]
    fn pipeline_sustains_4k60_at_two_ppc() {
        // The reVISION pipeline delivers 4K60 pass-through (paper §5.1).
        let isp = IspPipeline::new(IspConfig::default());
        assert!(isp.max_fps(3840, 2160) >= 60.0);
    }

    #[test]
    fn one_ppc_halves_throughput() {
        let two = IspPipeline::new(IspConfig::default());
        let one =
            IspPipeline::new(IspConfig { pixels_per_clock: 1, ..IspConfig::default() });
        let r = two.max_fps(1920, 1080) / one.max_fps(1920, 1080);
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_sensor_to_luma_preserves_structure() {
        // A bright square on dark background must still be a bright
        // square after sensor + ISP.
        let sensor = ImageSensor::new(SensorConfig::noiseless(32, 32));
        let scene = rpr_frame::RgbFrame::from_fn(32, 32, |x, y| {
            if (8..24).contains(&x) && (8..24).contains(&y) {
                [220, 220, 220]
            } else {
                [30, 30, 30]
            }
        });
        let raw = sensor.capture(&scene, 0);
        let isp = IspPipeline::new(IspConfig::default());
        let out = isp.process(&raw);
        let inside = f64::from(out.luma.get(16, 16).unwrap());
        let outside = f64::from(out.luma.get(2, 2).unwrap());
        assert!(inside - outside > 60.0, "lost contrast: {inside} vs {outside}");
    }

    #[test]
    #[should_panic(expected = "pixels per clock")]
    fn zero_ppc_panics() {
        let _ = IspPipeline::new(IspConfig { pixels_per_clock: 0, ..IspConfig::default() });
    }
}

//! Colour-space conversion (paper §2: the ISP performs "format
//! changes, e.g., YUV conversion") — BT.601 RGB↔YCbCr and the packed
//! YUV 4:2:2 (UYVY) wire format video pipelines move around.
//!
//! The luminance plane produced here is what the (grayscale) vision
//! stack and the rhythmic encoder consume; the packed 4:2:2 form backs
//! the 2-bytes-per-pixel accounting of
//! [`rpr_frame::PixelFormat::Yuv422`].

use rpr_frame::{GrayFrame, Plane, RgbFrame};

/// Converts one RGB pixel to full-range BT.601 YCbCr.
pub fn rgb_to_ycbcr(rgb: [u8; 3]) -> [u8; 3] {
    let r = f64::from(rgb[0]);
    let g = f64::from(rgb[1]);
    let b = f64::from(rgb[2]);
    let y = 0.299 * r + 0.587 * g + 0.114 * b;
    let cb = 128.0 - 0.168_736 * r - 0.331_264 * g + 0.5 * b;
    let cr = 128.0 + 0.5 * r - 0.418_688 * g - 0.081_312 * b;
    [clamp(y), clamp(cb), clamp(cr)]
}

/// Converts one full-range BT.601 YCbCr pixel back to RGB.
pub fn ycbcr_to_rgb(ycbcr: [u8; 3]) -> [u8; 3] {
    let y = f64::from(ycbcr[0]);
    let cb = f64::from(ycbcr[1]) - 128.0;
    let cr = f64::from(ycbcr[2]) - 128.0;
    let r = y + 1.402 * cr;
    let g = y - 0.344_136 * cb - 0.714_136 * cr;
    let b = y + 1.772 * cb;
    [clamp(r), clamp(g), clamp(b)]
}

fn clamp(v: f64) -> u8 {
    v.round().clamp(0.0, 255.0) as u8
}

/// Packs an RGB frame into UYVY 4:2:2: two horizontal neighbours share
/// one averaged Cb/Cr pair, `[U, Y0, V, Y1]` per pixel pair — exactly
/// 2 bytes per pixel.
///
/// # Panics
///
/// Panics when the frame width is odd (4:2:2 packs pixel pairs).
///
/// # Example
///
/// ```
/// use rpr_frame::RgbFrame;
/// use rpr_isp::{pack_uyvy, unpack_uyvy};
///
/// let frame = RgbFrame::from_fn(4, 2, |x, _| [x as u8 * 60, 128, 30]);
/// let packed = pack_uyvy(&frame);
/// assert_eq!(packed.len(), 4 * 2 * 2); // 2 bytes/px
/// let (luma, rgb) = unpack_uyvy(&packed, 4, 2);
/// assert_eq!(luma.width(), 4);
/// assert_eq!(rgb.width(), 4);
/// ```
pub fn pack_uyvy(frame: &RgbFrame) -> Vec<u8> {
    assert!(frame.width().is_multiple_of(2), "UYVY requires even width");
    let mut out = Vec::with_capacity(frame.width() as usize * frame.height() as usize * 2);
    for y in 0..frame.height() {
        for x in (0..frame.width()).step_by(2) {
            let a = rgb_to_ycbcr(frame.get(x, y).expect("in bounds"));
            let b = rgb_to_ycbcr(frame.get(x + 1, y).expect("in bounds"));
            let cb = ((u16::from(a[1]) + u16::from(b[1])) / 2) as u8;
            let cr = ((u16::from(a[2]) + u16::from(b[2])) / 2) as u8;
            out.extend_from_slice(&[cb, a[0], cr, b[0]]);
        }
    }
    out
}

/// Unpacks UYVY 4:2:2 into the luminance plane and an RGB
/// reconstruction.
///
/// # Panics
///
/// Panics when `data.len() != width * height * 2` or `width` is odd.
pub fn unpack_uyvy(data: &[u8], width: u32, height: u32) -> (GrayFrame, RgbFrame) {
    assert!(width.is_multiple_of(2), "UYVY requires even width");
    assert_eq!(data.len(), width as usize * height as usize * 2, "packed size mismatch");
    let mut luma: GrayFrame = Plane::new(width, height);
    let mut rgb = RgbFrame::new(width, height);
    let mut i = 0;
    for y in 0..height {
        for x in (0..width).step_by(2) {
            let (cb, y0, cr, y1) = (data[i], data[i + 1], data[i + 2], data[i + 3]);
            i += 4;
            luma.set(x, y, y0);
            luma.set(x + 1, y, y1);
            rgb.set(x, y, ycbcr_to_rgb([y0, cb, cr]));
            rgb.set(x + 1, y, ycbcr_to_rgb([y1, cb, cr]));
        }
    }
    (luma, rgb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ycbcr_roundtrip_is_near_lossless() {
        for rgb in [[0u8, 0, 0], [255, 255, 255], [200, 30, 90], [12, 250, 128]] {
            let back = ycbcr_to_rgb(rgb_to_ycbcr(rgb));
            for c in 0..3 {
                assert!(
                    (i32::from(back[c]) - i32::from(rgb[c])).abs() <= 2,
                    "{rgb:?} -> {back:?}"
                );
            }
        }
    }

    #[test]
    fn gray_pixels_have_neutral_chroma() {
        let [_, cb, cr] = rgb_to_ycbcr([120, 120, 120]);
        assert_eq!((cb, cr), (128, 128));
    }

    #[test]
    fn luma_matches_bt601_weights() {
        let [y, _, _] = rgb_to_ycbcr([0, 255, 0]);
        assert_eq!(y, 150); // 0.587 * 255
    }

    #[test]
    fn uyvy_is_two_bytes_per_pixel() {
        let frame = RgbFrame::new(8, 4);
        assert_eq!(pack_uyvy(&frame).len(), 8 * 4 * 2);
    }

    #[test]
    fn uyvy_roundtrip_preserves_luma_exactly() {
        let frame = RgbFrame::from_fn(16, 8, |x, y| [(x * 16) as u8, (y * 30) as u8, 77]);
        let packed = pack_uyvy(&frame);
        let (luma, _) = unpack_uyvy(&packed, 16, 8);
        for y in 0..8 {
            for x in 0..16 {
                let expected = rgb_to_ycbcr(frame.get(x, y).unwrap())[0];
                assert_eq!(luma.get(x, y), Some(expected), "({x},{y})");
            }
        }
    }

    #[test]
    fn uyvy_roundtrip_rgb_is_close_on_smooth_content() {
        // Chroma subsampling loses little on horizontally smooth colour.
        let frame = RgbFrame::from_fn(16, 8, |_, y| [200, (40 + y * 10) as u8, 90]);
        let packed = pack_uyvy(&frame);
        let (_, back) = unpack_uyvy(&packed, 16, 8);
        for y in 0..8 {
            for x in 0..16 {
                let a = frame.get(x, y).unwrap();
                let b = back.get(x, y).unwrap();
                for c in 0..3 {
                    assert!((i32::from(a[c]) - i32::from(b[c])).abs() <= 3);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "even width")]
    fn odd_width_panics() {
        let _ = pack_uyvy(&RgbFrame::new(3, 2));
    }
}

use rpr_frame::{GrayFrame, RgbFrame};

/// Bilinear demosaic of RGGB Bayer raw data into full RGB.
///
/// Each missing colour sample is the average of its nearest same-colour
/// neighbours (edge pixels replicate). This is the classic low-cost
/// interpolation used by streaming ISP IP.
///
/// # Example
///
/// ```
/// use rpr_frame::Plane;
/// use rpr_isp::demosaic_bilinear;
///
/// // A uniform gray Bayer field demosaics to uniform RGB.
/// let raw = Plane::from_fn(8, 8, |_, _| 100u8);
/// let rgb = demosaic_bilinear(&raw);
/// assert_eq!(rgb.get(4, 4), Some([100, 100, 100]));
/// ```
pub fn demosaic_bilinear(raw: &GrayFrame) -> RgbFrame {
    let w = raw.width();
    let h = raw.height();
    let sample = |x: i64, y: i64| f64::from(raw.get_clamped(x, y));

    RgbFrame::from_fn(w, h, |ux, uy| {
        let x = i64::from(ux);
        let y = i64::from(uy);
        let is_red = ux % 2 == 0 && uy % 2 == 0;
        let is_blue = ux % 2 == 1 && uy % 2 == 1;
        let is_green_r = ux % 2 == 1 && uy % 2 == 0; // green on red row
        let center = sample(x, y);

        let cross = (sample(x - 1, y) + sample(x + 1, y) + sample(x, y - 1) + sample(x, y + 1))
            / 4.0;
        let horiz = (sample(x - 1, y) + sample(x + 1, y)) / 2.0;
        let vert = (sample(x, y - 1) + sample(x, y + 1)) / 2.0;
        let diag = (sample(x - 1, y - 1)
            + sample(x + 1, y - 1)
            + sample(x - 1, y + 1)
            + sample(x + 1, y + 1))
            / 4.0;

        let (r, g, b) = if is_red {
            (center, cross, diag)
        } else if is_blue {
            (diag, cross, center)
        } else if is_green_r {
            // Green pixel on a red row: red neighbours left/right,
            // blue neighbours above/below.
            (horiz, center, vert)
        } else {
            // Green pixel on a blue row.
            (vert, center, horiz)
        };
        [clamp_u8(r), clamp_u8(g), clamp_u8(b)]
    })
}

fn clamp_u8(v: f64) -> u8 {
    v.round().clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_frame::Plane;
    use rpr_sensor::{ImageSensor, SensorConfig};

    #[test]
    fn uniform_field_is_preserved() {
        let raw = Plane::from_fn(16, 16, |_, _| 77u8);
        let rgb = demosaic_bilinear(&raw);
        for y in 0..16 {
            for x in 0..16 {
                assert_eq!(rgb.get(x, y), Some([77, 77, 77]));
            }
        }
    }

    #[test]
    fn roundtrip_through_sensor_recovers_flat_color() {
        // Capture a flat coloured scene and demosaic it back: interior
        // pixels must recover the original colour exactly.
        let sensor = ImageSensor::new(SensorConfig::noiseless(16, 16));
        let scene = rpr_frame::RgbFrame::from_fn(16, 16, |_, _| [180, 90, 40]);
        let raw = sensor.capture(&scene, 0);
        let rgb = demosaic_bilinear(&raw);
        for y in 2..14 {
            for x in 2..14 {
                assert_eq!(rgb.get(x, y), Some([180, 90, 40]), "({x},{y})");
            }
        }
    }

    #[test]
    fn native_samples_pass_through() {
        // At a red CFA site, the red channel is the raw value itself.
        let raw = Plane::from_fn(8, 8, |x, y| ((x * 16 + y) % 256) as u8);
        let rgb = demosaic_bilinear(&raw);
        assert_eq!(rgb.get(2, 2).unwrap()[0], raw.get(2, 2).unwrap());
        assert_eq!(rgb.get(3, 2).unwrap()[1], raw.get(3, 2).unwrap());
        assert_eq!(rgb.get(3, 3).unwrap()[2], raw.get(3, 3).unwrap());
    }

    #[test]
    fn gradient_interpolates_smoothly() {
        // A horizontal luminance ramp must demosaic without large
        // zipper artifacts in the interior.
        let sensor = ImageSensor::new(SensorConfig::noiseless(32, 8));
        let scene =
            rpr_frame::RgbFrame::from_fn(32, 8, |x, _| [(x * 8) as u8, (x * 8) as u8, (x * 8) as u8]);
        let raw = sensor.capture(&scene, 0);
        let rgb = demosaic_bilinear(&raw);
        for x in 2..30u32 {
            let px = rgb.get(x, 4).unwrap();
            let expected = (x * 8) as i32;
            for c in px {
                assert!((i32::from(c) - expected).abs() <= 8, "x={x} c={c}");
            }
        }
    }
}

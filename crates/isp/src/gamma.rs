use rpr_frame::RgbFrame;
use std::fmt;

/// A 256-entry gamma-correction lookup table, the way streaming ISP
/// hardware implements the transfer curve.
///
/// # Example
///
/// ```
/// use rpr_isp::GammaLut;
///
/// let lut = GammaLut::new(2.2);
/// assert_eq!(lut.apply(0), 0);
/// assert_eq!(lut.apply(255), 255);
/// assert!(lut.apply(64) > 64); // gamma > 1 brightens shadows
/// ```
#[derive(Clone)]
pub struct GammaLut {
    gamma: f64,
    table: [u8; 256],
}

impl GammaLut {
    /// Builds the LUT for `out = 255 * (in / 255)^(1 / gamma)`.
    ///
    /// # Panics
    ///
    /// Panics when `gamma` is not strictly positive.
    pub fn new(gamma: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        let mut table = [0u8; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let normalized = i as f64 / 255.0;
            *entry = (normalized.powf(1.0 / gamma) * 255.0).round() as u8;
        }
        GammaLut { gamma, table }
    }

    /// The identity curve (`gamma = 1`).
    pub fn identity() -> Self {
        GammaLut::new(1.0)
    }

    /// The configured gamma exponent.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Corrects one sample.
    #[inline]
    pub fn apply(&self, value: u8) -> u8 {
        self.table[value as usize]
    }

    /// Corrects a whole RGB frame.
    pub fn apply_rgb(&self, frame: &RgbFrame) -> RgbFrame {
        RgbFrame::from_fn(frame.width(), frame.height(), |x, y| {
            let [r, g, b] = frame.get(x, y).expect("in bounds");
            [self.apply(r), self.apply(g), self.apply(b)]
        })
    }
}

impl fmt::Debug for GammaLut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GammaLut").field("gamma", &self.gamma).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let lut = GammaLut::identity();
        for v in 0..=255u8 {
            assert_eq!(lut.apply(v), v);
        }
    }

    #[test]
    fn endpoints_are_fixed() {
        for gamma in [0.5, 1.0, 2.2, 3.0] {
            let lut = GammaLut::new(gamma);
            assert_eq!(lut.apply(0), 0);
            assert_eq!(lut.apply(255), 255);
        }
    }

    #[test]
    fn monotonic_nondecreasing() {
        let lut = GammaLut::new(2.2);
        for v in 1..=255u8 {
            assert!(lut.apply(v) >= lut.apply(v - 1));
        }
    }

    #[test]
    fn gamma_above_one_brightens_midtones() {
        let lut = GammaLut::new(2.2);
        assert!(lut.apply(128) > 128);
        let inv = GammaLut::new(0.45);
        assert!(inv.apply(128) < 128);
    }

    #[test]
    fn apply_rgb_hits_every_channel() {
        let frame = RgbFrame::from_fn(2, 2, |_, _| [10, 100, 200]);
        let out = GammaLut::new(2.2).apply_rgb(&frame);
        let [r, g, b] = out.get(0, 0).unwrap();
        assert!(r > 10 && g > 100 && b >= 200);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_gamma_panics() {
        let _ = GammaLut::new(0.0);
    }
}

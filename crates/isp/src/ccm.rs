use rpr_frame::RgbFrame;
use serde::{Deserialize, Serialize};

/// A 3x3 colour-correction matrix applied after demosaic, mapping
/// sensor RGB into display RGB (white balance and cross-talk
/// compensation folded together, as in typical streaming ISP IP).
///
/// # Example
///
/// ```
/// use rpr_isp::ColorMatrix;
///
/// let identity = ColorMatrix::identity();
/// assert_eq!(identity.apply([10, 20, 30]), [10, 20, 30]);
///
/// let wb = ColorMatrix::white_balance(2.0, 1.0, 1.0);
/// assert_eq!(wb.apply([10, 20, 30]), [20, 20, 30]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColorMatrix {
    /// Row-major 3x3 coefficients.
    pub m: [[f64; 3]; 3],
}

impl ColorMatrix {
    /// The identity matrix (no correction).
    pub fn identity() -> Self {
        ColorMatrix { m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] }
    }

    /// A diagonal white-balance matrix with per-channel gains.
    pub fn white_balance(r_gain: f64, g_gain: f64, b_gain: f64) -> Self {
        ColorMatrix {
            m: [[r_gain, 0.0, 0.0], [0.0, g_gain, 0.0], [0.0, 0.0, b_gain]],
        }
    }

    /// A mild cross-talk correction typical of small-pixel mobile
    /// sensors: boosts the diagonal and subtracts neighbours, rows
    /// normalized to 1 so grays stay gray.
    pub fn typical_mobile() -> Self {
        ColorMatrix {
            m: [
                [1.3, -0.2, -0.1],
                [-0.15, 1.35, -0.2],
                [-0.05, -0.25, 1.3],
            ],
        }
    }

    /// Applies the matrix to one pixel, clamping to `[0, 255]`.
    pub fn apply(&self, rgb: [u8; 3]) -> [u8; 3] {
        let v = [f64::from(rgb[0]), f64::from(rgb[1]), f64::from(rgb[2])];
        let mut out = [0u8; 3];
        for (c, row) in self.m.iter().enumerate() {
            let sum = row[0] * v[0] + row[1] * v[1] + row[2] * v[2];
            out[c] = sum.round().clamp(0.0, 255.0) as u8;
        }
        out
    }

    /// Applies the matrix to a whole frame.
    pub fn apply_rgb(&self, frame: &RgbFrame) -> RgbFrame {
        RgbFrame::from_fn(frame.width(), frame.height(), |x, y| {
            self.apply(frame.get(x, y).expect("in bounds"))
        })
    }
}

impl Default for ColorMatrix {
    fn default() -> Self {
        ColorMatrix::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_preserves_pixels() {
        let m = ColorMatrix::identity();
        assert_eq!(m.apply([1, 2, 3]), [1, 2, 3]);
        assert_eq!(m.apply([255, 0, 128]), [255, 0, 128]);
    }

    #[test]
    fn white_balance_scales_channels() {
        let m = ColorMatrix::white_balance(1.5, 1.0, 0.5);
        assert_eq!(m.apply([100, 100, 100]), [150, 100, 50]);
    }

    #[test]
    fn output_saturates() {
        let m = ColorMatrix::white_balance(10.0, 1.0, 1.0);
        assert_eq!(m.apply([200, 0, 0])[0], 255);
    }

    #[test]
    fn typical_mobile_preserves_gray() {
        let m = ColorMatrix::typical_mobile();
        let out = m.apply([128, 128, 128]);
        for c in out {
            assert!((i32::from(c) - 128).abs() <= 1, "gray shifted: {out:?}");
        }
    }

    #[test]
    fn apply_rgb_covers_frame() {
        let frame = RgbFrame::from_fn(3, 3, |x, _| [x as u8 * 50, 0, 0]);
        let out = ColorMatrix::white_balance(2.0, 1.0, 1.0).apply_rgb(&frame);
        assert_eq!(out.get(1, 0).unwrap()[0], 100);
        assert_eq!(out.get(2, 0).unwrap()[0], 200);
    }
}

//! Gray-world auto white balance — the "image improvement" class of
//! ISP operation the paper's pipeline performs before the encoder
//! (§2: "performing image improvement operations, e.g., white
//! balance").

use crate::ColorMatrix;
use rpr_frame::RgbFrame;

/// Per-channel gains estimated by an AWB pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AwbGains {
    /// Red gain.
    pub r: f64,
    /// Green gain (reference channel, usually 1.0).
    pub g: f64,
    /// Blue gain.
    pub b: f64,
}

impl AwbGains {
    /// Converts the gains into a diagonal [`ColorMatrix`].
    pub fn to_matrix(self) -> ColorMatrix {
        ColorMatrix::white_balance(self.r, self.g, self.b)
    }
}

/// Estimates gray-world white-balance gains: scale each channel so its
/// mean matches the green channel's mean. Gains are clamped to
/// `[0.25, 4.0]` so pathological frames (all-black, single-colour test
/// charts) cannot produce wild corrections.
///
/// # Example
///
/// ```
/// use rpr_frame::RgbFrame;
/// use rpr_isp::estimate_gray_world;
///
/// // A scene under a red-tinted illuminant.
/// let frame = RgbFrame::from_fn(16, 16, |_, _| [180, 120, 60]);
/// let gains = estimate_gray_world(&frame);
/// assert!(gains.r < 1.0); // red is too hot: attenuate
/// assert!(gains.b > 1.0); // blue is starved: boost
/// let balanced = gains.to_matrix().apply([180, 120, 60]);
/// assert!((i32::from(balanced[0]) - i32::from(balanced[2])).abs() <= 2);
/// ```
pub fn estimate_gray_world(frame: &RgbFrame) -> AwbGains {
    let mut sums = [0.0f64; 3];
    let pixels = (frame.width() as usize * frame.height() as usize).max(1) as f64;
    for y in 0..frame.height() {
        for x in 0..frame.width() {
            let px = frame.get(x, y).expect("in bounds");
            for c in 0..3 {
                sums[c] += f64::from(px[c]);
            }
        }
    }
    let means = [sums[0] / pixels, sums[1] / pixels, sums[2] / pixels];
    let clamp = |g: f64| g.clamp(0.25, 4.0);
    let reference = means[1].max(1.0);
    AwbGains {
        r: clamp(reference / means[0].max(1.0)),
        g: 1.0,
        b: clamp(reference / means[2].max(1.0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_scene_needs_no_correction() {
        let frame = RgbFrame::from_fn(8, 8, |x, _| [x as u8 * 20, x as u8 * 20, x as u8 * 20]);
        let g = estimate_gray_world(&frame);
        assert!((g.r - 1.0).abs() < 1e-9);
        assert!((g.b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tinted_scene_is_neutralized() {
        let frame = RgbFrame::from_fn(8, 8, |_, _| [200, 100, 50]);
        let g = estimate_gray_world(&frame);
        let out = g.to_matrix().apply([200, 100, 50]);
        assert!((i32::from(out[0]) - 100).abs() <= 1);
        assert!((i32::from(out[2]) - 100).abs() <= 1);
    }

    #[test]
    fn gains_are_clamped_on_pathological_input() {
        let black = RgbFrame::new(4, 4);
        let g = estimate_gray_world(&black);
        assert!(g.r <= 4.0 && g.b <= 4.0 && g.r >= 0.25);
        let pure_red = RgbFrame::from_fn(4, 4, |_, _| [255, 0, 0]);
        let g = estimate_gray_world(&pure_red);
        assert_eq!(g.r, 0.25); // clamped: 1/255 would be absurd
        // Blue and green are both empty; the floor keeps the gain sane.
        assert!((1.0..=4.0).contains(&g.b));
    }
}

//! Swappable synchronization primitives for the queue core.
//!
//! Production builds use `parking_lot` (no poisoning, smaller guards);
//! `--cfg loom` builds swap in loom's model-checked primitives so the
//! bounded-queue backpressure protocol in [`crate::queue`] can be
//! explored under adversarial thread interleavings. The shim narrows
//! both libraries to the one API shape the queue needs — in
//! particular, [`Condvar::wait`] *consumes and returns* the guard,
//! which both backends can express — so the queue source is identical
//! under either cfg.

#[cfg(not(loom))]
mod imp {
    /// Guard type of the active backend.
    pub type MutexGuard<'a, T> = parking_lot::MutexGuard<'a, T>;

    /// Mutex of the active backend (parking_lot: no poisoning).
    #[derive(Debug, Default)]
    pub struct Mutex<T>(parking_lot::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(parking_lot::Mutex::new(value))
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock()
        }
    }

    /// Condvar of the active backend.
    #[derive(Debug, Default)]
    pub struct Condvar(parking_lot::Condvar);

    impl Condvar {
        pub fn new() -> Self {
            Condvar(parking_lot::Condvar::new())
        }

        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.0.wait(&mut guard);
            guard
        }

        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}

#[cfg(loom)]
mod imp {
    use std::sync::PoisonError;

    /// Guard type of the active backend.
    pub type MutexGuard<'a, T> = loom::sync::MutexGuard<'a, T>;

    /// Mutex of the active backend (loom under `--cfg loom`). Poisoning
    /// is swallowed: a panicking model iteration already fails the
    /// test, and the queue's invariants hold at every await point.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(loom::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(loom::sync::Mutex::new(value))
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Condvar of the active backend.
    #[derive(Debug, Default)]
    pub struct Condvar(loom::sync::Condvar);

    impl Condvar {
        pub fn new() -> Self {
            Condvar(loom::sync::Condvar::new())
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
        }

        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}

pub(crate) use imp::{Condvar, Mutex};

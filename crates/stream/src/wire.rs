//! Spill and replay stages bridging streams to the `.rpr` wire format.
//!
//! Four adapters connect the staged executor to [`rpr_wire`]:
//!
//! - [`EncodeCapture`] — a [`CaptureStage`] running the region policy
//!   and rhythmic encoder, emitting [`EncodedFrame`]s instead of
//!   decoded frames: the capture half of a *record* pipeline.
//! - [`WireSink`] — a [`TaskStage`] appending every encoded frame to a
//!   [`ContainerWriter`]: the spill half. Its feedback is always
//!   empty, so a record stream free-runs at source rate.
//! - [`WireSource`] — a [`FrameSource`] yielding validated
//!   [`EncodedFrame`]s back out of a container: the replay input.
//! - [`DecodeCapture`] — a [`CaptureStage`] turning replayed encoded
//!   frames into [`GrayFrame`]s through a [`SoftwareDecoder`], so the
//!   original task stages consume a replay exactly as they would a
//!   live capture.
//!
//! Record: `source → EncodeCapture → WireSink` produces a `.rpr`.
//! Replay: `WireSource → DecodeCapture → task` feeds the archived
//! stream to any [`TaskStage`]. Because the decoder's output is a
//! pure function of the encoded-frame sequence, replaying a container
//! reproduces the recorded run's task inputs byte for byte.

use std::io::Write;

use rpr_core::{
    DecoderStats, EncodedFrame, Policy, PolicyContext, ReconstructionMode, RegionRuntime,
    SoftwareDecoder,
};
use rpr_frame::GrayFrame;
use rpr_wire::{
    frame_chunk, ContainerReader, ContainerWriter, FrameEntry, WireError, WriterStats,
};

use crate::stage::{CaptureStage, Feedback, FrameSource, TaskStage};

/// A [`FrameSource`] replaying the frames of a `.rpr` container in
/// index order. Each frame is decoded through the zero-copy view and
/// fully validated; the first wire error ends the stream early and is
/// kept for inspection via [`WireSource::error`].
pub struct WireSource {
    bytes: Vec<u8>,
    entries: Vec<FrameEntry>,
    cursor: usize,
    error: Option<WireError>,
}

impl WireSource {
    /// Opens a finished container through its trailing index.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from [`ContainerReader::open`].
    pub fn new(bytes: Vec<u8>) -> Result<Self, WireError> {
        let entries = ContainerReader::open(&bytes)?.entries().to_vec();
        Ok(WireSource { bytes, entries, cursor: 0, error: None })
    }

    /// Opens a container by sequential chunk scan — the recovery path
    /// for unfinished files that never got an index.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from [`ContainerReader::scan`].
    pub fn recover(bytes: Vec<u8>) -> Result<Self, WireError> {
        let entries = ContainerReader::scan(&bytes)?.entries().to_vec();
        Ok(WireSource { bytes, entries, cursor: 0, error: None })
    }

    /// Total frames the container indexes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the container indexes no frames.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The wire error that ended the stream early, if any.
    pub fn error(&self) -> Option<&WireError> {
        self.error.as_ref()
    }
}

impl FrameSource for WireSource {
    type Frame = EncodedFrame;

    fn next_frame(&mut self) -> Option<EncodedFrame> {
        if self.error.is_some() {
            return None;
        }
        let entry = self.entries.get(self.cursor)?;
        self.cursor += 1;
        match frame_chunk(&self.bytes, entry).and_then(|v| v.to_validated_frame()) {
            Ok(frame) => Some(frame),
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

/// A [`TaskStage`] spilling every consumed [`EncodedFrame`] into a
/// [`ContainerWriter`]. Feedback is always empty (a sink extracts
/// nothing), so a record pipeline free-runs at source rate. The first
/// write error is latched and surfaced by [`WireSink::finish`];
/// subsequent frames are discarded rather than written after a gap.
pub struct WireSink<W: Write + Send> {
    writer: Option<ContainerWriter<W>>,
    error: Option<WireError>,
}

impl<W: Write + Send> WireSink<W> {
    /// Starts a container on `sink` (header written immediately).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the sink rejects the header.
    pub fn new(sink: W) -> Result<Self, WireError> {
        Ok(WireSink { writer: Some(ContainerWriter::new(sink)?), error: None })
    }
}

impl<W: Write + Send> TaskStage for WireSink<W> {
    type Input = EncodedFrame;
    type Output = Result<(W, WriterStats), WireError>;

    fn consume(&mut self, _frame_idx: u64, input: EncodedFrame) -> Feedback {
        if let Some(writer) = self.writer.as_mut() {
            if let Err(e) = writer.append(&input) {
                self.error = Some(e);
                self.writer = None;
            }
        }
        Feedback::empty()
    }

    fn finish(self) -> Self::Output {
        match (self.error, self.writer) {
            (Some(e), _) => Err(e),
            (None, Some(writer)) => writer.finish(),
            (None, None) => unreachable!("writer only vacates when an error is latched"),
        }
    }
}

/// Summary returned by [`DecodeCapture::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecodeSummary {
    /// The decoder's pixel-provenance counters.
    pub stats: DecoderStats,
    /// Frames rejected by [`EncodedFrame::validate`] and replaced with
    /// black frames (0 for a clean container).
    pub rejected: u64,
}

/// A [`CaptureStage`] reconstructing replayed [`EncodedFrame`]s into
/// the [`GrayFrame`]s the original task stages consume. Frames that
/// fail validation decode to black (and are counted) instead of
/// panicking, keeping a replay robust to damaged archives.
pub struct DecodeCapture {
    decoder: SoftwareDecoder,
    rejected: u64,
}

impl DecodeCapture {
    /// A decoder-backed capture stage for `width x height` frames
    /// under the default [`ReconstructionMode::BlockNearest`].
    pub fn new(width: u32, height: u32) -> Self {
        Self::with_mode(width, height, ReconstructionMode::default())
    }

    /// Same, with an explicit reconstruction mode (must match the mode
    /// used when the stream was recorded to reproduce it exactly).
    pub fn with_mode(width: u32, height: u32, mode: ReconstructionMode) -> Self {
        DecodeCapture { decoder: SoftwareDecoder::with_mode(width, height, mode), rejected: 0 }
    }
}

impl CaptureStage for DecodeCapture {
    type Frame = EncodedFrame;
    type Output = GrayFrame;
    type Summary = DecodeSummary;

    fn process(&mut self, frame: EncodedFrame, _feedback: &Feedback, _degraded: bool) -> GrayFrame {
        match self.decoder.try_decode(&frame) {
            Ok(decoded) => decoded,
            Err(_) => {
                self.rejected += 1;
                GrayFrame::new(self.decoder.width(), self.decoder.height())
            }
        }
    }

    fn finish(self) -> DecodeSummary {
        DecodeSummary { stats: *self.decoder.stats(), rejected: self.rejected }
    }
}

/// A [`CaptureStage`] running the region policy and rhythmic encoder
/// but emitting the *encoded* frames — the producer half of a record
/// pipeline, feeding a [`WireSink`].
///
/// Under queue pressure (`degraded == true` in
/// [`BackpressureMode::Degrade`](crate::queue::BackpressureMode))
/// the stage plans with empty feedback, which collapses the policy to
/// its cheapest rhythm for that frame.
pub struct EncodeCapture {
    runtime: RegionRuntime,
    policy: Box<dyn Policy + Send>,
    width: u32,
    height: u32,
    frame_idx: u64,
}

impl EncodeCapture {
    /// An encode stage for `width x height` frames driven by `policy`.
    pub fn new(width: u32, height: u32, policy: Box<dyn Policy + Send>) -> Self {
        EncodeCapture { runtime: RegionRuntime::new(width, height), policy, width, height, frame_idx: 0 }
    }
}

impl CaptureStage for EncodeCapture {
    type Frame = GrayFrame;
    type Output = EncodedFrame;
    type Summary = ();

    fn process(&mut self, frame: GrayFrame, feedback: &Feedback, degraded: bool) -> EncodedFrame {
        let (features, detections) = if degraded {
            (Vec::new(), Vec::new())
        } else {
            (feedback.features.clone(), feedback.detections.clone())
        };
        let ctx = PolicyContext {
            frame_idx: self.frame_idx,
            width: self.width,
            height: self.height,
            features,
            detections,
        };
        self.runtime.apply_policy(&mut *self.policy, ctx);
        self.frame_idx += 1;
        self.runtime.encode_frame(&frame)
    }

    fn finish(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::run_stream;
    use crate::stage::StreamConfig;
    use rpr_core::{CycleLengthPolicy, FeaturePolicy, RegionLabel, RegionList, RhythmicEncoder};
    use rpr_frame::Plane;
    use rpr_wire::write_container;

    fn textured(w: u32, h: u32, t: u32) -> GrayFrame {
        Plane::from_fn(w, h, |x, y| ((x * 5) ^ (y * 3) ^ (t * 17)) as u8)
    }

    fn encoded_sequence(n: u32) -> Vec<EncodedFrame> {
        let mut enc = RhythmicEncoder::new(32, 24);
        let full = RegionList::new(32, 24, vec![RegionLabel::full_frame(32, 24)]).unwrap();
        let part =
            RegionList::new(32, 24, vec![RegionLabel::new(4, 4, 16, 12, 1, 1)]).unwrap();
        (0..n)
            .map(|t| {
                let regions = if t == 0 { &full } else { &part };
                enc.encode(&textured(32, 24, t), u64::from(t), regions)
            })
            .collect()
    }

    struct VecSource(Vec<GrayFrame>);
    impl FrameSource for VecSource {
        type Frame = GrayFrame;
        fn next_frame(&mut self) -> Option<GrayFrame> {
            if self.0.is_empty() {
                None
            } else {
                Some(self.0.remove(0))
            }
        }
    }

    /// Task that remembers every frame it consumed.
    struct Collect(Vec<GrayFrame>);
    impl TaskStage for Collect {
        type Input = GrayFrame;
        type Output = Vec<GrayFrame>;
        fn consume(&mut self, _frame_idx: u64, input: GrayFrame) -> Feedback {
            self.0.push(input);
            Feedback::empty()
        }
        fn finish(self) -> Vec<GrayFrame> {
            self.0
        }
    }

    #[test]
    fn wire_source_replays_containers_in_order() {
        let frames = encoded_sequence(4);
        let bytes = write_container(&frames).unwrap();
        let mut src = WireSource::new(bytes).unwrap();
        assert_eq!(src.len(), 4);
        for f in &frames {
            assert_eq!(src.next_frame().as_ref(), Some(f));
        }
        assert!(src.next_frame().is_none());
        assert!(src.error().is_none());
    }

    #[test]
    fn wire_source_stops_at_first_corruption() {
        let frames = encoded_sequence(3);
        let mut bytes = write_container(&frames).unwrap();
        // Corrupt the second frame chunk's payload.
        let chunks = rpr_wire::list_chunks(&bytes).unwrap();
        bytes[chunks[1].payload.start + 40] ^= 0xFF;
        let mut src = WireSource::new(bytes).unwrap();
        assert!(src.next_frame().is_some());
        assert!(src.next_frame().is_none(), "corrupt frame ends the stream");
        assert!(matches!(src.error(), Some(WireError::ChecksumMismatch { .. })));
        assert!(src.next_frame().is_none(), "the stream stays ended");
    }

    #[test]
    fn record_stream_spills_a_replayable_container() {
        // Record: raw frames → policy+encoder → container.
        let raws: Vec<GrayFrame> = (0..5).map(|t| textured(32, 24, t)).collect();
        let policy = Box::new(CycleLengthPolicy::new(3, FeaturePolicy::new()));
        let capture = EncodeCapture::new(32, 24, policy);
        let sink = WireSink::new(Vec::new()).unwrap();
        let result = run_stream(
            0,
            VecSource(raws.clone()),
            capture,
            sink,
            StreamConfig::blocking(),
        );
        let (bytes, stats) = result.task.unwrap();
        assert_eq!(stats.frames, 5);

        // Replay: container → decoder → collected task inputs.
        let src = WireSource::new(bytes).unwrap();
        let replayed = run_stream(
            1,
            src,
            DecodeCapture::new(32, 24),
            Collect(Vec::new()),
            StreamConfig::blocking(),
        );
        assert_eq!(replayed.capture.rejected, 0);
        let frames = replayed.task;
        assert_eq!(frames.len(), 5);
        // Frame 0 is a full capture: replay reproduces it losslessly.
        assert_eq!(frames[0], raws[0]);
    }

    #[test]
    fn replay_equals_direct_decode() {
        let frames = encoded_sequence(6);
        let bytes = write_container(&frames).unwrap();

        let mut direct = SoftwareDecoder::new(32, 24);
        let expected: Vec<GrayFrame> = frames.iter().map(|f| direct.decode(f)).collect();

        let result = run_stream(
            0,
            WireSource::new(bytes).unwrap(),
            DecodeCapture::new(32, 24),
            Collect(Vec::new()),
            StreamConfig::blocking(),
        );
        assert_eq!(result.task, expected, "staged replay must be bit-identical");
        assert_eq!(result.capture.stats.frames, 6);
    }

    #[test]
    fn decode_capture_substitutes_black_for_invalid_frames() {
        let frames = encoded_sequence(2);
        let good = &frames[1];
        let bad = EncodedFrame::from_raw_parts(
            good.width(),
            good.height(),
            good.frame_idx(),
            {
                let mut p = good.pixels().to_vec();
                p[0] ^= 0xAA;
                p
            },
            good.metadata().clone(),
            good.integrity(),
        );
        let mut stage = DecodeCapture::new(32, 24);
        let fb = Feedback::empty();
        let out = stage.process(bad, &fb, false);
        assert!(out.as_slice().iter().all(|&p| p == 0), "invalid frame decodes black");
        let summary = stage.finish();
        assert_eq!(summary.rejected, 1);
    }
}

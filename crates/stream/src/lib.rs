//! rpr-stream: staged multi-camera pipeline executor.
//!
//! This crate turns the synchronous capture pipeline (sensor → ISP →
//! rhythmic encoder → memory traffic → decoder → vision task) into a
//! staged, multi-threaded *stream*: one worker per stage, bounded
//! queues between stages, and an explicit backpressure policy on the
//! sensor-side queue. A [`StreamManager`] multiplexes N such camera
//! streams over a shared worker pool — the system shape the paper's
//! multi-camera evaluation implies but the synchronous runner cannot
//! express.
//!
//! Determinism contract: under [`BackpressureMode::Block`] a stream's
//! outputs are bit-identical to running its stages in a synchronous
//! loop, because the task→capture feedback edge keeps the two stages
//! in lock-step (frame *t* is encoded only after frame *t−1*'s task
//! feedback arrived). `rpr-workloads` relies on this to route its
//! experiments through the executor without changing any published
//! number.
//!
//! Module map:
//! - [`queue`] — bounded [`StageQueue`] and the three
//!   [`BackpressureMode`]s (block / drop-oldest / degrade).
//! - [`stage`] — the [`FrameSource`] / [`CaptureStage`] / [`TaskStage`]
//!   contracts and the [`Feedback`] edge.
//! - [`executor`] — [`run_stream`], one stream on three stage workers.
//! - [`manager`] — [`StreamManager`], N streams on a worker pool.
//! - [`telemetry`] — queue depths, per-stage latency histograms, fps;
//!   serde-JSON exportable.
//! - [`wire`] — spill/replay stages bridging streams to the `.rpr`
//!   container format: [`EncodeCapture`] → [`WireSink`] records,
//!   [`WireSource`] → [`DecodeCapture`] replays.

#![deny(missing_docs)]

pub mod executor;
pub mod manager;
pub mod queue;
pub mod source;
pub mod stage;
mod sync;
pub mod telemetry;
pub mod wire;

pub use executor::{run_stream, StreamResult};
pub use manager::{StreamManager, StreamPool, StreamSpec};
pub use queue::{BackpressureMode, QueueTelemetry, StageQueue, TryPush};
pub use source::{channel_source, ChannelSource, SourceHandle};
pub use stage::{
    CaptureStage, Feedback, FeedbackTransform, FrameSource, StreamConfig, TaskStage,
    TransformedCapture,
};
pub use wire::{DecodeCapture, DecodeSummary, EncodeCapture, WireSink, WireSource};
pub use telemetry::{LatencyHistogram, StageTelemetry, StreamTelemetry, LATENCY_BUCKETS_US};

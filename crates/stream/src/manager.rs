//! Multiplexing N camera streams over a shared worker pool.
//!
//! The unit of work a pool worker claims is a *whole stream*, not a
//! stage: each claimed stream internally runs its three stage workers
//! via [`run_stream`]. Claiming whole streams keeps the pool
//! deadlock-free at any size — per-stage jobs would wedge the moment
//! the pool is smaller than the stage count, with a capture job
//! blocked on a task job that never gets a worker.

use crate::executor::{run_stream, StreamResult};
use crate::stage::{CaptureStage, FrameSource, StreamConfig, TaskStage};
use parking_lot::Mutex;
use std::collections::VecDeque;

/// One camera stream awaiting execution: its stages plus queue/
/// backpressure configuration.
#[derive(Debug)]
pub struct StreamSpec<S, C, T> {
    /// Stage 1: the frame source.
    pub source: S,
    /// Stage 2: the capture path.
    pub capture: C,
    /// Stage 3: the vision task.
    pub task: T,
    /// Queue sizing and backpressure.
    pub config: StreamConfig,
}

impl<S, C, T> StreamSpec<S, C, T> {
    /// Bundles three stages under the default (blocking) configuration.
    pub fn new(source: S, capture: C, task: T) -> Self {
        StreamSpec { source, capture, task, config: StreamConfig::default() }
    }

    /// Replaces the stream configuration.
    pub fn with_config(mut self, config: StreamConfig) -> Self {
        self.config = config;
        self
    }
}

/// Schedules camera streams onto a bounded pool of worker threads.
#[derive(Debug, Clone, Copy)]
pub struct StreamManager {
    workers: usize,
}

impl Default for StreamManager {
    /// One worker per available hardware thread.
    fn default() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        StreamManager::new(n)
    }
}

impl StreamManager {
    /// A manager running at most `workers` streams concurrently
    /// (clamped to at least one).
    pub fn new(workers: usize) -> Self {
        StreamManager { workers: workers.max(1) }
    }

    /// The configured concurrency.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every spec to completion and returns the results in spec
    /// order. At most `workers()` streams run at any moment; each
    /// running stream additionally scopes its own three stage threads.
    #[allow(clippy::type_complexity)]
    pub fn run_all<S, C, T>(
        &self,
        specs: Vec<StreamSpec<S, C, T>>,
    ) -> Vec<StreamResult<C::Summary, T::Output>>
    where
        S: FrameSource,
        C: CaptureStage<Frame = S::Frame>,
        T: TaskStage<Input = C::Output>,
    {
        let n = specs.len();
        let jobs: Mutex<VecDeque<(usize, StreamSpec<S, C, T>)>> =
            Mutex::new(specs.into_iter().enumerate().collect());
        let results: Mutex<Vec<Option<StreamResult<C::Summary, T::Output>>>> =
            Mutex::new((0..n).map(|_| None).collect());

        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| loop {
                    let Some((id, spec)) = jobs.lock().pop_front() else { break };
                    let result = run_stream(id, spec.source, spec.capture, spec.task, spec.config);
                    results.lock()[id] = Some(result);
                });
            }
        });

        results
            .into_inner()
            .into_iter()
            .map(|r| r.expect("every stream job ran exactly once"))
            .collect()
    }
}

/// A job the pool runs to completion on one of its worker threads.
type PoolJob = Box<dyn FnOnce() + Send + 'static>;

/// A worker pool accepting stream jobs *dynamically* — the shape an
/// ingestion server needs, where sessions arrive and depart at runtime
/// and [`StreamManager::run_all`]'s all-specs-up-front contract cannot
/// hold. Like the manager, the unit of work is a whole stream (a
/// closure that typically calls [`run_stream`](crate::run_stream)), so
/// the pool stays deadlock-free at any size.
///
/// Submission is bounded: at most `queue_capacity` jobs wait behind
/// the running ones, and [`StreamPool::spawn`] blocks past that — the
/// pool is itself a stage queue and inherits its backpressure story.
#[derive(Debug)]
pub struct StreamPool {
    jobs: std::sync::Arc<crate::queue::StageQueue<PoolJob>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl StreamPool {
    /// A pool of `workers` threads (clamped to at least one) admitting
    /// up to `queue_capacity` queued jobs before `spawn` blocks.
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let jobs = std::sync::Arc::new(crate::queue::StageQueue::<PoolJob>::new(
            "pool-jobs",
            queue_capacity.max(1),
            crate::queue::BackpressureMode::Block,
        ));
        let workers = (0..workers.max(1))
            .map(|i| {
                let jobs = std::sync::Arc::clone(&jobs);
                std::thread::Builder::new()
                    .name(format!("rpr-pool-{i}"))
                    .spawn(move || {
                        while let Some(job) = jobs.pop() {
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        StreamPool { jobs, workers }
    }

    /// The number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs queued but not yet claimed by a worker.
    pub fn pending(&self) -> usize {
        self.jobs.depth()
    }

    /// Submits one stream job. Blocks while the job queue is full;
    /// returns `false` if the pool was already shut down (the job is
    /// dropped unrun).
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        self.jobs.push(Box::new(job))
    }

    /// Stops accepting jobs, runs everything already queued, and joins
    /// the workers. Called implicitly on drop; explicit call lets the
    /// caller sequence shutdown.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.jobs.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for StreamPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::Feedback;

    struct Counter {
        next: u32,
        n: u32,
    }

    impl FrameSource for Counter {
        type Frame = u32;

        fn next_frame(&mut self) -> Option<u32> {
            if self.next >= self.n {
                return None;
            }
            let v = self.next;
            self.next += 1;
            Some(v)
        }
    }

    struct AddBias {
        bias: u32,
    }

    impl CaptureStage for AddBias {
        type Frame = u32;
        type Output = u32;
        type Summary = u32;

        fn process(&mut self, frame: u32, _feedback: &Feedback, _degraded: bool) -> u32 {
            frame + self.bias
        }

        fn finish(self) -> u32 {
            self.bias
        }
    }

    struct Summer {
        total: u64,
    }

    impl TaskStage for Summer {
        type Input = u32;
        type Output = u64;

        fn consume(&mut self, _idx: u64, input: u32) -> Feedback {
            self.total += u64::from(input);
            Feedback::empty()
        }

        fn finish(self) -> u64 {
            self.total
        }
    }

    fn spec(n: u32, bias: u32) -> StreamSpec<Counter, AddBias, Summer> {
        StreamSpec::new(Counter { next: 0, n }, AddBias { bias }, Summer { total: 0 })
    }

    fn expected_sum(n: u32, bias: u32) -> u64 {
        (0..n).map(|t| u64::from(t + bias)).sum()
    }

    #[test]
    fn results_come_back_in_spec_order() {
        let specs = vec![spec(10, 100), spec(20, 200), spec(5, 300), spec(15, 400)];
        let results = StreamManager::new(2).run_all(specs);
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.stream_id, i);
            assert_eq!(r.telemetry.stream_id, i);
        }
        assert_eq!(results[0].task, expected_sum(10, 100));
        assert_eq!(results[1].task, expected_sum(20, 200));
        assert_eq!(results[2].task, expected_sum(5, 300));
        assert_eq!(results[3].task, expected_sum(15, 400));
        assert_eq!(results[2].capture, 300);
    }

    #[test]
    fn pool_smaller_than_stream_count_still_finishes() {
        let specs: Vec<_> = (0..8).map(|i| spec(30, i * 10)).collect();
        let results = StreamManager::new(1).run_all(specs);
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.task, expected_sum(30, i as u32 * 10));
            assert_eq!(r.telemetry.frames_out, 30);
        }
    }

    #[test]
    fn default_manager_uses_at_least_one_worker() {
        assert!(StreamManager::default().workers() >= 1);
        assert_eq!(StreamManager::new(0).workers(), 1);
    }

    #[test]
    fn pool_runs_dynamically_submitted_streams() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let pool = StreamPool::new(3, 16);
        assert_eq!(pool.workers(), 3);
        let total = Arc::new(AtomicU64::new(0));
        for i in 0..20u64 {
            let total = Arc::clone(&total);
            assert!(pool.spawn(move || {
                // A stand-in for run_stream: the pool only promises to
                // run whole jobs, not to know what a stream is.
                total.fetch_add(i, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(total.load(Ordering::Relaxed), (0..20u64).sum());
    }

    #[test]
    fn pool_shutdown_refuses_new_jobs_but_drains_queued_ones() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let pool = StreamPool::new(1, 32);
        let ran = Arc::new(AtomicUsize::new(0));
        let slow = Arc::clone(&ran);
        pool.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            slow.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..5 {
            let ran = Arc::clone(&ran);
            pool.spawn(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::Relaxed), 6, "queued jobs drained");
    }
}

//! Bounded inter-stage queues with explicit backpressure policy.
//!
//! Every edge of the stage graph is a [`StageQueue`]: a
//! mutex-and-condvar ring with a hard capacity. What happens when a
//! producer outruns its consumer is the queue's *backpressure mode* —
//! the central design decision of a multi-camera capture service,
//! because it chooses between latency (block), freshness (drop the
//! oldest frame), and graceful quality loss (keep the frame but flag
//! pressure so the capture stage lowers its rhythm).

use crate::sync::{Condvar, Mutex};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What a full queue does to its producer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BackpressureMode {
    /// Block the producer until the consumer frees a slot. Lossless
    /// and deterministic — the mode under which the staged executor
    /// reproduces the synchronous pipeline bit for bit.
    #[default]
    Block,
    /// Evict the oldest queued frame to admit the new one. Keeps the
    /// stream fresh (lowest capture-to-task latency) at the cost of
    /// dropped frames, counted in [`QueueTelemetry::dropped`].
    DropOldest,
    /// Block, but raise a pressure flag the consumer can read. The
    /// capture stage responds by degrading to a lower rhythm (fewer
    /// regional pixels per frame) until pressure clears.
    Degrade,
}

impl BackpressureMode {
    /// Parses the CLI spelling (`block`, `drop-oldest`, `degrade`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "block" => Some(BackpressureMode::Block),
            "drop-oldest" | "drop_oldest" | "dropoldest" => Some(BackpressureMode::DropOldest),
            "degrade" => Some(BackpressureMode::Degrade),
            _ => None,
        }
    }

    /// The CLI spelling of this mode.
    pub fn label(&self) -> &'static str {
        match self {
            BackpressureMode::Block => "block",
            BackpressureMode::DropOldest => "drop-oldest",
            BackpressureMode::Degrade => "degrade",
        }
    }
}

/// Counters a [`StageQueue`] accumulates over its lifetime; the queue
/// half of the telemetry export.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueueTelemetry {
    /// Name of the edge this queue implements (e.g. `"raw"`).
    pub name: String,
    /// Configured capacity in frames.
    pub capacity: usize,
    /// Backpressure mode the queue ran under.
    pub mode: BackpressureMode,
    /// Frames accepted (including ones later evicted).
    pub pushed: u64,
    /// Frames handed to the consumer.
    pub popped: u64,
    /// Frames evicted under [`BackpressureMode::DropOldest`].
    pub dropped: u64,
    /// Times a producer found the queue full.
    pub full_events: u64,
    /// Deepest the queue ever got.
    pub max_depth: usize,
    /// Sum of observed depths at push time (divide by `pushed` for the
    /// mean producer-side depth).
    pub depth_sum: u64,
}

impl QueueTelemetry {
    /// Mean queue depth observed at push time.
    pub fn mean_depth(&self) -> f64 {
        if self.pushed == 0 {
            0.0
        } else {
            self.depth_sum as f64 / self.pushed as f64
        }
    }
}

/// Outcome of a non-blocking [`StageQueue::try_push`].
///
/// An event-loop producer (one thread multiplexing thousands of
/// sessions) can never afford the blocking [`StageQueue::push`]; this
/// enum tells it exactly what the queue's backpressure mode decided so
/// it can account the frame correctly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryPush<T> {
    /// The frame was enqueued; no capacity event occurred.
    Pushed,
    /// The frame was enqueued by evicting the oldest queued frame
    /// ([`BackpressureMode::DropOldest`] on a full queue).
    Dropped,
    /// The queue is full and the mode refuses to evict
    /// ([`BackpressureMode::Block`] / [`BackpressureMode::Degrade`]);
    /// the frame comes back to the caller to retry after a pop. Under
    /// `Degrade` the pressure flag has been raised.
    Full(T),
    /// The queue was closed; the frame comes back but can never be
    /// delivered.
    Closed(T),
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
    pressure: bool,
    stats: QueueTelemetry,
}

/// A bounded MPSC queue connecting two pipeline stages.
pub struct StageQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    mode: BackpressureMode,
}

impl<T> StageQueue<T> {
    /// Creates a queue holding at most `capacity` frames.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero (a rendezvous queue cannot host
    /// drop-oldest semantics).
    pub fn new(name: &str, capacity: usize, mode: BackpressureMode) -> Self {
        assert!(capacity > 0, "stage queue capacity must be at least 1");
        StageQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                pressure: false,
                stats: QueueTelemetry {
                    name: name.to_string(),
                    capacity,
                    mode,
                    ..QueueTelemetry::default()
                },
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            mode,
        }
    }

    /// Offers one frame to the queue, applying the backpressure mode
    /// when full. Returns `false` when the queue was closed and the
    /// frame could not be delivered.
    pub fn push(&self, item: T) -> bool {
        let mut st = self.state.lock();
        if st.items.len() >= self.capacity {
            st.stats.full_events += 1;
            match self.mode {
                BackpressureMode::Block => {
                    while st.items.len() >= self.capacity && !st.closed {
                        st = self.not_full.wait(st);
                    }
                }
                BackpressureMode::DropOldest => {
                    st.items.pop_front();
                    st.stats.dropped += 1;
                }
                BackpressureMode::Degrade => {
                    st.pressure = true;
                    while st.items.len() >= self.capacity && !st.closed {
                        st = self.not_full.wait(st);
                    }
                }
            }
        }
        if st.closed {
            return false;
        }
        st.stats.depth_sum += st.items.len() as u64;
        st.items.push_back(item);
        st.stats.pushed += 1;
        let depth = st.items.len();
        if depth > st.stats.max_depth {
            st.stats.max_depth = depth;
        }
        drop(st);
        self.not_empty.notify_one();
        true
    }

    /// Offers one frame without ever blocking the caller. The
    /// backpressure mode still governs a full queue, but where
    /// [`StageQueue::push`] would park the producer thread, this
    /// returns [`TryPush::Full`] and leaves the frame with the caller.
    pub fn try_push(&self, item: T) -> TryPush<T> {
        let mut st = self.state.lock();
        if st.closed {
            return TryPush::Closed(item);
        }
        let mut evicted = false;
        if st.items.len() >= self.capacity {
            st.stats.full_events += 1;
            match self.mode {
                BackpressureMode::Block => return TryPush::Full(item),
                BackpressureMode::Degrade => {
                    st.pressure = true;
                    return TryPush::Full(item);
                }
                BackpressureMode::DropOldest => {
                    st.items.pop_front();
                    st.stats.dropped += 1;
                    evicted = true;
                }
            }
        }
        st.stats.depth_sum += st.items.len() as u64;
        st.items.push_back(item);
        st.stats.pushed += 1;
        let depth = st.items.len();
        if depth > st.stats.max_depth {
            st.stats.max_depth = depth;
        }
        drop(st);
        self.not_empty.notify_one();
        if evicted {
            TryPush::Dropped
        } else {
            TryPush::Pushed
        }
    }

    /// Current number of queued frames (racy by nature; intended for
    /// scheduling heuristics and telemetry, not correctness).
    pub fn depth(&self) -> usize {
        self.state.lock().items.len()
    }

    /// Takes the next frame without blocking; `None` when empty
    /// (whether or not the queue is closed — pair with
    /// [`StageQueue::is_closed`] to distinguish).
    pub fn try_pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        let item = st.items.pop_front();
        if item.is_some() {
            st.stats.popped += 1;
            drop(st);
            self.not_full.notify_one();
        }
        item
    }

    /// True once [`StageQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().closed
    }

    /// Takes the next frame, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                st.stats.popped += 1;
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st);
        }
    }

    /// Blocking batch pop: waits until at least one frame is queued,
    /// then drains up to `max` frames into `out` under a single lock
    /// acquisition — the amortization that lets a consumer cross the
    /// queue once per batch instead of once per frame. Returns the
    /// number of frames appended; `0` means closed-and-drained (or
    /// `max == 0`). FIFO order is preserved exactly.
    pub fn pop_up_to(&self, max: usize, out: &mut Vec<T>) -> usize {
        if max == 0 {
            return 0;
        }
        let mut st = self.state.lock();
        loop {
            if !st.items.is_empty() {
                let n = st.items.len().min(max);
                for _ in 0..n {
                    if let Some(item) = st.items.pop_front() {
                        out.push(item);
                    }
                }
                st.stats.popped += n as u64;
                drop(st);
                // Several slots may have freed at once.
                self.not_full.notify_all();
                return n;
            }
            if st.closed {
                return 0;
            }
            st = self.not_empty.wait(st);
        }
    }

    /// Reads and clears the degrade-pressure flag (set when a producer
    /// hit a full queue under [`BackpressureMode::Degrade`]).
    pub fn take_pressure(&self) -> bool {
        let mut st = self.state.lock();
        std::mem::take(&mut st.pressure)
    }

    /// Marks the stream finished: producers stop delivering, consumers
    /// drain what is queued and then see `None`.
    pub fn close(&self) {
        let mut st = self.state.lock();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Snapshot of the accumulated counters.
    pub fn telemetry(&self) -> QueueTelemetry {
        self.state.lock().stats.clone()
    }
}

impl<T> std::fmt::Debug for StageQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("StageQueue")
            .field("name", &st.stats.name)
            .field("depth", &st.items.len())
            .field("capacity", &self.capacity)
            .field("mode", &self.mode)
            .field("closed", &st.closed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_counters() {
        let q = StageQueue::new("raw", 4, BackpressureMode::Block);
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        let t = q.telemetry();
        assert_eq!((t.pushed, t.popped, t.dropped), (2, 2, 0));
        assert_eq!(t.max_depth, 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = StageQueue::new("raw", 4, BackpressureMode::Block);
        q.push(7);
        q.close();
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        assert!(!q.push(8), "closed queue refuses frames");
    }

    #[test]
    fn drop_oldest_evicts_head() {
        let q = StageQueue::new("raw", 2, BackpressureMode::DropOldest);
        q.push(1);
        q.push(2);
        q.push(3); // evicts 1
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        let t = q.telemetry();
        assert_eq!(t.dropped, 1);
        assert_eq!(t.full_events, 1);
    }

    #[test]
    fn degrade_sets_pressure_flag() {
        let q = Arc::new(StageQueue::new("raw", 1, BackpressureMode::Degrade));
        q.push(1);
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(2));
        // Give the producer time to hit the full queue.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert!(h.join().unwrap());
        assert!(q.take_pressure(), "pressure flag raised while blocked");
        assert!(!q.take_pressure(), "flag clears after read");
    }

    #[test]
    fn try_push_never_blocks_and_reports_the_modes() {
        let q = StageQueue::new("raw", 1, BackpressureMode::Block);
        assert_eq!(q.try_push(1), TryPush::Pushed);
        assert_eq!(q.try_push(2), TryPush::Full(2), "block mode refuses, returns frame");
        assert_eq!(q.depth(), 1);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), None);

        let q = StageQueue::new("raw", 1, BackpressureMode::DropOldest);
        assert_eq!(q.try_push(1), TryPush::Pushed);
        assert_eq!(q.try_push(2), TryPush::Dropped);
        assert_eq!(q.pop(), Some(2), "head was evicted");
        assert_eq!(q.telemetry().dropped, 1);

        let q = StageQueue::new("raw", 1, BackpressureMode::Degrade);
        assert_eq!(q.try_push(1), TryPush::Pushed);
        assert_eq!(q.try_push(2), TryPush::Full(2));
        assert!(q.take_pressure(), "degrade raises pressure on refusal");

        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_push(3), TryPush::Closed(3));
    }

    #[test]
    fn pop_up_to_drains_in_order_and_respects_max() {
        let q = StageQueue::new("raw", 8, BackpressureMode::Block);
        for i in 0..5 {
            q.push(i);
        }
        let mut batch = Vec::new();
        assert_eq!(q.pop_up_to(3, &mut batch), 3);
        assert_eq!(batch, [0, 1, 2]);
        assert_eq!(q.pop_up_to(3, &mut batch), 2);
        assert_eq!(batch, [0, 1, 2, 3, 4]);
        q.close();
        assert_eq!(q.pop_up_to(3, &mut batch), 0, "closed and drained");
        assert_eq!(q.telemetry().popped, 5);
        assert_eq!(q.pop_up_to(0, &mut batch), 0, "max == 0 is a no-op");
    }

    #[test]
    fn pop_up_to_wakes_a_blocked_producer() {
        let q = Arc::new(StageQueue::new("raw", 2, BackpressureMode::Block));
        q.push(1);
        q.push(2);
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(3));
        let mut batch = Vec::new();
        while batch.len() < 3 {
            q.pop_up_to(4, &mut batch);
        }
        h.join().unwrap();
        assert_eq!(batch, [1, 2, 3]);
    }

    #[test]
    fn blocked_producer_resumes() {
        let q = Arc::new(StageQueue::new("raw", 1, BackpressureMode::Block));
        q.push(1);
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.push(2));
        assert_eq!(q.pop(), Some(1));
        h.join().unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.telemetry().dropped, 0);
    }
}

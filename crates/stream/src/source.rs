//! Channel-backed frame sources: the demultiplexing hook for servers.
//!
//! Every [`FrameSource`](crate::FrameSource) so far pulls frames from
//! something the pipeline owns — a sensor model, a `.rpr` container.
//! An ingestion server inverts that: frames *arrive* (decoded off a
//! socket by an event loop) and must be handed to a pipeline that is
//! already running. [`channel_source`] splits one bounded
//! [`StageQueue`] into that pair of endpoints: a [`SourceHandle`] the
//! server pushes into and a [`ChannelSource`] the pipeline pulls from,
//! with the queue's [`BackpressureMode`] arbitrating between them
//! exactly as it does on every other stage edge.

use crate::queue::{BackpressureMode, QueueTelemetry, StageQueue, TryPush};
use crate::stage::FrameSource;
use std::sync::Arc;

/// Producer endpoint of a [`channel_source`] pair. Cloneable; the
/// channel closes when [`SourceHandle::close`] is called (dropping
/// handles does *not* close it, so a server can park a handle in a
/// session table without racing pipeline shutdown).
#[derive(Debug)]
pub struct SourceHandle<T> {
    queue: Arc<StageQueue<T>>,
}

impl<T> Clone for SourceHandle<T> {
    fn clone(&self) -> Self {
        SourceHandle { queue: Arc::clone(&self.queue) }
    }
}

impl<T> SourceHandle<T> {
    /// Delivers one frame, blocking under [`BackpressureMode::Block`] /
    /// [`BackpressureMode::Degrade`] when the pipeline lags. Returns
    /// `false` once the channel is closed.
    pub fn push(&self, frame: T) -> bool {
        self.queue.push(frame)
    }

    /// Delivers one frame without ever blocking — the form an event
    /// loop multiplexing many sessions must use. See [`TryPush`] for
    /// the per-mode outcomes.
    pub fn try_push(&self, frame: T) -> TryPush<T> {
        self.queue.try_push(frame)
    }

    /// Ends the stream: the consuming pipeline drains what is queued,
    /// then its source reports end-of-stream.
    pub fn close(&self) {
        self.queue.close();
    }

    /// True once the channel has been closed (by any handle).
    pub fn is_closed(&self) -> bool {
        self.queue.is_closed()
    }

    /// Frames currently queued toward the pipeline.
    pub fn depth(&self) -> usize {
        self.queue.depth()
    }

    /// Reads and clears the degrade-pressure flag — the signal a
    /// server maps back to per-tenant rhythm degradation.
    pub fn take_pressure(&self) -> bool {
        self.queue.take_pressure()
    }

    /// Snapshot of the channel's queue counters.
    pub fn telemetry(&self) -> QueueTelemetry {
        self.queue.telemetry()
    }
}

/// Consumer endpoint of a [`channel_source`] pair: a
/// [`FrameSource`](crate::FrameSource) that blocks on the channel until
/// frames arrive or it closes.
#[derive(Debug)]
pub struct ChannelSource<T> {
    queue: Arc<StageQueue<T>>,
}

impl<T: Send> FrameSource for ChannelSource<T> {
    type Frame = T;

    fn next_frame(&mut self) -> Option<T> {
        self.queue.pop()
    }
}

/// Creates a connected ([`SourceHandle`], [`ChannelSource`]) pair over
/// a bounded queue of `capacity` frames under `mode`.
pub fn channel_source<T>(
    name: &str,
    capacity: usize,
    mode: BackpressureMode,
) -> (SourceHandle<T>, ChannelSource<T>) {
    let queue = Arc::new(StageQueue::new(name, capacity, mode));
    (SourceHandle { queue: Arc::clone(&queue) }, ChannelSource { queue })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{CaptureStage, Feedback, TaskStage};
    use crate::{run_stream, StreamConfig};

    #[test]
    fn pushed_frames_come_out_in_order() {
        let (tx, mut src) = channel_source::<u32>("ingest", 4, BackpressureMode::Block);
        assert!(tx.push(1));
        assert!(tx.push(2));
        tx.close();
        assert_eq!(src.next_frame(), Some(1));
        assert_eq!(src.next_frame(), Some(2));
        assert_eq!(src.next_frame(), None, "closed and drained");
        assert!(!tx.push(3), "closed channel refuses frames");
    }

    #[test]
    fn handles_are_cloneable_and_share_the_channel() {
        let (tx, mut src) = channel_source::<u32>("ingest", 4, BackpressureMode::DropOldest);
        let tx2 = tx.clone();
        assert_eq!(tx.try_push(1), TryPush::Pushed);
        assert_eq!(tx2.try_push(2), TryPush::Pushed);
        assert_eq!(tx.depth(), 2);
        tx2.close();
        assert!(tx.is_closed());
        assert_eq!(src.next_frame(), Some(1));
        assert_eq!(src.next_frame(), Some(2));
        assert_eq!(src.next_frame(), None);
        assert_eq!(tx.telemetry().pushed, 2);
    }

    struct Id;
    impl CaptureStage for Id {
        type Frame = u32;
        type Output = u32;
        type Summary = ();
        fn process(&mut self, frame: u32, _f: &Feedback, _d: bool) -> u32 {
            frame
        }
        fn finish(self) {}
    }

    struct Sum(u64);
    impl TaskStage for Sum {
        type Input = u32;
        type Output = u64;
        fn consume(&mut self, _idx: u64, v: u32) -> Feedback {
            self.0 += u64::from(v);
            Feedback::empty()
        }
        fn finish(self) -> u64 {
            self.0
        }
    }

    #[test]
    fn drives_a_full_pipeline_fed_from_outside() {
        let (tx, src) = channel_source::<u32>("ingest", 8, BackpressureMode::Block);
        let feeder = std::thread::spawn(move || {
            for v in 0..100u32 {
                assert!(tx.push(v));
            }
            tx.close();
        });
        let result = run_stream(0, src, Id, Sum(0), StreamConfig::default());
        feeder.join().expect("feeder thread");
        assert_eq!(result.task, (0..100u64).sum::<u64>());
        assert_eq!(result.telemetry.frames_in, 100);
    }
}

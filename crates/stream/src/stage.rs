//! The stage contracts of the capture pipeline.
//!
//! A stream is three workers — source, capture, task — connected by
//! bounded queues, plus a feedback edge running backwards from the
//! task to the capture stage (the paper's §4.3 application loop: what
//! the task extracted from frame *t−1* decides the region labels of
//! frame *t*):
//!
//! ```text
//!   source ──raw──▶ capture ──proc──▶ task
//!                      ▲                │
//!                      └───feedback─────┘
//! ```
//!
//! The feedback edge makes the capture and task stages lock-step (the
//! capture stage waits for frame t−1's feedback before encoding frame
//! t), which is exactly what keeps the staged executor's output
//! bit-identical to the synchronous pipeline. Throughput scaling
//! therefore comes from running *many streams* concurrently, not from
//! racing ahead within one stream — matching a real multi-camera
//! system, where each sensor's feedback loop is causally serial.

use crate::queue::BackpressureMode;
use rpr_core::Feature;
use rpr_frame::Rect;

/// What the task stage feeds back to the capture stage: the features
/// and scored detections extracted from the last processed frame,
/// which the region policy turns into the next frame's region labels.
#[derive(Debug, Clone, Default)]
pub struct Feedback {
    /// Tracked features (SLAM-style workloads).
    pub features: Vec<Feature>,
    /// Detection boxes with displacement estimates (detector-style
    /// workloads).
    pub detections: Vec<(Rect, f64)>,
}

impl Feedback {
    /// Feedback carrying no regions — what the capture stage uses for
    /// the first frame and when degrading under queue pressure.
    pub fn empty() -> Self {
        Feedback::default()
    }
}

/// Stage 1: produces raw sensor/ISP frames in capture order.
pub trait FrameSource: Send {
    /// The raw frame type.
    type Frame: Send;

    /// The next frame, or `None` at end of stream.
    fn next_frame(&mut self) -> Option<Self::Frame>;
}

/// Stage 2: the capture path (region policy, rhythmic encoder, memory
/// traffic accounting, decoder) squeezed between the sensor and the
/// task.
pub trait CaptureStage: Send {
    /// Raw frame type consumed.
    type Frame: Send;
    /// Processed (decoded) frame type emitted to the task.
    type Output: Send;
    /// What `finish` returns (e.g. traffic measurements).
    type Summary: Send;

    /// Processes one raw frame under the regions implied by
    /// `feedback`. When `degraded` is true the stage should fall back
    /// to a lower rhythm (the executor raises it when the downstream
    /// queue signalled pressure in [`BackpressureMode::Degrade`]).
    fn process(&mut self, frame: Self::Frame, feedback: &Feedback, degraded: bool)
        -> Self::Output;

    /// Consumes the stage, returning its run summary.
    fn finish(self) -> Self::Summary;
}

/// Stage 3: the vision task. Consumes processed frames, returns the
/// feedback that will shape the *next* frame's capture.
pub trait TaskStage: Send {
    /// Processed frame type consumed.
    type Input: Send;
    /// What `finish` returns (e.g. accuracy metrics).
    type Output: Send;

    /// Consumes one processed frame (with its source index) and
    /// returns the feedback for the next frame.
    fn consume(&mut self, frame_idx: u64, input: Self::Input) -> Feedback;

    /// Consumes the stage, returning the task's final output.
    fn finish(self) -> Self::Output;
}

/// A stateful rewrite of the task→capture feedback edge.
///
/// This is the hook the prediction subsystem (`rpr-predict`) plugs
/// into: the transform observes every processed frame the capture
/// stage emits and rewrites the *next* feedback before the capture
/// stage's region policy sees it — e.g. forward-projecting t−1
/// detections by estimated camera motion so the labels land where the
/// objects will be at frame t. The transform runs inside the capture
/// worker, so it keeps the lock-step determinism contract: same
/// frames + same feedback in ⇒ same rewritten feedback out.
pub trait FeedbackTransform<Out>: Send {
    /// Observes one processed frame as it leaves the capture stage.
    fn observe(&mut self, output: &Out);

    /// Rewrites the feedback for the frame about to be captured.
    fn transform(&mut self, feedback: Feedback) -> Feedback;
}

/// A [`CaptureStage`] adapter that routes the feedback edge through a
/// [`FeedbackTransform`] before the inner stage sees it.
#[derive(Debug)]
pub struct TransformedCapture<C, T> {
    inner: C,
    transform: T,
}

impl<C, T> TransformedCapture<C, T> {
    /// Wraps `inner` so that every feedback passes through `transform`
    /// and every output is observed by it.
    pub fn new(inner: C, transform: T) -> Self {
        TransformedCapture { inner, transform }
    }

    /// The wrapped stage and transform.
    pub fn into_parts(self) -> (C, T) {
        (self.inner, self.transform)
    }
}

impl<C, T> CaptureStage for TransformedCapture<C, T>
where
    C: CaptureStage,
    T: FeedbackTransform<C::Output>,
{
    type Frame = C::Frame;
    type Output = C::Output;
    type Summary = C::Summary;

    fn process(&mut self, frame: Self::Frame, feedback: &Feedback, degraded: bool)
        -> Self::Output {
        let rewritten = self.transform.transform(feedback.clone());
        let output = self.inner.process(frame, &rewritten, degraded);
        self.transform.observe(&output);
        output
    }

    fn finish(self) -> Self::Summary {
        self.inner.finish()
    }
}

/// Queue sizing and backpressure configuration of one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Capacity of the source→capture queue.
    pub raw_capacity: usize,
    /// Capacity of the capture→task queue.
    pub proc_capacity: usize,
    /// Backpressure mode of the source→capture queue. The
    /// capture→task queue always blocks: dropping *processed* frames
    /// would break the task↔capture feedback lock-step and with it
    /// the determinism guarantee.
    pub backpressure: BackpressureMode,
    /// Serving-side frame identity attached to every stage span this
    /// stream emits (the per-frame `frame_seq` is filled in from the
    /// stage's own frame index). `None` for standalone benchmark
    /// streams that have no tenant/camera identity.
    pub trace_ctx: Option<rpr_trace::FrameCtx>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            raw_capacity: 4,
            proc_capacity: 2,
            backpressure: BackpressureMode::Block,
            trace_ctx: None,
        }
    }
}

impl StreamConfig {
    /// A blocking (lossless, deterministic) configuration.
    pub fn blocking() -> Self {
        StreamConfig::default()
    }

    /// Same queues under a different backpressure mode.
    pub fn with_backpressure(mut self, mode: BackpressureMode) -> Self {
        self.backpressure = mode;
        self
    }

    /// Attaches a serving-side frame context to the stream's spans.
    pub fn with_trace_ctx(mut self, ctx: rpr_trace::FrameCtx) -> Self {
        self.trace_ctx = Some(ctx);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes frames and records the feedback it was handed.
    struct EchoCapture {
        seen: Vec<usize>,
    }

    impl CaptureStage for EchoCapture {
        type Frame = u64;
        type Output = u64;
        type Summary = Vec<usize>;

        fn process(&mut self, frame: u64, feedback: &Feedback, _degraded: bool) -> u64 {
            self.seen.push(feedback.detections.len());
            frame
        }

        fn finish(self) -> Vec<usize> {
            self.seen
        }
    }

    /// Appends one synthetic detection per observed frame.
    struct CountingTransform {
        observed: usize,
    }

    impl FeedbackTransform<u64> for CountingTransform {
        fn observe(&mut self, _output: &u64) {
            self.observed += 1;
        }

        fn transform(&mut self, mut feedback: Feedback) -> Feedback {
            for _ in 0..self.observed {
                feedback.detections.push((Rect::new(0, 0, 1, 1), 0.0));
            }
            feedback
        }
    }

    #[test]
    fn transform_rewrites_feedback_and_observes_outputs() {
        let mut stage = TransformedCapture::new(
            EchoCapture { seen: Vec::new() },
            CountingTransform { observed: 0 },
        );
        for t in 0..4 {
            let out = stage.process(t, &Feedback::empty(), false);
            assert_eq!(out, t);
        }
        let (inner, transform) = stage.into_parts();
        // Frame t sees one synthetic detection per previously observed
        // frame: 0, 1, 2, 3.
        assert_eq!(inner.finish(), vec![0, 1, 2, 3]);
        assert_eq!(transform.observed, 4);
    }
}

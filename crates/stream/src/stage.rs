//! The stage contracts of the capture pipeline.
//!
//! A stream is three workers — source, capture, task — connected by
//! bounded queues, plus a feedback edge running backwards from the
//! task to the capture stage (the paper's §4.3 application loop: what
//! the task extracted from frame *t−1* decides the region labels of
//! frame *t*):
//!
//! ```text
//!   source ──raw──▶ capture ──proc──▶ task
//!                      ▲                │
//!                      └───feedback─────┘
//! ```
//!
//! The feedback edge makes the capture and task stages lock-step (the
//! capture stage waits for frame t−1's feedback before encoding frame
//! t), which is exactly what keeps the staged executor's output
//! bit-identical to the synchronous pipeline. Throughput scaling
//! therefore comes from running *many streams* concurrently, not from
//! racing ahead within one stream — matching a real multi-camera
//! system, where each sensor's feedback loop is causally serial.

use crate::queue::BackpressureMode;
use rpr_core::Feature;
use rpr_frame::Rect;

/// What the task stage feeds back to the capture stage: the features
/// and scored detections extracted from the last processed frame,
/// which the region policy turns into the next frame's region labels.
#[derive(Debug, Clone, Default)]
pub struct Feedback {
    /// Tracked features (SLAM-style workloads).
    pub features: Vec<Feature>,
    /// Detection boxes with displacement estimates (detector-style
    /// workloads).
    pub detections: Vec<(Rect, f64)>,
}

impl Feedback {
    /// Feedback carrying no regions — what the capture stage uses for
    /// the first frame and when degrading under queue pressure.
    pub fn empty() -> Self {
        Feedback::default()
    }
}

/// Stage 1: produces raw sensor/ISP frames in capture order.
pub trait FrameSource: Send {
    /// The raw frame type.
    type Frame: Send;

    /// The next frame, or `None` at end of stream.
    fn next_frame(&mut self) -> Option<Self::Frame>;
}

/// Stage 2: the capture path (region policy, rhythmic encoder, memory
/// traffic accounting, decoder) squeezed between the sensor and the
/// task.
pub trait CaptureStage: Send {
    /// Raw frame type consumed.
    type Frame: Send;
    /// Processed (decoded) frame type emitted to the task.
    type Output: Send;
    /// What `finish` returns (e.g. traffic measurements).
    type Summary: Send;

    /// Processes one raw frame under the regions implied by
    /// `feedback`. When `degraded` is true the stage should fall back
    /// to a lower rhythm (the executor raises it when the downstream
    /// queue signalled pressure in [`BackpressureMode::Degrade`]).
    fn process(&mut self, frame: Self::Frame, feedback: &Feedback, degraded: bool)
        -> Self::Output;

    /// Consumes the stage, returning its run summary.
    fn finish(self) -> Self::Summary;
}

/// Stage 3: the vision task. Consumes processed frames, returns the
/// feedback that will shape the *next* frame's capture.
pub trait TaskStage: Send {
    /// Processed frame type consumed.
    type Input: Send;
    /// What `finish` returns (e.g. accuracy metrics).
    type Output: Send;

    /// Consumes one processed frame (with its source index) and
    /// returns the feedback for the next frame.
    fn consume(&mut self, frame_idx: u64, input: Self::Input) -> Feedback;

    /// Consumes the stage, returning the task's final output.
    fn finish(self) -> Self::Output;
}

/// Queue sizing and backpressure configuration of one stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Capacity of the source→capture queue.
    pub raw_capacity: usize,
    /// Capacity of the capture→task queue.
    pub proc_capacity: usize,
    /// Backpressure mode of the source→capture queue. The
    /// capture→task queue always blocks: dropping *processed* frames
    /// would break the task↔capture feedback lock-step and with it
    /// the determinism guarantee.
    pub backpressure: BackpressureMode,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { raw_capacity: 4, proc_capacity: 2, backpressure: BackpressureMode::Block }
    }
}

impl StreamConfig {
    /// A blocking (lossless, deterministic) configuration.
    pub fn blocking() -> Self {
        StreamConfig::default()
    }

    /// Same queues under a different backpressure mode.
    pub fn with_backpressure(mut self, mode: BackpressureMode) -> Self {
        self.backpressure = mode;
        self
    }
}

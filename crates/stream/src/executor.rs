//! The single-stream staged executor: one worker thread per stage,
//! bounded queues between them, and the task→capture feedback edge.

use crate::queue::{BackpressureMode, StageQueue};
use crate::stage::{CaptureStage, Feedback, FrameSource, StreamConfig, TaskStage};
use crate::telemetry::{frames_per_second, StageTelemetry, StreamTelemetry};
use std::time::Instant;

/// Everything one stream's run produced.
#[derive(Debug, Clone)]
pub struct StreamResult<CaptureSummary, TaskOutput> {
    /// Which stream this is.
    pub stream_id: usize,
    /// The capture stage's summary (e.g. traffic measurements).
    pub capture: CaptureSummary,
    /// The task stage's final output (e.g. accuracy metrics).
    pub task: TaskOutput,
    /// Queue/latency/throughput telemetry.
    pub telemetry: StreamTelemetry,
}

/// Runs one stream to completion on three dedicated stage workers.
///
/// The capture worker waits for the task's feedback on frame *t−1*
/// before encoding frame *t* (the first frame uses empty feedback), so
/// under [`BackpressureMode::Block`] the stream's outputs are
/// bit-identical to a synchronous loop over the same stages. Under
/// `DropOldest` the source→capture queue evicts stale raw frames;
/// under `Degrade` the capture stage is told to lower its rhythm
/// whenever the source found the queue full.
pub fn run_stream<S, C, T>(
    stream_id: usize,
    mut source: S,
    mut capture: C,
    mut task: T,
    config: StreamConfig,
) -> StreamResult<C::Summary, T::Output>
where
    S: FrameSource,
    C: CaptureStage<Frame = S::Frame>,
    T: TaskStage<Input = C::Output>,
{
    let raw_q: StageQueue<(u64, S::Frame)> =
        StageQueue::new("raw", config.raw_capacity, config.backpressure);
    let proc_q: StageQueue<(u64, C::Output)> =
        StageQueue::new("proc", config.proc_capacity, BackpressureMode::Block);
    // Lock-step bounds in-flight feedback to one entry; the extra
    // headroom covers the tail frames the task drains after the
    // capture worker has already exited.
    let fb_q: StageQueue<Feedback> =
        StageQueue::new("feedback", config.proc_capacity + 1, BackpressureMode::Block);

    let started = Instant::now();
    let (capture_summary, task_output, stage_stats) = std::thread::scope(|scope| {
        let source_worker = scope.spawn(|| {
            rpr_trace::thread_label(rpr_trace::names::STAGE_SOURCE);
            let mut stats = StageTelemetry::new("source");
            let mut idx = 0u64;
            loop {
                let mut span = rpr_trace::span(rpr_trace::names::STAGE_SOURCE, "stream")
                    .with_frame(idx);
                if let Some(base) = config.trace_ctx {
                    span = span.with_ctx(base.for_frame(idx));
                }
                let _span = span;
                let t0 = Instant::now();
                let Some(frame) = source.next_frame() else { break };
                stats.latency.record(t0.elapsed());
                stats.frames += 1;
                if !raw_q.push((idx, frame)) {
                    break;
                }
                idx += 1;
            }
            raw_q.close();
            stats
        });

        let capture_worker = scope.spawn(|| {
            rpr_trace::thread_label(rpr_trace::names::STAGE_CAPTURE);
            let mut stats = StageTelemetry::new("capture");
            let mut feedback = Feedback::empty();
            let mut first = true;
            // Under lossless Block backpressure, raw frames are drained
            // in batches to amortize the queue crossing; the per-frame
            // feedback lock-step below is untouched, so outputs stay
            // bit-identical to the synchronous loop. The lossy modes
            // keep per-frame pops: a frame parked in a local batch
            // could neither be evicted for freshness (DropOldest) nor
            // observe pressure promptly (Degrade).
            let batch_raw = config.backpressure == BackpressureMode::Block;
            let mut batch: Vec<(u64, S::Frame)> = Vec::new();
            'outer: loop {
                batch.clear();
                if batch_raw {
                    if raw_q.pop_up_to(config.raw_capacity.max(1), &mut batch) == 0 {
                        break;
                    }
                } else {
                    match raw_q.pop() {
                        Some(item) => batch.push(item),
                        None => break,
                    }
                }
                for (idx, frame) in batch.drain(..) {
                    if first {
                        first = false;
                    } else {
                        match fb_q.pop() {
                            Some(fb) => feedback = fb,
                            None => break 'outer,
                        }
                    }
                    let degraded = raw_q.take_pressure();
                    if degraded {
                        stats.degraded_frames += 1;
                    }
                    let mut span = rpr_trace::span(rpr_trace::names::STAGE_CAPTURE, "stream")
                        .with_frame(idx);
                    if let Some(base) = config.trace_ctx {
                        span = span.with_ctx(base.for_frame(idx));
                    }
                    let t0 = Instant::now();
                    let out = capture.process(frame, &feedback, degraded);
                    stats.latency.record(t0.elapsed());
                    drop(span);
                    stats.frames += 1;
                    if !proc_q.push((idx, out)) {
                        break 'outer;
                    }
                }
            }
            proc_q.close();
            fb_q.close();
            (capture.finish(), stats)
        });

        let task_worker = scope.spawn(|| {
            rpr_trace::thread_label(rpr_trace::names::STAGE_TASK);
            let mut stats = StageTelemetry::new("task");
            // Batch-drain the proc queue: one lock crossing per batch.
            // The batch never exceeds proc_capacity items and at most
            // one feedback was in flight when it was taken, so the
            // feedback pushes below fit fb_q's proc_capacity + 1 slots
            // without ever blocking — no deadlock against a capture
            // worker stalled on a full proc queue.
            let mut batch: Vec<(u64, T::Input)> = Vec::new();
            loop {
                batch.clear();
                if proc_q.pop_up_to(config.proc_capacity.max(1), &mut batch) == 0 {
                    break;
                }
                for (idx, input) in batch.drain(..) {
                    let mut span = rpr_trace::span(rpr_trace::names::STAGE_TASK, "stream")
                        .with_frame(idx);
                    if let Some(base) = config.trace_ctx {
                        span = span.with_ctx(base.for_frame(idx));
                    }
                    let t0 = Instant::now();
                    let fb = task.consume(idx, input);
                    stats.latency.record(t0.elapsed());
                    drop(span);
                    stats.frames += 1;
                    fb_q.push(fb);
                }
            }
            (task.finish(), stats)
        });

        let source_stats = source_worker.join().expect("source worker must not panic");
        let (capture_summary, capture_stats) =
            capture_worker.join().expect("capture worker must not panic");
        let (task_output, task_stats) =
            task_worker.join().expect("task worker must not panic");
        (capture_summary, task_output, vec![source_stats, capture_stats, task_stats])
    });
    let wall = started.elapsed().as_secs_f64();

    let queues = vec![raw_q.telemetry(), proc_q.telemetry(), fb_q.telemetry()];
    let frames_in = stage_stats[0].frames;
    let frames_out = stage_stats[2].frames;
    let frames_dropped: u64 = queues.iter().map(|q| q.dropped).sum();
    let telemetry = StreamTelemetry {
        stream_id,
        frames_in,
        frames_out,
        frames_dropped,
        wall_time_s: wall,
        end_to_end_fps: frames_per_second(frames_out, wall),
        queues,
        stages: stage_stats,
    };
    StreamResult { stream_id, capture: capture_summary, task: task_output, telemetry }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Source yielding `n` numbered u32 frames.
    struct Counter {
        next: u32,
        n: u32,
    }

    impl FrameSource for Counter {
        type Frame = u32;

        fn next_frame(&mut self) -> Option<u32> {
            if self.next >= self.n {
                return None;
            }
            let v = self.next;
            self.next += 1;
            Some(v)
        }
    }

    /// Capture stage: doubles the frame and adds the feedback's
    /// detection count (exercises the feedback path), recording the
    /// sequence it saw.
    struct Doubler {
        seen: Vec<(u32, usize, bool)>,
    }

    impl CaptureStage for Doubler {
        type Frame = u32;
        type Output = u32;
        type Summary = Vec<(u32, usize, bool)>;

        fn process(&mut self, frame: u32, feedback: &Feedback, degraded: bool) -> u32 {
            self.seen.push((frame, feedback.detections.len(), degraded));
            frame * 2 + feedback.detections.len() as u32
        }

        fn finish(self) -> Self::Summary {
            self.seen
        }
    }

    /// Task stage: sums its inputs and always reports one detection.
    struct Summer {
        total: u64,
    }

    impl TaskStage for Summer {
        type Input = u32;
        type Output = u64;

        fn consume(&mut self, _idx: u64, input: u32) -> Feedback {
            self.total += u64::from(input);
            Feedback {
                features: vec![],
                detections: vec![(rpr_frame::Rect::new(0, 0, 4, 4), 1.0)],
            }
        }

        fn finish(self) -> u64 {
            self.total
        }
    }

    fn run(n: u32, config: StreamConfig) -> StreamResult<Vec<(u32, usize, bool)>, u64> {
        run_stream(0, Counter { next: 0, n }, Doubler { seen: vec![] }, Summer { total: 0 }, config)
    }

    #[test]
    fn matches_the_synchronous_loop_exactly() {
        let staged = run(20, StreamConfig::blocking());
        // Synchronous reference: same stages, one loop.
        let mut sync_seen = Vec::new();
        let mut sync_total = 0u64;
        let mut fb_detections = 0usize;
        for t in 0..20u32 {
            sync_seen.push((t, fb_detections, false));
            let out = t * 2 + fb_detections as u32;
            sync_total += u64::from(out);
            fb_detections = 1; // Summer always reports one detection.
        }
        assert_eq!(staged.capture, sync_seen);
        assert_eq!(staged.task, sync_total);
        assert_eq!(staged.telemetry.frames_in, 20);
        assert_eq!(staged.telemetry.frames_out, 20);
        assert_eq!(staged.telemetry.frames_dropped, 0);
    }

    #[test]
    fn first_frame_gets_empty_feedback_then_lock_step() {
        let staged = run(5, StreamConfig::blocking());
        assert_eq!(staged.capture[0], (0, 0, false), "frame 0 sees empty feedback");
        for (i, entry) in staged.capture.iter().enumerate().skip(1) {
            assert_eq!(*entry, (i as u32, 1, false), "frame {i} sees frame {}'s feedback", i - 1);
        }
    }

    #[test]
    fn telemetry_counts_all_stages() {
        let staged = run(12, StreamConfig::blocking());
        let names: Vec<&str> =
            staged.telemetry.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["source", "capture", "task"]);
        for stage in &staged.telemetry.stages {
            assert_eq!(stage.frames, 12);
            assert_eq!(stage.latency.count, 12);
        }
        assert_eq!(staged.telemetry.queues[0].name, "raw");
        assert_eq!(staged.telemetry.queues[0].pushed, 12);
        assert!(staged.telemetry.end_to_end_fps > 0.0);
    }

    #[test]
    fn drop_oldest_keeps_stream_order() {
        // A tiny raw queue with a slow capture stage cannot drop under
        // Block; with DropOldest it may, but whatever survives must
        // stay in source order.
        let staged = run(
            50,
            StreamConfig {
                raw_capacity: 1,
                proc_capacity: 1,
                backpressure: BackpressureMode::DropOldest,
                ..Default::default()
            },
        );
        let frames: Vec<u32> = staged.capture.iter().map(|(f, _, _)| *f).collect();
        let mut sorted = frames.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(frames, sorted, "processed frames stay strictly increasing");
        assert_eq!(
            staged.telemetry.frames_out + staged.telemetry.frames_dropped,
            50,
            "every frame is either processed or counted as dropped"
        );
    }
}

//! Per-stream telemetry: stage latency histograms, queue counters, and
//! end-to-end throughput, exportable as serde JSON.
//!
//! The JSON schema (documented in `DESIGN.md`) is stable:
//!
//! ```json
//! {
//!   "stream_id": 0,
//!   "frames_in": 120, "frames_out": 118, "frames_dropped": 2,
//!   "wall_time_s": 1.9, "end_to_end_fps": 62.1,
//!   "queues": [ {"name": "raw", "capacity": 4, "mode": "Block", ...} ],
//!   "stages": [ {"name": "capture", "latency": {"count": 118, ...}} ]
//! }
//! ```

use crate::queue::QueueTelemetry;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Upper bucket bounds for stage-latency histograms, in microseconds.
/// The final bucket is unbounded.
pub const LATENCY_BUCKETS_US: [u64; 11] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000];

/// A fixed-bucket latency histogram with exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Sample count.
    pub count: u64,
    /// Total time across all samples, nanoseconds.
    pub sum_ns: u64,
    /// Fastest sample, nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Slowest sample, nanoseconds.
    pub max_ns: u64,
    /// One count per bucket of [`LATENCY_BUCKETS_US`] plus a final
    /// overflow bucket.
    pub buckets: Vec<u64>,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            count: 0,
            sum_ns: 0,
            min_ns: 0,
            max_ns: 0,
            buckets: vec![0; LATENCY_BUCKETS_US.len() + 1],
        }
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one stage execution.
    pub fn record(&mut self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let us = ns / 1_000;
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&b| us <= b)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns;
        if self.count == 1 || ns < self.min_ns {
            self.min_ns = ns;
        }
        if ns > self.max_ns {
            self.max_ns = ns;
        }
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1e9
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        if self.count == 0 {
            self.min_ns = other.min_ns;
        } else {
            self.min_ns = self.min_ns.min(other.min_ns);
        }
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }
}

/// Telemetry for one stage worker of one stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTelemetry {
    /// Stage name (`"source"`, `"capture"`, `"task"`).
    pub name: String,
    /// Frames this stage completed.
    pub frames: u64,
    /// Per-frame processing latency.
    pub latency: LatencyHistogram,
    /// Frames processed in degraded (lower-rhythm) mode; only the
    /// capture stage ever reports a non-zero value.
    pub degraded_frames: u64,
}

impl StageTelemetry {
    /// An empty record for a named stage.
    pub fn new(name: &str) -> Self {
        StageTelemetry {
            name: name.to_string(),
            frames: 0,
            latency: LatencyHistogram::new(),
            degraded_frames: 0,
        }
    }
}

/// The complete telemetry of one camera stream's run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamTelemetry {
    /// Which stream this is (index into the manager's spec list).
    pub stream_id: usize,
    /// Frames the source produced.
    pub frames_in: u64,
    /// Frames that reached the task stage.
    pub frames_out: u64,
    /// Frames evicted by drop-oldest queues.
    pub frames_dropped: u64,
    /// Wall-clock duration of the stream's run, seconds.
    pub wall_time_s: f64,
    /// `frames_out / wall_time_s`.
    pub end_to_end_fps: f64,
    /// One entry per inter-stage queue.
    pub queues: Vec<QueueTelemetry>,
    /// One entry per stage worker.
    pub stages: Vec<StageTelemetry>,
}

impl StreamTelemetry {
    /// Aggregate fps across a set of streams (sum of per-stream fps).
    pub fn aggregate_fps(streams: &[StreamTelemetry]) -> f64 {
        streams.iter().map(|s| s.end_to_end_fps).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_micros(40)); // bucket 0 (<= 50us)
        h.record(Duration::from_micros(90)); // bucket 1 (<= 100us)
        h.record(Duration::from_millis(200)); // overflow bucket
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(*h.buckets.last().unwrap(), 1);
        assert_eq!(h.min_ns, 40_000);
        assert_eq!(h.max_ns, 200_000_000);
        assert!(h.mean_s() > 0.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_micros(400));
        b.record(Duration::from_micros(600));
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.min_ns, 10_000);
        assert_eq!(a.max_ns, 600_000);
    }

    #[test]
    fn telemetry_serializes_to_json() {
        let t = StreamTelemetry {
            stream_id: 3,
            frames_in: 10,
            frames_out: 9,
            frames_dropped: 1,
            wall_time_s: 0.5,
            end_to_end_fps: 18.0,
            queues: vec![],
            stages: vec![StageTelemetry::new("capture")],
        };
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("\"stream_id\":3"));
        assert!(json.contains("\"capture\""));
        let back: StreamTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}

//! Per-stream telemetry: stage latency histograms, queue counters, and
//! end-to-end throughput, exportable as serde JSON.
//!
//! The JSON schema (documented in `DESIGN.md`) is stable:
//!
//! ```json
//! {
//!   "stream_id": 0,
//!   "frames_in": 120, "frames_out": 118, "frames_dropped": 2,
//!   "wall_time_s": 1.9, "end_to_end_fps": 62.1,
//!   "queues": [ {"name": "raw", "capacity": 4, "mode": "Block", ...} ],
//!   "stages": [ {"name": "capture", "latency": {"count": 118, ...}} ]
//! }
//! ```

use crate::queue::QueueTelemetry;
use serde::{Deserialize, Serialize};

/// The histogram type itself lives in `rpr-trace` (the live metrics
/// plane shards and merges it there); re-exported here so the stream
/// telemetry schema and call sites are unchanged.
pub use rpr_trace::{LatencyHistogram, LATENCY_BUCKETS_US};

/// Telemetry for one stage worker of one stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTelemetry {
    /// Stage name (`"source"`, `"capture"`, `"task"`).
    pub name: String,
    /// Frames this stage completed.
    pub frames: u64,
    /// Per-frame processing latency.
    pub latency: LatencyHistogram,
    /// Frames processed in degraded (lower-rhythm) mode; only the
    /// capture stage ever reports a non-zero value.
    pub degraded_frames: u64,
}

impl StageTelemetry {
    /// An empty record for a named stage.
    pub fn new(name: &str) -> Self {
        StageTelemetry {
            name: name.to_string(),
            frames: 0,
            latency: LatencyHistogram::new(),
            degraded_frames: 0,
        }
    }
}

/// The complete telemetry of one camera stream's run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamTelemetry {
    /// Which stream this is (index into the manager's spec list).
    pub stream_id: usize,
    /// Frames the source produced.
    pub frames_in: u64,
    /// Frames that reached the task stage.
    pub frames_out: u64,
    /// Frames evicted by drop-oldest queues.
    pub frames_dropped: u64,
    /// Wall-clock duration of the stream's run, seconds.
    pub wall_time_s: f64,
    /// `frames_out / wall_time_s`.
    pub end_to_end_fps: f64,
    /// One entry per inter-stage queue.
    pub queues: Vec<QueueTelemetry>,
    /// One entry per stage worker.
    pub stages: Vec<StageTelemetry>,
}

impl StreamTelemetry {
    /// Aggregate fps across a set of streams (sum of per-stream fps).
    pub fn aggregate_fps(streams: &[StreamTelemetry]) -> f64 {
        streams.iter().map(|s| s.end_to_end_fps).sum()
    }
}

/// Throughput in frames per second, guarded against zero or negative
/// wall time (returns 0.0 instead of `inf`/`NaN`). Every
/// `frames / wall_time` division in the stack routes through here.
pub fn frames_per_second(frames: u64, wall_time_s: f64) -> f64 {
    if wall_time_s > 0.0 {
        frames as f64 / wall_time_s
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The histogram unit tests moved to `rpr-trace` (crates/trace/src/
    // hist.rs) with the type; what stays here is the re-export contract
    // the stream telemetry schema depends on.
    #[test]
    fn reexported_histogram_keeps_schema_and_behaviour() {
        let mut h = LatencyHistogram::new();
        h.record(std::time::Duration::from_micros(40));
        assert_eq!(h.buckets.len(), LATENCY_BUCKETS_US.len() + 1);
        assert_eq!(h.count, 1);
        let json = serde_json::to_string(&h).unwrap();
        assert!(json.starts_with("{\"count\":1,\"sum_ns\":40000,"), "{json}");
    }

    #[test]
    fn frames_per_second_guards_zero_wall_time() {
        assert_eq!(frames_per_second(100, 0.0), 0.0);
        assert_eq!(frames_per_second(100, -1.0), 0.0);
        assert_eq!(frames_per_second(0, 0.0), 0.0);
        assert_eq!(frames_per_second(60, 2.0), 30.0);
        assert!(frames_per_second(u64::MAX, 0.0).is_finite());
    }

    #[test]
    fn telemetry_serializes_to_json() {
        let t = StreamTelemetry {
            stream_id: 3,
            frames_in: 10,
            frames_out: 9,
            frames_dropped: 1,
            wall_time_s: 0.5,
            end_to_end_fps: 18.0,
            queues: vec![],
            stages: vec![StageTelemetry::new("capture")],
        };
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("\"stream_id\":3"));
        assert!(json.contains("\"capture\""));
        let back: StreamTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}

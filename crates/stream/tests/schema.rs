//! Schema drift guard: the `StreamTelemetry` JSON example documented in
//! DESIGN.md ("Telemetry schema") must have exactly the field structure
//! the code serializes today. If either side changes, this test names
//! the missing/extra paths so the doc and the code move together.

use rpr_stream::{
    BackpressureMode, LatencyHistogram, QueueTelemetry, StageTelemetry, StreamTelemetry,
};
use serde_json::Value;
use std::time::Duration;

/// Collects every map-key path in a JSON value (`.queues[].name` style).
/// Array shape is taken from the first element.
fn key_paths(v: &Value, prefix: &str, out: &mut Vec<String>) {
    match v {
        Value::Map(entries) => {
            for (k, child) in entries {
                let path = format!("{prefix}.{k}");
                out.push(path.clone());
                key_paths(child, &path, out);
            }
        }
        Value::Seq(items) => {
            if let Some(first) = items.first() {
                key_paths(first, &format!("{prefix}[]"), out);
            }
        }
        _ => {}
    }
}

fn sorted_paths(v: &Value) -> Vec<String> {
    let mut out = Vec::new();
    key_paths(v, "", &mut out);
    out.sort();
    out
}

/// The JSON block under DESIGN.md's "### Telemetry schema" heading.
fn documented_schema() -> Value {
    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md"))
        .expect("DESIGN.md readable");
    let section = design
        .split("### Telemetry schema")
        .nth(1)
        .expect("DESIGN.md has a 'Telemetry schema' section");
    let block = section
        .split("```json")
        .nth(1)
        .and_then(|rest| rest.split("```").next())
        .expect("Telemetry schema section has a ```json block");
    serde_json::from_str(block).expect("documented schema block is valid JSON")
}

/// A fully-populated real telemetry value (every Vec non-empty so the
/// element schemas are visible).
fn live_telemetry() -> StreamTelemetry {
    let mut latency = LatencyHistogram::new();
    latency.record(Duration::from_micros(120));
    let mut stage = StageTelemetry::new("capture");
    stage.frames = 1;
    stage.latency = latency;
    StreamTelemetry {
        stream_id: 0,
        frames_in: 1,
        frames_out: 1,
        frames_dropped: 0,
        wall_time_s: 0.1,
        end_to_end_fps: 10.0,
        queues: vec![QueueTelemetry {
            name: "raw".to_string(),
            capacity: 4,
            mode: BackpressureMode::Block,
            pushed: 1,
            popped: 1,
            dropped: 0,
            full_events: 0,
            max_depth: 1,
            depth_sum: 1,
        }],
        stages: vec![stage],
    }
}

#[test]
fn documented_telemetry_schema_matches_serialization() {
    let documented = sorted_paths(&documented_schema());
    let actual = sorted_paths(&serde_json::to_value(&live_telemetry()).unwrap());
    let missing_from_doc: Vec<_> =
        actual.iter().filter(|p| !documented.contains(p)).collect();
    let stale_in_doc: Vec<_> =
        documented.iter().filter(|p| !actual.contains(p)).collect();
    assert!(
        missing_from_doc.is_empty() && stale_in_doc.is_empty(),
        "StreamTelemetry schema drift.\n  serialized but undocumented: {missing_from_doc:?}\n  \
         documented but no longer serialized: {stale_in_doc:?}\n  \
         update DESIGN.md '### Telemetry schema' to match the code."
    );
}

#[test]
fn documented_schema_block_is_nonempty() {
    let paths = sorted_paths(&documented_schema());
    assert!(paths.contains(&".stream_id".to_string()), "{paths:?}");
    assert!(paths.contains(&".stages[].latency.buckets".to_string()), "{paths:?}");
}

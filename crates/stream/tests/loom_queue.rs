//! Loom models of the bounded-queue backpressure protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; run with
//! `RUSTFLAGS="--cfg loom" cargo test -p rpr-stream --test loom_queue`.
//! Each model asserts an invariant that must hold on *every* explored
//! interleaving of the producer, consumer, and shutdown threads.
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use rpr_stream::{BackpressureMode, StageQueue};

#[test]
fn block_mode_is_lossless_and_fifo_under_contention() {
    loom::model(|| {
        let q = Arc::new(StageQueue::new("model", 1, BackpressureMode::Block));
        let producer = Arc::clone(&q);
        let h = thread::spawn(move || {
            assert!(producer.push(1));
            assert!(producer.push(2));
            assert!(producer.push(3));
        });
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        h.join().unwrap();
        let t = q.telemetry();
        assert_eq!((t.pushed, t.popped, t.dropped), (3, 3, 0));
    });
}

#[test]
fn batch_pop_is_lossless_and_fifo_under_contention() {
    loom::model(|| {
        let q = Arc::new(StageQueue::new("model", 1, BackpressureMode::Block));
        let producer = Arc::clone(&q);
        let h = thread::spawn(move || {
            assert!(producer.push(1));
            assert!(producer.push(2));
            producer.close();
        });
        // The batch consumer must see both frames in order on every
        // interleaving, and its multi-slot wakeup must release the
        // producer blocked on the 1-deep queue.
        let mut got = Vec::new();
        while q.pop_up_to(2, &mut got) != 0 {}
        h.join().unwrap();
        assert_eq!(got, [1, 2]);
        assert_eq!(q.telemetry().popped, 2);
    });
}

#[test]
fn close_wakes_a_draining_consumer() {
    loom::model(|| {
        let q = Arc::new(StageQueue::new("model", 2, BackpressureMode::Block));
        assert!(q.push(7));
        let closer = Arc::clone(&q);
        let h = thread::spawn(move || closer.close());
        // The queued frame must survive a racing close; after the
        // drain the consumer must see end-of-stream, not a hang.
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
        h.join().unwrap();
    });
}

#[test]
fn close_unblocks_a_full_queue_producer() {
    loom::model(|| {
        let q = Arc::new(StageQueue::new("model", 1, BackpressureMode::Block));
        assert!(q.push(1));
        let producer = Arc::clone(&q);
        let h = thread::spawn(move || producer.push(2));
        // Nothing ever pops, so the producer can only leave its wait
        // loop through the close path — and must report non-delivery.
        q.close();
        assert!(!h.join().unwrap(), "push into a closed queue must fail");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    });
}

#[test]
fn drop_oldest_conserves_frames_across_interleavings() {
    loom::model(|| {
        let q = Arc::new(StageQueue::new("model", 1, BackpressureMode::DropOldest));
        let producer = Arc::clone(&q);
        let h = thread::spawn(move || {
            assert!(producer.push(1));
            assert!(producer.push(2));
        });
        let first = q.pop();
        assert!(first.is_some(), "a producer is running, pop must yield a frame");
        h.join().unwrap();
        q.close();
        let mut drained = 0u64;
        while q.pop().is_some() {
            drained += 1;
        }
        let t = q.telemetry();
        // Every accepted frame is accounted for: handed to the
        // consumer or counted as evicted, never silently lost.
        assert_eq!(t.pushed, 2);
        assert_eq!(t.popped, 1 + drained);
        assert_eq!(t.popped + t.dropped, 2);
    });
}

#[test]
fn degrade_pressure_flag_is_raised_exactly_when_blocked() {
    loom::model(|| {
        let q = Arc::new(StageQueue::new("model", 1, BackpressureMode::Degrade));
        assert!(q.push(1));
        let producer = Arc::clone(&q);
        let h = thread::spawn(move || producer.push(2));
        assert_eq!(q.pop(), Some(1));
        assert!(h.join().unwrap());
        // Whether the producer saw a full queue is schedule-dependent
        // (the pop can land before its push attempt begins); the
        // invariant is that the pressure flag tracks that observation
        // exactly — raised iff the queue was ever found full.
        let hit_full = q.telemetry().full_events > 0;
        assert_eq!(
            q.take_pressure(),
            hit_full,
            "pressure flag must match whether the producer found the queue full"
        );
        assert!(!q.take_pressure(), "flag reads once then clears");
        assert_eq!(q.pop(), Some(2));
    });
}

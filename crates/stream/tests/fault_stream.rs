//! Fault injection through the staged stream executor: corrupted
//! encoded frames flowing through the capture stage must surface as
//! typed rejections — never a worker panic (which would poison the
//! whole scope) and never a silently wrong frame delivered to the
//! task — under every backpressure mode, including the lossy
//! `DropOldest` and `Degrade` modes.
//!
//! The capture stages here use skip=1 regions only, so every decode is
//! independent of decoder history; that keeps per-frame assertions
//! sound even when `DropOldest` throws raw frames away.

use rpr_core::{
    EncodedFrame, RegionLabel, RegionList, RhythmicEncoder, SoftwareDecoder,
};
use rpr_frame::GrayFrame;
use rpr_stream::{
    run_stream, BackpressureMode, CaptureStage, Feedback, FrameSource, StreamConfig,
    TaskStage,
};
use rpr_testkit::{gen_frame_with, FramePattern, TestRng, ALL_FAULTS};

const W: u32 = 16;
const H: u32 = 12;
const FRAMES: u64 = 40;
const SEED: u64 = 0xBEEF;

/// Deterministic per-index frame so any stage can recompute the source
/// content from the frame index alone (survives frame drops).
fn frame_for(idx: u64) -> GrayFrame {
    gen_frame_with(&mut TestRng::new(SEED ^ idx), W, H, FramePattern::Gradient)
}

/// Skip=1 regions: no temporally skipped pixels, decode is pure.
fn regions() -> RegionList {
    RegionList::new(
        W,
        H,
        vec![RegionLabel::new(1, 1, 9, 7, 2, 1), RegionLabel::new(6, 4, 10, 8, 1, 1)],
    )
    .unwrap()
}

/// The reference decode of frame `idx`, computed outside the stream.
fn expected_decode(idx: u64) -> GrayFrame {
    let encoded = RhythmicEncoder::new(W, H).encode(&frame_for(idx), idx, &regions());
    SoftwareDecoder::new(W, H).decode(&encoded)
}

struct SeededSource {
    next: u64,
}

impl FrameSource for SeededSource {
    // The frame carries its own source index so the capture stage can
    // key encoding on it even after `DropOldest` evicts frames.
    type Frame = (u64, GrayFrame);
    fn next_frame(&mut self) -> Option<(u64, GrayFrame)> {
        if self.next >= FRAMES {
            return None;
        }
        let f = (self.next, frame_for(self.next));
        self.next += 1;
        Some(f)
    }
}

/// What the capture stage hands the task for each frame.
enum Delivery {
    /// The frame survived DRAM: its decode.
    Decoded(GrayFrame),
    /// The read-back was corrupted and the decoder rejected it.
    Rejected,
}

/// Capture stage that encodes, injects a fault on every `fault_every`th
/// frame (cycling through all fault kinds), and only forwards decodes
/// that passed validation.
struct FaultyCapture {
    encoder: RhythmicEncoder,
    decoder: SoftwareDecoder,
    regions: RegionList,
    fault_every: u64,
    processed: u64,
    injected: u64,
    rejected: u64,
    degraded_seen: u64,
    rng: TestRng,
}

impl FaultyCapture {
    fn new(fault_every: u64) -> Self {
        FaultyCapture {
            encoder: RhythmicEncoder::new(W, H),
            decoder: SoftwareDecoder::new(W, H),
            regions: regions(),
            fault_every,
            processed: 0,
            injected: 0,
            rejected: 0,
            degraded_seen: 0,
            rng: TestRng::new(SEED),
        }
    }

    fn corrupt(&mut self, encoded: &EncodedFrame) -> Option<EncodedFrame> {
        // Cycle the starting kind per injection; skip inapplicable draws.
        let base = (self.injected as usize) % ALL_FAULTS.len();
        for i in 0..ALL_FAULTS.len() {
            let k = ALL_FAULTS[(base + i) % ALL_FAULTS.len()];
            if let Some(bad) = k.inject(encoded, &mut self.rng) {
                return Some(bad);
            }
        }
        None
    }
}

impl CaptureStage for FaultyCapture {
    type Frame = (u64, GrayFrame);
    type Output = (u64, Delivery);
    type Summary = FaultyCaptureSummary;

    fn process(
        &mut self,
        (idx, frame): (u64, GrayFrame),
        _feedback: &Feedback,
        degraded: bool,
    ) -> Self::Output {
        self.processed += 1;
        if degraded {
            self.degraded_seen += 1;
        }
        let encoded = self.encoder.encode(&frame, idx, &self.regions);
        let stored = if self.fault_every > 0 && idx % self.fault_every == self.fault_every - 1 {
            match self.corrupt(&encoded) {
                Some(bad) => {
                    self.injected += 1;
                    bad
                }
                None => encoded.clone(),
            }
        } else {
            encoded.clone()
        };
        match self.decoder.try_decode(&stored) {
            Ok(out) => (idx, Delivery::Decoded(out)),
            Err(_) => {
                self.rejected += 1;
                (idx, Delivery::Rejected)
            }
        }
    }

    fn finish(self) -> FaultyCaptureSummary {
        FaultyCaptureSummary {
            processed: self.processed,
            injected: self.injected,
            rejected: self.rejected,
            degraded_seen: self.degraded_seen,
        }
    }
}

struct FaultyCaptureSummary {
    processed: u64,
    injected: u64,
    rejected: u64,
    degraded_seen: u64,
}

/// Task that checks every delivered decode against the out-of-band
/// reference for its index.
struct CheckingTask {
    decoded_ok: u64,
    rejected: u64,
    mismatches: Vec<u64>,
}

impl CheckingTask {
    fn new() -> Self {
        CheckingTask { decoded_ok: 0, rejected: 0, mismatches: Vec::new() }
    }
}

impl TaskStage for CheckingTask {
    type Input = (u64, Delivery);
    type Output = CheckingTask;

    fn consume(&mut self, _stream_idx: u64, input: Self::Input) -> Feedback {
        let (capture_idx, delivery) = input;
        match delivery {
            Delivery::Decoded(out) => {
                if out == expected_decode(capture_idx) {
                    self.decoded_ok += 1;
                } else {
                    self.mismatches.push(capture_idx);
                }
            }
            Delivery::Rejected => self.rejected += 1,
        }
        Feedback::empty()
    }

    fn finish(self) -> CheckingTask {
        self
    }
}

fn run_with(config: StreamConfig, fault_every: u64) -> (FaultyCaptureSummary, CheckingTask) {
    let result = run_stream(
        0,
        SeededSource { next: 0 },
        FaultyCapture::new(fault_every),
        CheckingTask::new(),
        config,
    );
    (result.capture, result.task)
}

#[test]
fn blocking_stream_detects_every_fault_and_delivers_the_rest() {
    let (capture, task) = run_with(StreamConfig::blocking(), 3);
    assert_eq!(capture.processed, FRAMES, "blocking mode is lossless");
    assert!(capture.injected > 0, "faults were injected");
    assert_eq!(
        capture.rejected, capture.injected,
        "every injected fault is rejected, nothing else is"
    );
    assert_eq!(task.rejected, capture.rejected);
    assert_eq!(task.decoded_ok, FRAMES - capture.rejected);
    assert!(task.mismatches.is_empty(), "silent wrong frames: {:?}", task.mismatches);
}

#[test]
fn drop_oldest_stream_never_delivers_wrong_pixels() {
    let config = StreamConfig {
        raw_capacity: 2,
        proc_capacity: 2,
        backpressure: BackpressureMode::DropOldest,
        ..Default::default()
    };
    let (capture, task) = run_with(config, 2);
    // Frames may be dropped, but whatever arrives is either a typed
    // rejection or byte-identical to the reference decode.
    assert!(capture.processed <= FRAMES);
    assert!(capture.processed > 0);
    assert_eq!(capture.rejected, capture.injected);
    assert!(task.mismatches.is_empty(), "silent wrong frames: {:?}", task.mismatches);
    assert_eq!(task.decoded_ok + task.rejected, capture.processed);
}

#[test]
fn degrade_stream_completes_with_faults_detected() {
    let config = StreamConfig {
        raw_capacity: 1,
        proc_capacity: 1,
        backpressure: BackpressureMode::Degrade,
        ..Default::default()
    };
    let (capture, task) = run_with(config, 4);
    assert_eq!(capture.processed, FRAMES, "degrade mode never drops frames");
    // Degradation is timing-dependent; it may or may not trigger, but it
    // can never exceed the processed count.
    assert!(capture.degraded_seen <= capture.processed);
    assert_eq!(capture.rejected, capture.injected);
    assert!(task.mismatches.is_empty(), "silent wrong frames: {:?}", task.mismatches);
    assert_eq!(task.decoded_ok + task.rejected, FRAMES);
}

#[test]
fn clean_stream_has_no_rejections_in_any_mode() {
    for mode in [BackpressureMode::Block, BackpressureMode::DropOldest, BackpressureMode::Degrade] {
        let config = StreamConfig::blocking().with_backpressure(mode);
        let (capture, task) = run_with(config, 0);
        assert_eq!(capture.injected, 0);
        assert_eq!(capture.rejected, 0, "{mode:?}");
        assert_eq!(task.rejected, 0, "{mode:?}");
        assert!(task.mismatches.is_empty(), "{mode:?}: {:?}", task.mismatches);
        assert_eq!(task.decoded_ok, capture.processed, "{mode:?}");
    }
}

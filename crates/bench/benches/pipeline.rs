//! End-to-end pipeline benches: scene rendering, the sensor + ISP
//! front end, and the full capture chain
//! (render → Bayer → ISP → encode → decode).

use criterion::{criterion_group, criterion_main, Criterion};
use rpr_core::{RegionLabel, RegionList, RhythmicEncoder, SoftwareDecoder};
use rpr_isp::{IspConfig, IspPipeline};
use rpr_sensor::{CameraPose, ImageSensor, SensorConfig, TextureWorld};
use std::time::Duration;

const W: u32 = 320;
const H: u32 = 240;

fn bench_front_end(c: &mut Criterion) {
    let world = TextureWorld::generate(1024, 1024, 7);
    let pose = CameraPose::new(512.0, 512.0, 0.2);
    let sensor = ImageSensor::new(SensorConfig {
        width: W,
        height: H,
        read_noise_sigma: 1.5,
        seed: 3,
    });
    let isp = IspPipeline::new(IspConfig::default());

    let mut group = c.benchmark_group("pipeline/front_end");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    group.bench_function("render_view", |b| {
        b.iter(|| world.render_view(&pose, W, H));
    });
    let scene = world.render_view(&pose, W, H);
    group.bench_function("bayer_capture", |b| {
        b.iter(|| sensor.capture(&scene, 0));
    });
    let raw = sensor.capture(&scene, 0);
    group.bench_function("isp_process", |b| {
        b.iter(|| isp.process(&raw));
    });
    group.finish();
}

fn bench_capture_chain(c: &mut Criterion) {
    let world = TextureWorld::generate(1024, 1024, 7);
    let sensor = ImageSensor::new(SensorConfig {
        width: W,
        height: H,
        read_noise_sigma: 1.5,
        seed: 3,
    });
    let isp = IspPipeline::new(IspConfig::default());
    let regions = RegionList::new_lossy(
        W,
        H,
        (0..60)
            .map(|i| RegionLabel::new((i * 37) % (W - 32), (i * 53) % (H - 32), 28, 28, 1 + i % 3, 1 + i % 2))
            .collect(),
    );

    let mut group = c.benchmark_group("pipeline/end_to_end");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    group.bench_function("sensor_isp_encode_decode", |b| {
        let mut enc = RhythmicEncoder::new(W, H);
        let mut dec = SoftwareDecoder::new(W, H);
        let mut t = 0u64;
        b.iter(|| {
            let pose = CameraPose::new(400.0 + t as f64, 512.0, 0.1);
            let scene = world.render_view(&pose, W, H);
            let raw = sensor.capture(&scene, t);
            let out = isp.process(&raw);
            let encoded = enc.encode(&out.luma, t, &regions);
            t += 1;
            dec.decode(&encoded)
        });
    });
    group.finish();
}

fn bench_h264_baseline(c: &mut Criterion) {
    use rpr_workloads::{H264Model, H264Quality};
    let world = TextureWorld::generate(1024, 1024, 9);
    let frames: Vec<_> = (0..4)
        .map(|t| world.render_view_gray(&CameraPose::new(400.0 + t as f64 * 3.0, 512.0, 0.0), W, H))
        .collect();
    let mut group = c.benchmark_group("pipeline/h264");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    group.bench_function("zero_motion", |b| {
        b.iter(|| {
            let mut codec = H264Model::new(H264Quality::Medium, 10);
            frames.iter().map(|f| codec.encode(f).bits).sum::<u64>()
        });
    });
    group.bench_function("motion_compensated_r8", |b| {
        b.iter(|| {
            let mut codec = H264Model::new(H264Quality::Medium, 10).with_motion_search(8);
            frames.iter().map(|f| codec.encode(f).bits).sum::<u64>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_front_end, bench_capture_chain, bench_h264_baseline);
criterion_main!(benches);

//! Criterion benches for the chunked hot-path kernels, each paired
//! with the scalar reference it is differentially tested against
//! (`kernel_equivalence` suites, TESTING.md). The `kernel_bench`
//! binary produces the committed `BENCH_kernels.json` from the same
//! workloads; this harness is for interactive, statistically rigorous
//! comparison while optimizing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpr_core::kernels;
use rpr_core::{
    BufferPool, EncoderConfig, ReconstructionMode, RegionLabel, RegionList, RhythmicEncoder,
    SoftwareDecoder,
};
use rpr_frame::{GrayFrame, Plane};
use rpr_wire::{crc32, rle};
use std::time::Duration;

const W: u32 = 256;
const H: u32 = 192;
const PIXELS: usize = (W as usize) * (H as usize);

fn textured_frame(seed: u32) -> GrayFrame {
    Plane::from_fn(W, H, |x, y| (x.wrapping_mul(31) ^ y.wrapping_mul(17) ^ seed) as u8)
}

fn regions() -> RegionList {
    RegionList::new_lossy(
        W,
        H,
        vec![
            RegionLabel::new(2, 2, W / 2, H / 2, 1, 1),
            RegionLabel::new(W / 3, H / 3, W / 2, H / 2, 2, 1),
            RegionLabel::new(0, H / 2, W, H / 4, 1, 2),
        ],
    )
}

/// The mask bytes, per-row priorities, and payload of one
/// representatively encoded frame.
fn sample() -> (Vec<u8>, Vec<Vec<u8>>, Vec<u8>) {
    let mut enc = RhythmicEncoder::new(W, H);
    let encoded = enc.encode(&textured_frame(0), 1, &regions());
    let mask = encoded.metadata().mask.as_bytes().to_vec();
    let pris = (0..H)
        .map(|y| (0..W).map(|x| encoded.metadata().mask.get(x, y).priority()).collect())
        .collect();
    (mask, pris, encoded.pixels().to_vec())
}

fn configure(group: &mut criterion::BenchmarkGroup<'_>) {
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
}

fn bench_mask_kernels(c: &mut Criterion) {
    let (mask, pris, _) = sample();
    let frame = textured_frame(0);

    let mut group = c.benchmark_group("kernel/mask_pack");
    configure(&mut group);
    group.throughput(Throughput::Bytes(PIXELS as u64));
    let mut packed = vec![0u8; mask.len()];
    for chunked in [false, true] {
        let name = if chunked { "chunked" } else { "scalar" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &chunked, |b, &chunked| {
            b.iter(|| {
                for (y, pri) in pris.iter().enumerate() {
                    let start = y * W as usize;
                    if chunked {
                        kernels::pack_priority_row(&mut packed, start, pri);
                    } else {
                        kernels::pack_priority_row_scalar(&mut packed, start, pri);
                    }
                }
                criterion::black_box(&packed);
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernel/run_scan");
    configure(&mut group);
    group.throughput(Throughput::Bytes(mask.len() as u64));
    for chunked in [false, true] {
        let name = if chunked { "chunked" } else { "scalar" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &chunked, |b, &chunked| {
            b.iter(|| {
                let mut acc = 0usize;
                if chunked {
                    kernels::for_each_run(&mask, 0, PIXELS, |_, run| acc += run);
                } else {
                    kernels::for_each_run_scalar(&mask, 0, PIXELS, |_, run| acc += run);
                }
                criterion::black_box(acc);
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernel/gather");
    configure(&mut group);
    group.throughput(Throughput::Bytes(PIXELS as u64));
    let mut out = Vec::with_capacity(PIXELS);
    for chunked in [false, true] {
        let name = if chunked { "chunked" } else { "scalar" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &chunked, |b, &chunked| {
            b.iter(|| {
                out.clear();
                for (y, pri) in pris.iter().enumerate() {
                    let src = frame.row(y as u32);
                    if chunked {
                        kernels::gather_regional(pri, src, &mut out);
                    } else {
                        kernels::gather_regional_scalar(pri, src, &mut out);
                    }
                }
                criterion::black_box(out.len());
            });
        });
    }
    group.finish();
}

fn bench_wire_kernels(c: &mut Criterion) {
    let (mask, _, payload) = sample();
    let mut compressed = Vec::new();
    rle::compress(&mask, PIXELS, &mut compressed);

    let mut group = c.benchmark_group("kernel/rle_compress");
    configure(&mut group);
    group.throughput(Throughput::Bytes(mask.len() as u64));
    let mut out = Vec::new();
    for chunked in [false, true] {
        let name = if chunked { "chunked" } else { "scalar" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &chunked, |b, &chunked| {
            b.iter(|| {
                out.clear();
                let n = if chunked {
                    rle::compress(&mask, PIXELS, &mut out)
                } else {
                    rle::compress_scalar(&mask, PIXELS, &mut out)
                };
                criterion::black_box(n);
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernel/rle_inflate");
    configure(&mut group);
    group.throughput(Throughput::Bytes(mask.len() as u64));
    let mut packed = Vec::new();
    for chunked in [false, true] {
        let name = if chunked { "chunked" } else { "scalar" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &chunked, |b, &chunked| {
            b.iter(|| {
                if chunked {
                    rle::inflate_into(&compressed, PIXELS, &mut packed)
                        .expect("own compression inflates");
                    criterion::black_box(packed.len());
                } else {
                    let v =
                        rle::inflate_scalar(&compressed, PIXELS).expect("own compression inflates");
                    criterion::black_box(v.len());
                }
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("kernel/crc32");
    configure(&mut group);
    group.throughput(Throughput::Bytes(payload.len() as u64));
    for chunked in [false, true] {
        let name = if chunked { "chunked" } else { "scalar" };
        group.bench_with_input(BenchmarkId::from_parameter(name), &chunked, |b, &chunked| {
            b.iter(|| {
                let crc = if chunked {
                    crc32::update(0xFFFF_FFFF, &payload)
                } else {
                    crc32::update_scalar(0xFFFF_FFFF, &payload)
                };
                criterion::black_box(crc);
            });
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let regions = regions();
    let frames: Vec<GrayFrame> = (0..4).map(textured_frame).collect();

    let mut group = c.benchmark_group("kernel/pipeline");
    configure(&mut group);
    group.throughput(Throughput::Bytes(PIXELS as u64));

    let pool = BufferPool::new();
    let mut enc = RhythmicEncoder::with_pool(W, H, EncoderConfig::default(), pool.clone());
    let mut dec = SoftwareDecoder::with_pool(W, H, ReconstructionMode::BlockNearest, pool);
    let mut idx = 0u64;
    group.bench_function("pooled_encode_decode", |b| {
        b.iter(|| {
            let frame = &frames[(idx % 4) as usize];
            let e = enc.encode(frame, idx, &regions);
            let out = dec.decode_owned(e);
            dec.recycle_output(out);
            idx += 1;
        });
    });
    group.finish();
}

criterion_group!(kernel_bench, bench_mask_kernels, bench_wire_kernels, bench_pipeline);
criterion_main!(kernel_bench);

//! Runtime/policy overhead benches: planning region labels from
//! hundreds of features, the "OS level" validation + y-sorting the
//! runtime performs, register-file programming, and the multi-ROI
//! k-means clustering — the software costs of the paper's §4.3 runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpr_core::{
    CycleLengthPolicy, Feature, FeaturePolicy, Policy, PolicyContext, RegionList,
    RegionRuntime,
};
use rpr_vision::kmeans;
use std::time::Duration;

const W: u32 = 1920;
const H: u32 = 1080;

fn features(n: usize) -> Vec<Feature> {
    (0..n)
        .map(|i| {
            Feature::new(
                ((i * 131) % (W as usize - 40)) as f64,
                ((i * 197) % (H as usize - 40)) as f64,
                24.0 + (i % 50) as f64,
            )
            .with_octave((i % 4) as u32)
            .with_displacement((i % 8) as f64)
        })
        .collect()
}

fn bench_policy_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy/plan");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for n in [100usize, 500, 1500] {
        let ctx = PolicyContext {
            frame_idx: 3,
            width: W,
            height: H,
            features: features(n),
            detections: vec![],
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &ctx, |b, ctx| {
            let mut policy = CycleLengthPolicy::new(10, FeaturePolicy::new());
            b.iter(|| policy.plan(ctx));
        });
    }
    group.finish();
}

fn bench_runtime_programming(c: &mut Criterion) {
    let mut policy = FeaturePolicy::new();
    let ctx = PolicyContext {
        frame_idx: 1,
        width: W,
        height: H,
        features: features(973), // the paper's SLAM average
        detections: vec![],
    };
    let list: RegionList = policy.plan(&ctx);
    let labels = list.labels().to_vec();

    let mut group = c.benchmark_group("policy/runtime");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    group.bench_function("set_region_labels_973", |b| {
        let mut rt = RegionRuntime::new(W, H);
        b.iter(|| rt.set_region_labels(labels.clone()).unwrap());
    });
    group.bench_function("validate_sort_973", |b| {
        b.iter(|| RegionList::new_lossy(W, H, labels.clone()));
    });
    group.finish();
}

fn bench_multiroi_clustering(c: &mut Criterion) {
    let pts: Vec<(f64, f64)> = features(973).iter().map(|f| (f.x, f.y)).collect();
    let mut group = c.benchmark_group("policy/kmeans");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    group.bench_function("cluster_973_into_16", |b| {
        b.iter(|| kmeans(&pts, 16, 20, 7));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policy_planning,
    bench_runtime_programming,
    bench_multiroi_clustering
);
criterion_main!(benches);

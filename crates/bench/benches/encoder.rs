//! Encoder performance benches: throughput versus region count for the
//! hybrid (shortlisting) engine, the run-length-reuse ablation, and the
//! streaming-vs-batch interface — the software counterpart of the
//! paper's Table 5 / §6.3 scalability story.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpr_core::{
    EncoderConfig, EngineKind, RegionLabel, RegionList, RhythmicEncoder, StreamingEncoder,
};
use rpr_frame::{GrayFrame, Plane};
use std::time::Duration;

const W: u32 = 640;
const H: u32 = 480;

fn frame() -> GrayFrame {
    Plane::from_fn(W, H, |x, y| (x.wrapping_mul(31) ^ y.wrapping_mul(17)) as u8)
}

fn scattered_regions(n: u32) -> RegionList {
    let labels: Vec<RegionLabel> = (0..n)
        .map(|i| {
            let x = (i.wrapping_mul(97)) % (W - 32);
            let y = (i.wrapping_mul(61)) % (H - 32);
            RegionLabel::new(x, y, 24 + i % 16, 24 + i % 12, 1 + i % 4, 1 + i % 3)
        })
        .collect();
    RegionList::new_lossy(W, H, labels)
}

fn bench_region_scaling(c: &mut Criterion) {
    let frame = frame();
    let mut group = c.benchmark_group("encoder/region_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
        .throughput(Throughput::Elements(u64::from(W) * u64::from(H)));
    for n in [10u32, 100, 400, 1600] {
        let regions = scattered_regions(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &regions, |b, regions| {
            let mut enc = RhythmicEncoder::new(W, H);
            b.iter(|| enc.encode(&frame, 1, regions));
        });
    }
    group.finish();
}

fn bench_run_length_ablation(c: &mut Criterion) {
    let frame = frame();
    let regions = scattered_regions(400);
    let mut group = c.benchmark_group("encoder/run_length_reuse");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for (name, reuse) in [("with_reuse", true), ("without_reuse", false)] {
        let config = EncoderConfig { engine: EngineKind::Hybrid, run_length_reuse: reuse };
        group.bench_function(name, |b| {
            let mut enc = RhythmicEncoder::with_config(W, H, config);
            b.iter(|| enc.encode(&frame, 1, &regions));
        });
    }
    group.finish();
}

fn bench_streaming_interface(c: &mut Criterion) {
    let frame = frame();
    let regions = scattered_regions(100);
    let mut group = c.benchmark_group("encoder/interface");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    group.bench_function("batch", |b| {
        let mut enc = RhythmicEncoder::new(W, H);
        b.iter(|| enc.encode(&frame, 1, &regions));
    });
    group.bench_function("streaming_per_pixel", |b| {
        b.iter(|| {
            let mut enc = StreamingEncoder::begin(W, H, 1, regions.clone());
            for &px in frame.as_slice() {
                enc.push(px);
            }
            enc.finish()
        });
    });
    group.finish();
}

fn bench_full_frame(c: &mut Criterion) {
    let frame = frame();
    let full = RegionList::full_frame(W, H);
    let mut group = c.benchmark_group("encoder/full_frame");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
        .throughput(Throughput::Bytes(u64::from(W) * u64::from(H)));
    group.bench_function("vga", |b| {
        let mut enc = RhythmicEncoder::new(W, H);
        b.iter(|| enc.encode(&frame, 0, &full));
    });
    group.finish();
}

fn bench_tracing_overhead(c: &mut Criterion) {
    let frame = frame();
    let regions = scattered_regions(100);
    let mut group = c.benchmark_group("encoder/tracing_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700))
        .throughput(Throughput::Elements(u64::from(W) * u64::from(H)));
    rpr_trace::disable();
    group.bench_function("disabled", |b| {
        let mut enc = RhythmicEncoder::new(W, H);
        b.iter(|| enc.encode(&frame, 1, &regions));
    });
    rpr_trace::enable();
    group.bench_function("enabled", |b| {
        let mut enc = RhythmicEncoder::new(W, H);
        b.iter(|| {
            let out = enc.encode(&frame, 1, &regions);
            rpr_trace::drain();
            out
        });
    });
    rpr_trace::disable();
    rpr_trace::drain();
    group.finish();
}

criterion_group!(
    benches,
    bench_region_scaling,
    bench_run_length_ablation,
    bench_streaming_interface,
    bench_full_frame,
    bench_tracing_overhead
);
criterion_main!(benches);

//! Vision-stack kernel benches: the per-frame costs behind the three
//! workloads (FAST detection, full ORB, descriptor matching, RANSAC
//! motion estimation, blob detection).

use criterion::{criterion_group, criterion_main, Criterion};
use rpr_frame::Plane;
use rpr_sensor::{CameraPose, TextureWorld};
use rpr_vision::{
    detect_blobs, detect_fast, estimate_rigid_motion, match_descriptors, FastConfig,
    OrbDetector,
};
use std::time::Duration;

const W: u32 = 320;
const H: u32 = 240;

fn bench_kernels(c: &mut Criterion) {
    let world = TextureWorld::generate(1024, 1024, 5);
    let frame_a = world.render_view_gray(&CameraPose::new(500.0, 500.0, 0.0), W, H);
    let frame_b = world.render_view_gray(&CameraPose::new(504.0, 502.0, 0.01), W, H);

    let mut group = c.benchmark_group("vision");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));

    group.bench_function("fast_detect", |b| {
        b.iter(|| detect_fast(&frame_a, &FastConfig::default()));
    });

    let orb = OrbDetector::default();
    group.bench_function("orb_detect", |b| {
        b.iter(|| orb.detect(&frame_a));
    });

    let feats_a = orb.detect(&frame_a);
    let feats_b = orb.detect(&frame_b);
    group.bench_function("match_descriptors", |b| {
        b.iter(|| match_descriptors(&feats_a, &feats_b, 64, 0.8));
    });

    let matches = match_descriptors(&feats_a, &feats_b, 64, 0.8);
    let pairs: Vec<((f64, f64), (f64, f64))> = matches
        .iter()
        .map(|m| {
            let p = feats_a[m.query].keypoint;
            let q = feats_b[m.train].keypoint;
            ((p.x, p.y), (q.x, q.y))
        })
        .collect();
    group.bench_function("ransac_rigid", |b| {
        b.iter(|| estimate_rigid_motion(&pairs, 150, 2.0, 9));
    });

    let blob_frame = Plane::from_fn(W, H, |x, y| {
        if (x / 40 + y / 40) % 3 == 0 {
            220
        } else {
            40
        }
    });
    group.bench_function("blob_detect", |b| {
        b.iter(|| detect_blobs(&blob_frame, 128, 16));
    });

    group.bench_function("block_motion_16px_r8", |b| {
        b.iter(|| rpr_vision::estimate_block_motion(&frame_a, &frame_b, 16, 8));
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

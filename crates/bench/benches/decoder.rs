//! Decoder performance benches: full-frame software decode versus the
//! regional-pixel fraction (the paper's §6.3 claim that the software
//! decoder "linearly scales in time to the amount of regional pixels"),
//! random-access reads through the PMMU, and the reconstruction-mode
//! comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rpr_core::{
    PixelMmu, PixelRequest, ReconstructionMode, RegionLabel, RegionList, RhythmicEncoder,
    SoftwareDecoder,
};
use rpr_frame::{GrayFrame, Plane};
use std::time::Duration;

const W: u32 = 640;
const H: u32 = 480;

fn frame() -> GrayFrame {
    Plane::from_fn(W, H, |x, y| (x ^ y) as u8)
}

/// A region list covering roughly `percent` % of the frame at full
/// resolution.
fn coverage_regions(percent: u32) -> RegionList {
    let rows = H * percent / 100;
    RegionList::new_lossy(W, H, vec![RegionLabel::new(0, 0, W, rows.max(1), 1, 1)])
}

fn bench_decode_scaling(c: &mut Criterion) {
    let frame = frame();
    let mut group = c.benchmark_group("decoder/regional_fraction");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for percent in [10u32, 30, 60, 100] {
        let mut enc = RhythmicEncoder::new(W, H);
        let encoded = enc.encode(&frame, 0, &coverage_regions(percent));
        group.bench_with_input(
            BenchmarkId::from_parameter(percent),
            &encoded,
            |b, encoded| {
                let mut dec = SoftwareDecoder::new(W, H);
                b.iter(|| dec.decode(encoded));
            },
        );
    }
    group.finish();
}

fn bench_reconstruction_modes(c: &mut Criterion) {
    let frame = frame();
    let regions = RegionList::new_lossy(W, H, vec![RegionLabel::new(0, 0, W, H, 2, 1)]);
    let mut enc = RhythmicEncoder::new(W, H);
    let encoded = enc.encode(&frame, 0, &regions);
    let mut group = c.benchmark_group("decoder/reconstruction_mode");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    for (name, mode) in [
        ("block_nearest", ReconstructionMode::BlockNearest),
        ("fifo_replicate", ReconstructionMode::FifoReplicate),
    ] {
        group.bench_function(name, |b| {
            let mut dec = SoftwareDecoder::with_mode(W, H, mode);
            b.iter(|| dec.decode(&encoded));
        });
    }
    group.finish();
}

fn bench_random_access(c: &mut Criterion) {
    let frame = frame();
    let mut enc = RhythmicEncoder::new(W, H);
    let encoded = enc.encode(&frame, 0, &coverage_regions(50));
    let mut dec = SoftwareDecoder::new(W, H);
    dec.decode(&encoded);
    let mut group = c.benchmark_group("decoder/pmmu");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
    group.bench_function("single_pixel", |b| {
        let mut mmu = PixelMmu::new(W, H);
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 97) % (W * H);
            dec.read_pixel(&mut mmu, i % W, i / W).unwrap()
        });
    });
    group.bench_function("row_burst_translate", |b| {
        let mut mmu = PixelMmu::new(W, H);
        let mut y = 0u32;
        b.iter(|| {
            y = (y + 7) % H;
            mmu.analyze(dec.history(), PixelRequest::row(y, W)).unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_scaling,
    bench_reconstruction_modes,
    bench_random_access
);
criterion_main!(benches);

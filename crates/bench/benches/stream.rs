//! Staged-executor benches: single-stream overhead vs the synchronous
//! pipeline, and multi-camera scaling 1 → 8 streams on the shared
//! worker pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpr_stream::{StreamConfig, StreamManager};
use rpr_workloads::tasks::run_pose_with;
use rpr_workloads::{pose_spec, run_pose_staged, Baseline, PipelineConfig, PoseDataset};
use std::time::Duration;

const W: u32 = 160;
const H: u32 = 120;
const FRAMES: usize = 12;

fn cfg() -> PipelineConfig {
    PipelineConfig::new(W, H, Baseline::Rp { cycle_length: 5 })
}

fn bench_single_stream(c: &mut Criterion) {
    let ds = PoseDataset::new(W, H, FRAMES, 7000);
    let mut group = c.benchmark_group("stream/single");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
        .throughput(Throughput::Elements(FRAMES as u64));
    group.bench_function("synchronous", |b| {
        b.iter(|| run_pose_with(&ds, cfg()));
    });
    group.bench_function("staged", |b| {
        b.iter(|| run_pose_staged(&ds, cfg(), StreamConfig::blocking()));
    });
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream/scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200));
    for streams in [1usize, 2, 4, 8] {
        let datasets: Vec<PoseDataset> =
            (0..streams).map(|i| PoseDataset::new(W, H, FRAMES, 7000 + i as u64)).collect();
        group.throughput(Throughput::Elements((FRAMES * streams) as u64));
        group.bench_with_input(
            BenchmarkId::new("pool", streams),
            &datasets,
            |b, datasets| {
                b.iter(|| {
                    let specs = datasets
                        .iter()
                        .map(|ds| pose_spec(ds, cfg(), StreamConfig::blocking()))
                        .collect();
                    StreamManager::default().run_all(specs)
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sequential", streams),
            &datasets,
            |b, datasets| {
                b.iter(|| {
                    for ds in datasets {
                        criterion::black_box(run_pose_with(ds, cfg()));
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_single_stream, bench_scaling);
criterion_main!(benches);

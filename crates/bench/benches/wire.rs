//! Wire-format benches: frame-blob serialize/parse under each mask
//! codec, whole-container write/read round-trips, and the zero-copy
//! view path against the owned-decode path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rpr_core::{EncodedFrame, RhythmicEncoder};
use rpr_testkit::{gen_capture_sequence, TestRng};
use rpr_wire::{encode_frame, read_all, write_container, ContainerReader, MaskCodec};
use std::time::Duration;

const W: u32 = 160;
const H: u32 = 120;
const FRAMES: usize = 8;

fn sample_frames() -> Vec<EncodedFrame> {
    let mut rng = TestRng::new(0x3152_2021);
    let seq = gen_capture_sequence(&mut rng, W, H, FRAMES);
    let mut encoder = RhythmicEncoder::new(W, H);
    seq.frames
        .iter()
        .zip(&seq.regions)
        .enumerate()
        .map(|(idx, (frame, regions))| encoder.encode(frame, idx as u64, regions))
        .collect()
}

fn bench_wire_roundtrip(c: &mut Criterion) {
    let frames = sample_frames();
    let container = write_container(&frames).expect("fresh frames serialize");

    let mut group = c.benchmark_group("wire_roundtrip");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900))
        .throughput(Throughput::Elements(FRAMES as u64));

    for (codec, name) in [(MaskCodec::Auto, "auto"), (MaskCodec::Raw, "raw"), (MaskCodec::Rle, "rle")]
    {
        group.bench_with_input(BenchmarkId::new("encode_blob", name), &codec, |b, &codec| {
            let mut blob = Vec::new();
            b.iter(|| {
                for f in &frames {
                    blob.clear();
                    encode_frame(f, codec, &mut blob).expect("valid frame");
                    criterion::black_box(blob.len());
                }
            });
        });
    }

    group.bench_function("container_write", |b| {
        b.iter(|| write_container(criterion::black_box(&frames)).expect("serialize"));
    });
    group.bench_function("container_read_owned", |b| {
        b.iter(|| read_all(criterion::black_box(&container)).expect("parse"));
    });
    group.bench_function("container_view_zero_copy", |b| {
        b.iter(|| {
            let reader = ContainerReader::open(&container).expect("open");
            let mut payload_bytes = 0usize;
            for i in 0..reader.len() {
                payload_bytes += reader.view(i).expect("view").payload().len();
            }
            criterion::black_box(payload_bytes)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_wire_roundtrip);
criterion_main!(benches);

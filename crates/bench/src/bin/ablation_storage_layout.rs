//! Ablation: raster-packed encoded frames vs per-region grouped
//! storage (the multi-ROI memory layout the paper argues against in
//! §3.2: grouped storage "creates unfavorable random access patterns
//! into DRAM" and duplicates overlapping pixels, while raster packing
//! "retains sequential write patterns").
//!
//! Both layouts store the same captured content from a real SLAM
//! region schedule; the burst-level DRAM model counts the writes.

use rpr_bench::{print_table, Scale};
use rpr_core::{CycleLengthPolicy, Feature, FeaturePolicy, Policy, PolicyContext, RhythmicEncoder};
use rpr_memsim::{DmaWriter, DramConfig, DramModel};
use rpr_workloads::datasets::VideoDataset;
use rpr_vision::OrbDetector;

fn main() {
    let scale = Scale::from_env();
    let ds = scale.slam(0);
    let (w, h) = (ds.width(), ds.height());

    // Real feature-derived regions from frame 0.
    let frame = ds.frame(0);
    let features: Vec<Feature> = OrbDetector::default()
        .detect(&frame)
        .iter()
        .map(|f| Feature {
            x: f.keypoint.x,
            y: f.keypoint.y,
            size: f.keypoint.size,
            octave: f.keypoint.octave,
            // Fast features → skip 1, so every region samples on the
            // frame we encode (the layouts must store identical content).
            displacement: 8.0,
        })
        .collect();
    let mut policy = CycleLengthPolicy::new(10, FeaturePolicy::new());
    let regions = policy.plan(&PolicyContext {
        frame_idx: 3,
        width: w,
        height: h,
        features,
        detections: vec![],
    });
    let mut encoder = RhythmicEncoder::new(w, h);
    let encoded = encoder.encode(&ds.frame(3), 3, &regions);

    // Layout A: raster-packed via line-buffered DMA (the paper's design).
    let mut packed = DmaWriter::new(DramConfig::default(), 0x1000_0000);
    for y in 0..h {
        let span = encoded.metadata().row_offsets.row_span(y);
        packed.push(span.len() as u64);
        packed.end_line();
    }
    let packed_stats = *packed.dram_stats();

    // Layout B: per-region grouped — each region's pixels written as an
    // independently-addressed chunk (overlaps duplicated), regions
    // scattered across the framebuffer heap.
    let mut grouped = DramModel::new(DramConfig::default());
    let chunks: Vec<(u64, u64)> = regions
        .iter()
        .enumerate()
        .map(|(i, r)| (0x2000_0000 + i as u64 * 1_048_576, r.kept_pixels()))
        .collect();
    grouped.write_scattered(&chunks);
    let grouped_stats = *grouped.stats();

    print_table(
        &format!(
            "Ablation — encoded-frame storage layout ({} regions, {}x{} frame)",
            regions.len(),
            w,
            h
        ),
        &["layout", "bytes written", "write bursts", "row activations", "burst efficiency"],
        &[
            vec![
                "raster-packed (paper)".into(),
                packed_stats.bytes_written.to_string(),
                packed_stats.write_bursts.to_string(),
                packed_stats.row_activations.to_string(),
                format!(
                    "{:.2}",
                    packed_stats.bytes_written as f64
                        / (packed_stats.write_bursts * 64).max(1) as f64
                ),
            ],
            vec![
                "per-region grouped (multi-ROI style)".into(),
                grouped_stats.bytes_written.to_string(),
                grouped_stats.write_bursts.to_string(),
                grouped_stats.row_activations.to_string(),
                format!(
                    "{:.2}",
                    grouped_stats.bytes_written as f64
                        / (grouped_stats.write_bursts * 64).max(1) as f64
                ),
            ],
        ],
    );
    println!(
        "\nduplicated overlap bytes in grouped layout: {} ({:+.0}% vs packed)",
        grouped_stats.bytes_written as i64 - packed_stats.bytes_written as i64,
        (grouped_stats.bytes_written as f64 / packed_stats.bytes_written.max(1) as f64 - 1.0)
            * 100.0
    );
    println!(
        "row activations: grouped pays {:.1}x the packed layout's — the paper's\n\
         'unfavorable random access patterns into DRAM' made measurable.",
        grouped_stats.row_activations as f64 / packed_stats.row_activations.max(1) as f64
    );
}

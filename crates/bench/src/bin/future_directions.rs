//! Quantifies the paper's §7 future directions on the reproduced
//! system:
//!
//! 1. **DRAM-less computing** — how much of the encoded-frame stream
//!    fits in on-chip SRAM, per budget;
//! 2. **Rhythmic pixel camera** — CSI interface traffic/energy saved by
//!    moving the encoder into the camera module;
//! 3. **Region-selection policies** — Kalman-predictive and
//!    motion-adaptive cycle policies vs the paper's example policy.

use rpr_bench::{print_table, Scale};
use rpr_memsim::{
    in_sensor_saving_mj, placement_energy_mj, placement_traffic, DramlessAnalysis,
    EncoderPlacement, EnergyModel,
};
use rpr_sensor::CsiLink;
use rpr_workloads::datasets::VideoDataset;
use rpr_workloads::tasks::{run_face, run_face_with, run_slam};
use rpr_workloads::{Baseline, PipelineConfig, PolicyKind};

fn main() {
    let scale = Scale::from_env();

    // ---- 1. DRAM-less computing --------------------------------------
    let ds = scale.slam(0);
    let rp10 = run_slam(&ds, Baseline::Rp { cycle_length: 10 });
    let frame_px = u64::from(ds.width()) * u64::from(ds.height());
    // Per-frame buffer bytes (RGB payload + metadata) from the captured
    // fractions.
    let meta_bytes = frame_px / 4 + u64::from(ds.height()) * 4;
    let frame_bytes: Vec<u64> = rp10
        .measurements
        .captured_fractions
        .iter()
        .map(|f| (f * frame_px as f64 * 3.0) as u64 + meta_bytes)
        .collect();
    let analysis = DramlessAnalysis::new(&frame_bytes);
    let full_frame_bytes = frame_px * 3;
    let mut rows = Vec::new();
    for pct in [10u64, 25, 50, 100] {
        let budget = full_frame_bytes * pct / 100;
        let r = analysis.evaluate(budget);
        rows.push(vec![
            format!("{pct}% of a frame ({} KB)", budget / 1024),
            format!("{:.0}%", r.fit_fraction * 100.0),
            format!("{:.0}%", r.traffic_avoided_fraction() * 100.0),
        ]);
    }
    print_table(
        "§7.1 DRAM-less computing — SRAM budget sweep (RP10 V-SLAM stream)",
        &["SRAM budget", "frames fitting on-chip", "DRAM traffic avoided"],
        &rows,
    );
    if let Some(b) = analysis.budget_for_fit_fraction(0.9) {
        println!(
            "smallest budget keeping 90% of frames on-chip: {} KB ({:.0}% of a full frame)",
            b / 1024,
            b as f64 / full_frame_bytes as f64 * 100.0
        );
    }

    // ---- 2. Rhythmic pixel camera (encoder placement) -----------------
    let keep = rp10.measurements.mean_captured_fraction();
    let px_4k: u64 = 3840 * 2160;
    let kept_px = (px_4k as f64 * keep) as u64;
    let meta_px = px_4k / 12;
    let model = EnergyModel::paper_defaults();
    let post = placement_traffic(EncoderPlacement::PostIsp, px_4k, kept_px, meta_px);
    let in_s = placement_traffic(EncoderPlacement::InSensor, px_4k, kept_px, meta_px);
    let link = CsiLink::default();
    print_table(
        "§7.2 Rhythmic pixel camera — encoder placement at 4K (measured keep fraction)",
        &["placement", "CSI px/frame", "DDR write px/frame", "interface energy mJ/frame"],
        &[
            vec![
                "post-ISP (paper impl.)".into(),
                post.csi_px.to_string(),
                post.ddr_write_px.to_string(),
                format!("{:.1}", placement_energy_mj(&model, &post)),
            ],
            vec![
                "in-sensor (§7)".into(),
                in_s.csi_px.to_string(),
                in_s.ddr_write_px.to_string(),
                format!("{:.1}", placement_energy_mj(&model, &in_s)),
            ],
        ],
    );
    println!(
        "in-sensor encoding saves {:.1} mJ/frame of CSI energy ({:.0} mW at 30 fps)\n\
         and lifts the link's 4K headroom from {:.0} to {:.0} fps (RAW8).",
        in_sensor_saving_mj(&model, px_4k, kept_px, meta_px),
        in_sensor_saving_mj(&model, px_4k, kept_px, meta_px) * 30.0,
        link.max_fps(3840, 2160, 1),
        link.max_fps(3840, 2160, 1) / keep.clamp(1e-6, 1.0),
    );

    // ---- 3. Policy zoo -------------------------------------------------
    let face_ds = scale.face(0);
    let mut rows = Vec::new();
    for (name, kind) in [
        ("cycle+feature (paper)", PolicyKind::CycleFeature),
        ("cycle+Kalman", PolicyKind::CycleKalman),
        ("cycle+motion-vectors", PolicyKind::CycleMotion),
        ("adaptive cycle 5..20", PolicyKind::AdaptiveCycle { min_cycle: 5, max_cycle: 20 }),
    ] {
        let cfg = PipelineConfig::new(
            face_ds.width(),
            face_ds.height(),
            Baseline::Rp { cycle_length: 10 },
        )
        .with_policy(kind);
        let out = run_face_with(&face_ds, cfg);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", out.map * 100.0),
            format!("{:.2}", out.measurements.traffic.throughput_mb_s),
            format!("{:.0}%", out.measurements.mean_captured_fraction() * 100.0),
        ]);
    }
    // FCH anchor row for context.
    let fch = run_face(&face_ds, Baseline::Fch);
    rows.push(vec![
        "FCH (anchor)".into(),
        format!("{:.1}", fch.map * 100.0),
        format!("{:.2}", fch.measurements.traffic.throughput_mb_s),
        "100%".into(),
    ]);
    print_table(
        "§7.3 Region-selection policies — face workload",
        &["policy", "mAP (%)", "traffic MB/s", "px captured"],
        &rows,
    );
}

//! `load_gen` — multi-tenant ingestion load generator for `rpr-serve`.
//!
//! Simulates fleets of bursty camera clients streaming `.rpr`
//! containers at one event-loop server over the in-memory transport,
//! and reports the serving metrics that matter at fleet scale:
//! sessions/s, ingest MB/s, accept→deliver latency percentiles, and
//! per-tenant drop rates under overload.
//!
//! ```text
//! load_gen smoke     [--clients N] [--out FILE]
//! load_gen bench     [--clients N] [--frames N] [--out FILE]
//! load_gen overload  [--clients N] [--out FILE]
//! load_gen telemetry [--clients N] [--out FILE]
//! load_gen breach    [--clients N] [--out FILE]
//! ```
//!
//! `smoke` is the CI gate: a fixed 64-client, two-tenant schedule on a
//! [`ManualClock`], so two runs produce byte-identical `RunReport`s —
//! diffable against `ci/baseline_serve_smoke.json` with `rpr-report
//! diff`. `bench` runs ≥1k concurrent clients on the wall clock and
//! writes `BENCH_serve.json` (together with the `overload` scenario,
//! which pits a quota-busting tenant against a compliant one and
//! checks the hog throttles itself).
//!
//! `telemetry` is the live-observability gate: the same deterministic
//! fleet with per-tenant SLOs, scraped by a [`ScrapeClient`]
//! *mid-flight* — the Prometheus page must show non-zero per-tenant
//! counters that never exceed final accounting — and emitting a
//! `RunReport` with an `slos` section diffable against
//! `ci/baseline_telemetry.json`. `breach` is its self-check: the same
//! schedule with one tenant's quota zeroed so its SLO burn rate
//! breaches, which must fire the flight recorder (a valid Chrome trace
//! dump) and move `slo.*.breaches` in the report — a non-zero
//! `rpr-report diff` CI asserts on.

use rpr_core::{EncMask, EncodedFrame, FrameMetadata, PixelStatus};
use rpr_serve::{
    session_script, Clock, ManualClock, ScrapeClient, ScriptedClient, Server, SloConfig,
    SystemClock, TenantConfig,
};
use rpr_stream::BackpressureMode;
use rpr_trace::{RunReport, REPORT_SCHEMA_VERSION};
use std::collections::BTreeMap;
use std::sync::Arc;

fn frames(n: u64, salt: u64, payload_len: usize) -> Vec<EncodedFrame> {
    // One payload byte per Regional pixel: size the mask to the payload.
    let len = payload_len.max(1) as u32;
    let width = 64u32;
    let height = len.div_ceil(width);
    (0..n)
        .map(|i| {
            let mut mask = EncMask::new(width, height);
            for idx in 0..len {
                mask.set(idx % width, idx / width, PixelStatus::Regional);
            }
            let payload = vec![(i + salt) as u8; len as usize];
            EncodedFrame::new(width, height, i, payload, FrameMetadata::from_mask(mask))
        })
        .collect()
}

/// One planned camera session: which tenant it bills to and at which
/// step of the drive loop it connects (burst waves).
struct Plan {
    tenant: String,
    start_step: u64,
    script: Vec<u8>,
}

/// Everything one drive run produced.
struct LoadOutcome {
    steps: u64,
    wall_s: f64,
    peak_open_sessions: usize,
    delivered: u64,
    latencies_us: Vec<u64>,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// Drives `plans` against `server` until everything drains. Clients
/// connect at their planned step (bursts), flush under transport
/// backpressure, and every tenant queue is drained each step, with
/// accept→pop latency read off the server's own clock.
fn drive(
    server: &mut Server,
    clock: &Arc<dyn Clock>,
    manual: Option<(&ManualClock, u64)>,
    mut plans: Vec<Plan>,
    ring: usize,
) -> LoadOutcome {
    plans.sort_by_key(|p| p.start_step);
    let listener = server.listener();
    let tenants: Vec<String> = {
        let mut t: Vec<String> = plans.iter().map(|p| p.tenant.clone()).collect();
        t.sort();
        t.dedup();
        t
    };
    let queues: Vec<_> = tenants
        .iter()
        .map(|t| server.tenant_queue(t).expect("tenant registered"))
        .collect();

    let started = std::time::Instant::now();
    let mut active: Vec<ScriptedClient> = Vec::new();
    let mut next_plan = 0usize;
    let mut outcome = LoadOutcome {
        steps: 0,
        wall_s: 0.0,
        peak_open_sessions: 0,
        delivered: 0,
        latencies_us: Vec::new(),
    };

    for step in 0..50_000_000u64 {
        outcome.steps = step + 1;
        while next_plan < plans.len() && plans[next_plan].start_step <= step {
            let plan = &plans[next_plan];
            active.push(ScriptedClient::connect(&listener, ring, plan.script.clone()));
            next_plan += 1;
        }
        for c in active.iter_mut() {
            c.flush();
        }
        server.step();
        outcome.peak_open_sessions = outcome.peak_open_sessions.max(server.open_sessions());
        let now = clock.now_micros();
        for q in &queues {
            while let Some(d) = q.try_pop() {
                outcome.delivered += 1;
                outcome.latencies_us.push(now.saturating_sub(d.accepted_micros));
            }
        }
        if let Some((m, advance)) = manual {
            m.advance(advance);
        }
        if next_plan >= plans.len()
            && server.is_idle()
            && active.iter_mut().all(|c| c.done() || c.rejected())
        {
            break;
        }
    }
    server.close_tenant_queues();
    outcome.wall_s = started.elapsed().as_secs_f64();
    outcome.latencies_us.sort_unstable();
    outcome
}

/// Burst-wave plans: `clients` cameras split round-robin over
/// `tenants`, connecting in waves of `wave_size` every `wave_gap`
/// steps, each streaming `n_frames` frames of `payload_len` bytes.
fn make_plans(
    clients: u64,
    tenants: &[&str],
    n_frames: u64,
    payload_len: usize,
    chunk: usize,
    wave_size: u64,
    wave_gap: u64,
) -> Vec<Plan> {
    (0..clients)
        .map(|i| {
            let tenant = tenants[(i % tenants.len() as u64) as usize].to_string();
            let body = rpr_wire::write_container(&frames(n_frames, i, payload_len))
                .expect("container writes");
            let script = session_script(&tenant, i, &body, chunk, true);
            Plan { tenant, start_step: (i / wave_size.max(1)) * wave_gap, script }
        })
        .collect()
}

fn write_or_print(out: &Option<String>, text: &str) {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, text.to_string() + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("wrote {path}");
        }
        None => println!("{text}"),
    }
}

/// The deterministic CI gate: 64 clients, two tenants (one of them
/// frame-quota-limited so the throttle path is always exercised), a
/// manual clock — emits a `RunReport` stable across runs and machines.
fn smoke(clients: u64, out: Option<String>) {
    let manual = ManualClock::new();
    let clock: Arc<dyn Clock> = Arc::new(manual.clone());
    let mut server = Server::new(Arc::clone(&clock)).with_read_quantum(4096);
    server.add_tenant(
        "fleet-a",
        TenantConfig::unlimited().with_qos(BackpressureMode::Block, 64),
    );
    // fleet-b gets a hard frame budget: its cameras collectively send
    // more than the bucket holds, so quota throttling is part of the
    // gated baseline, not an untested path.
    server.add_tenant(
        "fleet-b",
        TenantConfig::unlimited()
            .with_frame_quota(0, 3 * clients / 2)
            .with_qos(BackpressureMode::Block, 64),
    );

    let plans = make_plans(clients, &["fleet-a", "fleet-b"], 6, 24, 256, 8, 3);
    let outcome = drive(&mut server, &clock, Some((&manual, 200)), plans, 1 << 14);

    let sections = server.tenant_sections();
    let stats = server.stats();
    let accepted: u64 = sections.iter().map(|s| s.frames_accepted).sum();
    let delivered: u64 = sections.iter().map(|s| s.frames_delivered).sum();

    let mut accuracy = BTreeMap::new();
    accuracy.insert("sessions_admitted".to_string(), stats.sessions_clean as f64);
    accuracy.insert("frames_delivered".to_string(), delivered as f64);
    accuracy.insert(
        "delivered_fraction".to_string(),
        if accepted == 0 { 1.0 } else { delivered as f64 / accepted as f64 },
    );

    let report = RunReport {
        schema_version: REPORT_SCHEMA_VERSION,
        task: "serve_smoke".to_string(),
        dataset: format!("{clients} cameras x 6 frames, 2 tenants"),
        baseline: "serve".to_string(),
        frames: delivered,
        fps: 0.0,
        accuracy,
        tenants: sections,
        ..RunReport::default()
    };
    print!("{}", report.render_text());
    println!(
        "smoke: {} steps  {} delivered  peak {} open sessions",
        outcome.steps, outcome.delivered, outcome.peak_open_sessions
    );
    if let Some(path) = out {
        let text = serde_json::to_string_pretty(&report).expect("report serializes");
        write_or_print(&Some(path), &text);
    }
}

/// Pulls `family{tenant="..."}` off a Prometheus exposition page.
fn scraped_counter(page: &str, family: &str, tenant: &str) -> Option<u64> {
    let prefix = format!("{family}{{tenant=\"{tenant}\"}} ");
    page.lines().find_map(|l| l.strip_prefix(prefix.as_str())).and_then(|v| v.parse().ok())
}

/// The shared deterministic telemetry fleet: two SLO-tracked tenants on
/// a manual clock, `fleet-b` under a frame quota (`fleet_b_burst`
/// frames). Drives to drain with a mid-flight scrape, records every
/// popped delivery into the tenant's live histogram/SLO tracker, and
/// returns the scraped page plus the periodic live-report count.
fn drive_telemetry(
    server: &mut Server,
    manual: &ManualClock,
    clock: &Arc<dyn Clock>,
    plans: Vec<Plan>,
    tenants: &[&str],
) -> (Option<String>, u64, u64) {
    let listener = server.listener();
    let queues: Vec<_> = tenants
        .iter()
        .map(|t| server.tenant_queue(t).expect("tenant registered"))
        .collect();
    let lives: Vec<_> = tenants
        .iter()
        .map(|t| server.tenant_live(t).expect("tenant live handle"))
        .collect();

    let mut plans = plans;
    plans.sort_by_key(|p| p.start_step);
    let mut active: Vec<ScriptedClient> = Vec::new();
    let mut next_plan = 0usize;
    let mut delivered = 0u64;
    let mut scraper: Option<ScrapeClient> = None;
    let mut page: Option<String> = None;
    let mut live_reports = 0u64;

    for step in 0..50_000_000u64 {
        while next_plan < plans.len() && plans[next_plan].start_step <= step {
            active.push(ScriptedClient::connect(&listener, 1 << 14, plans[next_plan].script.clone()));
            next_plan += 1;
        }
        for c in active.iter_mut() {
            c.flush();
        }
        server.step();
        let now = clock.now_micros();
        for (q, live) in queues.iter().zip(&lives) {
            while let Some(d) = q.try_pop() {
                delivered += 1;
                live.record_delivery(now, now.saturating_sub(d.ctx.ingest_micros));
            }
        }
        if server.poll_report().is_some() {
            live_reports += 1;
        }
        // Scrape mid-flight, deterministically: the step after the
        // first delivery, while sessions are still streaming.
        if scraper.is_none() && delivered > 0 {
            scraper = Some(ScrapeClient::connect(&listener, 1 << 16, tenants[0], u64::MAX));
        }
        if let Some(s) = scraper.as_mut() {
            if page.is_none() {
                page = s.poll().map(str::to_string);
            }
        }
        manual.advance(200);
        if next_plan >= plans.len()
            && server.is_idle()
            && page.is_some()
            && active.iter_mut().all(|c| c.done() || c.rejected())
        {
            break;
        }
    }
    server.close_tenant_queues();
    (page, delivered, live_reports)
}

/// Builds the telemetry fleet's server + plans. `fleet_b_burst` is the
/// frame-quota burst for `fleet-b` (zero = the breach scenario).
fn telemetry_fleet(clients: u64, fleet_b_burst: u64) -> (ManualClock, Arc<dyn Clock>, Server, Vec<Plan>) {
    let manual = ManualClock::new();
    let clock: Arc<dyn Clock> = Arc::new(manual.clone());
    let mut server = Server::new(Arc::clone(&clock))
        .with_read_quantum(4096)
        .with_report_interval(1_000);
    // A budget wide enough that quota throttling burns budget visibly
    // without breaching in the healthy run; the breach run (burst 0)
    // turns every fleet-b frame into a bad event and blows through it.
    let slo = SloConfig {
        target_delivery_us: 10_000,
        budget_fraction: 0.75,
        window_micros: 1_000_000,
        min_events: 16,
    };
    server.add_tenant(
        "fleet-a",
        TenantConfig::unlimited().with_qos(BackpressureMode::Block, 64).with_slo(slo),
    );
    server.add_tenant(
        "fleet-b",
        TenantConfig::unlimited()
            .with_frame_quota(0, fleet_b_burst)
            .with_qos(BackpressureMode::Block, 64)
            .with_slo(slo),
    );
    let plans = make_plans(clients, &["fleet-a", "fleet-b"], 6, 24, 256, 8, 3);
    (manual, clock, server, plans)
}

/// Builds the telemetry-gate `RunReport` (tenant sections + SLOs).
fn telemetry_report(server: &Server, clients: u64, delivered: u64, task: &str) -> RunReport {
    let sections = server.tenant_sections();
    let stats = server.stats();
    let mut accuracy = BTreeMap::new();
    accuracy.insert("sessions_admitted".to_string(), stats.sessions_clean as f64);
    accuracy.insert("frames_delivered".to_string(), delivered as f64);
    RunReport {
        schema_version: REPORT_SCHEMA_VERSION,
        task: task.to_string(),
        dataset: format!("{clients} cameras x 6 frames, 2 slo tenants"),
        baseline: "serve".to_string(),
        frames: delivered,
        fps: 0.0,
        accuracy,
        tenants: sections,
        slos: Some(server.slo_sections()),
        ..RunReport::default()
    }
}

/// The live-observability CI gate: scrape the fleet mid-flight, check
/// the page against final accounting, and emit the SLO-bearing report.
fn telemetry(clients: u64, out: Option<String>) {
    let (manual, clock, mut server, plans) = telemetry_fleet(clients, 3 * clients / 2);
    let (page, delivered, live_reports) =
        drive_telemetry(&mut server, &manual, &clock, plans, &["fleet-a", "fleet-b"]);

    let Some(page) = page else {
        eprintln!("telemetry FAILED: scrape never completed");
        std::process::exit(1);
    };
    // Mid-flight consistency: the scraped counters are non-zero (the
    // scrape happened after ingest started) and never exceed final
    // accounting (snapshots are prefixes of the final totals).
    let mut scraped_any = 0u64;
    for s in server.tenant_sections() {
        let snap = scraped_counter(&page, "rpr_frames_accepted_total", &s.tenant).unwrap_or(0);
        if snap > s.frames_accepted {
            eprintln!(
                "telemetry FAILED: scraped {snap} accepted for {} > final {}",
                s.tenant, s.frames_accepted
            );
            std::process::exit(1);
        }
        scraped_any += snap;
    }
    if scraped_any == 0 {
        eprintln!("telemetry FAILED: mid-flight scrape saw zero accepted frames");
        std::process::exit(1);
    }
    if !page.contains("rpr_slo_burn_rate{tenant=\"fleet-b\"}") {
        eprintln!("telemetry FAILED: exposition page is missing the SLO gauge");
        std::process::exit(1);
    }
    let sections = server.slo_sections();
    if sections.iter().any(|s| s.breaches > 0) {
        eprintln!("telemetry FAILED: healthy run breached an SLO: {sections:?}");
        std::process::exit(1);
    }
    if live_reports == 0 {
        eprintln!("telemetry FAILED: periodic live-report emitter never fired");
        std::process::exit(1);
    }

    let report = telemetry_report(&server, clients, delivered, "serve_telemetry");
    print!("{}", report.render_text());
    println!(
        "telemetry: {delivered} delivered  {live_reports} live reports  scrape saw {scraped_any} accepted mid-flight"
    );
    if let Some(path) = out {
        let text = serde_json::to_string_pretty(&report).expect("report serializes");
        write_or_print(&Some(path), &text);
    }
}

/// The injected-breach self-check: same fleet, `fleet-b` quota zeroed.
/// Every fleet-b frame becomes a bad SLO event, the burn rate crosses
/// 1.0, and the flight recorder must dump a valid Chrome trace. The
/// emitted report's `slo.fleet-b.breaches` moves off the baseline, so
/// `rpr-report diff` against `ci/baseline_telemetry.json` must be
/// non-zero — CI asserts both.
fn breach(clients: u64, out: Option<String>, dump_out: Option<String>) {
    let (manual, clock, mut server, plans) = telemetry_fleet(clients, 0);
    let (_, delivered, _) =
        drive_telemetry(&mut server, &manual, &clock, plans, &["fleet-a", "fleet-b"]);

    let sections = server.slo_sections();
    let b = sections.iter().find(|s| s.tenant == "fleet-b");
    if !b.is_some_and(|s| s.breaches > 0 && s.burn_rate >= 1.0) {
        eprintln!("breach FAILED: zero-quota tenant never breached: {sections:?}");
        std::process::exit(1);
    }
    let Some(dump) = server.take_flight_dump() else {
        eprintln!("breach FAILED: SLO breach did not fire the flight recorder");
        std::process::exit(1);
    };
    if serde_json::from_str::<serde_json::Value>(&dump).is_err()
        || !dump.contains("\"traceEvents\"")
    {
        eprintln!("breach FAILED: flight dump is not a valid Chrome trace");
        std::process::exit(1);
    }
    if let Some(path) = dump_out {
        if let Err(e) = std::fs::write(&path, &dump) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote flight dump to {path}");
    }

    let report = telemetry_report(&server, clients, delivered, "serve_telemetry");
    println!(
        "breach: flight recorder fired ({} bytes), fleet-b burn {:.2}, {} breach(es)",
        dump.len(),
        b.map(|s| s.burn_rate).unwrap_or(0.0),
        b.map(|s| s.breaches).unwrap_or(0),
    );
    if let Some(path) = out {
        let text = serde_json::to_string_pretty(&report).expect("report serializes");
        write_or_print(&Some(path), &text);
    }
}

/// Wall-clock load: `clients` concurrent bursty cameras over four
/// tenants. Returns the JSON section for `BENCH_serve.json`.
fn bench_load(clients: u64, n_frames: u64) -> serde_json::Value {
    let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
    // A modest read quantum keeps each session alive across many steps,
    // so the whole fleet is genuinely concurrent rather than serialized
    // one session per step.
    let mut server = Server::new(Arc::clone(&clock)).with_read_quantum(2048);
    let tenants = ["fleet-a", "fleet-b", "fleet-c", "fleet-d"];
    for t in tenants {
        server.add_tenant(t, TenantConfig::unlimited().with_qos(BackpressureMode::Block, 4096));
    }
    // Big bursts every step: the fleet is fully connected within a few
    // steps, long before the first sessions drain.
    let wave = (clients / 4).max(1);
    let plans = make_plans(clients, &tenants, n_frames, 4096, 1024, wave, 1);
    let outcome = drive(&mut server, &clock, None, plans, 1 << 15);

    let sections = server.tenant_sections();
    let stats = server.stats();
    let bytes: u64 = sections.iter().map(|s| s.bytes_ingested).sum();
    let accepted: u64 = sections.iter().map(|s| s.frames_accepted).sum();
    let dropped: u64 = sections.iter().map(|s| s.frames_dropped).sum();
    let wall = outcome.wall_s.max(1e-9);
    println!(
        "bench: {} clients  peak {} open  {:.0} sessions/s  {:.2} MB/s  p50 {} µs  p99 {} µs  drop {:.4}",
        clients,
        outcome.peak_open_sessions,
        stats.sessions_clean as f64 / wall,
        bytes as f64 / wall / 1e6,
        percentile(&outcome.latencies_us, 0.50),
        percentile(&outcome.latencies_us, 0.99),
        dropped as f64 / (accepted + dropped).max(1) as f64,
    );
    serde_json::json!({
        "clients": clients,
        "frames_per_client": n_frames,
        "steps": outcome.steps,
        "wall_s": outcome.wall_s,
        "peak_open_sessions": outcome.peak_open_sessions,
        "sessions_clean": stats.sessions_clean,
        "sessions_per_s": stats.sessions_clean as f64 / wall,
        "frames_delivered": outcome.delivered,
        "frames_per_s": outcome.delivered as f64 / wall,
        "ingest_mb_s": bytes as f64 / wall / 1e6,
        "accept_to_deliver_p50_us": percentile(&outcome.latencies_us, 0.50),
        "accept_to_deliver_p99_us": percentile(&outcome.latencies_us, 0.99),
        "drop_rate": dropped as f64 / (accepted + dropped).max(1) as f64,
    })
}

/// Overload isolation: a hog tenant blasting past a tight byte quota
/// into a drop-oldest queue, next to a compliant tenant inside its
/// budget. The hog must throttle itself; the compliant tenant must see
/// a ~zero drop rate.
fn overload(clients: u64) -> serde_json::Value {
    let manual = ManualClock::new();
    let clock: Arc<dyn Clock> = Arc::new(manual.clone());
    let mut server = Server::new(Arc::clone(&clock)).with_read_quantum(4096);
    server.add_tenant(
        "hog",
        TenantConfig::unlimited()
            // ~one frame's bytes per 10 virtual ms: far below offered.
            .with_byte_quota(10_000, 2_000)
            .with_qos(BackpressureMode::DropOldest, 32),
    );
    server.add_tenant(
        "compliant",
        TenantConfig::unlimited().with_qos(BackpressureMode::Block, 256),
    );

    let half = clients / 2;
    let mut plans = make_plans(half, &["hog"], 12, 24, 256, 8, 1);
    plans.extend(make_plans(half, &["compliant"], 4, 24, 256, 8, 1));
    let outcome = drive(&mut server, &clock, Some((&manual, 100)), plans, 1 << 14);

    let sections = server.tenant_sections();
    let hog = sections.iter().find(|s| s.tenant == "hog").expect("hog section");
    let ok = sections.iter().find(|s| s.tenant == "compliant").expect("compliant section");
    let hog_offered = hog.frames_accepted + hog.frames_dropped;
    let hog_drop_rate = hog.frames_dropped as f64 / hog_offered.max(1) as f64;
    let ok_offered = ok.frames_accepted + ok.frames_dropped;
    let ok_drop_rate = ok.frames_dropped as f64 / ok_offered.max(1) as f64;
    let isolated = hog.quota_throttles > 0 && ok_drop_rate == 0.0 && ok.delivered_fraction == 1.0;
    if !isolated {
        eprintln!("overload isolation FAILED: hog {hog:?} compliant {ok:?}");
        std::process::exit(1);
    }
    println!(
        "overload: hog throttled {} times (drop {:.3}), compliant drop {:.3}",
        hog.quota_throttles, hog_drop_rate, ok_drop_rate,
    );
    serde_json::json!({
        "clients": clients,
        "steps": outcome.steps,
        "wall_s": outcome.wall_s,
        "hog_quota_throttles": hog.quota_throttles,
        "hog_drop_rate": hog_drop_rate,
        "hog_delivered_fraction": hog.delivered_fraction,
        "compliant_drop_rate": ok_drop_rate,
        "compliant_delivered_fraction": ok.delivered_fraction,
        "isolated": isolated,
    })
}

struct Args {
    mode: String,
    clients: Option<u64>,
    frames: u64,
    out: Option<String>,
    dump: Option<String>,
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let mode = it.next().unwrap_or_default();
    let mut args = Args { mode, clients: None, frames: 4, out: None, dump: None };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--clients" => {
                args.clients = Some(value("--clients").parse().unwrap_or_else(|_| {
                    eprintln!("--clients must be a positive integer");
                    std::process::exit(2);
                }));
            }
            "--frames" => {
                args.frames = value("--frames").parse().unwrap_or_else(|_| {
                    eprintln!("--frames must be a positive integer");
                    std::process::exit(2);
                });
            }
            "--out" => args.out = Some(value("--out")),
            "--dump" => args.dump = Some(value("--dump")),
            "--help" | "-h" => {
                println!(
                    "load_gen smoke|bench|overload|telemetry|breach [--clients N] [--frames N] [--out FILE] [--dump FILE]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    match args.mode.as_str() {
        "smoke" => smoke(args.clients.unwrap_or(64), args.out),
        "bench" => {
            let clients = args.clients.unwrap_or(1000);
            let load = bench_load(clients, args.frames);
            let over = overload(clients.clamp(16, 256));
            let record = serde_json::json!({
                "bench": "serve_load",
                "load": load,
                "overload": over,
            });
            let text = serde_json::to_string_pretty(&record).expect("record serializes");
            write_or_print(&args.out, &text);
        }
        "overload" => {
            let record = overload(args.clients.unwrap_or(128));
            let text = serde_json::to_string_pretty(&record).expect("record serializes");
            write_or_print(&args.out, &text);
        }
        "telemetry" => telemetry(args.clients.unwrap_or(32), args.out),
        "breach" => breach(args.clients.unwrap_or(32), args.out, args.dump),
        other => {
            eprintln!("unknown mode {other:?} (want smoke|bench|overload|telemetry|breach)");
            std::process::exit(2);
        }
    }
}

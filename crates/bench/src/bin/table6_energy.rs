//! Reproduces paper Table 6 and the §6.2 energy analysis: per-pixel
//! energy of each pipeline component, and the first-order frame-energy
//! saving of RP10 on V-SLAM extrapolated to the paper's 4K@30 fps
//! operating point (paper: ~18 mJ/frame, ~550 mW).

use rpr_bench::{print_table, Scale};
use rpr_memsim::{EnergyModel, FrameActivity};
use rpr_workloads::tasks::run_slam;
use rpr_workloads::Baseline;

fn main() {
    let model = EnergyModel::paper_defaults();
    print_table(
        "Table 6 — energy per pixel (model constants)",
        &["component", "energy (pJ/pixel)", "paper"],
        &[
            vec!["Sensing".into(), format!("{:.0}", model.sensing_pj), "595".into()],
            vec![
                "Communication (SoC-DRAM, round trip)".into(),
                format!("{:.0}", 2.0 * model.ddr_interface_pj),
                "~2800".into(),
            ],
            vec![
                "Storage (DRAM write+read)".into(),
                format!("{:.0}", model.dram_write_pj + model.dram_read_pj),
                "677".into(),
            ],
            vec![
                "Computation (per MAC)".into(),
                format!("{:.1}", model.mac_pj),
                "4.6".into(),
            ],
        ],
    );

    // Measure the RP10 keep-fraction on the SLAM workload and apply it
    // at the paper's 4K operating point.
    let scale = Scale::from_env();
    let ds = scale.slam(0);
    let rp = run_slam(&ds, Baseline::Rp { cycle_length: 10 });
    let keep = rp.measurements.mean_captured_fraction();

    let px_4k: u64 = 3840 * 2160;
    let baseline = FrameActivity {
        sensed_px: px_4k,
        csi_px: px_4k,
        dram_written_px: px_4k,
        dram_read_px: px_4k,
        macs: 0,
    };
    // Metadata adds 1/12 of a pixel-equivalent per pixel (2 bits vs 24).
    let kept_px = (px_4k as f64 * (keep + 1.0 / 12.0)).round() as u64;
    let reduced = FrameActivity {
        dram_written_px: kept_px.min(px_4k),
        dram_read_px: kept_px.min(px_4k),
        ..baseline
    };

    let saving_mj = model.saving_mj(&baseline, &reduced);
    let saving_mw = model.power_mw(&baseline, 30.0) - model.power_mw(&reduced, 30.0);
    println!(
        "\n§6.2 extrapolation — RP10 V-SLAM at 4K/30fps \
         (measured keep fraction {:.0}% + 8% metadata):",
        keep * 100.0
    );
    println!("  energy saved per frame: {saving_mj:.1} mJ   (paper: ~18 mJ)");
    println!("  power saved at 30 fps:  {saving_mw:.0} mW    (paper: ~550 mW)");
    println!(
        "  full-frame pipeline energy: {:.1} mJ/frame, {:.0} mW at 30 fps",
        model.frame_energy(&baseline).total_mj(),
        model.power_mw(&baseline, 30.0)
    );
}

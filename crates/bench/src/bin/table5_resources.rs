//! Reproduces paper Table 5: FPGA resource utilization of the parallel
//! vs hybrid encoder designs across region counts, including the
//! parallel design's synthesis failure at 1600 regions, plus the §6.3
//! decoder row (region-count independent).

use rpr_bench::print_table;
use rpr_hwsim::{DesignKind, ResourceEstimator, SynthesisOutcome};

fn main() {
    let est = ResourceEstimator::zcu102();
    let counts = [100u32, 200, 400, 1600];

    type MakeDesign = fn(u32) -> DesignKind;
    let mut rows = Vec::new();
    let kinds: [(&str, MakeDesign); 2] = [
        ("Parallel", |n| DesignKind::ParallelEncoder { regions: n }),
        ("Hybrid", |n| DesignKind::HybridEncoder { regions: n }),
    ];
    for (kind_name, make) in kinds {
        for &n in &counts {
            let r = est.estimate(make(n));
            let (luts, ffs, brams) = if r.outcome == SynthesisOutcome::NoSynth {
                ("No Synth".to_string(), "No Synth".to_string(), "No Synth".to_string())
            } else {
                (r.luts.to_string(), r.ffs.to_string(), r.brams.to_string())
            };
            rows.push(vec![kind_name.to_string(), n.to_string(), luts, ffs, brams]);
        }
    }
    print_table(
        "Table 5 — encoder resource utilization (modeled post-layout)",
        &["type", "#regions", "#LUTs", "#FFs", "#BRAMs"],
        &rows,
    );

    let dec = est.estimate(DesignKind::Decoder { width: 1920 });
    println!(
        "\ndecoder (1080p, any region count): {} LUTs, {} FFs, {} BRAMs \
         (paper: 699 / 1082 / 2)",
        dec.luts, dec.ffs, dec.brams
    );
    println!(
        "paper parallel rows: 100→4644/5935, 200→8635/10935, 400→16251/20685, 1600→No Synth;\n\
         paper hybrid rows: ~942-952 LUTs, ~1186-1191 FFs, 11 BRAMs at every count"
    );
}

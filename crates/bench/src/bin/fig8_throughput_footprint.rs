//! Reproduces paper Fig. 8: pixel-memory throughput (MB/s) and memory
//! footprint (MB) for every baseline on the three workloads.
//!
//! Expected shape (the paper's claims): RPx cuts traffic and footprint
//! vs FCH, more with higher cycle length (5–10 % per +5 CL); multi-ROI
//! costs more than RP (substantially more for SLAM's hundreds of
//! regions); H.264 is the most traffic-hungry because it streams
//! multiple frames per coded frame.

use rpr_bench::{print_table, Scale};
use rpr_workloads::tasks::{run_face, run_pose, run_slam};
use rpr_workloads::{Baseline, ExperimentResult};
use std::collections::BTreeMap;

fn result_rows(results: &[ExperimentResult]) -> Vec<Vec<String>> {
    results
        .iter()
        .map(|r| {
            vec![
                r.baseline.clone(),
                format!("{:.2}", r.throughput_mb_s()),
                format!("{:.3}", r.mean_footprint_mb()),
                format!("{:.3}", r.measurements.peak_footprint_bytes as f64 / 1e6),
                format!("{:.0}%", r.measurements.mean_captured_fraction() * 100.0),
            ]
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    // Per-task FCL factors mirroring the paper: 4K->480p for SLAM,
    // 720p/SVGA->240p for pose and face.
    let slam_baselines = Baseline::paper_set(4);
    let det_baselines = Baseline::paper_set(3);
    let header = ["baseline", "throughput MB/s", "mean footprint MB", "peak MB", "px captured"];

    // (a) Visual SLAM.
    let slam_ds = scale.slam(0);
    let slam: Vec<ExperimentResult> = slam_baselines
        .iter()
        .map(|&b| {
            let out = run_slam(&slam_ds, b);
            ExperimentResult::new("visual-slam", "slam-0", b, BTreeMap::new(), out.measurements)
        })
        .collect();
    print_table("Fig. 8(a) — Visual SLAM", &header, &result_rows(&slam));

    // (b) Human pose estimation.
    let pose_ds = scale.pose(0);
    let pose: Vec<ExperimentResult> = det_baselines
        .iter()
        .map(|&b| {
            let out = run_pose(&pose_ds, b);
            ExperimentResult::new("pose", "pose-0", b, BTreeMap::new(), out.measurements)
        })
        .collect();
    print_table("Fig. 8(b) — Human pose estimation", &header, &result_rows(&pose));

    // (c) Face detection.
    let face_ds = scale.face(0);
    let face: Vec<ExperimentResult> = det_baselines
        .iter()
        .map(|&b| {
            let out = run_face(&face_ds, b);
            ExperimentResult::new("face", "face-0", b, BTreeMap::new(), out.measurements)
        })
        .collect();
    print_table("Fig. 8(c) — Face detection", &header, &result_rows(&face));

    // Headline reduction, as in the abstract (43–64 % vs FCH).
    for (name, rows) in [("SLAM", &slam), ("pose", &pose), ("face", &face)] {
        let fch = rows[0].throughput_mb_s();
        let rp10 = rows
            .iter()
            .find(|r| r.baseline == "RP10")
            .expect("RP10 present")
            .throughput_mb_s();
        println!(
            "{name}: RP10 reduces interface traffic by {:.0}% vs FCH (paper: 43-64%)",
            (1.0 - rp10 / fch) * 100.0
        );
    }
}

//! Runs the complete evaluation matrix — every workload under every
//! baseline — and writes the results as machine-readable JSON
//! (`target/results/experiments.json`) plus a console summary. This is
//! the one-command regeneration of the data behind Figs. 8–9.
//!
//! `RPR_SCALE=full cargo run --release -p rpr-bench --bin run_all`
//! reproduces at the larger scale.

use rpr_bench::{print_table, Scale};
use rpr_workloads::tasks::{run_face, run_pose, run_slam};
use rpr_workloads::{Baseline, ExperimentResult};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env();
    let mut results: Vec<ExperimentResult> = Vec::new();

    for seq in 0..scale.sequences {
        let slam_ds = scale.slam(seq);
        for &b in &Baseline::paper_set(4) {
            let out = run_slam(&slam_ds, b);
            let mut acc = BTreeMap::new();
            acc.insert("ate_mm".into(), out.ate_mm);
            acc.insert("rpe_translational_mm".into(), out.rpe_translational_mm);
            acc.insert("rpe_rotational_deg".into(), out.rpe_rotational_deg);
            acc.insert("tracking_failures".into(), f64::from(out.tracking_failures));
            results.push(ExperimentResult::new(
                "visual-slam",
                &format!("slam-{seq}"),
                b,
                acc,
                out.measurements,
            ));
        }
        let pose_ds = scale.pose(seq);
        for &b in &Baseline::paper_set(3) {
            let out = run_pose(&pose_ds, b);
            let mut acc = BTreeMap::new();
            acc.insert("map".into(), out.map);
            results.push(ExperimentResult::new(
                "pose-estimation",
                &format!("pose-{seq}"),
                b,
                acc,
                out.measurements,
            ));
        }
        let face_ds = scale.face(seq);
        for &b in &Baseline::paper_set(3) {
            let out = run_face(&face_ds, b);
            let mut acc = BTreeMap::new();
            acc.insert("map".into(), out.map);
            results.push(ExperimentResult::new(
                "face-detection",
                &format!("face-{seq}"),
                b,
                acc,
                out.measurements,
            ));
        }
    }

    // Persist.
    let out_dir = PathBuf::from("target/results");
    fs::create_dir_all(&out_dir)?;
    let path = out_dir.join("experiments.json");
    fs::write(&path, serde_json::to_string_pretty(&results)?)?;

    // Console summary: one row per (task, baseline), averaged over
    // sequences.
    let mut by_key: BTreeMap<(String, String), Vec<&ExperimentResult>> = BTreeMap::new();
    for r in &results {
        by_key.entry((r.task.clone(), r.baseline.clone())).or_default().push(r);
    }
    let mut rows = Vec::new();
    for ((task, baseline), group) in &by_key {
        let n = group.len() as f64;
        let throughput = group.iter().map(|r| r.throughput_mb_s()).sum::<f64>() / n;
        let footprint = group.iter().map(|r| r.mean_footprint_mb()).sum::<f64>() / n;
        let acc: String = if let Some(v) = group[0].accuracy.get("ate_mm") {
            let mean = group
                .iter()
                .map(|r| r.accuracy.get("ate_mm").copied().unwrap_or(*v))
                .sum::<f64>()
                / n;
            format!("{mean:.2} mm ATE")
        } else {
            let mean = group
                .iter()
                .filter_map(|r| r.accuracy.get("map"))
                .sum::<f64>()
                / n;
            format!("{:.1}% mAP", mean * 100.0)
        };
        rows.push(vec![
            task.clone(),
            baseline.clone(),
            format!("{throughput:.2}"),
            format!("{footprint:.3}"),
            acc,
        ]);
    }
    print_table(
        "run_all — evaluation matrix (mean over sequences)",
        &["task", "baseline", "traffic MB/s", "footprint MB", "accuracy"],
        &rows,
    );
    println!("\n{} experiment rows written to {}", results.len(), path.display());
    Ok(())
}

//! Wire-format size and replay accounting: records each workload's
//! rhythmic capture stream into an in-memory `.rpr` container and
//! reports what the mask coding bought — RLE-coded mask bytes vs the
//! raw 2-bit-per-pixel mask — plus container overhead and read/replay
//! timings.
//!
//! Usage:
//!
//! ```text
//! wire_bench [--frames N] [--out FILE]
//! ```
//!
//! With `--out`, writes the full JSON record — that is how
//! `BENCH_wire.json` at the repo root is produced.

use rpr_bench::{print_table, Scale};
use rpr_wire::{read_all, WriterStats};
use rpr_workloads::{
    record_face, record_pose, record_slam, replay_task_inputs, Baseline, FaceDataset,
    PipelineConfig, PoseDataset, SlamDataset,
};
use std::time::Instant;

struct Args {
    frames: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { frames: Scale::from_env().frames, out: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--frames" => {
                args.frames = value("--frames").parse().unwrap_or_else(|_| {
                    eprintln!("--frames must be a positive integer");
                    std::process::exit(2);
                });
            }
            "--out" => args.out = Some(value("--out")),
            "--help" | "-h" => {
                println!("wire_bench [--frames N] [--out FILE]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One workload recorded into a container and replayed back.
struct Run {
    workload: &'static str,
    cycle_length: u64,
    stats: WriterStats,
    read_s: f64,
    replay_s: f64,
    frames_replayed: usize,
}

fn measure(workload: &'static str, cycle_length: u64, frames: usize) -> Run {
    let scale = Scale::from_env();
    let cfg = PipelineConfig::new(scale.width, scale.height, Baseline::Rp { cycle_length });
    let (bytes, stats) = match workload {
        "slam" => {
            let ds = SlamDataset::new(scale.width, scale.height, frames, 5000);
            let (_, bytes, stats) = record_slam(&ds, cfg).expect("recording cannot fail in memory");
            (bytes, stats)
        }
        "pose" => {
            let ds = PoseDataset::new(scale.width, scale.height, frames, 7000);
            let (_, bytes, stats) = record_pose(&ds, cfg).expect("recording cannot fail in memory");
            (bytes, stats)
        }
        _ => {
            let ds = FaceDataset::new(scale.width, scale.height, frames, 1, 3);
            let (_, bytes, stats) = record_face(&ds, cfg).expect("recording cannot fail in memory");
            (bytes, stats)
        }
    };

    let t0 = Instant::now();
    let decoded = read_all(&bytes).expect("fresh container parses");
    let read_s = t0.elapsed().as_secs_f64();
    assert_eq!(decoded.len() as u64, stats.frames, "index must cover every recorded frame");

    let t0 = Instant::now();
    let inputs = replay_task_inputs(&bytes).expect("fresh container replays");
    let replay_s = t0.elapsed().as_secs_f64();

    Run { workload, cycle_length, stats, read_s, replay_s, frames_replayed: inputs.len() }
}

fn run_json(run: &Run) -> serde_json::Value {
    let s = &run.stats;
    serde_json::json!({
        "workload": run.workload,
        "cycle_length": run.cycle_length,
        "frames": s.frames,
        "payload_bytes": s.payload_bytes,
        "raw_mask_bytes": s.raw_mask_bytes,
        "rle_mask_bytes": s.rle_mask_bytes,
        "mask_bytes_written": s.mask_bytes_written,
        "rle_frames": s.rle_frames,
        "container_bytes": s.container_bytes,
        "mask_compression": s.rle_mask_bytes as f64 / (s.raw_mask_bytes.max(1)) as f64,
        "container_overhead": s.container_bytes as f64
            / (s.payload_bytes + s.mask_bytes_written).max(1) as f64,
        "read_s": run.read_s,
        "replay_s": run.replay_s,
        "frames_replayed": run.frames_replayed,
    })
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_env();

    let mut runs = Vec::new();
    for workload in ["slam", "pose", "face"] {
        for cycle_length in [5u64, 10, 15] {
            runs.push(measure(workload, cycle_length, args.frames));
        }
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let s = &r.stats;
            vec![
                r.workload.to_string(),
                format!("RP{}", r.cycle_length),
                s.frames.to_string(),
                s.payload_bytes.to_string(),
                s.raw_mask_bytes.to_string(),
                s.rle_mask_bytes.to_string(),
                format!("{:.2}x", s.raw_mask_bytes as f64 / s.rle_mask_bytes.max(1) as f64),
                format!("{}/{}", s.rle_frames, s.frames),
                s.container_bytes.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Wire format ({}x{}, {} frames)", scale.width, scale.height, args.frames),
        &[
            "workload",
            "baseline",
            "frames",
            "payload B",
            "raw mask B",
            "rle mask B",
            "mask ratio",
            "rle frames",
            "container B",
        ],
        &rows,
    );

    let record = serde_json::json!({
        "bench": "wire_roundtrip",
        "width": scale.width,
        "height": scale.height,
        "frames_per_run": args.frames,
        "runs": runs.iter().map(run_json).collect::<Vec<_>>(),
    });
    let pretty = serde_json::to_string_pretty(&record).expect("record serializes");
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, pretty + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("\nwrote {}", path);
        }
        None => println!("\n{pretty}"),
    }
}

//! Predictive-vs-reactive region tracking on the seeded moving-camera
//! pan (§3.4): mean planned-region IoU against ground-truth object
//! tracks at the high-resolution pixel budget, plus prediction
//! throughput (motion vectors per second and per-frame prediction
//! latency).
//!
//! Usage:
//!
//! ```text
//! predict_bench [--frames N] [--out FILE]
//! ```
//!
//! With `--out`, writes a `RunReport` whose `prediction` section and
//! `accuracy` map carry the headline numbers — that is how
//! `BENCH_predict.json` at the repo root is produced, and what CI
//! diffs against `ci/baseline_predict.json` via `rpr-report diff`
//! (the committed baseline pins the deterministic IoU and budget
//! numbers, not machine-dependent throughput).
//!
//! The binary is additionally self-gating: it exits non-zero unless
//! the predictive policy achieves strictly higher mean region IoU than
//! the reactive policy at an equal-or-lower high-resolution pixel
//! budget on the seeded panning scenario.

use rpr_bench::report::memory_section;
use rpr_bench::{print_table, Scale};
use rpr_core::RegionLabel;
use rpr_predict::{estimate_ego_motion, predict_labels, EgoEstimatorConfig, TrackerConfig};
use rpr_trace::{RunReport, REPORT_SCHEMA_VERSION};
use rpr_vision::estimate_block_motion;
use rpr_workloads::datasets::VideoDataset;
use rpr_workloads::{run_tracking, MovingCameraDataset, PolicyKind, TrackingConfig};
use std::collections::BTreeMap;
use std::time::Instant;

/// The seeded panning scenario the acceptance gate runs on: a
/// 7 px/frame pan against a 4 px detection margin, so a reactive t−1
/// policy visibly trails the scene on every regional frame.
const WIDTH: u32 = 192;
const HEIGHT: u32 = 144;
const PAN_SPEED: f64 = 7.0;
const SEED: u64 = 11;

struct Args {
    frames: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { frames: Scale::from_env().frames, out: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--frames" => {
                args.frames = value("--frames").parse().unwrap_or_else(|_| {
                    eprintln!("--frames must be a positive integer");
                    std::process::exit(2);
                });
            }
            "--out" => args.out = Some(value("--out")),
            "--help" | "-h" => {
                println!("predict_bench [--frames N] [--out FILE]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Times the full prediction hot path over consecutive frame pairs —
/// block matching, ego fit, and label projection — and returns
/// (vectors per second, mean prediction latency in µs), where the
/// latency covers only the prediction stages (fit + projection), not
/// the block matcher feeding them.
fn measure_throughput(ds: &MovingCameraDataset) -> (f64, f64) {
    let ego_cfg = EgoEstimatorConfig::default();
    let tracker_cfg = TrackerConfig::default();
    let mut vectors_total = 0u64;
    let mut match_secs = 0.0;
    let mut predict_secs = 0.0;
    let mut pairs = 0u64;
    for idx in 1..ds.len() {
        let prev = ds.frame(idx - 1);
        let cur = ds.frame(idx);
        let t0 = Instant::now();
        let vectors = estimate_block_motion(&prev, &cur, 16, 8);
        match_secs += t0.elapsed().as_secs_f64();
        vectors_total += vectors.len() as u64;

        let labels: Vec<RegionLabel> = ds
            .gt_object_tracks(idx - 1)
            .iter()
            .map(|r| RegionLabel::from_rect(*r, 1, 1))
            .collect();
        let t1 = Instant::now();
        let ego = estimate_ego_motion(&vectors, &ego_cfg);
        let predicted = predict_labels(&labels, &vectors, &ego, WIDTH, HEIGHT, &tracker_cfg);
        predict_secs += t1.elapsed().as_secs_f64();
        std::hint::black_box(predicted.len());
        pairs += 1;
    }
    let vectors_per_s = if match_secs + predict_secs > 0.0 {
        vectors_total as f64 / (match_secs + predict_secs)
    } else {
        0.0
    };
    let latency_us = if pairs == 0 { 0.0 } else { predict_secs / pairs as f64 * 1e6 };
    (vectors_per_s, latency_us)
}

fn main() {
    let args = parse_args();
    let ds = MovingCameraDataset::panning(WIDTH, HEIGHT, args.frames, PAN_SPEED, SEED);

    let reactive = run_tracking(&ds, &TrackingConfig::default());
    let predictive = run_tracking(
        &ds,
        &TrackingConfig { policy_kind: PolicyKind::CyclePredictive, ..TrackingConfig::default() },
    );
    let (vectors_per_s, latency_us) = measure_throughput(&ds);

    let rows = vec![
        vec![
            "reactive (CycleFeature)".to_string(),
            format!("{:.4}", reactive.mean_region_iou),
            format!("{}", reactive.hi_res_pixels),
            "-".to_string(),
        ],
        vec![
            "predictive (CyclePredictive)".to_string(),
            format!("{:.4}", predictive.mean_region_iou),
            format!("{}", predictive.hi_res_pixels),
            format!("{:.3}", predictive.mean_inlier_fraction),
        ],
    ];
    print_table(
        &format!("Moving-camera tracking ({}, {} frames)", ds.name(), args.frames),
        &["policy", "mean region IoU", "hi-res px", "inlier frac"],
        &rows,
    );
    println!(
        "prediction throughput: {:.0} vectors/s, {:.1} us/frame fit+project",
        vectors_per_s, latency_us
    );

    let mut accuracy = BTreeMap::new();
    accuracy.insert("predictive_mean_iou".to_string(), predictive.mean_region_iou);
    accuracy.insert("reactive_mean_iou".to_string(), reactive.mean_region_iou);
    accuracy.insert(
        "iou_gain".to_string(),
        predictive.mean_region_iou - reactive.mean_region_iou,
    );
    // Budget headroom: reactive over predictive hi-res pixels. >= 1
    // means prediction pays for itself; a drop below the slack floor
    // trips the accuracy gate.
    accuracy.insert(
        "budget_headroom".to_string(),
        reactive.hi_res_pixels as f64 / predictive.hi_res_pixels.max(1) as f64,
    );
    accuracy.insert("inlier_fraction".to_string(), predictive.mean_inlier_fraction);
    // Machine-dependent; reported but deliberately left out of the
    // committed baseline.
    accuracy.insert("vectors_per_s".to_string(), vectors_per_s);
    accuracy.insert("prediction_latency_us".to_string(), latency_us);

    let report = RunReport {
        schema_version: REPORT_SCHEMA_VERSION,
        task: "predict_bench".to_string(),
        dataset: ds.name().to_string(),
        baseline: "reactive-cycle".to_string(),
        frames: args.frames as u64,
        accuracy,
        memory: memory_section(&predictive.measurements),
        prediction: Some(predictive.prediction_section()),
        ..RunReport::default()
    };
    let pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, pretty + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("\nwrote {path}");
        }
        None => println!("\n{pretty}"),
    }

    // The acceptance gate: prediction must buy accuracy, not budget.
    if predictive.mean_region_iou <= reactive.mean_region_iou {
        eprintln!(
            "FAIL: predictive IoU {:.4} does not beat reactive {:.4}",
            predictive.mean_region_iou, reactive.mean_region_iou
        );
        std::process::exit(1);
    }
    if predictive.hi_res_pixels > reactive.hi_res_pixels {
        eprintln!(
            "FAIL: predictive budget {} px exceeds reactive {} px",
            predictive.hi_res_pixels, reactive.hi_res_pixels
        );
        std::process::exit(1);
    }
    eprintln!(
        "predict gate: IoU {:.4} > {:.4} at {} <= {} hi-res px",
        predictive.mean_region_iou,
        reactive.mean_region_iou,
        predictive.hi_res_pixels,
        reactive.hi_res_pixels
    );
}

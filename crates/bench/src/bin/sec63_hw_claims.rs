//! Reproduces the paper's §6.3 hardware claims:
//!
//! * the encoder sustains the ISP's 2 pixels/clock on real workload
//!   region schedules;
//! * the decoder adds only tens of nanoseconds per transaction —
//!   negligible against tens of milliseconds of frame compute;
//! * the software decoder runs in real time and scales linearly with
//!   the regional-pixel fraction;
//! * the hybrid encoder draws ~45 mW at 1600 regions (< 7 % of a
//!   650 mW mobile ISP) and the decoder < 1 mW.

use rpr_bench::{print_table, Scale};
use rpr_core::{
    CycleLengthPolicy, FeaturePolicy, Policy, PolicyContext, PixelRequest, PixelMmu,
    RegionList, RhythmicEncoder, SoftwareDecoder, Feature,
};
use rpr_hwsim::{
    DecoderLatencyModel, DesignKind, EncoderPipelineModel, MetadataScratchpad, PowerModel,
    SwDecoderModel,
};
use rpr_workloads::datasets::VideoDataset;
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    let ds = scale.slam(0);
    let (w, h) = (ds.width(), ds.height());

    // Build a realistic mid-cycle region schedule from features.
    let features: Vec<Feature> = (0..200)
        .map(|i| {
            Feature::new(
                f64::from((i * 37) % w),
                f64::from((i * 53) % h),
                24.0,
            )
            .with_octave(i % 4)
            .with_displacement(f64::from(i % 6))
        })
        .collect();
    let mut policy = CycleLengthPolicy::new(10, FeaturePolicy::new());
    let ctx = PolicyContext { frame_idx: 3, width: w, height: h, features, detections: vec![] };
    let regions: RegionList = policy.plan(&ctx);

    // 1. Encoder meets 2 ppc.
    let frame = ds.frame(3);
    let model = EncoderPipelineModel::paper_config();
    let report = model.simulate(&frame, 3, &regions);
    println!("=== §6.3 hardware claims ===\n");
    println!(
        "encoder pipeline: {:.2} effective px/clock over {} regions ({} stall cycles) -> {}",
        report.effective_ppc,
        regions.len(),
        report.stall_cycles,
        if report.meets_target { "meets 2 ppc" } else { "MISSES 2 ppc" }
    );

    // 2. Decoder added latency.
    let mut encoder = RhythmicEncoder::new(w, h);
    let encoded = encoder.encode(&frame, 3, &regions);
    let mut decoder = SoftwareDecoder::new(w, h);
    let decoded_frame = decoder.decode(&encoded);
    let mut mmu = PixelMmu::new(w, h);
    let subs = mmu
        .analyze(decoder.history(), PixelRequest::row(h / 2, w))
        .expect("in-frame request");
    let latency = DecoderLatencyModel::paper_config();
    println!(
        "decoder request path: {:.0} ns for a single pixel, {:.0} ns for a {}-px row burst \
         (paper: a few 10s of ns; frame compute is 10s of ms)",
        latency.sub_request_ns(&subs[0]),
        latency.transaction_ns(&subs),
        w
    );

    // 2b. Metadata scratchpad locality over a full-frame raster read.
    let mut scratchpad = MetadataScratchpad::for_width(w);
    for y in 0..h {
        let row_subs = mmu
            .analyze(decoder.history(), PixelRequest::row(y, w))
            .expect("in-frame");
        scratchpad.access_transaction(&row_subs);
    }
    println!(
        "metadata scratchpad: {:.1}% hit rate on a raster read, {} B fetched \
         ({} B of on-chip storage — the 2-BRAM budget)",
        scratchpad.stats().hit_rate() * 100.0,
        scratchpad.stats().bytes_fetched,
        scratchpad.capacity_bytes()
    );

    // 3. Software decoder: modeled and measured.
    let sw = SwDecoderModel::paper_config();
    let regional_30pct = (1920.0_f64 * 1080.0 * 0.3) as u64;
    println!(
        "software decoder model: {:.1} ms for 1080p at 30% regional (paper: a few ms; \
         linear in regional pixels)",
        sw.decode_time_ms(regional_30pct)
    );
    let start = Instant::now();
    let reps = 20;
    for _ in 0..reps {
        std::hint::black_box(decoder.decode(&encoded));
    }
    let measured_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
    println!(
        "software decoder measured here: {:.2} ms per {}x{} frame at {:.0}% regional",
        measured_ms,
        w,
        h,
        encoded.captured_fraction() * 100.0
    );
    let _ = decoded_frame;

    // 4. Power.
    let power = PowerModel::zcu102();
    let enc_mw = power.encoder_power(DesignKind::HybridEncoder { regions: 1600 });
    let dec_mw = power.decoder_power(1920, 0.02);
    print_table(
        "power (modeled)",
        &["unit", "power (mW)", "paper"],
        &[
            vec![
                "hybrid encoder @1600 regions".into(),
                format!("{:.1}", enc_mw.total_mw()),
                "45".into(),
            ],
            vec![
                "decoder (1080p)".into(),
                format!("{:.2}", dec_mw.total_mw()),
                "< 1".into(),
            ],
            vec![
                "encoder as share of 650 mW ISP".into(),
                format!("{:.1}%", power.fraction_of_isp(&enc_mw) * 100.0),
                "< 7%".into(),
            ],
        ],
    );
}

//! Reproduces paper Figs. 10–15: the per-frame captured-pixel
//! progression across one capture cycle for two sequences of each
//! workload (full captures read 100 %, intermediate feature-guided
//! frames read ~20–45 %).

use rpr_bench::Scale;
use rpr_workloads::progression::{format_progression, progression_series};
use rpr_workloads::tasks::{run_face, run_pose, run_slam};
use rpr_workloads::Baseline;

fn main() {
    let scale = Scale::from_env();
    let cl = 6u64; // the paper's strips show 7 frames: full, 5 regional, full
    let rp = Baseline::Rp { cycle_length: cl };

    println!("=== Figs. 10-15 — captured pixels per frame across one cycle (RP{cl}) ===");
    println!("paper examples: 100% 37% 31% 34% 27% 35% 100% (SLAM, freiburg1-xyz)\n");

    for seq in 0..2usize {
        let out = run_slam(&scale.slam(seq), rp);
        print_strip(&format!("Fig. {} — Visual SLAM, slam-seq{seq}", 10 + seq), &out
            .measurements
            .captured_fractions, cl);
    }
    for seq in 0..2usize {
        let out = run_pose(&scale.pose(seq), rp);
        print_strip(
            &format!("Fig. {} — Human pose estimation, pose-seq{seq}", 12 + seq),
            &out.measurements.captured_fractions,
            cl,
        );
    }
    for seq in 0..2usize {
        let out = run_face(&scale.face(seq), rp);
        print_strip(
            &format!("Fig. {} — Face detection, face-seq{seq}", 14 + seq),
            &out.measurements.captured_fractions,
            cl,
        );
    }
}

fn print_strip(title: &str, fractions: &[f64], cl: u64) {
    match progression_series(fractions, cl, cl as usize) {
        Some(window) => println!("{title}:\n  {}", format_progression(&window)),
        None => println!("{title}: sequence too short"),
    }
}

//! Ablation: EncMask-driven decoding (the paper's design) vs the
//! rejected region-label-search translation (§3.3): "this would limit
//! decoder scalability, as the complexity of the search operation
//! quickly grows with additional regions".
//!
//! Both decoders reconstruct identical frames; the table shows how the
//! label-search translation cost climbs with region count while the
//! EncMask path stays flat.

use rpr_bench::print_table;
use rpr_core::{
    LabelSearchDecoder, RegionLabel, RegionList, RhythmicEncoder, SoftwareDecoder,
};
use rpr_frame::Plane;
use std::time::Instant;

const W: u32 = 320;
const H: u32 = 240;

fn regions(n: u32) -> RegionList {
    RegionList::new_lossy(
        W,
        H,
        (0..n)
            .map(|i| {
                RegionLabel::new(
                    (i * 131) % (W - 16),
                    (i * 73) % (H - 16),
                    12,
                    12,
                    1 + i % 3,
                    1 + i % 2,
                )
            })
            .collect(),
    )
}

fn main() {
    let frame = Plane::from_fn(W, H, |x, y| ((x * 7) ^ (y * 3)) as u8);
    let mut rows = Vec::new();
    for n in [10u32, 50, 200, 800] {
        let list = regions(n);
        let mut encoder = RhythmicEncoder::new(W, H);
        let encoded = encoder.encode(&frame, 0, &list);

        // EncMask path.
        let mut mask_dec = SoftwareDecoder::new(W, H);
        let t0 = Instant::now();
        let reps = 10;
        for _ in 0..reps {
            std::hint::black_box(mask_dec.decode(&encoded));
        }
        let mask_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps);

        // Label-search path.
        let mut label_dec = LabelSearchDecoder::new(W, H);
        let t0 = Instant::now();
        for _ in 0..reps {
            std::hint::black_box(label_dec.decode(&encoded, &list));
        }
        let label_ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps);

        // Equivalence sanity check.
        let mut a = SoftwareDecoder::new(W, H);
        let mut b = LabelSearchDecoder::new(W, H);
        assert_eq!(a.decode(&encoded), b.decode(&encoded, &list));

        rows.push(vec![
            list.len().to_string(),
            format!("{mask_ms:.2}"),
            format!("{label_ms:.2}"),
            format!("{:.2}", label_dec.stats().comparisons_per_pixel()),
            format!("{:.1}x", label_ms / mask_ms.max(1e-9)),
        ]);
    }
    print_table(
        "Ablation — decoder address translation design",
        &[
            "#regions",
            "EncMask decode (ms)",
            "label-search decode (ms)",
            "label comparisons/px",
            "slowdown",
        ],
        &rows,
    );
    println!(
        "\nThe EncMask decoder's cost is region-count independent (paper §6.3:\n\
         'our decoder design is agnostic to the number of regions'); the\n\
         label-search alternative pays per-pixel region comparisons that grow\n\
         with the live-region density — the §3.3 scalability argument."
    );
}

//! `rpr-report` — run, render, and diff [`RunReport`]s.
//!
//! ```text
//! rpr-report run --task slam [--baseline rp10] [--out report.json]
//!                [--trace trace.json] [--json]
//! rpr-report render report.json
//! rpr-report diff base.json new.json [--threshold PCT] [--dram PCT]
//!                [--energy PCT] [--latency PCT] [--accuracy PCT]
//!                [--ignore-latency] [--json]
//! ```
//!
//! `run` executes one workload (at `RPR_SCALE`) with tracing enabled
//! and emits the unified report; `--trace` additionally writes a Chrome
//! trace-event file loadable in Perfetto. `diff` compares two reports
//! and exits non-zero when any metric worsened beyond its threshold —
//! the CI regression gate.

use rpr_bench::report::{parse_baseline, run_workload_report, ReportTask};
use rpr_bench::Scale;
use rpr_trace::{chrome_trace_json, diff_reports, DiffThresholds, RunReport};
use rpr_workloads::Baseline;
use std::process::ExitCode;

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage:\n  rpr-report run --task face|pose|slam [--baseline SPEC] \
         [--out FILE] [--trace FILE] [--json]\n  rpr-report render FILE\n  \
         rpr-report diff BASE NEW [--threshold PCT] [--dram PCT] [--energy PCT] \
         [--latency PCT] [--accuracy PCT] [--ignore-latency] [--json]"
    );
    ExitCode::from(2)
}

fn read_report(path: &str) -> Result<RunReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: invalid RunReport: {e:?}"))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut task: Option<ReportTask> = None;
    let mut baseline: Baseline = Baseline::Rp { cycle_length: 10 };
    let mut out: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--task" => match it.next().map(|s| ReportTask::parse(s)) {
                Some(Some(t)) => task = Some(t),
                _ => return usage("--task needs face|pose|slam"),
            },
            "--baseline" => match it.next().map(|s| parse_baseline(s)) {
                Some(Some(b)) => baseline = b,
                _ => return usage("--baseline needs fch|fcl<k>|rp<n>|multiroi<k>"),
            },
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => return usage("--out needs a path"),
            },
            "--trace" => match it.next() {
                Some(p) => trace = Some(p.clone()),
                None => return usage("--trace needs a path"),
            },
            "--json" => json = true,
            other => return usage(&format!("unknown argument {other}")),
        }
    }
    let Some(task) = task else { return usage("run requires --task") };

    let scale = Scale::from_env();
    let run = run_workload_report(task, baseline, &scale);
    let report_json =
        serde_json::to_string_pretty(&run.report).expect("report serializes");
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, &report_json) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote report to {path}");
    }
    if let Some(path) = &trace {
        if let Err(e) = std::fs::write(path, chrome_trace_json(&run.events)) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote Chrome trace ({} events) to {path}", run.events.len());
    }
    if json {
        println!("{report_json}");
    } else {
        print!("{}", run.report.render_text());
    }
    ExitCode::SUCCESS
}

fn cmd_render(args: &[String]) -> ExitCode {
    let [path] = args else { return usage("render takes exactly one file") };
    match read_report(path) {
        Ok(report) => {
            print!("{}", report.render_text());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut files: Vec<&String> = Vec::new();
    let mut th = DiffThresholds::default();
    let mut json = false;
    let mut it = args.iter();
    let parse_pct = |v: Option<&String>| v.and_then(|s| s.parse::<f64>().ok());
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match parse_pct(it.next()) {
                Some(p) => {
                    th.dram_pct = p;
                    th.energy_pct = p;
                    th.latency_pct = p;
                    th.accuracy_pct = p;
                }
                None => return usage("--threshold needs a percentage"),
            },
            "--dram" => match parse_pct(it.next()) {
                Some(p) => th.dram_pct = p,
                None => return usage("--dram needs a percentage"),
            },
            "--energy" => match parse_pct(it.next()) {
                Some(p) => th.energy_pct = p,
                None => return usage("--energy needs a percentage"),
            },
            "--latency" => match parse_pct(it.next()) {
                Some(p) => th.latency_pct = p,
                None => return usage("--latency needs a percentage"),
            },
            "--accuracy" => match parse_pct(it.next()) {
                Some(p) => th.accuracy_pct = p,
                None => return usage("--accuracy needs a percentage"),
            },
            "--ignore-latency" => th.check_latency = false,
            "--json" => json = true,
            other if !other.starts_with('-') => files.push(arg),
            other => return usage(&format!("unknown argument {other}")),
        }
    }
    let [base_path, new_path] = files[..] else {
        return usage("diff takes exactly two report files");
    };
    let (base, new) = match (read_report(base_path), read_report(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let diff = diff_reports(&base, &new, &th);
    if json {
        println!("{}", serde_json::to_string_pretty(&diff).expect("diff serializes"));
    } else {
        print!("{}", diff.render_text());
    }
    if diff.regressed() {
        eprintln!("regression detected ({base_path} -> {new_path})");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "run" => cmd_run(rest),
            "render" => cmd_render(rest),
            "diff" => cmd_diff(rest),
            other => usage(&format!("unknown command {other}")),
        },
        None => usage("missing command"),
    }
}

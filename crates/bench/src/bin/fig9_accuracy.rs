//! Reproduces paper Fig. 9: task accuracy under every baseline.
//!
//! (a) Visual SLAM — absolute trajectory error, per-frame translational
//! error, and rotational error; (b) pose estimation mAP; (c) face
//! detection mAP. Expected shape: RPx close to FCH with loss growing
//! with cycle length (~5 % at CL=10); FCL clearly worse; H.264 ≈ FCH;
//! Multi-ROI between RP and FCH.

use rpr_bench::{mean_std, print_table, Scale};
use rpr_workloads::tasks::{run_face, run_pose, run_slam};
use rpr_workloads::Baseline;

fn main() {
    let scale = Scale::from_env();
    // Per-task FCL factors mirroring the paper: 4K->480p for SLAM,
    // 720p/SVGA->240p for pose and face.
    let slam_baselines = Baseline::paper_set(4);
    let det_baselines = Baseline::paper_set(3);

    // (a) Visual SLAM.
    let mut slam_rows = Vec::new();
    for &b in &slam_baselines {
        let mut ates = Vec::new();
        let mut trans = Vec::new();
        let mut rots = Vec::new();
        for seq in 0..scale.sequences {
            let out = run_slam(&scale.slam(seq), b);
            ates.push(out.ate_mm);
            trans.push(out.rpe_translational_mm);
            rots.push(out.rpe_rotational_deg);
        }
        let (am, asd) = mean_std(&ates);
        let (tm, tsd) = mean_std(&trans);
        let (rm, rsd) = mean_std(&rots);
        slam_rows.push(vec![
            b.label(),
            format!("{am:.1} ± {asd:.1}"),
            format!("{tm:.2} ± {tsd:.2}"),
            format!("{rm:.3} ± {rsd:.3}"),
        ]);
    }
    print_table(
        "Fig. 9(a) — Visual SLAM accuracy",
        &["baseline", "ATE (mm)", "transl. RPE (mm/frame)", "rot. RPE (deg/frame)"],
        &slam_rows,
    );

    // (b) Pose estimation.
    let mut pose_rows = Vec::new();
    for &b in &det_baselines {
        let maps: Vec<f64> = (0..scale.sequences)
            .map(|seq| run_pose(&scale.pose(seq), b).map * 100.0)
            .collect();
        let (m, s) = mean_std(&maps);
        pose_rows.push(vec![b.label(), format!("{m:.1} ± {s:.1}")]);
    }
    print_table("Fig. 9(b) — Human pose estimation", &["baseline", "mAP (%)"], &pose_rows);

    // (c) Face detection.
    let mut face_rows = Vec::new();
    for &b in &det_baselines {
        let maps: Vec<f64> = (0..scale.sequences)
            .map(|seq| run_face(&scale.face(seq), b).map * 100.0)
            .collect();
        let (m, s) = mean_std(&maps);
        face_rows.push(vec![b.label(), format!("{m:.1} ± {s:.1}")]);
    }
    print_table("Fig. 9(c) — Face detection", &["baseline", "mAP (%)"], &face_rows);

    println!(
        "\npaper shape: RP within ~5% of FCH at CL=10, loss grows with CL;\nFCL substantially worse on every task; H.264 tracks FCH."
    );
}

//! Hot-path kernel throughput: every chunked kernel measured against
//! the scalar reference it is differentially tested against, plus the
//! combined pooled encode→decode pipeline against the per-pixel
//! streaming/reference pipeline.
//!
//! Usage:
//!
//! ```text
//! kernel_bench [--frames N] [--out FILE]
//! ```
//!
//! With `--out`, writes a `RunReport` whose `accuracy` map carries the
//! per-kernel MB/s (scalar and chunked) and the speedup ratios — that
//! is how `BENCH_kernels.json` at the repo root is produced, and what
//! CI diffs against `ci/baseline_kernels.json` via `rpr-report diff`
//! (the committed baseline pins only the machine-portable speedup
//! ratios, not absolute MB/s).

use rpr_bench::{print_table, Scale};
use rpr_core::kernels;
use rpr_core::{
    BufferPool, EncoderConfig, PixelStatus, ReconstructionMode, RegionLabel, RegionList,
    RhythmicEncoder, SoftwareDecoder, StreamingEncoder,
};
use rpr_frame::{GrayFrame, Plane};
use rpr_testkit::ReferenceDecoder;
use rpr_trace::{RunReport, REPORT_SCHEMA_VERSION};
use rpr_wire::{crc32, rle};
use std::collections::BTreeMap;
use std::time::Instant;

struct Args {
    frames: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args { frames: Scale::from_env().frames, out: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--frames" => {
                args.frames = value("--frames").parse().unwrap_or_else(|_| {
                    eprintln!("--frames must be a positive integer");
                    std::process::exit(2);
                });
            }
            "--out" => args.out = Some(value("--out")),
            "--help" | "-h" => {
                println!("kernel_bench [--frames N] [--out FILE]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Times `f` until at least 80 ms have accumulated (minimum 8 calls so
/// a single slow outlier cannot own the measurement) and returns MB/s
/// given `bytes` processed per call.
fn mb_per_s(bytes: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let mut iters = 0u64;
    let t0 = Instant::now();
    loop {
        f();
        iters += 1;
        if iters >= 8 && t0.elapsed().as_secs_f64() >= 0.08 {
            break;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    (bytes as f64 * iters as f64) / secs / 1e6
}

fn textured_frame(w: u32, h: u32, seed: u32) -> GrayFrame {
    Plane::from_fn(w, h, |x, y| (x.wrapping_mul(31) ^ y.wrapping_mul(17) ^ seed) as u8)
}

/// Mixed-rhythm region set: full-rate, spatially strided, and
/// temporally skipped regions, so the mask holds all four status
/// classes and realistic run structure.
fn regions(w: u32, h: u32) -> RegionList {
    RegionList::new_lossy(
        w,
        h,
        vec![
            RegionLabel::new(2, 2, w / 2, h / 2, 1, 1),
            RegionLabel::new(w / 3, h / 3, w / 2, h / 2, 2, 1),
            RegionLabel::new(0, h / 2, w, h / 4, 1, 2),
        ],
    )
}

/// One scalar-vs-chunked measurement.
struct Pair {
    kernel: &'static str,
    scalar_mb_s: f64,
    chunked_mb_s: f64,
}

impl Pair {
    fn speedup(&self) -> f64 {
        self.chunked_mb_s / self.scalar_mb_s
    }
}

fn main() {
    let args = parse_args();
    let scale = Scale::from_env();
    let (w, h) = (scale.width, scale.height);
    let regions = regions(w, h);
    let frames: Vec<GrayFrame> = (0..4).map(|i| textured_frame(w, h, i)).collect();
    let pixels = (w * h) as usize;

    // One representative encoded frame supplies the mask, priority
    // rows, and payload every kernel chews on.
    let mut enc = RhythmicEncoder::new(w, h);
    let encoded = enc.encode(&frames[0], 1, &regions);
    let mask_bytes: Vec<u8> = encoded.metadata().mask.as_bytes().to_vec();
    let payload: Vec<u8> = encoded.pixels().to_vec();
    let row_pris: Vec<Vec<u8>> = (0..h)
        .map(|y| {
            (0..w).map(|x| encoded.metadata().mask.get(x, y).priority()).collect()
        })
        .collect();

    let mut runs = Vec::new();

    // Mask packing: priority rows into the 2-bit mask, one row per
    // call at the row's true (possibly misaligned) start entry.
    {
        let mut packed = vec![0u8; mask_bytes.len()];
        let row = |y: u32| (y as usize) * (w as usize);
        runs.push(Pair {
            kernel: "mask_pack",
            scalar_mb_s: mb_per_s(pixels, || {
                for (y, pri) in row_pris.iter().enumerate() {
                    kernels::pack_priority_row_scalar(&mut packed, row(y as u32), pri);
                }
                std::hint::black_box(&packed);
            }),
            chunked_mb_s: mb_per_s(pixels, || {
                for (y, pri) in row_pris.iter().enumerate() {
                    kernels::pack_priority_row(&mut packed, row(y as u32), pri);
                }
                std::hint::black_box(&packed);
            }),
        });
    }

    // Run scanning: the decoder's traversal of the packed mask into
    // (status, run-length) callbacks.
    runs.push(Pair {
        kernel: "run_scan",
        scalar_mb_s: mb_per_s(mask_bytes.len(), || {
            let mut acc = 0usize;
            kernels::for_each_run_scalar(&mask_bytes, 0, pixels, |_, run| acc += run);
            std::hint::black_box(acc);
        }),
        chunked_mb_s: mb_per_s(mask_bytes.len(), || {
            let mut acc = 0usize;
            kernels::for_each_run(&mask_bytes, 0, pixels, |_, run| acc += run);
            std::hint::black_box(acc);
        }),
    });

    // Regional gather: the encoder's payload compaction.
    {
        let mut out = Vec::with_capacity(pixels);
        runs.push(Pair {
            kernel: "gather",
            scalar_mb_s: mb_per_s(pixels, || {
                out.clear();
                for (y, pri) in row_pris.iter().enumerate() {
                    kernels::gather_regional_scalar(pri, frames[0].row(y as u32), &mut out);
                }
                std::hint::black_box(out.len());
            }),
            chunked_mb_s: mb_per_s(pixels, || {
                out.clear();
                for (y, pri) in row_pris.iter().enumerate() {
                    kernels::gather_regional(pri, frames[0].row(y as u32), &mut out);
                }
                std::hint::black_box(out.len());
            }),
        });
    }

    // RLE mask coding, both directions.
    {
        let mut out = Vec::new();
        rle::compress(&mask_bytes, pixels, &mut out);
        let compressed = out.clone();
        runs.push(Pair {
            kernel: "rle_compress",
            scalar_mb_s: mb_per_s(mask_bytes.len(), || {
                out.clear();
                rle::compress_scalar(&mask_bytes, pixels, &mut out);
                std::hint::black_box(out.len());
            }),
            chunked_mb_s: mb_per_s(mask_bytes.len(), || {
                out.clear();
                rle::compress(&mask_bytes, pixels, &mut out);
                std::hint::black_box(out.len());
            }),
        });
        let mut packed = Vec::new();
        runs.push(Pair {
            kernel: "rle_inflate",
            scalar_mb_s: mb_per_s(mask_bytes.len(), || {
                let v = rle::inflate_scalar(&compressed, pixels).expect("own compression");
                std::hint::black_box(v.len());
            }),
            chunked_mb_s: mb_per_s(mask_bytes.len(), || {
                rle::inflate_into(&compressed, pixels, &mut packed).expect("own compression");
                std::hint::black_box(packed.len());
            }),
        });
    }

    // CRC32 over the regional payload.
    runs.push(Pair {
        kernel: "crc32",
        scalar_mb_s: mb_per_s(payload.len(), || {
            std::hint::black_box(crc32::update_scalar(0xFFFF_FFFF, &payload));
        }),
        chunked_mb_s: mb_per_s(payload.len(), || {
            std::hint::black_box(crc32::update(0xFFFF_FFFF, &payload));
        }),
    });

    // Combined single-core encode→decode pipeline: the pooled chunked
    // path against the per-pixel streaming encoder + reference decoder
    // it is pinned to in the kernel-equivalence battery. This is the
    // ratio the ≥2x acceptance bar applies to.
    {
        let pool = BufferPool::new();
        let mut enc = RhythmicEncoder::with_pool(w, h, EncoderConfig::default(), pool.clone());
        let mut dec = SoftwareDecoder::with_pool(w, h, ReconstructionMode::BlockNearest, pool);
        let mut idx = 0u64;
        let chunked = mb_per_s(pixels * args.frames, || {
            for _ in 0..args.frames {
                let frame = &frames[(idx % 4) as usize];
                let e = enc.encode(frame, idx, &regions);
                let out = dec.decode_owned(e);
                dec.recycle_output(out);
                idx += 1;
            }
        });

        let mut refdec = ReferenceDecoder::new(w, h, ReconstructionMode::BlockNearest);
        let mut idx = 0u64;
        let scalar = mb_per_s(pixels * args.frames, || {
            for _ in 0..args.frames {
                let frame = &frames[(idx % 4) as usize];
                let mut stream = StreamingEncoder::begin(w, h, idx, regions.clone());
                for y in 0..h {
                    for &v in frame.row(y) {
                        let _: PixelStatus = stream.push(v);
                    }
                }
                let e = stream.finish();
                std::hint::black_box(refdec.decode(&e).as_slice().len());
                idx += 1;
            }
        });
        runs.push(Pair { kernel: "pipeline", scalar_mb_s: scalar, chunked_mb_s: chunked });
    }

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|p| {
            vec![
                p.kernel.to_string(),
                format!("{:.1}", p.scalar_mb_s),
                format!("{:.1}", p.chunked_mb_s),
                format!("{:.2}x", p.speedup()),
            ]
        })
        .collect();
    print_table(
        &format!("Hot-path kernels ({w}x{h}, pipeline x{} frames)", args.frames),
        &["kernel", "scalar MB/s", "chunked MB/s", "speedup"],
        &rows,
    );

    let mut accuracy = BTreeMap::new();
    for p in &runs {
        accuracy.insert(format!("{}_scalar_mb_s", p.kernel), p.scalar_mb_s);
        accuracy.insert(format!("{}_chunked_mb_s", p.kernel), p.chunked_mb_s);
        accuracy.insert(format!("{}_speedup", p.kernel), p.speedup());
    }
    let report = RunReport {
        schema_version: REPORT_SCHEMA_VERSION,
        task: "kernel_bench".to_string(),
        dataset: format!("{w}x{h} mixed-rhythm regions, pipeline x{} frames", args.frames),
        baseline: "scalar-reference".to_string(),
        frames: args.frames as u64,
        accuracy,
        ..RunReport::default()
    };
    let pretty = serde_json::to_string_pretty(&report).expect("report serializes");
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, pretty + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("\nwrote {}", path);
        }
        None => println!("\n{pretty}"),
    }
}

//! Reproduces paper Fig. 3: the ORB-SLAM case study. Rhythmic pixel
//! regions discard ~2/3 of the pixels of the stream while only
//! modestly increasing absolute trajectory error.
//!
//! Paper reference numbers (TUM 480p, full capture every 10 frames):
//! pixels captured drop from 100 % to ~34 %, ATE grows from
//! 43 ± 1.5 mm to 51 ± 0.9 mm.

use rpr_bench::{mean_std, print_table, Scale};
use rpr_workloads::tasks::run_slam;
use rpr_workloads::Baseline;

fn main() {
    let scale = Scale::from_env();
    let mut frame_fracs = Vec::new();
    let mut frame_ates = Vec::new();
    let mut rp_fracs = Vec::new();
    let mut rp_ates = Vec::new();

    for seq in 0..scale.sequences {
        let ds = scale.slam(seq);
        let fch = run_slam(&ds, Baseline::Fch);
        frame_fracs.push(fch.measurements.mean_captured_fraction());
        frame_ates.push(fch.ate_mm);
        let rp = run_slam(&ds, Baseline::Rp { cycle_length: 10 });
        rp_fracs.push(rp.measurements.mean_captured_fraction());
        rp_ates.push(rp.ate_mm);
    }

    let (ff, _) = mean_std(&frame_fracs);
    let (fa, fs) = mean_std(&frame_ates);
    let (rf, _) = mean_std(&rp_fracs);
    let (ra, rs) = mean_std(&rp_ates);

    print_table(
        "Fig. 3 — ORB-SLAM case study (RP10 vs frame-based)",
        &["metric", "Frame-based", "Rhythmic Pixels", "paper (frame / RP)"],
        &[
            vec![
                "pixels captured".into(),
                format!("{:.0}%", ff * 100.0),
                format!("{:.0}%", rf * 100.0),
                "100% / ~34%".into(),
            ],
            vec![
                "abs. trajectory error (mm)".into(),
                format!("{fa:.1} ± {fs:.1}"),
                format!("{ra:.1} ± {rs:.1}"),
                "43 ± 1.5 / 51 ± 0.9".into(),
            ],
        ],
    );
    println!(
        "\npixels discarded by rhythmic capture: {:.0}% (paper: ~66%)",
        (1.0 - rf / ff) * 100.0
    );
}

//! Multi-camera scaling of the staged stream executor: N pose-tracking
//! cameras multiplexed over a shared worker pool vs the same N cameras
//! run sequentially through the synchronous pipeline.
//!
//! Usage:
//!
//! ```text
//! stream_scaling [--streams N] [--backpressure block|drop-oldest|degrade]
//!                [--frames N] [--out FILE]
//! ```
//!
//! Without `--streams` the binary sweeps the baseline series
//! {1, 2, 4, 8} and, with `--out`, writes the full JSON record
//! (telemetry included) — that is how `BENCH_stream.json` at the repo
//! root is produced. Speedup over sequential is bounded by the core
//! count, which the record stores honestly as `host_cores`.

use rpr_bench::{print_table, Scale};
use rpr_stream::{BackpressureMode, StreamConfig, StreamManager, StreamTelemetry};
use rpr_workloads::tasks::run_pose_with;
use rpr_workloads::{pose_outcome, pose_spec, Baseline, PipelineConfig, PoseDataset};
use std::time::Instant;

struct Args {
    streams: Option<usize>,
    backpressure: BackpressureMode,
    frames: usize,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        streams: None,
        backpressure: BackpressureMode::Block,
        frames: Scale::from_env().frames,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--streams" => {
                args.streams = Some(value("--streams").parse().unwrap_or_else(|_| {
                    eprintln!("--streams must be a positive integer");
                    std::process::exit(2);
                }));
            }
            "--backpressure" => {
                let v = value("--backpressure");
                args.backpressure = BackpressureMode::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown backpressure mode {v:?} (block|drop-oldest|degrade)");
                    std::process::exit(2);
                });
            }
            "--frames" => {
                args.frames = value("--frames").parse().unwrap_or_else(|_| {
                    eprintln!("--frames must be a positive integer");
                    std::process::exit(2);
                });
            }
            "--out" => args.out = Some(value("--out")),
            "--help" | "-h" => {
                println!(
                    "stream_scaling [--streams N] [--backpressure block|drop-oldest|degrade] \
                     [--frames N] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One scaling measurement: N cameras staged-vs-sequential.
struct Run {
    streams: usize,
    mode: BackpressureMode,
    sequential_s: f64,
    staged_s: f64,
    aggregate_fps: f64,
    mean_map: f64,
    dropped: u64,
    telemetry: Vec<StreamTelemetry>,
}

fn measure(streams: usize, mode: BackpressureMode, frames: usize) -> Run {
    let scale = Scale::from_env();
    let baseline = Baseline::Rp { cycle_length: 5 };
    // One independent camera (different seed/trajectory) per stream.
    let datasets: Vec<PoseDataset> = (0..streams)
        .map(|i| PoseDataset::new(scale.width, scale.height, frames, 7000 + i as u64))
        .collect();
    let cfg = PipelineConfig::new(scale.width, scale.height, baseline);
    // The synchronous reference: the same cameras, one after another.
    let t0 = Instant::now();
    for ds in &datasets {
        let _ = run_pose_with(ds, cfg);
    }
    let sequential_s = t0.elapsed().as_secs_f64();

    // The staged executor: one spec per camera on a shared pool.
    let stream_cfg = StreamConfig::default().with_backpressure(mode);
    let specs = datasets.iter().map(|ds| pose_spec(ds, cfg, stream_cfg)).collect();
    let t0 = Instant::now();
    let results = StreamManager::default().run_all(specs);
    let staged_s = t0.elapsed().as_secs_f64();

    let telemetry: Vec<StreamTelemetry> = results.iter().map(|r| r.telemetry.clone()).collect();
    let aggregate_fps = StreamTelemetry::aggregate_fps(&telemetry);
    let dropped = telemetry.iter().map(|t| t.frames_dropped).sum();
    let maps: Vec<f64> = results.into_iter().map(|r| pose_outcome(r).map).collect();
    let mean_map = maps.iter().sum::<f64>() / maps.len().max(1) as f64;
    Run { streams, mode, sequential_s, staged_s, aggregate_fps, mean_map, dropped, telemetry }
}

/// Builds the JSON record for one run.
fn run_json(run: &Run) -> serde_json::Value {
    serde_json::json!({
        "streams": run.streams,
        "backpressure": run.mode.label(),
        "sequential_s": run.sequential_s,
        "staged_s": run.staged_s,
        "speedup": run.sequential_s / run.staged_s.max(1e-12),
        "aggregate_fps": run.aggregate_fps,
        "mean_map": run.mean_map,
        "frames_dropped": run.dropped,
        "per_stream": serde_json::to_value(&run.telemetry).expect("telemetry serializes"),
    })
}

fn main() {
    let args = parse_args();
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let series: Vec<usize> = match args.streams {
        Some(n) => vec![n.max(1)],
        None => vec![1, 2, 4, 8],
    };

    let runs: Vec<Run> =
        series.iter().map(|&n| measure(n, args.backpressure, args.frames)).collect();

    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.streams.to_string(),
                r.mode.label().to_string(),
                format!("{:.3}", r.sequential_s),
                format!("{:.3}", r.staged_s),
                format!("{:.2}x", r.sequential_s / r.staged_s.max(1e-12)),
                format!("{:.1}", r.aggregate_fps),
                format!("{:.3}", r.mean_map),
                r.dropped.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!("Stream scaling ({host_cores} host cores)"),
        &["streams", "mode", "sequential s", "staged s", "speedup", "agg fps", "mAP", "dropped"],
        &rows,
    );

    let record = serde_json::json!({
        "bench": "stream_scaling",
        "host_cores": host_cores,
        "frames_per_stream": args.frames,
        "runs": runs.iter().map(run_json).collect::<Vec<_>>(),
    });
    let pretty = serde_json::to_string_pretty(&record).expect("record serializes");
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, pretty + "\n") {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("\nwrote {}", path);
        }
        None => println!("\n{pretty}"),
    }
}

//! Renders the paper's appendix figures (Figs. 10–15) as actual image
//! files: for one cycle of each workload, the decoded frame the vision
//! algorithm sees, side by side with the original — black areas are
//! the discarded non-regional pixels, exactly like the paper's frame
//! strips.
//!
//! Output: `target/appendix/<task>_frame<N>_<pct>.pgm`
//! (open with any image viewer; PGM is plain Netpbm).

use rpr_bench::Scale;
use rpr_core::{
    CycleLengthPolicy, Feature, FeaturePolicy, PolicyContext, RegionRuntime,
    SoftwareDecoder,
};
use rpr_frame::write_pgm;
use rpr_vision::{OrbConfig, OrbDetector};
use rpr_workloads::datasets::VideoDataset;
use std::fs::File;
use std::path::PathBuf;

fn main() -> std::io::Result<()> {
    let scale = Scale::from_env();
    let out_dir = PathBuf::from("target/appendix");
    std::fs::create_dir_all(&out_dir)?;

    let ds = scale.slam(0);
    let (w, h) = (ds.width(), ds.height());
    let cycle = 6u64;
    let mut runtime = RegionRuntime::new(w, h);
    let mut decoder = SoftwareDecoder::new(w, h);
    let mut policy = CycleLengthPolicy::new(cycle, FeaturePolicy::new());
    let orb = OrbDetector::new(OrbConfig { n_features: 40, ..OrbConfig::default() });
    let mut features: Vec<Feature> = Vec::new();

    println!("writing appendix frames to {}", out_dir.display());
    for t in 0..=(cycle as usize) {
        let raw = ds.frame(t);
        runtime.apply_policy(
            &mut policy,
            PolicyContext { features: features.clone(), ..PolicyContext::default() },
        );
        let encoded = runtime.encode_frame(&raw);
        let decoded = decoder.decode(&encoded);
        let pct = (encoded.captured_fraction() * 100.0).round() as u32;

        let name = out_dir.join(format!("slam_frame{}_{}pct.pgm", t + 1, pct));
        write_pgm(&decoded, &mut File::create(&name)?)?;
        if t == 0 {
            let orig = out_dir.join("slam_original.pgm");
            write_pgm(&raw, &mut File::create(&orig)?)?;
        }
        println!("  frame {} ({}%): {}", t + 1, pct, name.display());

        // Features for the next frame's regions, as in the case study;
        // displacement varies per feature the way real tracked features
        // do, so the regions' skip phases stagger across frames.
        features = orb
            .detect(&decoded)
            .iter()
            .enumerate()
            .map(|(i, f)| Feature {
                x: f.keypoint.x,
                y: f.keypoint.y,
                size: f.keypoint.size,
                octave: f.keypoint.octave,
                displacement: 1.0 + (i % 5) as f64 * 1.5,
            })
            .collect();
    }
    println!("\ncompare slam_frame1 (100%) against the intermediate frames: only the\nfeature neighbourhoods survive, at their own stride/skip rhythms (paper Fig. 10).");
    Ok(())
}

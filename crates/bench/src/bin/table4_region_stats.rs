//! Reproduces paper Table 4: observed region-label statistics for each
//! task under the rhythmic (RP10) configuration — average number of
//! regions per frame, region-size range, stride range, and temporal
//! rate range.
//!
//! Paper reference: V-SLAM averages 973 regions (70x70–230x230,
//! stride 1–4, 33–100 ms); face detection 70x63–270x228 (stride 1–2);
//! pose estimation 161x248–324x512 (stride 2–4). Absolute sizes scale
//! with frame resolution; the structure (hundreds of small regions for
//! SLAM, a handful of person/face-sized regions otherwise) is the
//! reproduced claim.

use rpr_bench::{print_table, Scale};
use rpr_workloads::tasks::{run_face, run_pose, run_slam};
use rpr_workloads::{Baseline, RegionStats};

fn row(task: &str, stats: Option<RegionStats>) -> Vec<String> {
    match stats {
        Some(s) => vec![
            task.into(),
            format!("{:.0}", s.avg_regions),
            format!("{}x{}", s.min_size.0, s.min_size.1),
            format!("{}x{}", s.max_size.0, s.max_size.1),
            format!("{}..{}", s.min_stride, s.max_stride),
            format!("{:.0}..{:.0} ms", s.min_rate_ms, s.max_rate_ms),
        ],
        None => vec![task.into(), "-".into(), "-".into(), "-".into(), "-".into(), "-".into()],
    }
}

fn main() {
    let scale = Scale::from_env();
    let rp = Baseline::Rp { cycle_length: 10 };

    let slam = run_slam(&scale.slam(0), rp);
    let pose = run_pose(&scale.pose(0), rp);
    let face = run_face(&scale.face(0), rp);

    print_table(
        "Table 4 — observed region statistics (RP10)",
        &["task", "avg #regions", "min size", "max size", "stride", "rate"],
        &[
            row("Visual SLAM", slam.measurements.region_stats),
            row("Human pose estimation", pose.measurements.region_stats),
            row("Face detection", face.measurements.region_stats),
        ],
    );
    println!(
        "\npaper: SLAM avg 973 regions 70x70..230x230 stride 1..4 rate 33..100 ms;\n       face 70x63..270x228 stride 1..2; pose 161x248..324x512 stride 2..4"
    );
}

//! RunReport assembly: the glue between the per-layer telemetry
//! producers (`rpr-workloads`, `rpr-stream`, `rpr-memsim`, `rpr-hwsim`)
//! and the unified [`RunReport`] schema in `rpr-trace`.
//!
//! `rpr-trace` sits at the bottom of the dependency graph and cannot
//! name the producers' types, so the conversions live here, above
//! everything. The `rpr-report` binary is the CLI front end.

use rpr_hwsim::{DesignKind, PowerModel};
use rpr_memsim::{EnergyModel, FrameActivity};
use rpr_stream::{StreamConfig, StreamTelemetry};
use rpr_trace::{
    EnergySection, HwSection, MemorySection, MetricsRegistry, RegionSection, RunReport,
    StageSection, StreamSection, TraceEvent,
};
use rpr_workloads::stats::RegionStats;
use rpr_workloads::{
    run_face_staged, run_pose_staged, run_slam_staged, Baseline, H264Quality, Measurements,
    PipelineConfig,
};

use crate::Scale;

/// Which workload a report run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportTask {
    /// Multi-face detection.
    Face,
    /// Pose (single-subject) estimation.
    Pose,
    /// Visual SLAM / odometry.
    Slam,
}

impl ReportTask {
    /// Parses a task name (`face`, `pose`, `slam`).
    pub fn parse(s: &str) -> Option<ReportTask> {
        match s {
            "face" => Some(ReportTask::Face),
            "pose" => Some(ReportTask::Pose),
            "slam" => Some(ReportTask::Slam),
            _ => None,
        }
    }

    /// The task's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            ReportTask::Face => "face",
            ReportTask::Pose => "pose",
            ReportTask::Slam => "slam",
        }
    }
}

/// Parses a baseline spec: `fch`, `fcl<factor>`, `rp<cycle>`, or
/// `multiroi<max>` (e.g. `rp10`, `fcl4`, `multiroi16`).
pub fn parse_baseline(s: &str) -> Option<Baseline> {
    if s == "fch" {
        return Some(Baseline::Fch);
    }
    if let Some(rest) = s.strip_prefix("fcl") {
        return rest.parse().ok().map(|factor| Baseline::Fcl { factor });
    }
    if let Some(rest) = s.strip_prefix("rp") {
        return rest.parse().ok().map(|cycle_length| Baseline::Rp { cycle_length });
    }
    if let Some(rest) = s.strip_prefix("multiroi") {
        return rest
            .parse()
            .ok()
            .map(|max_regions| Baseline::MultiRoi { max_regions, cycle_length: 10 });
    }
    match s {
        "h264" | "h264med" => Some(Baseline::H264 { quality: H264Quality::Medium }),
        "h264low" => Some(Baseline::H264 { quality: H264Quality::Low }),
        "h264high" => Some(Baseline::H264 { quality: H264Quality::High }),
        _ => None,
    }
}

/// Renders a baseline back into its spec string.
pub fn baseline_spec(b: Baseline) -> String {
    match b {
        Baseline::Fch => "fch".to_string(),
        Baseline::Fcl { factor } => format!("fcl{factor}"),
        Baseline::Rp { cycle_length } => format!("rp{cycle_length}"),
        Baseline::MultiRoi { max_regions, .. } => format!("multiroi{max_regions}"),
        Baseline::H264 { quality } => match quality {
            H264Quality::Medium => "h264med".to_string(),
            H264Quality::Low => "h264low".to_string(),
            H264Quality::High => "h264high".to_string(),
        },
    }
}

/// Converts stream telemetry into its report section, estimating stage
/// percentiles from the latency histograms.
pub fn stream_section(t: &StreamTelemetry) -> StreamSection {
    StreamSection {
        stream_id: t.stream_id as u64,
        frames_in: t.frames_in,
        frames_out: t.frames_out,
        frames_dropped: t.frames_dropped,
        wall_time_s: t.wall_time_s,
        end_to_end_fps: t.end_to_end_fps,
        stages: t
            .stages
            .iter()
            .map(|s| StageSection {
                name: s.name.clone(),
                frames: s.frames,
                degraded_frames: s.degraded_frames,
                mean_latency_us: s.latency.mean_s() * 1e6,
                p50_us: s.latency.p50_us(),
                p90_us: s.latency.p90_us(),
                p99_us: s.latency.p99_us(),
            })
            .collect(),
    }
}

/// Converts workload measurements into the memory section.
pub fn memory_section(m: &Measurements) -> MemorySection {
    MemorySection {
        write_bytes: m.traffic.write_bytes,
        read_bytes: m.traffic.read_bytes,
        metadata_bytes: m.traffic.metadata_bytes,
        bytes_per_frame: m.traffic.bytes_per_frame,
        throughput_mb_s: m.traffic.throughput_mb_s,
        mean_footprint_bytes: m.mean_footprint_bytes,
        peak_footprint_bytes: m.peak_footprint_bytes,
        mean_captured_fraction: m.mean_captured_fraction(),
    }
}

/// Converts region statistics into their report section.
pub fn region_section(r: &RegionStats) -> RegionSection {
    RegionSection {
        avg_regions: r.avg_regions,
        min_size: r.min_size,
        max_size: r.max_size,
        min_stride: r.min_stride,
        max_stride: r.max_stride,
        min_rate_ms: r.min_rate_ms,
        max_rate_ms: r.max_rate_ms,
        frames: r.frames,
    }
}

/// Derives the energy section by replaying the run's measured DRAM
/// traffic through the paper-constant [`EnergyModel`].
pub fn energy_section(
    model: &EnergyModel,
    cfg: &PipelineConfig,
    m: &Measurements,
    frames: u64,
) -> EnergySection {
    let bpp = cfg.format.bytes_per_pixel() as u64;
    let full_px = u64::from(cfg.width) * u64::from(cfg.height);
    let frames_nz = frames.max(1);
    // Mean per-frame activity: the sensor scans and streams every pixel
    // (the encoder sits behind the ISP); DRAM moves what was measured.
    let activity = FrameActivity {
        sensed_px: full_px,
        csi_px: full_px,
        dram_written_px: m.traffic.write_bytes / bpp.max(1) / frames_nz,
        dram_read_px: m.traffic.read_bytes / bpp.max(1) / frames_nz,
        macs: 0,
    };
    let per_frame = model.frame_energy(&activity);
    let n = frames as f64;
    EnergySection {
        sensing_pj: per_frame.sensing_pj * n,
        interface_pj: per_frame.interface_pj * n,
        dram_pj: per_frame.dram_pj * n,
        compute_pj: per_frame.compute_pj * n,
        total_mj: per_frame.total_mj() * n,
        mj_per_frame: per_frame.total_mj(),
        power_mw: model.power_mw(&activity, cfg.fps),
    }
}

/// Derives the hardware section from the encoder work counters and the
/// ZCU102-calibrated power model.
pub fn hw_section(cfg: &PipelineConfig, m: &Measurements) -> HwSection {
    let power = PowerModel::zcu102();
    let (keep, cmp) = m
        .encoder
        .as_ref()
        .map(|e| (e.keep_ratio(), e.comparisons_per_pixel()))
        .unwrap_or((1.0, 0.0));
    HwSection {
        encoder_mw: power.encoder_power(DesignKind::HybridEncoder { regions: 1600 }).total_mw(),
        decoder_mw: power.decoder_power(cfg.width, keep).total_mw(),
        comparisons_per_pixel: cmp,
        keep_ratio: keep,
    }
}

/// Everything one instrumented workload run produced: the unified
/// report plus the raw trace events (for Chrome-trace export).
#[derive(Debug, Clone)]
pub struct ReportRun {
    /// The assembled report.
    pub report: RunReport,
    /// The trace events drained from the run.
    pub events: Vec<TraceEvent>,
}

/// Runs one workload with tracing on and assembles its [`RunReport`].
///
/// Uses sequence 0 of `scale`'s dataset, the staged executor in
/// blocking mode, and the default pipeline configuration for
/// `baseline`.
pub fn run_workload_report(task: ReportTask, baseline: Baseline, scale: &Scale) -> ReportRun {
    let cfg = PipelineConfig::new(scale.width, scale.height, baseline);
    let stream_cfg = StreamConfig::blocking();

    let _ = rpr_trace::drain(); // discard events from earlier runs
    rpr_trace::enable();
    let (accuracy, measurements, telemetry): (Vec<(&str, f64)>, Measurements, StreamTelemetry) =
        match task {
            ReportTask::Face => {
                let ds = scale.face(0);
                let (out, tel) = run_face_staged(&ds, cfg, stream_cfg);
                (vec![("map", out.map)], out.measurements, tel)
            }
            ReportTask::Pose => {
                let ds = scale.pose(0);
                let (out, tel) = run_pose_staged(&ds, cfg, stream_cfg);
                (vec![("map", out.map)], out.measurements, tel)
            }
            ReportTask::Slam => {
                let ds = scale.slam(0);
                let (out, tel) = run_slam_staged(&ds, cfg, stream_cfg);
                (
                    vec![
                        ("ate_mm", out.ate_mm),
                        ("rpe_translational_mm", out.rpe_translational_mm),
                        ("rpe_rotational_deg", out.rpe_rotational_deg),
                        ("tracking_failures", f64::from(out.tracking_failures)),
                    ],
                    out.measurements,
                    tel,
                )
            }
        };
    rpr_trace::disable();
    let events = rpr_trace::drain();

    let model = EnergyModel::paper_defaults();
    let frames = telemetry.frames_out;
    let mut reg =
        MetricsRegistry::new(task.name(), &format!("synthetic-{}x{}x{}", scale.width, scale.height, scale.frames), &baseline_spec(baseline));
    reg.set_run_shape(frames, cfg.fps);
    for (name, value) in accuracy {
        reg.set_accuracy(name, value);
    }
    reg.set_memory(memory_section(&measurements))
        .set_energy(energy_section(&model, &cfg, &measurements, frames))
        .set_hw(hw_section(&cfg, &measurements))
        .add_stream(stream_section(&telemetry))
        .set_region_stats(measurements.region_stats.as_ref().map(region_section))
        .ingest_label_pixels(
            &events,
            cfg.format.bytes_per_pixel() as u64,
            model.write_path_pj() + model.read_path_pj(),
            measurements.traffic.write_bytes + measurements.traffic.read_bytes,
        );
    ReportRun { report: reg.finish(), events }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global: tests that run workloads under
    // tracing must not interleave.
    fn serialized() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn baseline_specs_round_trip() {
        for spec in ["fch", "fcl4", "rp5", "rp10", "multiroi16"] {
            let b = parse_baseline(spec).unwrap();
            assert_eq!(baseline_spec(b), spec);
        }
        assert!(parse_baseline("rpx").is_none());
        assert!(parse_baseline("").is_none());
    }

    #[test]
    fn report_run_produces_attribution_and_valid_trace() {
        let _gate = serialized();
        let scale = Scale { width: 96, height: 72, frames: 8, sequences: 1 };
        let run = run_workload_report(
            ReportTask::Face,
            Baseline::Rp { cycle_length: 4 },
            &scale,
        );
        let r = &run.report;
        assert_eq!(r.task, "face");
        assert_eq!(r.baseline, "rp4");
        assert_eq!(r.frames, 8);
        assert!(r.memory.write_bytes > 0);
        assert!(r.energy.total_mj > 0.0);
        assert!(r.hw.encoder_mw > 0.0);
        assert_eq!(r.streams.len(), 1);
        assert_eq!(r.streams[0].stages.len(), 3);
        assert!(
            !r.labels.is_empty(),
            "a traced rhythmic run must attribute pixels to labels"
        );
        let attributed: u64 = r.labels.iter().map(|l| l.dram_bytes).sum();
        assert!(attributed + r.unattributed_bytes >= r.memory.write_bytes);
        // The trace must contain spans from every instrumented layer
        // and parse back as Chrome trace JSON.
        for name in [
            rpr_trace::names::ENCODE,
            rpr_trace::names::STAGE_TASK,
            rpr_trace::names::PIPELINE_FRAME,
            rpr_trace::names::DRAM_WRITE_BYTES,
        ] {
            assert!(run.events.iter().any(|e| e.name == name), "missing {name}");
        }
        let json = rpr_trace::chrome_trace_json(&run.events);
        let back = serde_json::from_str::<serde_json::Value>(&json).unwrap();
        assert!(back.as_map().unwrap().iter().any(|(k, _)| k == "traceEvents"));
    }

    #[test]
    fn fch_report_has_no_labels_but_full_capture() {
        let _gate = serialized();
        let scale = Scale { width: 96, height: 72, frames: 6, sequences: 1 };
        let run = run_workload_report(ReportTask::Pose, Baseline::Fch, &scale);
        assert!(run.report.labels.is_empty());
        assert!(run.report.region_stats.is_none());
        assert_eq!(run.report.hw.keep_ratio, 1.0);
        assert!((run.report.memory.mean_captured_fraction - 1.0).abs() < 1e-9);
    }
}

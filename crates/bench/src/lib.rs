//! Shared plumbing for the paper-reproduction binaries: experiment
//! scale selection, dataset construction, and table formatting.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper; all of them honour the `RPR_SCALE` environment variable:
//!
//! * `RPR_SCALE=quick` (default) — small frames, short sequences;
//!   finishes in seconds and preserves every qualitative shape;
//! * `RPR_SCALE=full` — 640x480-class frames and longer sequences for
//!   tighter numbers.

#![deny(missing_docs)]

pub mod report;

use rpr_workloads::{FaceDataset, PoseDataset, SlamDataset};

/// Sequence dimensions for one experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Frame width.
    pub width: u32,
    /// Frame height.
    pub height: u32,
    /// Frames per sequence.
    pub frames: usize,
    /// Number of independent sequences (seeds) to average over.
    pub sequences: usize,
}

impl Scale {
    /// Reads `RPR_SCALE` from the environment (`quick` when unset or
    /// unrecognized).
    pub fn from_env() -> Scale {
        match std::env::var("RPR_SCALE").as_deref() {
            Ok("full") => Scale { width: 640, height: 480, frames: 121, sequences: 3 },
            _ => Scale { width: 256, height: 192, frames: 46, sequences: 2 },
        }
    }

    /// The SLAM dataset for sequence `seq` at this scale.
    pub fn slam(&self, seq: usize) -> SlamDataset {
        SlamDataset::new(self.width, self.height, self.frames, 1000 + seq as u64)
    }

    /// The pose dataset for sequence `seq` at this scale.
    pub fn pose(&self, seq: usize) -> PoseDataset {
        PoseDataset::new(self.width, self.height, self.frames, 2000 + seq as u64)
    }

    /// The face dataset for sequence `seq` at this scale.
    pub fn face(&self, seq: usize) -> FaceDataset {
        FaceDataset::new(self.width, self.height, self.frames, 4, 3000 + seq as u64)
    }
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var =
        values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

/// Prints a fixed-width table: a header row followed by data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    println!("\n=== {title} ===");
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8) + 2))
            .collect::<String>()
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("{}", "-".repeat(widths.iter().map(|w| w + 2).sum()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_workloads::datasets::VideoDataset;

    #[test]
    fn quick_scale_is_default() {
        let s = Scale::from_env();
        assert!(s.width >= 128 && s.frames >= 20);
    }

    #[test]
    fn datasets_match_scale() {
        let s = Scale { width: 128, height: 96, frames: 10, sequences: 1 };
        assert_eq!(s.slam(0).width(), 128);
        assert_eq!(s.pose(0).len(), 10);
        assert_eq!(s.face(0).height(), 96);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0]);
        assert!((m - 3.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
        assert!(mean_std(&[]).0.is_nan());
    }
}

//! Property tests for the memory and energy models.

use proptest::prelude::*;
use rpr_memsim::{
    placement_traffic, DramConfig, DramModel, DramlessAnalysis, EncoderPlacement,
    EnergyModel, FrameActivity, FramebufferPool,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Energy is linear: the energy of the sum of two activities is the
    /// sum of their energies.
    #[test]
    fn energy_is_linear(
        a in 0u64..1_000_000, b in 0u64..1_000_000,
        c in 0u64..1_000_000, d in 0u64..1_000_000,
    ) {
        let m = EnergyModel::paper_defaults();
        let act1 = FrameActivity { sensed_px: a, csi_px: b, dram_written_px: c, dram_read_px: d, macs: a };
        let act2 = FrameActivity { sensed_px: d, csi_px: c, dram_written_px: b, dram_read_px: a, macs: b };
        let combined = FrameActivity {
            sensed_px: a + d,
            csi_px: b + c,
            dram_written_px: c + b,
            dram_read_px: d + a,
            macs: a + b,
        };
        let sum = m.frame_energy(&act1).total_pj() + m.frame_energy(&act2).total_pj();
        prop_assert!((m.frame_energy(&combined).total_pj() - sum).abs() < 1e-3);
    }

    /// Burst counts: sequential access of n bytes never issues more
    /// bursts than scattered access of the same bytes in pieces.
    #[test]
    fn sequential_never_beats_scattered(chunks in proptest::collection::vec(1u64..5000, 1..20)) {
        let total: u64 = chunks.iter().sum();
        let mut seq = DramModel::new(DramConfig::default());
        seq.write_sequential(0, total);
        let mut scat = DramModel::new(DramConfig::default());
        let placed: Vec<(u64, u64)> = chunks
            .iter()
            .enumerate()
            .map(|(i, &len)| (i as u64 * 1_000_000, len))
            .collect();
        scat.write_scattered(&placed);
        prop_assert!(seq.stats().write_bursts <= scat.stats().write_bursts);
        prop_assert_eq!(seq.stats().bytes_written, scat.stats().bytes_written);
        prop_assert!(seq.stats().row_activations <= scat.stats().row_activations);
    }

    /// Framebuffer pool: current bytes equal the sum of the last
    /// `window` admissions; the peak never decreases.
    #[test]
    fn pool_window_sum(sizes in proptest::collection::vec(0u64..100_000, 1..24), window in 1usize..6) {
        let mut pool = FramebufferPool::new(window);
        let mut peak_seen = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            pool.admit_raw(i as u64, s);
            let expected: u64 = sizes[i.saturating_sub(window - 1)..=i].iter().sum();
            prop_assert_eq!(pool.current_bytes(), expected);
            peak_seen = peak_seen.max(expected);
            prop_assert_eq!(pool.peak_bytes(), peak_seen);
        }
    }

    /// DRAM-less: fit fraction and avoided traffic are monotone in the
    /// budget, and the recommended budget achieves its target.
    #[test]
    fn dramless_monotone(sizes in proptest::collection::vec(1u64..1_000_000, 1..40),
                         b1 in 0u64..1_000_000, b2 in 0u64..1_000_000) {
        let analysis = DramlessAnalysis::new(&sizes);
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        let r_lo = analysis.evaluate(lo);
        let r_hi = analysis.evaluate(hi);
        prop_assert!(r_lo.fit_fraction <= r_hi.fit_fraction);
        prop_assert!(r_lo.bytes_on_chip <= r_hi.bytes_on_chip);
        let budget = analysis.budget_for_fit_fraction(0.5).unwrap();
        prop_assert!(analysis.evaluate(budget).fit_fraction >= 0.5);
    }

    /// Encoder placement: in-sensor CSI traffic never exceeds post-ISP
    /// CSI traffic, and DDR traffic is placement independent.
    #[test]
    fn placement_invariants(frame_px in 1u64..10_000_000, keep in 0.0f64..1.0) {
        let kept = (frame_px as f64 * keep) as u64;
        let meta = frame_px / 12;
        let post = placement_traffic(EncoderPlacement::PostIsp, frame_px, kept, meta);
        let in_s = placement_traffic(EncoderPlacement::InSensor, frame_px, kept, meta);
        prop_assert!(in_s.csi_px <= post.csi_px + meta);
        prop_assert_eq!(post.ddr_write_px, in_s.ddr_write_px);
    }
}

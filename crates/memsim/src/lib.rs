//! DRAM framebuffer, pixel-traffic, and energy simulation.
//!
//! Reimplements the paper's two measurement instruments:
//!
//! * the **throughput simulator** (§5.3.1) — "takes the region label
//!   specification per frame … counts the number of pixel transactions
//!   and directly reports the read/write pixel throughput in bytes/sec";
//!   here [`TrafficRecorder`] plus the burst-level [`DramModel`];
//! * the **first-order energy model** (Appendix A.2, Table 6) —
//!   per-pixel energies for sensing, interface communication, DRAM
//!   storage, and MAC compute; here [`EnergyModel`].
//!
//! [`FramebufferPool`] tracks the resident encoded-frame buffers over
//! time for the memory-footprint axis of the paper's Fig. 8.

#![deny(missing_docs)]

mod dram;
mod energy;
mod framebuffer;
mod placement;
mod sram;
mod traffic;

pub use dram::{DmaWriter, DramConfig, DramModel, DramStats};
pub use energy::{EnergyBreakdown, EnergyModel, FrameActivity};
pub use framebuffer::{FramebufferPool, FootprintSample};
pub use placement::{
    in_sensor_saving_mj, placement_energy_mj, placement_traffic, EncoderPlacement,
    PlacementTraffic,
};
pub use sram::{DramlessAnalysis, DramlessReport};
pub use traffic::{FrameTraffic, TrafficRecorder, TrafficSummary};

use rpr_core::EncodedFrame;
use rpr_frame::PixelFormat;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One sample of the resident framebuffer footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FootprintSample {
    /// Frame index at which the sample was taken.
    pub frame_idx: u64,
    /// Resident bytes after that frame was admitted.
    pub bytes: u64,
}

/// Tracks the DRAM bytes held by the encoded-frame buffers over time —
/// the memory-footprint axis of Fig. 8 ("we measure the size of encoded
/// frame buffers over time", §5.3.1).
///
/// The pool retains a sliding window of frames (default 4, matching the
/// decoder's history scratchpad) and records the footprint after each
/// admission.
///
/// # Example
///
/// ```
/// use rpr_memsim::FramebufferPool;
///
/// let mut pool = FramebufferPool::new(4);
/// pool.admit_raw(0, 1000);
/// pool.admit_raw(1, 1000);
/// assert_eq!(pool.current_bytes(), 2000);
/// assert_eq!(pool.peak_bytes(), 2000);
/// ```
#[derive(Debug, Clone)]
pub struct FramebufferPool {
    window: usize,
    resident: VecDeque<(u64, u64)>,
    samples: Vec<FootprintSample>,
    peak: u64,
}

impl FramebufferPool {
    /// Creates a pool holding at most `window` frames at once.
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must hold at least one frame");
        FramebufferPool {
            window,
            resident: VecDeque::new(),
            samples: Vec::new(),
            peak: 0,
        }
    }

    /// Admits an encoded frame: payload scaled by `format` plus
    /// metadata bytes. Evicts the oldest frame beyond the window.
    pub fn admit_encoded(&mut self, frame: &EncodedFrame, format: PixelFormat) {
        let bytes = (frame.pixel_count() * format.bytes_per_pixel()
            + frame.metadata_bytes()) as u64;
        self.admit_raw(frame.frame_idx(), bytes);
    }

    /// Admits a frame of `bytes` (raw baseline frames).
    pub fn admit_raw(&mut self, frame_idx: u64, bytes: u64) {
        self.resident.push_back((frame_idx, bytes));
        while self.resident.len() > self.window {
            self.resident.pop_front();
        }
        let current = self.current_bytes();
        self.peak = self.peak.max(current);
        self.samples.push(FootprintSample { frame_idx, bytes: current });
    }

    /// Bytes currently resident.
    pub fn current_bytes(&self) -> u64 {
        self.resident.iter().map(|&(_, b)| b).sum()
    }

    /// Largest footprint ever observed.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Mean footprint across all samples (the paper reports "the average
    /// frame buffer size reduces by roughly 50 %").
    pub fn mean_bytes(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|s| s.bytes as f64).sum::<f64>()
                / self.samples.len() as f64
        }
    }

    /// The footprint time series.
    pub fn samples(&self) -> &[FootprintSample] {
        &self.samples
    }

    /// Number of frames currently resident.
    pub fn resident_frames(&self) -> usize {
        self.resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::{RegionLabel, RegionList, RhythmicEncoder};
    use rpr_frame::Plane;

    #[test]
    fn window_evicts_oldest() {
        let mut pool = FramebufferPool::new(2);
        pool.admit_raw(0, 100);
        pool.admit_raw(1, 200);
        pool.admit_raw(2, 300);
        assert_eq!(pool.resident_frames(), 2);
        assert_eq!(pool.current_bytes(), 500);
        assert_eq!(pool.peak_bytes(), 500);
    }

    #[test]
    fn peak_survives_shrinking() {
        let mut pool = FramebufferPool::new(2);
        pool.admit_raw(0, 1000);
        pool.admit_raw(1, 1000);
        pool.admit_raw(2, 10);
        pool.admit_raw(3, 10);
        assert_eq!(pool.current_bytes(), 20);
        assert_eq!(pool.peak_bytes(), 2000);
    }

    #[test]
    fn mean_covers_all_samples() {
        let mut pool = FramebufferPool::new(4);
        pool.admit_raw(0, 100); // resident 100
        pool.admit_raw(1, 300); // resident 400
        assert!((pool.mean_bytes() - 250.0).abs() < 1e-9);
        assert_eq!(pool.samples().len(), 2);
    }

    #[test]
    fn encoded_admission_counts_metadata() {
        let frame = Plane::from_fn(16, 16, |x, _| x as u8);
        let regions =
            RegionList::new(16, 16, vec![RegionLabel::new(0, 0, 8, 8, 1, 1)]).unwrap();
        let enc = RhythmicEncoder::new(16, 16).encode(&frame, 0, &regions);
        let mut pool = FramebufferPool::new(4);
        pool.admit_encoded(&enc, PixelFormat::Gray8);
        assert_eq!(pool.current_bytes(), (64 + enc.metadata_bytes()) as u64);
    }

    #[test]
    fn empty_pool_is_zero() {
        let pool = FramebufferPool::new(4);
        assert_eq!(pool.current_bytes(), 0);
        assert_eq!(pool.mean_bytes(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let _ = FramebufferPool::new(0);
    }
}

use serde::{Deserialize, Serialize};

/// Per-pixel energy constants of the vision pipeline (paper Table 6 and
/// Appendix A.2). All values in picojoules.
///
/// The paper's accounting: sensing ≈ 595 pJ/px; CSI interface ≈ 1 nJ/px;
/// DDR interface ≈ 3 nJ/px for a write+read round trip (modeled here as
/// 1.5 nJ per direction); DRAM storage ≈ 677 pJ/px for write+read
/// (400 pJ write, 300 pJ read, rounded); compute ≈ 4.6 pJ per MAC.
///
/// # Example
///
/// ```
/// use rpr_memsim::{EnergyModel, FrameActivity};
///
/// let model = EnergyModel::paper_defaults();
/// let frame = FrameActivity {
///     sensed_px: 1000,
///     csi_px: 1000,
///     dram_written_px: 1000,
///     dram_read_px: 1000,
///     macs: 0,
/// };
/// let e = model.frame_energy(&frame);
/// assert!(e.total_mj() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Pixel array + read-out + analog chain, pJ per sensed pixel.
    pub sensing_pj: f64,
    /// MIPI CSI interface, pJ per pixel moved sensor → SoC.
    pub csi_pj: f64,
    /// DDR interface, pJ per pixel per direction (×2 for a round trip
    /// gives the paper's ~3 nJ).
    pub ddr_interface_pj: f64,
    /// DRAM cell write, pJ per pixel.
    pub dram_write_pj: f64,
    /// DRAM cell read, pJ per pixel.
    pub dram_read_pj: f64,
    /// One multiply-accumulate, pJ.
    pub mac_pj: f64,
}

impl EnergyModel {
    /// The constants the paper uses (Table 6 / Appendix A.2).
    pub fn paper_defaults() -> Self {
        EnergyModel {
            sensing_pj: 595.0,
            csi_pj: 1000.0,
            ddr_interface_pj: 1500.0,
            dram_write_pj: 400.0,
            dram_read_pj: 300.0,
            mac_pj: 4.6,
        }
    }

    /// Energy to write one pixel to DRAM, including the interface hop.
    pub fn write_path_pj(&self) -> f64 {
        self.dram_write_pj + self.ddr_interface_pj
    }

    /// Energy to read one pixel from DRAM, including the interface hop.
    pub fn read_path_pj(&self) -> f64 {
        self.dram_read_pj + self.ddr_interface_pj
    }

    /// Full per-frame energy breakdown for an activity record.
    pub fn frame_energy(&self, activity: &FrameActivity) -> EnergyBreakdown {
        EnergyBreakdown {
            sensing_pj: self.sensing_pj * activity.sensed_px as f64,
            interface_pj: self.csi_pj * activity.csi_px as f64
                + self.ddr_interface_pj
                    * (activity.dram_written_px + activity.dram_read_px) as f64,
            dram_pj: self.dram_write_pj * activity.dram_written_px as f64
                + self.dram_read_pj * activity.dram_read_px as f64,
            compute_pj: self.mac_pj * activity.macs as f64,
        }
    }

    /// Average power in milliwatts for a stream of identical frames at
    /// `fps`.
    ///
    /// A non-finite or non-positive rate (e.g. derived from a
    /// zero-wall-time run) yields 0.0 rather than propagating
    /// `inf`/`NaN` into reports.
    pub fn power_mw(&self, activity: &FrameActivity, fps: f64) -> f64 {
        if !fps.is_finite() || fps <= 0.0 {
            return 0.0;
        }
        self.frame_energy(activity).total_mj() * fps
    }

    /// Energy saved per frame (mJ) by a reduced activity relative to a
    /// baseline — the paper's "18 mJ per frame for RP10 on V-SLAM".
    pub fn saving_mj(&self, baseline: &FrameActivity, reduced: &FrameActivity) -> f64 {
        self.frame_energy(baseline).total_mj() - self.frame_energy(reduced).total_mj()
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper_defaults()
    }
}

/// What one frame did, in pixels and MACs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameActivity {
    /// Pixels exposed and read out of the sensor array.
    pub sensed_px: u64,
    /// Pixels moved over the CSI link into the SoC.
    pub csi_px: u64,
    /// Pixels (payload + metadata, in pixel-equivalents) written to DRAM.
    pub dram_written_px: u64,
    /// Pixels read back from DRAM by the vision consumer.
    pub dram_read_px: u64,
    /// Multiply-accumulate operations executed on the frame.
    pub macs: u64,
}

/// Energy of one frame, split by pipeline component (Table 6's rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Sensing energy, pJ.
    pub sensing_pj: f64,
    /// CSI + DDR interface energy, pJ.
    pub interface_pj: f64,
    /// DRAM cell access energy, pJ.
    pub dram_pj: f64,
    /// Compute energy, pJ.
    pub compute_pj: f64,
}

impl EnergyBreakdown {
    /// Total frame energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.sensing_pj + self.interface_pj + self.dram_pj + self.compute_pj
    }

    /// Total frame energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() / 1.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PX_4K: u64 = 3840 * 2160;

    fn full_frame_activity() -> FrameActivity {
        FrameActivity {
            sensed_px: PX_4K,
            csi_px: PX_4K,
            dram_written_px: PX_4K,
            dram_read_px: PX_4K,
            macs: 0,
        }
    }

    #[test]
    fn paper_constants_sum_to_table6_storage() {
        let m = EnergyModel::paper_defaults();
        // Table 6: storage (write + read) ≈ 677 pJ — we use the round
        // 700 split the appendix quotes (400 write, 300 read).
        assert!((m.dram_write_pj + m.dram_read_pj - 700.0).abs() < 1e-9);
        // DDR round trip ≈ 3 nJ.
        assert!((2.0 * m.ddr_interface_pj - 3000.0).abs() < 1e-9);
    }

    #[test]
    fn rp10_saving_reproduces_18mj_550mw() {
        // §6.2: RP10 on V-SLAM at 4K discards ~58 % of DRAM pixel
        // traffic, saving ~18 mJ/frame and ~550 mW at 30 fps.
        let m = EnergyModel::paper_defaults();
        let baseline = full_frame_activity();
        let kept = (PX_4K as f64 * 0.42) as u64;
        let reduced = FrameActivity {
            dram_written_px: kept,
            dram_read_px: kept,
            ..baseline
        };
        let saving = m.saving_mj(&baseline, &reduced);
        assert!((15.0..21.0).contains(&saving), "saving {saving} mJ");
        let dpower = m.power_mw(&baseline, 30.0) - m.power_mw(&reduced, 30.0);
        assert!((450.0..650.0).contains(&dpower), "power saving {dpower} mW");
    }

    #[test]
    fn communication_dominates_compute() {
        // Table 6's headline: moving a pixel costs ~3 orders of
        // magnitude more than a MAC around it.
        let m = EnergyModel::paper_defaults();
        let move_cost = m.write_path_pj() + m.read_path_pj();
        assert!(move_cost / m.mac_pj > 500.0);
    }

    #[test]
    fn breakdown_components_add_up() {
        let m = EnergyModel::paper_defaults();
        let a = FrameActivity {
            sensed_px: 10,
            csi_px: 10,
            dram_written_px: 5,
            dram_read_px: 3,
            macs: 100,
        };
        let e = m.frame_energy(&a);
        let expected = 595.0 * 10.0
            + 1000.0 * 10.0
            + 1500.0 * 8.0
            + 400.0 * 5.0
            + 300.0 * 3.0
            + 4.6 * 100.0;
        assert!((e.total_pj() - expected).abs() < 1e-6);
    }

    #[test]
    fn zero_activity_costs_nothing() {
        let m = EnergyModel::paper_defaults();
        assert_eq!(m.frame_energy(&FrameActivity::default()).total_pj(), 0.0);
    }

    #[test]
    fn power_scales_with_fps() {
        let m = EnergyModel::paper_defaults();
        let a = full_frame_activity();
        let p30 = m.power_mw(&a, 30.0);
        let p60 = m.power_mw(&a, 60.0);
        assert!((p60 / p30 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn power_guards_degenerate_rates() {
        // A zero-wall-time run yields fps = 0 (or inf when computed
        // unguarded); neither may poison the power estimate.
        let m = EnergyModel::paper_defaults();
        let a = full_frame_activity();
        assert_eq!(m.power_mw(&a, 0.0), 0.0);
        assert_eq!(m.power_mw(&a, -30.0), 0.0);
        assert_eq!(m.power_mw(&a, f64::INFINITY), 0.0);
        assert_eq!(m.power_mw(&a, f64::NAN), 0.0);
        assert!(m.power_mw(&a, 30.0).is_finite());
    }
}

//! Encoder-placement analysis (paper §4.1.2 and §7 "Rhythmic Pixel
//! Camera").
//!
//! The paper integrates the encoder at the ISP output, so the MIPI CSI
//! link still carries every raw pixel; §7 proposes moving the encoder
//! into the camera module to cut CSI traffic too. This module prices
//! both placements with the Table 6 interface energies.

use crate::EnergyModel;
use serde::{Deserialize, Serialize};

/// Where the rhythmic encoder sits in the capture chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EncoderPlacement {
    /// At the ISP output inside the SoC (the paper's implementation):
    /// full frames cross CSI, only encoded pixels cross DDR.
    PostIsp,
    /// Inside the camera module, before MIPI (§7): encoded pixels and
    /// metadata cross both CSI and DDR.
    InSensor,
}

/// Per-frame interface traffic for one placement, in pixel-equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementTraffic {
    /// Pixels (equivalents) moved over the CSI link, sensor → SoC.
    pub csi_px: u64,
    /// Pixels (equivalents) written over the DDR interface.
    pub ddr_write_px: u64,
}

/// Prices encoder placements for a frame of `frame_px` pixels whose
/// encoded form keeps `kept_px` pixels plus `metadata_px`
/// pixel-equivalents of EncMask/offset data.
///
/// # Example
///
/// ```
/// use rpr_memsim::{placement_traffic, EncoderPlacement};
///
/// let post = placement_traffic(EncoderPlacement::PostIsp, 1_000_000, 300_000, 80_000);
/// let in_sensor = placement_traffic(EncoderPlacement::InSensor, 1_000_000, 300_000, 80_000);
/// assert_eq!(post.csi_px, 1_000_000);
/// assert_eq!(in_sensor.csi_px, 380_000);
/// assert_eq!(post.ddr_write_px, in_sensor.ddr_write_px);
/// ```
pub fn placement_traffic(
    placement: EncoderPlacement,
    frame_px: u64,
    kept_px: u64,
    metadata_px: u64,
) -> PlacementTraffic {
    let encoded = kept_px + metadata_px;
    match placement {
        EncoderPlacement::PostIsp => PlacementTraffic { csi_px: frame_px, ddr_write_px: encoded },
        EncoderPlacement::InSensor => {
            PlacementTraffic { csi_px: encoded, ddr_write_px: encoded }
        }
    }
}

/// Interface energy of one frame under a placement (CSI + DDR write
/// path), in millijoules.
pub fn placement_energy_mj(model: &EnergyModel, traffic: &PlacementTraffic) -> f64 {
    (model.csi_pj * traffic.csi_px as f64
        + model.write_path_pj() * traffic.ddr_write_px as f64)
        / 1.0e9
}

/// The §7 headline: energy saved per frame by moving the encoder into
/// the sensor, in millijoules.
pub fn in_sensor_saving_mj(
    model: &EnergyModel,
    frame_px: u64,
    kept_px: u64,
    metadata_px: u64,
) -> f64 {
    let post = placement_traffic(EncoderPlacement::PostIsp, frame_px, kept_px, metadata_px);
    let in_s = placement_traffic(EncoderPlacement::InSensor, frame_px, kept_px, metadata_px);
    placement_energy_mj(model, &post) - placement_energy_mj(model, &in_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAME: u64 = 3840 * 2160;

    #[test]
    fn post_isp_moves_full_frame_over_csi() {
        let t = placement_traffic(EncoderPlacement::PostIsp, FRAME, FRAME / 3, FRAME / 12);
        assert_eq!(t.csi_px, FRAME);
        assert_eq!(t.ddr_write_px, FRAME / 3 + FRAME / 12);
    }

    #[test]
    fn in_sensor_cuts_csi_to_encoded_size() {
        let t = placement_traffic(EncoderPlacement::InSensor, FRAME, FRAME / 3, FRAME / 12);
        assert_eq!(t.csi_px, FRAME / 3 + FRAME / 12);
        assert_eq!(t.ddr_write_px, t.csi_px);
    }

    #[test]
    fn in_sensor_saving_matches_csi_energy_of_discarded_pixels() {
        let model = EnergyModel::paper_defaults();
        let kept = FRAME / 3;
        let meta = FRAME / 12;
        let saving = in_sensor_saving_mj(&model, FRAME, kept, meta);
        let expected = model.csi_pj * (FRAME - kept - meta) as f64 / 1.0e9;
        assert!((saving - expected).abs() < 1e-9);
        // ~4.8 mJ/frame at 1 nJ/px CSI for a 4K frame keeping ~42 %.
        assert!(saving > 3.0 && saving < 8.0, "saving {saving}");
    }

    #[test]
    fn full_capture_has_no_placement_advantage() {
        let model = EnergyModel::paper_defaults();
        let saving = in_sensor_saving_mj(&model, FRAME, FRAME, 0);
        assert_eq!(saving, 0.0);
    }
}

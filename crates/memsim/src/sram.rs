//! DRAM-less computing analysis (paper §7): "The paradigm of rhythmic
//! pixel regions significantly reduces the average size of the frame
//! buffer. This presents an opportunity to store frame buffers in the
//! local SoC memory when not dealing with full frame captures."
//!
//! [`DramlessAnalysis`] evaluates a run's per-frame encoded sizes
//! against an on-chip SRAM budget: frames that fit stay on-chip and
//! their DRAM traffic disappears; full captures (and anything else over
//! budget) spill to DRAM as before.

use serde::{Deserialize, Serialize};

/// Result of evaluating one SRAM budget against a frame-size series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramlessReport {
    /// SRAM budget evaluated, bytes.
    pub sram_bytes: u64,
    /// Fraction of frames that fit on-chip.
    pub fit_fraction: f64,
    /// Bytes that stayed on-chip (DRAM write+read avoided twice over).
    pub bytes_on_chip: u64,
    /// Bytes that still spilled to DRAM.
    pub bytes_to_dram: u64,
}

impl DramlessReport {
    /// Fraction of total frame bytes kept away from DRAM.
    pub fn traffic_avoided_fraction(&self) -> f64 {
        let total = self.bytes_on_chip + self.bytes_to_dram;
        if total == 0 {
            0.0
        } else {
            self.bytes_on_chip as f64 / total as f64
        }
    }
}

/// Evaluates SRAM budgets against per-frame buffer sizes.
///
/// # Example
///
/// ```
/// use rpr_memsim::DramlessAnalysis;
///
/// // A 10-frame cycle: one 100 KB full capture, nine 20 KB regional frames.
/// let mut sizes = vec![100_000u64];
/// sizes.extend(std::iter::repeat(20_000).take(9));
/// let report = DramlessAnalysis::new(&sizes).evaluate(32_000);
/// assert!((report.fit_fraction - 0.9).abs() < 1e-12);
/// assert!(report.traffic_avoided_fraction() > 0.6);
/// ```
#[derive(Debug, Clone)]
pub struct DramlessAnalysis {
    frame_bytes: Vec<u64>,
}

impl DramlessAnalysis {
    /// Creates an analysis over per-frame buffer sizes (payload +
    /// metadata bytes per frame).
    pub fn new(frame_bytes: &[u64]) -> Self {
        DramlessAnalysis { frame_bytes: frame_bytes.to_vec() }
    }

    /// Evaluates a single SRAM budget.
    pub fn evaluate(&self, sram_bytes: u64) -> DramlessReport {
        let mut on_chip = 0u64;
        let mut to_dram = 0u64;
        let mut fits = 0usize;
        for &b in &self.frame_bytes {
            if b <= sram_bytes {
                on_chip += b;
                fits += 1;
            } else {
                to_dram += b;
            }
        }
        DramlessReport {
            sram_bytes,
            fit_fraction: if self.frame_bytes.is_empty() {
                0.0
            } else {
                fits as f64 / self.frame_bytes.len() as f64
            },
            bytes_on_chip: on_chip,
            bytes_to_dram: to_dram,
        }
    }

    /// The smallest budget that keeps `fraction` of frames on-chip —
    /// the sizing question an SoC architect asks.
    pub fn budget_for_fit_fraction(&self, fraction: f64) -> Option<u64> {
        if self.frame_bytes.is_empty() {
            return None;
        }
        let mut sorted = self.frame_bytes.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as f64 * fraction).ceil() as usize)
            .clamp(1, sorted.len())
            - 1;
        Some(sorted[idx])
    }

    /// Sweeps several budgets at once.
    pub fn sweep(&self, budgets: &[u64]) -> Vec<DramlessReport> {
        budgets.iter().map(|&b| self.evaluate(b)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle_sizes() -> Vec<u64> {
        // RP10-like: full capture 90 KB, regional frames ~18-30 KB.
        let mut v = Vec::new();
        for c in 0..3 {
            v.push(90_000);
            for i in 0..9u64 {
                v.push(18_000 + i * 1000 + c * 500);
            }
        }
        v
    }

    #[test]
    fn regional_frames_fit_modest_sram() {
        let a = DramlessAnalysis::new(&cycle_sizes());
        let r = a.evaluate(32_000);
        assert!((r.fit_fraction - 0.9).abs() < 1e-12);
        assert!(r.traffic_avoided_fraction() > 0.6);
    }

    #[test]
    fn zero_budget_spills_everything() {
        let a = DramlessAnalysis::new(&cycle_sizes());
        let r = a.evaluate(0);
        assert_eq!(r.fit_fraction, 0.0);
        assert_eq!(r.bytes_on_chip, 0);
    }

    #[test]
    fn huge_budget_keeps_everything() {
        let a = DramlessAnalysis::new(&cycle_sizes());
        let r = a.evaluate(10_000_000);
        assert_eq!(r.fit_fraction, 1.0);
        assert_eq!(r.bytes_to_dram, 0);
        assert_eq!(r.traffic_avoided_fraction(), 1.0);
    }

    #[test]
    fn budget_for_fraction_is_tight() {
        let a = DramlessAnalysis::new(&cycle_sizes());
        let b90 = a.budget_for_fit_fraction(0.9).unwrap();
        let r = a.evaluate(b90);
        assert!(r.fit_fraction >= 0.9, "fit {}", r.fit_fraction);
        // One byte less must drop below the target.
        let r_less = a.evaluate(b90 - 1);
        assert!(r_less.fit_fraction < r.fit_fraction);
    }

    #[test]
    fn sweep_is_monotone() {
        let a = DramlessAnalysis::new(&cycle_sizes());
        let reports = a.sweep(&[10_000, 30_000, 100_000]);
        assert!(reports[0].fit_fraction <= reports[1].fit_fraction);
        assert!(reports[1].fit_fraction <= reports[2].fit_fraction);
    }

    #[test]
    fn empty_series_is_safe() {
        let a = DramlessAnalysis::new(&[]);
        assert_eq!(a.evaluate(1000).fit_fraction, 0.0);
        assert!(a.budget_for_fit_fraction(0.9).is_none());
    }
}

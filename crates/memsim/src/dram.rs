use serde::{Deserialize, Serialize};

/// Geometry of the modeled LPDDR4 channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Bytes transferred per burst (BL16 on a 32-bit LPDDR4 channel).
    pub burst_bytes: u32,
    /// Bytes per DRAM row (page) — crossing a row costs an activation.
    pub row_bytes: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig { burst_bytes: 64, row_bytes: 2048 }
    }
}

/// Access counters for the modeled channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Write bursts issued.
    pub write_bursts: u64,
    /// Read bursts issued.
    pub read_bursts: u64,
    /// Row activations caused by non-sequential accesses.
    pub row_activations: u64,
}

/// Burst-level DRAM access model.
///
/// The paper argues the raster-packed encoded frame "retains sequential
/// write patterns" while per-region grouped storage (the multi-ROI
/// layout) "creates unfavorable random access patterns into DRAM"
/// (§3.2). This model makes that argument measurable: sequential
/// streams fill whole bursts and stay within rows; scattered
/// region-sized chunks each round up to burst granularity and re-open
/// rows.
///
/// # Example
///
/// ```
/// use rpr_memsim::{DramConfig, DramModel};
///
/// let mut d = DramModel::new(DramConfig::default());
/// d.write_sequential(0, 4096);
/// let seq_bursts = d.stats().write_bursts;
///
/// let mut s = DramModel::new(DramConfig::default());
/// // The same 4096 bytes as 64 scattered 64-byte chunks, one per region.
/// let chunks: Vec<(u64, u64)> = (0..64).map(|i| (i * 10_000, 64)).collect();
/// s.write_scattered(&chunks);
/// assert!(s.stats().row_activations > d.stats().row_activations);
/// assert!(s.stats().write_bursts >= seq_bursts);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DramModel {
    config: DramConfig,
    stats: DramStats,
    last_row: Option<u64>,
}

impl DramModel {
    /// Creates a model with the given channel geometry.
    pub fn new(config: DramConfig) -> Self {
        DramModel { config, stats: DramStats::default(), last_row: None }
    }

    /// The channel geometry.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Clears the counters.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
        self.last_row = None;
    }

    fn touch_rows(&mut self, addr: u64, len: u64) {
        if len == 0 {
            return;
        }
        let row_bytes = u64::from(self.config.row_bytes);
        let first = addr / row_bytes;
        let last = (addr + len - 1) / row_bytes;
        for row in first..=last {
            if self.last_row != Some(row) {
                self.stats.row_activations += 1;
                self.last_row = Some(row);
            }
        }
    }

    /// A sequential streaming write of `len` bytes starting at `addr`
    /// (the encoder's line-DMA pattern).
    pub fn write_sequential(&mut self, addr: u64, len: u64) {
        self.stats.bytes_written += len;
        self.stats.write_bursts += len.div_ceil(u64::from(self.config.burst_bytes));
        self.touch_rows(addr, len);
    }

    /// A sequential streaming read of `len` bytes starting at `addr`.
    pub fn read_sequential(&mut self, addr: u64, len: u64) {
        self.stats.bytes_read += len;
        self.stats.read_bursts += len.div_ceil(u64::from(self.config.burst_bytes));
        self.touch_rows(addr, len);
    }

    /// Scattered writes: one `(addr, len)` chunk per region. Every chunk
    /// rounds up to burst granularity independently.
    pub fn write_scattered(&mut self, chunks: &[(u64, u64)]) {
        for &(addr, len) in chunks {
            self.write_sequential(addr, len);
        }
    }

    /// Scattered reads of `(addr, len)` chunks.
    pub fn read_scattered(&mut self, chunks: &[(u64, u64)]) {
        for &(addr, len) in chunks {
            self.read_sequential(addr, len);
        }
    }

    /// Burst efficiency: useful bytes over burst-granular bytes moved,
    /// in `(0, 1]`. Sequential streams approach 1.0.
    pub fn burst_efficiency(&self) -> f64 {
        let moved = (self.stats.write_bursts + self.stats.read_bursts)
            * u64::from(self.config.burst_bytes);
        if moved == 0 {
            1.0
        } else {
            (self.stats.bytes_written + self.stats.bytes_read) as f64 / moved as f64
        }
    }
}

/// The encoder's line-buffered DMA engine: pixels accumulate into a
/// line buffer and commit as one sequential burst write per line
/// ("the encoder collects a line of pixels before committing a burst
/// DMA write", §4.1.2).
#[derive(Debug, Clone)]
pub struct DmaWriter {
    dram: DramModel,
    next_addr: u64,
    pending: u64,
    lines_committed: u64,
}

impl DmaWriter {
    /// Creates a writer streaming to `base_addr`.
    pub fn new(config: DramConfig, base_addr: u64) -> Self {
        DmaWriter { dram: DramModel::new(config), next_addr: base_addr, pending: 0, lines_committed: 0 }
    }

    /// Buffers `bytes` of encoded pixels belonging to the current line.
    pub fn push(&mut self, bytes: u64) {
        self.pending += bytes;
    }

    /// Commits the buffered line as one sequential write (no-op for an
    /// empty line, which costs no DRAM traffic at all).
    pub fn end_line(&mut self) {
        if self.pending > 0 {
            self.dram.write_sequential(self.next_addr, self.pending);
            self.next_addr += self.pending;
            self.pending = 0;
            self.lines_committed += 1;
        }
    }

    /// Lines that actually produced a burst.
    pub fn lines_committed(&self) -> u64 {
        self.lines_committed
    }

    /// The underlying DRAM counters.
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_write_is_burst_efficient() {
        let mut d = DramModel::new(DramConfig::default());
        d.write_sequential(0, 64 * 100);
        assert_eq!(d.stats().write_bursts, 100);
        assert!((d.burst_efficiency() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_bursts_round_up() {
        let mut d = DramModel::new(DramConfig::default());
        d.write_sequential(0, 65);
        assert_eq!(d.stats().write_bursts, 2);
        assert!(d.burst_efficiency() < 0.6);
    }

    #[test]
    fn scattered_chunks_cost_more_activations() {
        let cfg = DramConfig::default();
        let mut seq = DramModel::new(cfg);
        seq.write_sequential(0, 8192);

        let mut scat = DramModel::new(cfg);
        let chunks: Vec<(u64, u64)> = (0..128).map(|i| (i * 100_000, 64)).collect();
        scat.write_scattered(&chunks);

        assert_eq!(seq.stats().bytes_written, scat.stats().bytes_written);
        assert!(scat.stats().row_activations > 10 * seq.stats().row_activations);
    }

    #[test]
    fn row_activation_counts_row_crossings() {
        let mut d = DramModel::new(DramConfig { burst_bytes: 64, row_bytes: 1024 });
        d.write_sequential(0, 3000); // rows 0, 1, 2
        assert_eq!(d.stats().row_activations, 3);
        d.write_sequential(3000, 10); // still row 2
        assert_eq!(d.stats().row_activations, 3);
    }

    #[test]
    fn reads_and_writes_tracked_separately() {
        let mut d = DramModel::new(DramConfig::default());
        d.write_sequential(0, 128);
        d.read_sequential(0, 256);
        assert_eq!(d.stats().bytes_written, 128);
        assert_eq!(d.stats().bytes_read, 256);
        assert_eq!(d.stats().read_bursts, 4);
    }

    #[test]
    fn dma_writer_commits_lines_sequentially() {
        let mut w = DmaWriter::new(DramConfig::default(), 0x1000);
        w.push(100);
        w.push(28);
        w.end_line();
        w.end_line(); // empty line: free
        w.push(64);
        w.end_line();
        assert_eq!(w.lines_committed(), 2);
        assert_eq!(w.dram_stats().bytes_written, 192);
        // Two lines → 2 + 1 bursts.
        assert_eq!(w.dram_stats().write_bursts, 3);
    }

    #[test]
    fn empty_lines_cost_nothing() {
        let mut w = DmaWriter::new(DramConfig::default(), 0);
        for _ in 0..100 {
            w.end_line();
        }
        assert_eq!(w.dram_stats().bytes_written, 0);
        assert_eq!(w.dram_stats().write_bursts, 0);
    }

    #[test]
    fn zero_length_access_is_free() {
        let mut d = DramModel::new(DramConfig::default());
        d.write_sequential(0, 0);
        assert_eq!(d.stats().write_bursts, 0);
        assert_eq!(d.stats().row_activations, 0);
    }
}

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Result of a k-means clustering run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster centre coordinates.
    pub centers: Vec<(f64, f64)>,
    /// Cluster index assigned to each input point.
    pub assignments: Vec<usize>,
}

/// Lloyd's k-means over 2-D points with k-means++-style seeding.
///
/// The paper uses k-means to emulate commercial multi-ROI cameras:
/// "For workloads that use more regions, we combine smaller regions
/// into 16 larger regions through k-means clustering" (§5.3). Empty
/// clusters are re-seeded to the farthest point from its centre.
///
/// Returns `None` when `k == 0` or there are no points.
///
/// # Example
///
/// ```
/// use rpr_vision::kmeans;
///
/// let mut pts = vec![(0.0, 0.0), (1.0, 1.0), (0.5, 0.0)];
/// pts.extend([(100.0, 100.0), (101.0, 99.0)]);
/// let result = kmeans(&pts, 2, 20, 7).unwrap();
/// assert_eq!(result.centers.len(), 2);
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_ne!(result.assignments[0], result.assignments[3]);
/// ```
pub fn kmeans(points: &[(f64, f64)], k: usize, iterations: u32, seed: u64) -> Option<KMeansResult> {
    if k == 0 || points.is_empty() {
        return None;
    }
    let k = k.min(points.len());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // k-means++ seeding.
    let mut centers: Vec<(f64, f64)> = vec![points[rng.gen_range(0..points.len())]];
    while centers.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|&p| {
                centers
                    .iter()
                    .map(|&c| dist2(p, c))
                    .fold(f64::MAX, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total == 0.0 {
            // All points coincide with existing centres.
            centers.push(points[rng.gen_range(0..points.len())]);
            continue;
        }
        let mut target = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &d) in d2.iter().enumerate() {
            if target < d {
                chosen = i;
                break;
            }
            target -= d;
        }
        centers.push(points[chosen]);
    }

    let mut assignments = vec![0usize; points.len()];
    for _ in 0..iterations.max(1) {
        // Assign.
        let mut changed = false;
        for (i, &p) in points.iter().enumerate() {
            let best = (0..centers.len())
                .min_by(|&a, &b| dist2(p, centers[a]).total_cmp(&dist2(p, centers[b])))
                .expect("k >= 1");
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![(0.0f64, 0.0f64, 0usize); centers.len()];
        for (i, &p) in points.iter().enumerate() {
            let s = &mut sums[assignments[i]];
            s.0 += p.0;
            s.1 += p.1;
            s.2 += 1;
        }
        for (c, s) in centers.iter_mut().zip(sums.iter()) {
            if s.2 > 0 {
                *c = (s.0 / s.2 as f64, s.1 / s.2 as f64);
            }
        }
        // Re-seed empty clusters to the globally farthest point.
        for (ci, s) in sums.iter().enumerate() {
            if s.2 == 0 {
                if let Some((fi, _)) = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, &a), (_, &b)| {
                        dist2(a, centers[assignments[0]])
                            .total_cmp(&dist2(b, centers[assignments[0]]))
                    })
                {
                    centers[ci] = points[fi];
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    Some(KMeansResult { centers, assignments })
}

#[inline]
fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> =
            (0..20).map(|i| (i as f64 % 5.0, i as f64 / 5.0)).collect();
        pts.extend((0..20).map(|i| (200.0 + i as f64 % 5.0, 300.0 + i as f64 / 5.0)));
        pts
    }

    #[test]
    fn separates_well_separated_blobs() {
        let r = kmeans(&two_blobs(), 2, 30, 1).unwrap();
        let first = r.assignments[0];
        assert!(r.assignments[..20].iter().all(|&a| a == first));
        assert!(r.assignments[20..].iter().all(|&a| a != first));
    }

    #[test]
    fn centers_are_blob_means() {
        let r = kmeans(&two_blobs(), 2, 30, 2).unwrap();
        let near_origin = r
            .centers
            .iter()
            .any(|&(x, y)| (x - 2.0).abs() < 1.0 && (y - 1.9).abs() < 1.5);
        assert!(near_origin, "centers {:?}", r.centers);
    }

    #[test]
    fn k_larger_than_points_clamps() {
        let pts = vec![(0.0, 0.0), (1.0, 1.0)];
        let r = kmeans(&pts, 16, 10, 3).unwrap();
        assert_eq!(r.centers.len(), 2);
    }

    #[test]
    fn deterministic_for_seed() {
        let pts = two_blobs();
        let a = kmeans(&pts, 3, 25, 5).unwrap();
        let b = kmeans(&pts, 3, 25, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(kmeans(&[], 2, 10, 0).is_none());
        assert!(kmeans(&[(1.0, 1.0)], 0, 10, 0).is_none());
    }

    #[test]
    fn identical_points_do_not_panic() {
        let pts = vec![(5.0, 5.0); 10];
        let r = kmeans(&pts, 3, 10, 1).unwrap();
        assert_eq!(r.assignments.len(), 10);
    }

    #[test]
    fn every_point_gets_nearest_center() {
        let pts = two_blobs();
        let r = kmeans(&pts, 2, 30, 9).unwrap();
        for (i, &p) in pts.iter().enumerate() {
            let assigned = dist2(p, r.centers[r.assignments[i]]);
            for &c in &r.centers {
                assert!(assigned <= dist2(p, c) + 1e-9);
            }
        }
    }
}

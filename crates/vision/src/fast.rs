//! FAST-9/16 corner detection (Rosten & Drummond's segment test).

use rpr_frame::GrayFrame;
use serde::{Deserialize, Serialize};

/// The 16 Bresenham-circle offsets of radius 3, clockwise from 12
/// o'clock — the standard FAST sampling ring.
const CIRCLE: [(i64, i64); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// Number of contiguous ring pixels that must agree (FAST-9).
const ARC: usize = 9;

/// FAST detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastConfig {
    /// Intensity threshold `t`: ring pixels must be brighter than
    /// `p + t` or darker than `p - t`.
    pub threshold: u8,
    /// Apply 3x3 non-maximum suppression on the corner score.
    pub non_max_suppression: bool,
}

impl Default for FastConfig {
    fn default() -> Self {
        FastConfig { threshold: 20, non_max_suppression: true }
    }
}

/// A raw FAST corner: position (in the detected frame's coordinates)
/// plus score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastCorner {
    /// Column.
    pub x: u32,
    /// Row.
    pub y: u32,
    /// Corner strength: sum of absolute threshold exceedances over the
    /// best contiguous arc.
    pub score: f64,
}

/// Detects FAST-9 corners.
///
/// # Example
///
/// ```
/// use rpr_frame::Plane;
/// use rpr_vision::{detect_fast, FastConfig};
///
/// // A bright square corner on dark background.
/// let frame = Plane::from_fn(32, 32, |x, y| if x >= 16 && y >= 16 { 200 } else { 20 });
/// let corners = detect_fast(&frame, &FastConfig::default());
/// assert!(corners.iter().any(|c| {
///     (i64::from(c.x) - 16).abs() <= 2 && (i64::from(c.y) - 16).abs() <= 2
/// }));
/// ```
pub fn detect_fast(frame: &GrayFrame, config: &FastConfig) -> Vec<FastCorner> {
    let w = frame.width();
    let h = frame.height();
    if w < 7 || h < 7 {
        return Vec::new();
    }
    let t = i32::from(config.threshold);
    let mut scores = vec![0f64; w as usize * h as usize];
    let mut corners = Vec::new();

    for y in 3..h - 3 {
        for x in 3..w - 3 {
            let p = i32::from(frame.get(x, y).expect("in bounds"));
            // Quick reject using the 4 compass points: FAST-9 requires
            // at least 2 of {N, E, S, W} to exceed the threshold.
            let n = i32::from(frame.get(x, y - 3).expect("in bounds"));
            let s = i32::from(frame.get(x, y + 3).expect("in bounds"));
            let e = i32::from(frame.get(x + 3, y).expect("in bounds"));
            let wv = i32::from(frame.get(x - 3, y).expect("in bounds"));
            let brighter =
                [n, e, s, wv].iter().filter(|&&v| v >= p + t).count();
            let darker = [n, e, s, wv].iter().filter(|&&v| v <= p - t).count();
            if brighter < 2 && darker < 2 {
                continue;
            }

            let ring: Vec<i32> = CIRCLE
                .iter()
                .map(|&(dx, dy)| {
                    i32::from(
                        frame
                            .get((i64::from(x) + dx) as u32, (i64::from(y) + dy) as u32)
                            .expect("ring in bounds"),
                    )
                })
                .collect();

            if let Some(score) = segment_score(p, &ring, t) {
                scores[(y * w + x) as usize] = score;
                corners.push(FastCorner { x, y, score });
            }
        }
    }

    if !config.non_max_suppression {
        return corners;
    }
    corners
        .into_iter()
        .filter(|c| {
            let mut is_max = true;
            'outer: for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = i64::from(c.x) + dx;
                    let ny = i64::from(c.y) + dy;
                    if nx < 0 || ny < 0 || nx >= i64::from(w) || ny >= i64::from(h) {
                        continue;
                    }
                    let neighbour = scores[(ny as u32 * w + nx as u32) as usize];
                    // Strict inequality on one side keeps exactly one of
                    // two equal-scoring neighbours.
                    if neighbour > c.score
                        || (neighbour == c.score && (dy < 0 || (dy == 0 && dx < 0)))
                    {
                        is_max = false;
                        break 'outer;
                    }
                }
            }
            is_max
        })
        .collect()
}

/// Returns the corner score when a contiguous arc of at least [`ARC`]
/// ring pixels is uniformly brighter or darker than the centre by `t`.
fn segment_score(p: i32, ring: &[i32], t: i32) -> Option<f64> {
    debug_assert_eq!(ring.len(), 16);
    let mut best: Option<f64> = None;
    for polarity in [1i32, -1] {
        // Walk the doubled ring looking for a long-enough run.
        let mut run = 0usize;
        let mut run_sum = 0i64;
        let mut best_here: Option<f64> = None;
        for i in 0..32 {
            let v = ring[i % 16];
            let excess = polarity * (v - p) - t;
            if excess >= 0 {
                run += 1;
                run_sum += i64::from(excess) + i64::from(t);
                if run >= ARC {
                    let score = run_sum as f64 / run as f64 * (run as f64).sqrt();
                    best_here = Some(best_here.map_or(score, |b: f64| b.max(score)));
                }
                if run == 32 {
                    break; // fully uniform ring; avoid double counting
                }
            } else {
                run = 0;
                run_sum = 0;
            }
        }
        if let Some(s) = best_here {
            best = Some(best.map_or(s, |b: f64| b.max(s)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_frame::Plane;

    fn corner_frame() -> GrayFrame {
        Plane::from_fn(32, 32, |x, y| if x >= 16 && y >= 16 { 220 } else { 20 })
    }

    #[test]
    fn detects_square_corner() {
        let corners = detect_fast(&corner_frame(), &FastConfig::default());
        assert!(!corners.is_empty());
        let best = corners.iter().max_by(|a, b| a.score.total_cmp(&b.score)).unwrap();
        assert!((i64::from(best.x) - 16).abs() <= 2, "x={}", best.x);
        assert!((i64::from(best.y) - 16).abs() <= 2, "y={}", best.y);
    }

    #[test]
    fn flat_image_has_no_corners() {
        let flat = Plane::from_fn(32, 32, |_, _| 128u8);
        assert!(detect_fast(&flat, &FastConfig::default()).is_empty());
    }

    #[test]
    fn straight_edge_is_not_a_corner() {
        // A vertical step edge: no 9-contiguous arc is uniformly on one
        // side, so FAST-9 must reject the edge interior.
        let edge = Plane::from_fn(32, 32, |x, _| if x >= 16 { 220 } else { 20 });
        let corners = detect_fast(&edge, &FastConfig::default());
        assert!(
            corners.is_empty(),
            "edge detected as corners: {:?}",
            corners.iter().take(3).collect::<Vec<_>>()
        );
    }

    #[test]
    fn dark_corner_on_bright_background_detected() {
        let frame = Plane::from_fn(32, 32, |x, y| if x >= 16 && y >= 16 { 20 } else { 220 });
        let corners = detect_fast(&frame, &FastConfig::default());
        assert!(!corners.is_empty());
    }

    #[test]
    fn threshold_gates_weak_corners() {
        let weak = Plane::from_fn(32, 32, |x, y| if x >= 16 && y >= 16 { 140 } else { 120 });
        let strict = FastConfig { threshold: 40, non_max_suppression: true };
        assert!(detect_fast(&weak, &strict).is_empty());
        let lenient = FastConfig { threshold: 10, non_max_suppression: true };
        assert!(!detect_fast(&weak, &lenient).is_empty());
    }

    #[test]
    fn nms_reduces_corner_count() {
        let frame = corner_frame();
        let with = detect_fast(&frame, &FastConfig::default());
        let without =
            detect_fast(&frame, &FastConfig { non_max_suppression: false, ..Default::default() });
        assert!(with.len() <= without.len());
        assert!(!with.is_empty());
    }

    #[test]
    fn tiny_frames_are_safe() {
        let tiny: GrayFrame = Plane::new(5, 5);
        assert!(detect_fast(&tiny, &FastConfig::default()).is_empty());
    }

    #[test]
    fn square_grid_yields_many_corners() {
        // Isolated bright squares: each contributes L-corners. (An ideal
        // checkerboard's X-junctions are correctly NOT FAST-9 corners —
        // no 9-contiguous arc exists there.)
        let frame = Plane::from_fn(64, 64, |x, y| {
            if x % 16 < 8 && y % 16 < 8 {
                210
            } else {
                30
            }
        });
        let corners = detect_fast(&frame, &FastConfig::default());
        assert!(corners.len() >= 20, "only {} corners", corners.len());
    }
}

use crate::OrbFeature;
use serde::{Deserialize, Serialize};

/// One descriptor correspondence between two feature sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DescriptorMatch {
    /// Index into the query (first) feature set.
    pub query: usize,
    /// Index into the train (second) feature set.
    pub train: usize,
    /// Hamming distance of the matched pair.
    pub distance: u32,
}

/// Brute-force Hamming matching with Lowe's ratio test and symmetric
/// cross-checking — the standard ORB matching recipe.
///
/// A pair `(q, t)` is kept when `t` is `q`'s best neighbour, the best
/// distance is at most `max_distance`, the best/second-best ratio is
/// below `ratio`, and `q` is also `t`'s best neighbour (cross check).
///
/// # Example
///
/// ```
/// use rpr_frame::Plane;
/// use rpr_vision::{match_descriptors, OrbDetector};
///
/// let frame = Plane::from_fn(96, 96, |x, y| {
///     if ((x / 12) + (y / 12)) % 2 == 0 { 210 } else { 30 }
/// });
/// let feats = OrbDetector::default().detect(&frame);
/// let matches = match_descriptors(&feats, &feats, 64, 0.9);
/// // Repetitive texture: the ratio test drops ambiguous features, but
/// // every surviving self-match is exact.
/// assert!(!matches.is_empty());
/// assert!(matches.iter().all(|m| m.query == m.train && m.distance == 0));
/// ```
pub fn match_descriptors(
    query: &[OrbFeature],
    train: &[OrbFeature],
    max_distance: u32,
    ratio: f64,
) -> Vec<DescriptorMatch> {
    if query.is_empty() || train.is_empty() {
        return Vec::new();
    }

    // Forward pass with ratio test.
    let mut forward: Vec<Option<(usize, u32)>> = Vec::with_capacity(query.len());
    for q in query {
        let mut best: Option<(usize, u32)> = None;
        let mut second: u32 = u32::MAX;
        for (j, t) in train.iter().enumerate() {
            let d = q.descriptor.hamming(&t.descriptor);
            match best {
                Some((_, bd)) if d < bd => {
                    second = bd;
                    best = Some((j, d));
                }
                Some((_, bd)) => {
                    if d < second && d >= bd {
                        second = d;
                    }
                }
                None => best = Some((j, d)),
            }
        }
        forward.push(best.filter(|&(_, d)| {
            d <= max_distance
                && (second == u32::MAX || f64::from(d) < ratio * f64::from(second))
        }));
    }

    // Reverse best per train feature (no ratio needed for cross check).
    let mut reverse_best: Vec<(usize, u32)> = vec![(usize::MAX, u32::MAX); train.len()];
    for (i, q) in query.iter().enumerate() {
        for (j, t) in train.iter().enumerate() {
            let d = q.descriptor.hamming(&t.descriptor);
            if d < reverse_best[j].1 {
                reverse_best[j] = (i, d);
            }
        }
    }

    forward
        .into_iter()
        .enumerate()
        .filter_map(|(i, m)| {
            m.and_then(|(j, d)| {
                (reverse_best[j].0 == i).then_some(DescriptorMatch {
                    query: i,
                    train: j,
                    distance: d,
                })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Descriptor, KeyPoint};

    fn feat(bits: &[usize]) -> OrbFeature {
        let mut bytes = [0u8; 32];
        for &b in bits {
            bytes[b / 8] |= 1 << (b % 8);
        }
        OrbFeature { keypoint: KeyPoint::new(0.0, 0.0), descriptor: Descriptor(bytes) }
    }

    #[test]
    fn exact_matches_found() {
        let a = vec![feat(&[1, 2, 3]), feat(&[100, 101])];
        let b = vec![feat(&[100, 101]), feat(&[1, 2, 3])];
        let m = match_descriptors(&a, &b, 64, 0.8);
        assert_eq!(m.len(), 2);
        assert!(m.iter().any(|x| x.query == 0 && x.train == 1 && x.distance == 0));
        assert!(m.iter().any(|x| x.query == 1 && x.train == 0 && x.distance == 0));
    }

    #[test]
    fn max_distance_rejects_far_pairs() {
        let a = vec![feat(&(0..60).collect::<Vec<_>>())];
        let b = vec![feat(&(100..160).collect::<Vec<_>>())];
        // 120 differing bits > 64.
        assert!(match_descriptors(&a, &b, 64, 0.9).is_empty());
    }

    #[test]
    fn ratio_test_rejects_ambiguous() {
        // Query equally close to two train descriptors.
        let q = vec![feat(&[0])];
        let t = vec![feat(&[0, 1]), feat(&[0, 2])];
        assert!(match_descriptors(&q, &t, 64, 0.8).is_empty());
        // With a permissive ratio it survives.
        let m = match_descriptors(&q, &t, 64, 1.1);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn cross_check_rejects_one_sided() {
        // Two queries both closest to train 0; only the closer one keeps
        // the match.
        let q = vec![feat(&[0]), feat(&[0, 1])];
        let t = vec![feat(&[0])];
        let m = match_descriptors(&q, &t, 64, 1.1);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].query, 0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(match_descriptors(&[], &[feat(&[0])], 64, 0.8).is_empty());
        assert!(match_descriptors(&[feat(&[0])], &[], 64, 0.8).is_empty());
    }
}

//! Task-accuracy metrics: absolute trajectory error and relative pose
//! error for visual SLAM (paper §3.4, §5.3.1), and IoU-based mean
//! average precision for detection workloads.

use crate::Rigid2d;
use rpr_frame::Rect;
use serde::{Deserialize, Serialize};

/// A planar pose estimate `(x, y, theta)` in world units.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose2d {
    /// Position x.
    pub x: f64,
    /// Position y.
    pub y: f64,
    /// Heading in radians.
    pub theta: f64,
}

impl Pose2d {
    /// Creates a pose.
    pub fn new(x: f64, y: f64, theta: f64) -> Self {
        Pose2d { x, y, theta }
    }
}

/// Finds the rigid transform that best aligns the estimated trajectory
/// onto the ground truth (Horn/Procrustes without scale) — the standard
/// pre-alignment step of the absolute-trajectory-error metric.
///
/// Returns `None` when the trajectories differ in length or have fewer
/// than two poses.
pub fn align_rigid_2d(estimated: &[Pose2d], ground_truth: &[Pose2d]) -> Option<Rigid2d> {
    if estimated.len() != ground_truth.len() || estimated.len() < 2 {
        return None;
    }
    let n = estimated.len() as f64;
    let (mut ax, mut ay, mut bx, mut by) = (0.0, 0.0, 0.0, 0.0);
    for (e, g) in estimated.iter().zip(ground_truth) {
        ax += e.x;
        ay += e.y;
        bx += g.x;
        by += g.y;
    }
    let (ax, ay, bx, by) = (ax / n, ay / n, bx / n, by / n);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (e, g) in estimated.iter().zip(ground_truth) {
        let (px, py) = (e.x - ax, e.y - ay);
        let (qx, qy) = (g.x - bx, g.y - by);
        sxx += px * qx + py * qy;
        sxy += px * qy - py * qx;
    }
    let theta = if sxx == 0.0 && sxy == 0.0 { 0.0 } else { sxy.atan2(sxx) };
    let (s, c) = theta.sin_cos();
    Some(Rigid2d { theta, tx: bx - (c * ax - s * ay), ty: by - (s * ax + c * ay) })
}

/// Absolute trajectory error: RMSE of position differences after rigid
/// alignment, in the trajectories' world units. The paper's headline
/// V-SLAM accuracy metric ("43 ± 1.5 mm to 51 ± 0.9 mm").
///
/// Returns `None` when alignment is impossible.
///
/// # Example
///
/// ```
/// use rpr_vision::{ate_rmse, Pose2d};
///
/// let gt: Vec<Pose2d> = (0..10).map(|i| Pose2d::new(i as f64, 0.0, 0.0)).collect();
/// // Same trajectory expressed in a rotated/shifted frame: ATE ≈ 0.
/// let est: Vec<Pose2d> =
///     (0..10).map(|i| Pose2d::new(100.0, i as f64, 1.0)).collect();
/// assert!(ate_rmse(&est, &gt).unwrap() < 1e-9);
/// ```
pub fn ate_rmse(estimated: &[Pose2d], ground_truth: &[Pose2d]) -> Option<f64> {
    let align = align_rigid_2d(estimated, ground_truth)?;
    let mut sum2 = 0.0;
    for (e, g) in estimated.iter().zip(ground_truth) {
        let p = align.apply((e.x, e.y));
        sum2 += (p.0 - g.x).powi(2) + (p.1 - g.y).powi(2);
    }
    Some((sum2 / estimated.len() as f64).sqrt())
}

/// Relative pose error over a fixed frame interval: RMSE of per-step
/// translational drift (world units) and rotational drift (radians).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RpeSummary {
    /// Translational RMSE per interval.
    pub translational_rmse: f64,
    /// Rotational RMSE per interval, radians.
    pub rotational_rmse: f64,
    /// Number of intervals evaluated.
    pub intervals: usize,
}

/// Computes the relative pose error with step `delta` frames.
///
/// Returns `None` when the trajectories are shorter than `delta + 1`
/// poses or differ in length, or `delta == 0`.
pub fn relative_pose_error(
    estimated: &[Pose2d],
    ground_truth: &[Pose2d],
    delta: usize,
) -> Option<RpeSummary> {
    if delta == 0
        || estimated.len() != ground_truth.len()
        || estimated.len() <= delta
    {
        return None;
    }
    let rel = |a: &Pose2d, b: &Pose2d| -> (f64, f64, f64) {
        // Relative motion expressed in a's frame.
        let dx = b.x - a.x;
        let dy = b.y - a.y;
        let (s, c) = (-a.theta).sin_cos();
        (c * dx - s * dy, s * dx + c * dy, wrap_angle(b.theta - a.theta))
    };
    let mut t2 = 0.0;
    let mut r2 = 0.0;
    let n = estimated.len() - delta;
    for i in 0..n {
        let (ex, ey, et) = rel(&estimated[i], &estimated[i + delta]);
        let (gx, gy, gt) = rel(&ground_truth[i], &ground_truth[i + delta]);
        t2 += (ex - gx).powi(2) + (ey - gy).powi(2);
        r2 += wrap_angle(et - gt).powi(2);
    }
    Some(RpeSummary {
        translational_rmse: (t2 / n as f64).sqrt(),
        rotational_rmse: (r2 / n as f64).sqrt(),
        intervals: n,
    })
}

fn wrap_angle(t: f64) -> f64 {
    let mut a = t % (2.0 * std::f64::consts::PI);
    if a > std::f64::consts::PI {
        a -= 2.0 * std::f64::consts::PI;
    } else if a <= -std::f64::consts::PI {
        a += 2.0 * std::f64::consts::PI;
    }
    a
}

/// Average precision for one frame, using the paper's simplified
/// definition (§5.3.1): detections with IoU ≥ `iou_threshold` against
/// an unmatched ground-truth box are true positives, every other
/// detection is a false positive, and the score is `TP / (TP + FP)`.
/// Each ground-truth box can match at most one detection (greedy, by
/// descending detection confidence).
///
/// Returns 1.0 when there are neither detections nor ground truths
/// (nothing to get wrong), and 0.0 when there are detections but no
/// ground truths, or ground truths but no detections.
pub fn average_precision(
    detections: &[(Rect, f64)],
    ground_truths: &[Rect],
    iou_threshold: f64,
) -> f64 {
    if detections.is_empty() && ground_truths.is_empty() {
        return 1.0;
    }
    if detections.is_empty() || ground_truths.is_empty() {
        return 0.0;
    }
    let mut order: Vec<usize> = (0..detections.len()).collect();
    order.sort_by(|&a, &b| detections[b].1.total_cmp(&detections[a].1));
    let mut matched = vec![false; ground_truths.len()];
    let mut tp = 0usize;
    for &i in &order {
        let (rect, _) = &detections[i];
        let best = ground_truths
            .iter()
            .enumerate()
            .filter(|(gi, _)| !matched[*gi])
            .map(|(gi, g)| (gi, rect.iou(g)))
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((gi, iou)) = best {
            if iou >= iou_threshold {
                matched[gi] = true;
                tp += 1;
            }
        }
    }
    tp as f64 / detections.len() as f64
}

/// One frame's evaluation inputs: scored detections plus ground truth.
pub type DetectionFrame = (Vec<(Rect, f64)>, Vec<Rect>);

/// Mean of [`average_precision`] over a sequence of frames — the mAP
/// the paper reports for pose estimation and face detection (Fig. 9).
pub fn mean_average_precision(frames: &[DetectionFrame], iou_threshold: f64) -> f64 {
    if frames.is_empty() {
        return 0.0;
    }
    frames
        .iter()
        .map(|(dets, gts)| average_precision(dets, gts, iou_threshold))
        .sum::<f64>()
        / frames.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_traj(n: usize) -> Vec<Pose2d> {
        (0..n).map(|i| Pose2d::new(i as f64 * 2.0, (i as f64 * 0.5).sin(), 0.1)).collect()
    }

    #[test]
    fn ate_zero_for_identical() {
        let t = line_traj(20);
        assert!(ate_rmse(&t, &t).unwrap() < 1e-12);
    }

    #[test]
    fn ate_invariant_to_rigid_offset() {
        let gt = line_traj(20);
        let offset = Rigid2d { theta: 0.8, tx: -30.0, ty: 12.0 };
        let est: Vec<Pose2d> = gt
            .iter()
            .map(|p| {
                let q = offset.apply((p.x, p.y));
                Pose2d::new(q.0, q.1, p.theta + 0.8)
            })
            .collect();
        assert!(ate_rmse(&est, &gt).unwrap() < 1e-9);
    }

    #[test]
    fn ate_measures_real_error() {
        let gt = line_traj(20);
        let est: Vec<Pose2d> = gt
            .iter()
            .enumerate()
            .map(|(i, p)| Pose2d::new(p.x, p.y + if i % 2 == 0 { 1.0 } else { -1.0 }, p.theta))
            .collect();
        let ate = ate_rmse(&est, &gt).unwrap();
        assert!((ate - 1.0).abs() < 0.05, "ate {ate}");
    }

    #[test]
    fn ate_requires_equal_lengths() {
        assert!(ate_rmse(&line_traj(5), &line_traj(6)).is_none());
        assert!(ate_rmse(&line_traj(1), &line_traj(1)).is_none());
    }

    #[test]
    fn rpe_zero_for_identical() {
        let t = line_traj(30);
        let r = relative_pose_error(&t, &t, 1).unwrap();
        assert!(r.translational_rmse < 1e-12);
        assert!(r.rotational_rmse < 1e-12);
        assert_eq!(r.intervals, 29);
    }

    #[test]
    fn rpe_catches_drift() {
        let gt = line_traj(30);
        // Estimated trajectory drifts +0.1 in x per step.
        let est: Vec<Pose2d> = gt
            .iter()
            .enumerate()
            .map(|(i, p)| Pose2d::new(p.x + 0.1 * i as f64, p.y, p.theta))
            .collect();
        let r = relative_pose_error(&est, &gt, 1).unwrap();
        assert!((r.translational_rmse - 0.1).abs() < 1e-9);
    }

    #[test]
    fn rpe_rotational_component() {
        let gt: Vec<Pose2d> = (0..10).map(|i| Pose2d::new(i as f64, 0.0, 0.0)).collect();
        let est: Vec<Pose2d> =
            (0..10).map(|i| Pose2d::new(i as f64, 0.0, 0.02 * i as f64)).collect();
        let r = relative_pose_error(&est, &gt, 1).unwrap();
        assert!((r.rotational_rmse - 0.02).abs() < 1e-9);
    }

    #[test]
    fn rpe_invalid_inputs() {
        let t = line_traj(5);
        assert!(relative_pose_error(&t, &t, 0).is_none());
        assert!(relative_pose_error(&t, &t, 5).is_none());
    }

    #[test]
    fn ap_perfect_detections() {
        let gts = vec![Rect::new(10, 10, 20, 20), Rect::new(50, 50, 10, 10)];
        let dets: Vec<(Rect, f64)> = gts.iter().map(|&g| (g, 0.9)).collect();
        assert_eq!(average_precision(&dets, &gts, 0.5), 1.0);
    }

    #[test]
    fn ap_counts_false_positives() {
        let gts = vec![Rect::new(10, 10, 20, 20)];
        let dets = vec![
            (Rect::new(10, 10, 20, 20), 0.9),
            (Rect::new(200, 200, 20, 20), 0.8),
        ];
        assert_eq!(average_precision(&dets, &gts, 0.5), 0.5);
    }

    #[test]
    fn ap_one_detection_per_ground_truth() {
        let gts = vec![Rect::new(10, 10, 20, 20)];
        let dets = vec![
            (Rect::new(10, 10, 20, 20), 0.9),
            (Rect::new(11, 10, 20, 20), 0.8), // duplicate
        ];
        assert_eq!(average_precision(&dets, &gts, 0.5), 0.5);
    }

    #[test]
    fn ap_respects_iou_threshold() {
        let gts = vec![Rect::new(0, 0, 10, 10)];
        let dets = vec![(Rect::new(5, 0, 10, 10), 0.9)]; // IoU = 1/3
        assert_eq!(average_precision(&dets, &gts, 0.5), 0.0);
        assert_eq!(average_precision(&dets, &gts, 0.3), 1.0);
    }

    #[test]
    fn ap_edge_cases() {
        assert_eq!(average_precision(&[], &[], 0.5), 1.0);
        assert_eq!(average_precision(&[], &[Rect::new(0, 0, 5, 5)], 0.5), 0.0);
        assert_eq!(average_precision(&[(Rect::new(0, 0, 5, 5), 0.9)], &[], 0.5), 0.0);
    }

    #[test]
    fn map_averages_over_frames() {
        let good = (
            vec![(Rect::new(0, 0, 10, 10), 0.9)],
            vec![Rect::new(0, 0, 10, 10)],
        );
        let bad = (vec![(Rect::new(50, 50, 10, 10), 0.9)], vec![Rect::new(0, 0, 10, 10)]);
        let map = mean_average_precision(&[good, bad], 0.5);
        assert!((map - 0.5).abs() < 1e-12);
    }
}

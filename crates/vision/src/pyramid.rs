use rpr_frame::{GrayFrame, Plane};

/// Bilinearly resizes a frame to `out_w x out_h`.
///
/// # Panics
///
/// Panics when either output dimension is zero.
pub fn resize_bilinear(src: &GrayFrame, out_w: u32, out_h: u32) -> GrayFrame {
    assert!(out_w > 0 && out_h > 0, "output dimensions must be nonzero");
    let sx = f64::from(src.width()) / f64::from(out_w);
    let sy = f64::from(src.height()) / f64::from(out_h);
    Plane::from_fn(out_w, out_h, |x, y| {
        src.sample_bilinear((f64::from(x) + 0.5) * sx - 0.5, (f64::from(y) + 0.5) * sy - 0.5)
    })
}

/// A multi-scale image pyramid with a constant scale factor between
/// levels, as used by ORB (the paper derives each feature's *octave*
/// attribute — and from it the region stride — from the pyramid level
/// it was detected in).
///
/// # Example
///
/// ```
/// use rpr_frame::Plane;
/// use rpr_vision::ImagePyramid;
///
/// let frame = Plane::from_fn(100, 80, |x, y| (x + y) as u8);
/// let pyr = ImagePyramid::build(&frame, 4, 1.25);
/// assert_eq!(pyr.levels(), 4);
/// assert_eq!(pyr.level(0).width(), 100);
/// assert!(pyr.level(3).width() < 60);
/// ```
#[derive(Debug, Clone)]
pub struct ImagePyramid {
    levels: Vec<GrayFrame>,
    scale_factor: f64,
}

impl ImagePyramid {
    /// Builds `n_levels` levels, each smaller than the previous by
    /// `scale_factor`. Levels that would shrink below 16 px on a side
    /// are dropped.
    ///
    /// # Panics
    ///
    /// Panics when `n_levels == 0` or `scale_factor <= 1.0`.
    pub fn build(base: &GrayFrame, n_levels: u32, scale_factor: f64) -> Self {
        assert!(n_levels > 0, "pyramid needs at least one level");
        assert!(scale_factor > 1.0, "scale factor must exceed 1.0");
        let mut levels = vec![base.clone()];
        for l in 1..n_levels {
            let s = scale_factor.powi(l as i32);
            let w = (f64::from(base.width()) / s).round() as u32;
            let h = (f64::from(base.height()) / s).round() as u32;
            if w < 16 || h < 16 {
                break;
            }
            levels.push(resize_bilinear(base, w, h));
        }
        ImagePyramid { levels, scale_factor }
    }

    /// Number of levels actually built.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// The frame at pyramid level `l` (0 = full resolution).
    ///
    /// # Panics
    ///
    /// Panics when `l >= levels()`.
    pub fn level(&self, l: usize) -> &GrayFrame {
        &self.levels[l]
    }

    /// The configured inter-level scale factor.
    pub fn scale_factor(&self) -> f64 {
        self.scale_factor
    }

    /// Multiplier mapping level-`l` coordinates up to level-0
    /// coordinates.
    pub fn scale_of(&self, l: usize) -> f64 {
        self.scale_factor.powi(l as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resize_identity() {
        let f = Plane::from_fn(16, 16, |x, y| (x * y) as u8);
        let r = resize_bilinear(&f, 16, 16);
        // Identity resize must be (nearly) exact.
        for y in 0..16 {
            for x in 0..16 {
                let a = i32::from(f.get(x, y).unwrap());
                let b = i32::from(r.get(x, y).unwrap());
                assert!((a - b).abs() <= 1, "({x},{y}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn downscale_preserves_mean() {
        let f = Plane::from_fn(64, 64, |x, _| if x < 32 { 0 } else { 200 });
        let r = resize_bilinear(&f, 32, 32);
        assert!((r.mean() - f.mean()).abs() < 6.0, "{} vs {}", r.mean(), f.mean());
    }

    #[test]
    fn pyramid_shrinks_by_scale_factor() {
        let f = Plane::from_fn(128, 128, |x, y| (x ^ y) as u8);
        let pyr = ImagePyramid::build(&f, 4, 1.25);
        assert_eq!(pyr.levels(), 4);
        assert_eq!(pyr.level(1).width(), 102); // 128 / 1.25
        assert_eq!(pyr.level(2).width(), 82);
    }

    #[test]
    fn pyramid_stops_before_tiny_levels() {
        let f = Plane::from_fn(32, 32, |x, _| x as u8);
        let pyr = ImagePyramid::build(&f, 10, 2.0);
        assert!(pyr.levels() <= 2);
    }

    #[test]
    fn scale_of_is_powers_of_factor() {
        let f = Plane::from_fn(256, 256, |x, _| x as u8);
        let pyr = ImagePyramid::build(&f, 3, 1.5);
        assert!((pyr.scale_of(0) - 1.0).abs() < 1e-12);
        assert!((pyr.scale_of(2) - 2.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn unit_scale_factor_panics() {
        let f: GrayFrame = Plane::new(32, 32);
        let _ = ImagePyramid::build(&f, 2, 1.0);
    }
}

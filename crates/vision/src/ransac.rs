use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A 2-D rigid transform `p' = R(theta) p + (tx, ty)` — the camera
/// ego-motion model of the planar visual-odometry front end.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rigid2d {
    /// Rotation angle in radians.
    pub theta: f64,
    /// Translation x.
    pub tx: f64,
    /// Translation y.
    pub ty: f64,
}

impl Rigid2d {
    /// Applies the transform to a point.
    pub fn apply(&self, p: (f64, f64)) -> (f64, f64) {
        let (s, c) = self.theta.sin_cos();
        (c * p.0 - s * p.1 + self.tx, s * p.0 + c * p.1 + self.ty)
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Rigid2d {
        let (s, c) = self.theta.sin_cos();
        Rigid2d {
            theta: -self.theta,
            tx: -(c * self.tx + s * self.ty),
            ty: -(-s * self.tx + c * self.ty),
        }
    }

    /// Translation magnitude.
    pub fn translation_norm(&self) -> f64 {
        (self.tx * self.tx + self.ty * self.ty).sqrt()
    }
}

/// A correspondence `(from, to)` between two frames' point sets.
pub type PointPair = ((f64, f64), (f64, f64));

/// Least-squares rigid fit (Procrustes without scale) over point pairs
/// `(from, to)`.
fn fit_rigid(pairs: &[PointPair]) -> Option<Rigid2d> {
    if pairs.len() < 2 {
        return None;
    }
    let n = pairs.len() as f64;
    let (mut ax, mut ay, mut bx, mut by) = (0.0, 0.0, 0.0, 0.0);
    for &((x0, y0), (x1, y1)) in pairs {
        ax += x0;
        ay += y0;
        bx += x1;
        by += y1;
    }
    let (ax, ay, bx, by) = (ax / n, ay / n, bx / n, by / n);
    // Cross-covariance terms.
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for &((x0, y0), (x1, y1)) in pairs {
        let (px, py) = (x0 - ax, y0 - ay);
        let (qx, qy) = (x1 - bx, y1 - by);
        sxx += px * qx + py * qy;
        sxy += px * qy - py * qx;
    }
    if sxx == 0.0 && sxy == 0.0 {
        return None;
    }
    let theta = sxy.atan2(sxx);
    let (s, c) = theta.sin_cos();
    Some(Rigid2d { theta, tx: bx - (c * ax - s * ay), ty: by - (s * ax + c * ay) })
}

/// Robustly estimates the rigid motion mapping `from` points onto `to`
/// points with RANSAC, then refits on the inlier set.
///
/// Returns the transform and the inlier indices, or `None` when fewer
/// than two pairs are given or no consensus of at least 3 inliers (or
/// all pairs, when only 2) is found.
///
/// # Example
///
/// ```
/// use rpr_vision::{estimate_rigid_motion, Rigid2d};
///
/// let truth = Rigid2d { theta: 0.1, tx: 5.0, ty: -2.0 };
/// let pairs: Vec<_> = (0..20)
///     .map(|i| {
///         let p = (i as f64 * 3.0, (i * i % 17) as f64);
///         (p, truth.apply(p))
///     })
///     .collect();
/// let (est, inliers) = estimate_rigid_motion(&pairs, 100, 1.0, 7).unwrap();
/// assert!((est.theta - 0.1).abs() < 1e-6);
/// assert_eq!(inliers.len(), 20);
/// ```
pub fn estimate_rigid_motion(
    pairs: &[PointPair],
    iterations: u32,
    inlier_threshold: f64,
    seed: u64,
) -> Option<(Rigid2d, Vec<usize>)> {
    if pairs.len() < 2 {
        return None;
    }
    if pairs.len() == 2 {
        let t = fit_rigid(pairs)?;
        return Some((t, vec![0, 1]));
    }

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut best_inliers: Vec<usize> = Vec::new();
    for _ in 0..iterations {
        let i = rng.gen_range(0..pairs.len());
        let mut j = rng.gen_range(0..pairs.len());
        if i == j {
            j = (j + 1) % pairs.len();
        }
        let Some(candidate) = fit_rigid(&[pairs[i], pairs[j]]) else {
            continue;
        };
        let inliers: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &(from, to))| {
                let p = candidate.apply(from);
                let d2 = (p.0 - to.0).powi(2) + (p.1 - to.1).powi(2);
                d2 <= inlier_threshold * inlier_threshold
            })
            .map(|(k, _)| k)
            .collect();
        if inliers.len() > best_inliers.len() {
            best_inliers = inliers;
            if best_inliers.len() == pairs.len() {
                break;
            }
        }
    }
    if best_inliers.len() < 3 {
        return None;
    }
    let subset: Vec<_> = best_inliers.iter().map(|&k| pairs[k]).collect();
    let refined = fit_rigid(&subset)?;
    Some((refined, best_inliers))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread_points(n: usize) -> Vec<(f64, f64)> {
        (0..n)
            .map(|i| ((i as f64 * 7.3) % 100.0, (i as f64 * 13.7) % 80.0))
            .collect()
    }

    #[test]
    fn apply_and_inverse_roundtrip() {
        let t = Rigid2d { theta: 0.7, tx: 3.0, ty: -4.0 };
        let p = (12.0, 34.0);
        let q = t.inverse().apply(t.apply(p));
        assert!((q.0 - p.0).abs() < 1e-9 && (q.1 - p.1).abs() < 1e-9);
    }

    #[test]
    fn exact_fit_recovers_transform() {
        let truth = Rigid2d { theta: -0.3, tx: 10.0, ty: 2.0 };
        let pairs: Vec<_> =
            spread_points(30).into_iter().map(|p| (p, truth.apply(p))).collect();
        let (est, inliers) = estimate_rigid_motion(&pairs, 50, 0.5, 1).unwrap();
        assert!((est.theta - truth.theta).abs() < 1e-9);
        assert!((est.tx - truth.tx).abs() < 1e-6);
        assert_eq!(inliers.len(), 30);
    }

    #[test]
    fn outliers_are_rejected() {
        let truth = Rigid2d { theta: 0.2, tx: -5.0, ty: 8.0 };
        let mut pairs: Vec<_> =
            spread_points(40).into_iter().map(|p| (p, truth.apply(p))).collect();
        // 30 % gross outliers.
        for (k, pair) in pairs.iter_mut().enumerate().take(12) {
            pair.1 = (500.0 + k as f64 * 31.0, -300.0 - k as f64 * 17.0);
        }
        let (est, inliers) = estimate_rigid_motion(&pairs, 200, 1.0, 3).unwrap();
        assert!((est.theta - truth.theta).abs() < 1e-6, "theta {}", est.theta);
        assert_eq!(inliers.len(), 28);
        assert!(inliers.iter().all(|&i| i >= 12));
    }

    #[test]
    fn noisy_inliers_average_out() {
        let truth = Rigid2d { theta: 0.05, tx: 2.0, ty: 1.0 };
        let pairs: Vec<_> = spread_points(50)
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let q = truth.apply(p);
                let jitter = ((i % 5) as f64 - 2.0) * 0.1;
                (p, (q.0 + jitter, q.1 - jitter))
            })
            .collect();
        let (est, _) = estimate_rigid_motion(&pairs, 200, 1.0, 5).unwrap();
        assert!((est.tx - truth.tx).abs() < 0.2);
        assert!((est.theta - truth.theta).abs() < 0.01);
    }

    #[test]
    fn too_few_pairs_is_none() {
        assert!(estimate_rigid_motion(&[], 10, 1.0, 0).is_none());
        assert!(estimate_rigid_motion(&[((0.0, 0.0), (1.0, 1.0))], 10, 1.0, 0).is_none());
    }

    #[test]
    fn degenerate_identical_points_is_none() {
        let pairs = vec![((5.0, 5.0), (5.0, 5.0)); 10];
        // All points identical: rotation is unobservable; the fit
        // degenerates and no 3-inlier consensus with a valid model forms.
        let result = estimate_rigid_motion(&pairs, 50, 0.5, 2);
        // Either None or an identity-ish transform is acceptable; it
        // must not panic and must keep translation near zero if Some.
        if let Some((t, _)) = result {
            assert!(t.translation_norm() < 1e-6 || t.translation_norm().is_finite());
        }
    }

    #[test]
    fn pure_translation_case() {
        let truth = Rigid2d { theta: 0.0, tx: -3.5, ty: 7.25 };
        let pairs: Vec<_> =
            spread_points(20).into_iter().map(|p| (p, truth.apply(p))).collect();
        let (est, _) = estimate_rigid_motion(&pairs, 100, 0.5, 9).unwrap();
        assert!(est.theta.abs() < 1e-9);
        assert!((est.tx + 3.5).abs() < 1e-9);
        assert!((est.ty - 7.25).abs() < 1e-9);
    }
}

//! A from-scratch computer-vision stack for the rhythmic pixel region
//! workloads: image pyramids, FAST corner detection, ORB-style oriented
//! binary descriptors, Hamming matching, RANSAC rigid-motion
//! estimation, blob detection, k-means clustering, and the accuracy
//! metrics the paper reports (absolute trajectory error, relative pose
//! error, IoU, mean average precision).
//!
//! This substitutes for the paper's ORB-SLAM2 / OpenCV dependency: the
//! algorithms consume ordinary decoded frames, emit keypoints with the
//! `size` and `octave` attributes the paper's region policies are built
//! from (§3.4), and degrade the same qualitative way when pixels are
//! missing.
//!
//! # Example
//!
//! ```
//! use rpr_frame::Plane;
//! use rpr_vision::{OrbDetector, match_descriptors};
//!
//! // A frame with a strong corner pattern.
//! let frame = Plane::from_fn(64, 64, |x, y| {
//!     if x > 30 && y > 30 { 220 } else { 30 }
//! });
//! let orb = OrbDetector::default();
//! let kps = orb.detect(&frame);
//! assert!(!kps.is_empty());
//! // Self-matching finds zero-distance correspondences (the ratio test
//! // drops features whose descriptors repeat elsewhere in the frame).
//! let matches = match_descriptors(&kps, &kps, 64, 0.9);
//! assert!(matches.iter().all(|m| m.distance == 0));
//! assert!(!matches.is_empty());
//! ```

#![deny(missing_docs)]

mod blob;
mod brief;
mod fast;
mod keypoint;
mod kmeans;
mod matcher;
mod metrics;
mod motion;
mod orb;
mod pyramid;
mod ransac;

pub use blob::{detect_blobs, Blob};
pub use brief::{BriefPattern, Descriptor, DESCRIPTOR_BYTES};
pub use fast::{detect_fast, FastConfig};
pub use keypoint::KeyPoint;
pub use kmeans::{kmeans, KMeansResult};
pub use matcher::{match_descriptors, DescriptorMatch};
pub use metrics::{
    align_rigid_2d, ate_rmse, average_precision, mean_average_precision, relative_pose_error,
    Pose2d, RpeSummary,
};
pub use motion::{estimate_block_motion, moving_regions, MotionVector};
pub use orb::{OrbConfig, OrbDetector, OrbFeature};
pub use pyramid::{resize_bilinear, ImagePyramid};
pub use ransac::{estimate_rigid_motion, PointPair, Rigid2d};

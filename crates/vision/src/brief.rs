//! Steered BRIEF binary descriptors (the descriptor half of ORB).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rpr_frame::GrayFrame;
use serde::{Deserialize, Serialize};

/// Descriptor length in bytes (256 bits).
pub const DESCRIPTOR_BYTES: usize = 32;

/// A 256-bit binary descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Descriptor(pub [u8; DESCRIPTOR_BYTES]);

impl Descriptor {
    /// Hamming distance to another descriptor (0–256).
    #[inline]
    pub fn hamming(&self, other: &Descriptor) -> u32 {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }
}

/// The fixed comparison-pair pattern of a BRIEF descriptor: 256 pixel
/// pairs drawn from a Gaussian inside a 31x31 patch (seeded and
/// deterministic, so descriptors are comparable across frames and
/// runs). At description time the pattern is rotated by the keypoint
/// orientation (steered BRIEF).
///
/// # Example
///
/// ```
/// use rpr_frame::Plane;
/// use rpr_vision::BriefPattern;
///
/// let pattern = BriefPattern::standard();
/// let frame = Plane::from_fn(64, 64, |x, y| (x * 3 + y * 7) as u8);
/// let a = pattern.describe(&frame, 32.0, 32.0, 0.0);
/// let b = pattern.describe(&frame, 32.0, 32.0, 0.0);
/// assert_eq!(a.hamming(&b), 0);
/// ```
#[derive(Debug, Clone)]
pub struct BriefPattern {
    /// 256 pairs of patch-relative offsets.
    pairs: Vec<((f64, f64), (f64, f64))>,
}

impl BriefPattern {
    /// The canonical pattern (seed 0xB51EF), 256 Gaussian pairs in a
    /// 31x31 patch.
    pub fn standard() -> Self {
        Self::with_seed(0xB51EF)
    }

    /// A pattern from an explicit seed.
    pub fn with_seed(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sigma = 31.0 / 5.0;
        let gauss = move |rng: &mut ChaCha8Rng| -> f64 {
            // Box-Muller, clamped to the patch.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (g * sigma).clamp(-15.0, 15.0)
        };
        let pairs = (0..DESCRIPTOR_BYTES * 8)
            .map(|_| {
                (
                    (gauss(&mut rng), gauss(&mut rng)),
                    (gauss(&mut rng), gauss(&mut rng)),
                )
            })
            .collect();
        BriefPattern { pairs }
    }

    /// Computes the descriptor of the patch centred at `(cx, cy)`,
    /// rotated by `angle` radians. Samples outside the frame clamp to
    /// its edge.
    pub fn describe(&self, frame: &GrayFrame, cx: f64, cy: f64, angle: f64) -> Descriptor {
        let (s, c) = angle.sin_cos();
        let mut bytes = [0u8; DESCRIPTOR_BYTES];
        for (i, &((ax, ay), (bx, by))) in self.pairs.iter().enumerate() {
            let (rax, ray) = (c * ax - s * ay, s * ax + c * ay);
            let (rbx, rby) = (c * bx - s * by, s * bx + c * by);
            let va = frame.get_clamped((cx + rax).round() as i64, (cy + ray).round() as i64);
            let vb = frame.get_clamped((cx + rbx).round() as i64, (cy + rby).round() as i64);
            if va < vb {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        Descriptor(bytes)
    }
}

/// Intensity-centroid orientation of the patch around `(cx, cy)` with
/// radius `r` (Rosin's moment method, the orientation ORB assigns to
/// FAST corners).
pub fn intensity_centroid_angle(frame: &GrayFrame, cx: f64, cy: f64, r: i64) -> f64 {
    let mut m10 = 0.0;
    let mut m01 = 0.0;
    for dy in -r..=r {
        for dx in -r..=r {
            if dx * dx + dy * dy > r * r {
                continue;
            }
            let v = f64::from(frame.get_clamped(cx as i64 + dx, cy as i64 + dy));
            m10 += dx as f64 * v;
            m01 += dy as f64 * v;
        }
    }
    m01.atan2(m10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_frame::Plane;

    #[test]
    fn hamming_distance_basics() {
        let zero = Descriptor([0u8; 32]);
        let ones = Descriptor([0xFF; 32]);
        assert_eq!(zero.hamming(&zero), 0);
        assert_eq!(zero.hamming(&ones), 256);
        let mut one_bit = [0u8; 32];
        one_bit[7] = 0b0001_0000;
        assert_eq!(zero.hamming(&Descriptor(one_bit)), 1);
    }

    #[test]
    fn pattern_is_deterministic() {
        let frame = Plane::from_fn(64, 64, |x, y| ((x * 5) ^ (y * 3)) as u8);
        let a = BriefPattern::standard().describe(&frame, 30.0, 30.0, 0.3);
        let b = BriefPattern::standard().describe(&frame, 30.0, 30.0, 0.3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_patches_have_distant_descriptors() {
        let frame = Plane::from_fn(128, 64, |x, y| {
            (x.wrapping_mul(37) ^ y.wrapping_mul(101)) as u8
        });
        let p = BriefPattern::standard();
        let a = p.describe(&frame, 30.0, 30.0, 0.0);
        let b = p.describe(&frame, 90.0, 30.0, 0.0);
        assert!(a.hamming(&b) > 60, "distance {}", a.hamming(&b));
    }

    #[test]
    fn same_patch_translated_identically_matches() {
        // The same texture rendered at two offsets must produce nearly
        // identical descriptors at corresponding centres.
        let tex = |x: u32, y: u32| ((x % 16).wrapping_mul(13) ^ (y % 16).wrapping_mul(29)) as u8;
        let frame_a = Plane::from_fn(64, 64, tex);
        let frame_b = Plane::from_fn(64, 64, |x, y| tex(x + 16, y));
        let p = BriefPattern::standard();
        let a = p.describe(&frame_a, 40.0, 32.0, 0.0);
        let b = p.describe(&frame_b, 24.0, 32.0, 0.0);
        assert!(a.hamming(&b) <= 8, "distance {}", a.hamming(&b));
    }

    #[test]
    fn orientation_points_toward_bright_side() {
        // Bright half-plane to the right: centroid angle ≈ 0.
        let frame = Plane::from_fn(64, 64, |x, _| if x > 32 { 200 } else { 20 });
        let angle = intensity_centroid_angle(&frame, 32.0, 32.0, 10);
        assert!(angle.abs() < 0.2, "angle {angle}");
        // Bright side below: angle ≈ pi/2.
        let frame = Plane::from_fn(64, 64, |_, y| if y > 32 { 200 } else { 20 });
        let angle = intensity_centroid_angle(&frame, 32.0, 32.0, 10);
        assert!((angle - std::f64::consts::FRAC_PI_2).abs() < 0.2, "angle {angle}");
    }

    #[test]
    fn steering_compensates_rotation_roughly() {
        // A radial pattern rotated 90° described with the rotated angle
        // should match the original better than with angle 0.
        let tex = |x: i64, y: i64| {
            let dx = x - 32;
            let dy = y - 32;
            (((dx * 3 + dy * 7).rem_euclid(32)) * 8) as u8
        };
        let frame = Plane::from_fn(64, 64, |x, y| tex(i64::from(x), i64::from(y)));
        // Rotate the image by 90° around the centre: (x,y) <- (y, 64-x).
        let rotated = Plane::from_fn(64, 64, |x, y| {
            tex(i64::from(y), 63 - i64::from(x))
        });
        let p = BriefPattern::standard();
        let original = p.describe(&frame, 32.0, 32.0, 0.0);
        let steered = p.describe(&rotated, 32.0, 32.0, std::f64::consts::FRAC_PI_2);
        let unsteered = p.describe(&rotated, 32.0, 32.0, 0.0);
        assert!(
            original.hamming(&steered) < original.hamming(&unsteered),
            "steered {} vs unsteered {}",
            original.hamming(&steered),
            original.hamming(&unsteered)
        );
    }
}

use serde::{Deserialize, Serialize};

/// A detected interest point, carrying the attributes the paper's
/// region policies consume: position, `size` (diameter of the
/// meaningful neighbourhood), `octave` (pyramid level), orientation,
/// and detector response.
///
/// Mirrors OpenCV's `cv::KeyPoint`, which §4.3.1 cites for the `size`
/// and `octave` attributes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyPoint {
    /// x in full-resolution (level 0) coordinates.
    pub x: f64,
    /// y in full-resolution (level 0) coordinates.
    pub y: f64,
    /// Diameter of the descriptor neighbourhood at full resolution.
    pub size: f64,
    /// Pyramid octave the point was detected in.
    pub octave: u32,
    /// Orientation angle in radians (intensity centroid).
    pub angle: f64,
    /// Detector response (corner strength).
    pub response: f64,
}

impl KeyPoint {
    /// Creates a keypoint at `(x, y)` with default attributes.
    pub fn new(x: f64, y: f64) -> Self {
        KeyPoint { x, y, size: 31.0, octave: 0, angle: 0.0, response: 0.0 }
    }

    /// Euclidean distance to another keypoint.
    pub fn distance(&self, other: &KeyPoint) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_orb_patch() {
        let k = KeyPoint::new(3.0, 4.0);
        assert_eq!(k.size, 31.0);
        assert_eq!(k.octave, 0);
    }

    #[test]
    fn distance_is_euclidean() {
        let a = KeyPoint::new(0.0, 0.0);
        let b = KeyPoint::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }
}

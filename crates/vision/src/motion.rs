//! Block-based motion estimation — the motion-vector substrate for
//! Euphrates-style region policies (paper §4.3.1: policy makers "can
//! write … sophisticated motion-vector based techniques, such as those
//! found in Euphrates or EVA²").
//!
//! Motion is estimated per block with a three-step logarithmic search
//! minimizing the sum of absolute differences, the classic codec/ISP
//! algorithm whose vectors Euphrates reuses.

use rpr_frame::{GrayFrame, Rect};
use serde::{Deserialize, Serialize};

/// Motion of one block between two frames.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionVector {
    /// The block's footprint in the current frame.
    pub block: Rect,
    /// Horizontal displacement (px) from the previous frame.
    pub dx: i32,
    /// Vertical displacement (px) from the previous frame.
    pub dy: i32,
    /// Sum of absolute differences at the best match (lower = more
    /// confident).
    pub sad: u64,
}

impl MotionVector {
    /// Displacement magnitude in pixels.
    ///
    /// Squared in `f64` so extreme displacements cannot wrap the way
    /// an `i32` `dx*dx + dy*dy` would.
    pub fn magnitude(&self) -> f64 {
        let dx = f64::from(self.dx);
        let dy = f64::from(self.dy);
        (dx * dx + dy * dy).sqrt()
    }
}

/// Sum of absolute differences between a block of `cur` anchored at
/// `(bx, by)` and the same-size block of `prev` at `(bx+dx, by+dy)`,
/// clamped at frame edges.
fn block_sad(
    prev: &GrayFrame,
    cur: &GrayFrame,
    bx: u32,
    by: u32,
    size: u32,
    dx: i32,
    dy: i32,
) -> u64 {
    let mut sad = 0u64;
    for y in 0..size {
        for x in 0..size {
            let c = i64::from(cur.get_clamped(i64::from(bx + x), i64::from(by + y)));
            let p = i64::from(prev.get_clamped(
                i64::from(bx + x) + i64::from(dx),
                i64::from(by + y) + i64::from(dy),
            ));
            sad += c.abs_diff(p);
        }
    }
    sad
}

/// Estimates per-block motion from `prev` to `cur` with a three-step
/// search of the given radius.
///
/// # Panics
///
/// Panics when `block_size == 0` or the frames' sizes differ.
///
/// # Example
///
/// ```
/// use rpr_frame::Plane;
/// use rpr_vision::estimate_block_motion;
///
/// // A bright bar shifts right by 4 px between frames.
/// let prev = Plane::from_fn(64, 32, |x, _| if (20..28).contains(&x) { 220 } else { 20 });
/// let cur = Plane::from_fn(64, 32, |x, _| if (24..32).contains(&x) { 220 } else { 20 });
/// let mvs = estimate_block_motion(&prev, &cur, 16, 8);
/// let moving = mvs.iter().find(|m| m.block.contains(24, 8)).unwrap();
/// assert_eq!((moving.dx, moving.dy), (-4, 0)); // content came from 4 px left
/// ```
pub fn estimate_block_motion(
    prev: &GrayFrame,
    cur: &GrayFrame,
    block_size: u32,
    search_radius: u32,
) -> Vec<MotionVector> {
    assert!(block_size > 0, "block size must be nonzero");
    assert_eq!(
        (prev.width(), prev.height()),
        (cur.width(), cur.height()),
        "frame sizes must match"
    );
    let mut vectors = Vec::new();
    let mut by = 0;
    while by < cur.height() {
        let mut bx = 0;
        while bx < cur.width() {
            let size = block_size
                .min(cur.width() - bx)
                .min(cur.height() - by);
            // Three-step search: start with a big stride, refine around
            // the best candidate.
            let mut best = (0i32, 0i32, block_sad(prev, cur, bx, by, size, 0, 0));
            let mut step = (search_radius.max(1) as i32 + 1) / 2;
            while step >= 1 {
                let centre = (best.0, best.1);
                for dy in [-step, 0, step] {
                    for dx in [-step, 0, step] {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let cand = (centre.0 + dx, centre.1 + dy);
                        if cand.0.unsigned_abs() > search_radius
                            || cand.1.unsigned_abs() > search_radius
                        {
                            continue;
                        }
                        let sad = block_sad(prev, cur, bx, by, size, cand.0, cand.1);
                        // Ties prefer the smaller displacement (zero-MV
                        // bias, as real codecs do).
                        let better = sad < best.2
                            || (sad == best.2
                                && cand.0 * cand.0 + cand.1 * cand.1
                                    < best.0 * best.0 + best.1 * best.1);
                        if better {
                            best = (cand.0, cand.1, sad);
                        }
                    }
                }
                step /= 2;
            }
            vectors.push(MotionVector {
                block: Rect::new(bx, by, size, size),
                dx: best.0,
                dy: best.1,
                sad: best.2,
            });
            bx += block_size;
        }
        by += block_size;
    }
    vectors
}

/// Extracts regions of coherent motion: moving blocks (magnitude ≥
/// `min_magnitude`) merged with their moving 8-neighbours into bounding
/// boxes, each paired with the cluster's mean displacement — ready to
/// feed a region policy as `(Rect, displacement)` detections.
pub fn moving_regions(vectors: &[MotionVector], min_magnitude: f64) -> Vec<(Rect, f64)> {
    let moving: Vec<&MotionVector> =
        vectors.iter().filter(|v| v.magnitude() >= min_magnitude).collect();
    if moving.is_empty() {
        return Vec::new();
    }
    // Union-find over blocks that touch.
    let mut parent: Vec<usize> = (0..moving.len()).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    #[allow(clippy::needless_range_loop)] // pairwise union-find over indices
    for i in 0..moving.len() {
        for j in i + 1..moving.len() {
            let a = moving[i].block;
            let b = moving[j].block;
            let touch = a.x <= b.right()
                && b.x <= a.right()
                && a.y <= b.bottom()
                && b.y <= a.bottom();
            if touch {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    let mut clusters: std::collections::HashMap<usize, (Rect, f64, usize)> =
        std::collections::HashMap::new();
    for (i, mv) in moving.iter().enumerate() {
        let root = find(&mut parent, i);
        let entry = clusters.entry(root).or_insert((mv.block, 0.0, 0));
        entry.0 = entry.0.union(&mv.block);
        entry.1 += mv.magnitude();
        entry.2 += 1;
    }
    let mut out: Vec<(Rect, f64)> = clusters
        .into_values()
        .map(|(rect, total, n)| (rect, total / n as f64))
        .collect();
    out.sort_by_key(|(r, _)| (r.y, r.x));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_frame::Plane;

    fn moving_square(offset: u32) -> GrayFrame {
        Plane::from_fn(96, 64, |x, y| {
            if (offset..offset + 16).contains(&x) && (24..40).contains(&y) {
                230
            } else {
                30
            }
        })
    }

    #[test]
    fn magnitude_survives_large_displacements() {
        // 50_000^2 + 50_000^2 wraps i32; the f64 path must not.
        let mv = MotionVector {
            block: Rect::new(0, 0, 16, 16),
            dx: 50_000,
            dy: -50_000,
            sad: 0,
        };
        let expected = 50_000.0 * std::f64::consts::SQRT_2;
        assert!(
            (mv.magnitude() - expected).abs() < 1e-6,
            "magnitude {} != {expected}",
            mv.magnitude()
        );
        // And the maximal case stays finite and monotone.
        let extreme = MotionVector {
            block: Rect::new(0, 0, 16, 16),
            dx: i32::MAX,
            dy: i32::MIN,
            sad: 0,
        };
        assert!(extreme.magnitude().is_finite());
        assert!(extreme.magnitude() > mv.magnitude());
    }

    #[test]
    fn static_scene_has_zero_motion() {
        let f = moving_square(30);
        let mvs = estimate_block_motion(&f, &f, 16, 8);
        assert!(mvs.iter().all(|m| m.dx == 0 && m.dy == 0 && m.sad == 0));
    }

    #[test]
    fn translation_is_recovered() {
        let prev = moving_square(24);
        let cur = moving_square(30);
        let mvs = estimate_block_motion(&prev, &cur, 16, 8);
        let on_object: Vec<&MotionVector> =
            mvs.iter().filter(|m| m.block.contains(32, 32)).collect();
        assert!(!on_object.is_empty());
        // Content moved +6 px right: the best previous-frame match sits
        // 6 px to the left.
        assert!(on_object.iter().any(|m| m.dx == -6 && m.dy == 0),
            "vectors: {:?}", on_object);
    }

    #[test]
    fn background_blocks_stay_still_while_object_moves() {
        let prev = moving_square(24);
        let cur = moving_square(30);
        let mvs = estimate_block_motion(&prev, &cur, 16, 8);
        let corner = mvs.iter().find(|m| m.block.contains(88, 8)).unwrap();
        assert_eq!((corner.dx, corner.dy), (0, 0));
    }

    #[test]
    fn moving_regions_cluster_the_object() {
        let prev = moving_square(24);
        let cur = moving_square(30);
        let mvs = estimate_block_motion(&prev, &cur, 16, 8);
        let regions = moving_regions(&mvs, 2.0);
        assert!(!regions.is_empty());
        // Some cluster covers the object and reports ~6 px displacement.
        let hit = regions.iter().find(|(r, _)| r.contains(32, 32)).expect("object cluster");
        assert!(hit.1 >= 3.0, "displacement {}", hit.1);
    }

    #[test]
    fn no_motion_no_regions() {
        let f = moving_square(30);
        let mvs = estimate_block_motion(&f, &f, 16, 8);
        assert!(moving_regions(&mvs, 1.0).is_empty());
    }

    #[test]
    fn covers_non_multiple_dimensions() {
        let prev: GrayFrame = Plane::new(50, 30);
        let cur: GrayFrame = Plane::new(50, 30);
        let mvs = estimate_block_motion(&prev, &cur, 16, 4);
        let covered: u64 = mvs.iter().map(|m| m.block.area()).sum();
        // Edge blocks shrink (square, min(remaining w, remaining h));
        // full coverage is not required, but the grid must tile the
        // frame origin-to-edge in both axes.
        assert!(covered > 0);
        assert!(mvs.iter().any(|m| m.block.right() >= 48));
        assert!(mvs.iter().any(|m| m.block.bottom() >= 30));
    }
}

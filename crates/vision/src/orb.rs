use crate::brief::intensity_centroid_angle;
use crate::{detect_fast, BriefPattern, Descriptor, FastConfig, ImagePyramid, KeyPoint};
use serde::{Deserialize, Serialize};

/// ORB detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrbConfig {
    /// Maximum features to return per frame (the paper cites ~1500 for
    /// a 1080p ORB-SLAM configuration).
    pub n_features: usize,
    /// Pyramid levels.
    pub n_levels: u32,
    /// Pyramid scale factor between levels.
    pub scale_factor: f64,
    /// FAST threshold.
    pub fast_threshold: u8,
    /// Radius of the orientation moment patch.
    pub orientation_radius: i64,
}

impl Default for OrbConfig {
    fn default() -> Self {
        OrbConfig {
            n_features: 500,
            n_levels: 4,
            scale_factor: 1.25,
            fast_threshold: 20,
            orientation_radius: 7,
        }
    }
}

/// A keypoint plus its binary descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrbFeature {
    /// The keypoint (position in full-resolution coordinates, size,
    /// octave, angle, response).
    pub keypoint: KeyPoint,
    /// The steered BRIEF descriptor.
    pub descriptor: Descriptor,
}

/// Oriented-FAST + steered-BRIEF feature detector — the from-scratch
/// stand-in for the ORB front end of ORB-SLAM2 (paper §3.4).
///
/// Detection runs FAST-9 with non-maximum suppression on every pyramid
/// level, keeps the strongest `n_features` responses overall, assigns
/// each an intensity-centroid orientation, and describes it with a
/// rotation-steered 256-bit BRIEF descriptor.
///
/// # Example
///
/// ```
/// use rpr_frame::Plane;
/// use rpr_vision::OrbDetector;
///
/// let frame = Plane::from_fn(96, 96, |x, y| {
///     if ((x / 12) + (y / 12)) % 2 == 0 { 210 } else { 30 }
/// });
/// let features = OrbDetector::default().detect(&frame);
/// assert!(features.len() >= 10);
/// // Every feature carries the attributes policies need.
/// assert!(features.iter().all(|f| f.keypoint.size > 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct OrbDetector {
    config: OrbConfig,
    pattern: BriefPattern,
}

impl OrbDetector {
    /// Creates a detector with the given configuration.
    pub fn new(config: OrbConfig) -> Self {
        OrbDetector { config, pattern: BriefPattern::standard() }
    }

    /// The active configuration.
    pub fn config(&self) -> &OrbConfig {
        &self.config
    }

    /// Detects and describes features in `frame`.
    pub fn detect(&self, frame: &rpr_frame::GrayFrame) -> Vec<OrbFeature> {
        let pyramid = ImagePyramid::build(frame, self.config.n_levels, self.config.scale_factor);
        let fast_cfg =
            FastConfig { threshold: self.config.fast_threshold, non_max_suppression: true };

        let mut features: Vec<OrbFeature> = Vec::new();
        for level in 0..pyramid.levels() {
            let img = pyramid.level(level);
            let scale = pyramid.scale_of(level);
            for corner in detect_fast(img, &fast_cfg) {
                let cx = f64::from(corner.x);
                let cy = f64::from(corner.y);
                let angle =
                    intensity_centroid_angle(img, cx, cy, self.config.orientation_radius);
                let descriptor = self.pattern.describe(img, cx, cy, angle);
                features.push(OrbFeature {
                    keypoint: KeyPoint {
                        x: cx * scale,
                        y: cy * scale,
                        size: 31.0 * scale,
                        octave: level as u32,
                        angle,
                        response: corner.score,
                    },
                    descriptor,
                });
            }
        }

        // Keep the strongest N overall (responses are comparable across
        // levels since the score is threshold-exceedance based).
        features.sort_by(|a, b| b.keypoint.response.total_cmp(&a.keypoint.response));
        features.truncate(self.config.n_features);
        features
    }
}

impl Default for OrbDetector {
    fn default() -> Self {
        OrbDetector::new(OrbConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_frame::Plane;

    fn checkers(w: u32, h: u32, cell: u32) -> rpr_frame::GrayFrame {
        Plane::from_fn(w, h, |x, y| if ((x / cell) + (y / cell)).is_multiple_of(2) { 210 } else { 30 })
    }

    #[test]
    fn detects_features_on_texture() {
        let f = OrbDetector::default().detect(&checkers(128, 128, 16));
        assert!(f.len() > 20, "{} features", f.len());
    }

    #[test]
    fn flat_frame_has_no_features() {
        let flat = Plane::from_fn(128, 128, |_, _| 100u8);
        assert!(OrbDetector::default().detect(&flat).is_empty());
    }

    #[test]
    fn n_features_caps_output() {
        let config = OrbConfig { n_features: 10, ..OrbConfig::default() };
        let f = OrbDetector::new(config).detect(&checkers(128, 128, 8));
        assert_eq!(f.len(), 10);
    }

    #[test]
    fn truncation_keeps_strongest() {
        let frame = checkers(128, 128, 16);
        let all = OrbDetector::new(OrbConfig { n_features: 10_000, ..Default::default() })
            .detect(&frame);
        let top = OrbDetector::new(OrbConfig { n_features: 5, ..Default::default() })
            .detect(&frame);
        let min_top =
            top.iter().map(|f| f.keypoint.response).fold(f64::MAX, f64::min);
        let stronger = all.iter().filter(|f| f.keypoint.response > min_top).count();
        assert!(stronger <= 5, "{stronger} features stronger than kept minimum");
    }

    #[test]
    fn multi_level_features_have_octaves_and_scaled_size() {
        let f = OrbDetector::default().detect(&checkers(160, 160, 20));
        let octaves: std::collections::HashSet<u32> =
            f.iter().map(|x| x.keypoint.octave).collect();
        assert!(octaves.len() >= 2, "octaves {octaves:?}");
        for feat in &f {
            let expected = 31.0 * 1.25f64.powi(feat.keypoint.octave as i32);
            assert!((feat.keypoint.size - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn coordinates_are_full_resolution() {
        let f = OrbDetector::default().detect(&checkers(128, 128, 16));
        for feat in &f {
            assert!(feat.keypoint.x < 128.0 && feat.keypoint.y < 128.0);
        }
    }

    #[test]
    fn same_frame_detects_identically() {
        let frame = checkers(96, 96, 12);
        let d = OrbDetector::default();
        let a = d.detect(&frame);
        let b = d.detect(&frame);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.descriptor, y.descriptor);
        }
    }
}

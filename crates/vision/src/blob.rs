use rpr_frame::{GrayFrame, Rect};
use serde::{Deserialize, Serialize};

/// A connected component of above-threshold pixels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Blob {
    /// Tight bounding box.
    pub bbox: Rect,
    /// Number of member pixels.
    pub area: u64,
    /// Centroid x.
    pub cx: f64,
    /// Centroid y.
    pub cy: f64,
    /// Mean intensity of member pixels.
    pub mean_intensity: f64,
}

/// Finds connected components of pixels `>= threshold` (4-connectivity)
/// with at least `min_area` pixels, sorted by descending area.
///
/// The synthetic pose and face workloads render their targets as bright
/// structures on darker backgrounds, so blob detection is the
/// sufficient-statistics detector — and, crucially for the evaluation,
/// it degrades gracefully when the rhythmic encoder blanks non-regional
/// pixels (missing pixels go black, shrinking or splitting blobs, which
/// is exactly the accuracy-loss mechanism the paper measures).
///
/// # Example
///
/// ```
/// use rpr_frame::{Plane, Rect};
/// use rpr_vision::detect_blobs;
///
/// let mut frame = Plane::new(64, 64);
/// frame.fill_rect(Rect::new(10, 12, 8, 6), 255u8);
/// let blobs = detect_blobs(&frame, 128, 4);
/// assert_eq!(blobs.len(), 1);
/// assert_eq!(blobs[0].bbox, Rect::new(10, 12, 8, 6));
/// assert_eq!(blobs[0].area, 48);
/// ```
pub fn detect_blobs(frame: &GrayFrame, threshold: u8, min_area: u64) -> Vec<Blob> {
    let w = frame.width() as usize;
    let h = frame.height() as usize;
    if w == 0 || h == 0 {
        return Vec::new();
    }
    let data = frame.as_slice();
    let mut visited = vec![false; w * h];
    let mut blobs = Vec::new();
    let mut stack: Vec<usize> = Vec::new();

    for start in 0..w * h {
        if visited[start] || data[start] < threshold {
            continue;
        }
        // Flood fill.
        let mut min_x = usize::MAX;
        let mut min_y = usize::MAX;
        let mut max_x = 0usize;
        let mut max_y = 0usize;
        let mut area = 0u64;
        let mut sum_x = 0.0;
        let mut sum_y = 0.0;
        let mut sum_v = 0.0;
        stack.push(start);
        visited[start] = true;
        while let Some(i) = stack.pop() {
            let x = i % w;
            let y = i / w;
            area += 1;
            sum_x += x as f64;
            sum_y += y as f64;
            sum_v += f64::from(data[i]);
            min_x = min_x.min(x);
            min_y = min_y.min(y);
            max_x = max_x.max(x);
            max_y = max_y.max(y);
            // 4-neighbours.
            if x > 0 && !visited[i - 1] && data[i - 1] >= threshold {
                visited[i - 1] = true;
                stack.push(i - 1);
            }
            if x + 1 < w && !visited[i + 1] && data[i + 1] >= threshold {
                visited[i + 1] = true;
                stack.push(i + 1);
            }
            if y > 0 && !visited[i - w] && data[i - w] >= threshold {
                visited[i - w] = true;
                stack.push(i - w);
            }
            if y + 1 < h && !visited[i + w] && data[i + w] >= threshold {
                visited[i + w] = true;
                stack.push(i + w);
            }
        }
        if area >= min_area {
            blobs.push(Blob {
                bbox: Rect::new(
                    min_x as u32,
                    min_y as u32,
                    (max_x - min_x + 1) as u32,
                    (max_y - min_y + 1) as u32,
                ),
                area,
                cx: sum_x / area as f64,
                cy: sum_y / area as f64,
                mean_intensity: sum_v / area as f64,
            });
        }
    }
    blobs.sort_by_key(|b| std::cmp::Reverse(b.area));
    blobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_frame::Plane;

    #[test]
    fn finds_multiple_separate_blobs() {
        let mut frame: GrayFrame = Plane::new(64, 64);
        frame.fill_rect(Rect::new(5, 5, 10, 10), 200);
        frame.fill_rect(Rect::new(40, 40, 4, 4), 220);
        let blobs = detect_blobs(&frame, 128, 1);
        assert_eq!(blobs.len(), 2);
        // Sorted by area descending.
        assert_eq!(blobs[0].area, 100);
        assert_eq!(blobs[1].area, 16);
    }

    #[test]
    fn touching_regions_merge() {
        let mut frame: GrayFrame = Plane::new(32, 32);
        frame.fill_rect(Rect::new(0, 0, 8, 8), 200);
        frame.fill_rect(Rect::new(8, 0, 8, 8), 200); // shares an edge? (8..16)
        let blobs = detect_blobs(&frame, 128, 1);
        assert_eq!(blobs.len(), 1);
        assert_eq!(blobs[0].bbox, Rect::new(0, 0, 16, 8));
    }

    #[test]
    fn diagonal_only_contact_stays_separate() {
        let mut frame: GrayFrame = Plane::new(16, 16);
        frame.set(4, 4, 200);
        frame.set(5, 5, 200);
        let blobs = detect_blobs(&frame, 128, 1);
        assert_eq!(blobs.len(), 2, "4-connectivity must not merge diagonals");
    }

    #[test]
    fn min_area_filters_specks() {
        let mut frame: GrayFrame = Plane::new(32, 32);
        frame.set(1, 1, 255);
        frame.fill_rect(Rect::new(10, 10, 5, 5), 255);
        let blobs = detect_blobs(&frame, 128, 4);
        assert_eq!(blobs.len(), 1);
        assert_eq!(blobs[0].area, 25);
    }

    #[test]
    fn centroid_is_geometric_center() {
        let mut frame: GrayFrame = Plane::new(32, 32);
        frame.fill_rect(Rect::new(10, 20, 5, 3), 255);
        let blobs = detect_blobs(&frame, 128, 1);
        assert!((blobs[0].cx - 12.0).abs() < 1e-9);
        assert!((blobs[0].cy - 21.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_is_inclusive() {
        let mut frame: GrayFrame = Plane::new(8, 8);
        frame.set(3, 3, 128);
        assert_eq!(detect_blobs(&frame, 128, 1).len(), 1);
        assert_eq!(detect_blobs(&frame, 129, 1).len(), 0);
    }

    #[test]
    fn empty_and_dark_frames_yield_nothing() {
        let dark: GrayFrame = Plane::new(16, 16);
        assert!(detect_blobs(&dark, 1, 1).is_empty());
        let empty: GrayFrame = Plane::new(0, 0);
        assert!(detect_blobs(&empty, 1, 1).is_empty());
    }

    #[test]
    fn full_frame_blob() {
        let bright = Plane::from_fn(16, 16, |_, _| 255u8);
        let blobs = detect_blobs(&bright, 1, 1);
        assert_eq!(blobs.len(), 1);
        assert_eq!(blobs[0].area, 256);
        assert_eq!(blobs[0].bbox, Rect::new(0, 0, 16, 16));
    }
}

//! Property tests for the vision stack's metric and estimator
//! invariants.

use proptest::prelude::*;
use rpr_frame::Rect;
use rpr_vision::{
    align_rigid_2d, ate_rmse, average_precision, estimate_rigid_motion, kmeans, Pose2d,
    Rigid2d,
};

fn trajectory_strategy() -> impl Strategy<Value = Vec<Pose2d>> {
    proptest::collection::vec((0.0f64..200.0, 0.0f64..200.0, -3.0f64..3.0), 3..24)
        .prop_map(|v| v.into_iter().map(|(x, y, t)| Pose2d::new(x, y, t)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ATE of a trajectory against itself is zero; against any rigidly
    /// transformed copy it is (numerically) zero as well.
    #[test]
    fn ate_rigid_invariance(traj in trajectory_strategy(),
                            theta in -3.0f64..3.0, tx in -100.0f64..100.0, ty in -100.0f64..100.0) {
        prop_assume!(traj.len() >= 2);
        // Degenerate all-identical trajectories have unobservable
        // rotation; skip them.
        let first = traj[0];
        let spread = traj
            .iter()
            .any(|p| (p.x - first.x).abs() > 1e-6 || (p.y - first.y).abs() > 1e-6);
        prop_assume!(spread);
        let t = Rigid2d { theta, tx, ty };
        let moved: Vec<Pose2d> = traj
            .iter()
            .map(|p| {
                let q = t.apply((p.x, p.y));
                Pose2d::new(q.0, q.1, p.theta + theta)
            })
            .collect();
        let ate = ate_rmse(&moved, &traj).unwrap();
        prop_assert!(ate < 1e-6, "ate {ate}");
    }

    /// The alignment returned by align_rigid_2d never increases the
    /// RMSE relative to the identity alignment.
    #[test]
    fn alignment_is_no_worse_than_identity(a in trajectory_strategy(), b in trajectory_strategy()) {
        let n = a.len().min(b.len());
        prop_assume!(n >= 2);
        let (a, b) = (&a[..n], &b[..n]);
        let aligned = align_rigid_2d(a, b).unwrap();
        let rmse_aligned: f64 = {
            let s: f64 = a.iter().zip(b).map(|(p, g)| {
                let q = aligned.apply((p.x, p.y));
                (q.0 - g.x).powi(2) + (q.1 - g.y).powi(2)
            }).sum();
            (s / n as f64).sqrt()
        };
        let rmse_identity: f64 = {
            let s: f64 = a.iter().zip(b).map(|(p, g)| {
                (p.x - g.x).powi(2) + (p.y - g.y).powi(2)
            }).sum();
            (s / n as f64).sqrt()
        };
        prop_assert!(rmse_aligned <= rmse_identity + 1e-9);
    }

    /// RANSAC on outlier-free correspondences recovers the generating
    /// transform.
    #[test]
    fn ransac_recovers_clean_transforms(
        theta in -1.5f64..1.5, tx in -50.0f64..50.0, ty in -50.0f64..50.0, seed in 0u64..100,
    ) {
        let truth = Rigid2d { theta, tx, ty };
        let pairs: Vec<_> = (0..24)
            .map(|i| {
                let p = ((i as f64 * 7.1) % 90.0, (i as f64 * 13.3) % 70.0);
                (p, truth.apply(p))
            })
            .collect();
        let (est, inliers) = estimate_rigid_motion(&pairs, 100, 0.5, seed).expect("fit");
        prop_assert_eq!(inliers.len(), 24);
        prop_assert!((est.theta - theta).abs() < 1e-6);
        prop_assert!((est.tx - tx).abs() < 1e-6);
    }

    /// Average precision is bounded, and adding a pure false positive
    /// never raises it.
    #[test]
    fn ap_bounds_and_fp_monotonicity(
        n_gt in 1usize..6, n_det in 0usize..6, iou_t in 0.1f64..0.9,
    ) {
        let gts: Vec<Rect> = (0..n_gt).map(|i| Rect::new(i as u32 * 40, 0, 20, 20)).collect();
        let dets: Vec<(Rect, f64)> =
            (0..n_det).map(|i| (Rect::new(i as u32 * 40, 0, 20, 20), 1.0 - i as f64 * 0.1)).collect();
        let ap = average_precision(&dets, &gts, iou_t);
        prop_assert!((0.0..=1.0).contains(&ap));
        let mut with_fp = dets.clone();
        with_fp.push((Rect::new(5000, 5000, 10, 10), 0.05));
        let ap_fp = average_precision(&with_fp, &gts, iou_t);
        prop_assert!(ap_fp <= ap + 1e-12);
    }

    /// k-means assignments always index valid centres and every point
    /// is assigned to its nearest centre.
    #[test]
    fn kmeans_assignment_optimality(
        pts in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40),
        k in 1usize..6, seed in 0u64..20,
    ) {
        let result = kmeans(&pts, k, 25, seed).expect("non-empty input");
        prop_assert_eq!(result.assignments.len(), pts.len());
        for (i, &a) in result.assignments.iter().enumerate() {
            prop_assert!(a < result.centers.len());
            let d = |c: (f64, f64)| (pts[i].0 - c.0).powi(2) + (pts[i].1 - c.1).powi(2);
            let assigned = d(result.centers[a]);
            for &c in &result.centers {
                prop_assert!(assigned <= d(c) + 1e-9);
            }
        }
    }
}

//! A lossy DRAM wrapper around the memsim framebuffer path.
//!
//! [`LossyDram`] models the full store→read-back life of an encoded
//! frame: every write charges the burst-level [`DramModel`] and the
//! [`FramebufferPool`] exactly like the production path, and every
//! read-back passes through a seeded bit-rot process that flips bits
//! anywhere in the frame's DRAM image — payload, packed EncMask, or
//! offset table — with a configurable probability. The conformance
//! runner drives decode attempts through this wrapper to prove that a
//! frame surviving DRAM unscathed decodes identically and a frame that
//! rotted is *rejected*, never silently mis-decoded.

use crate::TestRng;
use rpr_core::{EncMask, EncodedFrame, FrameMetadata, RowOffsets};
use rpr_frame::PixelFormat;
use rpr_memsim::{DramConfig, DramModel, DramStats, FramebufferPool};

/// What the bit-rot process did to one read-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The frame came back bit-identical.
    Clean,
    /// At least one bit flipped; the returned frame is corrupted.
    Corrupted {
        /// Number of bits flipped across the frame's DRAM image.
        bits_flipped: u32,
    },
}

/// A seeded lossy DRAM holding encoded frames.
#[derive(Debug, Clone)]
pub struct LossyDram {
    dram: DramModel,
    pool: FramebufferPool,
    frames: Vec<EncodedFrame>,
    rng: TestRng,
    /// Probability, as `(num, den)`, that a read-back suffers at least
    /// one bit flip.
    rot_chance: (u64, u64),
    next_addr: u64,
    reads_corrupted: u64,
}

impl LossyDram {
    /// Creates a lossy DRAM. `rot_num / rot_den` is the per-read
    /// probability of corruption; `(0, 1)` models perfect DRAM.
    pub fn new(seed: u64, rot_num: u64, rot_den: u64) -> Self {
        assert!(rot_den > 0, "rot denominator must be positive");
        LossyDram {
            dram: DramModel::new(DramConfig::default()),
            pool: FramebufferPool::new(4),
            frames: Vec::new(),
            rng: TestRng::new(seed),
            rot_chance: (rot_num, rot_den),
            next_addr: 0,
            reads_corrupted: 0,
        }
    }

    /// A DRAM that never corrupts (the control arm).
    pub fn pristine(seed: u64) -> Self {
        LossyDram::new(seed, 0, 1)
    }

    /// Stores a frame, charging the DRAM model for the sequential DMA
    /// write and admitting it to the framebuffer pool. Returns the slot
    /// index for [`LossyDram::read_back`].
    pub fn store(&mut self, frame: &EncodedFrame) -> usize {
        let bytes = frame.total_bytes() as u64;
        self.dram.write_sequential(self.next_addr, bytes);
        self.next_addr += bytes;
        self.pool.admit_encoded(frame, PixelFormat::Gray8);
        self.frames.push(frame.clone());
        self.frames.len() - 1
    }

    /// Reads a stored frame back, charging the sequential read and
    /// applying the seeded bit-rot process.
    ///
    /// # Panics
    ///
    /// Panics when `slot` was never returned by [`LossyDram::store`].
    pub fn read_back(&mut self, slot: usize) -> (EncodedFrame, ReadOutcome) {
        let frame = self.frames[slot].clone();
        self.dram.read_sequential(0, frame.total_bytes() as u64);
        let (num, den) = self.rot_chance;
        if !self.rng.chance(num, den) {
            return (frame, ReadOutcome::Clean);
        }

        // Lay the frame's DRAM image out as payload ++ mask ++ offsets
        // and flip 1–4 bits at uniform positions.
        let meta = frame.metadata();
        let mut payload = frame.pixels().to_vec();
        let mut mask_bytes = meta.mask.as_bytes().to_vec();
        let mut offsets = meta.row_offsets.as_slice().to_vec();
        let image_bits =
            8 * (payload.len() + mask_bytes.len() + 4 * offsets.len());
        if image_bits == 0 {
            return (frame, ReadOutcome::Clean);
        }
        let bits_flipped = self.rng.range_u32(1, 4).min(image_bits as u32);
        let mut hit = Vec::with_capacity(bits_flipped as usize);
        while hit.len() < bits_flipped as usize {
            let bit = self.rng.range_usize(0, image_bits - 1);
            if hit.contains(&bit) {
                continue; // distinct positions: flips never cancel out
            }
            hit.push(bit);
            let (byte, shift) = (bit / 8, bit % 8);
            if byte < payload.len() {
                payload[byte] ^= 1 << shift;
            } else if byte < payload.len() + mask_bytes.len() {
                mask_bytes[byte - payload.len()] ^= 1 << shift;
            } else {
                let word = (byte - payload.len() - mask_bytes.len()) / 4;
                let word_shift = 8 * ((byte - payload.len() - mask_bytes.len()) % 4) + shift;
                offsets[word] ^= 1 << word_shift;
            }
        }
        self.reads_corrupted += 1;
        let mask = EncMask::from_raw_bytes(frame.width(), frame.height(), mask_bytes)
            .expect("mask byte length unchanged by bit flips");
        let metadata =
            FrameMetadata { row_offsets: RowOffsets::from_raw_offsets(offsets), mask };
        let rotted = EncodedFrame::from_raw_parts(
            frame.width(),
            frame.height(),
            frame.frame_idx(),
            payload,
            metadata,
            frame.integrity(),
        );
        (rotted, ReadOutcome::Corrupted { bits_flipped })
    }

    /// Number of stored frames.
    pub fn stored_frames(&self) -> usize {
        self.frames.len()
    }

    /// Number of read-backs that came back corrupted.
    pub fn reads_corrupted(&self) -> u64 {
        self.reads_corrupted
    }

    /// The underlying DRAM access counters.
    pub fn dram_stats(&self) -> &DramStats {
        self.dram.stats()
    }

    /// The framebuffer pool tracking resident bytes.
    pub fn pool(&self) -> &FramebufferPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::{RegionList, RhythmicEncoder};
    use rpr_frame::Plane;

    fn encoded(idx: u64) -> EncodedFrame {
        let frame = Plane::from_fn(16, 12, |x, y| (x + y * 3) as u8);
        RhythmicEncoder::new(16, 12).encode(&frame, idx, &RegionList::full_frame(16, 12))
    }

    #[test]
    fn pristine_roundtrip_is_identical() {
        let mut dram = LossyDram::pristine(1);
        let frame = encoded(0);
        let slot = dram.store(&frame);
        let (back, outcome) = dram.read_back(slot);
        assert_eq!(outcome, ReadOutcome::Clean);
        assert_eq!(back, frame);
        assert!(back.validate().is_ok());
    }

    #[test]
    fn charges_dram_and_pool() {
        let mut dram = LossyDram::pristine(2);
        let frame = encoded(0);
        let slot = dram.store(&frame);
        dram.read_back(slot);
        assert_eq!(dram.dram_stats().bytes_written, frame.total_bytes() as u64);
        assert_eq!(dram.dram_stats().bytes_read, frame.total_bytes() as u64);
        assert!(dram.pool().current_bytes() > 0);
    }

    #[test]
    fn always_rot_corrupts_and_validate_catches_it() {
        let mut dram = LossyDram::new(3, 1, 1); // rot every read
        let frame = encoded(0);
        let slot = dram.store(&frame);
        let mut corrupted_reads = 0;
        for _ in 0..50 {
            let (back, outcome) = dram.read_back(slot);
            if let ReadOutcome::Corrupted { bits_flipped } = outcome {
                corrupted_reads += 1;
                assert!(bits_flipped >= 1);
                assert!(
                    back.validate().is_err(),
                    "rotted frame must fail validation"
                );
            }
        }
        assert_eq!(corrupted_reads, 50);
        assert_eq!(dram.reads_corrupted(), 50);
    }

    #[test]
    fn rot_is_deterministic_per_seed() {
        let run = |seed| {
            let mut dram = LossyDram::new(seed, 1, 2);
            let slot = dram.store(&encoded(0));
            (0..10).map(|_| dram.read_back(slot).0).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}

//! A tiny deterministic PRNG for test-case generation.
//!
//! Test seeds must be reproducible across platforms, toolchains, and
//! refactors, so the harness carries its own generator instead of
//! depending on `rand`: SplitMix64 (Steele, Lea & Flood 2014), whose
//! whole state is one `u64` — a failing case is fully described by the
//! seed printed in the report.

/// A seeded SplitMix64 generator.
///
/// # Example
///
/// ```
/// use rpr_testkit::TestRng;
///
/// let mut a = TestRng::new(42);
/// let mut b = TestRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed. Equal seeds yield equal
    /// sequences forever.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A value in `[lo, hi]` (inclusive). Uses rejection-free modulo
    /// reduction — the bias is irrelevant at test-range sizes.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = u64::from(hi - lo) + 1;
        lo + (self.next_u64() % span) as u32
    }

    /// A `usize` in `[lo, hi]` (inclusive).
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.range_usize(0, items.len() - 1)]
    }

    /// Derives an independent child generator; advancing the child does
    /// not disturb the parent's sequence. Used to give each fault / case
    /// its own stream so adding draws in one place never reshuffles
    /// every case after it.
    pub fn fork(&mut self) -> TestRng {
        TestRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..1000 {
            let v = rng.range_u32(5, 9);
            assert!((5..=9).contains(&v));
        }
        assert_eq!(rng.range_u32(4, 4), 4);
    }

    #[test]
    fn fork_is_independent() {
        let mut a = TestRng::new(11);
        let mut b = TestRng::new(11);
        let mut child_a = a.fork();
        let mut child_b = b.fork();
        child_a.next_u64(); // advance only one child
        child_a.next_u64();
        child_b.next_u64();
        assert_eq!(a.next_u64(), b.next_u64(), "parents stay in lock-step");
    }

    #[test]
    fn chance_hits_both_sides() {
        let mut rng = TestRng::new(5);
        let hits = (0..1000).filter(|_| rng.chance(1, 2)).count();
        assert!(hits > 350 && hits < 650, "hits {hits}");
    }
}

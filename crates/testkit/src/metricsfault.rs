//! Typed adversaries over the live telemetry plane.
//!
//! The live metrics contract is a concurrency contract: scrapes happen
//! *while* the serve loop and its worker threads keep writing, and the
//! numbers a scrape reports must still make sense. Each
//! [`MetricsFaultKind`] manufactures one hostile schedule — a reader
//! racing a window rotation, a snapshot torn across mid-flight writers,
//! or an SLO tracker fed skewed clocks — and checks the invariants the
//! exposition layer depends on: internal consistency
//! (`count == Σ buckets`), monotonicity between reads, conservation of
//! every sample across rotations, and finite, saturating burn-rate
//! arithmetic no matter how the clock misbehaves.
//!
//! [`run_metrics_corpus`] runs the fixed seed corpus the `conformance`
//! binary gates CI on.

use crate::TestRng;
use rpr_serve::{Clock, ManualClock};
use rpr_trace::{LatencyHistogram, LiveCounter, LiveHistogram, SloConfig, SloTracker};
use serde::Serialize;
use std::sync::Arc;

/// Every live-telemetry adversary class the harness can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetricsFaultKind {
    /// A consumer rotates windows out of the histogram while writer
    /// threads are mid-record. Every sample must land in exactly one
    /// rotated window (or the final snapshot) — never lost, never
    /// double-counted — and each window must be internally consistent.
    ScrapeDuringRotation,
    /// A reader snapshots while writer threads race it. Every torn
    /// snapshot must still satisfy `count == Σ buckets`, totals must be
    /// monotonic between reads, and the post-join snapshot must account
    /// for the full workload.
    TornSnapshot,
    /// An SLO tracker fed from a [`ManualClock`] whose readings skew:
    /// stale timestamps (time running backward) and forward jumps past
    /// the whole window. Burn rate must stay finite and non-negative,
    /// window totals must never exceed the events fed, and the tracker
    /// must stay deterministic per seed.
    SloClockSkew,
}

/// All metrics fault kinds, for corpus iteration.
pub const ALL_METRICS_FAULTS: [MetricsFaultKind; 3] = [
    MetricsFaultKind::ScrapeDuringRotation,
    MetricsFaultKind::TornSnapshot,
    MetricsFaultKind::SloClockSkew,
];

impl MetricsFaultKind {
    /// Short stable name for reports and corpus bookkeeping.
    pub fn name(self) -> &'static str {
        match self {
            MetricsFaultKind::ScrapeDuringRotation => "scrape-during-rotation",
            MetricsFaultKind::TornSnapshot => "torn-snapshot",
            MetricsFaultKind::SloClockSkew => "slo-clock-skew",
        }
    }
}

/// Outcome of a live-telemetry adversary seed corpus.
#[derive(Debug, Clone, Serialize)]
pub struct MetricsCorpusReport {
    /// Cases run (seeds × fault kinds).
    pub cases: u64,
    /// Samples recorded across all cases.
    pub samples_recorded: u64,
    /// Mid-flight snapshots/rotations taken across all cases.
    pub reads_taken: u64,
    /// Invariant violations — must be zero for the gate to pass.
    pub violations: u64,
    /// Seeds of violating cases, for reproduction.
    pub failing_seeds: Vec<u64>,
}

impl MetricsCorpusReport {
    /// Whether the corpus met the contract.
    pub fn passed(&self) -> bool {
        self.violations == 0
    }
}

/// A seeded latency workload: microsecond samples spanning every
/// bucket of [`rpr_trace::LATENCY_BUCKETS_US`] plus the overflow.
fn workload(rng: &mut TestRng) -> Vec<u64> {
    let n = rng.range_usize(1, 160);
    (0..n).map(|_| u64::from(rng.range_u32(0, 200_000))).collect()
}

fn internally_consistent(snap: &LatencyHistogram) -> bool {
    snap.count == snap.buckets.iter().sum::<u64>()
}

/// Writers race a rotating consumer; mass must be conserved.
fn scrape_during_rotation(rng: &mut TestRng, report: &mut MetricsCorpusReport) -> bool {
    let samples = workload(rng);
    let rotations = rng.range_usize(1, 16);
    let hist = Arc::new(LiveHistogram::new());
    let half = samples.len() / 2;
    let writers: Vec<_> = [(0usize, 0usize, half), (1, half, samples.len())]
        .into_iter()
        .map(|(stripe, lo, hi)| {
            let hist = Arc::clone(&hist);
            let chunk = samples.get(lo..hi).unwrap_or(&[]).to_vec();
            std::thread::spawn(move || {
                for (i, &us) in chunk.iter().enumerate() {
                    hist.record_us_in(stripe * 3 + i, us);
                }
            })
        })
        .collect();

    let mut windows = LatencyHistogram::new();
    let mut windows_ok = true;
    for _ in 0..rotations {
        let w = hist.rotate();
        windows_ok &= internally_consistent(&w);
        windows.merge(&w);
        report.reads_taken += 1;
    }
    for h in writers {
        if h.join().is_err() {
            return false;
        }
    }
    windows.merge(&hist.snapshot());
    report.samples_recorded += samples.len() as u64;

    let expected_ns: u64 = samples.iter().map(|us| us * 1_000).sum();
    windows_ok
        && windows.count == samples.len() as u64
        && windows.sum_ns == expected_ns
        && internally_consistent(&windows)
}

/// Writers race a snapshotting reader; every torn read must still be
/// internally consistent and monotonic.
fn torn_snapshot(rng: &mut TestRng, report: &mut MetricsCorpusReport) -> bool {
    let samples = workload(rng);
    let hist = Arc::new(LiveHistogram::new());
    let counter = Arc::new(LiveCounter::new());
    let half = samples.len() / 2;
    let writers: Vec<_> = [(0usize, 0usize, half), (1, half, samples.len())]
        .into_iter()
        .map(|(stripe, lo, hi)| {
            let hist = Arc::clone(&hist);
            let counter = Arc::clone(&counter);
            let chunk = samples.get(lo..hi).unwrap_or(&[]).to_vec();
            std::thread::spawn(move || {
                for &us in &chunk {
                    hist.record_us(us);
                    counter.add_in(stripe, 1);
                }
            })
        })
        .collect();

    let mut torn_ok = true;
    let mut last_count = 0u64;
    let mut last_sum = 0u64;
    for _ in 0..24 {
        let snap = hist.snapshot();
        torn_ok &= internally_consistent(&snap);
        torn_ok &= snap.count >= last_count && snap.sum_ns >= last_sum;
        torn_ok &= counter.value() <= samples.len() as u64;
        last_count = snap.count;
        last_sum = snap.sum_ns;
        report.reads_taken += 1;
    }
    for h in writers {
        if h.join().is_err() {
            return false;
        }
    }
    report.samples_recorded += samples.len() as u64;

    let fin = hist.snapshot();
    torn_ok
        && fin.count == samples.len() as u64
        && counter.value() == samples.len() as u64
        && internally_consistent(&fin)
}

/// An SLO tracker fed skewed clock readings: stale `now`s and forward
/// jumps. Nothing may panic, totals may never exceed the feed, and the
/// tracker must be deterministic per seed.
fn slo_clock_skew(rng: &mut TestRng, report: &mut MetricsCorpusReport) -> bool {
    let window = rng.range_u32(1_000, 1_000_000);
    let cfg = SloConfig {
        target_delivery_us: u64::from(rng.range_u32(100, 20_000)),
        budget_fraction: 0.01,
        window_micros: u64::from(window),
        min_events: u64::from(rng.range_u32(1, 32)),
    };
    // One seeded schedule, replayed against two trackers: skew must not
    // introduce nondeterminism.
    let events: Vec<(u64, u64, bool)> = {
        let clock = ManualClock::new();
        let n = rng.range_usize(1, 200);
        (0..n)
            .map(|_| {
                clock.advance(u64::from(rng.range_u32(0, window / 4 + 1)));
                let now = clock.now_micros();
                let skewed = match rng.range_u32(0, 9) {
                    // Stale read: time appears to run backward.
                    0..=2 => now.saturating_sub(u64::from(rng.range_u32(0, 1 << 20))),
                    // Forward jump past the whole window.
                    3 => now.saturating_add(cfg.window_micros.saturating_mul(2)),
                    _ => now,
                };
                let latency = u64::from(rng.range_u32(0, 40_000));
                (skewed, latency, rng.range_u32(0, 4) == 0)
            })
            .collect()
    };

    let run = |tracker: &SloTracker| -> (u64, u64, f64, bool) {
        for &(now, latency, drop) in &events {
            if drop {
                tracker.record_drop(now);
            } else {
                tracker.record_delivery(now, latency);
            }
        }
        let last = events.last().map(|&(now, _, _)| now).unwrap_or(0);
        let (good, bad) = tracker.window_totals(last);
        (good, bad, tracker.burn_rate(last), tracker.breached(last))
    };
    let (good_a, bad_a, burn_a, breached_a) = run(&SloTracker::new(cfg));
    let (good_b, bad_b, burn_b, breached_b) = run(&SloTracker::new(cfg));
    report.samples_recorded += events.len() as u64;
    report.reads_taken += 2;

    let total = good_a + bad_a;
    total <= events.len() as u64
        && burn_a.is_finite()
        && burn_a >= 0.0
        && (!breached_a || total >= cfg.min_events.max(1))
        && (good_a, bad_a, breached_a) == (good_b, bad_b, breached_b)
        && burn_a == burn_b
}

/// Runs one live-telemetry adversary case; returns `true` when every
/// invariant held.
fn run_metrics_case(seed: u64, kind: MetricsFaultKind, report: &mut MetricsCorpusReport) -> bool {
    let mut rng = TestRng::new(seed ^ 0x4d45_5452); // "METR" domain split
    match kind {
        MetricsFaultKind::ScrapeDuringRotation => scrape_during_rotation(&mut rng, report),
        MetricsFaultKind::TornSnapshot => torn_snapshot(&mut rng, report),
        MetricsFaultKind::SloClockSkew => slo_clock_skew(&mut rng, report),
    }
}

/// Runs the fixed live-telemetry adversary corpus: `n_cases` seeds,
/// each exercising every [`MetricsFaultKind`].
pub fn run_metrics_corpus(base_seed: u64, n_cases: u64) -> MetricsCorpusReport {
    let mut report = MetricsCorpusReport {
        cases: 0,
        samples_recorded: 0,
        reads_taken: 0,
        violations: 0,
        failing_seeds: Vec::new(),
    };
    for i in 0..n_cases {
        let seed = base_seed.wrapping_add(i);
        for kind in ALL_METRICS_FAULTS {
            report.cases += 1;
            if !run_metrics_case(seed, kind, &mut report) {
                report.violations += 1;
                if report.failing_seeds.len() < 32 {
                    report.failing_seeds.push(seed);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_has_a_stable_unique_name() {
        let mut names: Vec<_> = ALL_METRICS_FAULTS.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_METRICS_FAULTS.len());
    }

    #[test]
    fn small_corpus_passes_clean() {
        let report = run_metrics_corpus(0x5252_2021, 40);
        assert_eq!(report.cases, 40 * ALL_METRICS_FAULTS.len() as u64);
        assert!(report.passed(), "failing seeds: {:?}", report.failing_seeds);
        assert!(report.samples_recorded > 0);
        assert!(report.reads_taken > 0);
    }

    #[test]
    fn clock_skew_case_is_deterministic_per_seed() {
        let mut a = MetricsCorpusReport {
            cases: 0,
            samples_recorded: 0,
            reads_taken: 0,
            violations: 0,
            failing_seeds: Vec::new(),
        };
        let mut b = a.clone();
        assert_eq!(
            run_metrics_case(7, MetricsFaultKind::SloClockSkew, &mut a),
            run_metrics_case(7, MetricsFaultKind::SloClockSkew, &mut b),
        );
        assert_eq!(a.samples_recorded, b.samples_recorded);
    }
}

//! Typed adversaries over motion-vector fields for the prediction
//! subsystem.
//!
//! The prediction contract mirrors the decode contract one layer up:
//! whatever the block matcher hands the ego estimator — coherent pans,
//! all-outlier chaos, flat-block zero ties, degenerate geometry — the
//! fit must stay finite, forward-projected labels must stay inside the
//! frame without growing the high-resolution pixel budget, and a
//! zero-motion field must be an exact no-op. Each [`PredictFaultKind`]
//! manufactures one hostile field class from a seeded coherent base;
//! [`run_predict_corpus`] checks the invariants over a fixed seed
//! corpus the `conformance` binary gates CI on.

use crate::{gen_region_list, TestRng};
use rpr_frame::Rect;
use rpr_predict::{estimate_ego_motion, predict_labels, EgoEstimatorConfig, TrackerConfig};
use rpr_vision::MotionVector;
use serde::Serialize;

/// Every motion-field corruption class the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictFaultKind {
    /// Replace every vector with incoherent random displacements — an
    /// all-outlier field. The fit must stay finite; confidence may
    /// collapse but never exceed 1.
    AllOutliers,
    /// Replace every vector with a zero-displacement, zero-SAD tie —
    /// what flat untextured blocks produce. Prediction must be an
    /// exact no-op on the input labels.
    ZeroTies,
    /// Drop all but one vector. Below the estimator's minimum the fit
    /// must degrade to the identity, never extrapolate from one block.
    SingleVector,
    /// Drop every vector. Identity fit, labels pass through shifted
    /// by nothing.
    EmptyField,
    /// Saturate displacements at the `i32` extremes — the overflow
    /// regime the `magnitude` fix targets. Nothing may panic and all
    /// outputs must stay in frame bounds.
    ExtremeDisplacements,
    /// Shrink every block to zero area. Degenerate geometry must not
    /// divide by zero anywhere in the fit or the SAD normalisation.
    DegenerateBlocks,
    /// Collapse all block centres onto one row — rank-deficient
    /// geometry for a rigid fit. The result must stay finite.
    CollinearField,
    /// Split the field into two halves voting opposite pans. The fit
    /// must pick a consensus (or degrade) without inventing rotation
    /// larger than the disagreement explains.
    ConflictingHalves,
}

/// All prediction fault kinds, for corpus iteration.
pub const ALL_PREDICT_FAULTS: [PredictFaultKind; 8] = [
    PredictFaultKind::AllOutliers,
    PredictFaultKind::ZeroTies,
    PredictFaultKind::SingleVector,
    PredictFaultKind::EmptyField,
    PredictFaultKind::ExtremeDisplacements,
    PredictFaultKind::DegenerateBlocks,
    PredictFaultKind::CollinearField,
    PredictFaultKind::ConflictingHalves,
];

impl PredictFaultKind {
    /// Short stable name for reports and corpus bookkeeping.
    pub fn name(self) -> &'static str {
        match self {
            PredictFaultKind::AllOutliers => "all-outliers",
            PredictFaultKind::ZeroTies => "zero-ties",
            PredictFaultKind::SingleVector => "single-vector",
            PredictFaultKind::EmptyField => "empty-field",
            PredictFaultKind::ExtremeDisplacements => "extreme-displacements",
            PredictFaultKind::DegenerateBlocks => "degenerate-blocks",
            PredictFaultKind::CollinearField => "collinear-field",
            PredictFaultKind::ConflictingHalves => "conflicting-halves",
        }
    }

    /// Applies the fault to a coherent base `field`, deterministically
    /// under `rng`.
    pub fn inject(self, field: &[MotionVector], rng: &mut TestRng) -> Vec<MotionVector> {
        let mut out = field.to_vec();
        match self {
            PredictFaultKind::AllOutliers => {
                for v in &mut out {
                    v.dx = i32::try_from(rng.range_u32(0, 16)).unwrap_or(0) - 8;
                    v.dy = i32::try_from(rng.range_u32(0, 16)).unwrap_or(0) - 8;
                    v.sad = u64::from(rng.range_u32(0, 50_000));
                }
                out
            }
            PredictFaultKind::ZeroTies => {
                for v in &mut out {
                    v.dx = 0;
                    v.dy = 0;
                    v.sad = 0;
                }
                out
            }
            PredictFaultKind::SingleVector => {
                let keep = rng.range_usize(0, out.len().saturating_sub(1));
                out.into_iter().skip(keep).take(1).collect()
            }
            PredictFaultKind::EmptyField => Vec::new(),
            PredictFaultKind::ExtremeDisplacements => {
                for (i, v) in out.iter_mut().enumerate() {
                    v.dx = if i % 2 == 0 { i32::MAX } else { i32::MIN };
                    v.dy = if i % 3 == 0 { i32::MIN } else { i32::MAX };
                    v.sad = u64::MAX;
                }
                out
            }
            PredictFaultKind::DegenerateBlocks => {
                for v in &mut out {
                    v.block = Rect::new(v.block.x, v.block.y, 0, 0);
                }
                out
            }
            PredictFaultKind::CollinearField => {
                let row = rng.range_u32(0, 80);
                for v in &mut out {
                    v.block = Rect::new(v.block.x, row, v.block.w, v.block.h);
                }
                out
            }
            PredictFaultKind::ConflictingHalves => {
                let mag = i32::try_from(rng.range_u32(1, 8)).unwrap_or(1);
                let half = out.len() / 2;
                for (i, v) in out.iter_mut().enumerate() {
                    v.dx = if i < half { mag } else { -mag };
                    v.dy = 0;
                }
                out
            }
        }
    }
}

/// Outcome of a prediction-adversary seed corpus.
#[derive(Debug, Clone, Serialize)]
pub struct PredictCorpusReport {
    /// Cases run (seeds × fault kinds).
    pub cases: u64,
    /// Cases where the fit degraded to the identity (by design for
    /// starved fields).
    pub identity_degradations: u64,
    /// Cases where prediction produced at least one projected label.
    pub labels_projected: u64,
    /// Invariant violations — must be zero for the gate to pass.
    pub violations: u64,
    /// Seeds of violating cases, for reproduction.
    pub failing_seeds: Vec<u64>,
}

impl PredictCorpusReport {
    /// Whether the corpus met the contract.
    pub fn passed(&self) -> bool {
        self.violations == 0
    }
}

/// A coherent base field: a `cols x rows` grid of 16 px blocks all
/// voting one rigid pan, with small per-block SAD noise.
fn base_field(rng: &mut TestRng) -> Vec<MotionVector> {
    let cols = rng.range_u32(2, 8);
    let rows = rng.range_u32(2, 6);
    let dx = i32::try_from(rng.range_u32(0, 14)).unwrap_or(0) - 7;
    let dy = i32::try_from(rng.range_u32(0, 10)).unwrap_or(0) - 5;
    (0..rows)
        .flat_map(|by| {
            (0..cols).map(move |bx| MotionVector {
                block: Rect::new(bx * 16, by * 16, 16, 16),
                dx,
                dy,
                sad: 37,
            })
        })
        .map(|mut v| {
            v.sad += u64::from(rng.range_u32(0, 64));
            v
        })
        .collect()
}

/// Runs one prediction-adversary case; returns `true` when every
/// invariant held.
fn run_predict_case(seed: u64, kind: PredictFaultKind, report: &mut PredictCorpusReport) -> bool {
    let width = 128u32;
    let height = 96u32;
    let mut rng = TestRng::new(seed ^ 0x5045_5246); // "PERF" domain split
    let field = kind.inject(&base_field(&mut rng), &mut rng);
    let labels = gen_region_list(&mut rng, width, height, 4).labels().to_vec();

    let ego_cfg = EgoEstimatorConfig::default();
    let ego = estimate_ego_motion(&field, &ego_cfg);
    let ego2 = estimate_ego_motion(&field, &ego_cfg);

    // Fit invariants: finite, bounded confidence, deterministic.
    let fit_ok = ego.transform.tx.is_finite()
        && ego.transform.ty.is_finite()
        && ego.transform.theta.is_finite()
        && (0.0..=1.0).contains(&ego.confidence)
        && ego.inliers <= ego.total
        && ego == ego2;
    if ego.confidence == 0.0 {
        report.identity_degradations += 1;
    }

    let cfg = TrackerConfig::default();
    let predicted = predict_labels(&labels, &field, &ego, width, height, &cfg);
    let predicted2 = predict_labels(&labels, &field, &ego, width, height, &cfg);
    if !predicted.is_empty() {
        report.labels_projected += 1;
    }

    // Projection invariants: in bounds, non-empty footprints, budget
    // never grows, deterministic; zero fields are exact no-ops.
    let in_bounds = predicted
        .iter()
        .all(|l| l.right() <= width && l.bottom() <= height && l.w > 0 && l.h > 0);
    let budget_in: u64 = labels.iter().map(|l| l.kept_pixels()).sum();
    let budget_out: u64 = predicted.iter().map(|l| l.kept_pixels()).sum();
    let noop_ok = kind != PredictFaultKind::ZeroTies || predicted == labels;
    fit_ok && in_bounds && budget_out <= budget_in && predicted == predicted2 && noop_ok
}

/// Runs the fixed prediction-adversary corpus: `n_cases` seeds, each
/// exercising every [`PredictFaultKind`].
pub fn run_predict_corpus(base_seed: u64, n_cases: u64) -> PredictCorpusReport {
    let mut report = PredictCorpusReport {
        cases: 0,
        identity_degradations: 0,
        labels_projected: 0,
        violations: 0,
        failing_seeds: Vec::new(),
    };
    for i in 0..n_cases {
        let seed = base_seed.wrapping_add(i);
        for kind in ALL_PREDICT_FAULTS {
            report.cases += 1;
            if !run_predict_case(seed, kind, &mut report) {
                report.violations += 1;
                if report.failing_seeds.len() < 32 {
                    report.failing_seeds.push(seed);
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_has_a_stable_unique_name() {
        let mut names: Vec<_> = ALL_PREDICT_FAULTS.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_PREDICT_FAULTS.len());
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let mut rng = TestRng::new(99);
        let base = base_field(&mut rng);
        for kind in ALL_PREDICT_FAULTS {
            let a = kind.inject(&base, &mut TestRng::new(7));
            let b = kind.inject(&base, &mut TestRng::new(7));
            assert_eq!(a, b, "{}", kind.name());
        }
    }

    #[test]
    fn small_corpus_passes_clean() {
        let report = run_predict_corpus(0x5252_2021, 50);
        assert_eq!(report.cases, 50 * ALL_PREDICT_FAULTS.len() as u64);
        assert!(report.passed(), "failing seeds: {:?}", report.failing_seeds);
        assert!(report.identity_degradations > 0, "starved fields must degrade");
        assert!(report.labels_projected > 0, "healthy fields must project");
    }

    #[test]
    fn zero_ties_field_really_is_a_noop() {
        let mut rng = TestRng::new(3);
        let field = PredictFaultKind::ZeroTies.inject(&base_field(&mut rng), &mut rng);
        assert!(field.iter().all(|v| v.dx == 0 && v.dy == 0 && v.sad == 0));
    }
}

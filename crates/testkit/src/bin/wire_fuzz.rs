//! Bounded fuzz smoke over the `.rpr` parser: seeded random byte
//! mutations (flips, truncations, splices, duplications, extensions)
//! of valid containers, each pushed through both read paths under
//! `catch_unwind`. The contract under test is narrow and absolute:
//! *no input may panic the parser* — every malformation must surface
//! as a typed `WireError` (or parse cleanly when the mutation happens
//! to be benign).
//!
//! Usage: `wire_fuzz [base_seed] [iterations]` — defaults reproduce
//! the CI smoke run. JSON summary on stdout, non-zero exit on any
//! panic; a failing iteration's seed reproduces the exact mutated
//! byte string.

use rpr_core::RhythmicEncoder;
use rpr_testkit::{gen_capture_sequence, TestRng};
use rpr_wire::{write_container, ContainerReader};
use serde::Serialize;
use std::env;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

/// Base seed of the CI smoke run.
const DEFAULT_BASE_SEED: u64 = 0xF0_2021;
/// Mutated inputs per run — bounded so the job stays in smoke-test
/// territory (a few seconds) rather than a fuzz farm.
const DEFAULT_ITERATIONS: u64 = 25_000;
/// Distinct base containers the mutations draw from.
const BASE_CONTAINERS: u64 = 8;

#[derive(Serialize)]
struct FuzzReport {
    base_seed: u64,
    iterations: u64,
    base_containers: usize,
    /// Mutated inputs the indexed read path rejected with a typed error.
    open_rejected: u64,
    /// Mutated inputs the indexed read path still parsed fully.
    open_clean: u64,
    /// Mutated inputs the sequential scan path rejected.
    scan_rejected: u64,
    /// Mutated inputs the sequential scan path still parsed.
    scan_clean: u64,
    /// Panics observed (the failure condition).
    panics: u64,
    /// Seeds of panicking iterations.
    panic_seeds: Vec<u64>,
}

fn build_base_containers(base_seed: u64) -> Vec<Vec<u8>> {
    (0..BASE_CONTAINERS)
        .map(|i| {
            let mut rng = TestRng::new(base_seed.wrapping_add(i));
            let width = rng.range_u32(8, 40);
            let height = rng.range_u32(8, 32);
            let n_frames = rng.range_usize(1, 5);
            let seq = gen_capture_sequence(&mut rng, width, height, n_frames);
            let mut encoder = RhythmicEncoder::new(width, height);
            let frames: Vec<_> = seq
                .frames
                .iter()
                .zip(&seq.regions)
                .enumerate()
                .map(|(idx, (frame, regions))| encoder.encode(frame, idx as u64, regions))
                .collect();
            write_container(&frames).expect("fresh frames must serialize")
        })
        .collect()
}

/// One seeded mutation of a base container: flips, a truncation, a
/// garbage splice, an internal duplication, or a garbage extension.
fn mutate(base: &[u8], rng: &mut TestRng) -> Vec<u8> {
    let mut bytes = base.to_vec();
    match rng.range_u32(0, 4) {
        0 => {
            // 1..=8 random bit flips.
            for _ in 0..rng.range_usize(1, 8) {
                let i = rng.range_usize(0, bytes.len() - 1);
                bytes[i] ^= 1 << rng.range_u32(0, 7);
            }
        }
        1 => {
            bytes.truncate(rng.range_usize(0, bytes.len() - 1));
        }
        2 => {
            // Overwrite a random range with random bytes.
            let start = rng.range_usize(0, bytes.len() - 1);
            let len = rng.range_usize(1, (bytes.len() - start).min(32));
            for b in &mut bytes[start..start + len] {
                *b = rng.next_u8();
            }
        }
        3 => {
            // Copy one random range over another (chunk smearing).
            let len = rng.range_usize(1, bytes.len().min(32));
            let src = rng.range_usize(0, bytes.len() - len);
            let dst = rng.range_usize(0, bytes.len() - len);
            bytes.copy_within(src..src + len, dst);
        }
        _ => {
            // Append garbage past the trailer.
            for _ in 0..rng.range_usize(1, 24) {
                bytes.push(rng.next_u8());
            }
        }
    }
    bytes
}

/// Exercises both read paths end to end. The return values are
/// (open_ok, scan_ok); a panic propagates to the caller's
/// `catch_unwind`.
fn exercise(bytes: &[u8]) -> (bool, bool) {
    let open_ok = match ContainerReader::open(bytes) {
        Ok(reader) => (0..reader.len()).all(|i| reader.frame(i).is_ok()),
        Err(_) => false,
    };
    let scan_ok = match ContainerReader::scan(bytes) {
        Ok(reader) => (0..reader.len()).all(|i| reader.frame(i).is_ok()),
        Err(_) => false,
    };
    (open_ok, scan_ok)
}

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let base_seed = match args.next() {
        Some(s) => match parse_u64(&s) {
            Some(v) => v,
            None => return usage(&s),
        },
        None => DEFAULT_BASE_SEED,
    };
    let iterations = match args.next() {
        Some(s) => match parse_u64(&s) {
            Some(v) => v,
            None => return usage(&s),
        },
        None => DEFAULT_ITERATIONS,
    };

    let bases = build_base_containers(base_seed);
    let mut report = FuzzReport {
        base_seed,
        iterations,
        base_containers: bases.len(),
        open_rejected: 0,
        open_clean: 0,
        scan_rejected: 0,
        scan_clean: 0,
        panics: 0,
        panic_seeds: Vec::new(),
    };

    for i in 0..iterations {
        let seed = base_seed.wrapping_add(i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::new(seed);
        let base = &bases[rng.range_usize(0, bases.len() - 1)];
        let mutated = mutate(base, &mut rng);
        match catch_unwind(AssertUnwindSafe(|| exercise(&mutated))) {
            Ok((open_ok, scan_ok)) => {
                if open_ok {
                    report.open_clean += 1;
                } else {
                    report.open_rejected += 1;
                }
                if scan_ok {
                    report.scan_clean += 1;
                } else {
                    report.scan_rejected += 1;
                }
            }
            Err(_) => {
                report.panics += 1;
                if report.panic_seeds.len() < 50 {
                    report.panic_seeds.push(seed);
                }
            }
        }
    }

    match serde_json::to_string_pretty(&report) {
        Ok(json) => println!("{json}"),
        Err(e) => eprintln!("report serialization failed: {e:?}"),
    }

    if report.panics == 0 {
        eprintln!(
            "wire_fuzz: {} mutated inputs, 0 panics ({} rejected / {} clean on the indexed path)",
            report.iterations, report.open_rejected, report.open_clean,
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "wire_fuzz: {} PANICS in {} inputs; first seeds: {:?}",
            report.panics, report.iterations, report.panic_seeds,
        );
        ExitCode::FAILURE
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn usage(bad: &str) -> ExitCode {
    eprintln!("wire_fuzz: invalid argument `{bad}`");
    eprintln!("usage: wire_fuzz [base_seed] [iterations]");
    ExitCode::FAILURE
}

//! The conformance gate CI runs: two fixed seed corpora — the
//! encode→DRAM→decode harness and the `.rpr` container harness —
//! emitted as one combined JSON report on stdout, non-zero exit on any
//! violation in either.
//!
//! Usage: `conformance [base_seed] [n_cases]` — defaults reproduce the
//! CI corpora exactly (both corpora share the seed range so one seed
//! reproduces both halves of a case). Rerun a single failing seed with
//! `conformance <seed> 1`.

use serde::Serialize;
use std::env;
use std::process::ExitCode;

/// Base seed of the CI corpus. Fixed so every CI run and every local
/// repro sees the same cases; see TESTING.md before changing it.
const DEFAULT_BASE_SEED: u64 = 0x5252_2021; // "RR 2021"
/// Number of cases in the CI corpus.
const DEFAULT_CASES: u64 = 2000;

/// The combined report CI archives: both corpora, each run twice —
/// once with a plain recycling pool and once under the buffer-reuse
/// adversary (every returned buffer filled with the poison sentinel),
/// proving no kernel reads stale pool memory.
#[derive(Serialize)]
struct CombinedReport {
    encode_decode: rpr_testkit::CorpusReport,
    container: rpr_testkit::WireCorpusReport,
    encode_decode_poisoned: rpr_testkit::CorpusReport,
    container_poisoned: rpr_testkit::WireCorpusReport,
    prediction: rpr_testkit::PredictCorpusReport,
    metrics: rpr_testkit::MetricsCorpusReport,
}

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let base_seed = match args.next() {
        Some(s) => match parse_u64(&s) {
            Some(v) => v,
            None => return usage(&s),
        },
        None => DEFAULT_BASE_SEED,
    };
    let n_cases = match args.next() {
        Some(s) => match parse_u64(&s) {
            Some(v) => v,
            None => return usage(&s),
        },
        None => DEFAULT_CASES,
    };

    let poison = rpr_testkit::PoolDiscipline::Poisoned(rpr_testkit::POISON_SENTINEL);
    let report = CombinedReport {
        encode_decode: rpr_testkit::run_corpus(base_seed, n_cases),
        container: rpr_testkit::run_wire_corpus(base_seed, n_cases),
        encode_decode_poisoned: rpr_testkit::run_corpus_in(base_seed, n_cases, poison),
        container_poisoned: rpr_testkit::run_wire_corpus_in(base_seed, n_cases, poison),
        prediction: rpr_testkit::run_predict_corpus(base_seed, n_cases),
        metrics: rpr_testkit::run_metrics_corpus(base_seed, n_cases),
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => println!("{json}"),
        Err(e) => eprintln!("report serialization failed: {e:?}"),
    }

    let ed = &report.encode_decode;
    let ct = &report.container;
    let edp = &report.encode_decode_poisoned;
    let ctp = &report.container_poisoned;
    let pr = &report.prediction;
    let mt = &report.metrics;
    if ed.passed() && ct.passed() && edp.passed() && ctp.passed() && pr.passed() && mt.passed() {
        eprintln!(
            "conformance: {} cases passed ({} clean frames, {} faults detected, {} harmless, {} skipped)",
            ed.cases, ed.clean_frames_ok, ed.faults_detected, ed.faults_harmless, ed.faults_skipped,
        );
        eprintln!(
            "wire conformance: {} cases passed ({} frames round-tripped, {} blob round-trips, {} faults detected, {} harmless, {} skipped)",
            ct.cases,
            ct.container_frames_ok,
            ct.blob_roundtrips,
            ct.faults_detected,
            ct.faults_harmless,
            ct.faults_skipped,
        );
        eprintln!(
            "poisoned-pool adversary: {} + {} cases passed with zero divergences",
            edp.cases, ctp.cases,
        );
        eprintln!(
            "prediction adversary: {} cases passed ({} identity degradations, {} projections)",
            pr.cases, pr.identity_degradations, pr.labels_projected,
        );
        eprintln!(
            "metrics adversary: {} cases passed ({} samples, {} live reads)",
            mt.cases, mt.samples_recorded, mt.reads_taken,
        );
        ExitCode::SUCCESS
    } else {
        let failing = ed.failing_seeds.len()
            + ct.failing_seeds.len()
            + edp.failing_seeds.len()
            + ctp.failing_seeds.len()
            + pr.failing_seeds.len()
            + mt.failing_seeds.len();
        eprintln!(
            "conformance: {failing} of {} case runs FAILED; reproduce with `cargo run --release -p rpr-testkit --bin conformance -- <seed> 1`",
            ed.cases + ct.cases + edp.cases + ctp.cases + pr.cases + mt.cases,
        );
        for seed in &ed.failing_seeds {
            eprintln!("  failing seed (encode-decode): {seed}");
        }
        for seed in &ct.failing_seeds {
            eprintln!("  failing seed (container): {seed}");
        }
        for seed in &edp.failing_seeds {
            eprintln!("  failing seed (encode-decode, poisoned pool): {seed}");
        }
        for seed in &ctp.failing_seeds {
            eprintln!("  failing seed (container, poisoned pool): {seed}");
        }
        for seed in &pr.failing_seeds {
            eprintln!("  failing seed (prediction): {seed}");
        }
        for seed in &mt.failing_seeds {
            eprintln!("  failing seed (metrics): {seed}");
        }
        ExitCode::FAILURE
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn usage(bad: &str) -> ExitCode {
    eprintln!("conformance: invalid argument `{bad}`");
    eprintln!("usage: conformance [base_seed] [n_cases]");
    ExitCode::FAILURE
}

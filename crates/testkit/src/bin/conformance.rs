//! The conformance gate CI runs: a fixed seed corpus through the full
//! differential + fault-injection harness, JSON report on stdout,
//! non-zero exit on any violation.
//!
//! Usage: `conformance [base_seed] [n_cases]` — defaults reproduce the
//! CI corpus exactly. Rerun a single failing seed with
//! `conformance <seed> 1`.

use std::env;
use std::process::ExitCode;

/// Base seed of the CI corpus. Fixed so every CI run and every local
/// repro sees the same cases; see TESTING.md before changing it.
const DEFAULT_BASE_SEED: u64 = 0x5252_2021; // "RR 2021"
/// Number of cases in the CI corpus.
const DEFAULT_CASES: u64 = 2000;

fn main() -> ExitCode {
    let mut args = env::args().skip(1);
    let base_seed = match args.next() {
        Some(s) => match parse_u64(&s) {
            Some(v) => v,
            None => return usage(&s),
        },
        None => DEFAULT_BASE_SEED,
    };
    let n_cases = match args.next() {
        Some(s) => match parse_u64(&s) {
            Some(v) => v,
            None => return usage(&s),
        },
        None => DEFAULT_CASES,
    };

    let report = rpr_testkit::run_corpus(base_seed, n_cases);
    match serde_json::to_string_pretty(&report) {
        Ok(json) => println!("{json}"),
        Err(e) => eprintln!("report serialization failed: {e:?}"),
    }

    if report.passed() {
        eprintln!(
            "conformance: {} cases passed ({} clean frames, {} faults detected, {} harmless, {} skipped)",
            report.cases,
            report.clean_frames_ok,
            report.faults_detected,
            report.faults_harmless,
            report.faults_skipped,
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "conformance: {} of {} cases FAILED; reproduce with `cargo run --release -p rpr-testkit --bin conformance -- <seed> 1`",
            report.failing_seeds.len(),
            report.cases,
        );
        for seed in &report.failing_seeds {
            eprintln!("  failing seed: {seed}");
        }
        ExitCode::FAILURE
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn usage(bad: &str) -> ExitCode {
    eprintln!("conformance: invalid argument `{bad}`");
    eprintln!("usage: conformance [base_seed] [n_cases]");
    ExitCode::FAILURE
}

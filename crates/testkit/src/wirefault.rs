//! Typed fault injectors over serialized `.rpr` containers.
//!
//! Where [`crate::FaultKind`] corrupts an in-memory
//! [`rpr_core::EncodedFrame`], each [`WireFaultKind`] corrupts the
//! *bytes* of a finished container — one mutation aimed at one of the
//! wire format's three defence layers (chunk CRC, structural parse,
//! frame digest). The layered kinds
//! ([`WireFaultKind::FrameBodyFlipCrcFixed`],
//! [`WireFaultKind::CorruptRleRun`],
//! [`WireFaultKind::StaleIndexEntry`]) deliberately *repair* the
//! transport CRC after mutating, so only the deeper layer can catch
//! them — exactly the forged-checksum scenario the digest exists for.
//!
//! [`WireFaultKind::inject`] returns `None` when the container cannot
//! host the fault (e.g. no RLE-coded frame for a run corruption, or
//! fewer than two distinct frames for a stale index entry); the
//! conformance runner skips those draws rather than counting a no-op.

use crate::TestRng;
use rpr_wire::varint::{read_varint, write_varint};
use rpr_wire::{
    list_chunks, parse_entries, rewrite_chunk_crc, RawChunk, CHUNK_FRAME, CHUNK_INDEX, HEADER_LEN,
    TRAILER_LEN,
};

/// Byte offset of the `mask_encoding` discriminant inside a frame
/// blob (after width, height, frame_idx, and the integrity digest).
const MASK_ENCODING_OFFSET: usize = 24;

/// Every container-level corruption class the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireFaultKind {
    /// Drop trailing bytes (torn write / partial download). Caught by
    /// the trailer or header truncation checks.
    TruncateTail,
    /// Flip one bit of the 8-byte file magic. Caught by `BadMagic`.
    HeaderMagicFlip,
    /// Flip one bit of a chunk's *stored* CRC field. Caught by the
    /// chunk checksum comparison.
    ChunkCrcFlip,
    /// Flip one bit of a chunk payload without fixing the CRC (plain
    /// transport bit rot). Caught by the chunk checksum.
    ChunkPayloadFlip,
    /// Flip one bit of a chunk header's declared payload length,
    /// desynchronizing the chunk framing. Caught by truncation, CRC,
    /// or index cross-checks.
    ChunkLenCorrupt,
    /// Flip one bit inside an RLE-coded mask *and repair the chunk
    /// CRC*, so only the deep parser (`BadRle`) or the frame digest
    /// can catch it. `None` when no frame chose RLE coding.
    CorruptRleRun,
    /// Flip one bit anywhere in a frame blob *and repair the chunk
    /// CRC* — the forged-checksum scenario. Caught by the structural
    /// parse or the frame integrity digest.
    FrameBodyFlipCrcFixed,
    /// Swap which chunks two index entries point at while keeping
    /// their claimed `frame_idx` values *and repair the index CRC* — a
    /// stale index whose checksums are all valid. Caught by the
    /// `frame_idx` cross-check against the blob.
    StaleIndexEntry,
    /// Flip one bit of the fixed trailer. Caught by the trailer magic
    /// or checksum; `ContainerReader::scan` still recovers the frames.
    TrailerCorrupt,
}

/// All container fault kinds, for corpus iteration.
pub const ALL_WIRE_FAULTS: [WireFaultKind; 9] = [
    WireFaultKind::TruncateTail,
    WireFaultKind::HeaderMagicFlip,
    WireFaultKind::ChunkCrcFlip,
    WireFaultKind::ChunkPayloadFlip,
    WireFaultKind::ChunkLenCorrupt,
    WireFaultKind::CorruptRleRun,
    WireFaultKind::FrameBodyFlipCrcFixed,
    WireFaultKind::StaleIndexEntry,
    WireFaultKind::TrailerCorrupt,
];

impl WireFaultKind {
    /// Short stable name for reports and seed-corpus bookkeeping.
    pub fn name(self) -> &'static str {
        match self {
            WireFaultKind::TruncateTail => "truncate-tail",
            WireFaultKind::HeaderMagicFlip => "header-magic-flip",
            WireFaultKind::ChunkCrcFlip => "chunk-crc-flip",
            WireFaultKind::ChunkPayloadFlip => "chunk-payload-flip",
            WireFaultKind::ChunkLenCorrupt => "chunk-len-corrupt",
            WireFaultKind::CorruptRleRun => "corrupt-rle-run",
            WireFaultKind::FrameBodyFlipCrcFixed => "frame-body-flip-crc-fixed",
            WireFaultKind::StaleIndexEntry => "stale-index-entry",
            WireFaultKind::TrailerCorrupt => "trailer-corrupt",
        }
    }

    /// Injects this fault into a copy of `container` (a finished
    /// `.rpr` byte image), drawing positions from `rng`. Returns
    /// `None` when the container cannot host the fault.
    pub fn inject(self, container: &[u8], rng: &mut TestRng) -> Option<Vec<u8>> {
        if container.len() < HEADER_LEN + TRAILER_LEN {
            return None;
        }
        let chunks = list_chunks(container).ok()?;
        let mut out = container.to_vec();
        match self {
            WireFaultKind::TruncateTail => {
                let keep = rng.range_usize(0, container.len() - 1);
                out.truncate(keep);
                Some(out)
            }
            WireFaultKind::HeaderMagicFlip => {
                flip_bit(&mut out, rng.range_usize(0, 7), rng);
                Some(out)
            }
            WireFaultKind::ChunkCrcFlip => {
                let c = rng.pick(&chunks);
                flip_bit(&mut out, c.offset + 5 + rng.range_usize(0, 3), rng);
                Some(out)
            }
            WireFaultKind::ChunkPayloadFlip => {
                let hosts: Vec<&RawChunk> =
                    chunks.iter().filter(|c| !c.payload.is_empty()).collect();
                if hosts.is_empty() {
                    return None;
                }
                let c = rng.pick(&hosts);
                flip_bit(&mut out, rng.range_usize(c.payload.start, c.payload.end - 1), rng);
                Some(out)
            }
            WireFaultKind::ChunkLenCorrupt => {
                let c = rng.pick(&chunks);
                flip_bit(&mut out, c.offset + 1 + rng.range_usize(0, 3), rng);
                Some(out)
            }
            WireFaultKind::CorruptRleRun => {
                let hosts: Vec<&RawChunk> = chunks
                    .iter()
                    .filter(|c| {
                        c.kind == CHUNK_FRAME
                            && c.payload.len() > MASK_ENCODING_OFFSET
                            && container.get(c.payload.start + MASK_ENCODING_OFFSET) == Some(&1)
                    })
                    .collect();
                if hosts.is_empty() {
                    return None;
                }
                let c = rng.pick(&hosts);
                let blob = container.get(c.payload.clone())?;
                let mut pos = MASK_ENCODING_OFFSET + 1;
                let mask_len =
                    usize::try_from(read_varint(blob, &mut pos, "rle mask length").ok()?).ok()?;
                if mask_len == 0 || pos + mask_len > blob.len() {
                    return None;
                }
                let target = c.payload.start + pos + rng.range_usize(0, mask_len - 1);
                flip_bit(&mut out, target, rng);
                rewrite_chunk_crc(&mut out, c.offset).ok()?;
                Some(out)
            }
            WireFaultKind::FrameBodyFlipCrcFixed => {
                let hosts: Vec<&RawChunk> =
                    chunks.iter().filter(|c| c.kind == CHUNK_FRAME).collect();
                if hosts.is_empty() {
                    return None;
                }
                let c = rng.pick(&hosts);
                flip_bit(&mut out, rng.range_usize(c.payload.start, c.payload.end - 1), rng);
                rewrite_chunk_crc(&mut out, c.offset).ok()?;
                Some(out)
            }
            WireFaultKind::StaleIndexEntry => {
                let index = chunks.iter().find(|c| c.kind == CHUNK_INDEX)?;
                let mut entries = parse_entries(container.get(index.payload.clone())?).ok()?;
                // Pick two entries whose claimed frame_idx differ, so
                // the swap is detectable (and not a silent reorder).
                let mut pair = None;
                'outer: for (i, a) in entries.iter().enumerate() {
                    for (j, b) in entries.iter().enumerate().skip(i + 1) {
                        if b.frame_idx != a.frame_idx {
                            pair = Some((i, j));
                            break 'outer;
                        }
                    }
                }
                let (i, j) = pair?;
                // Swap where the entries point (offset + length) while
                // keeping their claimed frame indices: each entry now
                // names a frame its chunk does not hold.
                let (a_off, a_len) = entries.get(i).map(|e| (e.offset, e.len))?;
                let (b_off, b_len) = entries.get(j).map(|e| (e.offset, e.len))?;
                if let Some(e) = entries.get_mut(i) {
                    e.offset = b_off;
                    e.len = b_len;
                }
                if let Some(e) = entries.get_mut(j) {
                    e.offset = a_off;
                    e.len = a_len;
                }
                let mut payload = Vec::with_capacity(index.payload.len());
                write_varint(&mut payload, entries.len() as u64);
                for e in &entries {
                    write_varint(&mut payload, e.frame_idx);
                    write_varint(&mut payload, e.offset);
                    write_varint(&mut payload, u64::from(e.len));
                }
                // A permutation of the same varint values re-encodes to
                // the same total length, so the trailer's declared
                // index size stays truthful.
                if payload.len() != index.payload.len() {
                    return None;
                }
                out.get_mut(index.payload.clone())?.copy_from_slice(&payload);
                rewrite_chunk_crc(&mut out, index.offset).ok()?;
                Some(out)
            }
            WireFaultKind::TrailerCorrupt => {
                let base = container.len() - TRAILER_LEN;
                flip_bit(&mut out, base + rng.range_usize(0, TRAILER_LEN - 1), rng);
                Some(out)
            }
        }
    }
}

fn flip_bit(bytes: &mut [u8], i: usize, rng: &mut TestRng) {
    // Out-of-range draws are silently skipped; every caller picks `i`
    // inside a chunk range validated by `list_chunks`.
    let bit = 1 << rng.range_u32(0, 7);
    if let Some(b) = bytes.get_mut(i) {
        *b ^= bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen_capture_sequence;
    use rpr_core::RhythmicEncoder;
    use rpr_wire::write_container;

    fn sample_container() -> Vec<u8> {
        let mut rng = TestRng::new(0xC0FF);
        let (w, h) = (24, 16);
        let seq = gen_capture_sequence(&mut rng, w, h, 4);
        let mut encoder = RhythmicEncoder::new(w, h);
        let frames: Vec<_> = seq
            .frames
            .iter()
            .zip(&seq.regions)
            .enumerate()
            .map(|(i, (f, r))| encoder.encode(f, i as u64, r))
            .collect();
        write_container(&frames).unwrap()
    }

    #[test]
    fn every_wire_fault_kind_injects_on_a_typical_container() {
        let container = sample_container();
        for kind in ALL_WIRE_FAULTS {
            let mut rng = TestRng::new(0xFA);
            let injected = (0..20).find_map(|_| kind.inject(&container, &mut rng));
            let faulty = injected.unwrap_or_else(|| panic!("{} never applied", kind.name()));
            assert_ne!(faulty, container, "{} must change the bytes", kind.name());
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let container = sample_container();
        for kind in ALL_WIRE_FAULTS {
            let a = kind.inject(&container, &mut TestRng::new(77));
            let b = kind.inject(&container, &mut TestRng::new(77));
            assert_eq!(a, b, "{}", kind.name());
        }
    }

    #[test]
    fn stale_index_needs_two_distinct_frames() {
        let mut rng = TestRng::new(3);
        let seq = gen_capture_sequence(&mut rng, 16, 12, 1);
        let frame = RhythmicEncoder::new(16, 12).encode(&seq.frames[0], 0, &seq.regions[0]);
        let container = write_container(std::slice::from_ref(&frame)).unwrap();
        let mut rng = TestRng::new(4);
        assert!(WireFaultKind::StaleIndexEntry.inject(&container, &mut rng).is_none());
    }

    #[test]
    fn crc_fixed_faults_pass_the_transport_layer() {
        // The whole point of the layered kinds: after injection the
        // chunk CRC is *valid*, so listing chunks still succeeds and
        // detection must come from a deeper layer.
        let container = sample_container();
        let mut rng = TestRng::new(0xBEEF);
        let faulty = WireFaultKind::FrameBodyFlipCrcFixed.inject(&container, &mut rng).unwrap();
        assert!(list_chunks(&faulty).is_ok());
        assert!(rpr_wire::read_all(&faulty).is_err(), "deep layer must still catch it");
    }
}

//! The differential conformance runner.
//!
//! One *case* is a seeded capture sequence pushed through the whole
//! encode→DRAM→decode path three ways at once:
//!
//! 1. **Differential decode** — every clean encoded frame is decoded by
//!    the production [`SoftwareDecoder`] in both
//!    [`ReconstructionMode`]s and checked byte-for-byte against the
//!    naive [`ReferenceDecoder`], with every `R` pixel additionally
//!    checked against the source frame (the representation's exactness
//!    guarantee, paper §3.2).
//! 2. **Fault injection** — every applicable [`FaultKind`] is injected
//!    into each encoded frame, and the production path must classify
//!    it: *detected* (a typed `CorruptEncodedFrame`/`GeometryMismatch`
//!    error from `try_decode`) or *harmless* (byte-identical decode).
//!    A panic or a silently different decode is a conformance
//!    violation.
//! 3. **Lossy DRAM** — frames round-trip a [`LossyDram`] with seeded
//!    bit rot; corrupted read-backs must be rejected, clean read-backs
//!    must decode identically.
//!
//! Reports serialize to JSON so CI can archive them; any violation
//! carries the case seed, which reproduces the whole case offline.

use crate::{gen_capture_sequence, LossyDram, ReadOutcome, ReferenceDecoder, TestRng, ALL_FAULTS};
use rpr_core::{BufferPool, ReconstructionMode, RhythmicEncoder, SoftwareDecoder};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How a conformance run provisions the [`BufferPool`] shared by the
/// encoder and the production decoders.
///
/// The poisoned discipline is the buffer-reuse adversary: every buffer
/// returned to the pool is filled with the sentinel byte, so any
/// kernel that reads recycled memory it never wrote decodes the
/// sentinel instead of real pixels — and the differential comparison
/// against the pool-free [`ReferenceDecoder`] flags the divergence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolDiscipline {
    /// Plain recycling pool, buffer contents left as returned.
    #[default]
    Fresh,
    /// Returned buffers are filled with this sentinel byte.
    Poisoned(u8),
}

/// The sentinel byte the CI adversary corpus poisons with (`0xA5`:
/// alternating bits, not a plausible black/white pixel value).
pub const POISON_SENTINEL: u8 = 0xA5;

impl PoolDiscipline {
    fn pool(&self) -> BufferPool {
        match self {
            PoolDiscipline::Fresh => BufferPool::new(),
            PoolDiscipline::Poisoned(sentinel) => BufferPool::poisoned(*sentinel),
        }
    }
}

const MODES: [ReconstructionMode; 2] =
    [ReconstructionMode::BlockNearest, ReconstructionMode::FifoReplicate];

fn mode_name(mode: ReconstructionMode) -> &'static str {
    match mode {
        ReconstructionMode::BlockNearest => "block-nearest",
        ReconstructionMode::FifoReplicate => "fifo-replicate",
    }
}

/// Outcome counters and violations for one seeded case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseReport {
    /// The seed that reproduces this case end to end.
    pub seed: u64,
    /// Frame width drawn for the case.
    pub width: u32,
    /// Frame height drawn for the case.
    pub height: u32,
    /// Number of frames in the capture sequence.
    pub frames: usize,
    /// Clean frames whose production decode matched the reference in
    /// both modes.
    pub clean_frames_ok: u64,
    /// Faults classified as detected.
    pub faults_detected: u64,
    /// Faults classified as harmless (byte-identical decode).
    pub faults_harmless: u64,
    /// Fault draws skipped because the frame could not host them.
    pub faults_skipped: u64,
    /// Lossy-DRAM read-backs exercised.
    pub dram_reads: u64,
    /// Per-fault-kind counts of classified (detected or harmless)
    /// injections.
    pub fault_counts: BTreeMap<String, u64>,
    /// Human-readable descriptions of every conformance violation.
    pub violations: Vec<String>,
}

impl CaseReport {
    /// True when the case produced no violations.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Aggregated outcome of a whole seed corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusReport {
    /// Cases executed.
    pub cases: u64,
    /// Cases with no violations.
    pub cases_passed: u64,
    /// Clean frames checked against the reference (both modes).
    pub clean_frames_ok: u64,
    /// Total faults classified as detected.
    pub faults_detected: u64,
    /// Total faults classified as harmless.
    pub faults_harmless: u64,
    /// Total fault draws skipped as inapplicable.
    pub faults_skipped: u64,
    /// Lossy-DRAM read-backs exercised.
    pub dram_reads: u64,
    /// Per-fault-kind counts of detected + harmless classifications.
    pub fault_counts: BTreeMap<String, u64>,
    /// Seeds of failing cases (rerun with `run_case(seed)`).
    pub failing_seeds: Vec<u64>,
    /// First violations encountered, capped to keep reports readable.
    pub violations: Vec<String>,
}

impl CorpusReport {
    /// True when every case passed.
    pub fn passed(&self) -> bool {
        self.failing_seeds.is_empty()
    }
}

/// Runs one seeded conformance case. Geometry, content, regions,
/// policies, and fault draws are all derived from `seed`.
pub fn run_case(seed: u64) -> CaseReport {
    run_case_in(seed, PoolDiscipline::Fresh)
}

/// [`run_case`] under an explicit [`PoolDiscipline`]; the production
/// encoder and decoders share one pool, and every decoded output is
/// recycled back into it so buffers actually cycle through the
/// sentinel path.
pub fn run_case_in(seed: u64, discipline: PoolDiscipline) -> CaseReport {
    let mut rng = TestRng::new(seed);
    let width = rng.range_u32(8, 40);
    let height = rng.range_u32(8, 32);
    let n_frames = rng.range_usize(1, 5);
    let seq = gen_capture_sequence(&mut rng, width, height, n_frames);

    let mut report = CaseReport {
        seed,
        width,
        height,
        frames: n_frames,
        clean_frames_ok: 0,
        faults_detected: 0,
        faults_harmless: 0,
        faults_skipped: 0,
        dram_reads: 0,
        fault_counts: BTreeMap::new(),
        violations: Vec::new(),
    };

    let pool = discipline.pool();
    let mut encoder = RhythmicEncoder::with_pool(
        width,
        height,
        rpr_core::EncoderConfig::default(),
        pool.clone(),
    );
    let mut production: Vec<SoftwareDecoder> = MODES
        .iter()
        .map(|&m| SoftwareDecoder::with_pool(width, height, m, pool.clone()))
        .collect();
    let mut reference: Vec<ReferenceDecoder> =
        MODES.iter().map(|&m| ReferenceDecoder::new(width, height, m)).collect();
    let mut dram = LossyDram::new(rng.next_u64(), 1, 2);
    let mut fault_rng = rng.fork();

    for (idx, (frame, regions)) in seq.frames.iter().zip(&seq.regions).enumerate() {
        let encoded = encoder.encode(frame, idx as u64, regions);

        // A freshly encoded frame must always validate.
        if let Err(e) = encoded.validate() {
            report
                .violations
                .push(format!("seed {seed} frame {idx}: fresh frame failed validate: {e}"));
            continue;
        }

        // Snapshot decoder states *before* this frame so fault decodes
        // replay from the exact same history the clean decode saw.
        let snapshots: Vec<SoftwareDecoder> = production.to_vec();

        // Differential decode, both modes.
        let mut clean_outputs = Vec::with_capacity(MODES.len());
        let mut frame_ok = true;
        for (m, mode) in MODES.iter().enumerate() {
            let out = match production[m].try_decode(&encoded) {
                Ok(out) => out,
                Err(e) => {
                    report.violations.push(format!(
                        "seed {seed} frame {idx} {}: clean decode rejected: {e}",
                        mode_name(*mode)
                    ));
                    frame_ok = false;
                    clean_outputs.push(None);
                    continue;
                }
            };
            let expect = reference[m].decode(&encoded);
            if out != expect {
                report.violations.push(format!(
                    "seed {seed} frame {idx} {}: production decode differs from reference",
                    mode_name(*mode)
                ));
                frame_ok = false;
            }
            // Exactness: every R pixel must equal the source.
            let mask = &encoded.metadata().mask;
            'exact: for y in 0..height {
                for x in 0..width {
                    if mask.get(x, y) == rpr_core::PixelStatus::Regional
                        && out.get(x, y) != frame.get(x, y)
                    {
                        report.violations.push(format!(
                            "seed {seed} frame {idx} {}: R pixel ({x},{y}) not exact",
                            mode_name(*mode)
                        ));
                        frame_ok = false;
                        break 'exact;
                    }
                }
            }
            clean_outputs.push(Some(out));
        }
        if frame_ok {
            report.clean_frames_ok += 1;
        }

        // Fault injection against the BlockNearest snapshot (the mode
        // with the richest reconstruction recurrence).
        let Some(clean_out) = clean_outputs[0].clone() else { continue };
        for kind in ALL_FAULTS {
            let mut krng = fault_rng.fork();
            let Some(faulty) = kind.inject(&encoded, &mut krng) else {
                report.faults_skipped += 1;
                continue;
            };
            let mut dec = snapshots[0].clone();
            let outcome =
                catch_unwind(AssertUnwindSafe(|| dec.try_decode(&faulty)));
            match outcome {
                Err(_) => report.violations.push(format!(
                    "seed {seed} frame {idx} fault {}: decoder panicked",
                    kind.name()
                )),
                Ok(Err(_)) => {
                    report.faults_detected += 1;
                    *report.fault_counts.entry(kind.name().to_string()).or_insert(0) += 1;
                }
                Ok(Ok(out)) => {
                    if out == clean_out {
                        report.faults_harmless += 1;
                        *report.fault_counts.entry(kind.name().to_string()).or_insert(0) += 1;
                    } else {
                        report.violations.push(format!(
                            "seed {seed} frame {idx} fault {}: silent wrong decode",
                            kind.name()
                        ));
                    }
                    // Return the buffer so later decodes run on
                    // recycled (sentinel-filled, when poisoned) memory.
                    dec.recycle_output(out);
                }
            }
        }

        // Lossy DRAM round trip.
        let slot = dram.store(&encoded);
        let (back, outcome) = dram.read_back(slot);
        report.dram_reads += 1;
        let mut dec = snapshots[0].clone();
        match (outcome, catch_unwind(AssertUnwindSafe(|| dec.try_decode(&back)))) {
            (_, Err(_)) => report.violations.push(format!(
                "seed {seed} frame {idx}: decoder panicked on DRAM read-back"
            )),
            (ReadOutcome::Clean, Ok(Ok(out))) => {
                if Some(&out) != clean_outputs[0].as_ref() {
                    report.violations.push(format!(
                        "seed {seed} frame {idx}: clean DRAM read-back decoded differently"
                    ));
                }
            }
            (ReadOutcome::Clean, Ok(Err(e))) => report.violations.push(format!(
                "seed {seed} frame {idx}: clean DRAM read-back rejected: {e}"
            )),
            (ReadOutcome::Corrupted { .. }, Ok(Err(_))) => { /* detected, as required */ }
            (ReadOutcome::Corrupted { bits_flipped }, Ok(Ok(_))) => {
                report.violations.push(format!(
                    "seed {seed} frame {idx}: {bits_flipped}-bit DRAM rot decoded silently"
                ));
            }
        }

        // Cycle this frame's outputs back through the shared pool so
        // the next frame's kernels run over recycled buffers.
        production[0].recycle_output(clean_out);
        for out in clean_outputs.into_iter().flatten() {
            production[0].recycle_output(out);
        }
    }
    report
}

/// Runs `n_cases` seeded cases starting at `base_seed` and aggregates
/// the outcome. Violation text is capped at 20 entries; failing seeds
/// are always all recorded.
pub fn run_corpus(base_seed: u64, n_cases: u64) -> CorpusReport {
    run_corpus_in(base_seed, n_cases, PoolDiscipline::Fresh)
}

/// [`run_corpus`] under an explicit [`PoolDiscipline`] — the entry
/// point of the buffer-reuse adversary sweep.
pub fn run_corpus_in(base_seed: u64, n_cases: u64, discipline: PoolDiscipline) -> CorpusReport {
    let mut corpus = CorpusReport {
        cases: n_cases,
        cases_passed: 0,
        clean_frames_ok: 0,
        faults_detected: 0,
        faults_harmless: 0,
        faults_skipped: 0,
        dram_reads: 0,
        fault_counts: BTreeMap::new(),
        failing_seeds: Vec::new(),
        violations: Vec::new(),
    };
    for kind in ALL_FAULTS {
        corpus.fault_counts.insert(kind.name().to_string(), 0);
    }
    for i in 0..n_cases {
        let seed = base_seed.wrapping_add(i);
        let case = run_case_in(seed, discipline);
        corpus.clean_frames_ok += case.clean_frames_ok;
        corpus.faults_detected += case.faults_detected;
        corpus.faults_harmless += case.faults_harmless;
        corpus.faults_skipped += case.faults_skipped;
        corpus.dram_reads += case.dram_reads;
        for (name, n) in &case.fault_counts {
            *corpus.fault_counts.entry(name.clone()).or_insert(0) += n;
        }
        if case.passed() {
            corpus.cases_passed += 1;
        } else {
            corpus.failing_seeds.push(seed);
            for v in &case.violations {
                if corpus.violations.len() < 20 {
                    corpus.violations.push(v.clone());
                }
            }
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_case_passes() {
        let report = run_case(0x1CE);
        assert!(report.passed(), "violations: {:#?}", report.violations);
        assert!(report.clean_frames_ok > 0);
    }

    #[test]
    fn small_corpus_is_clean_and_classifies_faults() {
        let corpus = run_corpus(1000, 25);
        assert!(corpus.passed(), "violations: {:#?}", corpus.violations);
        assert_eq!(corpus.cases_passed, 25);
        assert!(corpus.faults_detected > 0, "corpus must exercise detections");
        assert!(corpus.dram_reads > 0);
    }

    #[test]
    fn poisoned_pool_corpus_has_zero_divergences() {
        let corpus = run_corpus_in(1000, 25, PoolDiscipline::Poisoned(POISON_SENTINEL));
        assert!(corpus.passed(), "violations: {:#?}", corpus.violations);
        assert_eq!(corpus.cases_passed, 25);
    }

    #[test]
    fn poisoned_and_fresh_disciplines_decode_identically() {
        // The pool is invisible to the outputs by construction; a
        // sentinel leaking into any decode would break this equality.
        for seed in [7, 0x1CE, 9999] {
            let fresh = run_case_in(seed, PoolDiscipline::Fresh);
            let poisoned = run_case_in(seed, PoolDiscipline::Poisoned(0xFF));
            assert_eq!(fresh.clean_frames_ok, poisoned.clean_frames_ok, "seed {seed}");
            assert_eq!(fresh.faults_detected, poisoned.faults_detected, "seed {seed}");
            assert_eq!(fresh.faults_harmless, poisoned.faults_harmless, "seed {seed}");
            assert_eq!(fresh.violations, poisoned.violations, "seed {seed}");
        }
    }

    #[test]
    fn reports_serialize_to_json() {
        let corpus = run_corpus(42, 3);
        let json = serde_json::to_string(&corpus).expect("serialize");
        assert!(json.contains("\"cases\""));
        assert!(json.contains("payload-bit-flip"));
    }

    #[test]
    fn case_reports_are_deterministic() {
        let a = run_case(7);
        let b = run_case(7);
        assert_eq!(a.faults_detected, b.faults_detected);
        assert_eq!(a.faults_harmless, b.faults_harmless);
        assert_eq!(a.clean_frames_ok, b.clean_frames_ok);
    }
}

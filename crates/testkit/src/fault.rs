//! Typed fault injectors over [`EncodedFrame`].
//!
//! Each [`FaultKind`] models one concrete corruption class an encoded
//! frame can suffer between the encoder's DMA write and the decoder's
//! read-back: DRAM bit rot in the payload, a truncated or reordered
//! offset table, a mask/payload disagreement, a stale frame index, or a
//! geometry mismatch. Injection goes through
//! [`EncodedFrame::from_raw_parts`] carrying the *original* frame's
//! integrity digest — exactly the state of a frame whose digest was
//! written while the data was still good and whose bytes rotted
//! afterwards.
//!
//! [`FaultKind::inject`] returns `None` when the frame cannot host the
//! fault (e.g. a payload bit flip on an empty payload) or when the
//! mutation would be the identity (flipping a mask entry to the status
//! it already has); the conformance runner skips those draws instead of
//! counting a no-op as a "fault".

use crate::TestRng;
use rpr_core::{EncMask, EncodedFrame, FrameMetadata, PixelStatus, RowOffsets};

/// Every corruption class the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Flip one bit of one payload byte (DRAM bit rot in pixel data).
    PayloadBitFlip,
    /// Drop trailing payload bytes (torn DMA write).
    PayloadTruncate,
    /// Append garbage payload bytes (over-long DMA write).
    PayloadExtend,
    /// Drop trailing offset-table entries (torn metadata write).
    OffsetTruncate,
    /// Swap two interior offset entries, breaking monotonicity.
    OffsetShuffle,
    /// Add a constant to every offset entry, shifting the payload base.
    OffsetShiftBase,
    /// Flip one mask entry's status (mask bit rot). May or may not
    /// change the per-row `R` count depending on the statuses involved.
    MaskStatusFlip,
    /// Rewrite the stored frame index (stale metadata slot reused).
    StaleFrameIdx,
    /// Corrupt the stored width/height (wrong-slot metadata fetch).
    GeometryMismatch,
    /// Flip one bit of one raw mask byte (DRAM bit rot in metadata).
    MaskBitFlip,
}

/// All fault kinds, for corpus iteration.
pub const ALL_FAULTS: [FaultKind; 10] = [
    FaultKind::PayloadBitFlip,
    FaultKind::PayloadTruncate,
    FaultKind::PayloadExtend,
    FaultKind::OffsetTruncate,
    FaultKind::OffsetShuffle,
    FaultKind::OffsetShiftBase,
    FaultKind::MaskStatusFlip,
    FaultKind::StaleFrameIdx,
    FaultKind::GeometryMismatch,
    FaultKind::MaskBitFlip,
];

impl FaultKind {
    /// Short stable name for reports and seed-corpus bookkeeping.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PayloadBitFlip => "payload-bit-flip",
            FaultKind::PayloadTruncate => "payload-truncate",
            FaultKind::PayloadExtend => "payload-extend",
            FaultKind::OffsetTruncate => "offset-truncate",
            FaultKind::OffsetShuffle => "offset-shuffle",
            FaultKind::OffsetShiftBase => "offset-shift-base",
            FaultKind::MaskStatusFlip => "mask-status-flip",
            FaultKind::StaleFrameIdx => "stale-frame-idx",
            FaultKind::GeometryMismatch => "geometry-mismatch",
            FaultKind::MaskBitFlip => "mask-bit-flip",
        }
    }

    /// Injects this fault into a copy of `frame`, drawing positions and
    /// values from `rng`. Returns `None` when the frame cannot host the
    /// fault or the drawn mutation is the identity.
    pub fn inject(self, frame: &EncodedFrame, rng: &mut TestRng) -> Option<EncodedFrame> {
        let meta = frame.metadata();
        let pixels = frame.pixels().to_vec();
        let offsets = meta.row_offsets.as_slice().to_vec();
        let rebuild = |pixels: Vec<u8>, metadata: FrameMetadata| {
            EncodedFrame::from_raw_parts(
                frame.width(),
                frame.height(),
                frame.frame_idx(),
                pixels,
                metadata,
                frame.integrity(),
            )
        };
        match self {
            FaultKind::PayloadBitFlip => {
                let mut pixels = pixels;
                if pixels.is_empty() {
                    return None;
                }
                let i = rng.range_usize(0, pixels.len() - 1);
                let bit = 1 << rng.range_u32(0, 7);
                *pixels.get_mut(i)? ^= bit;
                Some(rebuild(pixels, meta.clone()))
            }
            FaultKind::PayloadTruncate => {
                let mut pixels = pixels;
                if pixels.is_empty() {
                    return None;
                }
                let keep = rng.range_usize(0, pixels.len() - 1);
                pixels.truncate(keep);
                Some(rebuild(pixels, meta.clone()))
            }
            FaultKind::PayloadExtend => {
                let mut pixels = pixels;
                let extra = rng.range_usize(1, 16);
                for _ in 0..extra {
                    pixels.push(rng.next_u8());
                }
                Some(rebuild(pixels, meta.clone()))
            }
            FaultKind::OffsetTruncate => {
                if offsets.len() <= 1 {
                    return None;
                }
                let keep = rng.range_usize(1, offsets.len() - 1);
                let metadata = FrameMetadata {
                    row_offsets: RowOffsets::from_raw_offsets(offsets.get(..keep)?.to_vec()),
                    mask: meta.mask.clone(),
                };
                Some(rebuild(pixels, metadata))
            }
            FaultKind::OffsetShuffle => {
                let mut offsets = offsets;
                if offsets.len() < 2 {
                    return None;
                }
                let i = rng.range_usize(0, offsets.len() - 2);
                let j = rng.range_usize(i + 1, offsets.len() - 1);
                if offsets.get(i) == offsets.get(j) {
                    return None; // identity swap (or an out-of-range draw)
                }
                offsets.swap(i, j);
                let metadata = FrameMetadata {
                    row_offsets: RowOffsets::from_raw_offsets(offsets),
                    mask: meta.mask.clone(),
                };
                Some(rebuild(pixels, metadata))
            }
            FaultKind::OffsetShiftBase => {
                let delta = rng.range_u32(1, 8);
                let shifted: Vec<u32> =
                    offsets.iter().map(|&o| o.saturating_add(delta)).collect();
                let metadata = FrameMetadata {
                    row_offsets: RowOffsets::from_raw_offsets(shifted),
                    mask: meta.mask.clone(),
                };
                Some(rebuild(pixels, metadata))
            }
            FaultKind::MaskStatusFlip => {
                if frame.width() == 0 || frame.height() == 0 {
                    return None;
                }
                let mut mask = meta.mask.clone();
                let x = rng.range_u32(0, frame.width() - 1);
                let y = rng.range_u32(0, frame.height() - 1);
                let old = mask.get(x, y);
                let new = PixelStatus::from_bits(
                    (old.bits() + rng.range_u32(1, 3) as u8) & 0b11,
                );
                mask.set(x, y, new);
                let metadata =
                    FrameMetadata { row_offsets: meta.row_offsets.clone(), mask };
                Some(rebuild(pixels, metadata))
            }
            FaultKind::StaleFrameIdx => {
                let stale = frame.frame_idx().wrapping_add(u64::from(rng.range_u32(1, 100)));
                Some(EncodedFrame::from_raw_parts(
                    frame.width(),
                    frame.height(),
                    stale,
                    pixels,
                    meta.clone(),
                    frame.integrity(),
                ))
            }
            FaultKind::GeometryMismatch => {
                let (mut w, mut h) = (frame.width(), frame.height());
                if rng.chance(1, 2) {
                    w = w.wrapping_add(rng.range_u32(1, 8));
                } else {
                    h = h.wrapping_add(rng.range_u32(1, 8));
                }
                Some(EncodedFrame::from_raw_parts(
                    w,
                    h,
                    frame.frame_idx(),
                    pixels,
                    meta.clone(),
                    frame.integrity(),
                ))
            }
            FaultKind::MaskBitFlip => {
                let mut bytes = meta.mask.as_bytes().to_vec();
                if bytes.is_empty() {
                    return None;
                }
                let i = rng.range_usize(0, bytes.len() - 1);
                let bit = 1 << rng.range_u32(0, 7);
                *bytes.get_mut(i)? ^= bit;
                let mask =
                    EncMask::from_raw_bytes(frame.width(), frame.height(), bytes)?;
                let metadata =
                    FrameMetadata { row_offsets: meta.row_offsets.clone(), mask };
                Some(rebuild(pixels, metadata))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::{RegionLabel, RegionList, RhythmicEncoder};
    use rpr_frame::Plane;

    fn sample_frame() -> EncodedFrame {
        let frame = Plane::from_fn(16, 12, |x, y| (x * 7 + y * 3) as u8);
        let regions = RegionList::new(
            16,
            12,
            vec![RegionLabel::new(2, 1, 8, 6, 2, 1), RegionLabel::new(0, 8, 16, 4, 1, 2)],
        )
        .unwrap();
        RhythmicEncoder::new(16, 12).encode(&frame, 3, &regions)
    }

    #[test]
    fn every_fault_kind_injects_on_a_typical_frame() {
        let frame = sample_frame();
        assert!(frame.validate().is_ok());
        for kind in ALL_FAULTS {
            let mut rng = TestRng::new(0xFA);
            let injected = (0..20).find_map(|_| kind.inject(&frame, &mut rng));
            let faulty = injected.unwrap_or_else(|| panic!("{} never applied", kind.name()));
            assert_ne!(&faulty, &frame, "{} must change the frame", kind.name());
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let frame = sample_frame();
        for kind in ALL_FAULTS {
            let a = kind.inject(&frame, &mut TestRng::new(77));
            let b = kind.inject(&frame, &mut TestRng::new(77));
            assert_eq!(a, b, "{}", kind.name());
        }
    }

    #[test]
    fn payload_faults_skip_empty_payloads() {
        // No regions at all -> empty payload.
        let frame = Plane::from_fn(8, 8, |_, _| 0u8);
        let regions = RegionList::new_lossy(8, 8, vec![]);
        let encoded = RhythmicEncoder::new(8, 8).encode(&frame, 0, &regions);
        assert_eq!(encoded.pixel_count(), 0);
        let mut rng = TestRng::new(1);
        assert!(FaultKind::PayloadBitFlip.inject(&encoded, &mut rng).is_none());
        assert!(FaultKind::PayloadTruncate.inject(&encoded, &mut rng).is_none());
    }

    #[test]
    fn injected_frames_carry_the_original_digest() {
        let frame = sample_frame();
        let mut rng = TestRng::new(9);
        let faulty = FaultKind::PayloadBitFlip.inject(&frame, &mut rng).unwrap();
        assert_eq!(faulty.integrity(), frame.integrity());
        assert_ne!(faulty.compute_integrity(), faulty.integrity());
    }
}

//! Typed fault injectors over serialized *session* byte scripts.
//!
//! The third injection layer: [`crate::FaultKind`] corrupts in-memory
//! frames, [`crate::WireFaultKind`] corrupts container bytes, and each
//! [`SessionFaultKind`] corrupts the byte script a camera client sends
//! an `rpr-serve` server — the hello, the message framing, or where
//! the script ends. Each fault targets one serving defence: admission
//! (bad hellos rejected with a typed [`AdmitCode`]
//! (rpr_serve::AdmitCode)), framing (forged kinds/lengths are typed
//! protocol errors), and end-of-stream judgment (a script cut
//! mid-frame must surface as `WireError::TruncatedStream`, never as a
//! silent clean session).
//!
//! [`SessionFaultKind::inject`] returns `None` when the script cannot
//! host the fault (e.g. no data message to truncate); corpus drivers
//! skip those draws rather than counting a no-op.

use crate::TestRng;
use rpr_serve::protocol::{
    HELLO_FIXED_LEN, HELLO_MAGIC, MAX_MSG_LEN, MSG_BYE, MSG_DATA, MSG_HEADER_LEN,
};

/// Every session-script corruption class the harness can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionFaultKind {
    /// Cut the script inside the hello. The server must time the
    /// session out of `AwaitHello` when the connection closes, not
    /// admit it.
    TruncateMidHello,
    /// Flip one bit of the hello magic. Rejected as `BadHello`.
    HelloMagicFlip,
    /// Declare an unsupported protocol version. Rejected as `BadHello`.
    HelloBadVersion,
    /// Zero the tenant length (an anonymous hello). Rejected as
    /// `BadHello`.
    HelloEmptyTenant,
    /// Replace a message kind byte with an unknown value. A typed
    /// protocol error ends the session.
    UnknownMsgKind,
    /// Forge a data message's declared length above [`MAX_MSG_LEN`].
    /// Refused before any payload is buffered.
    OversizedMsgLen,
    /// Cut the script inside a data message's payload — the torn
    /// final chunk. Must end as `WireError::TruncatedStream` (or a
    /// mid-hello/mid-message protocol error), never a clean session.
    TruncateMidData,
    /// Append a data message after the bye. A typed protocol error.
    DataAfterBye,
}

/// All session fault kinds, for corpus iteration.
pub const ALL_SESSION_FAULTS: [SessionFaultKind; 8] = [
    SessionFaultKind::TruncateMidHello,
    SessionFaultKind::HelloMagicFlip,
    SessionFaultKind::HelloBadVersion,
    SessionFaultKind::HelloEmptyTenant,
    SessionFaultKind::UnknownMsgKind,
    SessionFaultKind::OversizedMsgLen,
    SessionFaultKind::TruncateMidData,
    SessionFaultKind::DataAfterBye,
];

/// Walks the message area of a script (after the hello) and returns
/// the offsets of each message header. Assumes a well-formed input
/// script (the injector corrupts *from* valid scripts).
fn message_offsets(script: &[u8]) -> Vec<usize> {
    let mut offsets = Vec::new();
    let Some(tenant_len) = script
        .get(HELLO_FIXED_LEN - 2..HELLO_FIXED_LEN)
        .and_then(|s| <[u8; 2]>::try_from(s).ok())
        .map(u16::from_le_bytes)
    else {
        return offsets;
    };
    let mut pos = HELLO_FIXED_LEN + usize::from(tenant_len);
    while pos + MSG_HEADER_LEN <= script.len() {
        offsets.push(pos);
        let Some(len) = script
            .get(pos + 1..pos + 5)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
            .map(u32::from_le_bytes)
        else {
            break;
        };
        pos += MSG_HEADER_LEN + len as usize;
    }
    offsets
}

impl SessionFaultKind {
    /// Short stable name for reports and corpus bookkeeping.
    pub fn name(self) -> &'static str {
        match self {
            SessionFaultKind::TruncateMidHello => "truncate-mid-hello",
            SessionFaultKind::HelloMagicFlip => "hello-magic-flip",
            SessionFaultKind::HelloBadVersion => "hello-bad-version",
            SessionFaultKind::HelloEmptyTenant => "hello-empty-tenant",
            SessionFaultKind::UnknownMsgKind => "unknown-msg-kind",
            SessionFaultKind::OversizedMsgLen => "oversized-msg-len",
            SessionFaultKind::TruncateMidData => "truncate-mid-data",
            SessionFaultKind::DataAfterBye => "data-after-bye",
        }
    }

    /// Applies the fault to a well-formed session `script` (as built
    /// by `rpr_serve::session_script`), deterministically under `rng`.
    /// Returns `None` when the script cannot host this fault.
    pub fn inject(self, script: &[u8], rng: &mut TestRng) -> Option<Vec<u8>> {
        let mut out = script.to_vec();
        match self {
            SessionFaultKind::TruncateMidHello => {
                if script.len() < HELLO_FIXED_LEN {
                    return None;
                }
                // Keep at least the magic (so the cut is mid-hello,
                // not an instant bad-magic) and lose at least a byte.
                let keep = HELLO_MAGIC.len()
                    + rng.range_usize(0, HELLO_FIXED_LEN - HELLO_MAGIC.len() - 1);
                out.truncate(keep);
                Some(out)
            }
            SessionFaultKind::HelloMagicFlip => {
                let i = rng.range_usize(0, HELLO_MAGIC.len() - 1);
                *out.get_mut(i)? ^= 1u8 << rng.range_u32(0, 7);
                Some(out)
            }
            SessionFaultKind::HelloBadVersion => {
                *out.get_mut(4)? = 0xfe;
                *out.get_mut(5)? = 0xff;
                Some(out)
            }
            SessionFaultKind::HelloEmptyTenant => {
                *out.get_mut(HELLO_FIXED_LEN - 2)? = 0;
                *out.get_mut(HELLO_FIXED_LEN - 1)? = 0;
                Some(out)
            }
            SessionFaultKind::UnknownMsgKind => {
                let offsets = message_offsets(script);
                if offsets.is_empty() {
                    return None;
                }
                let at = *offsets.get(rng.range_usize(0, offsets.len() - 1))?;
                *out.get_mut(at)? = 0x7a; // neither 'D' nor 'B'
                Some(out)
            }
            SessionFaultKind::OversizedMsgLen => {
                let data: Vec<usize> = message_offsets(script)
                    .into_iter()
                    .filter(|&o| script.get(o) == Some(&MSG_DATA))
                    .collect();
                if data.is_empty() {
                    return None;
                }
                let at = *data.get(rng.range_usize(0, data.len() - 1))?;
                let forged = (MAX_MSG_LEN + 1 + rng.range_u32(0, 1023)).to_le_bytes();
                out.get_mut(at + 1..at + 5)?.copy_from_slice(&forged);
                Some(out)
            }
            SessionFaultKind::TruncateMidData => {
                let offsets = message_offsets(script);
                let data: Vec<usize> = offsets
                    .iter()
                    .copied()
                    .filter(|&o| {
                        script.get(o) == Some(&MSG_DATA)
                            && script
                                .get(o + 1..o + 5)
                                .and_then(|s| <[u8; 4]>::try_from(s).ok())
                                .map(u32::from_le_bytes)
                                .unwrap_or(0)
                                > 1
                    })
                    .collect();
                if data.is_empty() {
                    return None;
                }
                let at = *data.get(rng.range_usize(0, data.len() - 1))?;
                let len = script
                    .get(at + 1..at + 5)
                    .and_then(|s| <[u8; 4]>::try_from(s).ok())
                    .map(u32::from_le_bytes)? as usize;
                // Cut strictly inside the payload.
                let cut = at + MSG_HEADER_LEN + 1 + rng.range_usize(0, len - 2);
                out.truncate(cut);
                Some(out)
            }
            SessionFaultKind::DataAfterBye => {
                let offsets = message_offsets(script);
                offsets.iter().find(|&&o| script.get(o) == Some(&MSG_BYE))?;
                out.push(MSG_DATA);
                out.extend_from_slice(&4u32.to_le_bytes());
                out.extend_from_slice(b"late");
                Some(out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_serve::session_script;

    fn script() -> Vec<u8> {
        // A hand-rolled pseudo-container payload is fine here: the
        // injectors only manipulate session framing, not wire bytes.
        session_script("acme", 3, &[0xAB; 300], 64, true)
    }

    #[test]
    fn every_fault_applies_to_a_full_script() {
        let s = script();
        for kind in ALL_SESSION_FAULTS {
            let mut rng = TestRng::new(0x5e55);
            let injected = kind.inject(&s, &mut rng);
            assert!(injected.is_some(), "{} found no anchor", kind.name());
            assert_ne!(injected.unwrap(), s, "{} must change the script", kind.name());
        }
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let s = script();
        for kind in ALL_SESSION_FAULTS {
            let a = kind.inject(&s, &mut TestRng::new(42));
            let b = kind.inject(&s, &mut TestRng::new(42));
            assert_eq!(a, b, "{}", kind.name());
        }
    }

    #[test]
    fn faults_without_anchors_are_skipped() {
        // Script with no bye: DataAfterBye cannot apply.
        let no_bye = session_script("acme", 3, &[1, 2, 3], 64, false);
        assert!(SessionFaultKind::DataAfterBye
            .inject(&no_bye, &mut TestRng::new(1))
            .is_none());
        // Script with no data messages: data-targeting faults skip.
        let no_data = session_script("acme", 3, &[], 64, true);
        assert!(SessionFaultKind::TruncateMidData
            .inject(&no_data, &mut TestRng::new(1))
            .is_none());
        assert!(SessionFaultKind::OversizedMsgLen
            .inject(&no_data, &mut TestRng::new(1))
            .is_none());
    }

    #[test]
    fn names_are_stable_and_unique() {
        let mut names: Vec<_> = ALL_SESSION_FAULTS.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_SESSION_FAULTS.len());
    }
}

//! Container-level conformance: round-trip fidelity and fault
//! classification for the `.rpr` wire format.
//!
//! One *case* is a seeded capture sequence encoded to
//! [`rpr_core::EncodedFrame`]s and pushed through the wire layer four
//! ways:
//!
//! 1. **Blob round-trip** — every frame is serialized under every
//!    [`MaskCodec`] and parsed back; the result must equal the
//!    in-memory frame exactly (mask, offsets, payload, digest).
//! 2. **Container round-trip** — the whole sequence goes through
//!    [`write_container`]/[`read_all`] and must come back
//!    byte-identical; the decoded frames are then run through the
//!    production [`SoftwareDecoder`] in both [`ReconstructionMode`]s
//!    and checked against decoding the originals.
//! 3. **Scan recovery** — the container is truncated just before its
//!    index chunk (an unfinished file) and
//!    [`ContainerReader::scan`] must still recover every frame.
//! 4. **Fault injection** — every applicable [`crate::WireFaultKind`] is
//!    injected into the container bytes and the full read path must
//!    classify it: *detected* (a typed [`rpr_wire::WireError`]) or
//!    *harmless* (identical frames out). A panic or silently
//!    different frames is a conformance violation. The sequential
//!    [`ContainerReader::scan`] path is additionally held to the
//!    no-panic bar (it may legitimately salvage frames the indexed
//!    path rejects — that is what a recovery path is for).
//!
//! Reports serialize to JSON so CI can archive them next to the
//! encode→decode corpus; any violation carries the case seed.

use crate::{gen_capture_sequence, PoolDiscipline, TestRng, ALL_WIRE_FAULTS};
use rpr_core::{BufferPool, EncodedFrame, ReconstructionMode, RhythmicEncoder, SoftwareDecoder};
use rpr_wire::{
    list_chunks, read_all, write_container, ContainerReader, EncodedFrameView, MaskCodec,
    StreamDecoder, StreamEvent, CHUNK_INDEX,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

const MODES: [ReconstructionMode; 2] =
    [ReconstructionMode::BlockNearest, ReconstructionMode::FifoReplicate];

const CODECS: [(MaskCodec, &str); 3] =
    [(MaskCodec::Auto, "auto"), (MaskCodec::Raw, "raw"), (MaskCodec::Rle, "rle")];

fn mode_name(mode: ReconstructionMode) -> &'static str {
    match mode {
        ReconstructionMode::BlockNearest => "block-nearest",
        ReconstructionMode::FifoReplicate => "fifo-replicate",
    }
}

/// Outcome counters and violations for one seeded container case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireCaseReport {
    /// The seed that reproduces this case end to end.
    pub seed: u64,
    /// Frame width drawn for the case.
    pub width: u32,
    /// Frame height drawn for the case.
    pub height: u32,
    /// Number of frames in the capture sequence.
    pub frames: usize,
    /// Per-codec frame blobs that round-tripped exactly.
    pub blob_roundtrips: u64,
    /// Frames that round-tripped the container byte-identically.
    pub container_frames_ok: u64,
    /// Reconstruction modes whose decode of the round-tripped frames
    /// matched decoding the originals.
    pub decode_modes_ok: u64,
    /// True when the truncated-container scan recovered every frame.
    pub scan_recovery_ok: bool,
    /// Container faults classified as detected (typed error).
    pub faults_detected: u64,
    /// Container faults classified as harmless (identical frames).
    pub faults_harmless: u64,
    /// Fault draws skipped because the container could not host them.
    pub faults_skipped: u64,
    /// Per-fault-kind counts of classified injections.
    pub fault_counts: BTreeMap<String, u64>,
    /// Human-readable descriptions of every conformance violation.
    pub violations: Vec<String>,
}

impl WireCaseReport {
    /// True when the case produced no violations.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Aggregated outcome of a whole container seed corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireCorpusReport {
    /// Cases executed.
    pub cases: u64,
    /// Cases with no violations.
    pub cases_passed: u64,
    /// Per-codec frame blobs that round-tripped exactly.
    pub blob_roundtrips: u64,
    /// Frames that round-tripped a container byte-identically.
    pub container_frames_ok: u64,
    /// Reconstruction-mode decode equivalences verified.
    pub decode_modes_ok: u64,
    /// Total container faults classified as detected.
    pub faults_detected: u64,
    /// Total container faults classified as harmless.
    pub faults_harmless: u64,
    /// Total fault draws skipped as inapplicable.
    pub faults_skipped: u64,
    /// Per-fault-kind counts of detected + harmless classifications.
    pub fault_counts: BTreeMap<String, u64>,
    /// Seeds of failing cases (rerun with `run_wire_case(seed)`).
    pub failing_seeds: Vec<u64>,
    /// First violations encountered, capped to keep reports readable.
    pub violations: Vec<String>,
}

impl WireCorpusReport {
    /// True when every case passed.
    pub fn passed(&self) -> bool {
        self.failing_seeds.is_empty()
    }
}

/// Runs one seeded container-conformance case. Geometry, content,
/// regions, and fault draws are all derived from `seed` with the same
/// ranges as [`crate::run_case`], so the two corpora stress the same
/// frame population.
pub fn run_wire_case(seed: u64) -> WireCaseReport {
    run_wire_case_in(seed, PoolDiscipline::Fresh)
}

/// [`run_wire_case`] under an explicit [`PoolDiscipline`]: the
/// encoder, both production decoders, and a streaming-ingest leg share
/// one pool, with every drained frame and decoded output recycled back
/// into it — the wire half of the buffer-reuse adversary.
pub fn run_wire_case_in(seed: u64, discipline: PoolDiscipline) -> WireCaseReport {
    let pool = match discipline {
        PoolDiscipline::Fresh => BufferPool::new(),
        PoolDiscipline::Poisoned(sentinel) => BufferPool::poisoned(sentinel),
    };
    let mut rng = TestRng::new(seed);
    let width = rng.range_u32(8, 40);
    let height = rng.range_u32(8, 32);
    let n_frames = rng.range_usize(1, 5);
    let seq = gen_capture_sequence(&mut rng, width, height, n_frames);

    let mut report = WireCaseReport {
        seed,
        width,
        height,
        frames: n_frames,
        blob_roundtrips: 0,
        container_frames_ok: 0,
        decode_modes_ok: 0,
        scan_recovery_ok: false,
        faults_detected: 0,
        faults_harmless: 0,
        faults_skipped: 0,
        fault_counts: BTreeMap::new(),
        violations: Vec::new(),
    };

    let mut encoder = RhythmicEncoder::with_pool(
        width,
        height,
        rpr_core::EncoderConfig::default(),
        pool.clone(),
    );
    let frames: Vec<EncodedFrame> = seq
        .frames
        .iter()
        .zip(&seq.regions)
        .enumerate()
        .map(|(idx, (frame, regions))| encoder.encode(frame, idx as u64, regions))
        .collect();

    // 1. Blob round-trip under every codec.
    for (idx, frame) in frames.iter().enumerate() {
        for (codec, codec_name) in CODECS {
            let mut blob = Vec::new();
            match rpr_wire::encode_frame(frame, codec, &mut blob) {
                Err(e) => report.violations.push(format!(
                    "seed {seed} frame {idx} codec {codec_name}: encode refused a valid frame: {e}"
                )),
                Ok(_) => match EncodedFrameView::parse(&blob).and_then(|v| v.to_validated_frame())
                {
                    Err(e) => report.violations.push(format!(
                        "seed {seed} frame {idx} codec {codec_name}: blob failed to parse back: {e}"
                    )),
                    Ok(back) if &back != frame => report.violations.push(format!(
                        "seed {seed} frame {idx} codec {codec_name}: blob round-trip differs"
                    )),
                    Ok(_) => report.blob_roundtrips += 1,
                },
            }
        }
    }

    // 2. Container round-trip, then decode equivalence in both modes.
    let container = match write_container(&frames) {
        Ok(bytes) => bytes,
        Err(e) => {
            report.violations.push(format!("seed {seed}: write_container failed: {e}"));
            return report;
        }
    };
    match read_all(&container) {
        Err(e) => report.violations.push(format!("seed {seed}: read_all failed: {e}")),
        Ok(back) => {
            for (idx, (a, b)) in frames.iter().zip(&back).enumerate() {
                if a == b {
                    report.container_frames_ok += 1;
                } else {
                    report.violations.push(format!(
                        "seed {seed} frame {idx}: container round-trip differs"
                    ));
                }
            }
            if back.len() != frames.len() {
                report.violations.push(format!(
                    "seed {seed}: container returned {} of {} frames",
                    back.len(),
                    frames.len()
                ));
            }
            for mode in MODES {
                if decode_sequence(&frames, width, height, mode, &pool)
                    == decode_sequence(&back, width, height, mode, &pool)
                {
                    report.decode_modes_ok += 1;
                } else {
                    report.violations.push(format!(
                        "seed {seed} {}: replayed decode differs from in-memory decode",
                        mode_name(mode)
                    ));
                }
            }

            // Streaming ingest over the same bytes: frames promoted
            // into recycled pool buffers must match the whole-file
            // read, and each drained frame is dismantled back into the
            // pool so later promotions reuse (poisoned) capacity.
            let mut dec = StreamDecoder::with_pool(pool.clone());
            dec.push(&container);
            let mut streamed = 0usize;
            loop {
                match dec.next_event() {
                    Ok(Some(StreamEvent::Frame(f))) => {
                        if frames.get(streamed) != Some(&f) {
                            report.violations.push(format!(
                                "seed {seed}: streamed frame {streamed} differs from original"
                            ));
                        }
                        streamed += 1;
                        f.recycle(&pool);
                    }
                    Ok(Some(StreamEvent::Finished { .. })) | Ok(None) => break,
                    Err(e) => {
                        report.violations.push(format!(
                            "seed {seed}: streaming ingest of a clean container failed: {e}"
                        ));
                        break;
                    }
                }
            }
            if streamed != frames.len() {
                report.violations.push(format!(
                    "seed {seed}: streaming ingest delivered {streamed} of {} frames",
                    frames.len()
                ));
            }
        }
    }

    // 3. Scan recovery of an unfinished file (no index, no trailer).
    report.scan_recovery_ok = match scan_recovery(&container, &frames) {
        Ok(()) => true,
        Err(why) => {
            report.violations.push(format!("seed {seed}: {why}"));
            false
        }
    };

    // 4. Fault injection over the container bytes.
    let mut fault_rng = rng.fork();
    for kind in ALL_WIRE_FAULTS {
        let mut krng = fault_rng.fork();
        let Some(faulty) = kind.inject(&container, &mut krng) else {
            report.faults_skipped += 1;
            continue;
        };
        match catch_unwind(AssertUnwindSafe(|| read_all(&faulty))) {
            Err(_) => report.violations.push(format!(
                "seed {seed} fault {}: indexed read path panicked",
                kind.name()
            )),
            Ok(Err(_)) => {
                report.faults_detected += 1;
                *report.fault_counts.entry(kind.name().to_string()).or_insert(0) += 1;
            }
            Ok(Ok(back)) => {
                if back == frames {
                    report.faults_harmless += 1;
                    *report.fault_counts.entry(kind.name().to_string()).or_insert(0) += 1;
                } else {
                    report.violations.push(format!(
                        "seed {seed} fault {}: silent wrong frames from indexed read",
                        kind.name()
                    ));
                }
            }
        }
        // The recovery path may salvage or reject, but never panic —
        // and what it does salvage must validate, never differ.
        let scanned = catch_unwind(AssertUnwindSafe(|| {
            let reader = ContainerReader::scan(&faulty)?;
            (0..reader.len()).map(|i| reader.frame(i)).collect::<Result<Vec<_>, _>>()
        }));
        match scanned {
            Err(_) => report.violations.push(format!(
                "seed {seed} fault {}: scan recovery path panicked",
                kind.name()
            )),
            Ok(Ok(salvaged)) => {
                let ok = salvaged
                    .iter()
                    .all(|f| frames.iter().any(|orig| orig == f));
                if !ok {
                    report.violations.push(format!(
                        "seed {seed} fault {}: scan salvaged a frame that never existed",
                        kind.name()
                    ));
                }
            }
            Ok(Err(_)) => {}
        }
    }
    report
}

fn decode_sequence(
    frames: &[EncodedFrame],
    width: u32,
    height: u32,
    mode: ReconstructionMode,
    pool: &BufferPool,
) -> Vec<Option<rpr_frame::GrayFrame>> {
    let mut decoder = SoftwareDecoder::with_pool(width, height, mode, pool.clone());
    frames.iter().map(|f| decoder.try_decode(f).ok()).collect()
}

fn scan_recovery(container: &[u8], frames: &[EncodedFrame]) -> Result<(), String> {
    let chunks = list_chunks(container).map_err(|e| format!("list_chunks failed: {e}"))?;
    let index = chunks
        .iter()
        .find(|c| c.kind == CHUNK_INDEX)
        .ok_or_else(|| "finished container has no index chunk".to_string())?;
    let truncated = &container[..index.offset];
    let reader =
        ContainerReader::scan(truncated).map_err(|e| format!("scan of unfinished file failed: {e}"))?;
    if reader.len() != frames.len() {
        return Err(format!("scan recovered {} of {} frames", reader.len(), frames.len()));
    }
    for (i, orig) in frames.iter().enumerate() {
        let back = reader.frame(i).map_err(|e| format!("scan frame {i} failed: {e}"))?;
        if &back != orig {
            return Err(format!("scan-recovered frame {i} differs"));
        }
    }
    Ok(())
}

/// Runs `n_cases` seeded container cases starting at `base_seed` and
/// aggregates the outcome. Violation text is capped at 20 entries;
/// failing seeds are always all recorded.
pub fn run_wire_corpus(base_seed: u64, n_cases: u64) -> WireCorpusReport {
    run_wire_corpus_in(base_seed, n_cases, PoolDiscipline::Fresh)
}

/// [`run_wire_corpus`] under an explicit [`PoolDiscipline`] — the
/// container half of the buffer-reuse adversary sweep.
pub fn run_wire_corpus_in(
    base_seed: u64,
    n_cases: u64,
    discipline: PoolDiscipline,
) -> WireCorpusReport {
    let mut corpus = WireCorpusReport {
        cases: n_cases,
        cases_passed: 0,
        blob_roundtrips: 0,
        container_frames_ok: 0,
        decode_modes_ok: 0,
        faults_detected: 0,
        faults_harmless: 0,
        faults_skipped: 0,
        fault_counts: BTreeMap::new(),
        failing_seeds: Vec::new(),
        violations: Vec::new(),
    };
    for kind in ALL_WIRE_FAULTS {
        corpus.fault_counts.insert(kind.name().to_string(), 0);
    }
    for i in 0..n_cases {
        let seed = base_seed.wrapping_add(i);
        let case = run_wire_case_in(seed, discipline);
        corpus.blob_roundtrips += case.blob_roundtrips;
        corpus.container_frames_ok += case.container_frames_ok;
        corpus.decode_modes_ok += case.decode_modes_ok;
        corpus.faults_detected += case.faults_detected;
        corpus.faults_harmless += case.faults_harmless;
        corpus.faults_skipped += case.faults_skipped;
        for (name, n) in &case.fault_counts {
            *corpus.fault_counts.entry(name.clone()).or_insert(0) += n;
        }
        if case.passed() {
            corpus.cases_passed += 1;
        } else {
            corpus.failing_seeds.push(seed);
            for v in &case.violations {
                if corpus.violations.len() < 20 {
                    corpus.violations.push(v.clone());
                }
            }
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_case_passes() {
        let report = run_wire_case(0x1CE);
        assert!(report.passed(), "violations: {:#?}", report.violations);
        assert!(report.blob_roundtrips > 0);
        assert!(report.container_frames_ok > 0);
        assert_eq!(report.decode_modes_ok, 2);
        assert!(report.scan_recovery_ok);
    }

    #[test]
    fn small_corpus_is_clean_and_classifies_faults() {
        let corpus = run_wire_corpus(2000, 25);
        assert!(corpus.passed(), "violations: {:#?}", corpus.violations);
        assert_eq!(corpus.cases_passed, 25);
        assert!(corpus.faults_detected > 0, "corpus must exercise detections");
        assert_eq!(corpus.blob_roundtrips, corpus.container_frames_ok * 3);
    }

    #[test]
    fn poisoned_pool_wire_corpus_has_zero_divergences() {
        let corpus =
            run_wire_corpus_in(2000, 25, PoolDiscipline::Poisoned(crate::POISON_SENTINEL));
        assert!(corpus.passed(), "violations: {:#?}", corpus.violations);
        assert_eq!(corpus.cases_passed, 25);
    }

    #[test]
    fn reports_serialize_to_json() {
        let corpus = run_wire_corpus(42, 3);
        let json = serde_json::to_string(&corpus).expect("serialize");
        assert!(json.contains("\"cases\""));
        assert!(json.contains("stale-index-entry"));
    }

    #[test]
    fn case_reports_are_deterministic() {
        let a = run_wire_case(7);
        let b = run_wire_case(7);
        assert_eq!(a.faults_detected, b.faults_detected);
        assert_eq!(a.faults_harmless, b.faults_harmless);
        assert_eq!(a.blob_roundtrips, b.blob_roundtrips);
    }
}

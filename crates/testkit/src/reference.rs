//! A naive reference decoder for differential conformance testing.
//!
//! [`ReferenceDecoder`] reimplements both [`ReconstructionMode`]s from
//! the spec (paper §4.2) with the most transparent data structures
//! available: the packed-payload index of each `R` pixel comes from one
//! independent raster count over the EncMask (never from the per-row
//! offset table, so the production decoder's offset arithmetic is
//! cross-checked), and the nearest-anchor recurrence runs over explicit
//! whole-frame distance arrays instead of the production decoder's
//! rolling two-row window. Any divergence between the two
//! implementations on a validated frame is a conformance bug in one of
//! them.

use rpr_core::{EncodedFrame, PixelStatus, ReconstructionMode};
use rpr_frame::{GrayFrame, Plane};

/// The transparent per-pixel reference decoder. Holds its own
/// last-decoded frame so temporally skipped (`Sk`) pixels resolve the
/// same way the production decoder resolves them.
#[derive(Debug, Clone)]
pub struct ReferenceDecoder {
    width: u32,
    height: u32,
    mode: ReconstructionMode,
    last_decoded: Option<GrayFrame>,
}

impl ReferenceDecoder {
    /// Creates a reference decoder for `width x height` frames.
    pub fn new(width: u32, height: u32, mode: ReconstructionMode) -> Self {
        ReferenceDecoder { width, height, mode, last_decoded: None }
    }

    /// The mode this decoder reconstructs `St` pixels with.
    pub fn mode(&self) -> ReconstructionMode {
        self.mode
    }

    /// Forgets decode history (scene cut).
    pub fn reset(&mut self) {
        self.last_decoded = None;
    }

    /// Decodes one frame, updating the internal history.
    ///
    /// # Panics
    ///
    /// Panics on geometry mismatch or on a structurally inconsistent
    /// frame — callers validate first; the conformance runner only
    /// hands this decoder frames the production `validate()` accepted.
    pub fn decode(&mut self, encoded: &EncodedFrame) -> GrayFrame {
        assert_eq!(
            (encoded.width(), encoded.height()),
            (self.width, self.height),
            "reference decoder geometry mismatch"
        );
        let r_index = index_regional_pixels(encoded);
        let out = match self.mode {
            ReconstructionMode::BlockNearest => self.decode_block_nearest(encoded, &r_index),
            ReconstructionMode::FifoReplicate => self.decode_fifo(encoded, &r_index),
        };
        self.last_decoded = Some(out.clone());
        out
    }

    fn decode_block_nearest(
        &self,
        encoded: &EncodedFrame,
        r_index: &[Vec<Option<usize>>],
    ) -> GrayFrame {
        let mask = &encoded.metadata().mask;
        let payload = encoded.pixels();
        let (w, h) = (self.width as usize, self.height as usize);
        let mut out: GrayFrame = Plane::new(self.width, self.height);
        // dist[y][x]: chamfer distance from (x, y) to the sample that
        // produced its value; u32::MAX means "no data" (black fill).
        let mut dist = vec![vec![u32::MAX; w]; h];

        for y in 0..h {
            // Last R pixel seen so far in this row, as (x, value).
            let mut last_r: Option<(usize, u8)> = None;
            for x in 0..w {
                let (value, d) = match mask.get(x as u32, y as u32) {
                    PixelStatus::Regional => {
                        let idx = r_index[y][x].expect("mask says R, index must exist");
                        let v = payload[idx];
                        last_r = Some((x, v));
                        (v, 0)
                    }
                    PixelStatus::Strided => {
                        let left = last_r.map(|(xr, v)| ((x - xr) as u32, v));
                        let above = (y > 0 && dist[y - 1][x] != u32::MAX).then(|| {
                            (dist[y - 1][x] + 1, out.get(x as u32, y as u32 - 1).unwrap())
                        });
                        match (left, above) {
                            // On a tie the left candidate wins, matching
                            // the production decoder.
                            (Some((dl, vl)), Some((da, _))) if dl <= da => (vl, dl),
                            (_, Some((da, va))) => (va, da),
                            (Some((dl, vl)), None) => (vl, dl),
                            (None, None) => (0, u32::MAX),
                        }
                    }
                    PixelStatus::Skipped => match &self.last_decoded {
                        Some(prev) => (prev.get(x as u32, y as u32).unwrap_or(0), 0),
                        None => (0, u32::MAX),
                    },
                    PixelStatus::NonRegional => (0, u32::MAX),
                };
                out.set(x as u32, y as u32, value);
                dist[y][x] = d;
            }
        }
        out
    }

    fn decode_fifo(
        &self,
        encoded: &EncodedFrame,
        r_index: &[Vec<Option<usize>>],
    ) -> GrayFrame {
        let mask = &encoded.metadata().mask;
        let payload = encoded.pixels();
        let mut out: GrayFrame = Plane::new(self.width, self.height);
        let mut last_emitted = 0u8;
        for y in 0..self.height {
            for x in 0..self.width {
                let value = match mask.get(x, y) {
                    PixelStatus::Regional => {
                        payload[r_index[y as usize][x as usize].expect("R pixel indexed")]
                    }
                    PixelStatus::Strided => last_emitted,
                    PixelStatus::Skipped => self
                        .last_decoded
                        .as_ref()
                        .and_then(|prev| prev.get(x, y))
                        .unwrap_or(0),
                    PixelStatus::NonRegional => 0,
                };
                last_emitted = value;
                out.set(x, y, value);
            }
        }
        out
    }
}

/// Computes each `R` pixel's index into the packed payload by counting
/// `R` entries in raster order over the EncMask — the defining property
/// of the representation (paper §3.2), independent of the offset table.
fn index_regional_pixels(encoded: &EncodedFrame) -> Vec<Vec<Option<usize>>> {
    let mask = &encoded.metadata().mask;
    let mut table = vec![vec![None; encoded.width() as usize]; encoded.height() as usize];
    let mut next = 0usize;
    for y in 0..encoded.height() {
        for x in 0..encoded.width() {
            if mask.get(x, y) == PixelStatus::Regional {
                table[y as usize][x as usize] = Some(next);
                next += 1;
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::{RegionLabel, RegionList, RhythmicEncoder, SoftwareDecoder};
    use rpr_frame::Plane;

    fn gradient(w: u32, h: u32) -> GrayFrame {
        Plane::from_fn(w, h, |x, y| (x * 5 + y * 11) as u8)
    }

    #[test]
    fn matches_production_on_full_frame() {
        let frame = gradient(16, 12);
        let encoded =
            RhythmicEncoder::new(16, 12).encode(&frame, 0, &RegionList::full_frame(16, 12));
        for mode in [ReconstructionMode::BlockNearest, ReconstructionMode::FifoReplicate] {
            let mut reference = ReferenceDecoder::new(16, 12, mode);
            let mut production = SoftwareDecoder::with_mode(16, 12, mode);
            assert_eq!(reference.decode(&encoded), production.decode(&encoded), "{mode:?}");
        }
    }

    #[test]
    fn matches_production_on_mixed_statuses() {
        let frames = [gradient(20, 16), Plane::from_fn(20, 16, |x, y| (x * y) as u8)];
        let regions = RegionList::new(
            20,
            16,
            vec![
                RegionLabel::new(1, 1, 9, 7, 2, 1),
                RegionLabel::new(6, 4, 10, 10, 1, 2),
                RegionLabel::new(0, 14, 20, 2, 3, 1),
            ],
        )
        .unwrap();
        for mode in [ReconstructionMode::BlockNearest, ReconstructionMode::FifoReplicate] {
            let mut enc = RhythmicEncoder::new(20, 16);
            let mut reference = ReferenceDecoder::new(20, 16, mode);
            let mut production = SoftwareDecoder::with_mode(20, 16, mode);
            for (idx, frame) in frames.iter().enumerate() {
                let encoded = enc.encode(frame, idx as u64, &regions);
                assert_eq!(
                    reference.decode(&encoded),
                    production.decode(&encoded),
                    "{mode:?} frame {idx}"
                );
            }
        }
    }

    #[test]
    fn r_index_agrees_with_offset_table() {
        let frame = gradient(16, 16);
        let regions = RegionList::new(
            16,
            16,
            vec![RegionLabel::new(2, 3, 9, 7, 1, 1), RegionLabel::new(0, 12, 16, 4, 2, 1)],
        )
        .unwrap();
        let encoded = RhythmicEncoder::new(16, 16).encode(&frame, 0, &regions);
        let table = index_regional_pixels(&encoded);
        for y in 0..16u32 {
            for x in 0..16u32 {
                if let Some(idx) = table[y as usize][x as usize] {
                    // fetch_regional goes through row_offsets; the raster
                    // count must land on the same payload byte.
                    assert_eq!(
                        encoded.fetch_regional(x, y),
                        encoded.pixels().get(idx).copied(),
                        "({x},{y})"
                    );
                }
            }
        }
    }
}

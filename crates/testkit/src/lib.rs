//! Deterministic fault-injection and differential conformance harness
//! for the rhythmic-pixel encode→DRAM→decode path.
//!
//! The paper's hardware contract is sharp: the encoded representation
//! stores every `R` pixel exactly, the metadata is sufficient to decode
//! it, and anything else is reconstruction policy. This crate turns
//! that contract into an executable oracle with three layers:
//!
//! * **Generators** ([`gen_frame`], [`gen_region`],
//!   [`gen_capture_sequence`], …) — seeded, dependency-free producers
//!   of frames, overlapping/degenerate/frame-spanning region labels,
//!   policies, and whole capture sequences. One `u64` seed reproduces
//!   any case bit-for-bit.
//! * **Fault injectors** ([`FaultKind`], [`LossyDram`]) — typed
//!   corruption models over [`rpr_core::EncodedFrame`]: payload bit
//!   rot, torn offset tables, mask/payload disagreement, stale frame
//!   indices, geometry mismatches, and a lossy-DRAM wrapper charging
//!   the real memsim models.
//! * **Conformance** ([`ReferenceDecoder`], [`run_case`],
//!   [`run_corpus`]) — a naive per-pixel reference decoder checked
//!   byte-for-byte against both production
//!   [`rpr_core::ReconstructionMode`]s, plus the invariant checker:
//!   every injected fault is *detected* or *harmless*, never a panic
//!   and never silently wrong pixels.
//! * **Prediction adversaries** ([`PredictFaultKind`],
//!   [`run_predict_corpus`]) — hostile motion-vector fields
//!   (all-outlier chaos, flat-block zero ties, degenerate geometry,
//!   `i32`-extreme displacements) checked against the prediction
//!   contract: finite fits, in-bounds projected labels, a
//!   never-growing pixel budget, and exact no-ops on zero fields.
//! * **Session faults** ([`SessionFaultKind`]) — one layer further
//!   out: typed corruption of the byte scripts cameras send an
//!   `rpr-serve` server (torn hellos, forged message framing,
//!   truncated final chunks), for exercising admission and
//!   end-of-stream judgment.
//! * **Live-telemetry adversaries** ([`MetricsFaultKind`],
//!   [`run_metrics_corpus`]) — hostile schedules against the live
//!   metrics plane: scrapes racing window rotations, snapshots torn
//!   across mid-flight writers, and SLO trackers fed skewed clocks.
//!   Snapshots must stay internally consistent and monotonic, rotations
//!   must conserve every sample, and burn-rate arithmetic must stay
//!   finite under any clock.
//! * **Wire conformance** ([`WireFaultKind`], [`run_wire_case`],
//!   [`run_wire_corpus`]) — the same discipline one layer down, over
//!   serialized `.rpr` container *bytes*: byte-identical round-trips
//!   through `rpr-wire`, scan recovery of unfinished files, and typed
//!   container faults (truncation, CRC rot, forged checksums, stale
//!   index entries) that must never panic the parser.
//!
//! The `conformance` binary runs both fixed seed corpora and emits a
//! combined JSON report; CI gates on its exit status. The `wire_fuzz`
//! binary adds a bounded random-mutation sweep over container bytes.
//! See `TESTING.md` at the repo root for the seed-corpus conventions
//! and how to reproduce a failing seed.

#![deny(missing_docs)]

mod conformance;
mod fault;
mod gen;
mod lossy;
mod metricsfault;
mod predictfault;
mod reference;
mod rng;
mod servefault;
mod wireconf;
mod wirefault;

pub use conformance::{
    run_case, run_case_in, run_corpus, run_corpus_in, CaseReport, CorpusReport, PoolDiscipline,
    POISON_SENTINEL,
};
pub use fault::{FaultKind, ALL_FAULTS};
pub use gen::{
    gen_capture_sequence, gen_frame, gen_frame_with, gen_policy, gen_region,
    gen_region_list, CaptureSequence, FramePattern,
};
pub use lossy::{LossyDram, ReadOutcome};
pub use metricsfault::{
    run_metrics_corpus, MetricsCorpusReport, MetricsFaultKind, ALL_METRICS_FAULTS,
};
pub use predictfault::{
    run_predict_corpus, PredictCorpusReport, PredictFaultKind, ALL_PREDICT_FAULTS,
};
pub use reference::ReferenceDecoder;
pub use rng::TestRng;
pub use servefault::{SessionFaultKind, ALL_SESSION_FAULTS};
pub use wireconf::{
    run_wire_case, run_wire_case_in, run_wire_corpus, run_wire_corpus_in, WireCaseReport,
    WireCorpusReport,
};
pub use wirefault::{WireFaultKind, ALL_WIRE_FAULTS};

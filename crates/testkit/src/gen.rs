//! Seeded generators for frames, region-label sets, policies, and whole
//! capture sequences.
//!
//! Every generator draws from a [`TestRng`], so a single `u64` seed
//! reproduces the exact inputs of any failing case. The region
//! generator deliberately produces the shapes the encoder's validation
//! has to cope with: overlapping rectangles, degenerate 1-pixel and
//! 1-row slivers, and frame-spanning labels that reach past the sensor
//! edge and must be clamped.

use crate::TestRng;
use rpr_core::{
    CycleLengthPolicy, FullFramePolicy, Policy, RegionLabel, RegionList, StaticPolicy,
};
use rpr_frame::{GrayFrame, Plane};

/// The pixel patterns the frame generator draws from. Gradients and
/// checkers give every pixel a position-dependent value (so a shifted
/// read is guaranteed to differ), noise exercises full byte entropy,
/// and flat frames probe the all-equal edge case where many corruption
/// classes are value-invisible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramePattern {
    /// `x*a + y*b + c` wrapping gradient.
    Gradient,
    /// Per-pixel hash noise.
    Noise,
    /// One constant value everywhere.
    Flat,
    /// Two-tone blocks.
    Checker,
}

const PATTERNS: [FramePattern; 4] = [
    FramePattern::Gradient,
    FramePattern::Noise,
    FramePattern::Flat,
    FramePattern::Checker,
];

/// Generates a `width x height` frame with a seeded pattern.
pub fn gen_frame(rng: &mut TestRng, width: u32, height: u32) -> GrayFrame {
    let pattern = *rng.pick(&PATTERNS);
    gen_frame_with(rng, width, height, pattern)
}

/// Generates a frame with an explicit pattern.
pub fn gen_frame_with(
    rng: &mut TestRng,
    width: u32,
    height: u32,
    pattern: FramePattern,
) -> GrayFrame {
    match pattern {
        FramePattern::Gradient => {
            let (a, b, c) =
                (rng.range_u32(1, 13), rng.range_u32(1, 13), rng.range_u32(0, 255));
            Plane::from_fn(width, height, |x, y| (x * a + y * b + c) as u8)
        }
        FramePattern::Noise => {
            let mut px = rng.fork();
            Plane::from_fn(width, height, |_, _| px.next_u8())
        }
        FramePattern::Flat => {
            let v = rng.next_u8();
            Plane::from_fn(width, height, |_, _| v)
        }
        FramePattern::Checker => {
            let cell = rng.range_u32(1, 8);
            let (lo, hi) = (rng.next_u8(), rng.next_u8());
            Plane::from_fn(width, height, |x, y| {
                if (x / cell + y / cell).is_multiple_of(2) {
                    lo
                } else {
                    hi
                }
            })
        }
    }
}

/// Generates one region label for a `width x height` frame.
///
/// Roughly one in four labels is *degenerate* (1-pixel, 1-row, or
/// 1-column) and one in four is *frame-spanning* (extends past the
/// frame edge, so [`RegionList`] must clamp it). Strides span 1–4 and
/// skips 1–3, the ranges the paper observes (§3.1).
pub fn gen_region(rng: &mut TestRng, width: u32, height: u32) -> RegionLabel {
    let stride = rng.range_u32(1, 4);
    let skip = rng.range_u32(1, 3);
    let shape = rng.range_u32(0, 3);
    let (x, y, w, h) = match shape {
        // Degenerate slivers.
        0 => match rng.range_u32(0, 2) {
            0 => (rng.range_u32(0, width - 1), rng.range_u32(0, height - 1), 1, 1),
            1 => (0, rng.range_u32(0, height - 1), width, 1),
            _ => (rng.range_u32(0, width - 1), 0, 1, height),
        },
        // Frame-spanning: origin inside, extent past the edge.
        1 => (
            rng.range_u32(0, width - 1),
            rng.range_u32(0, height - 1),
            rng.range_u32(1, 2 * width),
            rng.range_u32(1, 2 * height),
        ),
        // Ordinary interior rectangles (these overlap each other freely).
        _ => {
            let x = rng.range_u32(0, width - 1);
            let y = rng.range_u32(0, height - 1);
            let w = rng.range_u32(1, width - x);
            let h = rng.range_u32(1, height - y);
            (x, y, w, h)
        }
    };
    RegionLabel::new(x, y, w, h, stride, skip)
}

/// Generates a validated region list of up to `max_regions` labels
/// (possibly empty — the everything-discarded case).
pub fn gen_region_list(
    rng: &mut TestRng,
    width: u32,
    height: u32,
    max_regions: usize,
) -> RegionList {
    let n = rng.range_usize(0, max_regions);
    let labels: Vec<RegionLabel> =
        (0..n).map(|_| gen_region(rng, width, height)).collect();
    RegionList::new_lossy(width, height, labels)
}

/// Generates a region-selection policy: full-frame, a static random
/// label set, or a cycle-length wrapper around a static set.
pub fn gen_policy(
    rng: &mut TestRng,
    width: u32,
    height: u32,
) -> Box<dyn Policy + Send> {
    match rng.range_u32(0, 2) {
        0 => Box::new(FullFramePolicy),
        1 => {
            let list = gen_region_list(rng, width, height, 4);
            Box::new(StaticPolicy::new(list.labels().to_vec()))
        }
        _ => {
            let list = gen_region_list(rng, width, height, 4);
            let cycle = u64::from(rng.range_u32(2, 8));
            Box::new(CycleLengthPolicy::new(cycle, StaticPolicy::new(list.labels().to_vec())))
        }
    }
}

/// A complete seeded capture sequence: the frames a sensor produced and
/// the region list active on each, ready to feed the encoder.
#[derive(Debug, Clone)]
pub struct CaptureSequence {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Source frames in capture order.
    pub frames: Vec<GrayFrame>,
    /// The region list the policy selected for each frame.
    pub regions: Vec<RegionList>,
}

/// Generates a capture sequence of `n_frames` for a `width x height`
/// sensor. Half the sequences keep one static region set (the paper's
/// "labels persist across frames"), the rest re-plan every frame.
pub fn gen_capture_sequence(
    rng: &mut TestRng,
    width: u32,
    height: u32,
    n_frames: usize,
) -> CaptureSequence {
    let static_regions = rng.chance(1, 2);
    let first = gen_region_list(rng, width, height, 5);
    let mut frames = Vec::with_capacity(n_frames);
    let mut regions = Vec::with_capacity(n_frames);
    for _ in 0..n_frames {
        frames.push(gen_frame(rng, width, height));
        regions.push(if static_regions {
            first.clone()
        } else {
            gen_region_list(rng, width, height, 5)
        });
    }
    CaptureSequence { width, height, frames, regions }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_reproducible() {
        let a = gen_frame(&mut TestRng::new(9), 16, 12);
        let b = gen_frame(&mut TestRng::new(9), 16, 12);
        assert_eq!(a, b);
        assert_eq!((a.width(), a.height()), (16, 12));
    }

    #[test]
    fn regions_stay_within_parameter_ranges() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let r = gen_region(&mut rng, 32, 24);
            assert!(r.w >= 1 && r.h >= 1);
            assert!((1..=4).contains(&r.stride));
            assert!((1..=3).contains(&r.skip));
            assert!(r.x < 32 && r.y < 24, "origin inside frame: {r}");
        }
    }

    #[test]
    fn generated_lists_always_validate() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let list = gen_region_list(&mut rng, 20, 20, 6);
            // new_lossy clamped everything; re-validating must succeed.
            assert!(RegionList::new(20, 20, list.labels().to_vec()).is_ok());
        }
    }

    #[test]
    fn degenerate_and_spanning_shapes_appear() {
        let mut rng = TestRng::new(3);
        let mut slivers = 0;
        let mut clamped = 0;
        for _ in 0..300 {
            let r = gen_region(&mut rng, 16, 16);
            if r.w == 1 || r.h == 1 {
                slivers += 1;
            }
            if r.right() > 16 || r.bottom() > 16 {
                clamped += 1;
            }
        }
        assert!(slivers > 20, "slivers {slivers}");
        assert!(clamped > 20, "clamped {clamped}");
    }

    #[test]
    fn capture_sequences_are_reproducible() {
        let a = gen_capture_sequence(&mut TestRng::new(4), 16, 16, 3);
        let b = gen_capture_sequence(&mut TestRng::new(4), 16, 16, 3);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.regions.len(), 3);
        for (fa, fb) in a.regions.iter().zip(&b.regions) {
            assert_eq!(fa.labels(), fb.labels());
        }
    }

    #[test]
    fn policies_plan_valid_lists() {
        use rpr_core::PolicyContext;
        let mut rng = TestRng::new(5);
        for _ in 0..20 {
            let mut policy = gen_policy(&mut rng, 24, 18);
            for idx in 0..4 {
                let ctx = PolicyContext { frame_idx: idx, width: 24, height: 18, ..Default::default() };
                let list = policy.plan(&ctx);
                assert_eq!((list.width(), list.height()), (24, 18));
            }
        }
    }
}

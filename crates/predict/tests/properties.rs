//! Property tests for the prediction subsystem: predicted labels are
//! always within frame bounds, identity motion is a byte-identical
//! no-op against the reactive policy, and prediction is deterministic
//! for a fixed seed.

use proptest::prelude::*;
use rpr_core::{Feature, FeaturePolicy, PolicyContext, RegionLabel, RegionRuntime};
use rpr_frame::{GrayFrame, Plane, Rect};
use rpr_predict::{
    estimate_ego_motion, predict_labels, EgoEstimatorConfig, MotionPredictor, PredictivePolicy,
    SharedMotion, TrackerConfig,
};
use rpr_stream::{Feedback, FeedbackTransform};
use rpr_vision::MotionVector;

const W: u32 = 128;
const H: u32 = 96;

fn label_strategy() -> impl Strategy<Value = RegionLabel> {
    (0u32..150, 0u32..110, 1u32..160, 1u32..120, 1u32..=4, 1u32..=3)
        .prop_map(|(x, y, w, h, stride, skip)| RegionLabel::new(x, y, w, h, stride, skip))
}

/// A mostly-uniform motion field with a few chaotic blocks layered on
/// top — the camera-plus-moving-objects shape RANSAC must digest.
fn field_strategy() -> impl Strategy<Value = Vec<MotionVector>> {
    (
        -8i32..=8,
        -8i32..=8,
        0u64..2_000,
        proptest::collection::vec((-8i32..=8, -8i32..=8, 0u64..200_000), 0..12),
    )
        .prop_map(|(dx, dy, sad, noise)| {
            let mut field: Vec<MotionVector> = (0..6)
                .flat_map(|by| {
                    (0..8).map(move |bx| MotionVector {
                        block: Rect::new(bx * 16, by * 16, 16, 16),
                        dx,
                        dy,
                        sad,
                    })
                })
                .collect();
            for (slot, (ndx, ndy, nsad)) in field.iter_mut().zip(noise) {
                slot.dx = ndx;
                slot.dy = ndy;
                slot.sad = nsad;
            }
            field
        })
}

fn textured(seed: u32) -> GrayFrame {
    Plane::from_fn(W, H, |x, y| {
        (x.wrapping_mul(31) ^ y.wrapping_mul(17) ^ seed.wrapping_mul(97)) as u8
    })
}

fn zero_field() -> Vec<MotionVector> {
    (0..6)
        .flat_map(|by| {
            (0..8).map(move |bx| MotionVector {
                block: Rect::new(bx * 16, by * 16, 16, 16),
                dx: 0,
                dy: 0,
                sad: 0,
            })
        })
        .collect()
}

proptest! {
    #[test]
    fn predicted_labels_stay_in_bounds(
        labels in proptest::collection::vec(label_strategy(), 0..8),
        field in field_strategy(),
    ) {
        let ego = estimate_ego_motion(&field, &EgoEstimatorConfig::default());
        let predicted = predict_labels(&labels, &field, &ego, W, H, &TrackerConfig::default());
        for l in &predicted {
            prop_assert!(l.w >= 1 && l.h >= 1, "degenerate {l}");
            prop_assert!(l.right() <= W && l.bottom() <= H, "out of frame {l}");
            prop_assert!(l.stride >= 1 && l.skip >= 1);
            // A predicted label must be directly encodable: validation
            // accepts it without changing it.
            prop_assert_eq!(l.validated(W, H).ok(), Some(*l));
        }
    }

    #[test]
    fn identity_motion_matches_reactive_byte_for_byte(
        feature_spec in proptest::collection::vec(
            (0.0f64..128.0, 0.0f64..96.0, 4.0f64..40.0, 0u32..3, 0.0f64..6.0),
            0..6,
        ),
        frames in 2usize..6,
    ) {
        let features: Vec<Feature> = feature_spec
            .iter()
            .map(|&(x, y, size, octave, disp)| {
                Feature::new(x, y, size).with_octave(octave).with_displacement(disp)
            })
            .collect();

        let motion = SharedMotion::new();
        motion.update(zero_field(), &EgoEstimatorConfig::default());

        let mut reactive_rt = RegionRuntime::new(W, H);
        let mut reactive: FeaturePolicy = FeaturePolicy::new();
        let mut predictive_rt = RegionRuntime::new(W, H);
        let mut predictive =
            PredictivePolicy::new(Box::new(FeaturePolicy::new()), motion);

        for t in 0..frames {
            let ctx = PolicyContext { features: features.clone(), ..PolicyContext::default() };
            reactive_rt.apply_policy(&mut reactive, ctx.clone());
            predictive_rt.apply_policy(&mut predictive, ctx);
            let frame = textured(t as u32);
            let a = reactive_rt.encode_frame(&frame);
            let b = predictive_rt.encode_frame(&frame);
            prop_assert_eq!(a, b, "identity motion must be a no-op at frame {}", t);
        }
    }

    #[test]
    fn prediction_is_deterministic(
        labels in proptest::collection::vec(label_strategy(), 0..8),
        field in field_strategy(),
    ) {
        let cfg = EgoEstimatorConfig::default();
        let ego_a = estimate_ego_motion(&field, &cfg);
        let ego_b = estimate_ego_motion(&field, &cfg);
        prop_assert_eq!(ego_a, ego_b);
        let a = predict_labels(&labels, &field, &ego_a, W, H, &TrackerConfig::default());
        let b = predict_labels(&labels, &field, &ego_b, W, H, &TrackerConfig::default());
        prop_assert_eq!(a, b);
    }
}

#[test]
fn motion_predictor_is_deterministic_across_runs() {
    let run = || {
        let mut p = MotionPredictor::default();
        let mut outputs = Vec::new();
        for t in 0..6u32 {
            // A diagonal pan at 3 px/frame over seeded texture.
            let frame = Plane::from_fn(W, H, |x, y| {
                let sx = x.wrapping_add(t * 3);
                let sy = y.wrapping_add(t * 3);
                (sx.wrapping_mul(41) ^ sy.wrapping_mul(13)) as u8
            });
            p.observe(&frame);
            let fb = Feedback {
                features: vec![Feature::new(60.0, 50.0, 10.0)],
                detections: vec![(Rect::new(30, 30, 24, 24), 1.0)],
            };
            let out = p.transform(fb);
            outputs.push((out.detections.clone(), out.features.clone()));
        }
        outputs
    };
    assert_eq!(run(), run());
}

//! The predictive policy wrapper and the shared motion estimate it
//! reads.
//!
//! The capture loop owns the decoded-frame history and therefore the
//! motion vectors; the policy runs inside the region runtime. A
//! [`SharedMotion`] handle bridges the two: the loop calls
//! [`SharedMotion::update`] after block-matching consecutive decoded
//! frames, and [`PredictivePolicy::plan`] snapshots the latest
//! estimate to forward-project whatever its wrapped policy planned.

use crate::{estimate_ego_motion, predict_labels, EgoEstimatorConfig, EgoMotion, TrackerConfig};
use parking_lot::Mutex;
use rpr_core::{Policy, PolicyContext, RegionList};
use rpr_vision::MotionVector;
use std::sync::Arc;

/// The latest motion estimate: the frame pair's block-matching vectors
/// and the ego-motion fit over them.
#[derive(Debug, Clone, Default)]
pub struct PredictionState {
    /// Block-matching vectors from the newest decoded frame pair.
    pub vectors: Vec<MotionVector>,
    /// The global camera motion fitted over `vectors`.
    pub ego: EgoMotion,
}

/// A cloneable handle to the motion estimate shared between the
/// capture loop (writer) and [`PredictivePolicy`] (reader).
#[derive(Debug, Clone, Default)]
pub struct SharedMotion {
    state: Arc<Mutex<Option<PredictionState>>>,
}

impl SharedMotion {
    /// A handle holding no estimate yet (prediction passes through).
    pub fn new() -> Self {
        SharedMotion::default()
    }

    /// Replaces the estimate with a fresh fit over `vectors`.
    pub fn update(&self, vectors: Vec<MotionVector>, cfg: &EgoEstimatorConfig) {
        let ego = estimate_ego_motion(&vectors, cfg);
        *self.state.lock() = Some(PredictionState { vectors, ego });
    }

    /// Drops the estimate, e.g. on a scene cut or stream restart.
    pub fn clear(&self) {
        *self.state.lock() = None;
    }

    /// The current estimate, if any.
    pub fn snapshot(&self) -> Option<PredictionState> {
        self.state.lock().clone()
    }
}

/// Wraps any feedback policy and rewrites its t−1 labels into
/// predicted-t labels before they reach the encoder.
///
/// With no motion estimate available (first frames, cleared state) the
/// wrapped policy's plan passes through unchanged, so the wrapper is
/// always safe to install.
pub struct PredictivePolicy {
    inner: Box<dyn Policy + Send>,
    motion: SharedMotion,
    tracker: TrackerConfig,
    name: String,
}

impl PredictivePolicy {
    /// Wraps `inner`, reading motion estimates from `motion`.
    pub fn new(inner: Box<dyn Policy + Send>, motion: SharedMotion) -> Self {
        Self::with_tracker(inner, motion, TrackerConfig::default())
    }

    /// Wraps `inner` with explicit tracker tuning.
    pub fn with_tracker(
        inner: Box<dyn Policy + Send>,
        motion: SharedMotion,
        tracker: TrackerConfig,
    ) -> Self {
        let name = format!("predictive+{}", inner.name());
        PredictivePolicy { inner, motion, tracker, name }
    }

    /// The motion handle the capture loop should update.
    pub fn motion(&self) -> SharedMotion {
        self.motion.clone()
    }
}

impl Policy for PredictivePolicy {
    fn plan(&mut self, ctx: &PolicyContext) -> RegionList {
        let base = self.inner.plan(ctx);
        let Some(state) = self.motion.snapshot() else {
            return base;
        };
        let predicted = predict_labels(
            base.labels(),
            &state.vectors,
            &state.ego,
            ctx.width,
            ctx.height,
            &self.tracker,
        );
        RegionList::new_lossy(ctx.width, ctx.height, predicted)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::{FeaturePolicy, RegionLabel, StaticPolicy};
    use rpr_frame::Rect;

    fn pan_vectors(dx: i32) -> Vec<MotionVector> {
        (0..6)
            .flat_map(|by| {
                (0..8).map(move |bx| MotionVector {
                    block: Rect::new(bx * 16, by * 16, 16, 16),
                    dx,
                    dy: 0,
                    sad: 0,
                })
            })
            .collect()
    }

    fn ctx() -> PolicyContext {
        PolicyContext {
            frame_idx: 3,
            width: 128,
            height: 96,
            features: vec![],
            detections: vec![(Rect::new(40, 40, 20, 20), 2.0)],
        }
    }

    #[test]
    fn without_estimate_plan_passes_through() {
        let mut reactive = FeaturePolicy::new();
        let mut predictive =
            PredictivePolicy::new(Box::new(FeaturePolicy::new()), SharedMotion::new());
        assert_eq!(predictive.plan(&ctx()), reactive.plan(&ctx()));
        assert_eq!(predictive.name(), "predictive+feature");
    }

    #[test]
    fn with_pan_estimate_labels_shift() {
        let motion = SharedMotion::new();
        motion.update(pan_vectors(-6), &EgoEstimatorConfig::default());
        let label = RegionLabel::new(30, 30, 20, 20, 1, 1);
        let mut predictive =
            PredictivePolicy::new(Box::new(StaticPolicy::new(vec![label])), motion.clone());
        let planned = predictive.plan(&ctx());
        assert_eq!(planned.labels(), &[RegionLabel::new(36, 30, 20, 20, 1, 1)]);

        motion.clear();
        let reset = predictive.plan(&ctx());
        assert_eq!(reset.labels(), &[label]);
    }

    #[test]
    fn zero_motion_estimate_is_noop() {
        let motion = SharedMotion::new();
        motion.update(pan_vectors(0), &EgoEstimatorConfig::default());
        let mut reactive = FeaturePolicy::new();
        let mut predictive =
            PredictivePolicy::new(Box::new(FeaturePolicy::new()), motion);
        assert_eq!(predictive.plan(&ctx()), reactive.plan(&ctx()));
    }
}

//! Per-region forward projection.
//!
//! Each region label is moved by the camera ego displacement at its
//! centre plus the *local residual* of the motion vectors it overlaps
//! (the part of the observed motion the camera does not explain — an
//! independently moving object). Confidence comes from the SAD
//! residuals of those vectors: a poorly matched region is inflated to
//! widen the net, but its stride is bumped in the same step so the
//! extra coverage does not grow the high-resolution pixel budget.

use crate::EgoMotion;
use rpr_core::RegionLabel;
use rpr_frame::Rect;
use rpr_trace::names;
use rpr_vision::MotionVector;
use serde::{Deserialize, Serialize};

/// Tuning knobs for [`predict_labels`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackerConfig {
    /// Mean SAD per pixel above which a region's motion estimate is
    /// considered low-confidence.
    pub low_confidence_sad: f64,
    /// Pixels added on every side of a low-confidence region.
    pub inflate: u32,
    /// Stride ceiling applied when a low-confidence region's stride is
    /// bumped alongside the inflation.
    pub max_stride: u32,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        TrackerConfig { low_confidence_sad: 12.0, inflate: 8, max_stride: 4 }
    }
}

/// Displacement to apply to `rect` for the next frame, and the mean
/// SAD per pixel of the motion vectors supporting it.
///
/// The displacement is the ego displacement at the rect centre plus
/// the mean residual of overlapping vectors (observed content velocity
/// minus what the camera motion alone would produce). With no
/// overlapping vectors the ego term stands alone and the SAD is 0.
pub fn displacement_for_rect(
    rect: &Rect,
    vectors: &[MotionVector],
    ego: &EgoMotion,
) -> ((f64, f64), f64) {
    let (ex, ey) = ego.displacement_at(rect.center());
    let mut rx = 0.0;
    let mut ry = 0.0;
    let mut sad = 0u64;
    let mut area = 0u64;
    let mut n = 0u32;
    for v in vectors.iter().filter(|v| v.block.intersection(rect).is_some()) {
        let (bex, bey) = ego.displacement_at(v.block.center());
        // Observed content velocity is the negated match offset: the
        // vector points to where the content came *from*.
        rx += -f64::from(v.dx) - bex;
        ry += -f64::from(v.dy) - bey;
        sad = sad.saturating_add(v.sad);
        area = area.saturating_add(v.block.area());
        n += 1;
    }
    if n == 0 {
        return ((ex, ey), 0.0);
    }
    let inv = 1.0 / f64::from(n);
    let sad_per_px = if area == 0 { 0.0 } else { sad as f64 / area as f64 };
    ((ex + rx * inv, ey + ry * inv), sad_per_px)
}

/// Shifts `rect` by the rounded displacement and clamps it to the
/// `width x height` frame. Returns `None` when the shifted rectangle
/// no longer intersects the frame.
pub fn shift_rect(rect: &Rect, dx: f64, dy: f64, width: u32, height: u32) -> Option<Rect> {
    let sx = dx.round() as i64;
    let sy = dy.round() as i64;
    let x0 = (i64::from(rect.x) + sx).clamp(0, i64::from(width));
    let y0 = (i64::from(rect.y) + sy).clamp(0, i64::from(height));
    let x1 = (i64::from(rect.x) + i64::from(rect.w) + sx).clamp(0, i64::from(width));
    let y1 = (i64::from(rect.y) + i64::from(rect.h) + sy).clamp(0, i64::from(height));
    if x1 <= x0 || y1 <= y0 {
        return None;
    }
    let x = u32::try_from(x0).ok()?;
    let y = u32::try_from(y0).ok()?;
    let w = u32::try_from(x1 - x0).ok()?;
    let h = u32::try_from(y1 - y0).ok()?;
    Some(Rect::new(x, y, w, h))
}

/// True when `outer`'s footprint covers `inner`'s at an equal-or-finer
/// rhythm, making `inner` redundant.
fn encloses(outer: &RegionLabel, inner: &RegionLabel) -> bool {
    outer.x <= inner.x
        && outer.y <= inner.y
        && outer.right() >= inner.right()
        && outer.bottom() >= inner.bottom()
        && outer.stride <= inner.stride
        && outer.skip <= inner.skip
}

/// Forward-projects region labels planned from frame t−1 feedback to
/// where their content will be at frame t.
///
/// * Full-frame labels pass through untouched (cycle-length full
///   captures must stay full captures).
/// * Labels whose projection leaves the frame are dropped; projections
///   straddling a border are clamped.
/// * Labels cut or inflated at a border are merged away when another
///   projected label already covers them at an equal-or-finer rhythm.
/// * Zero estimated motion is an exact no-op: the output equals the
///   input labels.
pub fn predict_labels(
    labels: &[RegionLabel],
    vectors: &[MotionVector],
    ego: &EgoMotion,
    width: u32,
    height: u32,
    cfg: &TrackerConfig,
) -> Vec<RegionLabel> {
    let _span = rpr_trace::span(names::PREDICT_PROJECT, "predict");
    let mut out: Vec<RegionLabel> = Vec::with_capacity(labels.len());
    // Tracks which outputs had their footprint altered (border cut or
    // inflation) and are therefore merge candidates.
    let mut altered: Vec<bool> = Vec::with_capacity(labels.len());
    for label in labels {
        if label.x == 0 && label.y == 0 && label.w >= width && label.h >= height {
            out.push(*label);
            altered.push(false);
            continue;
        }
        let rect = label.rect();
        let ((dx, dy), sad_per_px) = displacement_for_rect(&rect, vectors, ego);
        let Some(moved) = shift_rect(&rect, dx, dy, width, height) else {
            continue;
        };
        let confident = sad_per_px <= cfg.low_confidence_sad;
        let (footprint, stride) = if confident {
            (moved, label.stride)
        } else {
            // Inflate only when the stride bump actually pays for the
            // extra coverage: a label already at the stride ceiling
            // cannot coarsen further, and inflating it would grow the
            // high-resolution pixel budget.
            let ceiling = cfg.max_stride.max(label.stride);
            let bumped = label.stride.saturating_add(1).min(ceiling);
            let inflated = moved.inflated(cfg.inflate).clamped(width, height);
            let candidate = RegionLabel::from_rect(inflated, bumped, label.skip);
            if candidate.kept_pixels() <= label.kept_pixels() {
                (inflated, bumped)
            } else {
                (moved, label.stride)
            }
        };
        if footprint.is_empty() {
            continue;
        }
        altered.push(footprint.w != label.w || footprint.h != label.h || stride != label.stride);
        out.push(RegionLabel::from_rect(footprint, stride, label.skip));
    }
    // Border merge: drop altered labels another label already covers.
    // Mutually enclosing (identical) labels keep only the first.
    let kept: Vec<RegionLabel> = out
        .iter()
        .enumerate()
        .filter(|(i, label)| {
            if !altered.get(*i).copied().unwrap_or(false) {
                return true;
            }
            !out.iter().enumerate().any(|(j, other)| {
                j != *i && encloses(other, label) && (j < *i || !encloses(label, other))
            })
        })
        .map(|(_, label)| *label)
        .collect();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{estimate_ego_motion, EgoEstimatorConfig};

    fn uniform_field(dx: i32, dy: i32, sad: u64) -> Vec<MotionVector> {
        (0..6)
            .flat_map(|by| {
                (0..8).map(move |bx| MotionVector {
                    block: Rect::new(bx * 16, by * 16, 16, 16),
                    dx,
                    dy,
                    sad,
                })
            })
            .collect()
    }

    fn ego_for(vectors: &[MotionVector]) -> EgoMotion {
        estimate_ego_motion(vectors, &EgoEstimatorConfig::default())
    }

    #[test]
    fn zero_motion_is_exact_noop() {
        let vectors = uniform_field(0, 0, 0);
        let ego = ego_for(&vectors);
        let labels = vec![
            RegionLabel::new(10, 20, 30, 40, 2, 3),
            RegionLabel::new(90, 5, 16, 16, 1, 1),
        ];
        let predicted =
            predict_labels(&labels, &vectors, &ego, 128, 96, &TrackerConfig::default());
        assert_eq!(predicted, labels);
    }

    #[test]
    fn pan_moves_labels_with_the_content() {
        // Content moves +5 px right each frame (vectors point back).
        let vectors = uniform_field(-5, 0, 0);
        let ego = ego_for(&vectors);
        let labels = vec![RegionLabel::new(40, 40, 20, 20, 1, 1)];
        let predicted =
            predict_labels(&labels, &vectors, &ego, 128, 96, &TrackerConfig::default());
        assert_eq!(predicted, vec![RegionLabel::new(45, 40, 20, 20, 1, 1)]);
    }

    #[test]
    fn projection_clamps_at_borders_and_drops_departures() {
        let vectors = uniform_field(-8, 0, 0);
        let ego = ego_for(&vectors);
        let near_edge = RegionLabel::new(116, 40, 12, 12, 1, 1);
        let predicted = predict_labels(
            &[near_edge],
            &vectors,
            &ego,
            128,
            96,
            &TrackerConfig::default(),
        );
        // 116 + 8 = 124; width 12 clips to 4.
        assert_eq!(predicted, vec![RegionLabel::new(124, 40, 4, 12, 1, 1)]);

        let leaving = RegionLabel::new(124, 40, 4, 4, 1, 1);
        let gone =
            predict_labels(&[leaving], &vectors, &ego, 128, 96, &TrackerConfig::default());
        assert!(gone.is_empty(), "{gone:?}");
    }

    #[test]
    fn low_confidence_inflates_and_coarsens() {
        let vectors = uniform_field(-5, 0, 16 * 16 * 40); // SAD 40/px
        let ego = ego_for(&vectors);
        let label = RegionLabel::new(40, 40, 20, 20, 1, 1);
        let cfg = TrackerConfig::default();
        let predicted = predict_labels(&[label], &vectors, &ego, 128, 96, &cfg);
        let p = predicted.first().expect("one label");
        assert_eq!(p.w, 20 + 2 * cfg.inflate);
        assert_eq!(p.stride, 2, "inflation must coarsen the grid");
        // The budget guarantee: inflating never adds kept pixels.
        assert!(p.kept_pixels() <= label.kept_pixels());
    }

    #[test]
    fn stride_ceiling_labels_never_inflate_past_their_budget() {
        // A label already at the stride ceiling cannot coarsen to pay
        // for inflation, so low confidence must leave its size alone.
        let vectors = uniform_field(-5, 0, 16 * 16 * 40); // SAD 40/px
        let ego = ego_for(&vectors);
        let cfg = TrackerConfig::default();
        let label = RegionLabel::new(40, 40, 20, 20, cfg.max_stride, 1);
        let predicted = predict_labels(&[label], &vectors, &ego, 128, 96, &cfg);
        let p = predicted.first().expect("one label");
        assert_eq!((p.w, p.h, p.stride), (20, 20, cfg.max_stride));
        assert!(p.kept_pixels() <= label.kept_pixels());
    }

    #[test]
    fn local_residual_tracks_independent_objects() {
        // Camera pans +4 px; one block's content additionally moves +4.
        let mut vectors = uniform_field(-4, 0, 0);
        for v in vectors.iter_mut().filter(|v| v.block.contains(64, 48)) {
            v.dx = -8;
        }
        let ego = ego_for(&vectors);
        assert!((ego.transform.tx - 4.0).abs() < 0.5, "tx {}", ego.transform.tx);
        // The label overlaps only the object's block, so the residual
        // is undiluted: ego 4 px + residual 4 px = 8 px.
        let on_object = RegionLabel::new(65, 49, 8, 8, 1, 1);
        let predicted = predict_labels(
            &[on_object],
            &vectors,
            &ego,
            128,
            96,
            &TrackerConfig::default(),
        );
        let p = predicted.first().expect("one label");
        assert_eq!(p.x, 73, "ego 4 px + residual 4 px");
    }

    #[test]
    fn cut_labels_merge_into_enclosing_ones() {
        let vectors = uniform_field(-8, 0, 0);
        let ego = ego_for(&vectors);
        let big = RegionLabel::new(80, 20, 40, 60, 1, 1);
        let small = RegionLabel::new(118, 40, 10, 10, 2, 1);
        let predicted = predict_labels(
            &[big, small],
            &vectors,
            &ego,
            128,
            96,
            &TrackerConfig::default(),
        );
        // Both get cut at x=128; the small coarse one lands inside the
        // big fine one and is merged away.
        assert_eq!(predicted.len(), 1);
        let p = predicted.first().expect("one label");
        assert_eq!((p.x, p.w), (88, 40));
    }

    #[test]
    fn full_frame_labels_pass_through() {
        let vectors = uniform_field(-8, 0, 0);
        let ego = ego_for(&vectors);
        let full = RegionLabel::full_frame(128, 96);
        let predicted =
            predict_labels(&[full], &vectors, &ego, 128, 96, &TrackerConfig::default());
        assert_eq!(predicted, vec![full]);
    }

    #[test]
    fn shift_rect_handles_extreme_displacements() {
        let r = Rect::new(10, 10, 20, 20);
        assert!(shift_rect(&r, 1e12, 0.0, 128, 96).is_none());
        assert!(shift_rect(&r, f64::NAN, f64::NAN, 128, 96).is_some());
        assert!(shift_rect(&r, -1e12, -1e12, 128, 96).is_none());
    }
}

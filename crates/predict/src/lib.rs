//! rpr-predict: motion-compensated region prediction.
//!
//! The paper's region labels come from task feedback on frame *t−1*,
//! which silently assumes a static camera: under panning or handheld
//! motion the labels lag the scene and the high-resolution regions
//! drift off their objects. This crate closes that gap with three
//! layers:
//!
//! * [`estimate_ego_motion`] — fits a global rigid camera model
//!   ([`rpr_vision::Rigid2d`]) over block-matching
//!   [`rpr_vision::MotionVector`]s with RANSAC outlier rejection
//!   (reusing `rpr_vision::estimate_rigid_motion`), degrading to the
//!   identity with zero confidence on degenerate input instead of
//!   failing.
//! * [`predict_labels`] — forward-projects each
//!   [`rpr_core::RegionLabel`] by the ego displacement at its centre
//!   plus the local residual of the motion vectors it overlaps, with
//!   confidence from SAD residuals: low-confidence regions are
//!   inflated *and* get their stride bumped, so uncertainty widens
//!   coverage without growing the high-resolution pixel budget.
//!   Projected labels are clamped at frame borders, merged into
//!   enclosing labels when clamping makes them redundant, and dropped
//!   when they leave the frame entirely.
//! * [`PredictivePolicy`] — wraps any existing feedback
//!   [`rpr_core::Policy`] and rewrites its t−1 labels into predicted-t
//!   labels before they reach the encoder, reading the latest motion
//!   estimate from a [`SharedMotion`] handle the capture loop updates.
//!
//! For staged pipelines, [`MotionPredictor`] implements
//! `rpr_stream::FeedbackTransform<GrayFrame>`: it block-matches
//! consecutive decoded frames as they leave the capture stage and
//! shifts the feedback detections/features so the capture→task
//! feedback edge carries predicted labels.
//!
//! Identity contract: with zero estimated motion the projection is an
//! exact no-op — predicted labels equal the reactive labels byte for
//! byte (property-tested in `tests/properties.rs`).
//!
//! # Example
//!
//! ```
//! use rpr_core::RegionLabel;
//! use rpr_frame::Rect;
//! use rpr_predict::{predict_labels, EgoEstimatorConfig, EgoMotion, TrackerConfig};
//! use rpr_vision::MotionVector;
//!
//! // Every block agrees: content moved 6 px right (best previous-frame
//! // match sits 6 px to the left, so dx = -6).
//! let vectors: Vec<MotionVector> = (0..4)
//!     .flat_map(|by| {
//!         (0..4).map(move |bx| MotionVector {
//!             block: Rect::new(bx * 16, by * 16, 16, 16),
//!             dx: -6,
//!             dy: 0,
//!             sad: 0,
//!         })
//!     })
//!     .collect();
//! let ego = rpr_predict::estimate_ego_motion(&vectors, &EgoEstimatorConfig::default());
//! assert!(ego.confidence > 0.9);
//!
//! let labels = vec![RegionLabel::new(10, 10, 16, 16, 1, 1)];
//! let predicted = predict_labels(&labels, &vectors, &ego, 64, 64, &TrackerConfig::default());
//! // The region followed the content 6 px to the right.
//! assert_eq!(predicted[0].x, 16);
//! assert_eq!(predicted[0].y, 10);
//! ```

#![deny(missing_docs)]

mod ego;
mod policy;
mod stage;
mod tracker;

pub use ego::{estimate_ego_motion, EgoEstimatorConfig, EgoMotion};
pub use policy::{PredictionState, PredictivePolicy, SharedMotion};
pub use stage::MotionPredictor;
pub use tracker::{displacement_for_rect, predict_labels, shift_rect, TrackerConfig};

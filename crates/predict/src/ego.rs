//! Global camera ego-motion estimation over block-matching vectors.
//!
//! A moving camera imprints a coherent displacement field on the whole
//! frame; independently moving objects show up as outliers against it.
//! RANSAC over the motion-vector correspondences separates the two:
//! the consensus transform is the camera, the outliers are the scene.

use rpr_trace::names;
use rpr_vision::{estimate_rigid_motion, MotionVector, PointPair, Rigid2d};
use serde::{Deserialize, Serialize};

/// Tuning knobs for [`estimate_ego_motion`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EgoEstimatorConfig {
    /// RANSAC hypothesis iterations.
    pub iterations: u32,
    /// Inlier distance threshold in pixels.
    pub inlier_threshold: f64,
    /// Seed of the RANSAC sampler — fixed so prediction is
    /// deterministic across runs.
    pub seed: u64,
    /// Fewest motion vectors worth fitting over; below this the
    /// estimator returns the identity with zero confidence.
    pub min_vectors: usize,
    /// Fewest vectors worth a full rigid (rotation + translation) fit.
    /// Rotation is unobservable from a handful of local blocks — a
    /// 2-point exact fit aliases one bad vector into a large spurious
    /// rotation — so smaller sets get a translation-only median fit.
    pub min_rigid_vectors: usize,
}

impl Default for EgoEstimatorConfig {
    fn default() -> Self {
        EgoEstimatorConfig {
            iterations: 64,
            inlier_threshold: 1.5,
            seed: 0x5052_4544, // "PRED"
            min_vectors: 4,
            min_rigid_vectors: 6,
        }
    }
}

/// The fitted camera motion between two consecutive frames, mapping
/// previous-frame positions onto current-frame positions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EgoMotion {
    /// The rigid transform `cur = R(theta) prev + t`.
    pub transform: Rigid2d,
    /// RANSAC inlier count of the consensus set.
    pub inliers: usize,
    /// Motion vectors the fit consumed.
    pub total: usize,
    /// Inlier fraction in `[0, 1]`; `0` when the fit degenerated and
    /// the identity was substituted.
    pub confidence: f64,
}

impl EgoMotion {
    /// The identity motion with zero confidence — what degenerate
    /// input degrades to.
    pub fn identity() -> Self {
        EgoMotion { transform: Rigid2d::default(), inliers: 0, total: 0, confidence: 0.0 }
    }

    /// Displacement the camera motion imparts to a point: where the
    /// content at `p` will appear one frame later, minus `p`.
    ///
    /// Under a constant-velocity assumption this is also the forward
    /// prediction used to project frame-t−1 labels to frame t.
    pub fn displacement_at(&self, p: (f64, f64)) -> (f64, f64) {
        let q = self.transform.apply(p);
        (q.0 - p.0, q.1 - p.1)
    }
}

impl Default for EgoMotion {
    fn default() -> Self {
        EgoMotion::identity()
    }
}

/// Builds the RANSAC correspondences: each vector's best match sat at
/// `center + (dx, dy)` in the previous frame, so the pair maps that
/// previous position onto the block's current centre.
fn point_pairs(vectors: &[MotionVector]) -> Vec<PointPair> {
    vectors
        .iter()
        .map(|v| {
            let (cx, cy) = v.block.center();
            ((cx + f64::from(v.dx), cy + f64::from(v.dy)), (cx, cy))
        })
        .collect()
}

/// Fits the global camera motion over a frame's motion vectors.
///
/// Never fails: fewer than `cfg.min_vectors` vectors, an all-outlier
/// field, or any other degenerate geometry degrades to
/// [`EgoMotion::identity`] (zero confidence) so downstream prediction
/// falls back to the reactive t−1 labels instead of guessing.
pub fn estimate_ego_motion(vectors: &[MotionVector], cfg: &EgoEstimatorConfig) -> EgoMotion {
    let _span = rpr_trace::span(names::PREDICT_EGO_FIT, "predict");
    rpr_trace::counter(names::PREDICT_VECTORS, "predict", vectors.len() as f64);
    if vectors.len() < cfg.min_vectors.max(2) {
        return EgoMotion::identity();
    }
    if vectors.len() < cfg.min_rigid_vectors {
        let ego = estimate_translation_motion(vectors, cfg);
        rpr_trace::counter(names::PREDICT_INLIER_FRACTION, "predict", ego.confidence);
        return ego;
    }
    let pairs = point_pairs(vectors);
    let fitted = estimate_rigid_motion(&pairs, cfg.iterations, cfg.inlier_threshold, cfg.seed);
    let ego = match fitted {
        Some((transform, inlier_idx)) if transform.tx.is_finite() && transform.ty.is_finite() => {
            let confidence = inlier_idx.len() as f64 / pairs.len() as f64;
            EgoMotion { transform, inliers: inlier_idx.len(), total: pairs.len(), confidence }
        }
        _ => EgoMotion { total: pairs.len(), ..EgoMotion::identity() },
    };
    rpr_trace::counter(names::PREDICT_INLIER_FRACTION, "predict", ego.confidence);
    ego
}

/// Translation-only robust fit for vector sets too small to constrain
/// rotation: the component-wise median of the observed block velocities
/// (the negated match offsets), with inliers counted against it.
fn estimate_translation_motion(vectors: &[MotionVector], cfg: &EgoEstimatorConfig) -> EgoMotion {
    let tx = median(vectors.iter().map(|v| -f64::from(v.dx)));
    let ty = median(vectors.iter().map(|v| -f64::from(v.dy)));
    let inliers = vectors
        .iter()
        .filter(|v| {
            let ex = -f64::from(v.dx) - tx;
            let ey = -f64::from(v.dy) - ty;
            ex.hypot(ey) <= cfg.inlier_threshold
        })
        .count();
    EgoMotion {
        transform: Rigid2d { theta: 0.0, tx, ty },
        inliers,
        total: vectors.len(),
        confidence: inliers as f64 / vectors.len().max(1) as f64,
    }
}

/// Median of a non-empty sequence; the mean of the two middle values
/// for even counts.
fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    let lo = v.get(n.saturating_sub(1) / 2).copied().unwrap_or(0.0);
    let hi = v.get(n / 2).copied().unwrap_or(0.0);
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_frame::Rect;

    fn grid(dx: i32, dy: i32) -> Vec<MotionVector> {
        (0..5)
            .flat_map(|by| {
                (0..5).map(move |bx| MotionVector {
                    block: Rect::new(bx * 16, by * 16, 16, 16),
                    dx,
                    dy,
                    sad: 40,
                })
            })
            .collect()
    }

    #[test]
    fn uniform_field_recovers_translation() {
        // (dx, dy) points to the previous-frame match, so content that
        // moved (+6, -3) yields vectors (-6, +3) and the prev→cur ego
        // transform must translate by (+6, -3).
        let ego = estimate_ego_motion(&grid(-6, 3), &EgoEstimatorConfig::default());
        assert!(ego.confidence > 0.99, "confidence {}", ego.confidence);
        assert!((ego.transform.tx - 6.0).abs() < 1e-6, "tx {}", ego.transform.tx);
        assert!((ego.transform.ty + 3.0).abs() < 1e-6, "ty {}", ego.transform.ty);
        let (dx, dy) = ego.displacement_at((40.0, 40.0));
        assert!((dx - 6.0).abs() < 1e-6 && (dy + 3.0).abs() < 1e-6);
    }

    #[test]
    fn zero_field_is_exact_identity() {
        let ego = estimate_ego_motion(&grid(0, 0), &EgoEstimatorConfig::default());
        assert!(ego.confidence > 0.99);
        assert!(ego.transform.translation_norm() < 1e-9);
        assert!(ego.transform.theta.abs() < 1e-9);
    }

    #[test]
    fn outliers_are_rejected() {
        let mut vectors = grid(-4, 0);
        // A quarter of the blocks track an independently moving object.
        for v in vectors.iter_mut().take(6) {
            v.dx = 7;
            v.dy = -5;
        }
        let ego = estimate_ego_motion(&vectors, &EgoEstimatorConfig::default());
        assert!((ego.transform.tx - 4.0).abs() < 1e-6, "tx {}", ego.transform.tx);
        assert_eq!(ego.inliers, 19);
        assert!(ego.confidence < 0.99);
    }

    #[test]
    fn small_sets_take_the_translation_only_path() {
        // Four vectors agree on a pan, one is a flat-block zero tie: a
        // rigid fit through a disagreeing pair could alias the outlier
        // into a huge rotation, but the median translation shrugs it
        // off and keeps theta pinned to zero.
        let mut vectors: Vec<MotionVector> = grid(7, 0).into_iter().take(5).collect();
        if let Some(v) = vectors.last_mut() {
            v.dx = 0;
            v.dy = 0;
        }
        let cfg = EgoEstimatorConfig { min_vectors: 2, ..EgoEstimatorConfig::default() };
        assert!(vectors.len() < cfg.min_rigid_vectors);
        let ego = estimate_ego_motion(&vectors, &cfg);
        assert_eq!(ego.transform.theta, 0.0);
        assert!((ego.transform.tx + 7.0).abs() < 1e-9, "tx {}", ego.transform.tx);
        assert_eq!(ego.transform.ty, 0.0);
        assert_eq!(ego.inliers, 4);
        assert_eq!(ego.total, 5);
    }

    #[test]
    fn two_disagreeing_vectors_cannot_invent_rotation() {
        let vectors: Vec<MotionVector> = vec![
            MotionVector { block: Rect::new(0, 0, 16, 16), dx: 7, dy: 0, sad: 10 },
            MotionVector { block: Rect::new(64, 48, 16, 16), dx: 0, dy: 0, sad: 0 },
        ];
        let cfg = EgoEstimatorConfig { min_vectors: 2, ..EgoEstimatorConfig::default() };
        let ego = estimate_ego_motion(&vectors, &cfg);
        assert_eq!(ego.transform.theta, 0.0);
        assert!((ego.transform.tx + 3.5).abs() < 1e-9, "tx {}", ego.transform.tx);
    }

    #[test]
    fn too_few_vectors_degrades_to_identity() {
        let vectors = grid(-6, 0);
        let ego = estimate_ego_motion(&vectors[..3], &EgoEstimatorConfig::default());
        assert_eq!(ego.confidence, 0.0);
        assert_eq!(ego.transform, Rigid2d::default());
    }

    #[test]
    fn all_outlier_chaos_never_panics() {
        let vectors: Vec<MotionVector> = (0..25)
            .map(|i| MotionVector {
                block: Rect::new((i % 5) * 16, (i / 5) * 16, 16, 16),
                dx: ((i * 37) % 17) as i32 - 8,
                dy: ((i * 53) % 15) as i32 - 7,
                sad: 10_000,
            })
            .collect();
        let ego = estimate_ego_motion(&vectors, &EgoEstimatorConfig::default());
        assert!(ego.transform.tx.is_finite() && ego.transform.ty.is_finite());
    }

    #[test]
    fn deterministic_across_runs() {
        let vectors = grid(-5, 2);
        let a = estimate_ego_motion(&vectors, &EgoEstimatorConfig::default());
        let b = estimate_ego_motion(&vectors, &EgoEstimatorConfig::default());
        assert_eq!(a, b);
    }
}

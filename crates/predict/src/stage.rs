//! The stream-layer prediction stage.
//!
//! [`MotionPredictor`] implements `rpr_stream::FeedbackTransform` for
//! grayscale pipelines: it block-matches consecutive decoded frames as
//! they leave the capture stage and rewrites the task's t−1 feedback —
//! detections and features — to where the estimated motion puts them
//! at frame t, so the capture→task feedback edge carries predicted
//! labels without the capture stage changing at all.

use crate::{displacement_for_rect, estimate_ego_motion, shift_rect, EgoEstimatorConfig, EgoMotion};
use rpr_frame::GrayFrame;
use rpr_stream::{Feedback, FeedbackTransform};
use rpr_vision::{estimate_block_motion, MotionVector};

/// Motion state estimated from the newest decoded frame pair.
#[derive(Debug, Clone)]
struct Estimate {
    ego: EgoMotion,
    vectors: Vec<MotionVector>,
    width: u32,
    height: u32,
}

/// A [`FeedbackTransform`] that forward-projects feedback by the
/// motion observed between consecutive decoded frames.
#[derive(Debug)]
pub struct MotionPredictor {
    block_size: u32,
    search_radius: u32,
    ego_cfg: EgoEstimatorConfig,
    prev: Option<GrayFrame>,
    estimate: Option<Estimate>,
}

impl MotionPredictor {
    /// Creates a predictor block-matching with the given block size
    /// and search radius (a zero block size is raised to 1).
    pub fn new(block_size: u32, search_radius: u32) -> Self {
        MotionPredictor {
            block_size: block_size.max(1),
            search_radius,
            ego_cfg: EgoEstimatorConfig::default(),
            prev: None,
            estimate: None,
        }
    }

    /// Overrides the ego-estimator configuration.
    pub fn with_ego_config(mut self, cfg: EgoEstimatorConfig) -> Self {
        self.ego_cfg = cfg;
        self
    }

    /// The latest ego-motion estimate, if two comparable frames have
    /// been observed.
    pub fn ego(&self) -> Option<EgoMotion> {
        self.estimate.as_ref().map(|e| e.ego)
    }
}

impl Default for MotionPredictor {
    fn default() -> Self {
        MotionPredictor::new(16, 8)
    }
}

impl FeedbackTransform<GrayFrame> for MotionPredictor {
    fn observe(&mut self, output: &GrayFrame) {
        if let Some(prev) = &self.prev {
            if prev.width() == output.width() && prev.height() == output.height() {
                let vectors =
                    estimate_block_motion(prev, output, self.block_size, self.search_radius);
                let ego = estimate_ego_motion(&vectors, &self.ego_cfg);
                self.estimate = Some(Estimate {
                    ego,
                    vectors,
                    width: output.width(),
                    height: output.height(),
                });
            } else {
                // Geometry changed mid-stream: stale motion is useless.
                self.estimate = None;
            }
        }
        self.prev = Some(output.clone());
    }

    fn transform(&mut self, mut feedback: Feedback) -> Feedback {
        let Some(est) = &self.estimate else {
            return feedback;
        };
        let mut projected = Vec::with_capacity(feedback.detections.len());
        for (rect, _) in feedback.detections.iter() {
            let ((dx, dy), _sad) = displacement_for_rect(rect, &est.vectors, &est.ego);
            if let Some(moved) = shift_rect(rect, dx, dy, est.width, est.height) {
                projected.push((moved, (dx * dx + dy * dy).sqrt()));
            }
        }
        feedback.detections = projected;
        for f in feedback.features.iter_mut() {
            let (dx, dy) = est.ego.displacement_at((f.x, f.y));
            f.x = (f.x + dx).clamp(0.0, f64::from(est.width));
            f.y = (f.y + dy).clamp(0.0, f64::from(est.height));
            f.displacement = f.displacement.max((dx * dx + dy * dy).sqrt());
        }
        feedback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::Feature;
    use rpr_frame::{Plane, Rect};

    /// A textured scene shifted right by `offset` pixels.
    fn scene(offset: u32) -> GrayFrame {
        Plane::from_fn(128, 96, |x, y| {
            let sx = x.wrapping_sub(offset);
            (sx.wrapping_mul(37) ^ y.wrapping_mul(11)).wrapping_mul(59) as u8
        })
    }

    #[test]
    fn first_frame_passes_feedback_through() {
        let mut p = MotionPredictor::default();
        p.observe(&scene(0));
        let fb = Feedback {
            features: vec![Feature::new(10.0, 10.0, 8.0)],
            detections: vec![(Rect::new(5, 5, 10, 10), 1.0)],
        };
        let out = p.transform(fb.clone());
        assert_eq!(out.detections, fb.detections);
        assert!(p.ego().is_none());
    }

    #[test]
    fn pan_shifts_detections_and_features() {
        let mut p = MotionPredictor::default();
        p.observe(&scene(0));
        p.observe(&scene(4));
        let ego = p.ego().expect("two frames observed");
        assert!((ego.transform.tx - 4.0).abs() < 1.0, "tx {}", ego.transform.tx);

        let fb = Feedback {
            features: vec![Feature::new(50.0, 50.0, 8.0)],
            detections: vec![(Rect::new(40, 40, 16, 16), 0.0)],
        };
        let out = p.transform(fb);
        let (moved, disp) = out.detections.first().expect("kept");
        assert_eq!(moved.y, 40);
        assert!((i64::from(moved.x) - 44).abs() <= 1, "moved {moved:?}");
        assert!(*disp > 2.0);
        let f = out.features.first().expect("kept");
        assert!((f.x - 54.0).abs() < 1.5, "feature x {}", f.x);
    }

    #[test]
    fn geometry_change_clears_the_estimate() {
        let mut p = MotionPredictor::default();
        p.observe(&scene(0));
        p.observe(&scene(4));
        assert!(p.ego().is_some());
        p.observe(&Plane::new(64, 64));
        assert!(p.ego().is_none());
    }

    #[test]
    fn zero_texture_ties_stay_identity() {
        let mut p = MotionPredictor::default();
        p.observe(&Plane::new(128, 96));
        p.observe(&Plane::new(128, 96));
        let fb = Feedback {
            features: vec![],
            detections: vec![(Rect::new(40, 40, 16, 16), 0.0)],
        };
        let out = p.transform(fb);
        // Flat frames match everywhere; the zero-MV tie bias keeps the
        // field at rest and the detection must not move.
        assert_eq!(out.detections, vec![(Rect::new(40, 40, 16, 16), 0.0)]);
    }
}

//! Drives the experiment pipeline with rpr-testkit's seeded generators
//! instead of the curated synthetic datasets: the pipeline invariants
//! (traffic ordering between baselines, captured-fraction bounds,
//! determinism per seed) must hold on arbitrary generated content, not
//! just on the dataset scenes the runner usually sees.

use rpr_workloads::runner::{Pipeline, PipelineConfig};
use rpr_workloads::Baseline;
use rpr_testkit::{gen_capture_sequence, gen_frame, TestRng};

const W: u32 = 32;
const H: u32 = 24;
const FRAMES: usize = 20;

fn run_baseline(baseline: Baseline, seed: u64) -> rpr_workloads::runner::Measurements {
    let mut rng = TestRng::new(seed);
    let mut pipeline = Pipeline::new(PipelineConfig::new(W, H, baseline));
    for _ in 0..FRAMES {
        let frame = gen_frame(&mut rng, W, H);
        pipeline.process_frame(&frame, vec![], vec![]);
    }
    pipeline.finish()
}

#[test]
fn rhythmic_traffic_never_exceeds_full_capture_on_generated_content() {
    for seed in [1u64, 17, 99] {
        let fch = run_baseline(Baseline::Fch, seed);
        let rp = run_baseline(Baseline::Rp { cycle_length: 10 }, seed);
        assert!(
            rp.traffic.write_bytes <= fch.traffic.write_bytes,
            "seed {seed}: RP wrote {} > FCH {}",
            rp.traffic.write_bytes,
            fch.traffic.write_bytes
        );
        assert!(rp.mean_footprint_bytes <= fch.mean_footprint_bytes, "seed {seed}");
    }
}

#[test]
fn captured_fractions_stay_in_unit_interval() {
    for seed in [3u64, 29] {
        let rp = run_baseline(Baseline::Rp { cycle_length: 5 }, seed);
        assert_eq!(rp.captured_fractions.len(), FRAMES);
        for (i, &f) in rp.captured_fractions.iter().enumerate() {
            assert!((0.0..=1.0).contains(&f), "seed {seed} frame {i}: fraction {f}");
        }
        // Cycle structure: frame 0 is a full capture.
        assert!(
            rp.captured_fractions[0] > 0.99,
            "seed {seed}: first frame is a full capture, got {}",
            rp.captured_fractions[0]
        );
    }
}

#[test]
fn pipeline_runs_are_deterministic_per_seed() {
    let a = run_baseline(Baseline::Rp { cycle_length: 10 }, 42);
    let b = run_baseline(Baseline::Rp { cycle_length: 10 }, 42);
    assert_eq!(a.traffic.write_bytes, b.traffic.write_bytes);
    assert_eq!(a.traffic.read_bytes, b.traffic.read_bytes);
    assert_eq!(a.captured_fractions, b.captured_fractions);
    // Traffic is a function of region geometry, not pixel values, so a
    // different content seed with no feedback still moves the same
    // bytes — but the generated frames themselves must differ.
    let mut r1 = TestRng::new(42);
    let mut r2 = TestRng::new(43);
    assert_ne!(gen_frame(&mut r1, W, H), gen_frame(&mut r2, W, H));
}

#[test]
fn generated_capture_sequences_encode_under_every_baseline() {
    // The full generator output (overlapping/degenerate regions and
    // all) must be consumable by every baseline without panicking.
    let mut rng = TestRng::new(7);
    let seq = gen_capture_sequence(&mut rng, W, H, 6);
    for baseline in [
        Baseline::Fch,
        Baseline::Fcl { factor: 2 },
        Baseline::Rp { cycle_length: 4 },
        Baseline::MultiRoi { max_regions: 4, cycle_length: 4 },
    ] {
        let mut pipeline = Pipeline::new(PipelineConfig::new(W, H, baseline));
        for frame in &seq.frames {
            let out = pipeline.process_frame(frame, vec![], vec![]);
            assert_eq!((out.width(), out.height()), (W, H), "{baseline:?}");
        }
        let m = pipeline.finish();
        assert!(m.traffic.write_bytes > 0, "{baseline:?} recorded traffic");
        assert!(m.traffic.bytes_per_frame.is_finite(), "{baseline:?}");
    }
}

//! Property tests for the workloads crate: datasets, codec, baselines.

use proptest::prelude::*;
use rpr_frame::Plane;
use rpr_workloads::datasets::{FaceDataset, PoseDataset, SlamDataset, VideoDataset};
use rpr_workloads::{H264Model, H264Quality};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every dataset renders deterministic frames of the advertised
    /// geometry, and all ground truth stays inside the frame.
    #[test]
    fn datasets_are_consistent(seed in 0u64..30, idx in 0usize..8) {
        let slam = SlamDataset::new(96, 72, 10, seed);
        prop_assert_eq!(slam.frame(idx), slam.frame(idx));
        prop_assert_eq!(slam.frame(idx).width(), 96);

        let pose = PoseDataset::new(96, 72, 10, seed);
        let bbox = pose.gt_bbox(idx);
        prop_assert!(bbox.right() <= 96 && bbox.bottom() <= 72);
        prop_assert!(!bbox.is_empty());

        let face = FaceDataset::new(96, 72, 10, 3, seed);
        for b in face.gt_bboxes(idx) {
            prop_assert!(b.right() <= 96 && b.bottom() <= 72);
            prop_assert!(b.area() > 0);
        }
    }

    /// The codec's bitrate falls and distortion rises monotonically
    /// with coarser quantization, on any textured frame.
    #[test]
    fn h264_rate_distortion_ordering(seed in 0u32..40) {
        let frame = Plane::from_fn(48, 48, |x, y| {
            (128.0
                + 90.0 * ((f64::from(x) * 0.31 + f64::from(seed)).sin()
                    * (f64::from(y) * 0.17).cos())) as u8
        });
        let hi = H264Model::new(H264Quality::High, 10).encode(&frame);
        let md = H264Model::new(H264Quality::Medium, 10).encode(&frame);
        let lo = H264Model::new(H264Quality::Low, 10).encode(&frame);
        prop_assert!(hi.bits >= md.bits);
        prop_assert!(md.bits >= lo.bits);
        let psnr_hi = hi.reconstruction.psnr(&frame).unwrap();
        let psnr_lo = lo.reconstruction.psnr(&frame).unwrap();
        prop_assert!(psnr_hi >= psnr_lo - 0.2, "{psnr_hi} vs {psnr_lo}");
    }

    /// P-frames of an unchanged scene always cost (far) fewer bits than
    /// the I-frame, at any quality.
    #[test]
    fn static_pframes_are_cheap(pick in 0u8..3) {
        let quality = match pick {
            0 => H264Quality::High,
            1 => H264Quality::Medium,
            _ => H264Quality::Low,
        };
        let frame = Plane::from_fn(48, 48, |x, y| ((x * 5) ^ (y * 3)) as u8);
        let mut codec = H264Model::new(quality, 10);
        let i = codec.encode(&frame);
        let p = codec.encode(&frame);
        prop_assert!(p.bits < i.bits / 2, "P {} vs I {}", p.bits, i.bits);
    }

    /// The SLAM dataset's ground-truth trajectory and its mm conversion
    /// agree for every frame.
    #[test]
    fn slam_gt_units(seed in 0u64..20, idx in 0usize..6) {
        let ds = SlamDataset::new(80, 60, 8, seed);
        let mm = ds.gt_trajectory_mm();
        let pose = ds.gt_pose(idx);
        prop_assert!((mm[idx].x - pose.x * ds.mm_per_px).abs() < 1e-9);
        prop_assert!((mm[idx].y - pose.y * ds.mm_per_px).abs() < 1e-9);
        prop_assert_eq!(mm[idx].theta, pose.theta);
    }

    /// Face ground truth only ever reports faces with meaningful
    /// visibility (the ≥30 % rule).
    #[test]
    fn face_gt_visibility_rule(seed in 0u64..20) {
        let ds = FaceDataset::new(96, 72, 60, 4, seed);
        for idx in 0..60 {
            for (b, s) in ds.gt_bboxes(idx).iter().zip(ds.sprites()) {
                let full = u64::from(s.w) * u64::from(s.h);
                // Clamped boxes can belong to any sprite; just enforce
                // the area floor relative to the smallest sprite.
                let min_full = ds.sprites().iter().map(|s| u64::from(s.w) * u64::from(s.h)).min().unwrap();
                prop_assert!(b.area() * 10 >= min_full.min(full) * 2);
            }
        }
    }
}

//! Region-label statistics — the observed workload characterization of
//! paper Table 4 (average number of regions, region size range, stride
//! range, and temporal rate range).

use rpr_core::RegionList;
use serde::{Deserialize, Serialize};

/// Aggregated region statistics over the regional (non-full-capture)
/// frames of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionStats {
    /// Average number of regions per regional frame.
    pub avg_regions: f64,
    /// Smallest region edge observed `(w, h)`.
    pub min_size: (u32, u32),
    /// Largest region edge observed `(w, h)`.
    pub max_size: (u32, u32),
    /// Smallest stride observed.
    pub min_stride: u32,
    /// Largest stride observed.
    pub max_stride: u32,
    /// Fastest sampling interval observed, in milliseconds at the run's
    /// frame rate (= skip_min / fps).
    pub min_rate_ms: f64,
    /// Slowest sampling interval observed, in milliseconds.
    pub max_rate_ms: f64,
    /// Regional frames observed.
    pub frames: u64,
}

/// Accumulates the Table 4 statistics while a workload runs.
#[derive(Debug, Clone)]
pub struct RegionStatsCollector {
    fps: f64,
    region_counts: Vec<usize>,
    min_size: (u32, u32),
    max_size: (u32, u32),
    min_stride: u32,
    max_stride: u32,
    min_skip: u32,
    max_skip: u32,
}

impl RegionStatsCollector {
    /// Creates a collector for a run at `fps`.
    pub fn new(fps: f64) -> Self {
        RegionStatsCollector {
            fps,
            region_counts: Vec::new(),
            min_size: (u32::MAX, u32::MAX),
            max_size: (0, 0),
            min_stride: u32::MAX,
            max_stride: 0,
            min_skip: u32::MAX,
            max_skip: 0,
        }
    }

    /// Records a planned region list. `is_full_capture` frames are
    /// excluded (Table 4 characterizes the feature-guided regions, not
    /// the periodic full scans).
    pub fn observe(&mut self, regions: &RegionList, is_full_capture: bool) {
        if is_full_capture {
            return;
        }
        self.region_counts.push(regions.len());
        for r in regions {
            self.min_size = (self.min_size.0.min(r.w), self.min_size.1.min(r.h));
            self.max_size = (self.max_size.0.max(r.w), self.max_size.1.max(r.h));
            self.min_stride = self.min_stride.min(r.stride);
            self.max_stride = self.max_stride.max(r.stride);
            self.min_skip = self.min_skip.min(r.skip);
            self.max_skip = self.max_skip.max(r.skip);
        }
    }

    /// Finalizes the statistics; `None` when no regional frame carried
    /// any region.
    pub fn finish(&self) -> Option<RegionStats> {
        if self.region_counts.is_empty() || self.max_stride == 0 {
            return None;
        }
        let avg = self.region_counts.iter().sum::<usize>() as f64
            / self.region_counts.len() as f64;
        // A degenerate (zero/negative/non-finite) frame rate must not
        // leak inf/NaN rates into serialized reports.
        let frame_ms = if self.fps.is_finite() && self.fps > 0.0 {
            1000.0 / self.fps
        } else {
            0.0
        };
        Some(RegionStats {
            avg_regions: avg,
            min_size: self.min_size,
            max_size: self.max_size,
            min_stride: self.min_stride,
            max_stride: self.max_stride,
            min_rate_ms: f64::from(self.min_skip) * frame_ms,
            max_rate_ms: f64::from(self.max_skip) * frame_ms,
            frames: self.region_counts.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_core::RegionLabel;

    fn list(labels: Vec<RegionLabel>) -> RegionList {
        RegionList::new_lossy(640, 480, labels)
    }

    #[test]
    fn collects_ranges() {
        let mut c = RegionStatsCollector::new(30.0);
        c.observe(
            &list(vec![
                RegionLabel::new(0, 0, 70, 70, 1, 1),
                RegionLabel::new(100, 100, 230, 230, 4, 3),
            ]),
            false,
        );
        c.observe(&list(vec![RegionLabel::new(0, 0, 90, 80, 2, 2)]), false);
        let s = c.finish().unwrap();
        assert_eq!(s.frames, 2);
        assert!((s.avg_regions - 1.5).abs() < 1e-12);
        assert_eq!(s.min_size, (70, 70));
        assert_eq!(s.max_size, (230, 230));
        assert_eq!(s.min_stride, 1);
        assert_eq!(s.max_stride, 4);
        // 30 fps: skip 1 → 33.3 ms, skip 3 → 100 ms — Table 4's rates.
        assert!((s.min_rate_ms - 33.33).abs() < 0.1);
        assert!((s.max_rate_ms - 100.0).abs() < 0.1);
    }

    #[test]
    fn full_captures_excluded() {
        let mut c = RegionStatsCollector::new(30.0);
        c.observe(&RegionList::full_frame(640, 480), true);
        assert!(c.finish().is_none());
        c.observe(&list(vec![RegionLabel::new(0, 0, 50, 50, 1, 1)]), false);
        let s = c.finish().unwrap();
        assert_eq!(s.frames, 1);
        assert_eq!(s.max_size, (50, 50));
    }

    #[test]
    fn empty_collector_is_none() {
        assert!(RegionStatsCollector::new(30.0).finish().is_none());
    }

    #[test]
    fn zero_regional_frames_with_full_captures_only_is_none() {
        let mut c = RegionStatsCollector::new(30.0);
        for _ in 0..5 {
            c.observe(&RegionList::full_frame(640, 480), true);
        }
        assert!(c.finish().is_none());
    }

    #[test]
    fn single_frame_run_produces_finite_stats() {
        let mut c = RegionStatsCollector::new(30.0);
        c.observe(&list(vec![RegionLabel::new(0, 0, 50, 50, 2, 3)]), false);
        let s = c.finish().unwrap();
        assert_eq!(s.frames, 1);
        assert_eq!(s.avg_regions, 1.0);
        assert_eq!((s.min_stride, s.max_stride), (2, 2));
        assert!(s.min_rate_ms.is_finite() && s.max_rate_ms.is_finite());
        assert_eq!(s.min_rate_ms, s.max_rate_ms);
    }

    #[test]
    fn degenerate_fps_never_serializes_nan_or_inf() {
        for fps in [0.0, -30.0, f64::NAN, f64::INFINITY] {
            let mut c = RegionStatsCollector::new(fps);
            c.observe(&list(vec![RegionLabel::new(0, 0, 50, 50, 1, 2)]), false);
            let s = c.finish().unwrap();
            assert!(s.min_rate_ms.is_finite(), "fps {fps}: min {}", s.min_rate_ms);
            assert!(s.max_rate_ms.is_finite(), "fps {fps}: max {}", s.max_rate_ms);
            let json = serde_json::to_string(&s).unwrap();
            assert!(!json.contains("null"), "fps {fps}: {json}");
            let back: RegionStats = serde_json::from_str(&json).unwrap();
            assert_eq!(back, s);
        }
    }
}

//! The evaluation baselines of paper §5.3.

use crate::H264Quality;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A capture/processing strategy to evaluate a workload under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Baseline {
    /// Frame-based computing at full (high) resolution — the paper's
    /// FCH.
    Fch,
    /// Frame-based computing at low resolution: the whole frame is
    /// downscaled by `factor` before storage (the paper's FCL, e.g.
    /// 4K → 480p).
    Fcl {
        /// Integer downscale factor.
        factor: u32,
    },
    /// Rhythmic pixel regions with the cycle-length policy (the paper's
    /// RP5 / RP10 / RP15).
    Rp {
        /// Frames between consecutive full captures.
        cycle_length: u64,
    },
    /// Off-the-shelf multi-ROI camera emulation: at most `max_regions`
    /// rectangular read-outs (k-means clustered from the policy's
    /// regions), full resolution, no stride/skip, per-region grouped
    /// storage (§5.3: commercial parts support ≤ 16 regions).
    MultiRoi {
        /// Maximum simultaneous ROIs the camera supports.
        max_regions: usize,
        /// Full-capture period used for (re)acquisition, matching the
        /// RP cycle structure.
        cycle_length: u64,
    },
    /// H.264 compression of full frames (model codec).
    H264 {
        /// Quantization quality of the model codec.
        quality: H264Quality,
    },
}

impl Baseline {
    /// The paper's standard comparison set for a workload:
    /// FCH, FCL, RP5, RP10, RP15, Multi-ROI, H.264 (Figs. 8–9).
    pub fn paper_set(fcl_factor: u32) -> Vec<Baseline> {
        vec![
            Baseline::Fch,
            Baseline::Fcl { factor: fcl_factor },
            Baseline::Rp { cycle_length: 5 },
            Baseline::Rp { cycle_length: 10 },
            Baseline::Rp { cycle_length: 15 },
            Baseline::MultiRoi { max_regions: 16, cycle_length: 10 },
            Baseline::H264 { quality: H264Quality::Medium },
        ]
    }

    /// The display label used in the paper's figures.
    pub fn label(&self) -> String {
        match self {
            Baseline::Fch => "FCH".into(),
            Baseline::Fcl { .. } => "FCL".into(),
            Baseline::Rp { cycle_length } => format!("RP{cycle_length}"),
            Baseline::MultiRoi { .. } => "Multi-ROI".into(),
            Baseline::H264 { .. } => "H.264".into(),
        }
    }

    /// True for the rhythmic-pixel-region configurations.
    pub fn is_rhythmic(&self) -> bool {
        matches!(self, Baseline::Rp { .. })
    }
}

impl fmt::Display for Baseline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_matches_figure_legend() {
        let set = Baseline::paper_set(4);
        let labels: Vec<String> = set.iter().map(Baseline::label).collect();
        assert_eq!(labels, vec!["FCH", "FCL", "RP5", "RP10", "RP15", "Multi-ROI", "H.264"]);
    }

    #[test]
    fn rhythmic_predicate() {
        assert!(Baseline::Rp { cycle_length: 10 }.is_rhythmic());
        assert!(!Baseline::Fch.is_rhythmic());
        assert!(!Baseline::MultiRoi { max_regions: 16, cycle_length: 10 }.is_rhythmic());
    }
}

//! Per-frame captured-pixel progression — the data behind the paper's
//! appendix Figs. 10–15, which show one full cycle of a workload with
//! the percentage of pixels stored under each frame (100 % on full
//! captures, ~20–45 % in between).

/// Extracts one representative cycle of captured-pixel fractions from a
/// run's per-frame series: the window of `cycle_length + 1` frames
/// starting at the first full capture at or after `skip_warmup` frames
/// (so the policy has features to work with), inclusive of the next
/// full capture — exactly the "Frame 1 (100 %) … Frame 7 (100 %)" strip
/// the paper prints.
///
/// Returns `None` when the series is too short.
///
/// # Example
///
/// ```
/// use rpr_workloads::progression_series;
///
/// let fractions = vec![1.0, 0.4, 0.3, 1.0, 0.35, 0.28, 1.0, 0.4];
/// let cycle = progression_series(&fractions, 3, 1).unwrap();
/// assert_eq!(cycle, vec![1.0, 0.35, 0.28, 1.0]);
/// ```
pub fn progression_series(
    fractions: &[f64],
    cycle_length: u64,
    skip_warmup: usize,
) -> Option<Vec<f64>> {
    let cl = cycle_length as usize;
    if cl == 0 || fractions.len() < cl + 1 {
        return None;
    }
    // Full captures land on multiples of the cycle length.
    let mut start = skip_warmup.div_ceil(cl) * cl;
    if start + cl >= fractions.len() {
        start = (fractions.len() - cl - 1) / cl * cl;
    }
    let window = &fractions[start..=start + cl];
    Some(window.to_vec())
}

/// Formats a progression window the way the paper captions frames:
/// `"100% 37% 31% 34% 100%"`.
pub fn format_progression(window: &[f64]) -> String {
    window
        .iter()
        .map(|f| format!("{:.0}%", f * 100.0))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_cycle_after_warmup() {
        let fr = vec![1.0, 0.5, 0.4, 1.0, 0.3, 0.2, 1.0];
        let w = progression_series(&fr, 3, 2).unwrap();
        assert_eq!(w, vec![1.0, 0.3, 0.2, 1.0]);
    }

    #[test]
    fn clamps_to_available_frames() {
        let fr = vec![1.0, 0.5, 0.4, 1.0, 0.3];
        // Warmup beyond the last full cycle: fall back to the last
        // complete window.
        let w = progression_series(&fr, 3, 10).unwrap();
        assert_eq!(w, vec![1.0, 0.5, 0.4, 1.0]);
    }

    #[test]
    fn too_short_series_is_none() {
        assert!(progression_series(&[1.0, 0.4], 5, 0).is_none());
        assert!(progression_series(&[1.0], 0, 0).is_none());
    }

    #[test]
    fn formatting_matches_paper_style() {
        assert_eq!(format_progression(&[1.0, 0.37, 0.31]), "100% 37% 31%");
    }
}

//! The human-pose-estimation workload (paper §5.3): person tracking by
//! bright-skeleton blob detection, measured by IoU mAP, with regions
//! planned from the tracked person box ("skeletal pose joints for
//! determining the regions", §5.3.2).

use super::detection_displacements;
use crate::datasets::{PoseDataset, VideoDataset};
use crate::runner::{Measurements, Pipeline, PipelineConfig};
use crate::Baseline;
use rpr_frame::Rect;
use rpr_vision::{detect_blobs, mean_average_precision};
use serde::{Deserialize, Serialize};

/// Result of one pose-estimation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PoseOutcome {
    /// IoU-0.5 mean average precision over all frames, in `[0, 1]`.
    pub map: f64,
    /// Per-frame average precision.
    pub per_frame_ap: Vec<f64>,
    /// Memory-side measurements.
    pub measurements: Measurements,
}

/// Runs the pose workload on `dataset` under `baseline`, as a 1-stream
/// instance of the staged executor (bit-identical to the synchronous
/// [`run_pose_with`] reference under blocking backpressure).
pub fn run_pose(dataset: &PoseDataset, baseline: Baseline) -> PoseOutcome {
    crate::staged::run_pose_staged(
        dataset,
        PipelineConfig::new(dataset.width(), dataset.height(), baseline),
        rpr_stream::StreamConfig::blocking(),
    )
    .0
}

/// Runs the pose workload with an explicit pipeline configuration.
pub fn run_pose_with(dataset: &PoseDataset, cfg: PipelineConfig) -> PoseOutcome {
    let mut pipeline = Pipeline::new(cfg);
    let min_area = u64::from(dataset.width()) * u64::from(dataset.height()) / 600;
    let mut policy_detections: Vec<(Rect, f64)> = Vec::new();
    let mut prev_boxes: Vec<Rect> = Vec::new();
    let mut frames_eval = Vec::new();

    for t in 0..dataset.len() {
        let raw = dataset.frame(t);
        let processed = pipeline.process_frame(&raw, Vec::new(), policy_detections.clone());

        // The person is the single dominant bright blob — but a
        // detection only counts when the skeleton is actually
        // *resolved*: a real pose network needs crisp limb pixels, so
        // we gate on the fraction of near-full-brightness pixels in the
        // box (box-filter downscaling and blur wash these out, which is
        // how FCL loses accuracy in the paper).
        let blobs = detect_blobs(&processed, 150, min_area.max(8));
        let detections: Vec<(Rect, f64)> = blobs
            .first()
            .filter(|b| crisp_fraction(&processed, &b.bbox) >= 0.08)
            .map(|b| (b.bbox, b.area as f64))
            .into_iter()
            .collect();
        let gts = vec![dataset.gt_bbox(t)];
        frames_eval.push((detections.clone(), gts));

        let boxes: Vec<Rect> = detections.iter().map(|(r, _)| *r).collect();
        // Articulated limbs move ~2x faster than the body centroid the
        // box tracker measures; scale the proxy so swinging wrists and
        // ankles are still sampled at an adequate temporal rate.
        policy_detections = detection_displacements(&boxes, &prev_boxes, 8.0)
            .into_iter()
            .map(|(r, d)| (r, d * 2.0))
            .collect();
        prev_boxes = boxes;
    }

    let map = mean_average_precision(&frames_eval, 0.5);
    let per_frame_ap = frames_eval
        .iter()
        .map(|(d, g)| rpr_vision::average_precision(d, g, 0.5))
        .collect();
    PoseOutcome { map, per_frame_ap, measurements: pipeline.finish() }
}

/// Fraction of pixels in `bbox` at near-full skeleton brightness
/// (≥ 210 of the renderer's 230) — the limb-resolution proxy.
pub(crate) fn crisp_fraction(frame: &rpr_frame::GrayFrame, bbox: &Rect) -> f64 {
    let mut crisp = 0u64;
    for y in bbox.y..bbox.bottom().min(frame.height()) {
        for x in bbox.x..bbox.right().min(frame.width()) {
            if frame.get(x, y).unwrap_or(0) >= 210 {
                crisp += 1;
            }
        }
    }
    crisp as f64 / bbox.area().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> PoseDataset {
        PoseDataset::new(192, 144, 20, 5)
    }

    #[test]
    fn fch_map_is_high() {
        let out = run_pose(&dataset(), Baseline::Fch);
        assert!(out.map > 0.8, "FCH mAP {}", out.map);
        assert_eq!(out.per_frame_ap.len(), 20);
    }

    #[test]
    fn rp_trades_little_accuracy_for_traffic() {
        let ds = dataset();
        let fch = run_pose(&ds, Baseline::Fch);
        let rp = run_pose(&ds, Baseline::Rp { cycle_length: 5 });
        assert!(
            rp.measurements.traffic.write_bytes < fch.measurements.traffic.write_bytes
        );
        assert!(rp.map > fch.map * 0.6, "RP mAP {} vs FCH {}", rp.map, fch.map);
    }

    #[test]
    fn fcl_hurts_map() {
        let ds = dataset();
        let fch = run_pose(&ds, Baseline::Fch);
        let fcl = run_pose(&ds, Baseline::Fcl { factor: 4 });
        assert!(fcl.map <= fch.map + 1e-9, "FCL {} vs FCH {}", fcl.map, fch.map);
    }
}

//! The visual-SLAM workload (paper §3.4, §5.3): ORB-feature visual
//! odometry over the synthetic textured world, with region labels
//! derived from feature attributes exactly as the paper's case study
//! prescribes — `size` → region footprint, `octave` → stride, observed
//! displacement → temporal rate.

use crate::datasets::{SlamDataset, VideoDataset};
use crate::runner::{Measurements, Pipeline, PipelineConfig};
use crate::Baseline;
use rpr_core::Feature;
use rpr_sensor::CameraPose;
use rpr_vision::{
    ate_rmse, estimate_rigid_motion, match_descriptors, relative_pose_error, OrbConfig,
    OrbDetector, Pose2d,
};
use serde::{Deserialize, Serialize};

/// Result of one V-SLAM run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlamOutcome {
    /// Absolute trajectory error RMSE in millimetres (the paper's
    /// headline metric: 43 mm FCH → 51 mm RP10).
    pub ate_mm: f64,
    /// Per-frame translational relative pose error, millimetres.
    pub rpe_translational_mm: f64,
    /// Per-frame rotational relative pose error, degrees.
    pub rpe_rotational_deg: f64,
    /// Frames where motion estimation fell back to constant velocity.
    pub tracking_failures: u32,
    /// Estimated trajectory in millimetres.
    pub estimated_mm: Vec<Pose2d>,
    /// Memory-side measurements.
    pub measurements: Measurements,
}

/// Runs visual odometry on `dataset` under `baseline`, as a 1-stream
/// instance of the staged executor (bit-identical to the synchronous
/// [`run_slam_with`] reference under blocking backpressure).
pub fn run_slam(dataset: &SlamDataset, baseline: Baseline) -> SlamOutcome {
    crate::staged::run_slam_staged(
        dataset,
        PipelineConfig::new(dataset.width(), dataset.height(), baseline),
        rpr_stream::StreamConfig::blocking(),
    )
    .0
}

/// Runs visual odometry with an explicit pipeline configuration.
pub fn run_slam_with(dataset: &SlamDataset, cfg: PipelineConfig) -> SlamOutcome {
    let width = dataset.width();
    let height = dataset.height();
    let mut pipeline = Pipeline::new(cfg);
    // Feature budget proportional to frame area (the paper's reference
    // point is ~1500 features at 1080p).
    let area = u64::from(width) * u64::from(height);
    let n_features = (area / 1400).clamp(60, 1500) as usize;
    let orb = OrbDetector::new(OrbConfig { n_features, ..OrbConfig::default() });

    let cx = f64::from(width) / 2.0;
    let cy = f64::from(height) / 2.0;
    let mut prev_features = Vec::new();
    let mut policy_features: Vec<Feature> = Vec::new();
    let mut estimated: Vec<CameraPose> = vec![dataset.gt_pose(0)];
    let mut tracking_failures = 0u32;

    for t in 0..dataset.len() {
        let raw = dataset.frame(t);
        let processed = pipeline.process_frame(&raw, policy_features.clone(), Vec::new());
        let features = orb.detect(&processed);

        let mut displacement_of: Vec<Option<f64>> = vec![None; features.len()];
        if t > 0 {
            let matches = match_descriptors(&prev_features, &features, 64, 0.8);
            let pairs: Vec<((f64, f64), (f64, f64))> = matches
                .iter()
                .map(|m| {
                    let p = prev_features[m.query].keypoint;
                    let q = features[m.train].keypoint;
                    ((p.x - cx, p.y - cy), (q.x - cx, q.y - cy))
                })
                .collect();
            for m in &matches {
                let p = prev_features[m.query].keypoint;
                let q = features[m.train].keypoint;
                displacement_of[m.train] = Some(p.distance(&q));
            }

            let prev_pose = estimated[t - 1];
            let estimate = estimate_rigid_motion(&pairs, 150, 2.0, 0xB0B + t as u64)
                .filter(|(_, inliers)| inliers.len() >= 8);
            let next = match estimate {
                Some((rigid, _)) => {
                    // Image transform v' = R(a) v + tau maps to camera
                    // motion: theta' = theta - a; c' = c - R(theta') tau.
                    let theta = wrap_angle(prev_pose.theta - rigid.theta);
                    let (s, c) = theta.sin_cos();
                    CameraPose::new(
                        prev_pose.x - (c * rigid.tx - s * rigid.ty),
                        prev_pose.y - (s * rigid.tx + c * rigid.ty),
                        theta,
                    )
                }
                None => {
                    tracking_failures += 1;
                    // Constant-velocity fallback.
                    if t >= 2 {
                        let before = estimated[t - 2];
                        CameraPose::new(
                            2.0 * prev_pose.x - before.x,
                            2.0 * prev_pose.y - before.y,
                            wrap_angle(2.0 * prev_pose.theta - before.theta),
                        )
                    } else {
                        prev_pose
                    }
                }
            };
            estimated.push(next);
        }

        // Feature hand-off to the policy: regions for the next frame.
        policy_features = features
            .iter()
            .enumerate()
            .map(|(i, f)| Feature {
                x: f.keypoint.x,
                y: f.keypoint.y,
                size: f.keypoint.size,
                octave: f.keypoint.octave,
                // Unmatched (new) features count as fast so they are
                // sampled densely until tracked.
                displacement: displacement_of[i].unwrap_or(8.0),
            })
            .collect();
        prev_features = features;
    }

    let mm = dataset.mm_per_px;
    let estimated_mm: Vec<Pose2d> =
        estimated.iter().map(|p| Pose2d::new(p.x * mm, p.y * mm, p.theta)).collect();
    let gt_mm = dataset.gt_trajectory_mm();
    let ate = ate_rmse(&estimated_mm, &gt_mm).unwrap_or(f64::NAN);
    let rpe = relative_pose_error(&estimated_mm, &gt_mm, 1);

    SlamOutcome {
        ate_mm: ate,
        rpe_translational_mm: rpe.map_or(f64::NAN, |r| r.translational_rmse),
        rpe_rotational_deg: rpe.map_or(f64::NAN, |r| r.rotational_rmse.to_degrees()),
        tracking_failures,
        estimated_mm,
        measurements: pipeline.finish(),
    }
}

pub(crate) fn wrap_angle(t: f64) -> f64 {
    let mut a = t % (2.0 * std::f64::consts::PI);
    if a > std::f64::consts::PI {
        a -= 2.0 * std::f64::consts::PI;
    } else if a <= -std::f64::consts::PI {
        a += 2.0 * std::f64::consts::PI;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> SlamDataset {
        SlamDataset::new(192, 144, 16, 77)
    }

    #[test]
    fn fch_tracking_is_accurate() {
        let out = run_slam(&small_dataset(), Baseline::Fch);
        assert!(out.ate_mm.is_finite());
        assert!(out.ate_mm < 6.0, "FCH ATE {} mm", out.ate_mm);
        assert_eq!(out.estimated_mm.len(), 16);
    }

    #[test]
    fn rp_is_close_to_fch_and_cheaper() {
        let ds = small_dataset();
        let fch = run_slam(&ds, Baseline::Fch);
        let rp = run_slam(&ds, Baseline::Rp { cycle_length: 5 });
        assert!(
            rp.measurements.traffic.write_bytes < fch.measurements.traffic.write_bytes,
            "RP must reduce write traffic"
        );
        assert!(rp.ate_mm.is_finite());
        assert!(rp.ate_mm < 30.0, "RP5 ATE {} mm", rp.ate_mm);
    }

    #[test]
    fn fcl_degrades_accuracy() {
        let ds = small_dataset();
        let fch = run_slam(&ds, Baseline::Fch);
        let fcl = run_slam(&ds, Baseline::Fcl { factor: 4 });
        assert!(
            fcl.ate_mm > fch.ate_mm || fcl.tracking_failures > fch.tracking_failures,
            "FCL ({} mm, {} failures) should be worse than FCH ({} mm, {} failures)",
            fcl.ate_mm,
            fcl.tracking_failures,
            fch.ate_mm,
            fch.tracking_failures
        );
    }

    #[test]
    fn region_stats_report_feature_regions() {
        let out = run_slam(&small_dataset(), Baseline::Rp { cycle_length: 5 });
        let stats = out.measurements.region_stats.expect("rhythmic run has stats");
        assert!(stats.avg_regions > 10.0, "avg regions {}", stats.avg_regions);
        assert!(stats.min_stride >= 1 && stats.max_stride <= 4);
    }
}

//! The paper's three vision tasks (Table 3), each runnable under any
//! [`crate::Baseline`].

pub(crate) mod face;
pub(crate) mod pose;
pub(crate) mod slam;

pub use face::{run_face, run_face_with, FaceOutcome};
pub use pose::{run_pose, run_pose_with, PoseOutcome};
pub use slam::{run_slam, run_slam_with, SlamOutcome};

use rpr_frame::Rect;

/// Estimates per-detection displacement by greedy nearest-centre
/// matching against the previous frame's detections — the motion proxy
/// the paper's policies use to set temporal rates (§4.3.1).
///
/// Detections without a previous counterpart get `default_displacement`
/// (treat unknown motion as fast so new objects are sampled densely).
pub(crate) fn detection_displacements(
    current: &[Rect],
    previous: &[Rect],
    default_displacement: f64,
) -> Vec<(Rect, f64)> {
    current
        .iter()
        .map(|c| {
            let (cx, cy) = c.center();
            let nearest = previous
                .iter()
                .map(|p| {
                    let (px, py) = p.center();
                    ((cx - px).powi(2) + (cy - py).powi(2)).sqrt()
                })
                .fold(f64::MAX, f64::min);
            // A detection farther than its own size from everything in
            // the previous frame is new, not fast.
            let displacement = if nearest == f64::MAX || nearest > f64::from(c.w.max(c.h)) {
                default_displacement
            } else {
                nearest
            };
            (*c, displacement)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matched_detection_gets_measured_motion() {
        let prev = vec![Rect::new(10, 10, 20, 20)];
        let cur = vec![Rect::new(13, 14, 20, 20)];
        let d = detection_displacements(&cur, &prev, 99.0);
        assert!((d[0].1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn new_detection_gets_default() {
        let prev = vec![Rect::new(10, 10, 20, 20)];
        let cur = vec![Rect::new(300, 300, 20, 20)];
        let d = detection_displacements(&cur, &prev, 7.0);
        assert_eq!(d[0].1, 7.0);
    }

    #[test]
    fn empty_previous_uses_default() {
        let cur = vec![Rect::new(1, 1, 5, 5)];
        let d = detection_displacements(&cur, &[], 3.0);
        assert_eq!(d[0].1, 3.0);
    }
}

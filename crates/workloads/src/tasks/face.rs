//! The face-detection workload (paper §5.3): faces tracked through a
//! choke-point scene, measured by IoU mAP, with regions planned from
//! face trajectories ("we use face trajectory for face detection …
//! for determining the regions", §5.3.2).

use super::detection_displacements;
use crate::datasets::{FaceDataset, VideoDataset};
use crate::runner::{Measurements, Pipeline, PipelineConfig};
use crate::Baseline;
use rpr_frame::Rect;
use rpr_vision::{detect_blobs, mean_average_precision};
use serde::{Deserialize, Serialize};

/// Result of one face-detection run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaceOutcome {
    /// IoU-0.5 mean average precision over all frames.
    pub map: f64,
    /// Per-frame average precision.
    pub per_frame_ap: Vec<f64>,
    /// Memory-side measurements.
    pub measurements: Measurements,
}

/// Runs the face workload on `dataset` under `baseline`, as a 1-stream
/// instance of the staged executor (bit-identical to the synchronous
/// [`run_face_with`] reference under blocking backpressure).
pub fn run_face(dataset: &FaceDataset, baseline: Baseline) -> FaceOutcome {
    crate::staged::run_face_staged(
        dataset,
        PipelineConfig::new(dataset.width(), dataset.height(), baseline),
        rpr_stream::StreamConfig::blocking(),
    )
    .0
}

/// Runs the face workload with an explicit pipeline configuration.
pub fn run_face_with(dataset: &FaceDataset, cfg: PipelineConfig) -> FaceOutcome {
    let mut pipeline = Pipeline::new(cfg);
    let frame_area = u64::from(dataset.width()) * u64::from(dataset.height());
    let mut policy_detections: Vec<(Rect, f64)> = Vec::new();
    let mut prev_boxes: Vec<Rect> = Vec::new();
    let mut frames_eval = Vec::new();

    for t in 0..dataset.len() {
        let raw = dataset.frame(t);
        let processed = pipeline.process_frame(&raw, Vec::new(), policy_detections.clone());

        // Faces: bright blobs of face-like area and aspect ratio, with
        // resolved facial structure. A real face detector keys on the
        // dark eye/mouth pattern; blur or downscaling erases it, which
        // is the paper's FCL accuracy-loss mechanism.
        let detections: Vec<(Rect, f64)> = detect_blobs(&processed, 150, frame_area / 900)
            .into_iter()
            .filter(|b| {
                let aspect = f64::from(b.bbox.h) / f64::from(b.bbox.w.max(1));
                b.area < frame_area / 6
                    && (0.6..=2.2).contains(&aspect)
                    && eye_mouth_fraction(&processed, &b.bbox) >= 0.025
            })
            .map(|b| (b.bbox, b.area as f64))
            .collect();
        let gts = dataset.gt_bboxes(t);
        frames_eval.push((detections.clone(), gts));

        let boxes: Vec<Rect> = detections.iter().map(|(r, _)| *r).collect();
        policy_detections = detection_displacements(&boxes, &prev_boxes, 8.0);
        prev_boxes = boxes;
    }

    let map = mean_average_precision(&frames_eval, 0.5);
    let per_frame_ap = frames_eval
        .iter()
        .map(|(d, g)| rpr_vision::average_precision(d, g, 0.5))
        .collect();
    FaceOutcome { map, per_frame_ap, measurements: pipeline.finish() }
}

/// Fraction of dark (eye/mouth) pixels inside the inscribed ellipse of
/// a candidate box — the facial-structure proxy. Pixels outside the
/// ellipse (background corners) are excluded.
pub(crate) fn eye_mouth_fraction(frame: &rpr_frame::GrayFrame, bbox: &Rect) -> f64 {
    let (cx, cy) = bbox.center();
    let hw = f64::from(bbox.w) / 2.0;
    let hh = f64::from(bbox.h) / 2.0;
    let mut dark = 0u64;
    let mut total = 0u64;
    for y in bbox.y..bbox.bottom().min(frame.height()) {
        for x in bbox.x..bbox.right().min(frame.width()) {
            let nx = (f64::from(x) - cx) / hw.max(1.0);
            let ny = (f64::from(y) - cy) / hh.max(1.0);
            if nx * nx + ny * ny > 0.8 {
                continue;
            }
            total += 1;
            if frame.get(x, y).unwrap_or(255) < 80 {
                dark += 1;
            }
        }
    }
    dark as f64 / total.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> FaceDataset {
        FaceDataset::new(192, 144, 24, 3, 21)
    }

    #[test]
    fn fch_detects_faces_well() {
        let out = run_face(&dataset(), Baseline::Fch);
        assert!(out.map > 0.6, "FCH mAP {}", out.map);
    }

    #[test]
    fn rp_reduces_traffic_with_bounded_loss() {
        let ds = dataset();
        let fch = run_face(&ds, Baseline::Fch);
        let rp = run_face(&ds, Baseline::Rp { cycle_length: 5 });
        assert!(
            rp.measurements.traffic.write_bytes < fch.measurements.traffic.write_bytes
        );
        assert!(rp.map > fch.map * 0.5, "RP mAP {} vs FCH {}", rp.map, fch.map);
    }

    #[test]
    fn higher_cycle_length_discards_more() {
        let ds = FaceDataset::new(192, 144, 31, 3, 22);
        let rp5 = run_face(&ds, Baseline::Rp { cycle_length: 5 });
        let rp15 = run_face(&ds, Baseline::Rp { cycle_length: 15 });
        assert!(
            rp15.measurements.traffic.write_bytes < rp5.measurements.traffic.write_bytes,
            "RP15 {} vs RP5 {}",
            rp15.measurements.traffic.write_bytes,
            rp5.measurements.traffic.write_bytes
        );
    }
}

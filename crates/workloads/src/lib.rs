//! The paper's evaluation workloads, baselines, and experiment runner.
//!
//! Three vision tasks (paper Table 3) run over procedurally generated
//! benchmark videos with exact ground truth:
//!
//! * **Visual SLAM** — ORB-style visual odometry over a textured world,
//!   measured by absolute trajectory error and relative pose error;
//! * **Human pose estimation** — skeleton tracking, measured by
//!   IoU-based mean average precision;
//! * **Face detection** — face tracking through a choke-point scene,
//!   measured by mAP.
//!
//! Each task runs under the paper's baselines (§5.3): frame-based
//! computing at high (`FCH`) and low (`FCL`) resolution, rhythmic pixel
//! regions at cycle lengths 5/10/15 (`RPx`), a ≤16-region multi-ROI
//! camera emulation, and an H.264 compression model. The
//! [`runner`] module glues datasets, policies, the encoder/decoder, and
//! the memory simulator into per-baseline experiment results; those
//! results are what the `rpr-bench` binaries print as the paper's
//! tables and figures.

#![deny(missing_docs)]

pub mod baselines;
pub mod datasets;
pub mod h264;
pub mod progression;
pub mod replay;
pub mod runner;
pub mod staged;
pub mod stats;
pub mod tasks;
pub mod tracking;

pub use baselines::Baseline;
pub use datasets::{FaceDataset, MovingCameraDataset, PoseDataset, SlamDataset};
pub use h264::{H264Model, H264Quality};
pub use progression::progression_series;
pub use replay::{
    record_face, record_pose, record_slam, replay_task_inputs, replay_task_inputs_with_mode,
    replay_through_task, Recorder,
};
pub use runner::{EncodedTap, ExperimentResult, Measurements, Pipeline, PipelineConfig, PolicyKind};
pub use staged::{
    face_outcome, face_spec, pose_outcome, pose_spec, run_face_staged, run_pose_staged,
    run_slam_staged, slam_outcome, slam_spec, DatasetSource, FaceSpec, FaceTask, PipelineCapture,
    PoseSpec, PoseTask, SlamSpec, SlamTask, SlamTrack,
};
pub use stats::{RegionStats, RegionStatsCollector};
pub use tracking::{run_tracking, TrackingConfig, TrackingResult};

//! The moving-camera tracking runner: drives a [`MovingCameraDataset`]
//! through a rhythmic [`Pipeline`] with an oracle tracker whose vision
//! is gated by the pixels the policy actually captured, and scores the
//! planned regions against the ground-truth object tracks.
//!
//! The task model isolates the policy's lag: the tracker re-detects an
//! object perfectly whenever the planned regions cover at least half of
//! it (fresh pixels), and otherwise keeps believing the last place it
//! saw the object — exactly how a detector behind a reactive t−1
//! region policy drifts off a moving-camera scene.

use crate::datasets::{MovingCameraDataset, VideoDataset};
use crate::{Baseline, Measurements, Pipeline, PipelineConfig, PolicyKind};
use rpr_core::FeaturePolicyParams;
use rpr_frame::Rect;
use rpr_trace::PredictionSection;

/// Configuration for one tracking run.
#[derive(Debug, Clone, Copy)]
pub struct TrackingConfig {
    /// Full captures every `cycle_length` frames.
    pub cycle_length: u64,
    /// The region policy under test (reactive `CycleFeature` vs
    /// `CyclePredictive` is the headline comparison).
    pub policy_kind: PolicyKind,
    /// Detection margin in pixels. The reactive policy only lags
    /// visibly when per-frame apparent motion exceeds this.
    pub margin: u32,
}

impl Default for TrackingConfig {
    fn default() -> Self {
        TrackingConfig { cycle_length: 4, policy_kind: PolicyKind::CycleFeature, margin: 4 }
    }
}

/// Outcome of one tracking run: prediction quality plus the usual
/// memory-side measurements.
#[derive(Debug, Clone)]
pub struct TrackingResult {
    /// Mean best-IoU of planned regions vs ground-truth tracks over
    /// scored regional frames.
    pub mean_region_iou: f64,
    /// Regional frames that had ground truth to score against.
    pub frames_scored: u64,
    /// Mean RANSAC inlier fraction of the ego fits (0 when the run
    /// never fitted one — e.g. for reactive policies).
    pub mean_inlier_fraction: f64,
    /// Full-resolution-equivalent pixels kept by the planned regions
    /// over scored frames — the high-resolution pixel budget.
    pub hi_res_pixels: u64,
    /// Memory-side measurements of the run.
    pub measurements: Measurements,
}

impl TrackingResult {
    /// The run's [`PredictionSection`] for a `RunReport`.
    pub fn prediction_section(&self) -> PredictionSection {
        PredictionSection {
            mean_region_iou: self.mean_region_iou,
            frames_scored: self.frames_scored,
            mean_inlier_fraction: self.mean_inlier_fraction,
            hi_res_pixels: self.hi_res_pixels,
        }
    }
}

/// Fraction of `target` covered by the best single rect in `rects`.
fn coverage(rects: &[Rect], target: &Rect) -> f64 {
    let best = rects
        .iter()
        .filter_map(|r| r.intersection(target))
        .map(|i| i.area())
        .max()
        .unwrap_or(0);
    best as f64 / target.area().max(1) as f64
}

/// Best IoU any rect in `rects` achieves against `target`.
fn best_iou(rects: &[Rect], target: &Rect) -> f64 {
    rects.iter().map(|r| r.iou(target)).fold(0.0, f64::max)
}

/// Runs `ds` through a rhythmic pipeline under `cfg`, scoring planned
/// regions against the dataset's ground-truth object tracks.
pub fn run_tracking(ds: &MovingCameraDataset, cfg: &TrackingConfig) -> TrackingResult {
    let params = FeaturePolicyParams { margin: cfg.margin, ..Default::default() };
    let mut pipe_cfg =
        PipelineConfig::new(ds.width(), ds.height(), Baseline::Rp { cycle_length: cfg.cycle_length })
            .with_policy(cfg.policy_kind);
    pipe_cfg.policy_params = params;
    let mut pipeline = Pipeline::new(pipe_cfg);

    // On a moving camera everything is displaced every frame, so the
    // tracker reports every box as fast-moving (skip 1).
    let displacement = params.fast_displacement.max(4.0);

    let mut believed: Vec<Rect> = Vec::new();
    let mut iou_sum = 0.0;
    let mut frames_scored = 0u64;
    let mut hi_res_pixels = 0u64;
    let mut inlier_sum = 0.0;
    let mut inlier_samples = 0u64;

    for idx in 0..ds.len() {
        let frame = ds.frame(idx);
        let full_capture = pipeline.next_is_full_capture();
        let detections: Vec<(Rect, f64)> =
            believed.iter().map(|b| (*b, displacement)).collect();
        let _ = pipeline.process_frame(&frame, Vec::new(), detections);

        let planned: Vec<Rect> =
            pipeline.planned_regions().iter().map(|r| r.rect()).collect();
        let gt = ds.gt_object_tracks(idx);

        if !full_capture {
            if !gt.is_empty() {
                let frame_iou =
                    gt.iter().map(|g| best_iou(&planned, g)).sum::<f64>() / gt.len() as f64;
                iou_sum += frame_iou;
                frames_scored += 1;
                rpr_trace::counter_for_frame(
                    rpr_trace::names::PREDICT_REGION_IOU,
                    "predict",
                    idx as u64,
                    frame_iou,
                );
            }
            hi_res_pixels += pipeline
                .planned_regions()
                .iter()
                .map(|l| l.kept_pixels())
                .sum::<u64>();
        }
        // Only fits that consumed vectors count: frames where gating
        // left nothing fall back to identity and carry no signal.
        if let Some(state) = pipeline.motion().and_then(|m| m.snapshot()) {
            if state.ego.total > 0 {
                inlier_sum += state.ego.confidence;
                inlier_samples += 1;
            }
        }

        // Tracker update: objects whose pixels were captured (or a full
        // frame) re-detect exactly; lost objects keep their stale box.
        let mut next: Vec<Rect> = gt
            .iter()
            .filter(|g| full_capture || coverage(&planned, g) >= 0.5)
            .copied()
            .collect();
        for b in &believed {
            if !next.iter().any(|n| n.intersection(b).is_some()) {
                next.push(*b);
            }
        }
        believed = next;
    }

    let measurements = pipeline.finish();
    TrackingResult {
        mean_region_iou: if frames_scored == 0 { 0.0 } else { iou_sum / frames_scored as f64 },
        frames_scored,
        mean_inlier_fraction: if inlier_samples == 0 {
            0.0
        } else {
            inlier_sum / inlier_samples as f64
        },
        hi_res_pixels,
        measurements,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_sensor::Trajectory;

    fn reactive() -> TrackingConfig {
        TrackingConfig::default()
    }

    fn predictive() -> TrackingConfig {
        TrackingConfig { policy_kind: PolicyKind::CyclePredictive, ..TrackingConfig::default() }
    }

    #[test]
    fn predictive_beats_reactive_on_a_pan_at_no_extra_budget() {
        // 7 px/frame pan against a 4 px detection margin: the reactive
        // policy's labels trail the scene every regional frame.
        let ds = MovingCameraDataset::panning(192, 144, 36, 7.0, 11);
        let r = run_tracking(&ds, &reactive());
        let p = run_tracking(&ds, &predictive());
        assert_eq!(r.frames_scored, p.frames_scored);
        assert!(r.frames_scored > 10, "scored {}", r.frames_scored);
        assert!(
            p.mean_region_iou > r.mean_region_iou,
            "predictive {:.4} vs reactive {:.4}",
            p.mean_region_iou,
            r.mean_region_iou
        );
        assert!(
            p.hi_res_pixels <= r.hi_res_pixels,
            "predictive {} px vs reactive {} px",
            p.hi_res_pixels,
            r.hi_res_pixels
        );
        assert!(p.mean_inlier_fraction > 0.5, "inliers {}", p.mean_inlier_fraction);
        assert_eq!(r.mean_inlier_fraction, 0.0, "reactive runs no ego fit");
    }

    #[test]
    fn static_camera_prediction_is_a_noop() {
        // A zero-velocity "pan" with frozen objects: nothing moves, so
        // the predictive wrapper must plan the same regions as the
        // reactive policy.
        let ds = MovingCameraDataset::panning(160, 120, 24, 0.0, 3).with_static_objects();
        assert!(ds.trajectory().mean_speed() < 1e-9);
        let r = run_tracking(&ds, &reactive());
        let p = run_tracking(&ds, &predictive());
        assert!(
            (r.mean_region_iou - p.mean_region_iou).abs() < 1e-6,
            "reactive {:.4} predictive {:.4}",
            r.mean_region_iou,
            p.mean_region_iou
        );
        assert_eq!(r.hi_res_pixels, p.hi_res_pixels);
    }

    #[test]
    fn result_converts_to_prediction_section() {
        let ds = MovingCameraDataset::panning(128, 96, 12, 3.0, 5);
        let res = run_tracking(&ds, &predictive());
        let sec = res.prediction_section();
        assert_eq!(sec.mean_region_iou, res.mean_region_iou);
        assert_eq!(sec.frames_scored, res.frames_scored);
        assert_eq!(sec.hi_res_pixels, res.hi_res_pixels);
    }

    #[test]
    fn handheld_jitter_does_not_break_tracking() {
        let ds = MovingCameraDataset::handheld(160, 120, 24, 4.0, 9);
        let p = run_tracking(&ds, &predictive());
        assert!(p.frames_scored > 0);
        assert!(p.mean_region_iou > 0.0, "iou {}", p.mean_region_iou);
    }

    #[test]
    fn empty_trajectory_scores_nothing() {
        let empty = MovingCameraDataset::panning(128, 96, 0, 2.0, 7);
        assert_eq!(empty.len(), 0);
        assert!(Trajectory::from_poses(Vec::new()).is_empty());
        let res = run_tracking(&empty, &predictive());
        assert_eq!(res.frames_scored, 0);
        assert_eq!(res.mean_region_iou, 0.0);
    }
}

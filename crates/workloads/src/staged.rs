//! The workloads as staged streams: adapters that plug the experiment
//! [`Pipeline`] and the three vision tasks into `rpr-stream`'s stage
//! contracts, plus one-call staged runners.
//!
//! Under [`StreamConfig`]'s blocking default the staged runners are
//! bit-identical to the synchronous `run_*_with` reference loops (the
//! feedback edge keeps capture and task in lock-step), which is
//! asserted by this module's tests and the workspace property tests.
//! The payoff is the multi-camera shape: `*_spec` constructors build
//! [`StreamSpec`]s that a [`rpr_stream::StreamManager`] can multiplex
//! over a shared worker pool.

use crate::datasets::{FaceDataset, PoseDataset, SlamDataset, VideoDataset};
use crate::runner::{Measurements, Pipeline, PipelineConfig};
use crate::tasks::face::eye_mouth_fraction;
use crate::tasks::pose::crisp_fraction;
use crate::tasks::slam::wrap_angle;
use crate::tasks::{detection_displacements, FaceOutcome, PoseOutcome, SlamOutcome};
use rpr_core::Feature;
use rpr_frame::{GrayFrame, Rect};
use rpr_sensor::CameraPose;
use rpr_stream::{
    run_stream, CaptureStage, Feedback, FrameSource, StreamConfig, StreamResult, StreamSpec,
    StreamTelemetry, TaskStage,
};
use rpr_vision::{
    ate_rmse, detect_blobs, estimate_rigid_motion, match_descriptors, mean_average_precision,
    relative_pose_error, OrbConfig, OrbDetector, OrbFeature, Pose2d,
};

/// A [`FrameSource`] that renders a dataset's frames in order.
#[derive(Debug)]
pub struct DatasetSource<'a, D> {
    dataset: &'a D,
    next: usize,
}

impl<'a, D: VideoDataset> DatasetSource<'a, D> {
    /// A source starting at the dataset's first frame.
    pub fn new(dataset: &'a D) -> Self {
        DatasetSource { dataset, next: 0 }
    }
}

impl<D: VideoDataset + Sync> FrameSource for DatasetSource<'_, D> {
    type Frame = GrayFrame;

    fn next_frame(&mut self) -> Option<GrayFrame> {
        if self.next >= self.dataset.len() {
            return None;
        }
        let frame = self.dataset.frame(self.next);
        self.next += 1;
        Some(frame)
    }
}

/// The experiment [`Pipeline`] as a [`CaptureStage`]: region policy,
/// rhythmic encoder, traffic accounting, and decoder in one stage.
///
/// When the executor signals `degraded` (queue pressure under
/// [`rpr_stream::BackpressureMode::Degrade`]) the stage drops the
/// frame's feedback, so the policy plans no task-guided regions — the
/// lowest-rhythm capture the policy allows.
#[derive(Debug)]
pub struct PipelineCapture {
    pipeline: Pipeline,
}

impl PipelineCapture {
    /// Wraps a fresh pipeline for `cfg`.
    pub fn new(cfg: PipelineConfig) -> Self {
        PipelineCapture { pipeline: Pipeline::new(cfg) }
    }

    /// Wraps an existing pipeline — e.g. one with a recording tap
    /// installed ([`Pipeline::set_encoded_tap`]).
    pub fn from_pipeline(pipeline: Pipeline) -> Self {
        PipelineCapture { pipeline }
    }
}

impl CaptureStage for PipelineCapture {
    type Frame = GrayFrame;
    type Output = GrayFrame;
    type Summary = Measurements;

    fn process(&mut self, frame: GrayFrame, feedback: &Feedback, degraded: bool) -> GrayFrame {
        let (features, detections) = if degraded {
            (Vec::new(), Vec::new())
        } else {
            (feedback.features.clone(), feedback.detections.clone())
        };
        self.pipeline.process_frame(&frame, features, detections)
    }

    fn finish(self) -> Measurements {
        self.pipeline.finish()
    }
}

/// Per-frame evaluation pairs: (scored detections, ground-truth boxes).
pub type FramesEval = Vec<(Vec<(Rect, f64)>, Vec<Rect>)>;

/// The face-detection loop as a [`TaskStage`] (mirrors
/// [`crate::tasks::run_face_with`] frame for frame).
#[derive(Debug)]
pub struct FaceTask<'a> {
    dataset: &'a FaceDataset,
    frame_area: u64,
    prev_boxes: Vec<Rect>,
    frames_eval: FramesEval,
}

impl<'a> FaceTask<'a> {
    /// A task evaluating against `dataset`'s ground truth.
    pub fn new(dataset: &'a FaceDataset) -> Self {
        FaceTask {
            dataset,
            frame_area: u64::from(dataset.width()) * u64::from(dataset.height()),
            prev_boxes: Vec::new(),
            frames_eval: Vec::new(),
        }
    }
}

impl TaskStage for FaceTask<'_> {
    type Input = GrayFrame;
    type Output = FramesEval;

    fn consume(&mut self, frame_idx: u64, processed: GrayFrame) -> Feedback {
        let frame_area = self.frame_area;
        let detections: Vec<(Rect, f64)> = detect_blobs(&processed, 150, frame_area / 900)
            .into_iter()
            .filter(|b| {
                let aspect = f64::from(b.bbox.h) / f64::from(b.bbox.w.max(1));
                b.area < frame_area / 6
                    && (0.6..=2.2).contains(&aspect)
                    && eye_mouth_fraction(&processed, &b.bbox) >= 0.025
            })
            .map(|b| (b.bbox, b.area as f64))
            .collect();
        let gts = self.dataset.gt_bboxes(frame_idx as usize);
        self.frames_eval.push((detections.clone(), gts));

        let boxes: Vec<Rect> = detections.iter().map(|(r, _)| *r).collect();
        let policy_detections = detection_displacements(&boxes, &self.prev_boxes, 8.0);
        self.prev_boxes = boxes;
        Feedback { features: Vec::new(), detections: policy_detections }
    }

    fn finish(self) -> FramesEval {
        self.frames_eval
    }
}

/// The pose-estimation loop as a [`TaskStage`] (mirrors
/// [`crate::tasks::run_pose_with`] frame for frame).
#[derive(Debug)]
pub struct PoseTask<'a> {
    dataset: &'a PoseDataset,
    min_area: u64,
    prev_boxes: Vec<Rect>,
    frames_eval: FramesEval,
}

impl<'a> PoseTask<'a> {
    /// A task evaluating against `dataset`'s ground truth.
    pub fn new(dataset: &'a PoseDataset) -> Self {
        PoseTask {
            dataset,
            min_area: u64::from(dataset.width()) * u64::from(dataset.height()) / 600,
            prev_boxes: Vec::new(),
            frames_eval: Vec::new(),
        }
    }
}

impl TaskStage for PoseTask<'_> {
    type Input = GrayFrame;
    type Output = FramesEval;

    fn consume(&mut self, frame_idx: u64, processed: GrayFrame) -> Feedback {
        let blobs = detect_blobs(&processed, 150, self.min_area.max(8));
        let detections: Vec<(Rect, f64)> = blobs
            .first()
            .filter(|b| crisp_fraction(&processed, &b.bbox) >= 0.08)
            .map(|b| (b.bbox, b.area as f64))
            .into_iter()
            .collect();
        let gts = vec![self.dataset.gt_bbox(frame_idx as usize)];
        self.frames_eval.push((detections.clone(), gts));

        let boxes: Vec<Rect> = detections.iter().map(|(r, _)| *r).collect();
        let policy_detections = detection_displacements(&boxes, &self.prev_boxes, 8.0)
            .into_iter()
            .map(|(r, d)| (r, d * 2.0))
            .collect();
        self.prev_boxes = boxes;
        Feedback { features: Vec::new(), detections: policy_detections }
    }

    fn finish(self) -> FramesEval {
        self.frames_eval
    }
}

/// What the staged SLAM task accumulates: the estimated trajectory (in
/// pixels) and the count of constant-velocity fallbacks.
#[derive(Debug, Clone)]
pub struct SlamTrack {
    /// Estimated camera poses, one per processed frame.
    pub estimated: Vec<CameraPose>,
    /// Frames where motion estimation fell back to constant velocity.
    pub tracking_failures: u32,
}

/// The visual-odometry loop as a [`TaskStage`] (mirrors
/// [`crate::tasks::run_slam_with`] frame for frame).
pub struct SlamTask {
    orb: OrbDetector,
    cx: f64,
    cy: f64,
    prev_features: Vec<OrbFeature>,
    estimated: Vec<CameraPose>,
    tracking_failures: u32,
    /// Frames consumed so far; equals the dataset index under blocking
    /// backpressure, and keeps the trajectory indices consistent even
    /// when upstream frames were dropped.
    processed: usize,
}

impl std::fmt::Debug for SlamTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlamTask")
            .field("processed", &self.processed)
            .field("tracking_failures", &self.tracking_failures)
            .finish()
    }
}

impl SlamTask {
    /// A task tracking against `dataset`'s geometry.
    pub fn new(dataset: &SlamDataset) -> Self {
        let area = u64::from(dataset.width()) * u64::from(dataset.height());
        let n_features = (area / 1400).clamp(60, 1500) as usize;
        SlamTask {
            orb: OrbDetector::new(OrbConfig { n_features, ..OrbConfig::default() }),
            cx: f64::from(dataset.width()) / 2.0,
            cy: f64::from(dataset.height()) / 2.0,
            prev_features: Vec::new(),
            estimated: vec![dataset.gt_pose(0)],
            tracking_failures: 0,
            processed: 0,
        }
    }
}

impl TaskStage for SlamTask {
    type Input = GrayFrame;
    type Output = SlamTrack;

    fn consume(&mut self, _frame_idx: u64, processed: GrayFrame) -> Feedback {
        let t = self.processed;
        let features = self.orb.detect(&processed);

        let mut displacement_of: Vec<Option<f64>> = vec![None; features.len()];
        if t > 0 {
            let matches = match_descriptors(&self.prev_features, &features, 64, 0.8);
            let pairs: Vec<((f64, f64), (f64, f64))> = matches
                .iter()
                .map(|m| {
                    let p = self.prev_features[m.query].keypoint;
                    let q = features[m.train].keypoint;
                    ((p.x - self.cx, p.y - self.cy), (q.x - self.cx, q.y - self.cy))
                })
                .collect();
            for m in &matches {
                let p = self.prev_features[m.query].keypoint;
                let q = features[m.train].keypoint;
                displacement_of[m.train] = Some(p.distance(&q));
            }

            let prev_pose = self.estimated[t - 1];
            let estimate = estimate_rigid_motion(&pairs, 150, 2.0, 0xB0B + t as u64)
                .filter(|(_, inliers)| inliers.len() >= 8);
            let next = match estimate {
                Some((rigid, _)) => {
                    let theta = wrap_angle(prev_pose.theta - rigid.theta);
                    let (s, c) = theta.sin_cos();
                    CameraPose::new(
                        prev_pose.x - (c * rigid.tx - s * rigid.ty),
                        prev_pose.y - (s * rigid.tx + c * rigid.ty),
                        theta,
                    )
                }
                None => {
                    self.tracking_failures += 1;
                    if t >= 2 {
                        let before = self.estimated[t - 2];
                        CameraPose::new(
                            2.0 * prev_pose.x - before.x,
                            2.0 * prev_pose.y - before.y,
                            wrap_angle(2.0 * prev_pose.theta - before.theta),
                        )
                    } else {
                        prev_pose
                    }
                }
            };
            self.estimated.push(next);
        }

        let policy_features = features
            .iter()
            .enumerate()
            .map(|(i, f)| Feature {
                x: f.keypoint.x,
                y: f.keypoint.y,
                size: f.keypoint.size,
                octave: f.keypoint.octave,
                displacement: displacement_of[i].unwrap_or(8.0),
            })
            .collect();
        self.prev_features = features;
        self.processed += 1;
        Feedback { features: policy_features, detections: Vec::new() }
    }

    fn finish(self) -> SlamTrack {
        SlamTrack { estimated: self.estimated, tracking_failures: self.tracking_failures }
    }
}

/// A ready-to-run face-detection stream.
pub type FaceSpec<'a> = StreamSpec<DatasetSource<'a, FaceDataset>, PipelineCapture, FaceTask<'a>>;
/// A ready-to-run pose-estimation stream.
pub type PoseSpec<'a> = StreamSpec<DatasetSource<'a, PoseDataset>, PipelineCapture, PoseTask<'a>>;
/// A ready-to-run visual-SLAM stream.
pub type SlamSpec<'a> = StreamSpec<DatasetSource<'a, SlamDataset>, PipelineCapture, SlamTask>;

/// Builds a face-detection stream spec (for [`rpr_stream::StreamManager`]).
pub fn face_spec<'a>(
    dataset: &'a FaceDataset,
    cfg: PipelineConfig,
    stream: StreamConfig,
) -> FaceSpec<'a> {
    StreamSpec::new(DatasetSource::new(dataset), PipelineCapture::new(cfg), FaceTask::new(dataset))
        .with_config(stream)
}

/// Builds a pose-estimation stream spec.
pub fn pose_spec<'a>(
    dataset: &'a PoseDataset,
    cfg: PipelineConfig,
    stream: StreamConfig,
) -> PoseSpec<'a> {
    StreamSpec::new(DatasetSource::new(dataset), PipelineCapture::new(cfg), PoseTask::new(dataset))
        .with_config(stream)
}

/// Builds a visual-SLAM stream spec.
pub fn slam_spec<'a>(
    dataset: &'a SlamDataset,
    cfg: PipelineConfig,
    stream: StreamConfig,
) -> SlamSpec<'a> {
    StreamSpec::new(DatasetSource::new(dataset), PipelineCapture::new(cfg), SlamTask::new(dataset))
        .with_config(stream)
}

/// Assembles a [`FaceOutcome`] from a completed face stream.
pub fn face_outcome(result: StreamResult<Measurements, FramesEval>) -> FaceOutcome {
    let frames_eval = result.task;
    let map = mean_average_precision(&frames_eval, 0.5);
    let per_frame_ap = frames_eval
        .iter()
        .map(|(d, g)| rpr_vision::average_precision(d, g, 0.5))
        .collect();
    FaceOutcome { map, per_frame_ap, measurements: result.capture }
}

/// Assembles a [`PoseOutcome`] from a completed pose stream.
pub fn pose_outcome(result: StreamResult<Measurements, FramesEval>) -> PoseOutcome {
    let frames_eval = result.task;
    let map = mean_average_precision(&frames_eval, 0.5);
    let per_frame_ap = frames_eval
        .iter()
        .map(|(d, g)| rpr_vision::average_precision(d, g, 0.5))
        .collect();
    PoseOutcome { map, per_frame_ap, measurements: result.capture }
}

/// Assembles a [`SlamOutcome`] from a completed SLAM stream.
pub fn slam_outcome(dataset: &SlamDataset, result: StreamResult<Measurements, SlamTrack>) -> SlamOutcome {
    let mm = dataset.mm_per_px;
    let estimated_mm: Vec<Pose2d> = result
        .task
        .estimated
        .iter()
        .map(|p| Pose2d::new(p.x * mm, p.y * mm, p.theta))
        .collect();
    let gt_mm = dataset.gt_trajectory_mm();
    let ate = ate_rmse(&estimated_mm, &gt_mm).unwrap_or(f64::NAN);
    let rpe = relative_pose_error(&estimated_mm, &gt_mm, 1);
    SlamOutcome {
        ate_mm: ate,
        rpe_translational_mm: rpe.map_or(f64::NAN, |r| r.translational_rmse),
        rpe_rotational_deg: rpe.map_or(f64::NAN, |r| r.rotational_rmse.to_degrees()),
        tracking_failures: result.task.tracking_failures,
        estimated_mm,
        measurements: result.capture,
    }
}

/// Runs the face workload through the staged executor as one stream,
/// returning the outcome plus the stream's telemetry.
pub fn run_face_staged(
    dataset: &FaceDataset,
    cfg: PipelineConfig,
    stream: StreamConfig,
) -> (FaceOutcome, StreamTelemetry) {
    let spec = face_spec(dataset, cfg, stream);
    let result = run_stream(0, spec.source, spec.capture, spec.task, spec.config);
    let telemetry = result.telemetry.clone();
    (face_outcome(result), telemetry)
}

/// Runs the pose workload through the staged executor as one stream.
pub fn run_pose_staged(
    dataset: &PoseDataset,
    cfg: PipelineConfig,
    stream: StreamConfig,
) -> (PoseOutcome, StreamTelemetry) {
    let spec = pose_spec(dataset, cfg, stream);
    let result = run_stream(0, spec.source, spec.capture, spec.task, spec.config);
    let telemetry = result.telemetry.clone();
    (pose_outcome(result), telemetry)
}

/// Runs the SLAM workload through the staged executor as one stream.
pub fn run_slam_staged(
    dataset: &SlamDataset,
    cfg: PipelineConfig,
    stream: StreamConfig,
) -> (SlamOutcome, StreamTelemetry) {
    let spec = slam_spec(dataset, cfg, stream);
    let result = run_stream(0, spec.source, spec.capture, spec.task, spec.config);
    let telemetry = result.telemetry.clone();
    (slam_outcome(dataset, result), telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{run_face_with, run_pose_with, run_slam_with};
    use crate::Baseline;

    /// Byte-identical equivalence between the staged executor (Block
    /// mode) and the synchronous reference loop, via serialized JSON.
    #[test]
    fn staged_face_matches_synchronous_exactly() {
        let ds = FaceDataset::new(128, 96, 12, 2, 5);
        let cfg = PipelineConfig::new(128, 96, Baseline::Rp { cycle_length: 5 });
        let sync = run_face_with(&ds, cfg);
        let (staged, telemetry) = run_face_staged(&ds, cfg, StreamConfig::blocking());
        assert_eq!(
            serde_json::to_string(&staged).unwrap(),
            serde_json::to_string(&sync).unwrap()
        );
        assert_eq!(telemetry.frames_in, 12);
        assert_eq!(telemetry.frames_out, 12);
        assert_eq!(telemetry.frames_dropped, 0);
    }

    #[test]
    fn staged_pose_matches_synchronous_exactly() {
        let ds = PoseDataset::new(128, 96, 10, 3);
        let cfg = PipelineConfig::new(128, 96, Baseline::Rp { cycle_length: 5 });
        let sync = run_pose_with(&ds, cfg);
        let (staged, _) = run_pose_staged(&ds, cfg, StreamConfig::blocking());
        assert_eq!(
            serde_json::to_string(&staged).unwrap(),
            serde_json::to_string(&sync).unwrap()
        );
    }

    #[test]
    fn staged_slam_matches_synchronous_exactly() {
        let ds = SlamDataset::new(128, 96, 10, 7);
        let cfg = PipelineConfig::new(128, 96, Baseline::Rp { cycle_length: 5 });
        let sync = run_slam_with(&ds, cfg);
        let (staged, _) = run_slam_staged(&ds, cfg, StreamConfig::blocking());
        assert_eq!(
            serde_json::to_string(&staged).unwrap(),
            serde_json::to_string(&sync).unwrap()
        );
    }

    #[test]
    fn degrade_mode_still_processes_every_frame() {
        let ds = PoseDataset::new(128, 96, 10, 3);
        let cfg = PipelineConfig::new(128, 96, Baseline::Rp { cycle_length: 5 });
        let stream = StreamConfig { raw_capacity: 1, proc_capacity: 1, ..Default::default() }
            .with_backpressure(rpr_stream::BackpressureMode::Degrade);
        let (out, telemetry) = run_pose_staged(&ds, cfg, stream);
        assert_eq!(telemetry.frames_out, 10, "degrade never drops frames");
        assert_eq!(out.per_frame_ap.len(), 10);
    }
}

use super::VideoDataset;
use rpr_frame::{GrayFrame, Plane, Rect};
use rpr_sensor::ValueNoise;

/// Joint labels of the synthetic skeleton, head to ankles.
const JOINTS: usize = 13;

/// A posed skeleton: 13 joints in image coordinates
/// (head, neck, 2 shoulders, 2 elbows, 2 wrists, 2 hips, 2 knees,
/// 2 ankles — head and neck share the top slots).
#[derive(Debug, Clone, PartialEq)]
pub struct Skeleton {
    /// Joint positions `(x, y)` in image coordinates.
    pub joints: [(f64, f64); JOINTS],
}

impl Skeleton {
    /// Bones as index pairs into [`Skeleton::joints`].
    pub const BONES: [(usize, usize); 12] = [
        (0, 1),   // head - neck
        (1, 2),   // neck - left shoulder
        (1, 3),   // neck - right shoulder
        (2, 4),   // left shoulder - elbow
        (3, 5),   // right shoulder - elbow
        (4, 6),   // left elbow - wrist
        (5, 7),   // right elbow - wrist
        (1, 8),   // neck - left hip
        (1, 9),   // neck - right hip
        (8, 10),  // left hip - knee
        (9, 11),  // right hip - knee
        (10, 12), // left knee - ankle
    ];

    /// Tight bounding box around all joints, padded by `margin`,
    /// clamped to a `w x h` frame.
    pub fn bbox(&self, margin: f64, w: u32, h: u32) -> Rect {
        let min_x = self.joints.iter().map(|j| j.0).fold(f64::MAX, f64::min) - margin;
        let max_x = self.joints.iter().map(|j| j.0).fold(f64::MIN, f64::max) + margin;
        let min_y = self.joints.iter().map(|j| j.1).fold(f64::MAX, f64::min) - margin;
        let max_y = self.joints.iter().map(|j| j.1).fold(f64::MIN, f64::max) + margin;
        let x0 = min_x.max(0.0) as u32;
        let y0 = min_y.max(0.0) as u32;
        let x1 = (max_x.min(f64::from(w))).max(0.0) as u32;
        let y1 = (max_y.min(f64::from(h))).max(0.0) as u32;
        Rect::new(x0, y0, x1.saturating_sub(x0).max(1), y1.saturating_sub(y0).max(1))
    }
}

/// The human-pose benchmark: an articulated stick figure walking across
/// a mildly textured background — the stand-in for PoseTrack 2017
/// (§5.3). Ground truth is the exact skeleton per frame.
///
/// # Example
///
/// ```
/// use rpr_workloads::datasets::{PoseDataset, VideoDataset};
///
/// let ds = PoseDataset::new(192, 144, 8, 3);
/// let skel = ds.gt_skeleton(0);
/// let bbox = skel.bbox(6.0, 192, 144);
/// assert!(bbox.w > 10 && bbox.h > 20);
/// ```
#[derive(Debug, Clone)]
pub struct PoseDataset {
    name: String,
    width: u32,
    height: u32,
    frames: usize,
    seed: u64,
}

impl PoseDataset {
    /// Creates a sequence.
    pub fn new(width: u32, height: u32, frames: usize, seed: u64) -> Self {
        PoseDataset { name: format!("pose-seq{seed}"), width, height, frames, seed }
    }

    /// Ground-truth skeleton of frame `idx`.
    pub fn gt_skeleton(&self, idx: usize) -> Skeleton {
        let t = idx as f64;
        let w = f64::from(self.width);
        let h = f64::from(self.height);
        // Body scale relative to the frame.
        let s = h / 4.0;
        // Walk across the frame and back (triangle wave), with gait sway.
        let period = 3.0 * w;
        let raw = (t * 1.5 + (self.seed % 97) as f64).rem_euclid(period);
        let cx = if raw < period / 2.0 { raw } else { period - raw } / (period / 2.0)
            * (w * 0.6)
            + w * 0.2;
        let cy = h * 0.45 + (t * 0.21).sin() * h * 0.02;
        let phase = t * 0.35;

        let swing = phase.sin();
        let counter = -swing;
        let mut joints = [(0.0, 0.0); JOINTS];
        joints[0] = (cx, cy - s * 1.25); // head
        joints[1] = (cx, cy - s * 0.9); // neck
        joints[2] = (cx - s * 0.35, cy - s * 0.85); // L shoulder
        joints[3] = (cx + s * 0.35, cy - s * 0.85); // R shoulder
        joints[4] = (cx - s * 0.45 + swing * s * 0.2, cy - s * 0.4); // L elbow
        joints[5] = (cx + s * 0.45 + counter * s * 0.2, cy - s * 0.4); // R elbow
        joints[6] = (cx - s * 0.5 + swing * s * 0.4, cy + s * 0.05); // L wrist
        joints[7] = (cx + s * 0.5 + counter * s * 0.4, cy + s * 0.05); // R wrist
        joints[8] = (cx - s * 0.2, cy); // L hip
        joints[9] = (cx + s * 0.2, cy); // R hip
        joints[10] = (cx - s * 0.22 + swing * s * 0.3, cy + s * 0.55); // L knee
        joints[11] = (cx + s * 0.22 + counter * s * 0.3, cy + s * 0.55); // R knee
        joints[12] = (cx - s * 0.24 + swing * s * 0.55, cy + s * 1.1); // L ankle
        Skeleton { joints }
    }

    /// Ground-truth person bounding box of frame `idx`.
    pub fn gt_bbox(&self, idx: usize) -> Rect {
        self.gt_skeleton(idx).bbox(8.0, self.width, self.height)
    }
}

/// Draws a bright thick line segment.
fn draw_limb(frame: &mut GrayFrame, p0: (f64, f64), p1: (f64, f64), half_w: f64, value: u8) {
    let x_lo = (p0.0.min(p1.0) - half_w).floor().max(0.0) as u32;
    let x_hi = ((p0.0.max(p1.0) + half_w).ceil() as u32).min(frame.width());
    let y_lo = (p0.1.min(p1.1) - half_w).floor().max(0.0) as u32;
    let y_hi = ((p0.1.max(p1.1) + half_w).ceil() as u32).min(frame.height());
    let dx = p1.0 - p0.0;
    let dy = p1.1 - p0.1;
    let len2 = dx * dx + dy * dy;
    for y in y_lo..y_hi {
        for x in x_lo..x_hi {
            let px = f64::from(x) - p0.0;
            let py = f64::from(y) - p0.1;
            let u = if len2 == 0.0 { 0.0 } else { ((px * dx + py * dy) / len2).clamp(0.0, 1.0) };
            let ex = px - u * dx;
            let ey = py - u * dy;
            if ex * ex + ey * ey <= half_w * half_w {
                frame.set(x, y, value);
            }
        }
    }
}

impl VideoDataset for PoseDataset {
    fn name(&self) -> &str {
        &self.name
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn height(&self) -> u32 {
        self.height
    }

    fn len(&self) -> usize {
        self.frames
    }

    fn frame(&self, idx: usize) -> GrayFrame {
        // Dim textured background (kept below the blob threshold).
        let noise = ValueNoise::new(self.seed);
        let mut frame: GrayFrame =
            Plane::from_fn(self.width, self.height, |x, y| {
                (20.0 + noise.fbm(f64::from(x), f64::from(y), 3, 0.03) * 70.0) as u8
            });
        let skel = self.gt_skeleton(idx);
        let s = f64::from(self.height) / 4.0;
        // Thin limbs: crisp at native resolution, washed out by
        // downscaling — the resolution sensitivity a pose network has.
        for &(a, b) in &Skeleton::BONES {
            draw_limb(&mut frame, skel.joints[a], skel.joints[b], (s * 0.045).max(1.2), 230);
        }
        // Head disc.
        let head = skel.joints[0];
        draw_limb(&mut frame, head, head, s * 0.18, 230);
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_vision::detect_blobs;

    #[test]
    fn skeleton_is_deterministic() {
        let ds = PoseDataset::new(160, 120, 10, 5);
        assert_eq!(ds.gt_skeleton(4), ds.gt_skeleton(4));
        assert_eq!(ds.frame(4), ds.frame(4));
    }

    #[test]
    fn person_moves_over_time() {
        let ds = PoseDataset::new(160, 120, 60, 5);
        let a = ds.gt_bbox(0);
        let b = ds.gt_bbox(30);
        assert_ne!((a.x, a.y), (b.x, b.y));
    }

    #[test]
    fn person_is_one_bright_blob_matching_gt_bbox() {
        let ds = PoseDataset::new(192, 144, 5, 6);
        let frame = ds.frame(2);
        let blobs = detect_blobs(&frame, 160, 30);
        assert!(!blobs.is_empty());
        let iou = blobs[0].bbox.iou(&ds.gt_bbox(2));
        assert!(iou > 0.5, "blob/gt IoU {iou}");
    }

    #[test]
    fn background_stays_below_threshold() {
        let ds = PoseDataset::new(128, 96, 3, 7);
        let frame = ds.frame(0);
        let gt = ds.gt_bbox(0);
        for y in 0..96 {
            for x in 0..128 {
                if !gt.contains(x, y) {
                    assert!(frame.get(x, y).unwrap() < 160, "bright background at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn bbox_clamped_to_frame() {
        let ds = PoseDataset::new(96, 96, 200, 8);
        for idx in (0..200).step_by(17) {
            let b = ds.gt_bbox(idx);
            assert!(b.right() <= 96 && b.bottom() <= 96, "frame {idx}: {b}");
        }
    }

    #[test]
    fn gait_animates_joints() {
        let ds = PoseDataset::new(160, 120, 30, 9);
        let w0 = ds.gt_skeleton(0).joints[6];
        let w5 = ds.gt_skeleton(5).joints[6];
        assert!((w0.0 - w5.0).abs() + (w0.1 - w5.1).abs() > 1.0, "wrist frozen");
    }
}

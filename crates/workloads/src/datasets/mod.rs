//! Procedurally generated benchmark videos with exact ground truth —
//! the substitutes for the paper's TUM / in-house 4K / PoseTrack 2017 /
//! ChokePoint datasets (§5.3).
//!
//! Every dataset is a deterministic function of its seed: the same
//! configuration always produces the same frames and the same ground
//! truth, so accuracy comparisons across baselines are exact.

mod face;
mod moving;
mod pose;
mod slam;

pub use face::FaceDataset;
pub use moving::MovingCameraDataset;
pub use pose::{PoseDataset, Skeleton};
pub use slam::SlamDataset;

use rpr_frame::GrayFrame;

/// A finite, deterministically renderable video.
pub trait VideoDataset {
    /// Human-readable benchmark name.
    fn name(&self) -> &str;
    /// Frame width in pixels.
    fn width(&self) -> u32;
    /// Frame height in pixels.
    fn height(&self) -> u32;
    /// Number of frames.
    fn len(&self) -> usize;
    /// Returns true for a zero-length dataset.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Renders frame `idx` (the clean, full-resolution sensor+ISP
    /// output the pipeline then processes).
    fn frame(&self, idx: usize) -> GrayFrame;
}

use super::VideoDataset;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rpr_frame::{GrayFrame, Plane, Rect};
use rpr_sensor::{MotionPath, Sprite, SpriteShape, ValueNoise};

/// The face-detection benchmark: bright synthetic faces walking through
/// a choke-point scene, entering and leaving the frame — the stand-in
/// for the ChokePoint dataset (§5.3). Ground truth is the exact set of
/// face bounding boxes per frame.
///
/// # Example
///
/// ```
/// use rpr_workloads::datasets::{FaceDataset, VideoDataset};
///
/// let ds = FaceDataset::new(192, 144, 20, 4, 11);
/// assert_eq!(ds.len(), 20);
/// // Ground truth may contain 0..=4 faces depending on who is on screen.
/// assert!(ds.gt_bboxes(10).len() <= 4);
/// ```
#[derive(Debug, Clone)]
pub struct FaceDataset {
    name: String,
    width: u32,
    height: u32,
    frames: usize,
    seed: u64,
    faces: Vec<Sprite>,
}

impl FaceDataset {
    /// Creates a sequence with `n_faces` faces crossing the scene.
    pub fn new(width: u32, height: u32, frames: usize, n_faces: usize, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let faces = (0..n_faces)
            .map(|i| {
                let size = rng.gen_range(height / 5..height / 3).max(12);
                // Staggered positions across the walkway: the first
                // faces are already on screen, later ones walk in and
                // everyone eventually walks out (the choke-point flow).
                let from_left = i % 2 == 0;
                let speed = rng.gen_range(0.8..2.5);
                let vx = if from_left { speed } else { -speed };
                let lane = 0.15 + 0.7 * (i as f64 / n_faces.max(1) as f64);
                let x0 = if from_left {
                    f64::from(width) * (1.0 - lane)
                } else {
                    f64::from(width) * lane
                };
                let y0 = rng.gen_range(f64::from(height) * 0.25..f64::from(height) * 0.75);
                let vy = rng.gen_range(-0.2..0.2);
                Sprite::new(
                    SpriteShape::Face,
                    size,
                    size + size / 4,
                    MotionPath::Linear { x0, y0, vx, vy },
                )
            })
            .collect();
        FaceDataset {
            name: format!("face-seq{seed}"),
            width,
            height,
            frames,
            seed,
            faces,
        }
    }

    /// Ground-truth face boxes visible in frame `idx`. Boxes clipped to
    /// less than 30 % visibility are excluded (the face is "not in the
    /// scene yet" for accuracy purposes).
    pub fn gt_bboxes(&self, idx: usize) -> Vec<Rect> {
        self.faces
            .iter()
            .filter_map(|f| {
                let b = f.bbox(idx as u64, self.width, self.height)?;
                let full = u64::from(f.w) * u64::from(f.h);
                (b.area() * 10 >= full * 3).then_some(b)
            })
            .collect()
    }

    /// The face sprites (for composing examples).
    pub fn sprites(&self) -> &[Sprite] {
        &self.faces
    }
}

impl VideoDataset for FaceDataset {
    fn name(&self) -> &str {
        &self.name
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn height(&self) -> u32 {
        self.height
    }

    fn len(&self) -> usize {
        self.frames
    }

    fn frame(&self, idx: usize) -> GrayFrame {
        let noise = ValueNoise::new(self.seed ^ 0xFACE);
        let mut frame: GrayFrame = Plane::from_fn(self.width, self.height, |x, y| {
            (15.0 + noise.fbm(f64::from(x), f64::from(y), 3, 0.02) * 80.0) as u8
        });
        for face in &self.faces {
            face.draw(&mut frame, idx as u64);
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_vision::detect_blobs;

    #[test]
    fn deterministic() {
        let a = FaceDataset::new(160, 120, 10, 3, 2);
        let b = FaceDataset::new(160, 120, 10, 3, 2);
        assert_eq!(a.frame(5), b.frame(5));
        assert_eq!(a.gt_bboxes(5), b.gt_bboxes(5));
    }

    #[test]
    fn faces_enter_and_leave() {
        let ds = FaceDataset::new(160, 120, 300, 4, 3);
        let counts: Vec<usize> = (0..300).step_by(10).map(|i| ds.gt_bboxes(i).len()).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max > min, "face count never changes: {counts:?}");
        assert!(*max >= 1);
    }

    #[test]
    fn visible_faces_are_detectable_blobs() {
        let ds = FaceDataset::new(192, 144, 120, 3, 4);
        // Find a frame with at least one fully visible face.
        let idx = (0..120)
            .find(|&i| {
                ds.gt_bboxes(i)
                    .iter()
                    .any(|b| b.x > 8 && b.right() < 184)
            })
            .expect("some face fully visible at some point");
        let frame = ds.frame(idx);
        let blobs = detect_blobs(&frame, 150, 20);
        let gts = ds.gt_bboxes(idx);
        let matched = gts.iter().any(|g| blobs.iter().any(|b| b.bbox.iou(g) > 0.4));
        assert!(matched, "no blob matches a face at frame {idx}");
    }

    #[test]
    fn background_stays_dim() {
        let ds = FaceDataset::new(128, 96, 5, 0, 5); // zero faces
        let frame = ds.frame(0);
        assert!(frame.as_slice().iter().all(|&v| v < 150));
    }

    #[test]
    fn mostly_offscreen_faces_excluded_from_gt() {
        let ds = FaceDataset::new(160, 120, 400, 2, 6);
        for idx in 0..400 {
            for b in ds.gt_bboxes(idx) {
                assert!(b.area() >= 25, "sliver gt at frame {idx}: {b}");
            }
        }
    }
}

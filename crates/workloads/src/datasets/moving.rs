use super::VideoDataset;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rpr_frame::{GrayFrame, Rect};
use rpr_sensor::{CameraPose, MotionPath, Sprite, SpriteShape, TextureWorld, Trajectory};

/// A moving-camera benchmark: the camera flies over a textured world
/// while a handful of world-anchored objects drift independently —
/// the scenario where a reactive t−1 region policy systematically
/// lags the scene and motion-compensated prediction pays off (§3.4).
///
/// Frames are rendered by projecting the world through the camera pose
/// and compositing the visible objects in view coordinates, so the
/// ground-truth object tracks returned by
/// [`MovingCameraDataset::gt_object_tracks`] are exact per frame.
///
/// # Example
///
/// ```
/// use rpr_workloads::datasets::{MovingCameraDataset, VideoDataset};
///
/// let ds = MovingCameraDataset::panning(192, 144, 30, 3.0, 7);
/// assert_eq!(ds.len(), 30);
/// assert!(!ds.gt_object_tracks(10).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MovingCameraDataset {
    name: String,
    width: u32,
    height: u32,
    world: TextureWorld,
    trajectory: Trajectory,
    objects: Vec<Sprite>,
}

/// World dimensions leave room for the trajectory plus a half-frame
/// rendering apron on every side.
fn world_dims(width: u32, height: u32, frames: usize, speed: f64) -> (u32, u32) {
    let travel = (speed * frames as f64).ceil().max(0.0) as u32;
    (width * 2 + travel, height * 2)
}

/// Seeds `n` objects drifting slowly through the camera's flight
/// corridor, in world coordinates.
fn seed_objects(
    rng: &mut ChaCha8Rng,
    n: usize,
    corridor_x: (f64, f64),
    corridor_y: (f64, f64),
) -> Vec<Sprite> {
    (0..n)
        .map(|i| {
            let size = rng.gen_range(18..34);
            let x0 = rng.gen_range(corridor_x.0..corridor_x.1.max(corridor_x.0 + 1.0));
            let y0 = rng.gen_range(corridor_y.0..corridor_y.1.max(corridor_y.0 + 1.0));
            // Objects move slower than the camera so ego motion
            // dominates — the regime the paper's prediction targets.
            let vx = rng.gen_range(-0.8..0.8);
            let vy = rng.gen_range(-0.5..0.5);
            let shape = if i % 2 == 0 {
                SpriteShape::TexturedRect
            } else {
                SpriteShape::Disc
            };
            Sprite::new(shape, size, size, MotionPath::Linear { x0, y0, vx, vy })
        })
        .collect()
}

impl MovingCameraDataset {
    /// A constant-velocity pan at `speed` px/frame over a freshly
    /// generated world, with three drifting objects in the corridor.
    pub fn panning(width: u32, height: u32, frames: usize, speed: f64, seed: u64) -> Self {
        let (ww, wh) = world_dims(width, height, frames, speed);
        let world = TextureWorld::generate(ww, wh, seed);
        let start_x = f64::from(width);
        let cy = f64::from(wh) / 2.0;
        let trajectory = Trajectory::pan(start_x, cy, speed, 0.0, frames);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4D43_414D);
        let end_x = start_x + speed * frames as f64;
        let objects = seed_objects(
            &mut rng,
            3,
            (start_x - f64::from(width) / 2.0, end_x + f64::from(width) / 2.0),
            (cy - f64::from(height) / 2.0, cy + f64::from(height) / 2.0),
        );
        MovingCameraDataset {
            name: format!("moving-pan-s{speed:.0}-seed{seed}"),
            width,
            height,
            world,
            trajectory,
            objects,
        }
    }

    /// Handheld jitter of roughly `amplitude` px around the world
    /// centre — the tremor-dominated regime where prediction must not
    /// overreact.
    pub fn handheld(width: u32, height: u32, frames: usize, amplitude: f64, seed: u64) -> Self {
        let ww = width * 2 + (amplitude * 4.0).ceil().max(0.0) as u32;
        let wh = height * 2 + (amplitude * 4.0).ceil().max(0.0) as u32;
        let world = TextureWorld::generate(ww, wh, seed);
        let cx = f64::from(ww) / 2.0;
        let cy = f64::from(wh) / 2.0;
        let trajectory = Trajectory::handheld(cx, cy, frames, amplitude, seed ^ 0x4A49_5454);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4D43_414D);
        let objects = seed_objects(
            &mut rng,
            3,
            (cx - f64::from(width) / 2.0, cx + f64::from(width) / 2.0),
            (cy - f64::from(height) / 2.0, cy + f64::from(height) / 2.0),
        );
        MovingCameraDataset {
            name: format!("moving-handheld-a{amplitude:.0}-seed{seed}"),
            width,
            height,
            world,
            trajectory,
            objects,
        }
    }

    /// A driving-style sweep: `cameras` forward-panning rigs sharing
    /// one world, laterally offset like a multi-camera car roof mount.
    /// Every rig sees the same objects from its own viewpoint.
    pub fn driving_sweep(
        cameras: usize,
        width: u32,
        height: u32,
        frames: usize,
        speed: f64,
        seed: u64,
    ) -> Vec<Self> {
        let base = MovingCameraDataset::panning(width, height, frames, speed, seed);
        (0..cameras)
            .map(|cam| {
                // Lateral offsets inside the rendered corridor.
                let spread = f64::from(height) / 4.0;
                let offset = if cameras > 1 {
                    spread * (2.0 * cam as f64 / (cameras - 1) as f64 - 1.0)
                } else {
                    0.0
                };
                let poses = base
                    .trajectory
                    .poses()
                    .iter()
                    .map(|p| CameraPose::new(p.x, p.y + offset, p.theta))
                    .collect();
                MovingCameraDataset {
                    name: format!("driving-cam{cam}-seed{seed}"),
                    trajectory: Trajectory::from_poses(poses),
                    ..base.clone()
                }
            })
            .collect()
    }

    /// Freezes every object at its frame-0 position, leaving camera
    /// ego-motion as the only source of apparent motion — the control
    /// scenario for separating ego-motion prediction from object drift.
    pub fn with_static_objects(mut self) -> Self {
        for obj in &mut self.objects {
            let (x, y) = obj.path.position(0);
            obj.path = MotionPath::Fixed { x, y };
        }
        self.name.push_str("-static");
        self
    }

    /// Ground-truth camera trajectory.
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }

    /// Maps a world point into view-pixel coordinates under the pose of
    /// frame `idx` (the inverse of `CameraPose::view_to_world`).
    fn world_to_view(&self, idx: usize, wx: f64, wy: f64) -> (f64, f64) {
        let pose = self.trajectory.pose(idx);
        let dx = wx - pose.x;
        let dy = wy - pose.y;
        let (s, c) = pose.theta.sin_cos();
        let vx = c * dx + s * dy;
        let vy = -s * dx + c * dy;
        (vx + f64::from(self.width) / 2.0, vy + f64::from(self.height) / 2.0)
    }

    /// Each object projected into frame `idx` as a view-space sprite,
    /// or `None` while it is out of view.
    fn view_sprite(&self, obj: &Sprite, idx: usize) -> Sprite {
        let (wx, wy) = obj.path.position(idx as u64);
        let (vx, vy) = self.world_to_view(idx, wx, wy);
        Sprite::new(obj.shape, obj.w, obj.h, MotionPath::Fixed { x: vx, y: vy })
    }

    /// Exact ground-truth object boxes visible in frame `idx`, in view
    /// coordinates. Boxes clipped below 30 % visibility are excluded,
    /// mirroring [`super::FaceDataset::gt_bboxes`].
    pub fn gt_object_tracks(&self, idx: usize) -> Vec<Rect> {
        self.objects
            .iter()
            .filter_map(|obj| {
                let view = self.view_sprite(obj, idx);
                let b = view.bbox(0, self.width, self.height)?;
                let full = u64::from(obj.w) * u64::from(obj.h);
                (b.area() * 10 >= full * 3).then_some(b)
            })
            .collect()
    }

    /// The world-space object sprites.
    pub fn objects(&self) -> &[Sprite] {
        &self.objects
    }
}

impl VideoDataset for MovingCameraDataset {
    fn name(&self) -> &str {
        &self.name
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn height(&self) -> u32 {
        self.height
    }

    fn len(&self) -> usize {
        self.trajectory.len()
    }

    fn frame(&self, idx: usize) -> GrayFrame {
        let pose = self.trajectory.pose(idx);
        let mut frame = self.world.render_view_gray(&pose, self.width, self.height);
        for obj in &self.objects {
            self.view_sprite(obj, idx).draw(&mut frame, 0);
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_vision::{estimate_block_motion, estimate_rigid_motion};

    #[test]
    fn deterministic() {
        let a = MovingCameraDataset::panning(160, 120, 20, 3.0, 2);
        let b = MovingCameraDataset::panning(160, 120, 20, 3.0, 2);
        assert_eq!(a.frame(7), b.frame(7));
        assert_eq!(a.gt_object_tracks(7), b.gt_object_tracks(7));
    }

    #[test]
    fn pan_produces_recoverable_global_motion() {
        let ds = MovingCameraDataset::panning(160, 120, 12, 4.0, 5);
        let prev = ds.frame(3);
        let cur = ds.frame(4);
        let vectors = estimate_block_motion(&prev, &cur, 16, 8);
        // A rightward 4 px/frame pan slides the view content left, so
        // the prev→cur rigid fit recovers tx = −4.
        let pairs: Vec<_> = vectors
            .iter()
            .map(|v| {
                let c = v.block.center();
                ((c.0 + f64::from(v.dx), c.1 + f64::from(v.dy)), c)
            })
            .collect();
        let (rigid, inliers) =
            estimate_rigid_motion(&pairs, 64, 1.5, 9).expect("ego motion recoverable");
        assert!((rigid.tx + 4.0).abs() < 1.0, "tx {}", rigid.tx);
        assert!(inliers.len() * 2 > pairs.len(), "inliers {}", inliers.len());
    }

    #[test]
    fn gt_tracks_follow_the_pan() {
        let ds = MovingCameraDataset::panning(160, 120, 40, 3.0, 8);
        // Find an object visible over a run of frames and check its
        // view-space box slides left as the camera pans right.
        let mut seen = 0;
        for idx in 0..39 {
            let a = ds.gt_object_tracks(idx);
            let b = ds.gt_object_tracks(idx + 1);
            for ra in &a {
                if let Some(rb) = b.iter().find(|rb| rb.iou(ra) > 0.3) {
                    // Camera moves +3 px/frame; objects drift < 1 px, so
                    // apparent motion is leftward (allowing rounding).
                    if ra.x > 8 && ra.right() + 8 < 160 {
                        assert!(i64::from(rb.x) <= i64::from(ra.x), "{ra} -> {rb}");
                        seen += 1;
                    }
                }
            }
        }
        assert!(seen > 5, "too few tracked pairs: {seen}");
    }

    #[test]
    fn handheld_stays_anchored() {
        let ds = MovingCameraDataset::handheld(160, 120, 30, 5.0, 4);
        assert_eq!(ds.len(), 30);
        let speed = ds.trajectory().mean_speed();
        assert!(speed > 0.1 && speed < 15.0, "speed {speed}");
        // Frames render and differ across time (the camera shakes).
        assert_ne!(ds.frame(0), ds.frame(9));
    }

    #[test]
    fn driving_sweep_shares_the_world() {
        let rigs = MovingCameraDataset::driving_sweep(3, 128, 96, 15, 3.0, 6);
        assert_eq!(rigs.len(), 3);
        let names: Vec<_> = rigs.iter().map(|r| r.name().to_string()).collect();
        assert_eq!(names[0], "driving-cam0-seed6");
        assert_ne!(rigs[0].frame(5), rigs[2].frame(5), "rigs see offset views");
        // Same world and objects: rig trajectories differ only by a
        // constant lateral offset.
        let p0 = rigs[0].trajectory().pose(5);
        let p2 = rigs[2].trajectory().pose(5);
        assert_eq!(p0.x, p2.x);
        assert_ne!(p0.y, p2.y);
        assert_eq!(rigs[0].objects(), rigs[2].objects());
    }
}

use super::VideoDataset;
use rpr_frame::GrayFrame;
use rpr_sensor::{CameraPose, TextureWorld, Trajectory};
use rpr_vision::Pose2d;

/// The visual-SLAM benchmark: a camera translating and rotating over a
/// large, corner-rich textured plane, with exact ground-truth poses.
///
/// This is the planar stand-in for the paper's TUM and in-house 4K
/// indoor sequences: visual odometry must track hundreds of ORB
/// features frame to frame, and the trajectory-error metrics compare
/// the estimate against the generator's own camera path.
/// `mm_per_px` converts image-plane units into millimetres so ATE is
/// reported in the paper's units.
///
/// # Example
///
/// ```
/// use rpr_workloads::datasets::{SlamDataset, VideoDataset};
///
/// let ds = SlamDataset::new(160, 120, 10, 42);
/// assert_eq!(ds.len(), 10);
/// let f0 = ds.frame(0);
/// assert_eq!(f0.width(), 160);
/// // Deterministic: re-rendering gives identical pixels.
/// assert_eq!(ds.frame(3), ds.frame(3));
/// ```
#[derive(Debug, Clone)]
pub struct SlamDataset {
    name: String,
    world: TextureWorld,
    trajectory: Trajectory,
    width: u32,
    height: u32,
    /// Millimetres represented by one pixel of camera motion.
    pub mm_per_px: f64,
}

impl SlamDataset {
    /// World size relative to the view, fixed so the camera always has
    /// texture under it.
    fn world_dims(width: u32, height: u32) -> (u32, u32) {
        (width * 4, height * 4)
    }

    /// Creates a `width x height`, `frames`-long sequence from `seed`.
    pub fn new(width: u32, height: u32, frames: usize, seed: u64) -> Self {
        let (ww, wh) = Self::world_dims(width, height);
        let world = TextureWorld::generate(ww, wh, seed);
        // Margin: half the view diagonal so rotations never sample
        // outside the world.
        let margin = ((width * width + height * height) as f64).sqrt() as u32 / 2 + 8;
        let trajectory = Trajectory::generate(ww, wh, frames, margin, seed ^ 0x51A8);
        SlamDataset {
            name: format!("slam-seq{seed}"),
            world,
            trajectory,
            width,
            height,
            mm_per_px: 2.0,
        }
    }

    /// Ground-truth camera pose of frame `idx`.
    pub fn gt_pose(&self, idx: usize) -> CameraPose {
        self.trajectory.pose(idx)
    }

    /// Ground-truth trajectory as metric poses (positions in mm).
    pub fn gt_trajectory_mm(&self) -> Vec<Pose2d> {
        self.trajectory
            .poses()
            .iter()
            .map(|p| Pose2d::new(p.x * self.mm_per_px, p.y * self.mm_per_px, p.theta))
            .collect()
    }

    /// The underlying world (for rendering composites in examples).
    pub fn world(&self) -> &TextureWorld {
        &self.world
    }
}

impl VideoDataset for SlamDataset {
    fn name(&self) -> &str {
        &self.name
    }

    fn width(&self) -> u32 {
        self.width
    }

    fn height(&self) -> u32 {
        self.height
    }

    fn len(&self) -> usize {
        self.trajectory.len()
    }

    fn frame(&self, idx: usize) -> GrayFrame {
        self.world
            .render_view_gray(&self.trajectory.pose(idx), self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpr_vision::{match_descriptors, OrbDetector};

    #[test]
    fn frames_are_deterministic_and_sized() {
        let ds = SlamDataset::new(128, 96, 5, 7);
        assert_eq!(ds.frame(2), ds.frame(2));
        assert_eq!(ds.frame(0).width(), 128);
        assert_eq!(ds.frame(0).height(), 96);
    }

    #[test]
    fn consecutive_frames_differ_but_overlap() {
        let ds = SlamDataset::new(128, 96, 20, 8);
        let a = ds.frame(5);
        let b = ds.frame(6);
        assert_ne!(a, b, "camera must move");
        // The motion is small: most content is shared, so PSNR between
        // consecutive frames stays moderate-to-high.
        let psnr = a.psnr(&b).unwrap();
        assert!(psnr > 10.0, "frames jumped too far: psnr {psnr}");
    }

    #[test]
    fn frames_are_feature_rich() {
        let ds = SlamDataset::new(192, 144, 3, 9);
        let feats = OrbDetector::default().detect(&ds.frame(0));
        assert!(feats.len() >= 30, "only {} features", feats.len());
    }

    #[test]
    fn consecutive_frames_are_matchable() {
        let ds = SlamDataset::new(192, 144, 5, 10);
        let orb = OrbDetector::default();
        let a = orb.detect(&ds.frame(0));
        let b = orb.detect(&ds.frame(1));
        let matches = match_descriptors(&a, &b, 64, 0.8);
        assert!(matches.len() >= 10, "only {} matches", matches.len());
    }

    #[test]
    fn gt_trajectory_converts_units() {
        let ds = SlamDataset::new(96, 96, 4, 11);
        let mm = ds.gt_trajectory_mm();
        assert_eq!(mm.len(), 4);
        assert!((mm[0].x - ds.gt_pose(0).x * 2.0).abs() < 1e-12);
    }
}

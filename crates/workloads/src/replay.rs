//! Record/replay of workload capture streams through the `.rpr` wire
//! format.
//!
//! *Recording* taps the experiment [`Pipeline`]'s rhythmic branch
//! ([`Pipeline::set_encoded_tap`]) and spills every [`EncodedFrame`]
//! into an in-memory `.rpr` container while the workload runs
//! normally. *Replaying* decodes the container through a fresh
//! [`SoftwareDecoder`] — and because the decoder's output is a pure
//! function of the encoded-frame sequence, the replayed task inputs
//! are byte-identical to what the task saw live. That turns any
//! captured run into a deterministic fixture: archive the container,
//! re-run the vision task against it later (or against a modified
//! task), and the capture side is out of the loop entirely.
//!
//! Recording only applies to the rhythmic (`Rp`) baselines: the
//! frame-based baselines never produce encoded frames, so their
//! containers come out empty.

use crate::datasets::{FaceDataset, PoseDataset, SlamDataset};
use crate::runner::{Pipeline, PipelineConfig};
use crate::staged::{
    face_outcome, pose_outcome, slam_outcome, DatasetSource, FaceTask, PipelineCapture, PoseTask,
    SlamTask,
};
use crate::tasks::{FaceOutcome, PoseOutcome, SlamOutcome};
use rpr_core::{ReconstructionMode, SoftwareDecoder};
use rpr_frame::GrayFrame;
use rpr_stream::{run_stream, DecodeCapture, DecodeSummary, StreamConfig, TaskStage, WireSource};
use rpr_wire::{read_all, ContainerReader, ContainerWriter, WireError, WriterStats};
use std::sync::{Arc, Mutex};

struct RecorderState {
    writer: Option<ContainerWriter<Vec<u8>>>,
    error: Option<WireError>,
}

/// Spills every tapped [`EncodedFrame`] into an in-memory `.rpr`
/// container. Clone the tap with [`Recorder::tap`], install it on a
/// [`Pipeline`], run the workload, then [`Recorder::finish`].
///
/// The first write error is latched (subsequent frames are dropped
/// rather than written after a gap) and surfaced by `finish`.
pub struct Recorder {
    inner: Arc<Mutex<RecorderState>>,
}

impl Recorder {
    /// Starts an in-memory container.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] (never for the `Vec<u8>` sink in practice).
    pub fn new() -> Result<Self, WireError> {
        Ok(Recorder {
            inner: Arc::new(Mutex::new(RecorderState {
                writer: Some(ContainerWriter::new(Vec::new())?),
                error: None,
            })),
        })
    }

    /// A tap closure for [`Pipeline::set_encoded_tap`]. Multiple taps
    /// share the same container (frames interleave in call order).
    pub fn tap(&self) -> crate::runner::EncodedTap {
        let inner = Arc::clone(&self.inner);
        Box::new(move |frame| {
            let mut state = inner.lock().expect("recorder mutex poisoned");
            if let Some(writer) = state.writer.as_mut() {
                if let Err(e) = writer.append(frame) {
                    state.error = Some(e);
                    state.writer = None;
                }
            }
        })
    }

    /// Finalizes the container (index + trailer) and returns its bytes
    /// with the writer's size accounting.
    ///
    /// # Errors
    ///
    /// The first latched write error, or [`WireError::Io`] if called
    /// twice.
    pub fn finish(&self) -> Result<(Vec<u8>, WriterStats), WireError> {
        let mut state = self.inner.lock().expect("recorder mutex poisoned");
        if let Some(e) = state.error.take() {
            return Err(e);
        }
        let writer = state.writer.take().ok_or_else(|| WireError::Io {
            reason: "recorder already finished".into(),
        })?;
        writer.finish()
    }
}

fn recorded_pipeline(cfg: PipelineConfig, recorder: &Recorder) -> PipelineCapture {
    let mut pipeline = Pipeline::new(cfg);
    pipeline.set_encoded_tap(recorder.tap());
    PipelineCapture::from_pipeline(pipeline)
}

/// Runs the face workload while recording its encoded stream.
/// Returns the live outcome plus the finished container.
///
/// # Errors
///
/// Any [`WireError`] the recording sink hit.
pub fn record_face(
    dataset: &FaceDataset,
    cfg: PipelineConfig,
) -> Result<(FaceOutcome, Vec<u8>, WriterStats), WireError> {
    let recorder = Recorder::new()?;
    let capture = recorded_pipeline(cfg, &recorder);
    let result = run_stream(
        0,
        DatasetSource::new(dataset),
        capture,
        FaceTask::new(dataset),
        StreamConfig::blocking(),
    );
    let outcome = face_outcome(result);
    let (bytes, stats) = recorder.finish()?;
    Ok((outcome, bytes, stats))
}

/// Runs the pose workload while recording its encoded stream.
///
/// # Errors
///
/// Any [`WireError`] the recording sink hit.
pub fn record_pose(
    dataset: &PoseDataset,
    cfg: PipelineConfig,
) -> Result<(PoseOutcome, Vec<u8>, WriterStats), WireError> {
    let recorder = Recorder::new()?;
    let capture = recorded_pipeline(cfg, &recorder);
    let result = run_stream(
        0,
        DatasetSource::new(dataset),
        capture,
        PoseTask::new(dataset),
        StreamConfig::blocking(),
    );
    let outcome = pose_outcome(result);
    let (bytes, stats) = recorder.finish()?;
    Ok((outcome, bytes, stats))
}

/// Runs the SLAM workload while recording its encoded stream.
///
/// # Errors
///
/// Any [`WireError`] the recording sink hit.
pub fn record_slam(
    dataset: &SlamDataset,
    cfg: PipelineConfig,
) -> Result<(SlamOutcome, Vec<u8>, WriterStats), WireError> {
    let recorder = Recorder::new()?;
    let capture = recorded_pipeline(cfg, &recorder);
    let result = run_stream(
        0,
        DatasetSource::new(dataset),
        capture,
        SlamTask::new(dataset),
        StreamConfig::blocking(),
    );
    let outcome = slam_outcome(dataset, result);
    let (bytes, stats) = recorder.finish()?;
    Ok((outcome, bytes, stats))
}

/// Decodes a recorded container back into the exact [`GrayFrame`]
/// sequence the recorded run's task consumed, under
/// [`ReconstructionMode::BlockNearest`] (the [`Pipeline`]'s mode).
///
/// # Errors
///
/// Any [`WireError`] from parsing or validating the container.
pub fn replay_task_inputs(bytes: &[u8]) -> Result<Vec<GrayFrame>, WireError> {
    replay_task_inputs_with_mode(bytes, ReconstructionMode::BlockNearest)
}

/// [`replay_task_inputs`] under an explicit reconstruction mode (must
/// match the recording pipeline's to reproduce its outputs).
///
/// # Errors
///
/// Any [`WireError`] from parsing or validating the container.
pub fn replay_task_inputs_with_mode(
    bytes: &[u8],
    mode: ReconstructionMode,
) -> Result<Vec<GrayFrame>, WireError> {
    let frames = read_all(bytes)?;
    let Some(first) = frames.first() else {
        return Ok(Vec::new());
    };
    let mut decoder = SoftwareDecoder::with_mode(first.width(), first.height(), mode);
    frames
        .iter()
        .map(|f| {
            decoder
                .try_decode(f)
                .map_err(|e| WireError::CorruptFrame { reason: e.to_string() })
        })
        .collect()
}

/// Replays a container through an arbitrary [`TaskStage`] on the
/// staged executor (`WireSource → DecodeCapture → task`), returning
/// the task's output and the decode summary. This is how an archived
/// capture is re-scored against a new or modified vision task.
///
/// # Errors
///
/// Any [`WireError`] from opening the container.
pub fn replay_through_task<T>(
    bytes: Vec<u8>,
    task: T,
) -> Result<(T::Output, DecodeSummary), WireError>
where
    T: TaskStage<Input = GrayFrame>,
{
    let (width, height) = {
        let reader = ContainerReader::open(&bytes)?;
        if reader.is_empty() {
            (0, 0)
        } else {
            let view = reader.view(0)?;
            (view.width(), view.height())
        }
    };
    let source = WireSource::new(bytes)?;
    let result = run_stream(
        0,
        source,
        DecodeCapture::new(width, height),
        task,
        StreamConfig::blocking(),
    );
    Ok((result.task, result.capture))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::run_face_with;
    use crate::Baseline;
    use rpr_core::Feature;
    use rpr_frame::Plane;

    fn textured(w: u32, h: u32, t: u32) -> GrayFrame {
        Plane::from_fn(w, h, |x, y| ((x * 3) ^ (y * 7) ^ (t * 11)) as u8)
    }

    /// The core determinism claim: a tapped pipeline's decoded outputs
    /// equal the container's replayed task inputs, byte for byte.
    #[test]
    fn replay_reproduces_live_task_inputs_exactly() {
        let cfg = PipelineConfig::new(64, 48, Baseline::Rp { cycle_length: 3 });
        let recorder = Recorder::new().unwrap();
        let mut pipeline = Pipeline::new(cfg);
        pipeline.set_encoded_tap(recorder.tap());

        let mut live = Vec::new();
        for t in 0..8u32 {
            let feats = vec![Feature::new(20.0, 20.0, 12.0).with_displacement(2.0)];
            live.push(pipeline.process_frame(&textured(64, 48, t), feats, vec![]));
        }
        drop(pipeline);
        let (bytes, stats) = recorder.finish().unwrap();
        assert_eq!(stats.frames, 8);

        let replayed = replay_task_inputs(&bytes).unwrap();
        assert_eq!(replayed, live, "replay must be byte-identical to the live run");
    }

    #[test]
    fn record_face_produces_a_replayable_container() {
        let ds = FaceDataset::new(96, 72, 6, 1, 3);
        let cfg = PipelineConfig::new(96, 72, Baseline::Rp { cycle_length: 3 });
        let (outcome, bytes, stats) = record_face(&ds, cfg).unwrap();
        assert_eq!(stats.frames, 6);
        assert_eq!(outcome.per_frame_ap.len(), 6);

        // Recording is an observer: the live outcome matches the
        // untapped synchronous reference exactly.
        let reference = run_face_with(&ds, cfg);
        assert_eq!(
            serde_json::to_string(&outcome).unwrap(),
            serde_json::to_string(&reference).unwrap()
        );

        let inputs = replay_task_inputs(&bytes).unwrap();
        assert_eq!(inputs.len(), 6);
    }

    #[test]
    fn replay_through_task_rescores_the_archive() {
        let ds = FaceDataset::new(96, 72, 6, 1, 3);
        let cfg = PipelineConfig::new(96, 72, Baseline::Rp { cycle_length: 3 });
        let (live, bytes, _) = record_face(&ds, cfg).unwrap();

        let (frames_eval, summary) =
            replay_through_task(bytes, FaceTask::new(&ds)).unwrap();
        assert_eq!(summary.rejected, 0);
        assert_eq!(summary.stats.frames, 6);
        // Same frames in, same task: same per-frame evaluations out.
        let replay_ap: Vec<f64> = frames_eval
            .iter()
            .map(|(d, g)| rpr_vision::average_precision(d, g, 0.5))
            .collect();
        assert_eq!(replay_ap, live.per_frame_ap);
    }

    #[test]
    fn frame_baselines_record_empty_containers() {
        let ds = FaceDataset::new(96, 72, 4, 1, 3);
        let cfg = PipelineConfig::new(96, 72, Baseline::Fch);
        let (_, bytes, stats) = record_face(&ds, cfg).unwrap();
        assert_eq!(stats.frames, 0, "frame-based baselines never encode");
        assert!(replay_task_inputs(&bytes).unwrap().is_empty());
    }

    #[test]
    fn finishing_twice_is_a_typed_error() {
        let recorder = Recorder::new().unwrap();
        recorder.finish().unwrap();
        assert!(matches!(recorder.finish(), Err(WireError::Io { .. })));
    }
}

//! A simplified H.264-class codec model for the paper's compression
//! baseline (§5.3).
//!
//! The paper could not run a real codec on its FPGA and used datasheet
//! estimates; we go one step further and implement an actual block
//! transform codec — 8x8 DCT, uniform quantization, zero-motion
//! (conditional-replenishment) P-frames — so the baseline has a real
//! reconstruction (for accuracy) and a real bit count (for bandwidth),
//! while the *memory traffic* model keeps the paper's key property:
//! "compression needs multiple frames to be stored in the memory, the
//! pixel memory footprint and throughput scale accordingly".

use rpr_frame::{GrayFrame, Plane};
use serde::{Deserialize, Serialize};

/// Quantization strength of the model codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum H264Quality {
    /// Mild quantization (high quality, higher bitrate).
    High,
    /// Medium quantization — the profile used in the experiments.
    Medium,
    /// Strong quantization (visible artifacts, low bitrate).
    Low,
}

impl H264Quality {
    /// Quantization step applied to AC coefficients.
    fn qstep(self) -> f64 {
        match self {
            H264Quality::High => 4.0,
            H264Quality::Medium => 10.0,
            H264Quality::Low => 24.0,
        }
    }
}

/// Per-frame codec output.
#[derive(Debug, Clone)]
pub struct CodedFrame {
    /// The decoder-side reconstruction.
    pub reconstruction: GrayFrame,
    /// Estimated compressed size in bits.
    pub bits: u64,
    /// True when the frame was coded without reference (I-frame).
    pub intra: bool,
}

/// The codec model: I-frame every `gop` frames, P-frames in between —
/// zero-motion (conditional replenishment) by default, or
/// motion-compensated with [`H264Model::with_motion_search`].
///
/// # Example
///
/// ```
/// use rpr_frame::Plane;
/// use rpr_workloads::{H264Model, H264Quality};
///
/// let mut codec = H264Model::new(H264Quality::Medium, 10);
/// let frame = Plane::from_fn(64, 64, |x, y| (x * 3 + y) as u8);
/// let coded = codec.encode(&frame);
/// assert!(coded.intra);
/// assert!(coded.bits > 0);
/// // Reconstruction is close to the source.
/// assert!(coded.reconstruction.psnr(&frame).unwrap() > 28.0);
/// ```
#[derive(Debug, Clone)]
pub struct H264Model {
    quality: H264Quality,
    gop: u64,
    frame_idx: u64,
    reference: Option<GrayFrame>,
    /// Motion-search radius for P-frames (0 = zero-motion prediction).
    search_radius: u32,
}

impl H264Model {
    /// Creates a codec with the given quality and GOP length.
    ///
    /// # Panics
    ///
    /// Panics when `gop == 0`.
    pub fn new(quality: H264Quality, gop: u64) -> Self {
        assert!(gop > 0, "GOP length must be >= 1");
        H264Model { quality, gop, frame_idx: 0, reference: None, search_radius: 0 }
    }

    /// Enables motion-compensated prediction: P-frame blocks are
    /// predicted from the best-matching reference block within
    /// `radius` pixels (three-step search), instead of the co-located
    /// block. Costs extra per-block vector bits but shrinks residuals
    /// on moving content.
    pub fn with_motion_search(mut self, radius: u32) -> Self {
        self.search_radius = radius;
        self
    }

    /// The configured quality.
    pub fn quality(&self) -> H264Quality {
        self.quality
    }

    /// Encodes the next frame in display order.
    pub fn encode(&mut self, frame: &GrayFrame) -> CodedFrame {
        let intra = self.frame_idx.is_multiple_of(self.gop) || self.reference.is_none();
        let w = frame.width();
        let h = frame.height();
        let mut recon: GrayFrame = Plane::new(w, h);
        let mut bits: u64 = 0;
        let q = self.quality.qstep();

        let mut block = [[0.0f64; 8]; 8];
        for by in (0..h).step_by(8) {
            for bx in (0..w).step_by(8) {
                // Motion search for P-frame blocks (zero vector when
                // motion compensation is disabled).
                let (mdx, mdy) = if intra || self.search_radius == 0 {
                    (0i32, 0i32)
                } else {
                    best_block_motion(
                        self.reference.as_ref().expect("P-frame has reference"),
                        frame,
                        bx,
                        by,
                        self.search_radius,
                    )
                };
                if mdx != 0 || mdy != 0 {
                    // Exp-Golomb-ish cost of signalling the vector.
                    bits += 4
                        + u64::from(mdx.unsigned_abs() + 1).ilog2() as u64
                        + u64::from(mdy.unsigned_abs() + 1).ilog2() as u64;
                }
                // Gather the residual (P) or source (I) block.
                for y in 0..8u32 {
                    for x in 0..8u32 {
                        let src = f64::from(frame.get_clamped(
                            i64::from(bx + x),
                            i64::from(by + y),
                        ));
                        let pred = if intra {
                            128.0
                        } else {
                            f64::from(
                                self.reference
                                    .as_ref()
                                    .expect("P-frame has reference")
                                    .get_clamped(
                                        i64::from(bx + x) + i64::from(mdx),
                                        i64::from(by + y) + i64::from(mdy),
                                    ),
                            )
                        };
                        block[y as usize][x as usize] = src - pred;
                    }
                }
                let mut coeffs = dct8x8(&block);
                // Quantize; DC gets a finer step.
                let mut block_bits = 0u64;
                for (i, row) in coeffs.iter_mut().enumerate() {
                    for (j, c) in row.iter_mut().enumerate() {
                        let step = if i == 0 && j == 0 { q / 2.0 } else { q };
                        let level = (*c / step).round();
                        *c = level * step;
                        if level != 0.0 {
                            // Exp-Golomb-style cost: sign + magnitude bits
                            // + position overhead.
                            block_bits += 3 + (level.abs() as u64 + 1).ilog2() as u64 * 2;
                        }
                    }
                }
                bits += block_bits + 1; // coded-block flag
                let spatial = idct8x8(&coeffs);
                for y in 0..8u32 {
                    for x in 0..8u32 {
                        if bx + x >= w || by + y >= h {
                            continue;
                        }
                        let pred = if intra {
                            128.0
                        } else {
                            f64::from(
                                self.reference
                                    .as_ref()
                                    .expect("P-frame has reference")
                                    .get_clamped(
                                        i64::from(bx + x) + i64::from(mdx),
                                        i64::from(by + y) + i64::from(mdy),
                                    ),
                            )
                        };
                        let v = (spatial[y as usize][x as usize] + pred)
                            .round()
                            .clamp(0.0, 255.0) as u8;
                        recon.set(bx + x, by + y, v);
                    }
                }
            }
        }

        self.reference = Some(recon.clone());
        self.frame_idx += 1;
        CodedFrame { reconstruction: recon, bits, intra }
    }

    /// DRAM traffic of encoding one `w x h` frame, in bytes
    /// `(read, write)`: the encoder reads the current frame and (for P
    /// frames) the reference, and writes the reconstruction plus the
    /// bitstream.
    pub fn frame_traffic_bytes(&self, w: u32, h: u32, coded: &CodedFrame) -> (u64, u64) {
        let frame_bytes = u64::from(w) * u64::from(h);
        let read = if coded.intra { frame_bytes } else { 2 * frame_bytes };
        let write = frame_bytes + coded.bits / 8;
        (read, write)
    }

    /// Frames the codec keeps resident (current + reference +
    /// reconstruction), for the footprint model.
    pub fn resident_frames(&self) -> u64 {
        3
    }
}

/// Three-step motion search for one 8x8 block: the `(dx, dy)` into the
/// reference minimizing SAD, with zero-vector bias on ties.
fn best_block_motion(
    reference: &GrayFrame,
    frame: &GrayFrame,
    bx: u32,
    by: u32,
    radius: u32,
) -> (i32, i32) {
    let sad = |dx: i32, dy: i32| -> u64 {
        let mut total = 0u64;
        for y in 0..8u32 {
            for x in 0..8u32 {
                let c = i64::from(frame.get_clamped(i64::from(bx + x), i64::from(by + y)));
                let p = i64::from(reference.get_clamped(
                    i64::from(bx + x) + i64::from(dx),
                    i64::from(by + y) + i64::from(dy),
                ));
                total += c.abs_diff(p);
            }
        }
        total
    };
    let mut best = (0i32, 0i32, sad(0, 0));
    let mut step = (radius.max(1) as i32 + 1) / 2;
    while step >= 1 {
        let centre = (best.0, best.1);
        for dy in [-step, 0, step] {
            for dx in [-step, 0, step] {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let cand = (centre.0 + dx, centre.1 + dy);
                if cand.0.unsigned_abs() > radius || cand.1.unsigned_abs() > radius {
                    continue;
                }
                let s = sad(cand.0, cand.1);
                if s < best.2 {
                    best = (cand.0, cand.1, s);
                }
            }
        }
        step /= 2;
    }
    (best.0, best.1)
}

/// Naive separable 8x8 type-II DCT.
fn dct8x8(block: &[[f64; 8]; 8]) -> [[f64; 8]; 8] {
    let mut out = [[0.0; 8]; 8];
    for (u, row) in out.iter_mut().enumerate() {
        for (v, c) in row.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (x, brow) in block.iter().enumerate() {
                for (y, &val) in brow.iter().enumerate() {
                    sum += val
                        * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            *c = 0.25 * cu * cv * sum;
        }
    }
    out
}

/// Inverse of [`dct8x8`].
fn idct8x8(coeffs: &[[f64; 8]; 8]) -> [[f64; 8]; 8] {
    let mut out = [[0.0; 8]; 8];
    for (x, row) in out.iter_mut().enumerate() {
        for (y, val) in row.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (u, crow) in coeffs.iter().enumerate() {
                for (v, &c) in crow.iter().enumerate() {
                    let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                    let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                    sum += cu
                        * cv
                        * c
                        * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos()
                        * ((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI / 16.0).cos();
                }
            }
            *val = 0.25 * sum;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: u32, h: u32) -> GrayFrame {
        Plane::from_fn(w, h, |x, y| {
            (128.0 + 80.0 * ((f64::from(x) * 0.3).sin() * (f64::from(y) * 0.2).cos())) as u8
        })
    }

    #[test]
    fn dct_roundtrips() {
        let mut block = [[0.0; 8]; 8];
        for (i, row) in block.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (i * 8 + j) as f64 - 32.0;
            }
        }
        let back = idct8x8(&dct8x8(&block));
        for i in 0..8 {
            for j in 0..8 {
                assert!((block[i][j] - back[i][j]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn iframe_reconstruction_is_faithful() {
        let frame = textured(64, 64);
        let mut codec = H264Model::new(H264Quality::High, 10);
        let coded = codec.encode(&frame);
        assert!(coded.intra);
        assert!(coded.reconstruction.psnr(&frame).unwrap() > 35.0);
    }

    #[test]
    fn static_pframes_cost_few_bits() {
        let frame = textured(64, 64);
        let mut codec = H264Model::new(H264Quality::Medium, 10);
        let i = codec.encode(&frame);
        let p = codec.encode(&frame);
        assert!(!p.intra);
        assert!(p.bits * 4 < i.bits, "P {} vs I {} bits", p.bits, i.bits);
    }

    #[test]
    fn lower_quality_means_fewer_bits_worse_psnr() {
        let frame = textured(64, 64);
        let hi = H264Model::new(H264Quality::High, 10).encode(&frame);
        let lo = H264Model::new(H264Quality::Low, 10).encode(&frame);
        assert!(lo.bits < hi.bits);
        assert!(
            lo.reconstruction.psnr(&frame).unwrap() < hi.reconstruction.psnr(&frame).unwrap()
        );
    }

    #[test]
    fn gop_restarts_intra() {
        let frame = textured(32, 32);
        let mut codec = H264Model::new(H264Quality::Medium, 3);
        let kinds: Vec<bool> = (0..7).map(|_| codec.encode(&frame).intra).collect();
        assert_eq!(kinds, vec![true, false, false, true, false, false, true]);
    }

    #[test]
    fn traffic_scales_with_multi_frame_storage() {
        let frame = textured(32, 32);
        let mut codec = H264Model::new(H264Quality::Medium, 10);
        let i = codec.encode(&frame);
        let (r_i, _) = codec.frame_traffic_bytes(32, 32, &i);
        let p = codec.encode(&frame);
        let (r_p, _) = codec.frame_traffic_bytes(32, 32, &p);
        assert_eq!(r_i, 32 * 32);
        assert_eq!(r_p, 2 * 32 * 32); // current + reference
        assert_eq!(codec.resident_frames(), 3);
    }

    #[test]
    fn motion_compensation_beats_zero_motion_on_panning_content() {
        // A translating texture: zero-motion P-frames see large
        // residuals, motion-compensated ones nearly none.
        let shifted = |offset: u32| {
            Plane::from_fn(64, 64, move |x, y| {
                (((x + offset) % 16).wrapping_mul(13) ^ (y % 16).wrapping_mul(29)) as u8
            })
        };
        let mut zero = H264Model::new(H264Quality::Medium, 10);
        zero.encode(&shifted(0));
        let p_zero = zero.encode(&shifted(4));

        let mut mc = H264Model::new(H264Quality::Medium, 10).with_motion_search(8);
        mc.encode(&shifted(0));
        let p_mc = mc.encode(&shifted(4));

        assert!(
            p_mc.bits * 2 < p_zero.bits,
            "motion-compensated {} vs zero-motion {} bits",
            p_mc.bits,
            p_zero.bits
        );
        assert!(
            p_mc.reconstruction.psnr(&shifted(4)).unwrap()
                >= p_zero.reconstruction.psnr(&shifted(4)).unwrap() - 0.5
        );
    }

    #[test]
    fn motion_search_is_free_on_static_content() {
        let frame = textured(64, 64);
        let mut zero = H264Model::new(H264Quality::Medium, 10);
        zero.encode(&frame);
        let p_zero = zero.encode(&frame);
        let mut mc = H264Model::new(H264Quality::Medium, 10).with_motion_search(8);
        mc.encode(&frame);
        let p_mc = mc.encode(&frame);
        // Zero-vector bias: static blocks pay no vector bits.
        assert_eq!(p_mc.bits, p_zero.bits);
    }

    #[test]
    fn non_multiple_of_8_dimensions_are_handled() {
        let frame = textured(37, 29);
        let mut codec = H264Model::new(H264Quality::Medium, 5);
        let coded = codec.encode(&frame);
        assert_eq!(coded.reconstruction.width(), 37);
        assert!(coded.reconstruction.psnr(&frame).unwrap() > 25.0);
    }
}

//! The experiment pipeline: one frame at a time, a workload's frames
//! flow through the configured [`Baseline`]'s capture path while the
//! traffic, footprint, and region statistics the paper reports are
//! recorded on the side.

use crate::{Baseline, H264Model, RegionStats, RegionStatsCollector};
use rpr_core::{
    AdaptiveCyclePolicy, CycleLengthPolicy, EncodedFrame, EncoderStats, Feature, FeaturePolicy,
    FeaturePolicyParams, KalmanPolicy, Policy, PolicyContext, RegionLabel, RegionList,
    RegionRuntime, SoftwareDecoder,
};
use rpr_frame::{downscale_box, GrayFrame, PixelFormat, Plane, Rect};
use rpr_memsim::{FramebufferPool, TrafficRecorder, TrafficSummary};
use rpr_vision::{kmeans, resize_bilinear};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which region-selection policy drives the rhythmic baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// The paper's example policy: cycle-length full captures +
    /// feature/detection-guided regions (§4.3.1).
    #[default]
    CycleFeature,
    /// Cycle-length full captures + Kalman-predicted regions (§4.3.1's
    /// "prediction strategies, e.g., with Kalman filters").
    CycleKalman,
    /// Motion-adaptive cycle length (§4.3.1's adaptive-cycle future
    /// direction) around the feature policy.
    AdaptiveCycle {
        /// Shortest cycle under heavy motion.
        min_cycle: u64,
        /// Longest cycle for static scenes.
        max_cycle: u64,
    },
    /// Cycle-length full captures + Euphrates-style motion-vector
    /// regions: block motion between the two most recent decoded frames
    /// ("readily available in memory") adds moving-cluster regions on
    /// top of the task's detections (§4.3.1).
    CycleMotion,
    /// The feature policy wrapped in `rpr-predict`'s motion-compensated
    /// forward projection: block motion between the two most recent
    /// decoded frames feeds a RANSAC ego-motion fit, and the planned
    /// t−1 labels are rewritten to predicted-t labels before they reach
    /// the encoder.
    CyclePredictive,
}

/// Static configuration of an experiment pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Frame rate used for throughput and rate accounting.
    pub fps: f64,
    /// Pixel format used for byte accounting (the gray pipeline's
    /// relative numbers are format-independent; RGB888 reproduces the
    /// paper's absolute scale).
    pub format: PixelFormat,
    /// The capture strategy under evaluation.
    pub baseline: Baseline,
    /// Feature-policy tuning for the rhythmic configurations.
    pub policy_params: FeaturePolicyParams,
    /// Which policy drives region selection for rhythmic baselines.
    pub policy_kind: PolicyKind,
    /// Seed for the multi-ROI k-means clustering.
    pub seed: u64,
}

impl PipelineConfig {
    /// A config with sensible defaults for `width x height` at 30 fps.
    ///
    /// Byte accounting uses RGB888, the paper's frame format: payload
    /// traffic scales with 3 bytes/pixel while the EncMask stays 2
    /// bits/pixel, reproducing the paper's ~8 % metadata overhead.
    pub fn new(width: u32, height: u32, baseline: Baseline) -> Self {
        PipelineConfig {
            width,
            height,
            fps: 30.0,
            format: PixelFormat::Rgb888,
            baseline,
            policy_params: FeaturePolicyParams::default(),
            policy_kind: PolicyKind::default(),
            seed: 0x9E37,
        }
    }

    /// Switches the rhythmic policy (builder style).
    pub fn with_policy(mut self, policy_kind: PolicyKind) -> Self {
        self.policy_kind = policy_kind;
        self
    }
}

/// Everything the memory side of an experiment measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Measurements {
    /// Aggregated DRAM traffic.
    pub traffic: TrafficSummary,
    /// Mean resident framebuffer bytes.
    pub mean_footprint_bytes: f64,
    /// Peak resident framebuffer bytes.
    pub peak_footprint_bytes: u64,
    /// Per-frame captured-pixel fraction (1.0 for full-frame paths).
    pub captured_fractions: Vec<f64>,
    /// Table 4 region statistics (rhythmic baselines only).
    pub region_stats: Option<RegionStats>,
    /// Encoder work counters (rhythmic baselines only).
    pub encoder: Option<EncoderStats>,
}

impl Measurements {
    /// Mean captured fraction across all frames.
    pub fn mean_captured_fraction(&self) -> f64 {
        if self.captured_fractions.is_empty() {
            0.0
        } else {
            self.captured_fractions.iter().sum::<f64>() / self.captured_fractions.len() as f64
        }
    }
}

/// An observer of the encoded frames the rhythmic capture path
/// produces — what [`Pipeline::set_encoded_tap`] installs.
pub type EncodedTap = Box<dyn FnMut(&EncodedFrame) + Send>;

/// The per-baseline frame pipeline. Tasks push raw frames in (together
/// with the features/detections their policy planning needs) and get
/// the frame their algorithm will actually see back.
pub struct Pipeline {
    cfg: PipelineConfig,
    runtime: RegionRuntime,
    decoder: SoftwareDecoder,
    traffic: TrafficRecorder,
    pool: FramebufferPool,
    h264: Option<H264Model>,
    policy: Box<dyn Policy + Send>,
    stats: RegionStatsCollector,
    fractions: Vec<f64>,
    frame_idx: u64,
    /// The two most recent decoded frames (newest last), kept for the
    /// motion-vector and predictive policies.
    decoded_history: Vec<GrayFrame>,
    /// The captured-region rectangles of the same two frames. Decoded
    /// pixels outside these rects are stale copies, so only blocks
    /// inside them carry motion evidence.
    captured_history: Vec<Vec<Rect>>,
    /// Motion-estimate handle shared with the predictive policy
    /// (`Some` only for [`PolicyKind::CyclePredictive`]).
    motion: Option<rpr_predict::SharedMotion>,
    /// Observer invoked with every encoded frame the rhythmic path
    /// produces (the record half of wire record/replay). `None` costs
    /// nothing; the rhythmic branch is the only caller.
    encoded_tap: Option<EncodedTap>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("baseline", &self.cfg.baseline)
            .field("policy", &self.policy.name())
            .field("frame_idx", &self.frame_idx)
            .finish()
    }
}

impl Pipeline {
    /// Creates the pipeline for one experiment run.
    pub fn new(cfg: PipelineConfig) -> Self {
        let cycle = match cfg.baseline {
            Baseline::Rp { cycle_length } => cycle_length,
            Baseline::MultiRoi { cycle_length, .. } => cycle_length,
            _ => 10,
        };
        let h264 = match cfg.baseline {
            Baseline::H264 { quality } => Some(H264Model::new(quality, cycle)),
            _ => None,
        };
        let window = if matches!(cfg.baseline, Baseline::H264 { .. }) { 3 } else { 4 };
        let feature_policy = FeaturePolicy::with_params(cfg.policy_params);
        let mut motion = None;
        let policy: Box<dyn Policy + Send> = match cfg.policy_kind {
            PolicyKind::CycleFeature | PolicyKind::CycleMotion => {
                Box::new(CycleLengthPolicy::new(cycle, feature_policy))
            }
            PolicyKind::CycleKalman => {
                Box::new(CycleLengthPolicy::new(cycle, KalmanPolicy::new()))
            }
            PolicyKind::AdaptiveCycle { min_cycle, max_cycle } => {
                Box::new(AdaptiveCyclePolicy::new(min_cycle, max_cycle, feature_policy))
            }
            PolicyKind::CyclePredictive => {
                let handle = rpr_predict::SharedMotion::new();
                motion = Some(handle.clone());
                Box::new(rpr_predict::PredictivePolicy::new(
                    Box::new(CycleLengthPolicy::new(cycle, feature_policy)),
                    handle,
                ))
            }
        };
        Pipeline {
            runtime: RegionRuntime::new(cfg.width, cfg.height),
            decoder: SoftwareDecoder::new(cfg.width, cfg.height),
            traffic: TrafficRecorder::new(cfg.fps),
            pool: FramebufferPool::new(window),
            h264,
            policy,
            stats: RegionStatsCollector::new(cfg.fps),
            fractions: Vec::new(),
            frame_idx: 0,
            decoded_history: Vec::new(),
            captured_history: Vec::new(),
            motion,
            encoded_tap: None,
            cfg,
        }
    }

    /// True when this pipeline's policy consumes decoded-frame motion.
    fn uses_motion_history(&self) -> bool {
        matches!(
            self.cfg.policy_kind,
            PolicyKind::CycleMotion | PolicyKind::CyclePredictive
        )
    }

    /// The region labels the policy planned for the most recent frame —
    /// what the tracking runner scores against ground-truth tracks.
    pub fn planned_regions(&self) -> &RegionList {
        self.runtime.regions()
    }

    /// The shared motion-estimate handle (`Some` only for
    /// [`PolicyKind::CyclePredictive`]) — lets callers read the ego
    /// fit's inlier fraction after each frame.
    pub fn motion(&self) -> Option<&rpr_predict::SharedMotion> {
        self.motion.as_ref()
    }

    /// Installs an observer for every [`EncodedFrame`] the rhythmic
    /// (`Rp`) capture path produces, in frame order — the hook wire
    /// recording attaches to. Frame-based baselines never encode, so
    /// the tap never fires for them.
    pub fn set_encoded_tap(&mut self, tap: EncodedTap) {
        self.encoded_tap = Some(tap);
    }

    /// The configured baseline.
    pub fn baseline(&self) -> Baseline {
        self.cfg.baseline
    }

    /// True when the *next* processed frame is a periodic full capture
    /// (always true for the frame-based baselines).
    pub fn next_is_full_capture(&self) -> bool {
        match self.cfg.baseline {
            Baseline::Rp { cycle_length } | Baseline::MultiRoi { cycle_length, .. } => {
                self.frame_idx.is_multiple_of(cycle_length)
            }
            _ => true,
        }
    }

    /// Pushes one raw sensor/ISP frame through the capture path.
    ///
    /// `features` and `detections` are what the task extracted from the
    /// *previous* processed frame; the rhythmic and multi-ROI baselines
    /// use them to plan this frame's regions.
    pub fn process_frame(
        &mut self,
        raw: &GrayFrame,
        features: Vec<Feature>,
        detections: Vec<(Rect, f64)>,
    ) -> GrayFrame {
        let _span = rpr_trace::span(rpr_trace::names::PIPELINE_FRAME, "workloads")
            .with_frame(self.frame_idx);
        let bpp = self.cfg.format.bytes_per_pixel() as u64;
        let frame_bytes = u64::from(self.cfg.width) * u64::from(self.cfg.height) * bpp;
        let out = match self.cfg.baseline {
            Baseline::Fch => {
                self.traffic.record_raw_frame_read(frame_bytes);
                self.traffic.record_raw_frame_write(frame_bytes);
                self.pool.admit_raw(self.frame_idx, frame_bytes);
                self.fractions.push(1.0);
                raw.clone()
            }
            Baseline::Fcl { factor } => {
                let small = downscale_box(raw, factor.max(1));
                let small_bytes =
                    u64::from(small.width()) * u64::from(small.height()) * bpp;
                self.traffic.record_raw_frame_read(small_bytes);
                self.traffic.record_raw_frame_write(small_bytes);
                self.pool.admit_raw(self.frame_idx, small_bytes);
                self.fractions
                    .push(small_bytes as f64 / frame_bytes.max(1) as f64);
                // Upscale back so the task sees full-frame coordinates
                // (with the lost detail gone).
                resize_bilinear(&small, self.cfg.width, self.cfg.height)
            }
            Baseline::Rp { .. } => {
                let mut detections = detections;
                if let [prev, cur] = &self.decoded_history[..] {
                    match self.cfg.policy_kind {
                        PolicyKind::CycleMotion => {
                            let mvs = rpr_vision::estimate_block_motion(prev, cur, 16, 8);
                            detections.extend(rpr_vision::moving_regions(&mvs, 1.5));
                        }
                        PolicyKind::CyclePredictive => {
                            if let Some(motion) = &self.motion {
                                let mvs = rpr_vision::estimate_block_motion(prev, cur, 16, 8);
                                // Three gates keep the ego fit honest:
                                // decoded pixels outside the captured
                                // regions are stale copies that vote
                                // "zero motion" with zero SAD (keep only
                                // blocks freshly captured in both
                                // frames); flat blocks tie at many
                                // offsets and the zero bias turns them
                                // into confident spurious zero vectors;
                                // and a match whose window fell on stale
                                // content shows up as a high residual.
                                let fresh: Vec<_> = mvs
                                    .into_iter()
                                    .filter(|v| {
                                        (match &self.captured_history[..] {
                                            [ra, rb] => {
                                                covers_block(ra, &v.block)
                                                    && covers_block(rb, &v.block)
                                            }
                                            _ => true,
                                        }) && textured_block(cur, &v.block)
                                            && v.sad <= v.block.area() * MAX_SAD_PER_PX
                                    })
                                    .collect();
                                // Tracked regions can be as small as one
                                // block pair; small sets take the
                                // translation-only path inside the fit.
                                let cfg = rpr_predict::EgoEstimatorConfig {
                                    min_vectors: 2,
                                    ..Default::default()
                                };
                                motion.update(fresh, &cfg);
                            }
                        }
                        _ => {}
                    }
                }
                let ctx = PolicyContext {
                    frame_idx: self.frame_idx,
                    width: self.cfg.width,
                    height: self.cfg.height,
                    features,
                    detections,
                };
                self.runtime.apply_policy(&mut *self.policy, ctx);
                let planned = self.runtime.regions();
                let is_full = planned.len() == 1
                    && planned.labels()[0]
                        == RegionLabel::full_frame(self.cfg.width, self.cfg.height);
                self.stats.observe(planned, is_full);
                let planned_rects: Vec<Rect> = planned.iter().map(|r| r.rect()).collect();
                let encoded = self.runtime.encode_frame(raw);
                if let Some(tap) = self.encoded_tap.as_mut() {
                    tap(&encoded);
                }
                self.traffic.record_encoded_read(&encoded, self.cfg.format);
                self.traffic.record_encoded_write(&encoded, self.cfg.format);
                self.pool.admit_encoded(&encoded, self.cfg.format);
                self.fractions.push(encoded.captured_fraction());
                let decoded = self.decoder.decode(&encoded);
                if self.uses_motion_history() {
                    self.decoded_history.push(decoded.clone());
                    if self.decoded_history.len() > 2 {
                        self.decoded_history.remove(0);
                    }
                    self.captured_history.push(planned_rects);
                    if self.captured_history.len() > 2 {
                        self.captured_history.remove(0);
                    }
                }
                decoded
            }
            Baseline::MultiRoi { max_regions, cycle_length } => {
                if self.frame_idx.is_multiple_of(cycle_length) {
                    self.traffic.record_raw_frame_read(frame_bytes);
                    self.traffic.record_raw_frame_write(frame_bytes);
                    self.pool.admit_raw(self.frame_idx, frame_bytes);
                    self.fractions.push(1.0);
                    raw.clone()
                } else {
                    let boxes = self.cluster_rois(&features, &detections, max_regions);
                    let roi_bytes: u64 =
                        boxes.iter().map(|b| b.area() * bpp).sum();
                    self.traffic.record_raw_frame_read(roi_bytes);
                    self.traffic.record_raw_frame_write(roi_bytes);
                    self.pool.admit_raw(self.frame_idx, roi_bytes);
                    self.fractions.push(roi_bytes as f64 / frame_bytes.max(1) as f64);
                    // Grouped per-region storage decodes to the regions
                    // pasted on black.
                    let mut out: GrayFrame = Plane::new(self.cfg.width, self.cfg.height);
                    for b in &boxes {
                        for y in b.y..b.bottom() {
                            for x in b.x..b.right() {
                                out.set(x, y, raw.get(x, y).unwrap_or(0));
                            }
                        }
                    }
                    out
                }
            }
            Baseline::H264 { .. } => {
                let codec = self.h264.as_mut().expect("H264 baseline has a codec");
                let coded = codec.encode(raw);
                let (read, write) = codec.frame_traffic_bytes(self.cfg.width, self.cfg.height, &coded);
                // Capture writes the raw frame; the consumer reads the
                // decoded frame; the codec adds its own reference traffic.
                self.traffic.record_raw_frame_read(frame_bytes + read * bpp);
                self.traffic.record_extra_write(write * bpp);
                self.traffic.record_raw_frame_write(frame_bytes);
                // One buffer per frame; the 3-frame window keeps the
                // codec's current + reference + reconstruction resident.
                self.pool.admit_raw(self.frame_idx, frame_bytes);
                self.fractions.push(1.0);
                coded.reconstruction
            }
        };
        self.frame_idx += 1;
        out
    }

    /// Clusters the policy's would-be regions into at most
    /// `max_regions` full-resolution boxes (the paper's multi-ROI
    /// emulation via k-means, §5.3).
    fn cluster_rois(
        &self,
        features: &[Feature],
        detections: &[(Rect, f64)],
        max_regions: usize,
    ) -> Vec<Rect> {
        let policy = FeaturePolicy::with_params(self.cfg.policy_params);
        let mut labels: Vec<RegionLabel> =
            features.iter().map(|f| policy.label_for_feature(f)).collect();
        labels.extend(detections.iter().map(|(r, d)| policy.label_for_detection(r, *d)));
        let list = RegionList::new_lossy(self.cfg.width, self.cfg.height, labels);
        if list.is_empty() {
            return Vec::new();
        }
        if list.len() <= max_regions {
            return list.iter().map(|r| r.rect()).collect();
        }
        let centers: Vec<(f64, f64)> = list
            .iter()
            .map(|r| {
                let c = r.rect().center();
                (c.0, c.1)
            })
            .collect();
        let result = kmeans(&centers, max_regions, 20, self.cfg.seed)
            .expect("non-empty points and k > 0");
        let mut boxes: Vec<Option<Rect>> = vec![None; max_regions];
        for (i, region) in list.iter().enumerate() {
            let k = result.assignments[i];
            let r = region.rect().clamped(self.cfg.width, self.cfg.height);
            boxes[k] = Some(match boxes[k] {
                Some(b) => b.union(&r),
                None => r,
            });
        }
        boxes.into_iter().flatten().collect()
    }

    /// Finalizes the run, returning the memory-side measurements.
    pub fn finish(self) -> Measurements {
        Measurements {
            traffic: self.traffic.summary(),
            mean_footprint_bytes: self.pool.mean_bytes(),
            peak_footprint_bytes: self.pool.peak_bytes(),
            captured_fractions: self.fractions,
            region_stats: self.stats.finish(),
            encoder: self
                .cfg
                .baseline
                .is_rhythmic()
                .then(|| *self.runtime.encoder().stats()),
        }
    }
}

/// True when `block` lies entirely inside one of `rects` — the test for
/// "this block's pixels were freshly captured, not stale copies".
fn covers_block(rects: &[Rect], block: &Rect) -> bool {
    rects
        .iter()
        .any(|r| r.intersection(block).is_some_and(|i| i.area() == block.area()))
}

/// Highest plausible per-pixel SAD for a match onto fresh content;
/// above this the match window likely straddled stale pixels.
const MAX_SAD_PER_PX: u64 = 16;

/// Mean absolute deviation a block must exceed to be worth matching:
/// flat blocks tie at many offsets, so their vectors carry no signal.
const MIN_BLOCK_MAD: u64 = 4;

/// Whether the block has enough texture for its match to be
/// trustworthy.
fn textured_block(frame: &GrayFrame, block: &Rect) -> bool {
    let area = block.area().max(1);
    let mut sum = 0u64;
    for y in block.y..block.y.saturating_add(block.h) {
        for x in block.x..block.x.saturating_add(block.w) {
            sum += u64::from(frame.get_clamped(i64::from(x), i64::from(y)));
        }
    }
    let mean = sum / area;
    let mut dev = 0u64;
    for y in block.y..block.y.saturating_add(block.h) {
        for x in block.x..block.x.saturating_add(block.w) {
            dev += u64::from(frame.get_clamped(i64::from(x), i64::from(y))).abs_diff(mean);
        }
    }
    dev / area >= MIN_BLOCK_MAD
}

/// One row of an experiment: a task run on a dataset under a baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Task name ("visual-slam", "pose-estimation", "face-detection").
    pub task: String,
    /// Dataset name.
    pub dataset: String,
    /// Baseline label ("FCH", "RP10", ...).
    pub baseline: String,
    /// Named accuracy metrics (e.g. `ate_mm`, `map`).
    pub accuracy: BTreeMap<String, f64>,
    /// Memory-side measurements.
    pub measurements: Measurements,
}

impl ExperimentResult {
    /// Assembles a result row.
    pub fn new(
        task: &str,
        dataset: &str,
        baseline: Baseline,
        accuracy: BTreeMap<String, f64>,
        measurements: Measurements,
    ) -> Self {
        ExperimentResult {
            task: task.to_string(),
            dataset: dataset.to_string(),
            baseline: baseline.label(),
            accuracy,
            measurements,
        }
    }

    /// Total throughput in MB/s (write + read) — Fig. 8's y-axis.
    pub fn throughput_mb_s(&self) -> f64 {
        self.measurements.traffic.throughput_mb_s
    }

    /// Mean footprint in MB — Fig. 8's memory axis.
    pub fn mean_footprint_mb(&self) -> f64 {
        self.measurements.mean_footprint_bytes / 1.0e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: u32, h: u32, t: u32) -> GrayFrame {
        Plane::from_fn(w, h, |x, y| ((x * 3) ^ (y * 7) ^ (t * 11)) as u8)
    }

    fn run(baseline: Baseline, frames: u32) -> Measurements {
        let mut p = Pipeline::new(PipelineConfig::new(64, 48, baseline));
        for t in 0..frames {
            let feats = vec![Feature::new(20.0, 20.0, 16.0).with_displacement(1.0)];
            let _ = p.process_frame(&textured(64, 48, t), feats, vec![]);
        }
        p.finish()
    }

    #[test]
    fn fch_moves_full_frames() {
        let m = run(Baseline::Fch, 5);
        assert_eq!(m.traffic.write_bytes, 5 * 64 * 48 * 3); // RGB888
        assert_eq!(m.traffic.read_bytes, 5 * 64 * 48 * 3);
        assert_eq!(m.mean_captured_fraction(), 1.0);
    }

    #[test]
    fn fcl_divides_traffic_by_factor_squared() {
        let m = run(Baseline::Fcl { factor: 4 }, 5);
        assert_eq!(m.traffic.write_bytes, 5 * (64 / 4) * (48 / 4) * 3);
    }

    #[test]
    fn rp_reduces_traffic_vs_fch() {
        let fch = run(Baseline::Fch, 10);
        let rp = run(Baseline::Rp { cycle_length: 5 }, 10);
        assert!(rp.traffic.write_bytes < fch.traffic.write_bytes);
        assert!(rp.region_stats.is_some());
        assert!(rp.encoder.is_some());
        // Full captures on frames 0 and 5.
        assert_eq!(rp.captured_fractions[0], 1.0);
        assert_eq!(rp.captured_fractions[5], 1.0);
        assert!(rp.captured_fractions[1] < 0.5);
    }

    #[test]
    fn rp_decode_preserves_region_pixels() {
        let mut p = Pipeline::new(PipelineConfig::new(64, 48, Baseline::Rp { cycle_length: 5 }));
        let raw0 = textured(64, 48, 0);
        let d0 = p.process_frame(&raw0, vec![], vec![]);
        assert_eq!(d0, raw0, "full capture decodes losslessly");
        let raw1 = textured(64, 48, 1);
        let feats = vec![Feature::new(30.0, 24.0, 10.0).with_displacement(9.0)];
        let d1 = p.process_frame(&raw1, feats, vec![]);
        // Inside the feature region the fresh pixels are present.
        assert_eq!(d1.get(30, 24), raw1.get(30, 24));
    }

    #[test]
    fn predictive_policy_runs_end_to_end_and_stays_in_bounds() {
        // Content scrolls right 4 px/frame.
        let scroll = |t: u32| {
            Plane::from_fn(96, 64, |x, y| {
                let sx = x.wrapping_sub(t * 4);
                ((sx.wrapping_mul(13)) ^ (y.wrapping_mul(29))).wrapping_mul(31) as u8
            })
        };
        let cfg = PipelineConfig::new(96, 64, Baseline::Rp { cycle_length: 4 })
            .with_policy(PolicyKind::CyclePredictive);
        let mut p = Pipeline::new(cfg);
        for t in 0..9u32 {
            let det = vec![(Rect::new(30, 20, 20, 20), 0.0)];
            let _ = p.process_frame(&scroll(t), vec![], det);
            for r in p.planned_regions().labels() {
                assert!(r.right() <= 96 && r.bottom() <= 64, "out of bounds {r}");
            }
        }
        let m = p.finish();
        assert!(m.region_stats.is_some());
        assert!(m.encoder.is_some());
        // Full captures survive prediction untouched.
        assert_eq!(m.captured_fractions[0], 1.0);
        assert_eq!(m.captured_fractions[4], 1.0);
        assert!(m.captured_fractions[1] < 1.0);
    }

    #[test]
    fn multiroi_caps_region_count_and_costs_more_than_rp() {
        let mut many_feats = Vec::new();
        for i in 0..40 {
            many_feats.push(
                Feature::new(f64::from(i % 8) * 8.0, f64::from(i / 8) * 9.0, 8.0)
                    .with_displacement(1.0),
            );
        }
        let cfg_roi = PipelineConfig::new(
            64,
            48,
            Baseline::MultiRoi { max_regions: 4, cycle_length: 5 },
        );
        let mut roi = Pipeline::new(cfg_roi);
        let cfg_rp = PipelineConfig::new(64, 48, Baseline::Rp { cycle_length: 5 });
        let mut rp = Pipeline::new(cfg_rp);
        for t in 0..10u32 {
            let frame = textured(64, 48, t);
            let _ = roi.process_frame(&frame, many_feats.clone(), vec![]);
            let _ = rp.process_frame(&frame, many_feats.clone(), vec![]);
        }
        let m_roi = roi.finish();
        let m_rp = rp.finish();
        assert!(
            m_roi.traffic.write_bytes > m_rp.traffic.write_bytes,
            "multi-ROI {} vs RP {}",
            m_roi.traffic.write_bytes,
            m_rp.traffic.write_bytes
        );
    }

    #[test]
    fn h264_traffic_exceeds_fch() {
        let fch = run(Baseline::Fch, 6);
        let h = run(Baseline::H264 { quality: crate::H264Quality::Medium }, 6);
        assert!(
            h.traffic.write_bytes + h.traffic.read_bytes
                > fch.traffic.write_bytes + fch.traffic.read_bytes
        );
        assert!(h.peak_footprint_bytes >= fch.peak_footprint_bytes / 2);
    }

    #[test]
    fn result_row_carries_labels() {
        let m = run(Baseline::Rp { cycle_length: 10 }, 3);
        let mut acc = BTreeMap::new();
        acc.insert("map".to_string(), 0.9);
        let r = ExperimentResult::new(
            "face-detection",
            "face-seq1",
            Baseline::Rp { cycle_length: 10 },
            acc,
            m,
        );
        assert_eq!(r.baseline, "RP10");
        assert!(r.throughput_mb_s() > 0.0);
    }
}

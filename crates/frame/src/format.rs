use serde::{Deserialize, Serialize};
use std::fmt;

/// Pixel memory layouts understood by the pipeline.
///
/// The format determines how many bytes a pixel occupies in DRAM and on
/// the sensor interface, which feeds the traffic and energy accounting in
/// `rpr-memsim`.
///
/// # Example
///
/// ```
/// use rpr_frame::PixelFormat;
///
/// assert_eq!(PixelFormat::Rgb888.bytes_per_pixel(), 3);
/// assert_eq!(PixelFormat::Gray8.frame_bytes(1920, 1080), 1920 * 1080);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum PixelFormat {
    /// 8-bit single-channel luminance.
    Gray8,
    /// 8-bit Bayer color-filter-array raw data (RGGB pattern).
    BayerRggb8,
    /// 24-bit interleaved RGB.
    Rgb888,
    /// 16-bit YUV 4:2:2 (2 bytes per pixel average).
    Yuv422,
}

impl PixelFormat {
    /// Average number of bytes one pixel occupies in this format.
    pub fn bytes_per_pixel(self) -> usize {
        match self {
            PixelFormat::Gray8 | PixelFormat::BayerRggb8 => 1,
            PixelFormat::Rgb888 => 3,
            PixelFormat::Yuv422 => 2,
        }
    }

    /// Total byte size of a `width x height` frame in this format.
    pub fn frame_bytes(self, width: u32, height: u32) -> usize {
        self.bytes_per_pixel() * width as usize * height as usize
    }
}

impl fmt::Display for PixelFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PixelFormat::Gray8 => "Gray8",
            PixelFormat::BayerRggb8 => "BayerRGGB8",
            PixelFormat::Rgb888 => "RGB888",
            PixelFormat::Yuv422 => "YUV422",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_pixel_matches_layout() {
        assert_eq!(PixelFormat::Gray8.bytes_per_pixel(), 1);
        assert_eq!(PixelFormat::BayerRggb8.bytes_per_pixel(), 1);
        assert_eq!(PixelFormat::Rgb888.bytes_per_pixel(), 3);
        assert_eq!(PixelFormat::Yuv422.bytes_per_pixel(), 2);
    }

    #[test]
    fn frame_bytes_scales_with_dimensions() {
        assert_eq!(PixelFormat::Rgb888.frame_bytes(10, 10), 300);
        assert_eq!(PixelFormat::Gray8.frame_bytes(0, 10), 0);
    }

    #[test]
    fn display_is_nonempty() {
        for fmt in [
            PixelFormat::Gray8,
            PixelFormat::BayerRggb8,
            PixelFormat::Rgb888,
            PixelFormat::Yuv422,
        ] {
            assert!(!fmt.to_string().is_empty());
        }
    }
}

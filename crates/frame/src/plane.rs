use crate::{FrameError, Rect, Result, Size};
use serde::{Deserialize, Serialize};

/// A dense, row-major 2-D array of pixels.
///
/// `Plane` is the backing store for every raster image in the pipeline:
/// Bayer raw data off the sensor, ISP output channels, decoded frames
/// handed to vision algorithms. Rows are contiguous with no padding, so
/// `data[y * width + x]` addresses pixel `(x, y)` — the same raster-scan
/// addressing the paper's encoder and decoder preserve.
///
/// # Example
///
/// ```
/// use rpr_frame::Plane;
///
/// let mut p: Plane<u8> = Plane::new(4, 3);
/// p.set(2, 1, 9);
/// assert_eq!(p.get(2, 1), Some(9));
/// assert_eq!(p.row(1), &[0, 0, 9, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plane<T> {
    width: u32,
    height: u32,
    data: Vec<T>,
}

/// An 8-bit luminance frame, the working format of the vision stack.
pub type GrayFrame = Plane<u8>;

impl<T: Copy + Default> Plane<T> {
    /// Creates a plane of `width x height` default-valued pixels.
    ///
    /// # Panics
    ///
    /// Panics if `width * height` overflows `usize`.
    pub fn new(width: u32, height: u32) -> Self {
        let len = (width as usize)
            .checked_mul(height as usize)
            // rpr-check: allow(panic-reach): u32 x u32 cannot overflow the 64-bit usize this workspace targets
            .expect("plane dimensions overflow");
        Plane { width, height, data: vec![T::default(); len] }
    }

    /// Creates a plane from an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BufferSizeMismatch`] when `data.len()` is not
    /// `width * height`.
    pub fn from_vec(width: u32, height: u32, data: Vec<T>) -> Result<Self> {
        let expected = width as usize * height as usize;
        if data.len() != expected {
            return Err(FrameError::BufferSizeMismatch { expected, actual: data.len() });
        }
        Ok(Plane { width, height, data })
    }

    /// Builds a plane by evaluating `f(x, y)` for every pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> T) -> Self {
        let mut data = Vec::with_capacity(width as usize * height as usize);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Plane { width, height, data }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Width and height as a [`Size`].
    pub fn size(&self) -> Size {
        Size::new(self.width, self.height)
    }

    /// Total number of pixels.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true when the plane holds no pixels.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The pixel at `(x, y)`, or `None` outside the frame.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Option<T> {
        if x < self.width && y < self.height {
            Some(self.data[y as usize * self.width as usize + x as usize])
        } else {
            None
        }
    }

    /// The pixel at `(x, y)` with coordinates clamped to the frame edge.
    ///
    /// Convenient for window-based filters near borders. Returns the
    /// default value for an empty plane.
    #[inline]
    pub fn get_clamped(&self, x: i64, y: i64) -> T {
        if self.is_empty() {
            return T::default();
        }
        let cx = x.clamp(0, i64::from(self.width) - 1) as usize;
        let cy = y.clamp(0, i64::from(self.height) - 1) as usize;
        self.data[cy * self.width as usize + cx]
    }

    /// Sets the pixel at `(x, y)`; out-of-bounds writes are ignored.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, value: T) {
        if x < self.width && y < self.height {
            self.data[y as usize * self.width as usize + x as usize] = value;
        }
    }

    /// Borrows row `y` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `y >= height`.
    pub fn row(&self, y: u32) -> &[T] {
        assert!(y < self.height, "row {y} out of bounds (height {})", self.height);
        let start = y as usize * self.width as usize;
        &self.data[start..start + self.width as usize]
    }

    /// Mutably borrows row `y` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `y >= height`.
    pub fn row_mut(&mut self, y: u32) -> &mut [T] {
        assert!(y < self.height, "row {y} out of bounds (height {})", self.height);
        let start = y as usize * self.width as usize;
        &mut self.data[start..start + self.width as usize]
    }

    /// The whole backing buffer in raster order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the backing buffer in raster order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the plane, returning the raster-order buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Fills every pixel inside `rect` (clamped to the frame) with `value`.
    pub fn fill_rect(&mut self, rect: Rect, value: T) {
        let r = rect.clamped(self.width, self.height);
        for y in r.y..r.bottom() {
            let row = self.row_mut(y);
            for px in &mut row[r.x as usize..r.right() as usize] {
                *px = value;
            }
        }
    }

    /// Copies the pixels inside `rect` (clamped) into a new plane.
    pub fn crop(&self, rect: Rect) -> Plane<T> {
        let r = rect.clamped(self.width, self.height);
        let mut out = Plane::new(r.w, r.h);
        for y in 0..r.h {
            let src = &self.row(r.y + y)[r.x as usize..(r.x + r.w) as usize];
            out.row_mut(y).copy_from_slice(src);
        }
        out
    }
}

impl GrayFrame {
    /// Bilinearly samples the frame at a fractional coordinate.
    ///
    /// Coordinates are clamped to the frame edge, so any finite input is
    /// valid. Returns 0 for an empty frame.
    pub fn sample_bilinear(&self, x: f64, y: f64) -> u8 {
        if self.is_empty() {
            return 0;
        }
        let x0 = x.floor();
        let y0 = y.floor();
        let fx = x - x0;
        let fy = y - y0;
        let x0 = x0 as i64;
        let y0 = y0 as i64;
        let p00 = f64::from(self.get_clamped(x0, y0));
        let p10 = f64::from(self.get_clamped(x0 + 1, y0));
        let p01 = f64::from(self.get_clamped(x0, y0 + 1));
        let p11 = f64::from(self.get_clamped(x0 + 1, y0 + 1));
        let top = p00 * (1.0 - fx) + p10 * fx;
        let bot = p01 * (1.0 - fx) + p11 * fx;
        (top * (1.0 - fy) + bot * fy).round().clamp(0.0, 255.0) as u8
    }

    /// Mean pixel intensity, 0.0 for an empty frame.
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let sum: u64 = self.data.iter().map(|&p| u64::from(p)).sum();
        sum as f64 / self.data.len() as f64
    }

    /// Peak signal-to-noise ratio against a reference frame in dB.
    ///
    /// Returns `f64::INFINITY` for identical frames and `None` when the
    /// dimensions differ.
    pub fn psnr(&self, reference: &GrayFrame) -> Option<f64> {
        if self.size() != reference.size() || self.is_empty() {
            return None;
        }
        let mse: f64 = self
            .data
            .iter()
            .zip(reference.data.iter())
            .map(|(&a, &b)| {
                let d = f64::from(a) - f64::from(b);
                d * d
            })
            .sum::<f64>()
            / self.data.len() as f64;
        if mse == 0.0 {
            Some(f64::INFINITY)
        } else {
            Some(10.0 * (255.0_f64 * 255.0 / mse).log10())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let p: GrayFrame = Plane::new(3, 2);
        assert_eq!(p.as_slice(), &[0; 6]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Plane::from_vec(2, 2, vec![1u8, 2, 3, 4]).is_ok());
        let err = Plane::from_vec(2, 2, vec![1u8, 2, 3]).unwrap_err();
        assert_eq!(err, FrameError::BufferSizeMismatch { expected: 4, actual: 3 });
    }

    #[test]
    fn from_fn_raster_order() {
        let p = Plane::from_fn(3, 2, |x, y| (y * 3 + x) as u8);
        assert_eq!(p.as_slice(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut p: GrayFrame = Plane::new(4, 4);
        p.set(3, 3, 42);
        assert_eq!(p.get(3, 3), Some(42));
        assert_eq!(p.get(4, 3), None);
        p.set(4, 4, 1); // silently ignored
        assert_eq!(p.as_slice().iter().filter(|&&v| v != 0).count(), 1);
    }

    #[test]
    fn get_clamped_replicates_edges() {
        let p = Plane::from_fn(2, 2, |x, y| (y * 2 + x) as u8);
        assert_eq!(p.get_clamped(-5, -5), 0);
        assert_eq!(p.get_clamped(10, 10), 3);
    }

    #[test]
    fn get_clamped_empty_plane_is_default() {
        let p: GrayFrame = Plane::new(0, 0);
        assert_eq!(p.get_clamped(3, 3), 0);
    }

    #[test]
    fn fill_rect_clamps() {
        let mut p: GrayFrame = Plane::new(4, 4);
        p.fill_rect(Rect::new(2, 2, 10, 10), 7);
        assert_eq!(p.get(2, 2), Some(7));
        assert_eq!(p.get(3, 3), Some(7));
        assert_eq!(p.get(1, 1), Some(0));
    }

    #[test]
    fn crop_extracts_subimage() {
        let p = Plane::from_fn(4, 4, |x, y| (y * 4 + x) as u8);
        let c = p.crop(Rect::new(1, 1, 2, 2));
        assert_eq!(c.as_slice(), &[5, 6, 9, 10]);
    }

    #[test]
    fn bilinear_sampling_interpolates() {
        let p = Plane::from_fn(2, 1, |x, _| if x == 0 { 0 } else { 100 });
        assert_eq!(p.sample_bilinear(0.5, 0.0), 50);
        assert_eq!(p.sample_bilinear(0.0, 0.0), 0);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let p = Plane::from_fn(8, 8, |x, y| (x * y) as u8);
        assert_eq!(p.psnr(&p), Some(f64::INFINITY));
    }

    #[test]
    fn psnr_differs_when_noisy() {
        let a = Plane::from_fn(8, 8, |_, _| 100);
        let b = Plane::from_fn(8, 8, |_, _| 110);
        let psnr = a.psnr(&b).unwrap();
        assert!(psnr > 20.0 && psnr < 40.0, "psnr {psnr}");
    }

    #[test]
    fn psnr_size_mismatch_is_none() {
        let a: GrayFrame = Plane::new(2, 2);
        let b: GrayFrame = Plane::new(3, 2);
        assert_eq!(a.psnr(&b), None);
    }

    #[test]
    fn mean_of_uniform_frame() {
        let p = Plane::from_fn(4, 4, |_, _| 9u8);
        assert!((p.mean() - 9.0).abs() < 1e-12);
    }
}

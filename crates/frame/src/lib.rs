//! Pixel, plane, and geometry primitives shared by the rhythmic pixel
//! regions system.
//!
//! This crate is the lowest layer of the workspace: it defines the
//! [`Plane`] container used for every raster image in the pipeline
//! (Bayer raw frames, ISP output, decoded frames), the [`Rect`] /
//! [`Point`] / [`Size`] geometry vocabulary used by region labels, and
//! the [`PixelFormat`] descriptions used for traffic accounting.
//!
//! # Example
//!
//! ```
//! use rpr_frame::{GrayFrame, Rect};
//!
//! let mut frame = GrayFrame::new(64, 48);
//! frame.fill_rect(Rect::new(10, 10, 8, 8), 200);
//! assert_eq!(frame.get(12, 12), Some(200));
//! assert_eq!(frame.get(64, 0), None);
//! ```

#![deny(missing_docs)]

mod error;
mod format;
mod geometry;
mod io;
mod plane;
mod resize;
mod rgb;

pub use error::FrameError;
pub use format::PixelFormat;
pub use geometry::{Point, Rect, Size};
pub use io::{read_pgm, write_pgm, write_ppm};
pub use plane::{GrayFrame, Plane};
pub use resize::{downscale_box, upscale_nearest};
pub use rgb::RgbFrame;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FrameError>;

//! Minimal Netpbm image I/O (PGM for gray, PPM for RGB) so examples and
//! the appendix-figure binary can dump real images without an external
//! codec dependency.

use crate::{FrameError, GrayFrame, Plane, Result, RgbFrame};
use std::io::{Read, Write};

/// Writes a gray frame as binary PGM (P5).
///
/// Pass `&mut` of anything implementing [`Write`] (a `File`, a
/// `Vec<u8>`, …).
///
/// # Errors
///
/// Propagates I/O errors from the writer as
/// [`FrameError::InvalidDimensions`]-free [`std::io::Error`] — see
/// [`write_pgm`]'s signature; dimension-zero frames are rejected.
///
/// # Example
///
/// ```
/// use rpr_frame::{write_pgm, read_pgm, Plane};
///
/// let frame = Plane::from_fn(4, 3, |x, y| (x * 10 + y) as u8);
/// let mut buf = Vec::new();
/// write_pgm(&frame, &mut buf).unwrap();
/// let back = read_pgm(&mut buf.as_slice()).unwrap();
/// assert_eq!(back, frame);
/// ```
pub fn write_pgm<W: Write>(frame: &GrayFrame, writer: &mut W) -> std::io::Result<()> {
    writeln!(writer, "P5\n{} {}\n255", frame.width(), frame.height())?;
    writer.write_all(frame.as_slice())
}

/// Writes an RGB frame as binary PPM (P6).
pub fn write_ppm<W: Write>(frame: &RgbFrame, writer: &mut W) -> std::io::Result<()> {
    writeln!(writer, "P6\n{} {}\n255", frame.width(), frame.height())?;
    writer.write_all(frame.as_slice())
}

/// Reads a binary PGM (P5) image.
///
/// # Errors
///
/// Returns [`FrameError::BufferSizeMismatch`] on truncated pixel data
/// and [`FrameError::InvalidDimensions`] on a malformed header.
pub fn read_pgm<R: Read>(reader: &mut R) -> Result<GrayFrame> {
    let mut data = Vec::new();
    reader
        .read_to_end(&mut data)
        .map_err(|_| FrameError::InvalidDimensions { width: 0, height: 0 })?;
    let (width, height, offset) = parse_netpbm_header(&data, b"P5")?;
    let expected = width as usize * height as usize;
    let pixels = data
        .get(offset..offset + expected)
        .ok_or(FrameError::BufferSizeMismatch {
            expected,
            actual: data.len().saturating_sub(offset),
        })?;
    Plane::from_vec(width, height, pixels.to_vec())
}

/// Parses a `P5`/`P6` header, returning `(width, height, pixel_offset)`.
fn parse_netpbm_header(data: &[u8], magic: &[u8]) -> Result<(u32, u32, usize)> {
    let bad = || FrameError::InvalidDimensions { width: 0, height: 0 };
    if data.len() < 2 || &data[..2] != magic {
        return Err(bad());
    }
    // Tokenize: magic, width, height, maxval, then a single whitespace
    // byte before the pixels. Comments (#...) are skipped.
    let mut pos = 2usize;
    let mut fields = Vec::with_capacity(3);
    while fields.len() < 3 {
        // Skip whitespace and comments.
        loop {
            match data.get(pos) {
                Some(b) if b.is_ascii_whitespace() => pos += 1,
                Some(b'#') => {
                    while data.get(pos).is_some_and(|&b| b != b'\n') {
                        pos += 1;
                    }
                }
                Some(_) => break,
                None => return Err(bad()),
            }
        }
        let start = pos;
        while data.get(pos).is_some_and(|b| b.is_ascii_digit()) {
            pos += 1;
        }
        if start == pos {
            return Err(bad());
        }
        let text = std::str::from_utf8(&data[start..pos]).map_err(|_| bad())?;
        fields.push(text.parse::<u32>().map_err(|_| bad())?);
    }
    // Exactly one whitespace byte separates the header from pixels.
    if !data.get(pos).is_some_and(|b| b.is_ascii_whitespace()) {
        return Err(bad());
    }
    pos += 1;
    let (width, height, maxval) = (fields[0], fields[1], fields[2]);
    if width == 0 || height == 0 || maxval != 255 {
        return Err(FrameError::InvalidDimensions { width, height });
    }
    Ok((width, height, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_roundtrip() {
        let frame = Plane::from_fn(7, 5, |x, y| (x * 37 + y * 11) as u8);
        let mut buf = Vec::new();
        write_pgm(&frame, &mut buf).unwrap();
        assert_eq!(read_pgm(&mut buf.as_slice()).unwrap(), frame);
    }

    #[test]
    fn pgm_header_format() {
        let frame: GrayFrame = Plane::new(3, 2);
        let mut buf = Vec::new();
        write_pgm(&frame, &mut buf).unwrap();
        assert!(buf.starts_with(b"P5\n3 2\n255\n"));
        assert_eq!(buf.len(), b"P5\n3 2\n255\n".len() + 6);
    }

    #[test]
    fn ppm_writes_interleaved_rgb() {
        let frame = RgbFrame::from_fn(2, 1, |x, _| [x as u8, 10, 20]);
        let mut buf = Vec::new();
        write_ppm(&frame, &mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n2 1\n255\n"));
        assert_eq!(&buf[buf.len() - 6..], &[0, 10, 20, 1, 10, 20]);
    }

    #[test]
    fn read_rejects_truncated_data() {
        let mut buf = Vec::new();
        write_pgm(&Plane::from_fn(4, 4, |_, _| 9u8), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_pgm(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn read_rejects_bad_magic() {
        assert!(read_pgm(&mut &b"P6\n2 2\n255\n0000"[..]).is_err());
        assert!(read_pgm(&mut &b"hello"[..]).is_err());
    }

    #[test]
    fn read_skips_comments() {
        let data = b"P5\n# a comment\n2 1\n# another\n255\n\x07\x09";
        let frame = read_pgm(&mut &data[..]).unwrap();
        assert_eq!(frame.get(0, 0), Some(7));
        assert_eq!(frame.get(1, 0), Some(9));
    }
}

use crate::{FrameError, GrayFrame, Plane, Result, Size};
use serde::{Deserialize, Serialize};

/// A 24-bit interleaved RGB frame.
///
/// The synthetic scene renderer produces RGB; the sensor model mosaics it
/// into Bayer raw data, and the ISP demosaics back. Vision algorithms
/// work on the luminance plane produced by [`RgbFrame::to_gray`].
///
/// # Example
///
/// ```
/// use rpr_frame::RgbFrame;
///
/// let mut f = RgbFrame::new(2, 2);
/// f.set(0, 0, [255, 0, 0]);
/// assert_eq!(f.get(0, 0), Some([255, 0, 0]));
/// let gray = f.to_gray();
/// assert_eq!(gray.get(0, 0), Some(76)); // 0.299 * 255
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RgbFrame {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl RgbFrame {
    /// Creates a black RGB frame of `width x height`.
    pub fn new(width: u32, height: u32) -> Self {
        RgbFrame { width, height, data: vec![0; width as usize * height as usize * 3] }
    }

    /// Wraps an interleaved RGB buffer.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BufferSizeMismatch`] when `data.len()` is not
    /// `width * height * 3`.
    pub fn from_vec(width: u32, height: u32, data: Vec<u8>) -> Result<Self> {
        let expected = width as usize * height as usize * 3;
        if data.len() != expected {
            return Err(FrameError::BufferSizeMismatch { expected, actual: data.len() });
        }
        Ok(RgbFrame { width, height, data })
    }

    /// Builds a frame by evaluating `f(x, y) -> [r, g, b]` per pixel.
    pub fn from_fn(width: u32, height: u32, mut f: impl FnMut(u32, u32) -> [u8; 3]) -> Self {
        let mut data = Vec::with_capacity(width as usize * height as usize * 3);
        for y in 0..height {
            for x in 0..width {
                data.extend_from_slice(&f(x, y));
            }
        }
        RgbFrame { width, height, data }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Width and height as a [`Size`].
    pub fn size(&self) -> Size {
        Size::new(self.width, self.height)
    }

    /// The `[r, g, b]` triple at `(x, y)`, or `None` outside the frame.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> Option<[u8; 3]> {
        if x < self.width && y < self.height {
            let i = (y as usize * self.width as usize + x as usize) * 3;
            Some([self.data[i], self.data[i + 1], self.data[i + 2]])
        } else {
            None
        }
    }

    /// Sets the pixel at `(x, y)`; out-of-bounds writes are ignored.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, rgb: [u8; 3]) {
        if x < self.width && y < self.height {
            let i = (y as usize * self.width as usize + x as usize) * 3;
            self.data[i..i + 3].copy_from_slice(&rgb);
        }
    }

    /// The interleaved backing buffer.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Converts to luminance with the BT.601 weights
    /// (`0.299 R + 0.587 G + 0.114 B`).
    pub fn to_gray(&self) -> GrayFrame {
        let mut out = Plane::new(self.width, self.height);
        let dst = out.as_mut_slice();
        for (i, px) in self.data.chunks_exact(3).enumerate() {
            let y = 0.299 * f64::from(px[0]) + 0.587 * f64::from(px[1]) + 0.114 * f64::from(px[2]);
            dst[i] = y.round().clamp(0.0, 255.0) as u8;
        }
        out
    }

    /// Builds an RGB frame by replicating a gray frame into all channels.
    pub fn from_gray(gray: &GrayFrame) -> Self {
        RgbFrame::from_fn(gray.width(), gray.height(), |x, y| {
            let v = gray.get(x, y).unwrap_or(0);
            [v, v, v]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_black() {
        let f = RgbFrame::new(2, 2);
        assert_eq!(f.get(1, 1), Some([0, 0, 0]));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(RgbFrame::from_vec(1, 1, vec![1, 2, 3]).is_ok());
        assert!(RgbFrame::from_vec(1, 1, vec![1, 2]).is_err());
    }

    #[test]
    fn set_get_roundtrip() {
        let mut f = RgbFrame::new(3, 3);
        f.set(2, 1, [9, 8, 7]);
        assert_eq!(f.get(2, 1), Some([9, 8, 7]));
        assert_eq!(f.get(3, 1), None);
    }

    #[test]
    fn to_gray_uses_bt601() {
        let f = RgbFrame::from_fn(1, 1, |_, _| [0, 255, 0]);
        assert_eq!(f.to_gray().get(0, 0), Some(150)); // 0.587 * 255 ≈ 150
    }

    #[test]
    fn gray_roundtrip_preserves_values() {
        let gray = Plane::from_fn(4, 4, |x, y| (x * 16 + y) as u8);
        let rgb = RgbFrame::from_gray(&gray);
        assert_eq!(rgb.to_gray(), gray);
    }
}

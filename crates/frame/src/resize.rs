//! Whole-frame resampling used by the frame-based baselines.
//!
//! The paper's low-resolution baseline (FCL) downscales the entire frame
//! (e.g. 4K → 480p for V-SLAM); [`downscale_box`] implements the
//! corresponding box filter, and [`upscale_nearest`] maps detections in
//! the small frame back to full-resolution coordinates.

use crate::{GrayFrame, Plane};

/// Downscales a frame by integer factor `factor` with a box (average)
/// filter. Trailing rows/columns that do not fill a full box are dropped,
/// matching typical sensor binning behaviour.
///
/// # Panics
///
/// Panics when `factor == 0`.
///
/// # Example
///
/// ```
/// use rpr_frame::{downscale_box, Plane};
///
/// let f = Plane::from_fn(4, 4, |x, _| if x < 2 { 0 } else { 100 });
/// let small = downscale_box(&f, 2);
/// assert_eq!(small.width(), 2);
/// assert_eq!(small.get(0, 0), Some(0));
/// assert_eq!(small.get(1, 0), Some(100));
/// ```
pub fn downscale_box(frame: &GrayFrame, factor: u32) -> GrayFrame {
    assert!(factor > 0, "downscale factor must be nonzero");
    if factor == 1 {
        return frame.clone();
    }
    let out_w = frame.width() / factor;
    let out_h = frame.height() / factor;
    let mut out = Plane::new(out_w, out_h);
    let area = u64::from(factor) * u64::from(factor);
    for oy in 0..out_h {
        for ox in 0..out_w {
            let mut sum: u64 = 0;
            for dy in 0..factor {
                let row = frame.row(oy * factor + dy);
                for dx in 0..factor {
                    sum += u64::from(row[(ox * factor + dx) as usize]);
                }
            }
            out.set(ox, oy, ((sum + area / 2) / area) as u8);
        }
    }
    out
}

/// Upscales a frame by integer factor `factor` with nearest-neighbour
/// replication.
///
/// # Panics
///
/// Panics when `factor == 0`.
pub fn upscale_nearest(frame: &GrayFrame, factor: u32) -> GrayFrame {
    assert!(factor > 0, "upscale factor must be nonzero");
    if factor == 1 {
        return frame.clone();
    }
    Plane::from_fn(frame.width() * factor, frame.height() * factor, |x, y| {
        frame.get(x / factor, y / factor).unwrap_or(0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downscale_by_one_is_identity() {
        let f = Plane::from_fn(5, 5, |x, y| (x + y) as u8);
        assert_eq!(downscale_box(&f, 1), f);
    }

    #[test]
    fn downscale_averages_boxes() {
        let f = Plane::from_fn(2, 2, |x, y| (100 * (x + y)) as u8);
        let s = downscale_box(&f, 2);
        assert_eq!(s.get(0, 0), Some(100)); // (0 + 100 + 100 + 200) / 4
    }

    #[test]
    fn downscale_drops_partial_boxes() {
        let f: GrayFrame = Plane::new(5, 5);
        let s = downscale_box(&f, 2);
        assert_eq!((s.width(), s.height()), (2, 2));
    }

    #[test]
    fn upscale_replicates() {
        let f = Plane::from_fn(2, 1, |x, _| (x * 50) as u8);
        let u = upscale_nearest(&f, 2);
        assert_eq!(u.width(), 4);
        assert_eq!(u.get(1, 1), Some(0));
        assert_eq!(u.get(2, 0), Some(50));
    }

    #[test]
    fn down_then_up_preserves_flat_regions() {
        let f = Plane::from_fn(8, 8, |x, _| if x < 4 { 10 } else { 200 });
        let round = upscale_nearest(&downscale_box(&f, 2), 2);
        assert_eq!(round.get(0, 0), Some(10));
        assert_eq!(round.get(7, 7), Some(200));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_factor_panics() {
        let f: GrayFrame = Plane::new(2, 2);
        let _ = downscale_box(&f, 0);
    }
}

use serde::{Deserialize, Serialize};
use std::fmt;

/// An integer pixel coordinate.
///
/// # Example
///
/// ```
/// use rpr_frame::Point;
///
/// let p = Point::new(3, 4);
/// assert_eq!(p.x, 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (column).
    pub x: u32,
    /// Vertical coordinate (row).
    pub y: u32,
}

impl Point {
    /// Creates a point at `(x, y)`.
    pub fn new(x: u32, y: u32) -> Self {
        Point { x, y }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A width/height pair in pixels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Size {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Size {
    /// Creates a size of `width x height`.
    pub fn new(width: u32, height: u32) -> Self {
        Size { width, height }
    }

    /// Number of pixels covered (`width * height`).
    pub fn area(self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    /// Returns true when either dimension is zero.
    pub fn is_empty(self) -> bool {
        self.width == 0 || self.height == 0
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// An axis-aligned rectangle of pixels, the footprint vocabulary for
/// region labels, sprites, and detector bounding boxes.
///
/// The rectangle covers columns `x .. x + w` and rows `y .. y + h`
/// (half-open, like slice ranges).
///
/// # Example
///
/// ```
/// use rpr_frame::Rect;
///
/// let a = Rect::new(0, 0, 10, 10);
/// let b = Rect::new(5, 5, 10, 10);
/// let i = a.intersection(&b).unwrap();
/// assert_eq!(i, Rect::new(5, 5, 5, 5));
/// assert!((a.iou(&b) - 25.0 / 175.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Left column of the rectangle.
    pub x: u32,
    /// Top row of the rectangle.
    pub y: u32,
    /// Width in pixels.
    pub w: u32,
    /// Height in pixels.
    pub h: u32,
}

impl Rect {
    /// Creates a rectangle with top-left corner `(x, y)` and size `w x h`.
    pub fn new(x: u32, y: u32, w: u32, h: u32) -> Self {
        Rect { x, y, w, h }
    }

    /// Creates a rectangle centred on `(cx, cy)`, clamped to start at 0.
    pub fn centered(cx: i64, cy: i64, w: u32, h: u32) -> Self {
        let x = (cx - i64::from(w) / 2).max(0) as u32;
        let y = (cy - i64::from(h) / 2).max(0) as u32;
        Rect { x, y, w, h }
    }

    /// Exclusive right edge (`x + w`).
    pub fn right(&self) -> u32 {
        self.x.saturating_add(self.w)
    }

    /// Exclusive bottom edge (`y + h`).
    pub fn bottom(&self) -> u32 {
        self.y.saturating_add(self.h)
    }

    /// Number of pixels covered.
    pub fn area(&self) -> u64 {
        u64::from(self.w) * u64::from(self.h)
    }

    /// Returns true when the rectangle covers no pixels.
    pub fn is_empty(&self) -> bool {
        self.w == 0 || self.h == 0
    }

    /// Returns true when `(x, y)` lies inside the rectangle.
    pub fn contains(&self, x: u32, y: u32) -> bool {
        x >= self.x && x < self.right() && y >= self.y && y < self.bottom()
    }

    /// Returns true when row `y` intersects the rectangle's vertical span.
    pub fn contains_row(&self, y: u32) -> bool {
        y >= self.y && y < self.bottom()
    }

    /// Centre of the rectangle in floating point.
    pub fn center(&self) -> (f64, f64) {
        (
            f64::from(self.x) + f64::from(self.w) / 2.0,
            f64::from(self.y) + f64::from(self.h) / 2.0,
        )
    }

    /// Overlapping rectangle, or `None` when disjoint or either is empty.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.right().min(other.right());
        let y1 = self.bottom().min(other.bottom());
        if x0 < x1 && y0 < y1 {
            Some(Rect::new(x0, y0, x1 - x0, y1 - y0))
        } else {
            None
        }
    }

    /// Smallest rectangle containing both rectangles.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let x0 = self.x.min(other.x);
        let y0 = self.y.min(other.y);
        let x1 = self.right().max(other.right());
        let y1 = self.bottom().max(other.bottom());
        Rect::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// Intersection-over-union score in `[0, 1]`, the detection-accuracy
    /// metric the paper uses for face detection and pose estimation.
    pub fn iou(&self, other: &Rect) -> f64 {
        let inter = self.intersection(other).map_or(0, |r| r.area());
        let union = self.area() + other.area() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Clamps the rectangle to fit inside a `width x height` frame.
    ///
    /// Returns an empty rectangle positioned at the clamped origin when
    /// there is no overlap with the frame.
    pub fn clamped(&self, width: u32, height: u32) -> Rect {
        let x = self.x.min(width);
        let y = self.y.min(height);
        let w = self.right().min(width).saturating_sub(x);
        let h = self.bottom().min(height).saturating_sub(y);
        Rect::new(x, y, w, h)
    }

    /// Grows the rectangle by `margin` pixels on every side, saturating
    /// at zero on the top-left. Used by policies to add feature margin.
    pub fn inflated(&self, margin: u32) -> Rect {
        let x = self.x.saturating_sub(margin);
        let y = self.y.saturating_sub(margin);
        // Width grows by the left margin actually available plus the full
        // right margin (the right edge only saturates at the frame clamp).
        Rect::new(
            x,
            y,
            self.w.saturating_add(self.x - x).saturating_add(margin),
            self.h.saturating_add(self.y - y).saturating_add(margin),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}x{} @ ({}, {})]", self.w, self.h, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_respects_half_open_edges() {
        let r = Rect::new(2, 3, 4, 5);
        assert!(r.contains(2, 3));
        assert!(r.contains(5, 7));
        assert!(!r.contains(6, 3));
        assert!(!r.contains(2, 8));
    }

    #[test]
    fn intersection_of_disjoint_is_none() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(4, 0, 4, 4);
        assert_eq!(a.intersection(&b), None);
    }

    #[test]
    fn intersection_is_commutative() {
        let a = Rect::new(1, 1, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        assert_eq!(a.intersection(&b), b.intersection(&a));
    }

    #[test]
    fn union_contains_both() {
        let a = Rect::new(0, 0, 2, 2);
        let b = Rect::new(10, 10, 2, 2);
        let u = a.union(&b);
        assert!(u.contains(0, 0));
        assert!(u.contains(11, 11));
    }

    #[test]
    fn iou_of_identical_is_one() {
        let a = Rect::new(3, 3, 7, 9);
        assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_of_disjoint_is_zero() {
        let a = Rect::new(0, 0, 4, 4);
        let b = Rect::new(100, 100, 4, 4);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn clamped_truncates_to_frame() {
        let r = Rect::new(10, 10, 100, 100);
        let c = r.clamped(50, 40);
        assert_eq!(c, Rect::new(10, 10, 40, 30));
    }

    #[test]
    fn clamped_outside_frame_is_empty() {
        let r = Rect::new(100, 100, 5, 5);
        assert!(r.clamped(50, 50).is_empty());
    }

    #[test]
    fn centered_clamps_negative_origin() {
        let r = Rect::centered(1, 1, 10, 10);
        assert_eq!((r.x, r.y), (0, 0));
    }

    #[test]
    fn inflated_grows_both_sides() {
        let r = Rect::new(10, 10, 4, 4).inflated(2);
        assert_eq!(r, Rect::new(8, 8, 8, 8));
    }

    #[test]
    fn inflated_saturates_at_origin() {
        let r = Rect::new(1, 0, 4, 4).inflated(3);
        assert_eq!((r.x, r.y), (0, 0));
        // one pixel of left margin was available, three requested.
        assert_eq!(r.w, 4 + 1 + 3);
        assert_eq!(r.h, 4 + 3);
    }

    #[test]
    fn size_area_and_empty() {
        assert_eq!(Size::new(3, 4).area(), 12);
        assert!(Size::new(0, 4).is_empty());
        assert!(!Size::new(1, 1).is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1, 2).to_string(), "(1, 2)");
        assert_eq!(Size::new(3, 4).to_string(), "3x4");
        assert_eq!(Rect::new(1, 2, 3, 4).to_string(), "[3x4 @ (1, 2)]");
    }
}

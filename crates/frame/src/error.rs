use std::fmt;

/// Errors produced by frame construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// A frame dimension was zero or otherwise unusable.
    InvalidDimensions {
        /// Requested width in pixels.
        width: u32,
        /// Requested height in pixels.
        height: u32,
    },
    /// The provided backing buffer does not match `width * height * channels`.
    BufferSizeMismatch {
        /// Number of elements the dimensions require.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A coordinate fell outside the frame bounds.
    OutOfBounds {
        /// Offending x coordinate.
        x: u32,
        /// Offending y coordinate.
        y: u32,
        /// Frame width.
        width: u32,
        /// Frame height.
        height: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::InvalidDimensions { width, height } => {
                write!(f, "invalid frame dimensions {width}x{height}")
            }
            FrameError::BufferSizeMismatch { expected, actual } => {
                write!(f, "buffer holds {actual} elements but {expected} are required")
            }
            FrameError::OutOfBounds { x, y, width, height } => {
                write!(f, "coordinate ({x}, {y}) outside {width}x{height} frame")
            }
        }
    }
}

impl std::error::Error for FrameError {}

//! Region-selection policies (paper §4.3, §4.3.1).
//!
//! The paper splits developers into *policy makers*, who write the logic
//! that turns application state (visual features, detections, motion)
//! into region labels, and *policy users*, who pick a ready-made policy.
//! This module is the policy-maker toolkit: the [`Policy`] trait, the
//! feature abstraction policies consume, and the paper's example
//! policies — most importantly the cycle-length policy, which performs a
//! full-frame capture every `cycle_length` frames and feature-guided
//! regional capture in between (Fig. 7).

use crate::{RegionLabel, RegionList};
use rpr_frame::Rect;
use serde::{Deserialize, Serialize};

/// A tracked visual feature, the currency between vision algorithms and
/// policies. For ORB-SLAM the paper derives the region footprint from
/// the feature's `size` attribute, the stride from its `octave`
/// (texture scale), and the temporal rate from its frame-to-frame
/// displacement (§3.4, §4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Feature {
    /// Feature centre, x.
    pub x: f64,
    /// Feature centre, y.
    pub y: f64,
    /// Diameter of the meaningful neighbourhood around the feature.
    pub size: f64,
    /// Pyramid octave the feature was detected in (0 = full resolution).
    pub octave: u32,
    /// Frame-to-frame displacement magnitude in pixels (0 when unknown).
    pub displacement: f64,
}

impl Feature {
    /// Creates a feature at `(x, y)` with the given neighbourhood size.
    pub fn new(x: f64, y: f64, size: f64) -> Self {
        Feature { x, y, size, octave: 0, displacement: 0.0 }
    }

    /// Sets the detection octave.
    pub fn with_octave(mut self, octave: u32) -> Self {
        self.octave = octave;
        self
    }

    /// Sets the observed displacement.
    pub fn with_displacement(mut self, displacement: f64) -> Self {
        self.displacement = displacement;
        self
    }
}

/// Everything a policy may consult when planning the next frame's
/// region labels.
#[derive(Debug, Clone, Default)]
pub struct PolicyContext {
    /// Index of the frame about to be captured.
    pub frame_idx: u64,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Features extracted from the most recent decoded frame.
    pub features: Vec<Feature>,
    /// Detection boxes (faces, people) from the most recent frame, with
    /// an observed per-box displacement magnitude.
    pub detections: Vec<(Rect, f64)>,
}

/// A region-selection policy: called before each frame capture to
/// produce the region labels the encoder will apply.
pub trait Policy {
    /// Plans the region labels for the frame described by `ctx`.
    fn plan(&mut self, ctx: &PolicyContext) -> RegionList;

    /// A short human-readable name for experiment reports.
    fn name(&self) -> &str;
}

/// Captures every frame in full: the frame-based-computing baseline
/// expressed as a (degenerate) policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullFramePolicy;

impl Policy for FullFramePolicy {
    fn plan(&mut self, ctx: &PolicyContext) -> RegionList {
        RegionList::full_frame(ctx.width, ctx.height)
    }

    fn name(&self) -> &str {
        "full-frame"
    }
}

/// Replays a fixed region list every frame (region label lists "persist
/// across frames", §4.3).
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    labels: Vec<RegionLabel>,
}

impl StaticPolicy {
    /// Creates a policy that always returns `labels`.
    pub fn new(labels: Vec<RegionLabel>) -> Self {
        StaticPolicy { labels }
    }
}

impl Policy for StaticPolicy {
    fn plan(&mut self, ctx: &PolicyContext) -> RegionList {
        RegionList::new_lossy(ctx.width, ctx.height, self.labels.clone())
    }

    fn name(&self) -> &str {
        "static"
    }
}

/// Tuning knobs for [`FeaturePolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeaturePolicyParams {
    /// Extra pixels added around each feature's neighbourhood to absorb
    /// frame-to-frame displacement (§4.3.1 "extra margin").
    pub margin: u32,
    /// Smallest region edge emitted.
    pub min_region: u32,
    /// Largest region edge emitted.
    pub max_region: u32,
    /// Largest stride a region may receive.
    pub max_stride: u32,
    /// Largest temporal skip a region may receive.
    pub max_skip: u32,
    /// Displacement (px/frame) above which a region is sampled every
    /// frame; slower regions get proportionally larger skips.
    pub fast_displacement: f64,
}

impl Default for FeaturePolicyParams {
    fn default() -> Self {
        FeaturePolicyParams {
            margin: 8,
            min_region: 16,
            max_region: 256,
            max_stride: 4,
            max_skip: 3,
            fast_displacement: 4.0,
        }
    }
}

/// The paper's feature-guided policy (§3.4, §4.3.1): one region per
/// feature, sized from the feature's `size`, strided from its `octave`,
/// and temporally rated from its displacement; plus one region per
/// tracked detection box.
#[derive(Debug, Clone, Default)]
pub struct FeaturePolicy {
    params: FeaturePolicyParams,
}

impl FeaturePolicy {
    /// Creates the policy with default parameters.
    pub fn new() -> Self {
        FeaturePolicy { params: FeaturePolicyParams::default() }
    }

    /// Creates the policy with explicit parameters.
    pub fn with_params(params: FeaturePolicyParams) -> Self {
        FeaturePolicy { params }
    }

    /// The active parameters.
    pub fn params(&self) -> &FeaturePolicyParams {
        &self.params
    }

    /// Region label for a single feature.
    pub fn label_for_feature(&self, f: &Feature) -> RegionLabel {
        let p = &self.params;
        // "size" guides the width and height of the region (§4.3.1).
        let edge = (f.size.ceil() as u32 + 2 * p.margin).clamp(p.min_region, p.max_region);
        let rect = Rect::centered(f.x.round() as i64, f.y.round() as i64, edge, edge);
        // "octave" (texture scale) determines the stride: coarse features
        // tolerate sparser sampling.
        let stride = (f.octave + 1).clamp(1, p.max_stride);
        // Feature velocity determines the temporal rate: fast regions are
        // sampled every frame, slow regions every `max_skip` frames.
        let skip = if f.displacement >= p.fast_displacement {
            1
        } else {
            let slowness = 1.0 - (f.displacement / p.fast_displacement).clamp(0.0, 1.0);
            1 + (slowness * (p.max_skip - 1) as f64).round() as u32
        };
        RegionLabel::from_rect(rect, stride, skip)
    }

    /// Region label for a tracked detection box moving at
    /// `displacement` px/frame.
    pub fn label_for_detection(&self, rect: &Rect, displacement: f64) -> RegionLabel {
        let p = &self.params;
        let grown = rect.inflated(p.margin);
        // Larger boxes tolerate sparser sampling (they are closer/bigger
        // than the precision the task needs), matching the paper's
        // observed strides of 1-4 scaling with region size.
        let stride = ((grown.w.max(grown.h)) / 128 + 1).clamp(1, p.max_stride);
        let skip = if displacement >= p.fast_displacement {
            1
        } else {
            let slowness = 1.0 - (displacement / p.fast_displacement).clamp(0.0, 1.0);
            1 + (slowness * (p.max_skip - 1) as f64).round() as u32
        };
        RegionLabel::from_rect(grown, stride, skip)
    }
}

impl Policy for FeaturePolicy {
    fn plan(&mut self, ctx: &PolicyContext) -> RegionList {
        let mut labels: Vec<RegionLabel> =
            ctx.features.iter().map(|f| self.label_for_feature(f)).collect();
        labels.extend(
            ctx.detections.iter().map(|(r, d)| self.label_for_detection(r, *d)),
        );
        RegionList::new_lossy(ctx.width, ctx.height, labels)
    }

    fn name(&self) -> &str {
        "feature"
    }
}

/// The paper's example cycle-length policy (Fig. 7): a full-frame
/// capture every `cycle_length` frames to keep scene coverage, with the
/// inner policy's feature/detection regions in between. The paper
/// evaluates CL = 5, 10, 15.
#[derive(Debug, Clone)]
pub struct CycleLengthPolicy<P> {
    cycle_length: u64,
    inner: P,
    name: String,
}

impl<P: Policy> CycleLengthPolicy<P> {
    /// Wraps `inner` with full captures every `cycle_length` frames.
    ///
    /// # Panics
    ///
    /// Panics when `cycle_length == 0`.
    pub fn new(cycle_length: u64, inner: P) -> Self {
        assert!(cycle_length > 0, "cycle length must be >= 1");
        let name = format!("RP{cycle_length}");
        CycleLengthPolicy { cycle_length, inner, name }
    }

    /// The configured cycle length.
    pub fn cycle_length(&self) -> u64 {
        self.cycle_length
    }

    /// Whether `frame_idx` is a full-capture frame.
    pub fn is_full_capture(&self, frame_idx: u64) -> bool {
        frame_idx.is_multiple_of(self.cycle_length)
    }

    /// Access to the wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: Policy> Policy for CycleLengthPolicy<P> {
    fn plan(&mut self, ctx: &PolicyContext) -> RegionList {
        if self.is_full_capture(ctx.frame_idx) {
            RegionList::full_frame(ctx.width, ctx.height)
        } else {
            self.inner.plan(ctx)
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A motion-adaptive cycle-length policy (paper §4.3.1: "The cycle
/// length could also be adaptive, for example, by using the motion in
/// the frame or other semantics to guide the need for more frequent or
/// less frequent full captures").
///
/// The observed feature/detection motion is smoothed with an
/// exponential moving average; high motion shortens the cycle toward
/// `min_cycle`, calm scenes stretch it toward `max_cycle`. A full
/// capture fires whenever the frames elapsed since the last one reach
/// the current cycle length.
#[derive(Debug, Clone)]
pub struct AdaptiveCyclePolicy<P> {
    inner: P,
    min_cycle: u64,
    max_cycle: u64,
    /// Motion (px/frame) at or above which the cycle clamps to
    /// `min_cycle`.
    fast_motion: f64,
    smoothed_motion: f64,
    frames_since_full: u64,
    current_cycle: u64,
}

impl<P: Policy> AdaptiveCyclePolicy<P> {
    /// Wraps `inner` with a cycle length adapting between `min_cycle`
    /// and `max_cycle`.
    ///
    /// # Panics
    ///
    /// Panics when `min_cycle == 0` or `min_cycle > max_cycle`.
    pub fn new(min_cycle: u64, max_cycle: u64, inner: P) -> Self {
        assert!(min_cycle > 0, "cycle length must be >= 1");
        assert!(min_cycle <= max_cycle, "min cycle must not exceed max");
        AdaptiveCyclePolicy {
            inner,
            min_cycle,
            max_cycle,
            fast_motion: 6.0,
            smoothed_motion: 0.0,
            frames_since_full: 0,
            current_cycle: (min_cycle + max_cycle) / 2,
        }
    }

    /// The cycle length currently in effect.
    pub fn current_cycle(&self) -> u64 {
        self.current_cycle
    }

    fn observe_motion(&mut self, ctx: &PolicyContext) {
        let mut motion = 0.0;
        let mut n = 0usize;
        for f in &ctx.features {
            motion += f.displacement;
            n += 1;
        }
        for (_, d) in &ctx.detections {
            motion += d;
            n += 1;
        }
        if n > 0 {
            let mean = motion / n as f64;
            self.smoothed_motion = 0.7 * self.smoothed_motion + 0.3 * mean;
        }
        // High motion → short cycle; calm → long cycle.
        let calmness = 1.0 - (self.smoothed_motion / self.fast_motion).clamp(0.0, 1.0);
        self.current_cycle = self.min_cycle
            + ((self.max_cycle - self.min_cycle) as f64 * calmness).round() as u64;
    }
}

impl<P: Policy> Policy for AdaptiveCyclePolicy<P> {
    fn plan(&mut self, ctx: &PolicyContext) -> RegionList {
        self.observe_motion(ctx);
        if ctx.frame_idx == 0 || self.frames_since_full >= self.current_cycle {
            self.frames_since_full = 1;
            RegionList::full_frame(ctx.width, ctx.height)
        } else {
            self.frames_since_full += 1;
            self.inner.plan(ctx)
        }
    }

    fn name(&self) -> &str {
        "adaptive-cycle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(frame_idx: u64) -> PolicyContext {
        PolicyContext {
            frame_idx,
            width: 640,
            height: 480,
            features: vec![
                Feature::new(100.0, 100.0, 31.0).with_octave(0).with_displacement(6.0),
                Feature::new(300.0, 200.0, 62.0).with_octave(2).with_displacement(0.5),
            ],
            detections: vec![(Rect::new(400, 300, 60, 80), 2.0)],
        }
    }

    #[test]
    fn full_frame_policy_covers_frame() {
        let mut p = FullFramePolicy;
        let list = p.plan(&ctx(3));
        assert_eq!(list.len(), 1);
        assert_eq!(list.labels()[0].w, 640);
    }

    #[test]
    fn feature_policy_emits_one_region_per_input() {
        let mut p = FeaturePolicy::new();
        let list = p.plan(&ctx(1));
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn fast_features_get_skip_one() {
        let p = FeaturePolicy::new();
        let fast = p.label_for_feature(&Feature::new(50.0, 50.0, 31.0).with_displacement(10.0));
        assert_eq!(fast.skip, 1);
        let slow = p.label_for_feature(&Feature::new(50.0, 50.0, 31.0).with_displacement(0.0));
        assert_eq!(slow.skip, FeaturePolicyParams::default().max_skip);
    }

    #[test]
    fn octave_drives_stride() {
        let p = FeaturePolicy::new();
        let fine = p.label_for_feature(&Feature::new(50.0, 50.0, 31.0).with_octave(0));
        assert_eq!(fine.stride, 1);
        let coarse = p.label_for_feature(&Feature::new(50.0, 50.0, 31.0).with_octave(3));
        assert_eq!(coarse.stride, 4);
        let deep = p.label_for_feature(&Feature::new(50.0, 50.0, 31.0).with_octave(9));
        assert_eq!(deep.stride, FeaturePolicyParams::default().max_stride);
    }

    #[test]
    fn size_drives_region_edge_with_clamping() {
        let p = FeaturePolicy::new();
        let small = p.label_for_feature(&Feature::new(50.0, 50.0, 1.0));
        assert_eq!(small.w, 17); // 1 + 2 * 8 margin
        let huge = p.label_for_feature(&Feature::new(50.0, 50.0, 1000.0));
        assert!(huge.w <= FeaturePolicyParams::default().max_region);
    }

    #[test]
    fn cycle_length_alternates_full_and_regional() {
        let mut p = CycleLengthPolicy::new(5, FeaturePolicy::new());
        assert_eq!(p.plan(&ctx(0)).len(), 1);
        assert_eq!(p.plan(&ctx(1)).len(), 3);
        assert_eq!(p.plan(&ctx(4)).len(), 3);
        assert_eq!(p.plan(&ctx(5)).len(), 1);
        assert_eq!(p.name(), "RP5");
    }

    #[test]
    #[should_panic(expected = "cycle length")]
    fn zero_cycle_length_panics() {
        let _ = CycleLengthPolicy::new(0, FullFramePolicy);
    }

    #[test]
    fn static_policy_repeats_labels() {
        let mut p = StaticPolicy::new(vec![RegionLabel::new(0, 0, 10, 10, 1, 1)]);
        assert_eq!(p.plan(&ctx(0)).len(), 1);
        assert_eq!(p.plan(&ctx(9)).len(), 1);
    }

    fn motion_ctx(frame_idx: u64, displacement: f64) -> PolicyContext {
        PolicyContext {
            frame_idx,
            width: 640,
            height: 480,
            features: vec![Feature::new(100.0, 100.0, 31.0).with_displacement(displacement)],
            detections: vec![],
        }
    }

    #[test]
    fn adaptive_cycle_shortens_under_motion() {
        let mut calm = AdaptiveCyclePolicy::new(2, 20, FeaturePolicy::new());
        for t in 0..30 {
            calm.plan(&motion_ctx(t, 0.1));
        }
        let calm_cycle = calm.current_cycle();

        let mut busy = AdaptiveCyclePolicy::new(2, 20, FeaturePolicy::new());
        for t in 0..30 {
            busy.plan(&motion_ctx(t, 10.0));
        }
        assert!(
            busy.current_cycle() < calm_cycle,
            "busy {} vs calm {}",
            busy.current_cycle(),
            calm_cycle
        );
        assert!(busy.current_cycle() <= 4);
        assert!(calm_cycle >= 15);
    }

    #[test]
    fn adaptive_cycle_issues_full_captures() {
        let mut p = AdaptiveCyclePolicy::new(3, 3, FeaturePolicy::new());
        let mut fulls = 0;
        for t in 0..9 {
            let list = p.plan(&motion_ctx(t, 1.0));
            if list.len() == 1 && list.labels()[0].w == 640 {
                fulls += 1;
            }
        }
        assert_eq!(fulls, 3, "fixed 3-frame cycle over 9 frames");
    }

    #[test]
    #[should_panic(expected = "min cycle")]
    fn adaptive_cycle_rejects_inverted_range() {
        let _ = AdaptiveCyclePolicy::new(10, 5, FullFramePolicy);
    }

    #[test]
    fn out_of_frame_features_are_dropped_not_fatal() {
        let mut p = FeaturePolicy::new();
        let mut c = ctx(1);
        c.features.push(Feature::new(10_000.0, 10_000.0, 31.0));
        let list = p.plan(&c);
        assert_eq!(list.len(), 3); // the stray feature is clamped away
    }
}

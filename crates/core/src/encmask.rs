use serde::{Deserialize, Serialize};
use std::fmt;

/// The 2-bit per-pixel sampling status written by the encoder
/// (paper §3.3).
///
/// | bits | name | meaning |
/// |------|------|---------|
/// | `00` | `N`  | non-regional pixel (discarded, decodes to black) |
/// | `01` | `St` | regional but spatially strided (decodes by resampling a neighbour) |
/// | `10` | `Sk` | regional but temporally skipped this frame (decodes from a recent encoded frame) |
/// | `11` | `R`  | regional pixel, stored in the encoded frame |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum PixelStatus {
    /// `00`: not inside any region label.
    NonRegional = 0b00,
    /// `01`: inside an actively sampled region but dropped by the stride.
    Strided = 0b01,
    /// `10`: inside a region whose skip interval excludes this frame.
    Skipped = 0b10,
    /// `11`: a kept, regional pixel present in the encoded frame.
    Regional = 0b11,
}

impl PixelStatus {
    /// Decodes a 2-bit value (only the low 2 bits are inspected).
    #[inline]
    pub fn from_bits(bits: u8) -> PixelStatus {
        match bits & 0b11 {
            0b00 => PixelStatus::NonRegional,
            0b01 => PixelStatus::Strided,
            0b10 => PixelStatus::Skipped,
            _ => PixelStatus::Regional,
        }
    }

    /// The raw 2-bit encoding.
    #[inline]
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Reconstruction preference order used when overlapping regions
    /// disagree about a pixel: a stored pixel beats a strided
    /// approximation, which beats stale history, which beats black.
    ///
    /// `R (3) > St (2) > Sk (1) > N (0)`.
    #[inline]
    pub fn priority(self) -> u8 {
        match self {
            PixelStatus::Regional => 3,
            PixelStatus::Strided => 2,
            PixelStatus::Skipped => 1,
            PixelStatus::NonRegional => 0,
        }
    }

    /// Returns the higher-priority of two statuses (see
    /// [`PixelStatus::priority`]).
    #[inline]
    pub fn max_priority(self, other: PixelStatus) -> PixelStatus {
        if other.priority() > self.priority() {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for PixelStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PixelStatus::NonRegional => "N",
            PixelStatus::Strided => "St",
            PixelStatus::Skipped => "Sk",
            PixelStatus::Regional => "R",
        };
        f.write_str(s)
    }
}

/// The encoding sequence bitmask: one [`PixelStatus`] for every pixel of
/// the original (pre-encoding) frame, packed four pixels per byte in
/// raster order (paper §3.3).
///
/// The mask is the decoder's only source of truth — it never sees the
/// region labels — which is what makes the decoder's cost independent of
/// the number of regions (paper §6.3).
///
/// # Example
///
/// ```
/// use rpr_core::{EncMask, PixelStatus};
///
/// let mut mask = EncMask::new(8, 2);
/// mask.set(3, 1, PixelStatus::Regional);
/// assert_eq!(mask.get(3, 1), PixelStatus::Regional);
/// assert_eq!(mask.get(0, 0), PixelStatus::NonRegional);
/// assert_eq!(mask.size_bytes(), 4); // 16 px * 2 bits = 4 bytes
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncMask {
    width: u32,
    height: u32,
    /// Packed statuses, 4 pixels per byte, pixel `i` in bits `2*(i%4)`.
    packed: Vec<u8>,
}

impl EncMask {
    /// Creates an all-`N` mask for a `width x height` frame.
    pub fn new(width: u32, height: u32) -> Self {
        let pixels = width as usize * height as usize;
        EncMask { width, height, packed: vec![0; pixels.div_ceil(4)] }
    }

    /// Mask width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mask height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    #[inline]
    fn index(&self, x: u32, y: u32) -> (usize, u32) {
        debug_assert!(x < self.width && y < self.height);
        let i = y as usize * self.width as usize + x as usize;
        (i / 4, (i as u32 % 4) * 2)
    }

    /// The status at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `(x, y)` is outside the mask;
    /// in release builds out-of-bounds reads panic on slice indexing.
    #[inline]
    pub fn get(&self, x: u32, y: u32) -> PixelStatus {
        let (byte, shift) = self.index(x, y);
        PixelStatus::from_bits(self.packed[byte] >> shift)
    }

    /// Sets the status at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when `(x, y)` is outside the mask.
    #[inline]
    pub fn set(&mut self, x: u32, y: u32, status: PixelStatus) {
        let (byte, shift) = self.index(x, y);
        self.packed[byte] = (self.packed[byte] & !(0b11 << shift)) | (status.bits() << shift);
    }

    /// Byte size of the packed mask: exactly 2 bits per pixel, the 8 %
    /// metadata overhead (relative to 24-bit frames) the paper reports.
    pub fn size_bytes(&self) -> usize {
        self.packed.len()
    }

    /// The raw packed status bytes, 4 pixels per byte in raster order —
    /// the exact bytes the encoder DMAs to DRAM. Integrity digests and
    /// DRAM fault models operate on this representation.
    pub fn as_bytes(&self) -> &[u8] {
        &self.packed
    }

    /// Reassembles a mask from raw packed bytes (e.g. read back from a
    /// possibly-corrupted DRAM model). Returns `None` when `packed` is
    /// not exactly the byte length a `width x height` mask occupies.
    pub fn from_raw_bytes(width: u32, height: u32, packed: Vec<u8>) -> Option<Self> {
        let pixels = width as usize * height as usize;
        if packed.len() != pixels.div_ceil(4) {
            return None;
        }
        Some(EncMask { width, height, packed })
    }

    /// Dismantles the mask into its raw packed bytes, so a
    /// [`crate::BufferPool`] can recycle the allocation.
    pub fn into_raw_bytes(self) -> Vec<u8> {
        self.packed
    }

    /// Iterates the statuses of row `y` from left to right.
    ///
    /// # Panics
    ///
    /// Panics when `y >= height`.
    pub fn row_iter(&self, y: u32) -> impl Iterator<Item = PixelStatus> + '_ {
        assert!(y < self.height, "row {y} out of bounds");
        (0..self.width).map(move |x| self.get(x, y))
    }

    /// Number of `R` pixels in row `y` strictly left of column `x` —
    /// the column offset the PMMU's translator computes ("the number of
    /// `11` entries in the EncMask", paper §4.2.1).
    pub fn regional_before(&self, x: u32, y: u32) -> u32 {
        (0..x.min(self.width))
            .filter(|&c| self.get(c, y) == PixelStatus::Regional)
            .count() as u32
    }

    /// Counts pixels of each status over the whole mask, returned as
    /// `[N, St, Sk, R]`.
    pub fn histogram(&self) -> [u64; 4] {
        let mut counts = [0u64; 4];
        let total = self.width as usize * self.height as usize;
        for i in 0..total {
            let bits = (self.packed[i / 4] >> ((i % 4) * 2)) & 0b11;
            counts[bits as usize] += 1;
        }
        counts
    }

    /// Total number of `R` pixels — the encoded frame's pixel count.
    pub fn regional_total(&self) -> u64 {
        self.histogram()[PixelStatus::Regional.bits() as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_bits_roundtrip() {
        for status in [
            PixelStatus::NonRegional,
            PixelStatus::Strided,
            PixelStatus::Skipped,
            PixelStatus::Regional,
        ] {
            assert_eq!(PixelStatus::from_bits(status.bits()), status);
        }
    }

    #[test]
    fn status_bits_match_paper_encoding() {
        assert_eq!(PixelStatus::NonRegional.bits(), 0b00);
        assert_eq!(PixelStatus::Strided.bits(), 0b01);
        assert_eq!(PixelStatus::Skipped.bits(), 0b10);
        assert_eq!(PixelStatus::Regional.bits(), 0b11);
    }

    #[test]
    fn priority_prefers_fresh_data() {
        use PixelStatus::*;
        assert_eq!(Regional.max_priority(Strided), Regional);
        assert_eq!(Strided.max_priority(Skipped), Strided);
        assert_eq!(Skipped.max_priority(NonRegional), Skipped);
        assert_eq!(NonRegional.max_priority(Regional), Regional);
    }

    #[test]
    fn mask_set_get_roundtrip_all_positions_in_byte() {
        let mut mask = EncMask::new(4, 1);
        mask.set(0, 0, PixelStatus::Regional);
        mask.set(1, 0, PixelStatus::Strided);
        mask.set(2, 0, PixelStatus::Skipped);
        mask.set(3, 0, PixelStatus::NonRegional);
        assert_eq!(mask.get(0, 0), PixelStatus::Regional);
        assert_eq!(mask.get(1, 0), PixelStatus::Strided);
        assert_eq!(mask.get(2, 0), PixelStatus::Skipped);
        assert_eq!(mask.get(3, 0), PixelStatus::NonRegional);
    }

    #[test]
    fn set_overwrites_previous_status() {
        let mut mask = EncMask::new(2, 2);
        mask.set(1, 1, PixelStatus::Regional);
        mask.set(1, 1, PixelStatus::Strided);
        assert_eq!(mask.get(1, 1), PixelStatus::Strided);
    }

    #[test]
    fn size_is_two_bits_per_pixel() {
        assert_eq!(EncMask::new(1920, 1080).size_bytes(), 1920 * 1080 / 4);
        // ~506 KB for a 1080p frame, the paper's "500 KB" figure.
        assert_eq!(EncMask::new(1920, 1080).size_bytes(), 518_400);
        // Non-multiple-of-4 pixel counts round up.
        assert_eq!(EncMask::new(3, 1).size_bytes(), 1);
        assert_eq!(EncMask::new(5, 1).size_bytes(), 2);
    }

    #[test]
    fn regional_before_counts_only_r() {
        let mut mask = EncMask::new(6, 1);
        mask.set(0, 0, PixelStatus::Regional);
        mask.set(1, 0, PixelStatus::Strided);
        mask.set(2, 0, PixelStatus::Regional);
        assert_eq!(mask.regional_before(0, 0), 0);
        assert_eq!(mask.regional_before(2, 0), 1);
        assert_eq!(mask.regional_before(6, 0), 2);
    }

    #[test]
    fn histogram_sums_to_pixel_count() {
        let mut mask = EncMask::new(7, 3);
        mask.set(0, 0, PixelStatus::Regional);
        mask.set(3, 2, PixelStatus::Skipped);
        let h = mask.histogram();
        assert_eq!(h.iter().sum::<u64>(), 21);
        assert_eq!(h[PixelStatus::Regional.bits() as usize], 1);
        assert_eq!(h[PixelStatus::Skipped.bits() as usize], 1);
        assert_eq!(mask.regional_total(), 1);
    }

    #[test]
    fn row_iter_visits_whole_row() {
        let mut mask = EncMask::new(5, 2);
        mask.set(4, 1, PixelStatus::Regional);
        let row: Vec<PixelStatus> = mask.row_iter(1).collect();
        assert_eq!(row.len(), 5);
        assert_eq!(row[4], PixelStatus::Regional);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(PixelStatus::NonRegional.to_string(), "N");
        assert_eq!(PixelStatus::Strided.to_string(), "St");
        assert_eq!(PixelStatus::Skipped.to_string(), "Sk");
        assert_eq!(PixelStatus::Regional.to_string(), "R");
    }
}

//! The rhythmic pixel decoder (paper §4.2).
//!
//! The decoder fulfills pixel requests in ordinary decoded-frame
//! addressing so unmodified vision software never notices the encoded
//! representation. Requests pass through the [`PixelMmu`] for address
//! translation and are served by the FIFO sampling unit, which
//! dequeues regional pixels, interpolates strided pixels, fetches
//! temporally-skipped pixels from the recent-frame history, and fills
//! black elsewhere.
//!
//! Two reconstruction behaviours are provided:
//!
//! * [`ReconstructionMode::BlockNearest`] — the software decoder's
//!   nearest-anchor upsampling (each strided pixel takes the value of
//!   the stride-grid sample governing its block);
//! * [`ReconstructionMode::FifoReplicate`] — the hardware-faithful FIFO
//!   behaviour (§4.2.2): a strided pixel re-samples whatever value the
//!   response stream produced last.

use crate::kernels;
use crate::{
    BufferPool, EncodedFrame, PixelMmu, PixelRequest, PixelStatus, Result, SubRequestKind,
};
use rpr_frame::{GrayFrame, Plane};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// In-frame `u32` coordinate/offset to `usize`, in one place so the
/// cast is auditable.
#[inline]
fn us(v: u32) -> usize {
    v as usize // rpr-check: allow(truncating-cast): u32 -> usize is lossless on the 32/64-bit targets this crate supports
}

/// Run length (bounded by the pixel count) to a `u64` stats increment.
#[inline]
fn ul(v: usize) -> u64 {
    v as u64 // rpr-check: allow(truncating-cast): usize -> u64 is lossless on the 32/64-bit targets this crate supports
}

/// In-row `usize` position back to the `u32` coordinate space.
#[inline]
fn ux(v: usize) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// Number of recent encoded frames whose metadata the decoder's
/// scratchpad holds (paper §4.2.1: "the four most recent encoded
/// frames").
pub const HISTORY_DEPTH: usize = 4;

/// Ring buffer of the most recent encoded frames, newest first.
#[derive(Debug, Clone, Default)]
pub struct FrameHistory {
    frames: VecDeque<EncodedFrame>,
    /// When set, evicted frames are dismantled into this pool
    /// ([`EncodedFrame::recycle`]) instead of dropped, closing the
    /// encoder's buffer-reuse loop.
    pool: Option<BufferPool>,
}

impl FrameHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        FrameHistory { frames: VecDeque::with_capacity(HISTORY_DEPTH), pool: None }
    }

    /// Creates an empty history that recycles evicted frames' buffers
    /// into `pool`.
    pub fn with_pool(pool: BufferPool) -> Self {
        FrameHistory { frames: VecDeque::with_capacity(HISTORY_DEPTH), pool: Some(pool) }
    }

    /// Pushes a newly encoded frame, evicting the oldest beyond
    /// [`HISTORY_DEPTH`].
    pub fn push(&mut self, frame: EncodedFrame) {
        self.frames.push_front(frame);
        while self.frames.len() > HISTORY_DEPTH {
            if let (Some(old), Some(pool)) = (self.frames.pop_back(), &self.pool) {
                old.recycle(pool);
            }
        }
    }

    /// The most recent frame.
    pub fn current(&self) -> Option<&EncodedFrame> {
        self.frames.front()
    }

    /// The frame `frames_back` frames ago (0 = current).
    pub fn get(&self, frames_back: usize) -> Option<&EncodedFrame> {
        self.frames.get(frames_back)
    }

    /// Number of frames held (at most [`HISTORY_DEPTH`]).
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frames have been pushed.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Drops all held frames.
    pub fn clear(&mut self) {
        self.frames.clear();
    }

    /// Sum of payload + metadata bytes currently resident — the
    /// framebuffer footprint the memory simulator charges.
    pub fn resident_bytes(&self) -> usize {
        self.frames.iter().map(EncodedFrame::total_bytes).sum()
    }
}

/// How strided (`St`) pixels are reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReconstructionMode {
    /// Nearest stride-anchor upsampling (software decoder default).
    #[default]
    BlockNearest,
    /// Hardware-faithful FIFO behaviour: repeat the previous value
    /// emitted in the response stream.
    FifoReplicate,
}

/// Counters describing how decoded pixels were produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecoderStats {
    /// Frames fully decoded.
    pub frames: u64,
    /// Pixels dequeued directly from the current encoded frame.
    pub regional: u64,
    /// Pixels reconstructed by interpolation.
    pub interpolated: u64,
    /// Pixels served from the frame history.
    pub from_history: u64,
    /// Pixels filled black.
    pub black: u64,
}

/// The reference software decoder (the paper also ships one, §5.1): it
/// reconstructs whole frames sequentially and keeps the last decoded
/// frame so temporally skipped pixels resolve to their most recent
/// observed value.
///
/// # Example
///
/// ```
/// use rpr_core::{RegionLabel, RegionList, RhythmicEncoder, SoftwareDecoder};
/// use rpr_frame::Plane;
///
/// let frame = Plane::from_fn(16, 16, |x, y| (x + y) as u8);
/// let regions = RegionList::new(16, 16, vec![RegionLabel::new(0, 0, 8, 8, 1, 1)])?;
/// let mut enc = RhythmicEncoder::new(16, 16);
/// let mut dec = SoftwareDecoder::new(16, 16);
/// let decoded = dec.decode(&enc.encode(&frame, 0, &regions));
/// assert_eq!(decoded.get(3, 3), frame.get(3, 3));
/// # Ok::<(), rpr_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SoftwareDecoder {
    width: u32,
    height: u32,
    mode: ReconstructionMode,
    history: FrameHistory,
    last_decoded: Option<GrayFrame>,
    stats: DecoderStats,
    /// Buffer source for output planes; evicted history frames are
    /// dismantled back into it. Share with the encoder via
    /// [`Self::with_pool`] to close the zero-alloc loop.
    pool: BufferPool,
    /// Persistent chamfer-distance scratch rows (one frame's worth of
    /// state, reset per decode) so steady-state decoding allocates
    /// nothing.
    prev_dist: Vec<u32>,
    cur_dist: Vec<u32>,
}

impl SoftwareDecoder {
    /// Creates a decoder for `width x height` frames using
    /// [`ReconstructionMode::BlockNearest`].
    pub fn new(width: u32, height: u32) -> Self {
        Self::with_mode(width, height, ReconstructionMode::BlockNearest)
    }

    /// Creates a decoder with an explicit reconstruction mode.
    pub fn with_mode(width: u32, height: u32, mode: ReconstructionMode) -> Self {
        Self::with_pool(width, height, mode, BufferPool::new())
    }

    /// Creates a decoder drawing output planes from `pool` and
    /// recycling evicted history frames into it. Hand the encoder the
    /// same pool ([`crate::RhythmicEncoder::with_pool`]) and return
    /// retired output planes via [`Self::recycle_output`], and the
    /// steady-state encode→decode loop performs no heap allocation.
    pub fn with_pool(width: u32, height: u32, mode: ReconstructionMode, pool: BufferPool) -> Self {
        SoftwareDecoder {
            width,
            height,
            mode,
            history: FrameHistory::with_pool(pool.clone()),
            last_decoded: None,
            stats: DecoderStats::default(),
            pool,
            prev_dist: Vec::new(),
            cur_dist: Vec::new(),
        }
    }

    /// The pool this decoder draws output planes from.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Returns a retired output plane's buffer to the pool so the next
    /// decode reuses it.
    pub fn recycle_output(&self, frame: GrayFrame) {
        self.pool.put_vec(frame.into_vec());
    }

    /// Frame width the decoder was built for.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height the decoder was built for.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Accumulated decode statistics.
    pub fn stats(&self) -> &DecoderStats {
        &self.stats
    }

    /// The encoded-frame history the decoder currently holds.
    pub fn history(&self) -> &FrameHistory {
        &self.history
    }

    /// The most recently decoded full frame, if any.
    pub fn last_decoded(&self) -> Option<&GrayFrame> {
        self.last_decoded.as_ref()
    }

    /// Forgets all history (e.g. on a scene cut).
    pub fn reset(&mut self) {
        self.history.clear();
        self.last_decoded = None;
    }

    /// Validates an encoded frame before decoding it — the defensive
    /// entry point for frames read back from untrusted storage.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::GeometryMismatch`] for the wrong
    /// frame size or [`crate::CoreError::CorruptEncodedFrame`] when the
    /// payload and metadata disagree; the decoder state is untouched on
    /// error.
    pub fn try_decode(&mut self, encoded: &EncodedFrame) -> Result<GrayFrame> {
        if (encoded.width(), encoded.height()) != (self.width, self.height) {
            return Err(crate::CoreError::GeometryMismatch {
                expected: (self.width, self.height),
                actual: (encoded.width(), encoded.height()),
            });
        }
        encoded.validate()?;
        Ok(self.decode(encoded))
    }

    /// Decodes a full frame, updating the history.
    ///
    /// # Panics
    ///
    /// Panics when the encoded frame's geometry does not match the
    /// decoder's.
    pub fn decode(&mut self, encoded: &EncodedFrame) -> GrayFrame {
        self.decode_owned(encoded.clone())
    }

    /// [`Self::decode`] taking the frame by value: the frame moves into
    /// the history without cloning its mask/payload/offsets, which is
    /// what keeps the pooled steady state allocation-free. Identical
    /// output, stats, and panic contract.
    ///
    /// # Panics
    ///
    /// Panics when the encoded frame's geometry does not match the
    /// decoder's.
    pub fn decode_owned(&mut self, encoded: EncodedFrame) -> GrayFrame {
        // rpr-check: allow(panic-surface): documented panic contract (see doc comment and the should_panic test); try_decode is the fallible entry for untrusted frames
        assert_eq!(
            (encoded.width(), encoded.height()),
            (self.width, self.height),
            "encoded frame geometry mismatch"
        );
        let _span = rpr_trace::span(rpr_trace::names::DECODE, "core")
            .with_frame(encoded.frame_idx());
        let out = match self.mode {
            ReconstructionMode::BlockNearest => self.decode_block_nearest(&encoded),
            ReconstructionMode::FifoReplicate => self.decode_fifo(&encoded),
        };
        self.history.push(encoded);
        // Refresh the retained copy in place (a memcpy, not an alloc)
        // when one exists; geometry is fixed, so lengths always match.
        match &mut self.last_decoded {
            Some(prev) => prev.as_mut_slice().copy_from_slice(out.as_slice()),
            None => self.last_decoded = Some(out.clone()),
        }
        self.stats.frames += 1;
        out
    }

    /// Nearest-anchor reconstruction: strided pixels take the value of
    /// the nearest already-reconstructed in-region pixel (left in the
    /// row, else directly above), which for stride grids is exactly the
    /// governing stride anchor.
    fn decode_block_nearest(&mut self, encoded: &EncodedFrame) -> GrayFrame {
        // Disjoint field borrows: the output buffer, distance scratch,
        // stats, and the previous decoded plane are all live at once.
        let SoftwareDecoder { width, height, last_decoded, stats, pool, prev_dist, cur_dist, .. } =
            self;
        let (width, height) = (*width, *height);
        let w = us(width);
        let meta = encoded.metadata();
        let mask_bytes = meta.mask.as_bytes();
        // Every pixel below is written by exactly one run, so the
        // recycled buffer's stale contents are never observable — the
        // poisoned-pool conformance sweep is what proves that.
        let mut out_vec = pool.get_scratch(w * us(height));
        let prev_plane: Option<&[u8]> = last_decoded.as_ref().map(|p| p.as_slice());
        // Distance (in chamfer steps) from each pixel of the previous row
        // to its data source; u32::MAX marks "no data".
        prev_dist.clear();
        prev_dist.resize(w, u32::MAX);
        cur_dist.clear();
        cur_dist.resize(w, u32::MAX);

        for y in 0..height {
            let span = meta.row_offsets.row_span(y);
            // A frame whose offsets overrun its payload decodes the
            // overrun as black instead of panicking; try_decode's
            // validation is what reports such frames as corrupt.
            let row_pixels =
                encoded.pixels().get(us(span.start)..us(span.end)).unwrap_or(&[]);
            let base = us(y) * w;
            // Split-borrow the plane: everything before this row is
            // final, so the previous row reads straight from the output
            // buffer (the old code copied it to a fresh Vec per row).
            let (done, rest) = out_vec.split_at_mut(base.min(w * us(height)));
            let Some(cur_row) = rest.get_mut(..w) else { continue };
            let prev_row: &[u8] =
                if y == 0 { &[] } else { done.get(base - w..).unwrap_or(&[]) };
            let prev_hist_row = prev_plane.and_then(|p| p.get(base..base + w));
            let mut next_r = 0usize;
            let mut last_r: Option<(u32, u8)> = None;
            let mut x = 0usize;

            kernels::for_each_run(mask_bytes, base, w, |status, run| {
                match PixelStatus::from_bits(status) {
                    PixelStatus::Regional => {
                        // Whole-run payload copy; overruns past the
                        // payload decode as black, as per-pixel
                        // `.get(..).unwrap_or(0)` did.
                        let avail = row_pixels.len().saturating_sub(next_r).min(run);
                        if let (Some(dst), Some(src)) = (
                            cur_row.get_mut(x..x + avail),
                            row_pixels.get(next_r..next_r + avail),
                        ) {
                            dst.copy_from_slice(src);
                        }
                        if let Some(pad) = cur_row.get_mut(x + avail..x + run) {
                            pad.fill(0);
                        }
                        if let Some(d) = cur_dist.get_mut(x..x + run) {
                            d.fill(0);
                        }
                        next_r += run;
                        stats.regional += ul(run);
                        let lx = x + run - 1;
                        last_r = Some((ux(lx), cur_row.get(lx).copied().unwrap_or(0)));
                    }
                    PixelStatus::Strided => {
                        stats.interpolated += ul(run);
                        for i in x..x + run {
                            let left = last_r.map(|(xr, v)| (ux(i) - xr, v));
                            let above = if y == 0 {
                                None
                            } else {
                                match (prev_dist.get(i).copied(), prev_row.get(i).copied()) {
                                    (Some(d), Some(v)) if d != u32::MAX => Some((d + 1, v)),
                                    _ => None,
                                }
                            };
                            let (value, dist) = match (left, above) {
                                (Some((dl, vl)), Some((da, va))) => {
                                    if dl <= da {
                                        (vl, dl)
                                    } else {
                                        (va, da)
                                    }
                                }
                                (Some((dl, vl)), None) => (vl, dl),
                                (None, Some((da, va))) => (va, da),
                                (None, None) => (0, u32::MAX),
                            };
                            if let Some(slot) = cur_row.get_mut(i) {
                                *slot = value;
                            }
                            if let Some(slot) = cur_dist.get_mut(i) {
                                *slot = dist;
                            }
                        }
                    }
                    PixelStatus::Skipped => {
                        if let Some(prow) = prev_hist_row {
                            stats.from_history += ul(run);
                            if let (Some(dst), Some(src)) =
                                (cur_row.get_mut(x..x + run), prow.get(x..x + run))
                            {
                                dst.copy_from_slice(src);
                            }
                            if let Some(d) = cur_dist.get_mut(x..x + run) {
                                d.fill(0);
                            }
                        } else {
                            stats.black += ul(run);
                            if let Some(dst) = cur_row.get_mut(x..x + run) {
                                dst.fill(0);
                            }
                            if let Some(d) = cur_dist.get_mut(x..x + run) {
                                d.fill(u32::MAX);
                            }
                        }
                    }
                    PixelStatus::NonRegional => {
                        stats.black += ul(run);
                        if let Some(dst) = cur_row.get_mut(x..x + run) {
                            dst.fill(0);
                        }
                        if let Some(d) = cur_dist.get_mut(x..x + run) {
                            d.fill(u32::MAX);
                        }
                    }
                }
                x += run;
            });
            std::mem::swap(prev_dist, cur_dist);
        }
        Plane::from_vec(width, height, out_vec)
            .unwrap_or_else(|_| Plane::new(width, height))
    }

    /// Hardware-faithful FIFO reconstruction: one whole-frame
    /// transaction; `St` repeats the last emitted value.
    fn decode_fifo(&mut self, encoded: &EncodedFrame) -> GrayFrame {
        let SoftwareDecoder { width, height, last_decoded, stats, pool, .. } = self;
        let (width, height) = (*width, *height);
        let w = us(width);
        let meta = encoded.metadata();
        let mask_bytes = meta.mask.as_bytes();
        let mut out_vec = pool.get_scratch(w * us(height));
        let prev_plane: Option<&[u8]> = last_decoded.as_ref().map(|p| p.as_slice());
        let mut last_emitted: u8 = 0;
        for y in 0..height {
            let span = meta.row_offsets.row_span(y);
            let row_pixels =
                encoded.pixels().get(us(span.start)..us(span.end)).unwrap_or(&[]);
            let base = us(y) * w;
            let Some(cur_row) = out_vec.get_mut(base..base + w) else { continue };
            let prev_hist_row = prev_plane.and_then(|p| p.get(base..base + w));
            let mut next_r = 0usize;
            let mut x = 0usize;
            kernels::for_each_run(mask_bytes, base, w, |status, run| {
                match PixelStatus::from_bits(status) {
                    PixelStatus::Regional => {
                        let avail = row_pixels.len().saturating_sub(next_r).min(run);
                        if let (Some(dst), Some(src)) = (
                            cur_row.get_mut(x..x + avail),
                            row_pixels.get(next_r..next_r + avail),
                        ) {
                            dst.copy_from_slice(src);
                        }
                        if let Some(pad) = cur_row.get_mut(x + avail..x + run) {
                            pad.fill(0);
                        }
                        next_r += run;
                        stats.regional += ul(run);
                        last_emitted = cur_row.get(x + run - 1).copied().unwrap_or(0);
                    }
                    PixelStatus::Strided => {
                        // Replicates the FIFO's last output; the run
                        // leaves `last_emitted` unchanged because every
                        // pixel re-emits it.
                        stats.interpolated += ul(run);
                        if let Some(dst) = cur_row.get_mut(x..x + run) {
                            dst.fill(last_emitted);
                        }
                    }
                    PixelStatus::Skipped => {
                        if let Some(prow) = prev_hist_row {
                            stats.from_history += ul(run);
                            if let (Some(dst), Some(src)) =
                                (cur_row.get_mut(x..x + run), prow.get(x..x + run))
                            {
                                dst.copy_from_slice(src);
                            }
                            last_emitted = cur_row.get(x + run - 1).copied().unwrap_or(0);
                        } else {
                            stats.black += ul(run);
                            if let Some(dst) = cur_row.get_mut(x..x + run) {
                                dst.fill(0);
                            }
                            last_emitted = 0;
                        }
                    }
                    PixelStatus::NonRegional => {
                        stats.black += ul(run);
                        if let Some(dst) = cur_row.get_mut(x..x + run) {
                            dst.fill(0);
                        }
                        last_emitted = 0;
                    }
                }
                x += run;
            });
        }
        Plane::from_vec(width, height, out_vec)
            .unwrap_or_else(|_| Plane::new(width, height))
    }

    /// Random-access read of a single decoded pixel through the PMMU
    /// translation path, without touching the sequential-decode cache —
    /// the hardware request/response path of Fig. 6.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::OutOfFrame`] for coordinates outside
    /// the decoded framebuffer or when no frame has been pushed yet.
    pub fn read_pixel(&self, mmu: &mut PixelMmu, x: u32, y: u32) -> Result<u8> {
        let subs = mmu.analyze(&self.history, PixelRequest::single(x, y))?;
        Ok(subs.first().map(|s| self.resolve_sub_request(s)).unwrap_or(0))
    }

    /// Reads a rectangular window through the PMMU request path — the
    /// ROI access pattern a vision accelerator issues (one burst per
    /// row of the window). Strided and skipped pixels resolve through
    /// the same translation the hardware performs.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::OutOfFrame`] when the window leaves
    /// the decoded framebuffer or no frame has been pushed yet.
    pub fn read_rect(&self, mmu: &mut PixelMmu, rect: rpr_frame::Rect) -> Result<GrayFrame> {
        let mut out: GrayFrame = Plane::new(rect.w, rect.h);
        for row in 0..rect.h {
            let subs = mmu.analyze(
                &self.history,
                PixelRequest { x: rect.x, y: rect.y + row, len: rect.w },
            )?;
            for (i, sub) in subs.iter().enumerate() {
                let x = u32::try_from(i).unwrap_or(u32::MAX);
                out.set(x, row, self.resolve_sub_request(sub));
            }
        }
        Ok(out)
    }

    /// Resolves one translated sub-request to a pixel value.
    fn resolve_sub_request(&self, sub: &crate::SubRequest) -> u8 {
        match sub.kind {
            SubRequestKind::CurrentFrame { offset } => self
                .history
                .current()
                .and_then(|f| f.pixels().get(us(offset)).copied())
                .unwrap_or(0),
            SubRequestKind::HistoryFrame { frames_back, offset } => self
                .history
                .get(usize::from(frames_back))
                .and_then(|f| f.pixels().get(us(offset)).copied())
                .unwrap_or(0),
            SubRequestKind::Interpolate => self
                .history
                .current()
                .map(|f| resolve_strided(f, sub.x, sub.y))
                .unwrap_or(0),
            SubRequestKind::HistoryInterpolate { frames_back } => self
                .history
                .get(usize::from(frames_back))
                .map(|f| resolve_strided(f, sub.x, sub.y))
                .unwrap_or(0),
            SubRequestKind::Black => 0,
        }
    }
}

/// Finds the stride anchor governing a strided pixel by scanning the
/// EncMask: left in the pixel's row, then upward (and left) through
/// earlier rows. For a stride grid this lands exactly on the block's
/// `R` anchor. Returns black when no anchor exists.
fn resolve_strided(frame: &EncodedFrame, x: u32, y: u32) -> u8 {
    let meta = frame.metadata();
    // Left in this row.
    for xx in (0..=x).rev() {
        match meta.mask.get(xx, y) {
            PixelStatus::Regional => return frame.fetch_regional(xx, y).unwrap_or(0),
            PixelStatus::Strided => continue,
            _ => break,
        }
    }
    // Upward: find the nearest row above with data at or left of x.
    for yy in (0..y).rev() {
        match meta.mask.get(x, yy) {
            PixelStatus::Regional => return frame.fetch_regional(x, yy).unwrap_or(0),
            PixelStatus::Strided => {
                for xx in (0..x).rev() {
                    if meta.mask.get(xx, yy) == PixelStatus::Regional {
                        return frame.fetch_regional(xx, yy).unwrap_or(0);
                    }
                    if meta.mask.get(xx, yy) == PixelStatus::NonRegional {
                        break;
                    }
                }
            }
            _ => break,
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RegionLabel, RegionList, RhythmicEncoder};
    use rpr_frame::Plane;

    fn gradient(w: u32, h: u32) -> GrayFrame {
        Plane::from_fn(w, h, |x, y| (x * 5 + y * 11) as u8)
    }

    #[test]
    fn history_evicts_beyond_depth() {
        let frame = gradient(8, 8);
        let list = RegionList::full_frame(8, 8);
        let mut enc = RhythmicEncoder::new(8, 8);
        let mut history = FrameHistory::new();
        for idx in 0..6 {
            history.push(enc.encode(&frame, idx, &list));
        }
        assert_eq!(history.len(), HISTORY_DEPTH);
        assert_eq!(history.current().unwrap().frame_idx(), 5);
        assert_eq!(history.get(3).unwrap().frame_idx(), 2);
    }

    #[test]
    fn full_frame_roundtrip_is_lossless() {
        let frame = gradient(16, 12);
        let mut enc = RhythmicEncoder::new(16, 12);
        let mut dec = SoftwareDecoder::new(16, 12);
        let decoded = dec.decode(&enc.encode(&frame, 0, &RegionList::full_frame(16, 12)));
        assert_eq!(decoded, frame);
    }

    #[test]
    fn regional_pixels_roundtrip_exactly() {
        let frame = gradient(16, 16);
        let regions =
            RegionList::new(16, 16, vec![RegionLabel::new(2, 3, 9, 7, 1, 1)]).unwrap();
        let mut enc = RhythmicEncoder::new(16, 16);
        let mut dec = SoftwareDecoder::new(16, 16);
        let decoded = dec.decode(&enc.encode(&frame, 0, &regions));
        for y in 3..10 {
            for x in 2..11 {
                assert_eq!(decoded.get(x, y), frame.get(x, y), "({x},{y})");
            }
        }
        assert_eq!(decoded.get(0, 0), Some(0));
        assert_eq!(decoded.get(15, 15), Some(0));
    }

    #[test]
    fn strided_pixels_take_block_anchor() {
        let frame = gradient(8, 8);
        let regions =
            RegionList::new(8, 8, vec![RegionLabel::new(0, 0, 8, 8, 4, 1)]).unwrap();
        let mut enc = RhythmicEncoder::new(8, 8);
        let mut dec = SoftwareDecoder::new(8, 8);
        let decoded = dec.decode(&enc.encode(&frame, 0, &regions));
        // Every pixel of block (0..4, 0..4) should equal the anchor (0,0).
        let anchor = frame.get(0, 0).unwrap();
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(decoded.get(x, y), Some(anchor), "({x},{y})");
            }
        }
        let anchor2 = frame.get(4, 4).unwrap();
        assert_eq!(decoded.get(7, 7), Some(anchor2));
    }

    #[test]
    fn skipped_pixels_use_previous_decode() {
        // Frame content changes between captures; the skipped frame must
        // show the old content.
        let frame_a = Plane::from_fn(8, 8, |_, _| 100u8);
        let frame_b = Plane::from_fn(8, 8, |_, _| 200u8);
        let regions =
            RegionList::new(8, 8, vec![RegionLabel::new(0, 0, 8, 8, 1, 2)]).unwrap();
        let mut enc = RhythmicEncoder::new(8, 8);
        let mut dec = SoftwareDecoder::new(8, 8);
        let d0 = dec.decode(&enc.encode(&frame_a, 0, &regions));
        assert_eq!(d0.get(4, 4), Some(100));
        let d1 = dec.decode(&enc.encode(&frame_b, 1, &regions)); // skipped
        assert_eq!(d1.get(4, 4), Some(100), "skip frame shows stale pixels");
        let d2 = dec.decode(&enc.encode(&frame_b, 2, &regions)); // sampled
        assert_eq!(d2.get(4, 4), Some(200));
    }

    #[test]
    fn skipped_without_history_is_black() {
        let frame = gradient(8, 8);
        let regions =
            RegionList::new(8, 8, vec![RegionLabel::new(0, 0, 8, 8, 1, 2)]).unwrap();
        let mut enc = RhythmicEncoder::new(8, 8);
        let mut dec = SoftwareDecoder::new(8, 8);
        // Decode only the off-phase frame.
        let encoded = enc.encode(&frame, 1, &regions);
        let decoded = dec.decode(&encoded);
        assert_eq!(decoded.get(3, 3), Some(0));
    }

    #[test]
    fn fifo_mode_replicates_previous_value() {
        let frame = gradient(8, 1);
        let regions =
            RegionList::new(8, 1, vec![RegionLabel::new(0, 0, 8, 1, 2, 1)]).unwrap();
        let mut enc = RhythmicEncoder::new(8, 1);
        let mut dec = SoftwareDecoder::with_mode(8, 1, ReconstructionMode::FifoReplicate);
        let decoded = dec.decode(&enc.encode(&frame, 0, &regions));
        // R at x=0,2,4,6; St at odd x repeats the left value.
        for x in 0..8u32 {
            let expected = frame.get(x - x % 2, 0).unwrap();
            assert_eq!(decoded.get(x, 0), Some(expected), "x={x}");
        }
    }

    #[test]
    fn random_access_matches_full_decode_on_r_and_n() {
        let frame = gradient(16, 16);
        let regions = RegionList::new(
            16,
            16,
            vec![
                RegionLabel::new(1, 1, 6, 6, 2, 1),
                RegionLabel::new(8, 8, 7, 7, 1, 2),
            ],
        )
        .unwrap();
        let mut enc = RhythmicEncoder::new(16, 16);
        let mut dec = SoftwareDecoder::new(16, 16);
        let encoded = enc.encode(&frame, 0, &regions);
        let full = dec.decode(&encoded);
        let mut mmu = PixelMmu::new(16, 16);
        let mask = &encoded.metadata().mask;
        for y in 0..16 {
            for x in 0..16 {
                let status = mask.get(x, y);
                if status == PixelStatus::Regional || status == PixelStatus::NonRegional {
                    let v = dec.read_pixel(&mut mmu, x, y).unwrap();
                    assert_eq!(Some(v), full.get(x, y), "({x},{y}) {status}");
                }
            }
        }
    }

    #[test]
    fn random_access_strided_finds_anchor() {
        let frame = gradient(12, 12);
        let regions =
            RegionList::new(12, 12, vec![RegionLabel::new(2, 2, 8, 8, 4, 1)]).unwrap();
        let mut enc = RhythmicEncoder::new(12, 12);
        let mut dec = SoftwareDecoder::new(12, 12);
        dec.decode(&enc.encode(&frame, 0, &regions));
        let mut mmu = PixelMmu::new(12, 12);
        // (5, 5) is governed by the anchor at (2, 2).
        let v = dec.read_pixel(&mut mmu, 5, 5).unwrap();
        assert_eq!(Some(v), frame.get(2, 2));
        // (7, 3): anchor (6, 2).
        let v = dec.read_pixel(&mut mmu, 7, 3).unwrap();
        assert_eq!(Some(v), frame.get(6, 2));
    }

    #[test]
    fn read_rect_matches_full_decode_inside_dense_regions() {
        let frame = gradient(24, 24);
        let regions =
            RegionList::new(24, 24, vec![RegionLabel::new(4, 4, 12, 12, 1, 1)]).unwrap();
        let mut enc = RhythmicEncoder::new(24, 24);
        let mut dec = SoftwareDecoder::new(24, 24);
        let full = dec.decode(&enc.encode(&frame, 0, &regions));
        let mut mmu = PixelMmu::new(24, 24);
        let window = dec.read_rect(&mut mmu, rpr_frame::Rect::new(4, 4, 12, 12)).unwrap();
        for y in 0..12 {
            for x in 0..12 {
                assert_eq!(window.get(x, y), full.get(4 + x, 4 + y), "({x},{y})");
            }
        }
        // Out-of-frame windows are rejected.
        assert!(dec.read_rect(&mut mmu, rpr_frame::Rect::new(20, 20, 10, 10)).is_err());
    }

    #[test]
    fn decoder_stats_classify_sources() {
        let frame = gradient(8, 8);
        let regions =
            RegionList::new(8, 8, vec![RegionLabel::new(0, 0, 4, 4, 2, 1)]).unwrap();
        let mut enc = RhythmicEncoder::new(8, 8);
        let mut dec = SoftwareDecoder::new(8, 8);
        dec.decode(&enc.encode(&frame, 0, &regions));
        let s = *dec.stats();
        assert_eq!(s.frames, 1);
        assert_eq!(s.regional, 4);
        assert_eq!(s.interpolated, 12);
        assert_eq!(s.black, 48);
        assert_eq!(s.from_history, 0);
    }

    #[test]
    fn resident_bytes_tracks_history() {
        let frame = gradient(8, 8);
        let list = RegionList::full_frame(8, 8);
        let mut enc = RhythmicEncoder::new(8, 8);
        let mut dec = SoftwareDecoder::new(8, 8);
        assert_eq!(dec.history().resident_bytes(), 0);
        dec.decode(&enc.encode(&frame, 0, &list));
        let one = dec.history().resident_bytes();
        assert!(one > 64);
        dec.decode(&enc.encode(&frame, 1, &list));
        assert_eq!(dec.history().resident_bytes(), 2 * one);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn decode_rejects_wrong_geometry() {
        let frame = gradient(8, 8);
        let mut enc = RhythmicEncoder::new(8, 8);
        let encoded = enc.encode(&frame, 0, &RegionList::full_frame(8, 8));
        let mut dec = SoftwareDecoder::new(16, 16);
        dec.decode(&encoded);
    }
}

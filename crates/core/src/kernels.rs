//! Chunked hot-path kernels shared by the encoder, the decoder, and
//! the wire layer's RLE coder.
//!
//! Every kernel here exists in two forms:
//!
//! * a **chunked** version that walks the data in u64-wide words (or
//!   4-entry mask bytes) so the compiler can keep the hot loop in wide
//!   registers — this is what the production paths call; and
//! * a **`*_scalar` reference** — the original per-entry loop, retained
//!   forever so the `kernel_equivalence` differential test battery
//!   (TESTING.md) can pin the chunked form byte-identical to it across
//!   degenerate shapes (widths not divisible by 4/8/64, zero-length
//!   rows, all-one-status masks, single-pixel runs).
//!
//! Two domains appear throughout:
//!
//! * **packed 2-bit entries** — the [`crate::EncMask`] wire layout:
//!   entry `i` lives in bits `2*(i%4)` of byte `i/4`. Rows of a
//!   `width x height` mask are *not* byte aligned when `width % 4 != 0`,
//!   so every kernel takes an arbitrary start entry and handles the
//!   misaligned head/tail itself. Entries past the end of the packed
//!   slice read as `0` (status `N`), matching `packed_get`'s contract
//!   in `rpr-wire`'s RLE coder.
//! * **priority rows** — one byte per pixel holding the
//!   [`crate::PixelStatus::priority`] value `0..=3` (`N=0, Sk=1, St=2,
//!   R=3`). The encoder paints region spans in priority space because
//!   priority merging is a plain `u8::max` there (the 2-bit wire
//!   encoding is *not* ordered by priority), then maps to wire bits at
//!   emit time via [`priority_to_bits`].
//!
//! All kernels are safe code (the workspace is 100 % `unsafe`-free;
//! `ci/check_policy.toml` RPR004) and panic-free on every input.

/// Maps a priority value (`0..=3`) to the 2-bit wire status it encodes:
/// `N(0)→00`, `Sk(1)→10`, `St(2)→01`, `R(3)→11`. Only the low two bits
/// of `pri` are inspected.
#[inline(always)]
pub fn priority_to_bits(pri: u8) -> u8 {
    const MAP: [u8; 4] = [0b00, 0b10, 0b01, 0b11];
    MAP[usize::from(pri & 0b11)] // rpr-check: allow(panic-surface): index masked to 0..=3, table has 4 entries
}

/// The 2-bit status of packed entry `i`; entries past the end of
/// `packed` read as `0`.
#[inline(always)]
pub fn entry_at(packed: &[u8], i: usize) -> u8 {
    (packed.get(i / 4).copied().unwrap_or(0) >> ((i % 4) * 2)) & 0b11
}

/// The byte in which all four 2-bit lanes hold `status`.
#[inline(always)]
pub fn splat_byte(status: u8) -> u8 {
    0b0101_0101u8.wrapping_mul(status & 0b11)
}

/// Reads 8 packed bytes starting at `byte_idx` as a little-endian u64;
/// bytes past the end read as `0`.
#[inline(always)]
fn word_at(packed: &[u8], byte_idx: usize) -> u64 {
    let mut w = [0u8; 8];
    match packed.get(byte_idx..byte_idx + 8) {
        Some(s) => w = <[u8; 8]>::try_from(s).unwrap_or(w),
        None => {
            for (k, slot) in w.iter_mut().enumerate() {
                *slot = packed.get(byte_idx + k).copied().unwrap_or(0);
            }
        }
    }
    u64::from_le_bytes(w)
}

/// Calls `f(status, run_len)` for each maximal run of equal 2-bit
/// statuses over packed entries `[start, start + len)`.
///
/// Runs are maximal (adjacent calls always differ in status), lengths
/// are positive, and lengths sum to `len`. The hot loop skips 32
/// entries per iteration whenever a whole u64 mask word continues the
/// current run — uniform rows (all-`N` background, all-`R` interiors)
/// are the common case in rhythmic masks.
pub fn for_each_run(packed: &[u8], start: usize, len: usize, mut f: impl FnMut(u8, usize)) {
    if len == 0 {
        return;
    }
    let end = start + len;
    let mut cur = entry_at(packed, start);
    let mut run_start = start;
    let mut i = start + 1;
    while i < end {
        if i.is_multiple_of(4) {
            // Byte-aligned: extend the run by whole words, then whole
            // bytes, while they splat the current status.
            let sb = splat_byte(cur);
            let sw = u64::from(sb) * 0x0101_0101_0101_0101;
            while i + 32 <= end && word_at(packed, i / 4) == sw {
                i += 32;
            }
            while i + 4 <= end && packed.get(i / 4).copied().unwrap_or(0) == sb {
                i += 4;
            }
            if i >= end {
                break;
            }
        }
        let s = entry_at(packed, i);
        if s != cur {
            f(cur, i - run_start);
            cur = s;
            run_start = i;
        }
        i += 1;
    }
    f(cur, end - run_start);
}

/// Per-entry reference implementation of [`for_each_run`].
pub fn for_each_run_scalar(
    packed: &[u8],
    start: usize,
    len: usize,
    mut f: impl FnMut(u8, usize),
) {
    if len == 0 {
        return;
    }
    let end = start + len;
    let mut cur = entry_at(packed, start);
    let mut run = 1usize;
    for i in start + 1..end {
        let s = entry_at(packed, i);
        if s == cur {
            run += 1;
        } else {
            f(cur, run);
            cur = s;
            run = 1;
        }
    }
    f(cur, run);
}

/// Packs a priority row into 2-bit mask entries starting at
/// `start_entry`, OR-ing into `packed`.
///
/// The target entries must be zero (a freshly cleared mask) — the
/// encoder's contract, which lets the kernel write without a
/// read-modify-mask cycle. Entries that would land past the end of
/// `packed` are dropped. The aligned body assembles 32 entries into
/// one u64 mask word and stores it as 8 bytes.
pub fn pack_priority_row(packed: &mut [u8], start_entry: usize, row_pri: &[u8]) {
    if row_pri.is_empty() {
        // Also the base case of the misaligned-head recursion below: a
        // row shorter than its head leaves `rest` empty at a start
        // that is still misaligned, which must not recurse again.
        return;
    }
    if !start_entry.is_multiple_of(4) {
        // Misaligned head: finish the shared byte entry-by-entry.
        let head = (4 - start_entry % 4).min(row_pri.len());
        let (h, rest) = row_pri.split_at(head);
        pack_priority_row_scalar(packed, start_entry, h);
        pack_priority_row(packed, start_entry + head, rest);
        return;
    }
    let byte_start = start_entry / 4;
    let n_bytes = row_pri.len() / 4;
    let Some(target) = packed.get_mut(byte_start..(byte_start + n_bytes).min(byte_start + n_bytes))
    else {
        return pack_priority_row_scalar(packed, start_entry, row_pri);
    };
    let target_len = target.len().min(n_bytes);
    let Some(target) = target.get_mut(..target_len) else {
        return pack_priority_row_scalar(packed, start_entry, row_pri);
    };

    // u64-wide body: 32 priorities -> one mask word.
    let mut words = target.chunks_exact_mut(8);
    let mut pris = row_pri.chunks_exact(32);
    for (slot, ch) in (&mut words).zip(&mut pris) {
        let mut word = 0u64;
        for (j, &p) in ch.iter().enumerate() {
            word |= u64::from(priority_to_bits(p)) << (j * 2);
        }
        slot.copy_from_slice(&word.to_le_bytes());
    }
    // Byte tail of the aligned region.
    let mut done = (target_len / 8) * 8;
    let tail = words.into_remainder();
    for (slot, ch) in tail.iter_mut().zip(row_pri.get(done * 4..).unwrap_or(&[]).chunks_exact(4))
    {
        let &[a, b, c, d] = ch else { break };
        *slot |= priority_to_bits(a)
            | (priority_to_bits(b) << 2)
            | (priority_to_bits(c) << 4)
            | (priority_to_bits(d) << 6);
        done += 1;
    }
    // Whatever did not fit whole bytes (final partial byte, or a packed
    // slice shorter than the row) goes entry-by-entry.
    pack_priority_row_scalar(
        packed,
        start_entry + done * 4,
        row_pri.get(done * 4..).unwrap_or(&[]),
    );
}

/// Per-entry reference implementation of [`pack_priority_row`]. Same
/// zero-target contract.
pub fn pack_priority_row_scalar(packed: &mut [u8], start_entry: usize, row_pri: &[u8]) {
    for (k, &p) in row_pri.iter().enumerate() {
        let i = start_entry + k;
        if let Some(b) = packed.get_mut(i / 4) {
            *b |= priority_to_bits(p) << ((i % 4) * 2);
        }
    }
}

/// Counts how many row entries hold each priority value, returned
/// indexed by priority `[N, Sk, St, R]`.
///
/// Contract: entries must be `0..=3` (the encoder's paint phase only
/// produces those). Four vectorizable equality sweeps beat one scalar
/// histogram loop because each sweep compiles to wide compares.
pub fn count_priorities(row_pri: &[u8]) -> [u64; 4] {
    let mut counts = [0u64; 4];
    for (p, slot) in counts.iter_mut().enumerate() {
        let p = p as u8; // rpr-check: allow(truncating-cast): p < 4 by the array bound
        *slot = row_pri.iter().filter(|&&v| v == p).count() as u64;
    }
    counts
}

/// Single-pass reference implementation of [`count_priorities`]. Same
/// `0..=3` contract.
pub fn count_priorities_scalar(row_pri: &[u8]) -> [u64; 4] {
    let mut counts = [0u64; 4];
    for &v in row_pri {
        if let Some(slot) = counts.get_mut(usize::from(v)) {
            *slot += 1;
        }
    }
    counts
}

/// SWAR movemask: bit `i` of the result is set when byte `i` of `w`
/// equals 3 (the `R` priority).
#[inline(always)]
fn r_lanes(w: u64) -> u8 {
    let v = w ^ 0x0303_0303_0303_0303;
    // Exact zero-byte detect (Hacker's Delight): per-byte add of 0x7F
    // cannot carry across lanes, unlike the `v - 0x01..` variant whose
    // borrows flag false positives on bytes following a match.
    let sum = (v & 0x7F7F_7F7F_7F7F_7F7F).wrapping_add(0x7F7F_7F7F_7F7F_7F7F);
    let hit = !(sum | v | 0x7F7F_7F7F_7F7F_7F7F);
    // Gather the per-lane high bits into one byte.
    (hit.wrapping_mul(0x0002_0408_1020_4081) >> 56) as u8 // rpr-check: allow(truncating-cast): the multiply packs exactly 8 flag bits into the top byte
}

/// Reads 8 priority bytes at `x` as a u64, or `None` within 8 of the
/// end.
#[inline(always)]
fn pri_word(row_pri: &[u8], x: usize) -> Option<u64> {
    row_pri
        .get(x..x + 8)
        .and_then(|s| <[u8; 8]>::try_from(s).ok())
        .map(u64::from_le_bytes)
}

/// Appends the source pixels under `R`-priority entries to `out` in
/// raster order, returning how many were appended.
///
/// `row_pri` and `src` describe the same row and should be equal
/// length; `R` entries beyond `src` are ignored (defensively — the
/// encoder always passes matching rows). The scan skips 8 pixels per
/// step through non-`R` spans and copies whole `R` runs with one
/// `extend_from_slice`, so dense regions move at memcpy speed.
pub fn gather_regional(row_pri: &[u8], src: &[u8], out: &mut Vec<u8>) -> usize {
    let n = row_pri.len();
    let mut appended = 0usize;
    let mut x = 0usize;
    while x < n {
        // Find the start of the next R run.
        match pri_word(row_pri, x) {
            Some(w) => {
                let lanes = r_lanes(w);
                if lanes == 0 {
                    x += 8;
                    continue;
                }
                x += usize::from(lanes.trailing_zeros() as u8); // rpr-check: allow(truncating-cast): trailing_zeros of a u8 is <= 8
            }
            None => {
                if row_pri.get(x).copied().unwrap_or(0) != 3 {
                    x += 1;
                    continue;
                }
            }
        }
        // x sits on an R entry; find the run's end.
        let start = x;
        loop {
            match pri_word(row_pri, x) {
                Some(w) => {
                    let lanes = r_lanes(w);
                    if lanes == 0xFF {
                        x += 8;
                        continue;
                    }
                    x += usize::from(lanes.trailing_ones() as u8); // rpr-check: allow(truncating-cast): trailing_ones of a u8 is <= 8
                    break;
                }
                None => {
                    if x < n && row_pri.get(x).copied().unwrap_or(0) == 3 {
                        x += 1;
                        continue;
                    }
                    break;
                }
            }
        }
        let hi = x.min(src.len());
        if let Some(s) = src.get(start.min(hi)..hi) {
            out.extend_from_slice(s);
            appended += s.len();
        }
    }
    appended
}

/// Per-pixel reference implementation of [`gather_regional`].
pub fn gather_regional_scalar(row_pri: &[u8], src: &[u8], out: &mut Vec<u8>) -> usize {
    let mut appended = 0usize;
    for (x, &p) in row_pri.iter().enumerate() {
        if p == 3 {
            if let Some(&v) = src.get(x) {
                out.push(v);
                appended += 1;
            }
        }
    }
    appended
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack_entries(entries: &[u8]) -> Vec<u8> {
        let mut packed = vec![0u8; entries.len().div_ceil(4)];
        for (i, &e) in entries.iter().enumerate() {
            if let Some(b) = packed.get_mut(i / 4) {
                *b |= (e & 0b11) << ((i % 4) * 2);
            }
        }
        packed
    }

    fn runs_of(packed: &[u8], start: usize, len: usize, chunked: bool) -> Vec<(u8, usize)> {
        let mut v = Vec::new();
        if chunked {
            for_each_run(packed, start, len, |s, r| v.push((s, r)));
        } else {
            for_each_run_scalar(packed, start, len, |s, r| v.push((s, r)));
        }
        v
    }

    #[test]
    fn run_scanner_matches_scalar_on_mixed_patterns() {
        let entries: Vec<u8> =
            (0..997).map(|i| [0, 0, 0, 3, 3, 3, 3, 1, 2, 0, 3][i % 11]).collect();
        let packed = pack_entries(&entries);
        for start in [0usize, 1, 3, 4, 5, 31, 32, 33, 100] {
            for len in [0usize, 1, 2, 3, 4, 5, 7, 31, 32, 33, 64, 500, 997 - start] {
                assert_eq!(
                    runs_of(&packed, start, len, true),
                    runs_of(&packed, start, len, false),
                    "start {start} len {len}"
                );
            }
        }
    }

    #[test]
    fn run_scanner_handles_uniform_and_oob() {
        // All one status: one run, even past the end of packed (OOB
        // entries read as 0).
        let packed = pack_entries(&[3u8; 64]);
        assert_eq!(runs_of(&packed, 0, 64, true), vec![(3, 64)]);
        assert_eq!(runs_of(&packed, 0, 100, true), vec![(3, 64), (0, 36)]);
        assert_eq!(runs_of(&[], 0, 40, true), vec![(0, 40)]);
        assert_eq!(runs_of(&packed, 0, 0, true), Vec::<(u8, usize)>::new());
        // Single-entry runs at every byte phase.
        let alt: Vec<u8> = (0..37).map(|i| (i % 2) * 3).collect();
        let packed = pack_entries(&alt);
        assert_eq!(runs_of(&packed, 0, 37, true), runs_of(&packed, 0, 37, false));
    }

    #[test]
    fn runs_sum_to_len_and_alternate() {
        let entries: Vec<u8> = (0..203).map(|i| ((i / 5) % 4) as u8).collect();
        let packed = pack_entries(&entries);
        let runs = runs_of(&packed, 2, 200, true);
        assert_eq!(runs.iter().map(|&(_, r)| r).sum::<usize>(), 200);
        for w in runs.windows(2) {
            assert_ne!(w[0].0, w[1].0, "adjacent runs must differ");
        }
    }

    #[test]
    fn pack_row_matches_scalar_at_all_phases() {
        let pri: Vec<u8> = (0..131).map(|i| ((i * 7) % 4) as u8).collect();
        for start in [0usize, 1, 2, 3, 4, 5, 8, 63, 64, 65] {
            let size = (start + pri.len()).div_ceil(4) + 1;
            let mut a = vec![0u8; size];
            let mut b = vec![0u8; size];
            pack_priority_row(&mut a, start, &pri);
            pack_priority_row_scalar(&mut b, start, &pri);
            assert_eq!(a, b, "start {start}");
        }
    }

    #[test]
    fn pack_row_bits_match_status_encoding() {
        use crate::PixelStatus;
        // Priority i must emit PixelStatus-with-priority-i's bits.
        for (pri, status) in [
            (0u8, PixelStatus::NonRegional),
            (1, PixelStatus::Skipped),
            (2, PixelStatus::Strided),
            (3, PixelStatus::Regional),
        ] {
            assert_eq!(priority_to_bits(pri), status.bits());
            assert_eq!(status.priority(), pri);
        }
    }

    #[test]
    fn pack_row_truncated_target_is_safe() {
        let pri = vec![3u8; 40];
        let mut small = vec![0u8; 3]; // room for 12 entries only
        pack_priority_row(&mut small, 0, &pri);
        assert_eq!(small, vec![0xFF; 3]);
    }

    #[test]
    fn count_matches_scalar() {
        let pri: Vec<u8> = (0..517).map(|i| ((i * 13 + i / 7) % 4) as u8).collect();
        assert_eq!(count_priorities(&pri), count_priorities_scalar(&pri));
        assert_eq!(count_priorities(&[]), [0; 4]);
        assert_eq!(count_priorities(&pri).iter().sum::<u64>(), 517);
    }

    #[test]
    fn gather_matches_scalar_on_degenerate_shapes() {
        for n in [0usize, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 200] {
            for pattern in 0..7 {
                let pri: Vec<u8> = (0..n)
                    .map(|i| match pattern {
                        0 => 3,                         // full keep
                        1 => 0,                         // nothing
                        2 => ((i % 2) * 3) as u8,       // alternating
                        3 => if i == n / 2 { 3 } else { 0 }, // single pixel
                        4 => ((i / 9) % 4) as u8,       // mixed runs
                        // R immediately followed by St: the shape whose
                        // `2` byte a borrow-propagating zero-detect
                        // falsely flags (regression).
                        5 => if i % 2 == 0 { 3 } else { 2 },
                        _ => ((i * 5) % 4) as u8,
                    })
                    .collect();
                let src: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();
                let (mut a, mut b) = (Vec::new(), Vec::new());
                let ca = gather_regional(&pri, &src, &mut a);
                let cb = gather_regional_scalar(&pri, &src, &mut b);
                assert_eq!((ca, &a), (cb, &b), "n {n} pattern {pattern}");
            }
        }
    }

    #[test]
    fn gather_tolerates_short_src() {
        let pri = vec![3u8; 20];
        let src = vec![7u8; 12];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        assert_eq!(
            gather_regional(&pri, &src, &mut a),
            gather_regional_scalar(&pri, &src, &mut b)
        );
        assert_eq!(a, b);
    }
}

use crate::{FrameMetadata, PixelStatus};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// One encoded frame: the tightly packed regional (`R`) pixels in
/// original raster-scan order, plus the metadata needed to decode them
/// (paper §3.2–3.3).
///
/// Preserving raster order — instead of grouping pixels per region the
/// way multi-ROI cameras do — keeps DRAM writes sequential and stores
/// overlapping regions' pixels exactly once, which is what lets the
/// representation scale to hundreds of regions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedFrame {
    /// Original frame width in pixels.
    width: u32,
    /// Original frame height in pixels.
    height: u32,
    /// Index of the frame in the capture sequence.
    frame_idx: u64,
    /// Packed `R` pixel values in raster order.
    pixels: Bytes,
    /// Per-row offsets and EncMask.
    metadata: FrameMetadata,
}

impl EncodedFrame {
    /// Assembles an encoded frame. The constructor does not check
    /// consistency (so corrupted frames can be modeled); use
    /// [`EncodedFrame::validate`] to verify integrity before trusting
    /// the contents.
    pub fn new(
        width: u32,
        height: u32,
        frame_idx: u64,
        pixels: Vec<u8>,
        metadata: FrameMetadata,
    ) -> Self {
        EncodedFrame { width, height, frame_idx, pixels: Bytes::from(pixels), metadata }
    }

    /// Original (decoded-space) frame width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Original (decoded-space) frame height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Position of this frame in the capture sequence.
    pub fn frame_idx(&self) -> u64 {
        self.frame_idx
    }

    /// The packed regional pixel payload.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Number of stored (`R`) pixels.
    pub fn pixel_count(&self) -> usize {
        self.pixels.len()
    }

    /// The frame's decode metadata.
    pub fn metadata(&self) -> &FrameMetadata {
        &self.metadata
    }

    /// Fetches the stored value of the `R` pixel at decoded coordinate
    /// `(x, y)`: per-row offset plus the count of `R` entries before `x`
    /// (the PMMU translation, paper §4.2.1). Returns `None` when the
    /// pixel is not `R` or out of bounds.
    pub fn fetch_regional(&self, x: u32, y: u32) -> Option<u8> {
        if x >= self.width || y >= self.height {
            return None;
        }
        if self.metadata.mask.get(x, y) != PixelStatus::Regional {
            return None;
        }
        let offset =
            self.metadata.row_offsets.offset_of_row(y) + self.metadata.mask.regional_before(x, y);
        self.pixels.get(offset as usize).copied()
    }

    /// Payload bytes (1 byte per stored pixel in the reference gray
    /// pipeline; multi-byte formats scale this in the traffic model).
    pub fn payload_bytes(&self) -> usize {
        self.pixels.len()
    }

    /// Metadata bytes (EncMask + per-row offsets).
    pub fn metadata_bytes(&self) -> usize {
        self.metadata.size_bytes()
    }

    /// Total DRAM footprint of this frame: payload plus metadata.
    pub fn total_bytes(&self) -> usize {
        self.payload_bytes() + self.metadata_bytes()
    }

    /// Integrity check for a frame read back from (possibly corrupted)
    /// storage: the mask geometry, the per-row offset totals, and the
    /// payload length must all agree.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::CorruptEncodedFrame`] describing the
    /// first inconsistency found.
    pub fn validate(&self) -> crate::Result<()> {
        let corrupt = |reason: String| crate::CoreError::CorruptEncodedFrame { reason };
        if self.metadata.mask.width() != self.width
            || self.metadata.mask.height() != self.height
        {
            return Err(corrupt(format!(
                "mask is {}x{} but frame is {}x{}",
                self.metadata.mask.width(),
                self.metadata.mask.height(),
                self.width,
                self.height
            )));
        }
        if self.metadata.row_offsets.total() as usize != self.pixels.len() {
            return Err(corrupt(format!(
                "offsets claim {} pixels but payload holds {}",
                self.metadata.row_offsets.total(),
                self.pixels.len()
            )));
        }
        if !self.metadata.is_consistent() {
            return Err(corrupt("per-row offsets disagree with the EncMask".into()));
        }
        Ok(())
    }

    /// Fraction of the original frame's pixels that were stored, the
    /// quantity reported under each frame of the paper's Figs. 10–15.
    pub fn captured_fraction(&self) -> f64 {
        let total = self.width as f64 * self.height as f64;
        if total == 0.0 {
            0.0
        } else {
            self.pixels.len() as f64 / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EncMask, FrameMetadata};

    fn tiny_encoded() -> EncodedFrame {
        // 4x2 frame; R pixels at (1,0), (3,0), (0,1).
        let mut mask = EncMask::new(4, 2);
        mask.set(1, 0, PixelStatus::Regional);
        mask.set(3, 0, PixelStatus::Regional);
        mask.set(0, 1, PixelStatus::Regional);
        mask.set(2, 1, PixelStatus::Strided);
        let meta = FrameMetadata::from_mask(mask);
        EncodedFrame::new(4, 2, 7, vec![10, 20, 30], meta)
    }

    #[test]
    fn fetch_regional_translates_addresses() {
        let f = tiny_encoded();
        assert_eq!(f.fetch_regional(1, 0), Some(10));
        assert_eq!(f.fetch_regional(3, 0), Some(20));
        assert_eq!(f.fetch_regional(0, 1), Some(30));
    }

    #[test]
    fn fetch_regional_rejects_non_r_pixels() {
        let f = tiny_encoded();
        assert_eq!(f.fetch_regional(0, 0), None); // N
        assert_eq!(f.fetch_regional(2, 1), None); // St
        assert_eq!(f.fetch_regional(9, 9), None); // out of bounds
    }

    #[test]
    fn accounting_adds_payload_and_metadata() {
        let f = tiny_encoded();
        assert_eq!(f.payload_bytes(), 3);
        assert_eq!(f.metadata_bytes(), 2 + 8); // 8 px mask + 2 rows * 4 B
        assert_eq!(f.total_bytes(), 13);
    }

    #[test]
    fn captured_fraction_counts_stored_pixels() {
        let f = tiny_encoded();
        assert!((f.captured_fraction() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn frame_idx_is_preserved() {
        assert_eq!(tiny_encoded().frame_idx(), 7);
    }
}

use crate::{FrameMetadata, PixelStatus};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// 64-bit FNV-1a, the digest sealing an encoded frame's contents. Kept
/// dependency-free and byte-order independent so the hardware DMA
/// engine could compute it incrementally while streaming the frame out.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut hash = seed;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One encoded frame: the tightly packed regional (`R`) pixels in
/// original raster-scan order, plus the metadata needed to decode them
/// (paper §3.2–3.3).
///
/// Preserving raster order — instead of grouping pixels per region the
/// way multi-ROI cameras do — keeps DRAM writes sequential and stores
/// overlapping regions' pixels exactly once, which is what lets the
/// representation scale to hundreds of regions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedFrame {
    /// Original frame width in pixels.
    width: u32,
    /// Original frame height in pixels.
    height: u32,
    /// Index of the frame in the capture sequence.
    frame_idx: u64,
    /// Packed `R` pixel values in raster order.
    pixels: Bytes,
    /// Per-row offsets and EncMask.
    metadata: FrameMetadata,
    /// FNV-1a digest over geometry, frame index, payload, and metadata,
    /// written at assembly time. [`EncodedFrame::validate`] recomputes
    /// it to catch content corruption (payload bit rot, mask bit flips,
    /// stale metadata) that the structural checks cannot see.
    integrity: u64,
}

impl EncodedFrame {
    /// Assembles an encoded frame, sealing its current contents with an
    /// integrity digest. The constructor does not check structural
    /// consistency (so inconsistently assembled frames can be modeled);
    /// use [`EncodedFrame::validate`] to verify integrity before
    /// trusting the contents.
    pub fn new(
        width: u32,
        height: u32,
        frame_idx: u64,
        pixels: Vec<u8>,
        metadata: FrameMetadata,
    ) -> Self {
        Self::new_shared(width, height, frame_idx, std::sync::Arc::new(pixels), metadata)
    }

    /// [`EncodedFrame::new`] over an already-shared payload buffer
    /// ([`crate::BufferPool::get_shared`]): sealing reuses the
    /// buffer's existing ref-count block, so the pooled encode path
    /// allocates nothing.
    pub fn new_shared(
        width: u32,
        height: u32,
        frame_idx: u64,
        pixels: std::sync::Arc<Vec<u8>>,
        metadata: FrameMetadata,
    ) -> Self {
        let mut frame = EncodedFrame {
            width,
            height,
            frame_idx,
            pixels: Bytes::from_shared(pixels),
            metadata,
            integrity: 0,
        };
        frame.integrity = frame.compute_integrity();
        frame
    }

    /// Reassembles a frame from raw parts *without* recomputing the
    /// digest — the shape a frame has after its bytes sat in (possibly
    /// faulty) DRAM: the digest still describes what was written, while
    /// the contents may have rotted. This is the constructor fault
    /// injectors use; [`EncodedFrame::validate`] detects the mismatch.
    pub fn from_raw_parts(
        width: u32,
        height: u32,
        frame_idx: u64,
        pixels: Vec<u8>,
        metadata: FrameMetadata,
        integrity: u64,
    ) -> Self {
        EncodedFrame { width, height, frame_idx, pixels: Bytes::from(pixels), metadata, integrity }
    }

    /// [`EncodedFrame::from_raw_parts`] over an already-shared payload
    /// buffer, for pooled promotion paths that must not allocate a new
    /// ref-count block per frame.
    pub fn from_shared_parts(
        width: u32,
        height: u32,
        frame_idx: u64,
        pixels: std::sync::Arc<Vec<u8>>,
        metadata: FrameMetadata,
        integrity: u64,
    ) -> Self {
        EncodedFrame {
            width,
            height,
            frame_idx,
            pixels: Bytes::from_shared(pixels),
            metadata,
            integrity,
        }
    }

    /// The digest stored when the frame was assembled.
    pub fn integrity(&self) -> u64 {
        self.integrity
    }

    /// Dismantles the frame, returning its buffers to `pool` so the
    /// next encode reuses them instead of allocating. The payload is
    /// recovered — ref-count block included — only when this frame is
    /// its sole owner (the payload `Bytes` is shared by `clone`d
    /// frames); shared payloads are simply dropped. [`crate::FrameHistory`]
    /// calls this on every frame it evicts.
    pub fn recycle(self, pool: &crate::BufferPool) {
        pool.put_shared(self.pixels.into_shared());
        pool.put_vec(self.metadata.mask.into_raw_bytes());
        pool.put_words(self.metadata.row_offsets.into_raw_offsets());
    }

    /// Recomputes the integrity digest from the frame's current
    /// contents. Equal to [`EncodedFrame::integrity`] exactly when the
    /// frame is bit-identical to what [`EncodedFrame::new`] sealed.
    pub fn compute_integrity(&self) -> u64 {
        let mut h = fnv1a(FNV_OFFSET, &self.width.to_le_bytes());
        h = fnv1a(h, &self.height.to_le_bytes());
        h = fnv1a(h, &self.frame_idx.to_le_bytes());
        h = fnv1a(h, &self.pixels);
        h = fnv1a(h, self.metadata.mask.as_bytes());
        for &off in self.metadata.row_offsets.as_slice() {
            h = fnv1a(h, &off.to_le_bytes());
        }
        h
    }

    /// Original (decoded-space) frame width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Original (decoded-space) frame height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Position of this frame in the capture sequence.
    pub fn frame_idx(&self) -> u64 {
        self.frame_idx
    }

    /// The packed regional pixel payload.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Number of stored (`R`) pixels.
    pub fn pixel_count(&self) -> usize {
        self.pixels.len()
    }

    /// The frame's decode metadata.
    pub fn metadata(&self) -> &FrameMetadata {
        &self.metadata
    }

    /// Fetches the stored value of the `R` pixel at decoded coordinate
    /// `(x, y)`: per-row offset plus the count of `R` entries before `x`
    /// (the PMMU translation, paper §4.2.1). Returns `None` when the
    /// pixel is not `R` or out of bounds.
    pub fn fetch_regional(&self, x: u32, y: u32) -> Option<u8> {
        if x >= self.width || y >= self.height {
            return None;
        }
        if self.metadata.mask.get(x, y) != PixelStatus::Regional {
            return None;
        }
        let offset =
            self.metadata.row_offsets.offset_of_row(y) + self.metadata.mask.regional_before(x, y);
        self.pixels.get(offset as usize).copied()
    }

    /// Payload bytes (1 byte per stored pixel in the reference gray
    /// pipeline; multi-byte formats scale this in the traffic model).
    pub fn payload_bytes(&self) -> usize {
        self.pixels.len()
    }

    /// Metadata bytes (EncMask + per-row offsets).
    pub fn metadata_bytes(&self) -> usize {
        self.metadata.size_bytes()
    }

    /// Total DRAM footprint of this frame: payload plus metadata.
    pub fn total_bytes(&self) -> usize {
        self.payload_bytes() + self.metadata_bytes()
    }

    /// Integrity check for a frame read back from (possibly corrupted)
    /// storage. Structural checks first — the mask geometry, the offset
    /// table's shape (row count, monotonicity, totals), and the payload
    /// length must all agree — then the content digest, which catches
    /// corruption the structure cannot see (payload bit rot, mask
    /// status flips that preserve per-row counts, stale frame indices).
    ///
    /// A frame that passes `validate` decodes without panicking: every
    /// row span is a forward range inside the payload holding exactly
    /// as many pixels as the mask marks `R` on that row.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::CorruptEncodedFrame`] describing the
    /// first inconsistency found.
    pub fn validate(&self) -> crate::Result<()> {
        let corrupt = |reason: String| crate::CoreError::CorruptEncodedFrame { reason };
        if self.metadata.mask.width() != self.width
            || self.metadata.mask.height() != self.height
        {
            return Err(corrupt(format!(
                "mask is {}x{} but frame is {}x{}",
                self.metadata.mask.width(),
                self.metadata.mask.height(),
                self.width,
                self.height
            )));
        }
        if self.metadata.row_offsets.rows() != self.height {
            return Err(corrupt(format!(
                "offset table covers {} rows but frame has {}",
                self.metadata.row_offsets.rows(),
                self.height
            )));
        }
        if !self.metadata.row_offsets.is_monotonic() {
            return Err(corrupt("row offsets are not monotonically non-decreasing".into()));
        }
        if self.metadata.row_offsets.as_slice()[0] != 0 {
            return Err(corrupt(format!(
                "offset table starts at {} instead of 0",
                self.metadata.row_offsets.as_slice()[0]
            )));
        }
        if self.metadata.row_offsets.total() as usize != self.pixels.len() {
            return Err(corrupt(format!(
                "offsets claim {} pixels but payload holds {}",
                self.metadata.row_offsets.total(),
                self.pixels.len()
            )));
        }
        if !self.metadata.is_consistent() {
            return Err(corrupt("per-row offsets disagree with the EncMask".into()));
        }
        let computed = self.compute_integrity();
        if computed != self.integrity {
            return Err(corrupt(format!(
                "integrity digest mismatch: stored {:#018x}, contents hash to {computed:#018x}",
                self.integrity
            )));
        }
        Ok(())
    }

    /// Fraction of the original frame's pixels that were stored, the
    /// quantity reported under each frame of the paper's Figs. 10–15.
    pub fn captured_fraction(&self) -> f64 {
        let total = self.width as f64 * self.height as f64;
        if total == 0.0 {
            0.0
        } else {
            self.pixels.len() as f64 / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EncMask, FrameMetadata};

    fn tiny_encoded() -> EncodedFrame {
        // 4x2 frame; R pixels at (1,0), (3,0), (0,1).
        let mut mask = EncMask::new(4, 2);
        mask.set(1, 0, PixelStatus::Regional);
        mask.set(3, 0, PixelStatus::Regional);
        mask.set(0, 1, PixelStatus::Regional);
        mask.set(2, 1, PixelStatus::Strided);
        let meta = FrameMetadata::from_mask(mask);
        EncodedFrame::new(4, 2, 7, vec![10, 20, 30], meta)
    }

    #[test]
    fn fetch_regional_translates_addresses() {
        let f = tiny_encoded();
        assert_eq!(f.fetch_regional(1, 0), Some(10));
        assert_eq!(f.fetch_regional(3, 0), Some(20));
        assert_eq!(f.fetch_regional(0, 1), Some(30));
    }

    #[test]
    fn fetch_regional_rejects_non_r_pixels() {
        let f = tiny_encoded();
        assert_eq!(f.fetch_regional(0, 0), None); // N
        assert_eq!(f.fetch_regional(2, 1), None); // St
        assert_eq!(f.fetch_regional(9, 9), None); // out of bounds
    }

    #[test]
    fn accounting_adds_payload_and_metadata() {
        let f = tiny_encoded();
        assert_eq!(f.payload_bytes(), 3);
        assert_eq!(f.metadata_bytes(), 2 + 8); // 8 px mask + 2 rows * 4 B
        assert_eq!(f.total_bytes(), 13);
    }

    #[test]
    fn captured_fraction_counts_stored_pixels() {
        let f = tiny_encoded();
        assert!((f.captured_fraction() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn frame_idx_is_preserved() {
        assert_eq!(tiny_encoded().frame_idx(), 7);
    }

    #[test]
    fn fresh_frames_validate_clean() {
        assert!(tiny_encoded().validate().is_ok());
    }

    /// Rebuilds `f` with one field replaced, carrying the original
    /// digest — the testkit injectors' corruption model.
    fn reassemble(
        f: &EncodedFrame,
        pixels: Vec<u8>,
        metadata: FrameMetadata,
        frame_idx: u64,
    ) -> EncodedFrame {
        EncodedFrame::from_raw_parts(
            f.width(),
            f.height(),
            frame_idx,
            pixels,
            metadata,
            f.integrity(),
        )
    }

    #[test]
    fn payload_bit_flip_is_detected() {
        let f = tiny_encoded();
        let mut pixels = f.pixels().to_vec();
        pixels[1] ^= 0x40;
        let bad = reassemble(&f, pixels, f.metadata().clone(), f.frame_idx());
        assert!(matches!(bad.validate(), Err(crate::CoreError::CorruptEncodedFrame { .. })));
    }

    #[test]
    fn stale_frame_idx_is_detected() {
        let f = tiny_encoded();
        let bad = reassemble(&f, f.pixels().to_vec(), f.metadata().clone(), 6);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn payload_truncation_is_detected() {
        let f = tiny_encoded();
        let bad =
            reassemble(&f, f.pixels()[..2].to_vec(), f.metadata().clone(), f.frame_idx());
        assert!(bad.validate().is_err());
    }

    #[test]
    fn mask_flip_preserving_row_counts_is_detected() {
        // St -> Sk keeps every per-row R count identical; only the
        // digest can see it.
        let f = tiny_encoded();
        let mut meta = f.metadata().clone();
        assert_eq!(meta.mask.get(2, 1), PixelStatus::Strided);
        meta.mask.set(2, 1, PixelStatus::Skipped);
        let bad = reassemble(&f, f.pixels().to_vec(), meta, f.frame_idx());
        assert!(meta_err_mentions(&bad, "digest"));
    }

    #[test]
    fn truncated_offset_table_is_detected() {
        let f = tiny_encoded();
        let mut meta = f.metadata().clone();
        meta.row_offsets = crate::RowOffsets::from_row_counts(&[3]);
        let bad = reassemble(&f, f.pixels().to_vec(), meta, f.frame_idx());
        assert!(meta_err_mentions(&bad, "rows"));
    }

    #[test]
    fn non_monotonic_offsets_are_detected() {
        // Crafted so span lengths still match the mask's R counts (row 0
        // holds 2 R, row 1 holds 1 R) while a span runs backwards; the
        // old validate() accepted shapes like this and decode panicked.
        let f = tiny_encoded();
        let mut meta = f.metadata().clone();
        meta.row_offsets = crate::RowOffsets::from_raw_offsets(vec![0, 4, 3]);
        let bad = reassemble(&f, f.pixels().to_vec(), meta, f.frame_idx());
        assert!(meta_err_mentions(&bad, "monotonic"));
    }

    #[test]
    fn shifted_offset_base_is_detected() {
        // First entry non-zero with a consistent-looking tail: without
        // the leading-zero check the decoder would read the wrong span.
        let f = tiny_encoded();
        let mut meta = f.metadata().clone();
        meta.row_offsets = crate::RowOffsets::from_raw_offsets(vec![1, 3, 3]);
        let bad = reassemble(&f, f.pixels().to_vec(), meta, f.frame_idx());
        assert!(bad.validate().is_err());
    }

    #[test]
    fn from_raw_parts_roundtrips_clean_frames() {
        let f = tiny_encoded();
        let copy = reassemble(&f, f.pixels().to_vec(), f.metadata().clone(), f.frame_idx());
        assert_eq!(copy, f);
        assert!(copy.validate().is_ok());
    }

    fn meta_err_mentions(frame: &EncodedFrame, needle: &str) -> bool {
        match frame.validate() {
            Err(crate::CoreError::CorruptEncodedFrame { reason }) => {
                assert!(reason.contains(needle), "reason {reason:?} missing {needle:?}");
                true
            }
            other => panic!("expected CorruptEncodedFrame, got {other:?}"),
        }
    }
}

//! [`BufferPool`] — a recycling arena for the per-frame allocations of
//! the encode→decode hot path.
//!
//! Every frame the scalar pipeline used to allocate a packed mask, a
//! payload vector, a row-offset table, and a decoded plane, then drop
//! them all. The pool closes that loop: the encoder draws its buffers
//! here, [`crate::FrameHistory`] dismantles evicted frames back into it
//! ([`crate::EncodedFrame::recycle`]), and the decoder recycles retired
//! output planes — after a short warmup the steady state performs zero
//! heap allocations per frame (asserted by the `alloc_discipline`
//! integration test, see TESTING.md).
//!
//! # Contents of recycled buffers
//!
//! Buffers come back from [`BufferPool::get_vec`] / `get_words` empty
//! (`len == 0`): stale contents are only reachable by deliberately
//! resizing without writing. [`BufferPool::get_scratch`] is the one
//! exception — it returns a buffer of the requested length with
//! **unspecified contents** for consumers that overwrite every element
//! (the decoder's output planes). The conformance suite runs the whole
//! differential corpus with a *poisoned* pool ([`BufferPool::poisoned`])
//! that fills buffers with a sentinel byte on every `put`, so any code
//! path that reads a recycled element before writing it diverges from
//! the reference decoders and fails the sweep.
//!
//! Handles are `Clone` + `Send` + `Sync`; clones share one store behind
//! a mutex. Lock hold times are a couple of `Vec` pointer moves — the
//! pool is not a contention point even with encoder and decoder on
//! different threads.

use parking_lot::Mutex;
use std::sync::Arc;

/// Per-kind cap on pooled buffers; beyond this, `put` drops the buffer
/// so a burst cannot pin memory forever.
const MAX_POOLED: usize = 64;

/// Counters describing pool effectiveness; see [`BufferPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out (all `get_*` calls).
    pub gets: u64,
    /// Gets that found the pool empty and had to heap-allocate.
    pub misses: u64,
    /// Buffers returned to the pool.
    pub puts: u64,
    /// Returned buffers dropped because the pool was at capacity.
    pub dropped: u64,
}

#[derive(Debug)]
struct PoolInner {
    bytes: Vec<Vec<u8>>,
    words: Vec<Vec<u32>>,
    /// Uniquely-owned shared payload buffers: recycling the whole
    /// `Arc` keeps the ref-count block alive alongside the vector, so
    /// sealing a payload into [`bytes::Bytes`] allocates nothing.
    shared: Vec<Arc<Vec<u8>>>,
    poison: Option<u8>,
    stats: PoolStats,
}

impl Default for PoolInner {
    fn default() -> Self {
        // Slot vectors are reserved to the cap up front so the `put_*`
        // recycle path never grows them — `push` below MAX_POOLED is a
        // pointer move, keeping the steady state allocation-free
        // (enforced transitively by the RPR008 hot-path-alloc lint).
        PoolInner {
            bytes: Vec::with_capacity(MAX_POOLED),
            words: Vec::with_capacity(MAX_POOLED),
            shared: Vec::with_capacity(MAX_POOLED),
            poison: None,
            stats: PoolStats::default(),
        }
    }
}

/// A shared recycling pool of `Vec<u8>` and `Vec<u32>` buffers.
///
/// See the [module docs](self) for the reuse discipline and the
/// poisoning test mode.
#[derive(Debug, Clone, Default)]
pub struct BufferPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool that overwrites every byte/word of a returned buffer with
    /// `sentinel` before storing it — the buffer-reuse adversary used
    /// by the conformance corpus to prove no kernel reads stale pool
    /// memory.
    pub fn poisoned(sentinel: u8) -> Self {
        let pool = Self::new();
        pool.inner.lock().poison = Some(sentinel);
        pool
    }

    /// The sentinel this pool poisons with, if any.
    pub fn poison_sentinel(&self) -> Option<u8> {
        self.inner.lock().poison
    }

    /// A recycled (or fresh) byte buffer with `len == 0`; capacity is
    /// whatever the recycled buffer had grown to.
    pub fn get_vec(&self) -> Vec<u8> {
        let mut st = self.inner.lock();
        st.stats.gets += 1;
        match st.bytes.pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => {
                st.stats.misses += 1;
                Vec::new()
            }
        }
    }

    /// A byte buffer of exactly `len` zero bytes.
    pub fn get_zeroed(&self, len: usize) -> Vec<u8> {
        let mut v = self.get_vec();
        v.resize(len, 0);
        v
    }

    /// A byte buffer of exactly `len` bytes with **unspecified
    /// contents** (stale data, or the sentinel under a poisoned pool).
    /// Only for consumers that write every element before reading it.
    pub fn get_scratch(&self, len: usize) -> Vec<u8> {
        let (recycled, fill) = {
            let mut st = self.inner.lock();
            st.stats.gets += 1;
            let recycled = st.bytes.pop();
            if recycled.is_none() {
                st.stats.misses += 1;
            }
            (recycled, st.poison.unwrap_or(0))
        };
        let mut v = recycled.unwrap_or_default();
        // Deliberately no clear(): the stale prefix stays readable so a
        // missed write is observable (and poisoned in test mode).
        if v.len() > len {
            v.truncate(len);
        } else {
            v.resize(len, fill);
        }
        v
    }

    /// Returns a byte buffer to the pool.
    pub fn put_vec(&self, mut v: Vec<u8>) {
        if v.capacity() == 0 {
            return;
        }
        let mut st = self.inner.lock();
        st.stats.puts += 1;
        if st.bytes.len() >= MAX_POOLED {
            st.stats.dropped += 1;
            return;
        }
        if let Some(p) = st.poison {
            // Poison the full capacity, not just the live prefix.
            v.clear();
            // rpr-check: allow(hot-path-alloc): resize to the buffer's own capacity never reallocates
            v.resize(v.capacity(), p);
        }
        // rpr-check: allow(hot-path-alloc): slot vector is pre-reserved to MAX_POOLED and push is guarded by the cap above
        st.bytes.push(v);
    }

    /// A recycled (or fresh) uniquely-owned shared byte buffer with
    /// `len == 0` — fill it through [`Arc::make_mut`] (free on a
    /// unique handle) and seal it with `bytes::Bytes::from_shared`.
    /// Unlike [`BufferPool::get_vec`], recycling one of these keeps
    /// the ref-count block too, so the payload path of
    /// [`crate::EncodedFrame`] is allocation-free at steady state.
    pub fn get_shared(&self) -> Arc<Vec<u8>> {
        let mut st = self.inner.lock();
        st.stats.gets += 1;
        match st.shared.pop() {
            Some(mut arc) => {
                if let Some(v) = Arc::get_mut(&mut arc) {
                    v.clear();
                }
                arc
            }
            None => {
                st.stats.misses += 1;
                Arc::new(Vec::new())
            }
        }
    }

    /// Returns a shared byte buffer to the pool. Buffers with other
    /// live handles cannot be reused and are dropped (counted in
    /// [`PoolStats::dropped`]).
    pub fn put_shared(&self, mut arc: Arc<Vec<u8>>) {
        let mut st = self.inner.lock();
        st.stats.puts += 1;
        let Some(v) = Arc::get_mut(&mut arc) else {
            st.stats.dropped += 1;
            return;
        };
        if v.capacity() == 0 || st.shared.len() >= MAX_POOLED {
            st.stats.dropped += 1;
            return;
        }
        if let Some(p) = st.poison {
            v.clear();
            // rpr-check: allow(hot-path-alloc): resize to the buffer's own capacity never reallocates
            v.resize(v.capacity(), p);
        }
        // rpr-check: allow(hot-path-alloc): slot vector is pre-reserved to MAX_POOLED and push is guarded by the cap above
        st.shared.push(arc);
    }

    /// A recycled (or fresh) `u32` buffer with `len == 0`.
    pub fn get_words(&self) -> Vec<u32> {
        let mut st = self.inner.lock();
        st.stats.gets += 1;
        match st.words.pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => {
                st.stats.misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a `u32` buffer to the pool.
    pub fn put_words(&self, mut v: Vec<u32>) {
        if v.capacity() == 0 {
            return;
        }
        let mut st = self.inner.lock();
        st.stats.puts += 1;
        if st.words.len() >= MAX_POOLED {
            st.stats.dropped += 1;
            return;
        }
        if let Some(p) = st.poison {
            v.clear();
            // rpr-check: allow(hot-path-alloc): resize to the buffer's own capacity never reallocates
            v.resize(v.capacity(), u32::from_le_bytes([p, p, p, p]));
        }
        // rpr-check: allow(hot-path-alloc): slot vector is pre-reserved to MAX_POOLED and push is guarded by the cap above
        st.words.push(v);
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Buffers currently held, `(byte_buffers, word_buffers)`.
    pub fn pooled(&self) -> (usize, usize) {
        let st = self.inner.lock();
        (st.bytes.len(), st.words.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_roundtrip_reuses_capacity() {
        let pool = BufferPool::new();
        let mut v = pool.get_vec();
        v.extend_from_slice(&[1, 2, 3, 4]);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        pool.put_vec(v);
        let v2 = pool.get_vec();
        assert!(v2.is_empty());
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr, "buffer must be recycled, not reallocated");
        let s = pool.stats();
        assert_eq!((s.gets, s.misses, s.puts), (2, 1, 1));
    }

    #[test]
    fn zeroed_clears_recycled_contents() {
        let pool = BufferPool::new();
        pool.put_vec(vec![0xAB; 32]);
        let v = pool.get_zeroed(16);
        assert_eq!(v, vec![0u8; 16]);
    }

    #[test]
    fn scratch_preserves_stale_bytes_and_poison_marks_them() {
        let pool = BufferPool::poisoned(0xA5);
        pool.put_vec(vec![0u8; 8]);
        let v = pool.get_scratch(8);
        assert_eq!(v, vec![0xA5; 8], "poisoned pool must surface stale reads");
        pool.put_vec(v);
        // Growth past the recycled length is filled with the sentinel too.
        let v = pool.get_scratch(12);
        assert_eq!(v, vec![0xA5; 12]);
    }

    #[test]
    fn words_poisoned_roundtrip() {
        let pool = BufferPool::poisoned(0x5A);
        pool.put_words(vec![7u32; 4]);
        let w = pool.get_words();
        assert!(w.is_empty());
        assert!(w.capacity() >= 4);
    }

    #[test]
    fn capacity_cap_drops_excess() {
        let pool = BufferPool::new();
        for _ in 0..(MAX_POOLED + 5) {
            pool.put_vec(vec![0u8; 4]);
        }
        assert_eq!(pool.pooled().0, MAX_POOLED);
        assert_eq!(pool.stats().dropped, 5);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let pool = BufferPool::new();
        pool.put_vec(Vec::new());
        assert_eq!(pool.pooled().0, 0);
        assert_eq!(pool.stats().puts, 0);
    }

    #[test]
    fn slot_vectors_never_grow_past_their_initial_reservation() {
        // The recycle path must not allocate: the slot vectors are
        // reserved to MAX_POOLED at construction and the cap guard
        // keeps push below that, so capacity stays at its initial
        // value no matter how many buffers cycle through.
        let pool = BufferPool::new();
        let (bytes_cap, words_cap, shared_cap) = {
            let st = pool.inner.lock();
            (st.bytes.capacity(), st.words.capacity(), st.shared.capacity())
        };
        assert!(bytes_cap >= MAX_POOLED);
        assert!(words_cap >= MAX_POOLED);
        assert!(shared_cap >= MAX_POOLED);
        for _ in 0..(MAX_POOLED * 2) {
            pool.put_vec(vec![0u8; 4]);
            pool.put_words(vec![0u32; 4]);
            pool.put_shared(Arc::new(vec![0u8; 4]));
        }
        let st = pool.inner.lock();
        assert_eq!(st.bytes.capacity(), bytes_cap);
        assert_eq!(st.words.capacity(), words_cap);
        assert_eq!(st.shared.capacity(), shared_cap);
    }

    #[test]
    fn clones_share_the_store() {
        let a = BufferPool::new();
        let b = a.clone();
        a.put_vec(vec![1u8; 8]);
        assert_eq!(b.pooled().0, 1);
        let _ = b.get_vec();
        assert_eq!(a.pooled().0, 0);
    }
}

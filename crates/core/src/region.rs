use crate::{CoreError, Result};
use rpr_frame::Rect;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A developer-specified region label (paper §3.1).
///
/// A region is a rectangle of pixels together with a *stride* (spatial
/// resolution: keep one pixel out of every `stride x stride` block) and a
/// *skip* rate (temporal resolution: sample the region only on frames
/// where `frame_idx % skip == 0`). This mirrors the paper's runtime
/// struct:
///
/// ```c
/// struct RegionLabel { int x, y, w, h, stride, skip; };
/// ```
///
/// # Example
///
/// ```
/// use rpr_core::RegionLabel;
///
/// // Full-resolution region sampled every other frame.
/// let r = RegionLabel::new(10, 20, 64, 48, 1, 2);
/// assert!(r.is_sampled_on(0));
/// assert!(!r.is_sampled_on(1));
/// assert!(r.keeps_pixel(10, 20));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionLabel {
    /// Left column of the region's top-left corner.
    pub x: u32,
    /// Top row of the region's top-left corner.
    pub y: u32,
    /// Region width in pixels.
    pub w: u32,
    /// Region height in pixels.
    pub h: u32,
    /// Spatial stride: keep one pixel per `stride x stride` block
    /// (1 = full resolution). The paper observes strides of 1–4.
    pub stride: u32,
    /// Temporal skip: sample the region every `skip` frames
    /// (1 = every frame). The paper observes intervals of 33–100 ms,
    /// i.e. skips of 1–3 at 30 fps.
    pub skip: u32,
}

impl RegionLabel {
    /// Creates a region label.
    pub fn new(x: u32, y: u32, w: u32, h: u32, stride: u32, skip: u32) -> Self {
        RegionLabel { x, y, w, h, stride, skip }
    }

    /// A full-resolution, every-frame region covering a whole
    /// `width x height` frame — what a cycle-length policy emits on full
    /// capture frames.
    pub fn full_frame(width: u32, height: u32) -> Self {
        RegionLabel { x: 0, y: 0, w: width, h: height, stride: 1, skip: 1 }
    }

    /// Creates a region from a [`Rect`] footprint plus rhythm parameters.
    pub fn from_rect(rect: Rect, stride: u32, skip: u32) -> Self {
        RegionLabel { x: rect.x, y: rect.y, w: rect.w, h: rect.h, stride, skip }
    }

    /// The region's rectangular footprint.
    pub fn rect(&self) -> Rect {
        Rect::new(self.x, self.y, self.w, self.h)
    }

    /// Exclusive right edge.
    pub fn right(&self) -> u32 {
        self.x.saturating_add(self.w)
    }

    /// Exclusive bottom edge.
    pub fn bottom(&self) -> u32 {
        self.y.saturating_add(self.h)
    }

    /// Returns true when the region is temporally sampled on `frame_idx`.
    pub fn is_sampled_on(&self, frame_idx: u64) -> bool {
        frame_idx.is_multiple_of(u64::from(self.skip.max(1)))
    }

    /// Returns true when `(x, y)` lies inside the region footprint.
    pub fn contains(&self, x: u32, y: u32) -> bool {
        self.rect().contains(x, y)
    }

    /// Returns true when row `y` intersects the region's vertical span —
    /// the RoI selector's per-row liveness check.
    pub fn contains_row(&self, y: u32) -> bool {
        y >= self.y && y < self.bottom()
    }

    /// Returns true when `(x, y)` is a stride-kept pixel of this region —
    /// i.e. inside the footprint and aligned to the `stride x stride`
    /// sampling grid anchored at the region's top-left corner.
    pub fn keeps_pixel(&self, x: u32, y: u32) -> bool {
        self.contains(x, y)
            && (x - self.x).is_multiple_of(self.stride.max(1))
            && (y - self.y).is_multiple_of(self.stride.max(1))
    }

    /// Validates the label against a frame and returns the clamped copy
    /// actually used for encoding.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidRegion`] when a dimension, the stride,
    /// or the skip is zero, or the region lies entirely outside the frame.
    pub fn validated(&self, frame_width: u32, frame_height: u32) -> Result<RegionLabel> {
        if self.w == 0 || self.h == 0 {
            return Err(CoreError::InvalidRegion {
                reason: format!("zero-sized region {}x{}", self.w, self.h),
            });
        }
        if self.stride == 0 {
            return Err(CoreError::InvalidRegion { reason: "stride must be >= 1".into() });
        }
        if self.skip == 0 {
            return Err(CoreError::InvalidRegion { reason: "skip must be >= 1".into() });
        }
        let clamped = self.rect().clamped(frame_width, frame_height);
        if clamped.is_empty() {
            return Err(CoreError::InvalidRegion {
                reason: format!(
                    "region {} lies outside the {frame_width}x{frame_height} frame",
                    self.rect()
                ),
            });
        }
        Ok(RegionLabel::from_rect(clamped, self.stride, self.skip))
    }

    /// Number of pixels this region stores per sampled frame
    /// (its stride-kept pixel count).
    pub fn kept_pixels(&self) -> u64 {
        let s = u64::from(self.stride.max(1));
        let w = u64::from(self.w).div_ceil(s);
        let h = u64::from(self.h).div_ceil(s);
        w * h
    }
}

impl fmt::Display for RegionLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}@({},{}) stride {} skip {}",
            self.w, self.h, self.x, self.y, self.stride, self.skip
        )
    }
}

/// A validated, y-sorted list of region labels bound to a frame geometry.
///
/// The paper's runtime sorts regions by their y-indices before handing
/// them to the encoder so the hardware RoI selector can shortlist the
/// regions relevant to each row with a cheap sweep (§4.1.1). This type
/// performs that validation, clamping, and sorting once.
///
/// # Example
///
/// ```
/// use rpr_core::{RegionLabel, RegionList};
///
/// let list = RegionList::new(
///     640,
///     480,
///     vec![
///         RegionLabel::new(0, 200, 64, 64, 2, 1),
///         RegionLabel::new(0, 10, 32, 32, 1, 1),
///     ],
/// )?;
/// // Sorted by y.
/// assert_eq!(list.labels()[0].y, 10);
/// # Ok::<(), rpr_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionList {
    width: u32,
    height: u32,
    labels: Vec<RegionLabel>,
}

impl RegionList {
    /// Validates, clamps, and y-sorts `labels` for a `width x height`
    /// frame.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidFrameDimensions`] for a zero-area
    /// frame, or the first region validation error encountered.
    pub fn new(width: u32, height: u32, labels: Vec<RegionLabel>) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(CoreError::InvalidFrameDimensions { width, height });
        }
        let mut validated = labels
            .into_iter()
            .map(|label| label.validated(width, height))
            .collect::<Result<Vec<_>>>()?;
        validated.sort_by_key(|r| (r.y, r.x));
        Ok(RegionList { width, height, labels: validated })
    }

    /// Like [`RegionList::new`] but silently drops invalid regions
    /// instead of failing — the behaviour of a permissive runtime that
    /// clamps what it can and ignores the rest.
    pub fn new_lossy(width: u32, height: u32, labels: Vec<RegionLabel>) -> Self {
        let mut validated: Vec<RegionLabel> = labels
            .into_iter()
            .filter_map(|label| label.validated(width, height).ok())
            .collect();
        validated.sort_by_key(|r| (r.y, r.x));
        RegionList { width, height, labels: validated }
    }

    /// A single full-frame region — the frame-based-computing degenerate
    /// case.
    pub fn full_frame(width: u32, height: u32) -> Self {
        RegionList {
            width,
            height,
            labels: vec![RegionLabel::full_frame(width, height)],
        }
    }

    /// An empty list: every pixel is discarded.
    pub fn empty(width: u32, height: u32) -> Self {
        RegionList { width, height, labels: Vec::new() }
    }

    /// Frame width the list was validated against.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height the list was validated against.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The validated labels in ascending-y order.
    pub fn labels(&self) -> &[RegionLabel] {
        &self.labels
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns true when no regions are present.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Iterates over the labels in ascending-y order.
    pub fn iter(&self) -> std::slice::Iter<'_, RegionLabel> {
        self.labels.iter()
    }

    /// Upper bound on encoded pixels per fully-sampled frame: the sum of
    /// each region's kept pixels (overlaps counted once per pixel would
    /// be tighter; this is the quick capacity estimate a runtime uses).
    pub fn kept_pixel_upper_bound(&self) -> u64 {
        self.labels.iter().map(RegionLabel::kept_pixels).sum()
    }
}

impl<'a> IntoIterator for &'a RegionList {
    type Item = &'a RegionLabel;
    type IntoIter = std::slice::Iter<'a, RegionLabel>;

    fn into_iter(self) -> Self::IntoIter {
        self.labels.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_schedule_follows_skip() {
        let r = RegionLabel::new(0, 0, 4, 4, 1, 3);
        assert!(r.is_sampled_on(0));
        assert!(!r.is_sampled_on(1));
        assert!(!r.is_sampled_on(2));
        assert!(r.is_sampled_on(3));
    }

    #[test]
    fn stride_grid_is_anchored_at_corner() {
        let r = RegionLabel::new(5, 7, 10, 10, 2, 1);
        assert!(r.keeps_pixel(5, 7));
        assert!(!r.keeps_pixel(6, 7));
        assert!(!r.keeps_pixel(5, 8));
        assert!(r.keeps_pixel(7, 9));
    }

    #[test]
    fn validation_rejects_zero_fields() {
        assert!(RegionLabel::new(0, 0, 0, 4, 1, 1).validated(64, 64).is_err());
        assert!(RegionLabel::new(0, 0, 4, 0, 1, 1).validated(64, 64).is_err());
        assert!(RegionLabel::new(0, 0, 4, 4, 0, 1).validated(64, 64).is_err());
        assert!(RegionLabel::new(0, 0, 4, 4, 1, 0).validated(64, 64).is_err());
    }

    #[test]
    fn validation_clamps_to_frame() {
        let r = RegionLabel::new(60, 60, 10, 10, 1, 1).validated(64, 64).unwrap();
        assert_eq!((r.w, r.h), (4, 4));
    }

    #[test]
    fn validation_rejects_fully_outside() {
        assert!(RegionLabel::new(100, 100, 5, 5, 1, 1).validated(64, 64).is_err());
    }

    #[test]
    fn kept_pixels_rounds_up() {
        let r = RegionLabel::new(0, 0, 5, 5, 2, 1);
        assert_eq!(r.kept_pixels(), 9); // ceil(5/2)^2
        let full = RegionLabel::new(0, 0, 8, 8, 1, 1);
        assert_eq!(full.kept_pixels(), 64);
    }

    #[test]
    fn region_list_sorts_by_y() {
        let list = RegionList::new(
            100,
            100,
            vec![
                RegionLabel::new(0, 50, 4, 4, 1, 1),
                RegionLabel::new(0, 10, 4, 4, 1, 1),
                RegionLabel::new(5, 10, 4, 4, 1, 1),
            ],
        )
        .unwrap();
        let ys: Vec<u32> = list.iter().map(|r| r.y).collect();
        assert_eq!(ys, vec![10, 10, 50]);
        assert_eq!(list.labels()[0].x, 0);
    }

    #[test]
    fn region_list_rejects_zero_frame() {
        assert!(RegionList::new(0, 10, vec![]).is_err());
    }

    #[test]
    fn lossy_constructor_drops_invalid() {
        let list = RegionList::new_lossy(
            64,
            64,
            vec![
                RegionLabel::new(0, 0, 4, 4, 1, 1),
                RegionLabel::new(200, 200, 4, 4, 1, 1), // dropped
                RegionLabel::new(0, 0, 4, 4, 0, 1),     // dropped
            ],
        );
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn full_frame_region_covers_everything() {
        let list = RegionList::full_frame(32, 16);
        assert_eq!(list.kept_pixel_upper_bound(), 32 * 16);
        assert!(list.labels()[0].keeps_pixel(31, 15));
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = RegionLabel::new(1, 2, 3, 4, 5, 6).to_string();
        for needle in ["1", "2", "3", "4", "5", "6"] {
            assert!(s.contains(needle), "{s} missing {needle}");
        }
    }
}
